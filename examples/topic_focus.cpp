// Topic-focused measurement: the paper's Section III.A notes the manager
// can "study the activity on a specific topic by choosing the files
// accordingly". This example advertises files for one topic keyword,
// verifies the server's keyword search finds them, and measures which peers
// query the topic — including per-file splits.
//
// Run: ./build/examples/topic_focus

#include <iostream>

#include "analysis/log_stats.hpp"
#include "analysis/report.hpp"
#include "honeypot/manager.hpp"
#include "peer/population.hpp"
#include "scenario/calibration.hpp"
#include "server/server.hpp"

using namespace edhp;

int main() {
  sim::Simulation simulation(2024);
  net::Network network(simulation);
  auto diurnal = sim::DiurnalProfile::european_2008();
  auto params = scenario::behavior_2008();
  peer::FileCatalog catalog(peer::CatalogParams{5'000, 0.9, 0.05},
                            simulation.rng().split(1));
  peer::SharedBlacklist blacklist(params.gossip_penalty);

  const auto server_node = network.add_node(true);
  server::Server server(network, server_node, {});
  server.start();
  honeypot::ServerRef ref{server_node, "topic-server", 4661};

  // Three honeypots advertising one topic's files (a music act, say).
  honeypot::Manager manager(network, {});
  for (int h = 0; h < 3; ++h) {
    honeypot::HoneypotConfig c;
    c.id = static_cast<std::uint16_t>(h);
    c.name = "topic-hp-" + std::to_string(h);
    c.strategy = honeypot::ContentStrategy::random_content;
    manager.launch(std::move(c), network.add_node(true), ref);
  }
  manager.start();

  std::vector<honeypot::AdvertisedFile> topic_files{
      {FileId::from_words(1, 1), "crimson.echo.live.2008.mp3", 7'000'000},
      {FileId::from_words(2, 2), "crimson.echo.studio.album.mp3", 62'000'000},
      {FileId::from_words(3, 3), "crimson.echo.interview.avi", 180'000'000},
  };
  simulation.run_until(10.0);
  manager.advertise_all(topic_files);
  simulation.run_until(20.0);

  // Sanity: a keyword search on the server now surfaces the topic.
  std::cout << "server keyword index: 'crimson echo' -> "
            << server.index().search("crimson echo", 10).size()
            << " files (expected 3)\n\n";

  // Topic audience: separate demand per file, sharing one interested pool
  // phase-wise (the live recording is hottest).
  peer::PeerContext ctx;
  ctx.net = &network;
  ctx.server_node = server_node;
  ctx.blacklist = &blacklist;
  ctx.catalog = &catalog;
  ctx.params = &params;
  ctx.diurnal = &diurnal;
  peer::Population population(ctx, simulation.rng().split(2));
  population.add_demand({topic_files[0].id, 300, 0.05, 2000});
  population.add_demand({topic_files[1].id, 150, 0.02, 1200});
  population.add_demand({topic_files[2].id, 60, 0.0, 500});
  population.start();

  simulation.run_until(days(7));
  population.stop();

  std::uint64_t distinct = 0;
  auto merged = manager.merged_anonymized(&distinct);

  std::cout << "one week of topic measurement: " << distinct
            << " distinct peers, " << merged.records.size() << " queries\n\n";

  // Per-file interest within the topic.
  std::vector<FileId> ids;
  for (const auto& f : topic_files) ids.push_back(f.id);
  const auto sets = analysis::peer_sets_by_file(merged, ids);
  for (std::size_t i = 0; i < topic_files.size(); ++i) {
    std::cout << "  " << topic_files[i].name << ": " << sets[i].count()
              << " peers\n";
  }

  // Daily rhythm of the topic's audience.
  const auto series = analysis::distinct_peers_by_day(merged, std::nullopt, 7);
  std::cout << "\nnew topic peers per day:";
  for (auto fresh : series.fresh) {
    std::cout << ' ' << fresh;
  }
  std::cout << "\n";
  return 0;
}
