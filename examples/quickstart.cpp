// Quickstart: the smallest end-to-end use of the honeypot platform.
//
// Sets up a simulated eDonkey network (one directory server, a small peer
// population), launches two honeypots through the manager — one per content
// strategy — advertises one fake file, measures for two simulated days, and
// prints the merged anonymised log summary.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart

#include <iostream>

#include "analysis/log_stats.hpp"
#include "analysis/report.hpp"
#include "honeypot/manager.hpp"
#include "peer/population.hpp"
#include "scenario/calibration.hpp"
#include "server/server.hpp"

using namespace edhp;

int main() {
  // --- World: simulation clock, network, behaviour model -------------------
  sim::Simulation simulation(/*seed=*/42);
  net::Network network(simulation);
  auto diurnal = sim::DiurnalProfile::european_2008();
  auto params = scenario::behavior_2008();
  peer::FileCatalog catalog(peer::CatalogParams{5'000, 0.9},
                            simulation.rng().split(1));
  peer::SharedBlacklist blacklist(params.gossip_penalty);

  // --- Directory server -----------------------------------------------------
  const auto server_node = network.add_node(true);
  server::Server server(network, server_node, {});
  server.start();
  honeypot::ServerRef server_ref{server_node, "quickstart-server", 4661};

  // --- Two honeypots via the manager ----------------------------------------
  honeypot::Manager manager(network, {});
  for (int h = 0; h < 2; ++h) {
    honeypot::HoneypotConfig config;
    config.id = static_cast<std::uint16_t>(h);
    config.name = "quickstart-hp-" + std::to_string(h);
    config.strategy = h == 0 ? honeypot::ContentStrategy::no_content
                             : honeypot::ContentStrategy::random_content;
    manager.launch(std::move(config), network.add_node(true), server_ref);
  }
  manager.start();

  // --- Advertise one fake file ----------------------------------------------
  honeypot::AdvertisedFile fake{FileId::from_words(0xFEED, 0xBEEF),
                                "night.voyage.2008.dvdrip.xvid.avi",
                                700'000'000};
  simulation.run_until(10.0);
  manager.advertise_all({fake});

  // --- Interested peers ------------------------------------------------------
  peer::PeerContext ctx;
  ctx.net = &network;
  ctx.server_node = server_node;
  ctx.blacklist = &blacklist;
  ctx.catalog = &catalog;
  ctx.params = &params;
  ctx.diurnal = &diurnal;
  peer::Population population(ctx, simulation.rng().split(2));
  population.add_demand(peer::FileDemand{fake.id, /*rate/day=*/400, /*decay=*/0.0,
                                         /*pool=*/1'000});
  population.start();

  // --- Measure two days -------------------------------------------------------
  simulation.run_until(days(2));
  population.stop();
  manager.stop();

  // --- Collect, merge, anonymise, report --------------------------------------
  std::uint64_t distinct = 0;
  auto merged = manager.merged_anonymized(&distinct);

  std::vector<std::pair<std::string, std::string>> rows;
  rows.emplace_back("simulated days", "2");
  rows.emplace_back("honeypots", "2");
  rows.emplace_back("distinct peers", analysis::with_commas(distinct));
  rows.emplace_back("log records", analysis::with_commas(merged.records.size()));
  for (auto type : {logbook::QueryType::hello, logbook::QueryType::start_upload,
                    logbook::QueryType::request_part}) {
    std::uint64_t count = 0;
    for (const auto& r : merged.records) {
      if (r.type == type) ++count;
    }
    rows.emplace_back(std::string(logbook::to_string(type)) + " messages",
                      analysis::with_commas(count));
  }
  rows.emplace_back("peer arrivals", analysis::with_commas(population.arrivals()));
  analysis::print_kv(std::cout, "quickstart measurement", rows);

  // First few (fully anonymised) records.
  std::cout << "first records (peer ids are stage-2 integers):\n";
  for (std::size_t i = 0; i < merged.records.size() && i < 5; ++i) {
    const auto& r = merged.records[i];
    std::cout << "  t=" << r.timestamp << "s hp=" << r.honeypot << " "
              << logbook::to_string(r.type) << " peer#" << r.peer << " "
              << (r.high_id() ? "HighID" : "LowID") << "\n";
  }
  return 0;
}
