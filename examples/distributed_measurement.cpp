// The paper's distributed campaign as an application: 24 honeypots on one
// server, 4 advertised files, two content strategies, a month of simulated
// time — then the full analysis pass over the merged anonymised log.
//
// Run: ./build/examples/distributed_measurement [--scale=0.05] [--days=32]

#include <iostream>
#include <string>

#include "analysis/log_stats.hpp"
#include "analysis/report.hpp"
#include "analysis/subsets.hpp"
#include "scenario/scenario.hpp"

using namespace edhp;

int main(int argc, char** argv) {
  scenario::DistributedConfig config;
  config.scale = 0.05;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--scale=", 0) == 0) config.scale = std::stod(arg.substr(8));
    if (arg.rfind("--days=", 0) == 0) config.days = std::stod(arg.substr(7));
    if (arg.rfind("--seed=", 0) == 0) config.seed = std::stoull(arg.substr(7));
  }

  std::cout << "distributed measurement: " << config.honeypots
            << " honeypots, " << config.days << " days, scale " << config.scale
            << "\n";
  const auto result = scenario::run_distributed(config, &std::cout);

  // --- Campaign summary -----------------------------------------------------
  std::vector<std::pair<std::string, std::string>> rows;
  rows.emplace_back("distinct peers", analysis::with_commas(result.distinct_peers));
  rows.emplace_back("distinct files observed",
                    analysis::with_commas(result.observed.distinct));
  rows.emplace_back("log records",
                    analysis::with_commas(result.merged.records.size()));
  rows.emplace_back("honeypot relaunches (host crashes)",
                    analysis::with_commas(result.relaunches));
  rows.emplace_back("published blacklist reports",
                    analysis::with_commas(result.blacklist_reports));
  rows.emplace_back("wire messages simulated",
                    analysis::with_commas(result.wire_messages));
  rows.emplace_back("simulation events",
                    analysis::with_commas(result.sim_events));
  analysis::print_kv(std::cout, "campaign summary", rows);

  // --- Strategy comparison ----------------------------------------------------
  const auto days = static_cast<std::size_t>(result.days);
  for (auto type : {logbook::QueryType::hello, logbook::QueryType::start_upload}) {
    const auto rc = analysis::distinct_peers_by_day(
        result.merged, type, days, scenario::strategy_filter(result, true));
    const auto nc = analysis::distinct_peers_by_day(
        result.merged, type, days, scenario::strategy_filter(result, false));
    std::cout << logbook::to_string(type) << " peers: random-content "
              << rc.total << " vs no-content " << nc.total << "\n";
  }

  // --- How many honeypots were worth it? --------------------------------------
  const auto sets = analysis::peer_sets_by_honeypot(result.merged, result.honeypots);
  analysis::ThreadPool pool;
  const auto curve = analysis::subset_union_curve(sets, 100, Rng(1), &pool);
  std::cout << "\nmarginal value of each additional honeypot (avg of 100 "
               "subsets):\n";
  for (std::size_t n = 1; n < curve.size(); n += 4) {
    std::cout << "  " << n + 1 << " honeypots: " << curve.avg[n] << " peers (+"
              << curve.avg[n] - curve.avg[n - 1] << ")\n";
  }
  return 0;
}
