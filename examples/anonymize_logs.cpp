// The manager-side data pipeline in isolation: take per-honeypot stage-1
// logs (written to disk in the binary format), merge them, run stage-2
// renumbering, anonymise a filename corpus, and export CSV — exactly what
// an operator does after a real campaign before publishing the dataset.
//
// Run: ./build/examples/anonymize_logs

#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <sstream>

#include "anonymize/ip_anonymizer.hpp"
#include "anonymize/name_anonymizer.hpp"
#include "anonymize/renumber.hpp"
#include "logbook/log_io.hpp"
#include "logbook/merge.hpp"

using namespace edhp;

namespace {

/// Fabricate a small stage-1 log, as a honeypot would write it: IPs pass
/// through the salted one-way hash before the record exists.
logbook::LogFile make_stage1_log(std::uint16_t hp_id, const std::string& salt) {
  anonymize::IpAnonymizer stage1(salt);
  logbook::LogFile log;
  log.header.honeypot = hp_id;
  log.header.honeypot_name = "hp-" + std::to_string(hp_id);
  log.header.strategy = hp_id % 2 ? "random-content" : "no-content";
  log.header.server_name = "big-server";
  log.header.server_ip = 0x50E08101;
  log.header.server_port = 4661;

  const auto name_ref = log.intern("eMule 0.49b");
  // Three peers, one shared across honeypots (IP 82.34.1.9).
  const IpAddr peers[3] = {IpAddr(82, 34, 1, 9),
                           IpAddr(90, 10, 0, static_cast<std::uint8_t>(hp_id)),
                           IpAddr(134, 157, 8, 44)};
  double t = 60.0 * hp_id;
  for (const auto& ip : peers) {
    logbook::LogRecord r;
    r.timestamp = t += 30;
    r.honeypot = hp_id;
    r.type = logbook::QueryType::hello;
    r.peer = stage1.anonymize(ip);  // never the raw address
    r.user = 0x1111ull * (hp_id + 1u);
    r.peer_port = 4662;
    r.name_ref = name_ref;
    r.flags = logbook::kFlagHighId;
    log.records.push_back(r);
  }
  return log;
}

}  // namespace

int main() {
  const std::string salt = "campaign-2008-10-salt";  // shared by the manager
  const auto dir = std::filesystem::temp_directory_path() / "edhp-logs";
  std::filesystem::create_directories(dir);

  // 1. Honeypots write stage-1 logs to disk.
  std::vector<std::string> paths;
  for (std::uint16_t hp = 0; hp < 3; ++hp) {
    const auto log = make_stage1_log(hp, salt);
    const auto path = (dir / ("hp-" + std::to_string(hp) + ".edhplog")).string();
    logbook::save(path, log);
    paths.push_back(path);
    std::cout << "wrote " << path << " (" << log.records.size()
              << " records, stage-1 hashes)\n";
  }

  // 2. The manager gathers and merges them.
  std::vector<logbook::LogFile> logs;
  for (const auto& path : paths) {
    logs.push_back(logbook::load(path));
  }
  auto merged = logbook::merge_logs(logs);
  std::cout << "\nmerged: " << merged.records.size()
            << " records across 3 honeypots\n";

  // 3. Stage-2: coherent renumbering. The shared peer keeps one identity.
  const auto distinct = anonymize::renumber_peers(merged);
  std::cout << "stage-2 renumbering: " << distinct
            << " distinct peers (expected 5: two peers contacted every "
               "honeypot, three were local to one)\n";

  // 4. Filename anonymisation for the observed-files catalog.
  std::vector<std::string> observed_names{
      "Holiday.Video.2008.DVDRip.avi", "holiday.photos.2008.rar",
      "john_smith_birthday_party.avi", "linux-distribution-2008.10.iso",
      "jane.cv.2008.pdf",
  };
  anonymize::NameAnonymizer names(observed_names, 2);
  std::cout << "\nfilename anonymisation (threshold 2):\n";
  for (const auto& n : observed_names) {
    std::cout << "  " << n << "  ->  " << names.anonymize(n) << "\n";
  }
  const auto stats = names.stats();
  std::cout << "kept " << stats.kept_words << " frequent words, replaced "
            << stats.replaced_words << " rare ones\n";

  // 5. Publishable CSV.
  std::ostringstream csv;
  logbook::write_csv(csv, merged);
  std::cout << "\npublishable CSV (first lines):\n";
  std::istringstream lines(csv.str());
  std::string line;
  for (int i = 0; i < 5 && std::getline(lines, line); ++i) {
    std::cout << "  " << line << "\n";
  }

  if (std::getenv("EDHP_KEEP_LOGS") != nullptr) {
    std::cout << "\nEDHP_KEEP_LOGS set: logs left in " << dir.string()
              << " (try tools/edhp_inspect on them)\n";
  } else {
    std::filesystem::remove_all(dir);
  }
  return 0;
}
