// Multi-server deployment: the paper's suggested strategy of assigning
// honeypots to *different* servers for a more global view, with server
// choice guided by a UDP load survey ("resources and number of users").
//
// Run: ./build/examples/multi_server_measurement [--scale=0.1] [--days=10]

#include <iostream>
#include <string>

#include "analysis/co_interest.hpp"
#include "analysis/report.hpp"
#include "scenario/multi_server.hpp"

using namespace edhp;

int main(int argc, char** argv) {
  scenario::MultiServerConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--scale=", 0) == 0) config.scale = std::stod(arg.substr(8));
    if (arg.rfind("--days=", 0) == 0) config.days = std::stod(arg.substr(7));
    if (arg.rfind("--seed=", 0) == 0) config.seed = std::stoull(arg.substr(7));
  }

  std::cout << "multi-server measurement: " << config.honeypots
            << " honeypots over " << config.server_sizes.size()
            << " servers, " << config.days << " days, scale " << config.scale
            << "\n\n";
  const auto result = scenario::run_multi_server(config, &std::cout);

  std::cout << "\nmanager's UDP survey (busiest first):\n";
  for (const auto& [name, users] : result.survey) {
    std::cout << "  " << name << ": " << users << " users\n";
  }

  std::cout << "\nhoneypot assignment and yield:\n";
  for (std::size_t h = 0; h < result.server_of_honeypot.size(); ++h) {
    std::cout << "  honeypot " << h << " -> server-"
              << result.server_of_honeypot[h] << ": "
              << result.peers_per_honeypot[h] << " distinct peers\n";
  }

  std::vector<std::pair<std::string, std::string>> rows;
  rows.emplace_back("distinct peers (union)",
                    analysis::with_commas(result.base.distinct_peers));
  rows.emplace_back("log records",
                    analysis::with_commas(result.base.merged.records.size()));
  analysis::print_kv(std::cout, "fleet total", rows);

  // Cross-server union vs the best single honeypot: the "global view" gain.
  std::uint64_t best_single = 0;
  for (auto v : result.peers_per_honeypot) best_single = std::max(best_single, v);
  if (best_single > 0) {
    std::cout << "union/best-single-honeypot ratio: "
              << static_cast<double>(result.base.distinct_peers) /
                     static_cast<double>(best_single)
              << "x (spreading over servers reaches peers a single "
                 "deployment cannot)\n";
  }

  // Bonus: the paper's follow-up analysis on this dataset.
  const auto summary = analysis::co_interest_summary(result.base.merged);
  std::cout << "\nco-interest: " << summary.multi_file_peers << " of "
            << summary.attributed_peers
            << " attributed peers queried several files (avg "
            << summary.avg_files_per_peer << " files/peer)\n";
  return 0;
}
