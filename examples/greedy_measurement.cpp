// The paper's greedy campaign as an application: one honeypot that asks
// every contacting peer for its shared-file list, adopts everything during
// the first day, and then simply logs for two weeks.
//
// Run: ./build/examples/greedy_measurement [--scale=0.05] [--days=15]

#include <iostream>
#include <string>

#include "analysis/log_stats.hpp"
#include "analysis/report.hpp"
#include "scenario/scenario.hpp"

using namespace edhp;

int main(int argc, char** argv) {
  scenario::GreedyConfig config;
  config.scale = 0.05;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--scale=", 0) == 0) config.scale = std::stod(arg.substr(8));
    if (arg.rfind("--days=", 0) == 0) config.days = std::stod(arg.substr(7));
    if (arg.rfind("--seed=", 0) == 0) config.seed = std::stoull(arg.substr(7));
  }

  std::cout << "greedy measurement: 1 honeypot, " << config.days
            << " days, harvest window " << config.harvest_window / kDay
            << " day(s), scale " << config.scale << "\n";
  const auto result = scenario::run_greedy(config, &std::cout);

  std::vector<std::pair<std::string, std::string>> rows;
  rows.emplace_back("advertised files after harvest",
                    analysis::with_commas(result.advertised_files));
  rows.emplace_back("distinct peers", analysis::with_commas(result.distinct_peers));
  rows.emplace_back("distinct files observed",
                    analysis::with_commas(result.observed.distinct));
  {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.1f TB",
                  static_cast<double>(result.observed.bytes) / 1e12);
    rows.emplace_back("space covered by observed files", buf);
  }
  rows.emplace_back("log records",
                    analysis::with_commas(result.merged.records.size()));
  analysis::print_kv(std::cout, "campaign summary", rows);

  // Per-day novelty: the signature of Fig 3.
  const auto series = analysis::distinct_peers_by_day(
      result.merged, std::nullopt, static_cast<std::size_t>(config.days));
  std::cout << "new peers per day (day 1 is the harvest phase):\n";
  for (std::size_t d = 0; d < series.fresh.size(); ++d) {
    std::cout << "  day " << d + 1 << ": " << series.fresh[d] << "\n";
  }

  // The most and least queried files, as in the paper's Fig 12 commentary.
  const auto popularity = analysis::file_popularity(result.merged);
  if (!popularity.empty()) {
    std::cout << "most queried file: " << popularity.front().peers
              << " peers; least: " << popularity.back().peers << " peers over "
              << popularity.size() << " queried files\n";
  }
  return 0;
}
