file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_blacklist.dir/bench_ablation_blacklist.cpp.o"
  "CMakeFiles/bench_ablation_blacklist.dir/bench_ablation_blacklist.cpp.o.d"
  "bench_ablation_blacklist"
  "bench_ablation_blacklist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_blacklist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
