file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_duration_distributed.dir/bench_fig02_duration_distributed.cpp.o"
  "CMakeFiles/bench_fig02_duration_distributed.dir/bench_fig02_duration_distributed.cpp.o.d"
  "bench_fig02_duration_distributed"
  "bench_fig02_duration_distributed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_duration_distributed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
