# Empty compiler generated dependencies file for bench_fig02_duration_distributed.
# This may be replaced when dependencies are built.
