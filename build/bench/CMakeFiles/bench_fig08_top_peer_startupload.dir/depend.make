# Empty dependencies file for bench_fig08_top_peer_startupload.
# This may be replaced when dependencies are built.
