file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_top_peer_startupload.dir/bench_fig08_top_peer_startupload.cpp.o"
  "CMakeFiles/bench_fig08_top_peer_startupload.dir/bench_fig08_top_peer_startupload.cpp.o.d"
  "bench_fig08_top_peer_startupload"
  "bench_fig08_top_peer_startupload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_top_peer_startupload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
