file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_honeypot_subsets.dir/bench_fig10_honeypot_subsets.cpp.o"
  "CMakeFiles/bench_fig10_honeypot_subsets.dir/bench_fig10_honeypot_subsets.cpp.o.d"
  "bench_fig10_honeypot_subsets"
  "bench_fig10_honeypot_subsets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_honeypot_subsets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
