# Empty compiler generated dependencies file for bench_fig10_honeypot_subsets.
# This may be replaced when dependencies are built.
