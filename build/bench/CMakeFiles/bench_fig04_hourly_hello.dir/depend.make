# Empty dependencies file for bench_fig04_hourly_hello.
# This may be replaced when dependencies are built.
