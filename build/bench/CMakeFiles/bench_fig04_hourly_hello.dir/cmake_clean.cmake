file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_hourly_hello.dir/bench_fig04_hourly_hello.cpp.o"
  "CMakeFiles/bench_fig04_hourly_hello.dir/bench_fig04_hourly_hello.cpp.o.d"
  "bench_fig04_hourly_hello"
  "bench_fig04_hourly_hello.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_hourly_hello.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
