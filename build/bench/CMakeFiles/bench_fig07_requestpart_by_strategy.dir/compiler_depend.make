# Empty compiler generated dependencies file for bench_fig07_requestpart_by_strategy.
# This may be replaced when dependencies are built.
