file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_requestpart_by_strategy.dir/bench_fig07_requestpart_by_strategy.cpp.o"
  "CMakeFiles/bench_fig07_requestpart_by_strategy.dir/bench_fig07_requestpart_by_strategy.cpp.o.d"
  "bench_fig07_requestpart_by_strategy"
  "bench_fig07_requestpart_by_strategy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_requestpart_by_strategy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
