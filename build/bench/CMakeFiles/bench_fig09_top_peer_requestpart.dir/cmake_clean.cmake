file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_top_peer_requestpart.dir/bench_fig09_top_peer_requestpart.cpp.o"
  "CMakeFiles/bench_fig09_top_peer_requestpart.dir/bench_fig09_top_peer_requestpart.cpp.o.d"
  "bench_fig09_top_peer_requestpart"
  "bench_fig09_top_peer_requestpart.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_top_peer_requestpart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
