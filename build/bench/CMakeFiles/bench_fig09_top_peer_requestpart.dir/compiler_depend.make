# Empty compiler generated dependencies file for bench_fig09_top_peer_requestpart.
# This may be replaced when dependencies are built.
