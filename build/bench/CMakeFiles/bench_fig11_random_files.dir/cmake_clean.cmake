file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_random_files.dir/bench_fig11_random_files.cpp.o"
  "CMakeFiles/bench_fig11_random_files.dir/bench_fig11_random_files.cpp.o.d"
  "bench_fig11_random_files"
  "bench_fig11_random_files.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_random_files.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
