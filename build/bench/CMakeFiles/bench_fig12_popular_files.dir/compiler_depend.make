# Empty compiler generated dependencies file for bench_fig12_popular_files.
# This may be replaced when dependencies are built.
