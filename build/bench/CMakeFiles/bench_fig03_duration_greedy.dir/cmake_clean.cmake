file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_duration_greedy.dir/bench_fig03_duration_greedy.cpp.o"
  "CMakeFiles/bench_fig03_duration_greedy.dir/bench_fig03_duration_greedy.cpp.o.d"
  "bench_fig03_duration_greedy"
  "bench_fig03_duration_greedy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_duration_greedy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
