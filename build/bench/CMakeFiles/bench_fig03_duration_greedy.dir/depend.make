# Empty dependencies file for bench_fig03_duration_greedy.
# This may be replaced when dependencies are built.
