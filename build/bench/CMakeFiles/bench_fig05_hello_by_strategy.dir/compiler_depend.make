# Empty compiler generated dependencies file for bench_fig05_hello_by_strategy.
# This may be replaced when dependencies are built.
