# Empty dependencies file for bench_micro_server.
# This may be replaced when dependencies are built.
