file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_server.dir/bench_micro_server.cpp.o"
  "CMakeFiles/bench_micro_server.dir/bench_micro_server.cpp.o.d"
  "bench_micro_server"
  "bench_micro_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
