# Empty compiler generated dependencies file for bench_fig06_startupload_by_strategy.
# This may be replaced when dependencies are built.
