# Empty dependencies file for edhp_common.
# This may be replaced when dependencies are built.
