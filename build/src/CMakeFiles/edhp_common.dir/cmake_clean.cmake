file(REMOVE_RECURSE
  "CMakeFiles/edhp_common.dir/common/bytes.cpp.o"
  "CMakeFiles/edhp_common.dir/common/bytes.cpp.o.d"
  "CMakeFiles/edhp_common.dir/common/ids.cpp.o"
  "CMakeFiles/edhp_common.dir/common/ids.cpp.o.d"
  "CMakeFiles/edhp_common.dir/common/md4.cpp.o"
  "CMakeFiles/edhp_common.dir/common/md4.cpp.o.d"
  "CMakeFiles/edhp_common.dir/common/rng.cpp.o"
  "CMakeFiles/edhp_common.dir/common/rng.cpp.o.d"
  "CMakeFiles/edhp_common.dir/common/sha1.cpp.o"
  "CMakeFiles/edhp_common.dir/common/sha1.cpp.o.d"
  "CMakeFiles/edhp_common.dir/common/text.cpp.o"
  "CMakeFiles/edhp_common.dir/common/text.cpp.o.d"
  "libedhp_common.a"
  "libedhp_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edhp_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
