file(REMOVE_RECURSE
  "libedhp_common.a"
)
