file(REMOVE_RECURSE
  "CMakeFiles/edhp_server.dir/server/index.cpp.o"
  "CMakeFiles/edhp_server.dir/server/index.cpp.o.d"
  "CMakeFiles/edhp_server.dir/server/server.cpp.o"
  "CMakeFiles/edhp_server.dir/server/server.cpp.o.d"
  "libedhp_server.a"
  "libedhp_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edhp_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
