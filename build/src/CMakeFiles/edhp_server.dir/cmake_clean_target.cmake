file(REMOVE_RECURSE
  "libedhp_server.a"
)
