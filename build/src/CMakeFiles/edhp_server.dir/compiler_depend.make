# Empty compiler generated dependencies file for edhp_server.
# This may be replaced when dependencies are built.
