file(REMOVE_RECURSE
  "CMakeFiles/edhp_net.dir/net/network.cpp.o"
  "CMakeFiles/edhp_net.dir/net/network.cpp.o.d"
  "libedhp_net.a"
  "libedhp_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edhp_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
