file(REMOVE_RECURSE
  "libedhp_net.a"
)
