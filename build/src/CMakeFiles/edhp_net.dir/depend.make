# Empty dependencies file for edhp_net.
# This may be replaced when dependencies are built.
