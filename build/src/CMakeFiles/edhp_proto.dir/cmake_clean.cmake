file(REMOVE_RECURSE
  "CMakeFiles/edhp_proto.dir/proto/filehash.cpp.o"
  "CMakeFiles/edhp_proto.dir/proto/filehash.cpp.o.d"
  "CMakeFiles/edhp_proto.dir/proto/messages.cpp.o"
  "CMakeFiles/edhp_proto.dir/proto/messages.cpp.o.d"
  "CMakeFiles/edhp_proto.dir/proto/tags.cpp.o"
  "CMakeFiles/edhp_proto.dir/proto/tags.cpp.o.d"
  "CMakeFiles/edhp_proto.dir/proto/udp_messages.cpp.o"
  "CMakeFiles/edhp_proto.dir/proto/udp_messages.cpp.o.d"
  "libedhp_proto.a"
  "libedhp_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edhp_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
