# Empty dependencies file for edhp_proto.
# This may be replaced when dependencies are built.
