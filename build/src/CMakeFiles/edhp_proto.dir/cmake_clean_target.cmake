file(REMOVE_RECURSE
  "libedhp_proto.a"
)
