file(REMOVE_RECURSE
  "CMakeFiles/edhp_honeypot.dir/honeypot/honeypot.cpp.o"
  "CMakeFiles/edhp_honeypot.dir/honeypot/honeypot.cpp.o.d"
  "CMakeFiles/edhp_honeypot.dir/honeypot/manager.cpp.o"
  "CMakeFiles/edhp_honeypot.dir/honeypot/manager.cpp.o.d"
  "libedhp_honeypot.a"
  "libedhp_honeypot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edhp_honeypot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
