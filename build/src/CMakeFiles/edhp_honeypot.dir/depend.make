# Empty dependencies file for edhp_honeypot.
# This may be replaced when dependencies are built.
