file(REMOVE_RECURSE
  "libedhp_honeypot.a"
)
