
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/logbook/log_io.cpp" "src/CMakeFiles/edhp_logbook.dir/logbook/log_io.cpp.o" "gcc" "src/CMakeFiles/edhp_logbook.dir/logbook/log_io.cpp.o.d"
  "/root/repo/src/logbook/merge.cpp" "src/CMakeFiles/edhp_logbook.dir/logbook/merge.cpp.o" "gcc" "src/CMakeFiles/edhp_logbook.dir/logbook/merge.cpp.o.d"
  "/root/repo/src/logbook/record.cpp" "src/CMakeFiles/edhp_logbook.dir/logbook/record.cpp.o" "gcc" "src/CMakeFiles/edhp_logbook.dir/logbook/record.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/edhp_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/edhp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
