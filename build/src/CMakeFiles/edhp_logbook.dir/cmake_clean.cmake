file(REMOVE_RECURSE
  "CMakeFiles/edhp_logbook.dir/logbook/log_io.cpp.o"
  "CMakeFiles/edhp_logbook.dir/logbook/log_io.cpp.o.d"
  "CMakeFiles/edhp_logbook.dir/logbook/merge.cpp.o"
  "CMakeFiles/edhp_logbook.dir/logbook/merge.cpp.o.d"
  "CMakeFiles/edhp_logbook.dir/logbook/record.cpp.o"
  "CMakeFiles/edhp_logbook.dir/logbook/record.cpp.o.d"
  "libedhp_logbook.a"
  "libedhp_logbook.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edhp_logbook.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
