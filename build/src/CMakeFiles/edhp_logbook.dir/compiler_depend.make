# Empty compiler generated dependencies file for edhp_logbook.
# This may be replaced when dependencies are built.
