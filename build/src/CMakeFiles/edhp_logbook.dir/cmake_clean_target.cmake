file(REMOVE_RECURSE
  "libedhp_logbook.a"
)
