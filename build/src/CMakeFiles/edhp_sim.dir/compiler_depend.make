# Empty compiler generated dependencies file for edhp_sim.
# This may be replaced when dependencies are built.
