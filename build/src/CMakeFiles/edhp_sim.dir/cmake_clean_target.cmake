file(REMOVE_RECURSE
  "libedhp_sim.a"
)
