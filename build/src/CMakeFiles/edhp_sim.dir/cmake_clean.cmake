file(REMOVE_RECURSE
  "CMakeFiles/edhp_sim.dir/sim/diurnal.cpp.o"
  "CMakeFiles/edhp_sim.dir/sim/diurnal.cpp.o.d"
  "CMakeFiles/edhp_sim.dir/sim/metrics.cpp.o"
  "CMakeFiles/edhp_sim.dir/sim/metrics.cpp.o.d"
  "CMakeFiles/edhp_sim.dir/sim/simulation.cpp.o"
  "CMakeFiles/edhp_sim.dir/sim/simulation.cpp.o.d"
  "libedhp_sim.a"
  "libedhp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edhp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
