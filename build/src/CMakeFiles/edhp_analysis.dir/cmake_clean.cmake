file(REMOVE_RECURSE
  "CMakeFiles/edhp_analysis.dir/analysis/client_stats.cpp.o"
  "CMakeFiles/edhp_analysis.dir/analysis/client_stats.cpp.o.d"
  "CMakeFiles/edhp_analysis.dir/analysis/co_interest.cpp.o"
  "CMakeFiles/edhp_analysis.dir/analysis/co_interest.cpp.o.d"
  "CMakeFiles/edhp_analysis.dir/analysis/log_stats.cpp.o"
  "CMakeFiles/edhp_analysis.dir/analysis/log_stats.cpp.o.d"
  "CMakeFiles/edhp_analysis.dir/analysis/report.cpp.o"
  "CMakeFiles/edhp_analysis.dir/analysis/report.cpp.o.d"
  "CMakeFiles/edhp_analysis.dir/analysis/subsets.cpp.o"
  "CMakeFiles/edhp_analysis.dir/analysis/subsets.cpp.o.d"
  "CMakeFiles/edhp_analysis.dir/analysis/thread_pool.cpp.o"
  "CMakeFiles/edhp_analysis.dir/analysis/thread_pool.cpp.o.d"
  "libedhp_analysis.a"
  "libedhp_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edhp_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
