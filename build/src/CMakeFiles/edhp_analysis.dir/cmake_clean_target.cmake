file(REMOVE_RECURSE
  "libedhp_analysis.a"
)
