# Empty compiler generated dependencies file for edhp_analysis.
# This may be replaced when dependencies are built.
