
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/client_stats.cpp" "src/CMakeFiles/edhp_analysis.dir/analysis/client_stats.cpp.o" "gcc" "src/CMakeFiles/edhp_analysis.dir/analysis/client_stats.cpp.o.d"
  "/root/repo/src/analysis/co_interest.cpp" "src/CMakeFiles/edhp_analysis.dir/analysis/co_interest.cpp.o" "gcc" "src/CMakeFiles/edhp_analysis.dir/analysis/co_interest.cpp.o.d"
  "/root/repo/src/analysis/log_stats.cpp" "src/CMakeFiles/edhp_analysis.dir/analysis/log_stats.cpp.o" "gcc" "src/CMakeFiles/edhp_analysis.dir/analysis/log_stats.cpp.o.d"
  "/root/repo/src/analysis/report.cpp" "src/CMakeFiles/edhp_analysis.dir/analysis/report.cpp.o" "gcc" "src/CMakeFiles/edhp_analysis.dir/analysis/report.cpp.o.d"
  "/root/repo/src/analysis/subsets.cpp" "src/CMakeFiles/edhp_analysis.dir/analysis/subsets.cpp.o" "gcc" "src/CMakeFiles/edhp_analysis.dir/analysis/subsets.cpp.o.d"
  "/root/repo/src/analysis/thread_pool.cpp" "src/CMakeFiles/edhp_analysis.dir/analysis/thread_pool.cpp.o" "gcc" "src/CMakeFiles/edhp_analysis.dir/analysis/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/edhp_logbook.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/edhp_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/edhp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
