file(REMOVE_RECURSE
  "CMakeFiles/edhp_scenario.dir/scenario/multi_server.cpp.o"
  "CMakeFiles/edhp_scenario.dir/scenario/multi_server.cpp.o.d"
  "CMakeFiles/edhp_scenario.dir/scenario/scenario.cpp.o"
  "CMakeFiles/edhp_scenario.dir/scenario/scenario.cpp.o.d"
  "libedhp_scenario.a"
  "libedhp_scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edhp_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
