# Empty dependencies file for edhp_scenario.
# This may be replaced when dependencies are built.
