file(REMOVE_RECURSE
  "libedhp_scenario.a"
)
