# Empty dependencies file for edhp_peer.
# This may be replaced when dependencies are built.
