file(REMOVE_RECURSE
  "CMakeFiles/edhp_peer.dir/peer/catalog.cpp.o"
  "CMakeFiles/edhp_peer.dir/peer/catalog.cpp.o.d"
  "CMakeFiles/edhp_peer.dir/peer/downloader.cpp.o"
  "CMakeFiles/edhp_peer.dir/peer/downloader.cpp.o.d"
  "CMakeFiles/edhp_peer.dir/peer/population.cpp.o"
  "CMakeFiles/edhp_peer.dir/peer/population.cpp.o.d"
  "CMakeFiles/edhp_peer.dir/peer/profile.cpp.o"
  "CMakeFiles/edhp_peer.dir/peer/profile.cpp.o.d"
  "CMakeFiles/edhp_peer.dir/peer/top_peer.cpp.o"
  "CMakeFiles/edhp_peer.dir/peer/top_peer.cpp.o.d"
  "libedhp_peer.a"
  "libedhp_peer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edhp_peer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
