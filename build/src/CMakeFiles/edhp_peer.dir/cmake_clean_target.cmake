file(REMOVE_RECURSE
  "libedhp_peer.a"
)
