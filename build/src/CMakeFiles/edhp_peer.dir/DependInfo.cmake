
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/peer/catalog.cpp" "src/CMakeFiles/edhp_peer.dir/peer/catalog.cpp.o" "gcc" "src/CMakeFiles/edhp_peer.dir/peer/catalog.cpp.o.d"
  "/root/repo/src/peer/downloader.cpp" "src/CMakeFiles/edhp_peer.dir/peer/downloader.cpp.o" "gcc" "src/CMakeFiles/edhp_peer.dir/peer/downloader.cpp.o.d"
  "/root/repo/src/peer/population.cpp" "src/CMakeFiles/edhp_peer.dir/peer/population.cpp.o" "gcc" "src/CMakeFiles/edhp_peer.dir/peer/population.cpp.o.d"
  "/root/repo/src/peer/profile.cpp" "src/CMakeFiles/edhp_peer.dir/peer/profile.cpp.o" "gcc" "src/CMakeFiles/edhp_peer.dir/peer/profile.cpp.o.d"
  "/root/repo/src/peer/top_peer.cpp" "src/CMakeFiles/edhp_peer.dir/peer/top_peer.cpp.o" "gcc" "src/CMakeFiles/edhp_peer.dir/peer/top_peer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/edhp_server.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/edhp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/edhp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/edhp_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/edhp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
