
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/anonymize/ip_anonymizer.cpp" "src/CMakeFiles/edhp_anonymize.dir/anonymize/ip_anonymizer.cpp.o" "gcc" "src/CMakeFiles/edhp_anonymize.dir/anonymize/ip_anonymizer.cpp.o.d"
  "/root/repo/src/anonymize/name_anonymizer.cpp" "src/CMakeFiles/edhp_anonymize.dir/anonymize/name_anonymizer.cpp.o" "gcc" "src/CMakeFiles/edhp_anonymize.dir/anonymize/name_anonymizer.cpp.o.d"
  "/root/repo/src/anonymize/renumber.cpp" "src/CMakeFiles/edhp_anonymize.dir/anonymize/renumber.cpp.o" "gcc" "src/CMakeFiles/edhp_anonymize.dir/anonymize/renumber.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/edhp_logbook.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/edhp_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/edhp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
