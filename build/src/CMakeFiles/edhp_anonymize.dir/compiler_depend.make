# Empty compiler generated dependencies file for edhp_anonymize.
# This may be replaced when dependencies are built.
