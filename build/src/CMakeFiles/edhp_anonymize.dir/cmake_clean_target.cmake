file(REMOVE_RECURSE
  "libedhp_anonymize.a"
)
