file(REMOVE_RECURSE
  "CMakeFiles/edhp_anonymize.dir/anonymize/ip_anonymizer.cpp.o"
  "CMakeFiles/edhp_anonymize.dir/anonymize/ip_anonymizer.cpp.o.d"
  "CMakeFiles/edhp_anonymize.dir/anonymize/name_anonymizer.cpp.o"
  "CMakeFiles/edhp_anonymize.dir/anonymize/name_anonymizer.cpp.o.d"
  "CMakeFiles/edhp_anonymize.dir/anonymize/renumber.cpp.o"
  "CMakeFiles/edhp_anonymize.dir/anonymize/renumber.cpp.o.d"
  "libedhp_anonymize.a"
  "libedhp_anonymize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edhp_anonymize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
