file(REMOVE_RECURSE
  "CMakeFiles/edhp_inspect.dir/edhp_inspect.cpp.o"
  "CMakeFiles/edhp_inspect.dir/edhp_inspect.cpp.o.d"
  "edhp_inspect"
  "edhp_inspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edhp_inspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
