# Empty dependencies file for edhp_inspect.
# This may be replaced when dependencies are built.
