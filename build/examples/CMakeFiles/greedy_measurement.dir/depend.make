# Empty dependencies file for greedy_measurement.
# This may be replaced when dependencies are built.
