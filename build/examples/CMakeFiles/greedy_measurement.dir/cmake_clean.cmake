file(REMOVE_RECURSE
  "CMakeFiles/greedy_measurement.dir/greedy_measurement.cpp.o"
  "CMakeFiles/greedy_measurement.dir/greedy_measurement.cpp.o.d"
  "greedy_measurement"
  "greedy_measurement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/greedy_measurement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
