# Empty dependencies file for multi_server_measurement.
# This may be replaced when dependencies are built.
