file(REMOVE_RECURSE
  "CMakeFiles/multi_server_measurement.dir/multi_server_measurement.cpp.o"
  "CMakeFiles/multi_server_measurement.dir/multi_server_measurement.cpp.o.d"
  "multi_server_measurement"
  "multi_server_measurement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_server_measurement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
