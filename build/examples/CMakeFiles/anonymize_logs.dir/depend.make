# Empty dependencies file for anonymize_logs.
# This may be replaced when dependencies are built.
