file(REMOVE_RECURSE
  "CMakeFiles/anonymize_logs.dir/anonymize_logs.cpp.o"
  "CMakeFiles/anonymize_logs.dir/anonymize_logs.cpp.o.d"
  "anonymize_logs"
  "anonymize_logs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anonymize_logs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
