# Empty dependencies file for distributed_measurement.
# This may be replaced when dependencies are built.
