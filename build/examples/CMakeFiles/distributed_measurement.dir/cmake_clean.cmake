file(REMOVE_RECURSE
  "CMakeFiles/distributed_measurement.dir/distributed_measurement.cpp.o"
  "CMakeFiles/distributed_measurement.dir/distributed_measurement.cpp.o.d"
  "distributed_measurement"
  "distributed_measurement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_measurement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
