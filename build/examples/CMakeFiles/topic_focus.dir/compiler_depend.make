# Empty compiler generated dependencies file for topic_focus.
# This may be replaced when dependencies are built.
