file(REMOVE_RECURSE
  "CMakeFiles/topic_focus.dir/topic_focus.cpp.o"
  "CMakeFiles/topic_focus.dir/topic_focus.cpp.o.d"
  "topic_focus"
  "topic_focus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topic_focus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
