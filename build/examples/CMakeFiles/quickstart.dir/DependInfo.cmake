
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/edhp_scenario.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/edhp_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/edhp_honeypot.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/edhp_anonymize.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/edhp_logbook.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/edhp_peer.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/edhp_server.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/edhp_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/edhp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/edhp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/edhp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
