file(REMOVE_RECURSE
  "CMakeFiles/test_top_peer.dir/test_top_peer.cpp.o"
  "CMakeFiles/test_top_peer.dir/test_top_peer.cpp.o.d"
  "test_top_peer"
  "test_top_peer.pdb"
  "test_top_peer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_top_peer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
