# Empty compiler generated dependencies file for test_top_peer.
# This may be replaced when dependencies are built.
