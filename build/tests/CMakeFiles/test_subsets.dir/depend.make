# Empty dependencies file for test_subsets.
# This may be replaced when dependencies are built.
