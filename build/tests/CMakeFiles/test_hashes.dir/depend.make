# Empty dependencies file for test_hashes.
# This may be replaced when dependencies are built.
