# Empty compiler generated dependencies file for test_filehash.
# This may be replaced when dependencies are built.
