file(REMOVE_RECURSE
  "CMakeFiles/test_filehash.dir/test_filehash.cpp.o"
  "CMakeFiles/test_filehash.dir/test_filehash.cpp.o.d"
  "test_filehash"
  "test_filehash.pdb"
  "test_filehash[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_filehash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
