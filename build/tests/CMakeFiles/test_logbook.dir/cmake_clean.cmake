file(REMOVE_RECURSE
  "CMakeFiles/test_logbook.dir/test_logbook.cpp.o"
  "CMakeFiles/test_logbook.dir/test_logbook.cpp.o.d"
  "test_logbook"
  "test_logbook.pdb"
  "test_logbook[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_logbook.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
