# Empty compiler generated dependencies file for test_logbook.
# This may be replaced when dependencies are built.
