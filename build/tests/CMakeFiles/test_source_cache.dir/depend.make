# Empty dependencies file for test_source_cache.
# This may be replaced when dependencies are built.
