file(REMOVE_RECURSE
  "CMakeFiles/test_source_cache.dir/test_source_cache.cpp.o"
  "CMakeFiles/test_source_cache.dir/test_source_cache.cpp.o.d"
  "test_source_cache"
  "test_source_cache.pdb"
  "test_source_cache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_source_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
