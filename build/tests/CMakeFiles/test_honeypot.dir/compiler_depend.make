# Empty compiler generated dependencies file for test_honeypot.
# This may be replaced when dependencies are built.
