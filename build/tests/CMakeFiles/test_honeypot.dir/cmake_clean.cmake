file(REMOVE_RECURSE
  "CMakeFiles/test_honeypot.dir/test_honeypot.cpp.o"
  "CMakeFiles/test_honeypot.dir/test_honeypot.cpp.o.d"
  "test_honeypot"
  "test_honeypot.pdb"
  "test_honeypot[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_honeypot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
