# Empty compiler generated dependencies file for test_downloader.
# This may be replaced when dependencies are built.
