file(REMOVE_RECURSE
  "CMakeFiles/test_downloader.dir/test_downloader.cpp.o"
  "CMakeFiles/test_downloader.dir/test_downloader.cpp.o.d"
  "test_downloader"
  "test_downloader.pdb"
  "test_downloader[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_downloader.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
