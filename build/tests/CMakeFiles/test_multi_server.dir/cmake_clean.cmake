file(REMOVE_RECURSE
  "CMakeFiles/test_multi_server.dir/test_multi_server.cpp.o"
  "CMakeFiles/test_multi_server.dir/test_multi_server.cpp.o.d"
  "test_multi_server"
  "test_multi_server.pdb"
  "test_multi_server[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multi_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
