# Empty compiler generated dependencies file for test_multi_server.
# This may be replaced when dependencies are built.
