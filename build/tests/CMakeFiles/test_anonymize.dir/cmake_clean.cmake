file(REMOVE_RECURSE
  "CMakeFiles/test_anonymize.dir/test_anonymize.cpp.o"
  "CMakeFiles/test_anonymize.dir/test_anonymize.cpp.o.d"
  "test_anonymize"
  "test_anonymize.pdb"
  "test_anonymize[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_anonymize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
