file(REMOVE_RECURSE
  "CMakeFiles/test_co_interest.dir/test_co_interest.cpp.o"
  "CMakeFiles/test_co_interest.dir/test_co_interest.cpp.o.d"
  "test_co_interest"
  "test_co_interest.pdb"
  "test_co_interest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_co_interest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
