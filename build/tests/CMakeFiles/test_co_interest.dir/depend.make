# Empty dependencies file for test_co_interest.
# This may be replaced when dependencies are built.
