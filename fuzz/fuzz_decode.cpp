// libFuzzer entry point for the wire codecs.
//
// The first input byte selects the decoder (client-server TCP, client-client
// TCP, or server UDP); the rest is the packet. The contract under fuzzing is
// the same one tests/test_fuzz_codec.cpp pins deterministically: every input
// either parses or throws DecodeError — any other escape (crash, sanitizer
// report, foreign exception) is a finding. Reproduce findings by adding the
// input bytes as a tests/fuzz_corpus/*.hex file.

#include <cstddef>
#include <cstdint>
#include <span>

#include "proto/messages.hpp"
#include "proto/udp_messages.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size == 0) return 0;
  const std::span<const std::uint8_t> packet(data + 1, size - 1);
  try {
    switch (data[0] % 3) {
      case 0:
        (void)edhp::proto::decode(edhp::proto::Channel::client_server, packet);
        break;
      case 1:
        (void)edhp::proto::decode(edhp::proto::Channel::client_client, packet);
        break;
      default:
        (void)edhp::proto::decode_udp(packet);
        break;
    }
  } catch (const edhp::DecodeError&) {
    // Rejected input: the expected outcome for malformed bytes.
  }
  return 0;
}
