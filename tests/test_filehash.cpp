// eDonkey part hashing: part boundaries, multi-part file ids, verification.

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "proto/filehash.hpp"

namespace edhp::proto {
namespace {

std::vector<std::uint8_t> pattern(std::size_t n, std::uint8_t seed = 1) {
  std::vector<std::uint8_t> v(n);
  std::uint8_t x = seed;
  for (auto& b : v) {
    x = static_cast<std::uint8_t>(x * 31 + 7);
    b = x;
  }
  return v;
}

TEST(PartCount, Boundaries) {
  EXPECT_EQ(part_count(0), 1u);
  EXPECT_EQ(part_count(1), 1u);
  EXPECT_EQ(part_count(kPartSize), 1u);
  EXPECT_EQ(part_count(kPartSize + 1), 2u);
  EXPECT_EQ(part_count(3 * kPartSize), 3u);
}

TEST(PartHashes, EmptyFileHasOnePart) {
  const auto parts = part_hashes({});
  ASSERT_EQ(parts.size(), 1u);
  // MD4 of the empty string.
  EXPECT_EQ(to_hex(parts[0]), "31d6cfe0d16ae931b73c59d7e0c089c0");
}

TEST(PartHashes, SinglePartFileIdIsPartDigest) {
  const auto content = pattern(1000);
  const auto parts = part_hashes(content);
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(hash_file(content).bytes(), parts[0]);
}

TEST(PartHashes, MultiPartSplitsAtPartSize) {
  // Use a 2.5-part synthetic file; this allocates ~24 MB once.
  const auto content = pattern(2 * kPartSize + kPartSize / 2);
  const auto parts = part_hashes(content);
  ASSERT_EQ(parts.size(), 3u);
  // Each part digest matches hashing that slice alone.
  std::span<const std::uint8_t> s(content);
  EXPECT_EQ(parts[0], Md4::hash(s.subspan(0, kPartSize)));
  EXPECT_EQ(parts[1], Md4::hash(s.subspan(kPartSize, kPartSize)));
  EXPECT_EQ(parts[2], Md4::hash(s.subspan(2 * kPartSize)));
  // Multi-part file id is the MD4 of concatenated part digests.
  Md4 h;
  for (const auto& p : parts) {
    h.update(std::span<const std::uint8_t>(p.data(), p.size()));
  }
  EXPECT_EQ(hash_file(content), FileId(h.finish()));
}

TEST(FileId, ContentDefinedNotNameDefined) {
  const auto a = pattern(5000, 1);
  const auto b = pattern(5000, 1);
  const auto c = pattern(5000, 2);
  EXPECT_EQ(hash_file(a), hash_file(b));
  EXPECT_NE(hash_file(a), hash_file(c));
}

TEST(VerifyPart, DetectsRandomContent) {
  // This is the client-side check that eventually unmasks a random-content
  // honeypot: the advertised part hash never matches random bytes.
  const auto real = pattern(4096, 9);
  const auto expected = Md4::hash(real);
  EXPECT_TRUE(verify_part(real, expected));

  Rng rng(555);
  std::vector<std::uint8_t> random_bytes(4096);
  for (auto& b : random_bytes) b = static_cast<std::uint8_t>(rng());
  EXPECT_FALSE(verify_part(random_bytes, expected));
}

TEST(VerifyPart, SingleBitFlipDetected) {
  auto data = pattern(1024, 3);
  const auto expected = Md4::hash(data);
  data[512] ^= 0x01;
  EXPECT_FALSE(verify_part(data, expected));
}

TEST(FileIdFromParts, EmptyListYieldsZeroId) {
  EXPECT_TRUE(file_id_from_parts({}).is_zero());
}

}  // namespace
}  // namespace edhp::proto
