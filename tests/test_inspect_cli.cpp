// Smoke tests for the edhp_inspect operator CLI: every mode exercised end to
// end against freshly written fixture files, asserting exit codes and the
// key lines of output. The binary path comes from the build system via
// EDHP_INSPECT_BIN (same pattern as the fuzz corpus dir).

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "common/bytes.hpp"
#include "fault/abuse.hpp"
#include "logbook/journal.hpp"
#include "logbook/log_io.hpp"

namespace edhp {
namespace {

struct RunResult {
  int exit_code = -1;
  std::string output;
};

/// Run the inspect binary with `args`, capturing stdout+stderr.
RunResult run_inspect(const std::string& args) {
  const auto out_path =
      (std::filesystem::temp_directory_path() / "edhp_inspect_out.txt")
          .string();
  const std::string cmd = std::string(EDHP_INSPECT_BIN) + " " + args + " > " +
                          out_path + " 2>&1";
  const int raw = std::system(cmd.c_str());
  RunResult r;
#ifdef WEXITSTATUS
  r.exit_code = WIFEXITED(raw) ? WEXITSTATUS(raw) : -1;
#else
  r.exit_code = raw;
#endif
  std::ifstream f(out_path);
  std::stringstream ss;
  ss << f.rdbuf();
  r.output = ss.str();
  std::remove(out_path.c_str());
  return r;
}

class InspectCliTest : public ::testing::Test {
 protected:
  std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "edhp_inspect_fixtures";

  std::string log_path, journal_path;

  void SetUp() override {
    std::filesystem::create_directories(dir);
    log_path = (dir / "campaign.edhplog").string();
    journal_path = (dir / "manager.edhpjrn").string();

    // A small stage-1 log: two benign records and one hostile-marked one.
    logbook::LogFile log;
    log.header.honeypot = 7;
    log.header.strategy = "no-content";
    log.header.server_name = "srv";
    log.names = {"", "bait.avi"};
    for (int i = 0; i < 2; ++i) {
      logbook::LogRecord r;
      r.timestamp = 100.0 + i;
      r.peer = 1000 + static_cast<std::uint64_t>(i);
      r.user = 42;
      r.honeypot = 7;
      r.name_ref = 1;
      log.records.push_back(r);
    }
    logbook::LogRecord hostile;
    hostile.timestamp = 200.0;
    hostile.peer = 3000;
    hostile.user = fault::kAbuseUserWord;
    hostile.honeypot = 7;
    log.records.push_back(hostile);
    logbook::save(log_path, log);

    // A journal with a few typed entries.
    logbook::Journal journal;
    const std::vector<std::uint8_t> payload{1, 2, 3};
    journal.append(logbook::JournalEntryType::launch, payload);
    journal.append(logbook::JournalEntryType::advertise, payload);
    journal.append(logbook::JournalEntryType::checkpoint, payload);
    journal.append(logbook::JournalEntryType::chunk_stored, payload);
    journal.save(journal_path);
  }

  void TearDown() override { std::filesystem::remove_all(dir); }
};

TEST_F(InspectCliTest, NoArgumentsPrintsUsage) {
  const auto r = run_inspect("");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("usage:"), std::string::npos);
  EXPECT_NE(r.output.find("journal"), std::string::npos);
}

TEST_F(InspectCliTest, StatsMode) {
  const auto r = run_inspect("stats " + log_path);
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("records"), std::string::npos);
  EXPECT_NE(r.output.find("3"), std::string::npos);
  EXPECT_NE(r.output.find("stage-1"), std::string::npos);
}

TEST_F(InspectCliTest, DefenseMode) {
  const auto r = run_inspect("defense " + log_path);
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("hostile-marked"), std::string::npos);
  EXPECT_NE(r.output.find("benign"), std::string::npos);
  // 1 of 3 records is hostile.
  EXPECT_NE(r.output.find("33.333%"), std::string::npos);
}

TEST_F(InspectCliTest, JournalMode) {
  const auto r = run_inspect("journal " + journal_path);
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("entries"), std::string::npos);
  EXPECT_NE(r.output.find("launch"), std::string::npos);
  EXPECT_NE(r.output.find("checkpoint"), std::string::npos);
  EXPECT_NE(r.output.find("chunk_stored"), std::string::npos);
  EXPECT_NE(r.output.find("torn tail"), std::string::npos);
  EXPECT_NE(r.output.find("none"), std::string::npos);
  EXPECT_NE(r.output.find("quarantined"), std::string::npos);
}

TEST_F(InspectCliTest, JournalModeReportsTornTail) {
  // Truncate the journal file mid-frame: the audit reports clean tail loss
  // and still exits 0 (damage is the report, not an error).
  std::filesystem::resize_file(journal_path,
                               std::filesystem::file_size(journal_path) - 2);
  const auto r = run_inspect("journal " + journal_path);
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("clean tail loss"), std::string::npos);
}

TEST_F(InspectCliTest, JournalModeRejectsBadMagic) {
  const auto bad = (dir / "not_a_journal.edhpjrn").string();
  {
    std::ofstream f(bad, std::ios::binary);
    f << "this is not a journal file";
  }
  const auto r = run_inspect("journal " + bad);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("error:"), std::string::npos);
}

TEST_F(InspectCliTest, MergeAndAnonymizePipeline) {
  const auto merged = (dir / "merged.edhplog").string();
  const auto published = (dir / "published.edhplog").string();
  auto r = run_inspect("merge " + merged + " " + log_path);
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("merged 1 logs"), std::string::npos);
  r = run_inspect("anonymize " + merged + " " + published);
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("stage-2 applied"), std::string::npos);
  r = run_inspect("stats " + published);
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("stage-2"), std::string::npos);
}

TEST_F(InspectCliTest, JournalModeCapsQuarantineListing) {
  // 70 one-byte-payload frames, every payload byte flipped after framing:
  // all 70 quarantine, but the audit lists only the first kQuarantineRefCap
  // offsets and reports the overflow.
  logbook::Journal j;
  const std::vector<std::uint8_t> payload{0x55};
  for (int i = 0; i < 70; ++i) {
    j.append(logbook::JournalEntryType::relaunch, payload);
  }
  auto bytes = j.bytes();
  const std::size_t frame = bytes.size() / 70;
  for (std::size_t f = 0; f < 70; ++f) {
    bytes[f * frame + frame - 1] ^= 0xFF;  // last byte = the payload
  }
  const auto path = (dir / "rotted.edhpjrn").string();
  logbook::Journal::from_bytes(std::move(bytes)).save(path);

  const auto r = run_inspect("journal " + path);
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("quarantine listing capped"), std::string::npos);
  EXPECT_NE(r.output.find("first 64 of 70"), std::string::npos);
}

// --- degrade triage mode ----------------------------------------------------

/// Append a degrade_enter entry for honeypot `hp` (reason 4 = disk_quota).
void append_degrade_enter(logbook::Journal& j, std::uint16_t hp) {
  ByteWriter w;
  w.u16(hp);
  w.u8(4);          // DegradeReason::disk_quota
  w.u64(100'000);   // resident spool bytes at the transition
  w.u64(250);       // unspooled tail records
  j.append(logbook::JournalEntryType::degrade_enter, w.view());
}

/// Append a degrade_exit entry with cumulative shed/compaction counters.
void append_degrade_exit(logbook::Journal& j, std::uint16_t hp,
                         std::uint64_t shed) {
  ByteWriter w;
  w.u16(hp);
  w.u64(shed);  // records_shed
  w.u64(3);     // chunks_compacted
  w.u64(2);     // backpressure_cuts
  j.append(logbook::JournalEntryType::degrade_exit, w.view());
}

TEST_F(InspectCliTest, DegradeModeNoDegradationExitsZero) {
  const auto r = run_inspect("degrade " + journal_path);
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("no degradation recorded"), std::string::npos);
}

TEST_F(InspectCliTest, DegradeModeClosedEpisodesExitThree) {
  const auto path = (dir / "degraded.edhpjrn").string();
  logbook::Journal j;
  append_degrade_enter(j, 3);
  append_degrade_exit(j, 3, 17);
  append_degrade_enter(j, 5);
  append_degrade_exit(j, 5, 4);
  j.save(path);
  const auto r = run_inspect("degrade " + path);
  EXPECT_EQ(r.exit_code, 3);
  EXPECT_NE(r.output.find("all episodes closed"), std::string::npos);
  EXPECT_NE(r.output.find("hp 3"), std::string::npos);
  EXPECT_NE(r.output.find("hp 5"), std::string::npos);
  EXPECT_NE(r.output.find("disk_quota"), std::string::npos);
  // 17 + 4 shed records, fully declared.
  EXPECT_NE(r.output.find("21"), std::string::npos);
}

TEST_F(InspectCliTest, DegradeModeOpenEpisodeExitsFour) {
  const auto path = (dir / "still_degraded.edhpjrn").string();
  logbook::Journal j;
  append_degrade_enter(j, 9);
  j.save(path);
  const auto r = run_inspect("degrade " + path);
  EXPECT_EQ(r.exit_code, 4);
  EXPECT_NE(r.output.find("STILL DEGRADED"), std::string::npos);
  EXPECT_NE(r.output.find("degraded at end of journal"), std::string::npos);
}

TEST_F(InspectCliTest, MissingFileFailsCleanly) {
  const auto r = run_inspect("stats " + (dir / "nope.edhplog").string());
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("error:"), std::string::npos);
}

// --- integrity triage mode ---------------------------------------------------

/// Append a probe_verdict entry: honeypot `hp` probing `server`.
void append_probe_verdict(logbook::Journal& j, std::uint16_t hp,
                          bool confirmed, const std::string& server) {
  ByteWriter w;
  w.u16(hp);
  w.u8(confirmed ? 1 : 0);
  w.str16(server);
  j.append(logbook::JournalEntryType::probe_verdict, w.view());
}

/// Append a server_quarantine entry displacing `displaced` slots.
void append_quarantine(logbook::Journal& j, const std::string& server,
                       const std::vector<std::uint32_t>& displaced) {
  ByteWriter w;
  w.str16(server);
  w.u64(1);          // original ServerRef: node id
  w.str16(server);   //   name
  w.u16(4661);       //   port
  w.u64(0);          // reinstate deadline (double bits)
  w.u32(static_cast<std::uint32_t>(displaced.size()));
  for (const auto index : displaced) w.u32(index);
  j.append(logbook::JournalEntryType::server_quarantine, w.view());
}

void append_reinstate(logbook::Journal& j, const std::string& server) {
  ByteWriter w;
  w.str16(server);
  j.append(logbook::JournalEntryType::server_reinstate, w.view());
}

TEST_F(InspectCliTest, IntegrityModeQuietJournalExitsZero) {
  const auto r = run_inspect("integrity " + journal_path);
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("no Byzantine-defense activity"), std::string::npos);
}

TEST_F(InspectCliTest, IntegrityModeReinstatedQuarantineExitsThree) {
  const auto path = (dir / "byzantine.edhpjrn").string();
  logbook::Journal j;
  append_probe_verdict(j, 0, true, "srv-a");
  append_probe_verdict(j, 1, false, "srv-a");
  append_probe_verdict(j, 1, false, "srv-a");
  append_quarantine(j, "srv-a", {1, 2, 3});
  append_reinstate(j, "srv-a");
  j.save(path);
  const auto r = run_inspect("integrity " + path);
  EXPECT_EQ(r.exit_code, 3);
  EXPECT_NE(r.output.find("server srv-a"), std::string::npos);
  EXPECT_NE(r.output.find("1 confirmed, 2 missed"), std::string::npos);
  EXPECT_NE(r.output.find("3 slots displaced"), std::string::npos);
  EXPECT_NE(r.output.find("all quarantines reinstated"), std::string::npos);
}

TEST_F(InspectCliTest, IntegrityModeOpenQuarantineExitsFour) {
  const auto path = (dir / "still_lying.edhpjrn").string();
  logbook::Journal j;
  append_probe_verdict(j, 2, false, "srv-b");
  append_quarantine(j, "srv-b", {0});
  j.save(path);
  const auto r = run_inspect("integrity " + path);
  EXPECT_EQ(r.exit_code, 4);
  EXPECT_NE(r.output.find("STILL QUARANTINED"), std::string::npos);
  EXPECT_NE(r.output.find("quarantined at end of journal"), std::string::npos);
}

// --- clock triage mode -------------------------------------------------------

/// Append a clock_observation entry: honeypot `hp` read `local` at true
/// time `true_time` (the manager's type-18 wire shape).
void append_clock_obs(logbook::Journal& j, std::uint16_t hp, double true_time,
                      double local) {
  ByteWriter w;
  w.u16(hp);
  w.u64(std::bit_cast<std::uint64_t>(true_time));
  w.u64(std::bit_cast<std::uint64_t>(local));
  j.append(logbook::JournalEntryType::clock_observation, w.view());
}

TEST_F(InspectCliTest, ClockModeNoObservationsExitsZero) {
  const auto r = run_inspect("clock " + journal_path);
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("no clock observations"), std::string::npos);
}

TEST_F(InspectCliTest, ClockModeMonotoneClocksExitThree) {
  const auto path = (dir / "skewed.edhpjrn").string();
  logbook::Journal j;
  // hp 2 runs +1000 ppm fast; hp 6 is 30 s behind but steady. Monotone both.
  append_clock_obs(j, 2, 1000.0, 1000.0);
  append_clock_obs(j, 2, 2000.0, 2001.0);
  append_clock_obs(j, 6, 1000.0, 970.0);
  append_clock_obs(j, 6, 2000.0, 1970.0);
  j.save(path);
  const auto r = run_inspect("clock " + path);
  EXPECT_EQ(r.exit_code, 3);
  EXPECT_NE(r.output.find("all clocks monotone"), std::string::npos);
  EXPECT_NE(r.output.find("hp 2"), std::string::npos);
  EXPECT_NE(r.output.find("+1000.0 ppm"), std::string::npos);
  EXPECT_NE(r.output.find("hp 6"), std::string::npos);
  EXPECT_NE(r.output.find("30.000 s"), std::string::npos);
}

TEST_F(InspectCliTest, ClockModeBackwardsClockExitsFour) {
  const auto path = (dir / "backwards.edhpjrn").string();
  logbook::Journal j;
  append_clock_obs(j, 4, 1000.0, 1000.0);
  append_clock_obs(j, 4, 2000.0, 900.0);  // local regressed between sightings
  append_clock_obs(j, 4, 3000.0, 1900.0);
  j.save(path);
  const auto r = run_inspect("clock " + path);
  EXPECT_EQ(r.exit_code, 4);
  EXPECT_NE(r.output.find("BACKWARDS CLOCK"), std::string::npos);
  EXPECT_NE(r.output.find("backwards clock observed"), std::string::npos);
}

TEST_F(InspectCliTest, ClockModeJsonEmitsVerdictLine) {
  const auto path = (dir / "skewed_json.edhpjrn").string();
  logbook::Journal j;
  append_clock_obs(j, 1, 100.0, 100.0);
  append_clock_obs(j, 1, 200.0, 199.0);
  j.save(path);
  const auto r = run_inspect("--json clock " + path);
  EXPECT_EQ(r.exit_code, 3);  // exit-code contract survives --json
  EXPECT_EQ(r.output.front(), '{');
  EXPECT_EQ(std::count(r.output.begin(), r.output.end(), '\n'), 1);
  EXPECT_NE(r.output.find("\"verdict\":\"all clocks monotone\""),
            std::string::npos);
  EXPECT_NE(r.output.find("\"clock observations\":\"2\""), std::string::npos);
}

// --- audit triage mode -------------------------------------------------------

/// Write a chaos-repro file and return its path.
std::string write_cfg(const std::filesystem::path& dir, const std::string& name,
                      const std::string& body) {
  const auto path = (dir / name).string();
  std::ofstream f(path);
  f << body;
  return path;
}

TEST_F(InspectCliTest, AuditModeBalancedRunExitsZero) {
  const auto cfg = write_cfg(dir, "balanced.cfg",
                             "seed=11\nscale=0.01\ndays=0.5\nhoneypots=2\n"
                             "expect=balanced\n");
  const auto r = run_inspect("audit " + cfg);
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("verdict"), std::string::npos);
  EXPECT_NE(r.output.find("balanced"), std::string::npos);
  EXPECT_NE(r.output.find("unaccounted  0"), std::string::npos);
}

TEST_F(InspectCliTest, AuditModeAccountedLossExitsThree) {
  // Host churn destroys an unspooled tail: real loss, but every record of
  // it lands in the lost_tail disposition — accounted, exit 3.
  const auto cfg = write_cfg(dir, "churn.cfg",
                             "seed=97031\nscale=0.02\ndays=1\nhoneypots=4\n"
                             "expect=balanced\nknob host_mtbf=7200\n");
  const auto r = run_inspect("audit " + cfg);
  EXPECT_EQ(r.exit_code, 3);
  EXPECT_NE(r.output.find("accounted loss"), std::string::npos);
}

TEST_F(InspectCliTest, AuditModeUnaccountedLossExitsFour) {
  const auto cfg = write_cfg(dir, "silent.cfg",
                             "seed=11\nscale=0.01\ndays=0.5\nhoneypots=2\n"
                             "expect=imbalance\nknob audit_selftest_drop=50\n");
  const auto r = run_inspect("audit " + cfg);
  EXPECT_EQ(r.exit_code, 4);
  EXPECT_NE(r.output.find("UNACCOUNTED LOSS"), std::string::npos);
}

TEST_F(InspectCliTest, AuditModeJsonEmitsVerdictLine) {
  const auto cfg = write_cfg(dir, "balanced_json.cfg",
                             "seed=11\nscale=0.01\ndays=0.5\nhoneypots=2\n"
                             "expect=balanced\n");
  const auto r = run_inspect("--json audit " + cfg);
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_EQ(r.output.front(), '{');
  EXPECT_EQ(std::count(r.output.begin(), r.output.end(), '\n'), 1);
  EXPECT_NE(r.output.find("\"verdict\":\"balanced\""), std::string::npos);
  EXPECT_NE(r.output.find("\"unaccounted\":\"0\""), std::string::npos);
}

TEST_F(InspectCliTest, AuditModeRejectsMalformedRepro) {
  const auto cfg = write_cfg(dir, "garbage.cfg", "this is not a repro\n");
  const auto r = run_inspect("audit " + cfg);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("error:"), std::string::npos);
}

// --- --json output -----------------------------------------------------------

TEST_F(InspectCliTest, JsonFlagEmitsOneObjectPerFile) {
  const auto r = run_inspect("--json stats " + log_path);
  EXPECT_EQ(r.exit_code, 0);
  // One line, object-shaped, carrying the path and the records row.
  EXPECT_EQ(r.output.front(), '{');
  EXPECT_EQ(std::count(r.output.begin(), r.output.end(), '\n'), 1);
  EXPECT_NE(r.output.find("\"path\":"), std::string::npos);
  EXPECT_NE(r.output.find("\"records\":\"3\""), std::string::npos);
}

TEST_F(InspectCliTest, JsonFlagWorksForJournalAndIntegrityModes) {
  auto r = run_inspect("journal --json " + journal_path);
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_EQ(r.output.front(), '{');
  EXPECT_NE(r.output.find("\"entries\":\"4\""), std::string::npos);

  const auto path = (dir / "byzantine_json.edhpjrn").string();
  logbook::Journal j;
  append_probe_verdict(j, 0, false, "srv-c");
  append_quarantine(j, "srv-c", {7});
  j.save(path);
  r = run_inspect("--json integrity " + path);
  EXPECT_EQ(r.exit_code, 4);  // exit-code contract survives --json
  EXPECT_EQ(r.output.front(), '{');
  EXPECT_NE(r.output.find("\"verdict\":\"quarantined at end of journal\""),
            std::string::npos);
}

}  // namespace
}  // namespace edhp
