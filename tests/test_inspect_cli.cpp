// Smoke tests for the edhp_inspect operator CLI: every mode exercised end to
// end against freshly written fixture files, asserting exit codes and the
// key lines of output. The binary path comes from the build system via
// EDHP_INSPECT_BIN (same pattern as the fuzz corpus dir).

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "fault/abuse.hpp"
#include "logbook/journal.hpp"
#include "logbook/log_io.hpp"

namespace edhp {
namespace {

struct RunResult {
  int exit_code = -1;
  std::string output;
};

/// Run the inspect binary with `args`, capturing stdout+stderr.
RunResult run_inspect(const std::string& args) {
  const auto out_path =
      (std::filesystem::temp_directory_path() / "edhp_inspect_out.txt")
          .string();
  const std::string cmd = std::string(EDHP_INSPECT_BIN) + " " + args + " > " +
                          out_path + " 2>&1";
  const int raw = std::system(cmd.c_str());
  RunResult r;
#ifdef WEXITSTATUS
  r.exit_code = WIFEXITED(raw) ? WEXITSTATUS(raw) : -1;
#else
  r.exit_code = raw;
#endif
  std::ifstream f(out_path);
  std::stringstream ss;
  ss << f.rdbuf();
  r.output = ss.str();
  std::remove(out_path.c_str());
  return r;
}

class InspectCliTest : public ::testing::Test {
 protected:
  std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "edhp_inspect_fixtures";

  std::string log_path, journal_path;

  void SetUp() override {
    std::filesystem::create_directories(dir);
    log_path = (dir / "campaign.edhplog").string();
    journal_path = (dir / "manager.edhpjrn").string();

    // A small stage-1 log: two benign records and one hostile-marked one.
    logbook::LogFile log;
    log.header.honeypot = 7;
    log.header.strategy = "no-content";
    log.header.server_name = "srv";
    log.names = {"", "bait.avi"};
    for (int i = 0; i < 2; ++i) {
      logbook::LogRecord r;
      r.timestamp = 100.0 + i;
      r.peer = 1000 + static_cast<std::uint64_t>(i);
      r.user = 42;
      r.honeypot = 7;
      r.name_ref = 1;
      log.records.push_back(r);
    }
    logbook::LogRecord hostile;
    hostile.timestamp = 200.0;
    hostile.peer = 3000;
    hostile.user = fault::kAbuseUserWord;
    hostile.honeypot = 7;
    log.records.push_back(hostile);
    logbook::save(log_path, log);

    // A journal with a few typed entries.
    logbook::Journal journal;
    const std::vector<std::uint8_t> payload{1, 2, 3};
    journal.append(logbook::JournalEntryType::launch, payload);
    journal.append(logbook::JournalEntryType::advertise, payload);
    journal.append(logbook::JournalEntryType::checkpoint, payload);
    journal.append(logbook::JournalEntryType::chunk_stored, payload);
    journal.save(journal_path);
  }

  void TearDown() override { std::filesystem::remove_all(dir); }
};

TEST_F(InspectCliTest, NoArgumentsPrintsUsage) {
  const auto r = run_inspect("");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("usage:"), std::string::npos);
  EXPECT_NE(r.output.find("journal"), std::string::npos);
}

TEST_F(InspectCliTest, StatsMode) {
  const auto r = run_inspect("stats " + log_path);
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("records"), std::string::npos);
  EXPECT_NE(r.output.find("3"), std::string::npos);
  EXPECT_NE(r.output.find("stage-1"), std::string::npos);
}

TEST_F(InspectCliTest, DefenseMode) {
  const auto r = run_inspect("defense " + log_path);
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("hostile-marked"), std::string::npos);
  EXPECT_NE(r.output.find("benign"), std::string::npos);
  // 1 of 3 records is hostile.
  EXPECT_NE(r.output.find("33.333%"), std::string::npos);
}

TEST_F(InspectCliTest, JournalMode) {
  const auto r = run_inspect("journal " + journal_path);
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("entries"), std::string::npos);
  EXPECT_NE(r.output.find("launch"), std::string::npos);
  EXPECT_NE(r.output.find("checkpoint"), std::string::npos);
  EXPECT_NE(r.output.find("chunk_stored"), std::string::npos);
  EXPECT_NE(r.output.find("torn tail"), std::string::npos);
  EXPECT_NE(r.output.find("none"), std::string::npos);
  EXPECT_NE(r.output.find("quarantined"), std::string::npos);
}

TEST_F(InspectCliTest, JournalModeReportsTornTail) {
  // Truncate the journal file mid-frame: the audit reports clean tail loss
  // and still exits 0 (damage is the report, not an error).
  std::filesystem::resize_file(journal_path,
                               std::filesystem::file_size(journal_path) - 2);
  const auto r = run_inspect("journal " + journal_path);
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("clean tail loss"), std::string::npos);
}

TEST_F(InspectCliTest, JournalModeRejectsBadMagic) {
  const auto bad = (dir / "not_a_journal.edhpjrn").string();
  {
    std::ofstream f(bad, std::ios::binary);
    f << "this is not a journal file";
  }
  const auto r = run_inspect("journal " + bad);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("error:"), std::string::npos);
}

TEST_F(InspectCliTest, MergeAndAnonymizePipeline) {
  const auto merged = (dir / "merged.edhplog").string();
  const auto published = (dir / "published.edhplog").string();
  auto r = run_inspect("merge " + merged + " " + log_path);
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("merged 1 logs"), std::string::npos);
  r = run_inspect("anonymize " + merged + " " + published);
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("stage-2 applied"), std::string::npos);
  r = run_inspect("stats " + published);
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("stage-2"), std::string::npos);
}

TEST_F(InspectCliTest, MissingFileFailsCleanly) {
  const auto r = run_inspect("stats " + (dir / "nope.edhplog").string());
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("error:"), std::string::npos);
}

}  // namespace
}  // namespace edhp
