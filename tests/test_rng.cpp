// Statistical and determinism tests for the RNG and samplers.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/rng.hpp"

namespace edhp {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LE(same, 1);
}

TEST(Rng, SplitStreamsAreIndependentAndStable) {
  Rng root(7);
  Rng c1 = root.split(1);
  Rng c2 = root.split(2);
  Rng c1_again = root.split(1);
  EXPECT_EQ(c1(), c1_again());
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (c1() == c2()) ++same;
  }
  EXPECT_LE(same, 1);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(3);
  double lo = 1.0, hi = 0.0, sum = 0.0;
  constexpr int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double u = r.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    lo = std::min(lo, u);
    hi = std::max(hi, u);
    sum += u;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.02);
  EXPECT_LT(lo, 0.01);
  EXPECT_GT(hi, 0.99);
}

TEST(Rng, BelowIsUnbiasedAcrossRange) {
  Rng r(11);
  constexpr std::uint64_t k = 10;
  std::array<int, k> counts{};
  constexpr int n = 50000;
  for (int i = 0; i < n; ++i) {
    ++counts[r.below(k)];
  }
  for (auto c : counts) {
    EXPECT_NEAR(static_cast<double>(c), n / static_cast<double>(k), n * 0.02);
  }
}

TEST(Rng, BelowZeroThrows) {
  Rng r(1);
  EXPECT_THROW(r.below(0), std::invalid_argument);
}

TEST(Rng, BetweenCoversInclusiveBounds) {
  Rng r(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.between(-2, 2);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng r(13);
  double sum = 0;
  constexpr int n = 50000;
  for (int i = 0; i < n; ++i) sum += r.exponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(Rng, PoissonSmallAndLargeMeans) {
  Rng r(17);
  for (double mean : {0.5, 4.0, 80.0}) {
    double sum = 0;
    constexpr int n = 20000;
    for (int i = 0; i < n; ++i) sum += static_cast<double>(r.poisson(mean));
    EXPECT_NEAR(sum / n, mean, mean * 0.05 + 0.05) << "mean " << mean;
  }
  EXPECT_EQ(r.poisson(0.0), 0u);
}

TEST(Rng, NormalMoments) {
  Rng r(19);
  double sum = 0, sq = 0;
  constexpr int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Rng, WeightedRespectsWeights) {
  Rng r(23);
  const double w[3] = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  constexpr int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[r.weighted(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[0], n / 4.0, n * 0.02);
  EXPECT_NEAR(counts[2], 3 * n / 4.0, n * 0.02);
}

TEST(Rng, WeightedRejectsAllZero) {
  Rng r(1);
  const double w[2] = {0.0, 0.0};
  EXPECT_THROW(r.weighted(w), std::invalid_argument);
}

TEST(Rng, SampleIndicesDistinctAndInRange) {
  Rng r(29);
  for (std::size_t n : {10u, 100u, 1000u}) {
    for (std::size_t k : {0u, 1u, 5u, 10u}) {
      auto s = r.sample_indices(n, k);
      ASSERT_EQ(s.size(), k);
      std::set<std::size_t> uniq(s.begin(), s.end());
      EXPECT_EQ(uniq.size(), k);
      for (auto v : s) EXPECT_LT(v, n);
    }
  }
  EXPECT_THROW(r.sample_indices(3, 4), std::invalid_argument);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng r(31);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  r.shuffle(v);
  auto copy = v;
  std::sort(copy.begin(), copy.end());
  EXPECT_EQ(copy, sorted);
}

TEST(ZipfSampler, PmfMatchesEmpiricalFrequencies) {
  Rng r(37);
  ZipfSampler z(100, 1.0);
  std::vector<int> counts(100, 0);
  constexpr int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[z.sample(r)];
  // Rank 0 should dominate and match its pmf.
  EXPECT_NEAR(counts[0] / static_cast<double>(n), z.pmf(0), 0.01);
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[90]);
  double total_pmf = 0;
  for (std::size_t k = 0; k < 100; ++k) total_pmf += z.pmf(k);
  EXPECT_NEAR(total_pmf, 1.0, 1e-9);
}

TEST(ZipfSampler, RejectsEmptyAndOutOfRange) {
  EXPECT_THROW(ZipfSampler(0, 1.0), std::invalid_argument);
  ZipfSampler z(5, 0.8);
  EXPECT_THROW((void)z.pmf(5), std::out_of_range);
}

TEST(Rng, ParetoTailHeavierThanExponential) {
  Rng r(41);
  int pareto_big = 0;
  constexpr int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (r.pareto(1.0, 1.2) > 50.0) ++pareto_big;
  }
  EXPECT_GT(pareto_big, 5);  // power-law tail reaches far
}

}  // namespace
}  // namespace edhp
