// Integration tests: full measurement scenarios at miniature scale,
// asserting the qualitative properties of every figure the paper reports.

#include <gtest/gtest.h>

#include <cstring>

#include "analysis/log_stats.hpp"
#include "analysis/subsets.hpp"
#include "scenario/scenario.hpp"

namespace edhp::scenario {
namespace {

/// One shared miniature distributed run (scenarios are deterministic, so a
/// single run serves every assertion).
const ScenarioResult& mini_distributed() {
  static const ScenarioResult result = [] {
    DistributedConfig config;
    config.scale = 0.02;
    config.days = 8;
    config.honeypots = 8;
    config.audit = true;  // golden fingerprints prove auditing is a no-op
    return run_distributed(config);
  }();
  return result;
}

const ScenarioResult& mini_greedy() {
  static const ScenarioResult result = [] {
    GreedyConfig config;
    config.scale = 0.05;
    config.days = 5;
    config.audit = true;
    return run_greedy(config);
  }();
  return result;
}

TEST(DistributedScenario, ProducesAnonymisedMergedLog) {
  const auto& r = mini_distributed();
  EXPECT_EQ(r.merged.header.peer_kind, logbook::PeerIdKind::stage2_index);
  EXPECT_GT(r.merged.records.size(), 1000u);
  EXPECT_GT(r.distinct_peers, 100u);
  // Stage-2 peers are dense integers.
  for (const auto& rec : r.merged.records) {
    EXPECT_LT(rec.peer, r.distinct_peers);
  }
}

TEST(DistributedScenario, LogIsTimeOrdered) {
  const auto& r = mini_distributed();
  for (std::size_t i = 1; i < r.merged.records.size(); ++i) {
    EXPECT_LE(r.merged.records[i - 1].timestamp, r.merged.records[i].timestamp);
  }
}

TEST(DistributedScenario, AllThreeQueryTypesLogged) {
  const auto& r = mini_distributed();
  std::array<std::uint64_t, 3> counts{};
  for (const auto& rec : r.merged.records) {
    counts[static_cast<std::size_t>(rec.type)]++;
  }
  EXPECT_GT(counts[0], 0u);  // HELLO
  EXPECT_GT(counts[1], 0u);  // START-UPLOAD
  EXPECT_GT(counts[2], 0u);  // REQUEST-PART
  // HELLO outnumbers START-UPLOAD; REQUEST-PART outnumbers both (paper).
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[2], counts[1]);
}

TEST(DistributedScenario, EveryHoneypotObservesPeers) {
  const auto& r = mini_distributed();
  const auto sets = analysis::peer_sets_by_honeypot(r.merged, r.honeypots);
  for (std::size_t h = 0; h < sets.size(); ++h) {
    EXPECT_GT(sets[h].count(), 0u) << "honeypot " << h << " observed nothing";
  }
}

TEST(DistributedScenario, Fig2GrowthContinuesThroughMeasurement) {
  const auto& r = mini_distributed();
  const auto series = analysis::distinct_peers_by_day(
      r.merged, std::nullopt, static_cast<std::size_t>(r.days));
  // New peers appear on every day, including the last.
  for (std::size_t d = 0; d < series.fresh.size(); ++d) {
    EXPECT_GT(series.fresh[d], 0u) << "day " << d;
  }
  EXPECT_EQ(series.total, r.distinct_peers);
}

TEST(DistributedScenario, Fig4DayNightOscillation) {
  const auto& r = mini_distributed();
  const auto hours_total = static_cast<std::size_t>(r.days * 24);
  const auto hourly = analysis::messages_by_hour(
      r.merged, logbook::QueryType::hello, hours_total);
  double day = 0, night = 0;
  std::size_t dn = 0, nn = 0;
  for (std::size_t h = 24; h < hours_total; ++h) {
    const double hod = hour_of_day(static_cast<double>(h) * kHour + 1800);
    if (hod >= 12 && hod < 22) {
      day += static_cast<double>(hourly[h]);
      ++dn;
    } else if (hod < 7) {
      night += static_cast<double>(hourly[h]);
      ++nn;
    }
  }
  ASSERT_GT(dn, 0u);
  ASSERT_GT(nn, 0u);
  EXPECT_GT(day / static_cast<double>(dn), 1.3 * night / static_cast<double>(nn));
}

TEST(DistributedScenario, Fig5RandomContentObservesMorePeers) {
  const auto& r = mini_distributed();
  const auto days = static_cast<std::size_t>(r.days);
  const auto rc = analysis::distinct_peers_by_day(
      r.merged, logbook::QueryType::hello, days, strategy_filter(r, true));
  const auto nc = analysis::distinct_peers_by_day(
      r.merged, logbook::QueryType::hello, days, strategy_filter(r, false));
  EXPECT_GT(rc.total, nc.total);
}

TEST(DistributedScenario, Fig7RandomContentReceivesMoreRequestParts) {
  const auto& r = mini_distributed();
  const auto days = static_cast<std::size_t>(r.days);
  const auto rc = analysis::cumulative_messages_by_day(
      r.merged, logbook::QueryType::request_part, days, strategy_filter(r, true));
  const auto nc = analysis::cumulative_messages_by_day(
      r.merged, logbook::QueryType::request_part, days, strategy_filter(r, false));
  EXPECT_GT(rc.back(), nc.back());
}

TEST(DistributedScenario, Fig8TopPeerPrefersRandomContent) {
  const auto& r = mini_distributed();
  const auto top = analysis::most_active_peer(r.merged);
  ASSERT_TRUE(top.has_value());
  const auto days = static_cast<std::size_t>(r.days);
  const auto rc = analysis::peer_messages_by_day(
      r.merged, *top, logbook::QueryType::start_upload, days,
      strategy_filter(r, true));
  const auto nc = analysis::peer_messages_by_day(
      r.merged, *top, logbook::QueryType::start_upload, days,
      strategy_filter(r, false));
  EXPECT_GT(rc.back(), nc.back());
  EXPECT_GT(nc.back(), 0u);
}

TEST(DistributedScenario, Fig10CurveConcaveAndAnchored) {
  const auto& r = mini_distributed();
  const auto sets = analysis::peer_sets_by_honeypot(r.merged, r.honeypots);
  const auto curve = analysis::subset_union_curve(sets, 50, Rng(1));
  ASSERT_EQ(curve.size(), r.honeypots);
  // Anchors: n = all honeypots equals the global distinct count.
  EXPECT_EQ(curve.min.back(), r.distinct_peers);
  EXPECT_EQ(curve.max.back(), r.distinct_peers);
  // Diminishing returns: first honeypot adds more than the last.
  const double first_gain = curve.avg[0];
  const double last_gain = curve.avg[curve.size() - 1] - curve.avg[curve.size() - 2];
  EXPECT_GT(first_gain, last_gain);
  EXPECT_GT(last_gain, 0.0);
}

TEST(DistributedScenario, BlacklistReputationOrdering) {
  const auto& r = mini_distributed();
  EXPECT_GT(r.blacklist_reports, 0u);
  EXPECT_LT(r.reputation_no_content, r.reputation_random_content);
}

TEST(DistributedScenario, ObservedFilesAggregated) {
  const auto& r = mini_distributed();
  EXPECT_GT(r.observed.distinct, 0u);
  EXPECT_GT(r.observed.bytes, 0u);
}

TEST(GreedyScenario, HarvestGrowsAdvertisedList) {
  const auto& r = mini_greedy();
  EXPECT_GT(r.advertised_files, 50u);
  EXPECT_EQ(r.advertised_ids.size(), r.advertised_files);
  EXPECT_GT(r.distinct_peers, 500u);
}

TEST(GreedyScenario, Fig3InitialisationPhase) {
  const auto& r = mini_greedy();
  const auto series = analysis::distinct_peers_by_day(
      r.merged, std::nullopt, static_cast<std::size_t>(r.days));
  // Day 1 is the harvest phase: far fewer new peers than steady state.
  ASSERT_GE(series.fresh.size(), 3u);
  const double steady =
      static_cast<double>(series.fresh[2] + series.fresh.back()) / 2.0;
  EXPECT_LT(static_cast<double>(series.fresh[0]), steady);
  EXPECT_GT(series.fresh[0], 0u);
}

TEST(GreedyScenario, Fig11PerFileCurveGrowsSteadily) {
  const auto& r = mini_greedy();
  const std::size_t n_files = std::min<std::size_t>(30, r.advertised_ids.size());
  std::vector<FileId> chosen(r.advertised_ids.begin(),
                             r.advertised_ids.begin() +
                                 static_cast<std::ptrdiff_t>(n_files));
  const auto sets = analysis::peer_sets_by_file(r.merged, chosen);
  const auto curve = analysis::subset_union_curve(sets, 40, Rng(9));
  // Adding files keeps adding peers (near-linear growth in the paper).
  EXPECT_GT(curve.avg.back(), curve.avg[n_files / 2]);
  EXPECT_GT(curve.avg[n_files / 2], curve.avg[0]);
}

TEST(GreedyScenario, Fig12PopularityIsSkewed) {
  const auto& r = mini_greedy();
  const auto pop = analysis::file_popularity(r.merged);
  ASSERT_GT(pop.size(), 10u);
  // Heavy-tailed per-file interest: the top file dwarfs the median.
  EXPECT_GT(pop.front().peers, 4 * pop[pop.size() / 2].peers);
}

/// FNV-1a (64-bit words) over every merged record field that matters for
/// bit-identity.
std::uint64_t fingerprint(const logbook::LogFile& log) {
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  for (const auto& rec : log.records) {
    std::uint64_t t_bits = 0;
    static_assert(sizeof(rec.timestamp) == 8);
    std::memcpy(&t_bits, &rec.timestamp, 8);
    mix(t_bits);
    mix(rec.peer);
    mix(rec.user);
    mix(static_cast<std::uint64_t>(rec.honeypot));
    mix(static_cast<std::uint64_t>(rec.type));
  }
  return h;
}

// Golden baselines: with the fault model disabled (the default), the merged
// logs must stay bit-identical to the pre-fault-subsystem seed. A change
// here means some dormant code path consumed an RNG draw or reordered
// events — treat it as a regression, not a baseline refresh.
TEST(Scenarios, GoldenDistributedUnchangedWithFaultsDisabled) {
  const auto& r = mini_distributed();
  EXPECT_EQ(r.merged.records.size(), 28945u);
  EXPECT_EQ(fingerprint(r.merged), 0xad6b1b6fa123723aull);
  // Dormant fault machinery left no trace.
  EXPECT_EQ(r.faults.host_crashes + r.faults.uplink_outages +
                r.faults.server_restarts,
            0u);
  EXPECT_EQ(r.recovery.records_lost_tail, 0u);
  EXPECT_EQ(r.recovery.retained_fraction, 1.0);
  // The fixture is audited (and the fingerprints above still match the
  // pre-audit seed): the conservation ledger balances with every record in
  // exactly one disposition — here, all of them merged.
  EXPECT_TRUE(r.audit.enabled);
  EXPECT_TRUE(r.audit.balanced()) << r.audit.breakdown();
  EXPECT_EQ(r.audit.records_born, r.merged.records.size());
  EXPECT_EQ(r.audit.accounted(), 0u);
}

TEST(Scenarios, GoldenGreedyUnchangedWithFaultsDisabled) {
  const auto& r = mini_greedy();
  EXPECT_EQ(r.merged.records.size(), 479288u);
  EXPECT_EQ(fingerprint(r.merged), 0x7fe276d7b5708429ull);
  EXPECT_TRUE(r.audit.balanced()) << r.audit.breakdown();
  EXPECT_EQ(r.audit.records_born, r.merged.records.size());
}

TEST(Scenarios, DeterministicForFixedSeed) {
  DistributedConfig config;
  config.scale = 0.01;
  config.days = 2;
  config.honeypots = 4;
  config.with_top_peer = false;
  const auto a = run_distributed(config);
  const auto b = run_distributed(config);
  EXPECT_EQ(a.merged.records.size(), b.merged.records.size());
  EXPECT_EQ(a.distinct_peers, b.distinct_peers);
  EXPECT_EQ(a.merged.records, b.merged.records);
}

// The lazy slab (the default) and the historical eager map must produce the
// same campaign bit-for-bit: materialization strategy is invisible to the
// RNG stream and the event order. The golden tests above already pin the
// lazy path to the seed fingerprints; these pin eager == lazy directly.
TEST(Scenarios, LazyAndEagerPopulationsProduceIdenticalDatasets) {
  DistributedConfig config;
  config.scale = 0.01;
  config.days = 3;
  config.honeypots = 4;
  const auto lazy = run_distributed(config);
  config.population_mode = peer::PopulationMode::legacy_eager;
  const auto eager = run_distributed(config);
  EXPECT_EQ(lazy.merged.records.size(), eager.merged.records.size());
  EXPECT_EQ(fingerprint(lazy.merged), fingerprint(eager.merged));
  EXPECT_EQ(lazy.population_arrivals, eager.population_arrivals);
  EXPECT_EQ(lazy.peer_totals.sessions, eager.peer_totals.sessions);
  // ...while the memory behaviour diverges as designed.
  EXPECT_GT(lazy.net_nodes_retired, 0u);
  EXPECT_EQ(eager.net_nodes_retired, 0u);
  EXPECT_GT(lazy.population_slab_slots, 0u);
  EXPECT_EQ(eager.population_slab_slots, 0u);
  EXPECT_LT(lazy.population_slab_slots, lazy.population_arrivals);
}

// The hardest parity case: every adversarial subsystem at once. Chaos
// churn, abuse traffic and Byzantine lies all draw from their own split
// streams and schedule against the same engine, so the materialization
// strategy must stay invisible even while hosts crash, liars connect and
// the defense excludes records.
TEST(Scenarios, ChaosAbuseByzantineParityAcrossPopulationModes) {
  DistributedConfig config;
  config.scale = 0.01;
  config.days = 3;
  config.honeypots = 4;
  config.with_top_peer = false;
  config.chaos.enabled = true;
  config.chaos.host_mtbf = hours(18);
  config.chaos.uplink_mtbf = hours(16);
  config.chaos.server_mtbf = days(2);
  config.abuse.enabled = true;
  auto& b = config.chaos.byzantine;
  b.enabled = true;
  b.offer_drop_mtbf = hours(12);
  b.stale_index_mtbf = hours(12);
  b.fabricate_mtbf = hours(12);
  b.forge_list_mtba = hours(4);
  b.replay_hello_mtba = hours(4);

  const auto lazy = run_distributed(config);
  config.population_mode = peer::PopulationMode::legacy_eager;
  const auto eager = run_distributed(config);

  // The run genuinely exercised all three adversaries.
  EXPECT_GT(lazy.faults.host_crashes, 0u);
  EXPECT_GT(lazy.abuse.connections_opened, 0u);
  EXPECT_GT(lazy.byzantine.forged_lists_sent, 0u);

  EXPECT_EQ(lazy.merged.records.size(), eager.merged.records.size());
  EXPECT_EQ(fingerprint(lazy.merged), fingerprint(eager.merged));
  EXPECT_EQ(lazy.integrity.records_excluded, eager.integrity.records_excluded);
  EXPECT_EQ(lazy.byzantine.messages_sent, eager.byzantine.messages_sent);
}

TEST(Scenarios, LazyAndEagerGreedyCampaignsProduceIdenticalDatasets) {
  GreedyConfig config;
  config.scale = 0.02;
  config.days = 3;
  const auto lazy = run_greedy(config);
  config.population_mode = peer::PopulationMode::legacy_eager;
  const auto eager = run_greedy(config);
  EXPECT_EQ(lazy.merged.records.size(), eager.merged.records.size());
  EXPECT_EQ(fingerprint(lazy.merged), fingerprint(eager.merged));
  EXPECT_EQ(lazy.population_arrivals, eager.population_arrivals);
}

// Record streaming folds the dataset into count + fingerprint instead of
// retaining it: the counters must match what an identical non-streaming run
// publishes, record for record.
TEST(Scenarios, StreamedRecordCountMatchesRetainedDataset) {
  DistributedConfig config;
  config.scale = 0.01;
  config.days = 3;
  config.honeypots = 4;
  const auto retained = run_distributed(config);
  config.stream_records = true;
  const auto streamed = run_distributed(config);
  EXPECT_EQ(streamed.merged.records.size(), 0u);
  EXPECT_EQ(streamed.records_streamed, retained.merged.records.size());
  EXPECT_NE(streamed.stream_fingerprint, 0u);
  // Campaign bits are otherwise untouched: the peers behaved identically.
  EXPECT_EQ(streamed.population_arrivals, retained.population_arrivals);
  EXPECT_EQ(streamed.peer_totals.sessions, retained.peer_totals.sessions);
}

TEST(Scenarios, PopulationOverrideScalesPoolsNotRates) {
  DistributedConfig config;
  config.scale = 0.01;
  config.days = 2;
  config.honeypots = 4;
  config.with_top_peer = false;
  const auto baseline = run_distributed(config);

  // A tiny override caps the interested pools: arrivals hit the ceiling.
  config.population_override = 40;
  const auto capped = run_distributed(config);
  EXPECT_LE(capped.population_arrivals, 40u);
  EXPECT_GT(capped.population_arrivals, 15u);
  EXPECT_LT(capped.population_arrivals, baseline.population_arrivals);

  // A huge override only raises the never-binding ceilings — the campaign
  // is bit-identical to the baseline (rates untouched, same RNG stream),
  // which is exactly why a million-peer interested population is free.
  config.population_override = 100000;
  const auto huge = run_distributed(config);
  EXPECT_EQ(huge.population_arrivals, baseline.population_arrivals);
  EXPECT_EQ(fingerprint(huge.merged), fingerprint(baseline.merged));
}

TEST(Scenarios, SeedChangesOutcome) {
  DistributedConfig config;
  config.scale = 0.01;
  config.days = 2;
  config.honeypots = 4;
  config.with_top_peer = false;
  const auto a = run_distributed(config);
  config.seed += 1;
  const auto b = run_distributed(config);
  EXPECT_NE(a.merged.records, b.merged.records);
}

}  // namespace
}  // namespace edhp::scenario
