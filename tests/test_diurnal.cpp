// Diurnal profile: normalisation, day/night contrast, region phase shifts.

#include <gtest/gtest.h>

#include <cmath>

#include "sim/diurnal.hpp"

namespace edhp::sim {
namespace {

TEST(DiurnalProfile, FlatIsAlwaysOne) {
  auto p = DiurnalProfile::flat();
  for (double t = 0; t < 2 * kDay; t += kHour / 2) {
    EXPECT_DOUBLE_EQ(p.factor(t), 1.0);
  }
}

TEST(DiurnalProfile, WeekdayAverageIsNormalised) {
  auto p = DiurnalProfile::european_2008();
  double sum = 0;
  int n = 0;
  // Day 0 (1 Oct 2008) is a Wednesday; average over Wed+Thu.
  for (double t = 0; t < 2 * kDay; t += kMinute * 5) {
    sum += p.factor(t);
    ++n;
  }
  EXPECT_NEAR(sum / n, 1.0, 0.02);
}

TEST(DiurnalProfile, DayNightContrastIsStrong) {
  auto p = DiurnalProfile::european_2008();
  double lo = 1e9, hi = 0;
  for (double t = 0; t < kDay; t += kMinute) {
    const double f = p.factor(t);
    lo = std::min(lo, f);
    hi = std::max(hi, f);
  }
  // Fig 4 shows roughly a 3-4x swing between night trough and day peak.
  EXPECT_GT(hi / lo, 2.0);
  EXPECT_LT(hi / lo, 8.0);
  EXPECT_GT(lo, 0.0);
}

TEST(DiurnalProfile, PeakIsInDaytimeTroughAtNight) {
  auto p = DiurnalProfile::european_2008();
  double peak_t = 0, trough_t = 0, peak_v = 0, trough_v = 1e9;
  for (double t = 0; t < kDay; t += kMinute) {
    const double f = p.factor(t);
    if (f > peak_v) {
      peak_v = f;
      peak_t = t;
    }
    if (f < trough_v) {
      trough_v = f;
      trough_t = t;
    }
  }
  const double peak_hour = hour_of_day(peak_t);
  const double trough_hour = hour_of_day(trough_t);
  EXPECT_GE(peak_hour, 10.0);
  EXPECT_LE(peak_hour, 22.0);
  EXPECT_TRUE(trough_hour <= 8.0 || trough_hour >= 23.0)
      << "trough at hour " << trough_hour;
}

TEST(DiurnalProfile, RegionOffsetShiftsPhase) {
  DiurnalShape shape;
  DiurnalProfile base({Region{0.0, 1.0}}, shape);
  DiurnalProfile shifted({Region{-6.0, 1.0}}, shape);
  // The shifted region peaks 6 hours later in reference time.
  double base_peak = 0, base_peak_v = 0, sh_peak = 0, sh_peak_v = 0;
  for (double t = 0; t < kDay; t += kMinute) {
    if (base.factor(t) > base_peak_v) {
      base_peak_v = base.factor(t);
      base_peak = t;
    }
    if (shifted.factor(t) > sh_peak_v) {
      sh_peak_v = shifted.factor(t);
      sh_peak = t;
    }
  }
  double diff_hours = (sh_peak - base_peak) / kHour;
  if (diff_hours < 0) diff_hours += 24.0;
  EXPECT_NEAR(diff_hours, 6.0, 0.5);
}

TEST(DiurnalProfile, WeekendBoostApplies) {
  auto p = DiurnalProfile::european_2008();
  // Day 0 is Wednesday, so day 3 is Saturday. Compare same hour of day.
  const double weekday = p.factor(days(1) + hours(15));   // Thursday 15:00
  const double weekend = p.factor(days(3) + hours(15));   // Saturday 15:00
  EXPECT_GT(weekend, weekday);
}

TEST(DiurnalProfile, RejectsBadWeights) {
  EXPECT_THROW(DiurnalProfile({Region{0.0, -1.0}}), std::invalid_argument);
  EXPECT_THROW(DiurnalProfile({Region{0.0, 0.0}}), std::invalid_argument);
}

TEST(DiurnalProfile, MixtureWeightsAreNormalised) {
  DiurnalProfile p({Region{0.0, 2.0}, Region{1.0, 6.0}});
  double total = 0;
  for (const auto& r : p.regions()) total += r.weight;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Clock, CalendarHelpers) {
  EXPECT_EQ(day_index(0.0), 0u);
  EXPECT_EQ(day_index(kDay - 1), 0u);
  EXPECT_EQ(day_index(kDay), 1u);
  EXPECT_EQ(hour_index(3 * kHour + 10), 3u);
  EXPECT_NEAR(hour_of_day(25 * kHour), 1.0, 1e-9);
  EXPECT_NEAR(hour_of_day(2 * kHour, -3.0), 23.0, 1e-9);
  EXPECT_EQ(day_of_week(0.0), 2u);           // Wednesday
  EXPECT_EQ(day_of_week(days(5)), 0u);       // Monday
}

}  // namespace
}  // namespace edhp::sim
