// Community source cache (peer exchange substrate).

#include <gtest/gtest.h>

#include "peer/source_cache.hpp"

namespace edhp::peer {
namespace {

TEST(SourceCache, EmptyLookup) {
  SourceCache cache;
  EXPECT_TRUE(cache.lookup(FileId::from_words(1, 1)).empty());
  EXPECT_EQ(cache.files_known(), 0u);
}

TEST(SourceCache, OfferAccumulatesDeduplicated) {
  SourceCache cache;
  const auto file = FileId::from_words(1, 1);
  cache.offer(file, {{0x2000001, 4662}, {0x2000002, 4662}});
  cache.offer(file, {{0x2000002, 4662}, {0x2000003, 4662}});
  const auto& known = cache.lookup(file);
  ASSERT_EQ(known.size(), 3u);
  EXPECT_EQ(cache.files_known(), 1u);
}

TEST(SourceCache, FilesAreIndependent) {
  SourceCache cache;
  cache.offer(FileId::from_words(1, 1), {{10, 1}});
  cache.offer(FileId::from_words(2, 2), {{20, 2}});
  EXPECT_EQ(cache.lookup(FileId::from_words(1, 1)).size(), 1u);
  EXPECT_EQ(cache.lookup(FileId::from_words(2, 2)).size(), 1u);
  EXPECT_EQ(cache.lookup(FileId::from_words(1, 1))[0].client_id, 10u);
  EXPECT_EQ(cache.files_known(), 2u);
}

TEST(SourceCache, OfferEmptyListIsHarmless) {
  SourceCache cache;
  cache.offer(FileId::from_words(1, 1), {});
  EXPECT_TRUE(cache.lookup(FileId::from_words(1, 1)).empty());
}

}  // namespace
}  // namespace edhp::peer
