// Strong ID types: formatting, ordering, HighID/LowID semantics.

#include <gtest/gtest.h>

#include <unordered_set>

#include "common/ids.hpp"

namespace edhp {
namespace {

TEST(Hash128, HexFormatting) {
  auto id = FileId::from_words(0x0807060504030201ull, 0x100f0e0d0c0b0a09ull);
  EXPECT_EQ(id.hex(), "0102030405060708090a0b0c0d0e0f10");
}

TEST(Hash128, ZeroDetection) {
  FileId zero;
  EXPECT_TRUE(zero.is_zero());
  auto nz = FileId::from_words(1, 0);
  EXPECT_FALSE(nz.is_zero());
}

TEST(Hash128, OrderingAndEquality) {
  auto a = FileId::from_words(1, 0);
  auto b = FileId::from_words(2, 0);
  EXPECT_NE(a, b);
  EXPECT_EQ(a, FileId::from_words(1, 0));
  EXPECT_TRUE(a < b || b < a);
}

TEST(Hash128, UsableAsUnorderedKey) {
  std::unordered_set<FileId> s;
  for (std::uint64_t i = 0; i < 100; ++i) {
    s.insert(FileId::from_words(i, i * 3));
  }
  EXPECT_EQ(s.size(), 100u);
  EXPECT_TRUE(s.contains(FileId::from_words(5, 15)));
  EXPECT_FALSE(s.contains(FileId::from_words(5, 16)));
}

TEST(IpAddr, DottedQuad) {
  EXPECT_EQ(IpAddr(192, 168, 1, 42).str(), "192.168.1.42");
  EXPECT_EQ(IpAddr(0).str(), "0.0.0.0");
  EXPECT_EQ(IpAddr(0xFFFFFFFFu).str(), "255.255.255.255");
}

TEST(ClientId, HighLowThreshold) {
  EXPECT_TRUE(ClientId(0x00FFFFFF).is_low());
  EXPECT_TRUE(ClientId(0x01000000).is_high());
  EXPECT_TRUE(ClientId(0).is_low());
  const IpAddr ip(88, 44, 22, 11);
  const auto high = ClientId::high(ip);
  EXPECT_TRUE(high.is_high());
  EXPECT_EQ(high.value(), ip.value());
}

TEST(ToHex, EmptyAndBytes) {
  EXPECT_EQ(to_hex({}), "");
  const std::uint8_t b[3] = {0x00, 0xAB, 0xFF};
  EXPECT_EQ(to_hex(std::span<const std::uint8_t>(b, 3)), "00abff");
}

}  // namespace
}  // namespace edhp
