// Overload survival: resource budgets, resource-exhaustion faults, and
// prioritized graceful degradation.
//
// The acceptance headline lives here: at the paper's scale, with the spool
// quota cut to HALF the peak an uninterrupted run needs, the published log
// still retains 100% of the evidence records and every dropped record is a
// declared shed (records_shed accounts the gap exactly — zero silent loss).

#include <gtest/gtest.h>

#include "common/budget.hpp"
#include "fault/abuse.hpp"
#include "scenario/scenario.hpp"

namespace edhp {
namespace {

using scenario::DistributedConfig;
using scenario::run_distributed;

// --- ByteBudget --------------------------------------------------------------

TEST(ByteBudget, UnlimitedByDefaultButStillAccounts) {
  budget::ByteBudget b;
  EXPECT_TRUE(b.unlimited());
  EXPECT_FALSE(b.over());
  EXPECT_FALSE(b.would_exceed(1u << 30));
  b.charge(1000);
  b.charge(500);
  EXPECT_EQ(b.used(), 1500u);
  EXPECT_EQ(b.peak(), 1500u);
  b.release(1500);
  EXPECT_EQ(b.used(), 0u);
  EXPECT_EQ(b.peak(), 1500u);  // peak is sticky
}

TEST(ByteBudget, QuotaTripAndRemaining) {
  budget::ByteBudget b(100);
  EXPECT_FALSE(b.unlimited());
  EXPECT_EQ(b.remaining(), 100u);
  EXPECT_TRUE(b.would_exceed(101));
  EXPECT_FALSE(b.would_exceed(100));
  b.charge(150);
  EXPECT_TRUE(b.over());
  EXPECT_EQ(b.remaining(), 0u);
}

TEST(ByteBudget, ReleaseSaturatesAtZero) {
  budget::ByteBudget b(10);
  b.charge(5);
  b.release(100);
  EXPECT_EQ(b.used(), 0u);
  EXPECT_FALSE(b.over());
}

// --- DegradeStats ------------------------------------------------------------

TEST(DegradeStats, AccumulateSumsCountersAndMaxesPeak) {
  budget::DegradeStats a;
  a.degrade_enters = 1;
  a.degrade_exits = 2;
  a.records_shed = 3;
  a.compaction_runs = 4;
  a.chunks_compacted = 5;
  a.compaction_bytes_reclaimed = 6;
  a.backpressure_cuts = 7;
  a.spool_cuts_deferred = 8;
  a.sessions_refused = 9;
  a.resends_paced = 10;
  a.quota_overruns = 11;
  a.spool_peak_bytes = 700;
  budget::DegradeStats b = a;
  b.spool_peak_bytes = 300;  // fleet aggregation keeps the per-honeypot MAX
  b += a;
  EXPECT_EQ(b.degrade_enters, 2u);
  EXPECT_EQ(b.degrade_exits, 4u);
  EXPECT_EQ(b.records_shed, 6u);
  EXPECT_EQ(b.compaction_runs, 8u);
  EXPECT_EQ(b.chunks_compacted, 10u);
  EXPECT_EQ(b.compaction_bytes_reclaimed, 12u);
  EXPECT_EQ(b.backpressure_cuts, 14u);
  EXPECT_EQ(b.spool_cuts_deferred, 16u);
  EXPECT_EQ(b.sessions_refused, 18u);
  EXPECT_EQ(b.resends_paced, 20u);
  EXPECT_EQ(b.quota_overruns, 22u);
  EXPECT_EQ(b.spool_peak_bytes, 700u);
}

// --- Scenario-level ----------------------------------------------------------

std::uint64_t hostile_count(const logbook::LogFile& log) {
  std::uint64_t n = 0;
  for (const auto& r : log.records) {
    if (r.user == fault::kAbuseUserWord) ++n;
  }
  return n;
}

std::uint64_t benign_count(const logbook::LogFile& log) {
  return log.records.size() - hostile_count(log);
}

/// A small chaos world shared by the focused scenario tests below.
DistributedConfig small_world() {
  DistributedConfig config;
  config.scale = 0.01;
  config.days = 8;
  config.honeypots = 6;
  config.with_top_peer = false;
  config.chaos.enabled = true;
  config.chaos.host_mtbf = 0;  // isolate the resource fault classes
  return config;
}

// Disk faults alone never touch the published dataset: disk_full's quota is
// soft for evidence (overruns are counted, records kept) and disk_slow only
// re-times chunk cuts. The merged log is bit-identical to the fault-free
// run — which also proves the new fault classes draw from fresh RNG splits
// (7/8) and shift nothing else in the world.
TEST(OverloadScenario, DiskFaultsAloneNeverChangeThePublishedLog) {
  DistributedConfig faulty = small_world();
  faulty.chaos.disk_full_mtbf = days(2);
  faulty.chaos.disk_slow_mtbf = days(2);

  const auto with_faults = run_distributed(faulty);
  const auto baseline = run_distributed(small_world());

  ASSERT_GT(with_faults.faults.disk_full_episodes, 0u);
  ASSERT_GT(with_faults.faults.disk_slow_episodes, 0u);
  EXPECT_GT(with_faults.degrade.degrade_enters, 0u);
  EXPECT_GT(with_faults.degrade.degrade_exits, 0u);
  EXPECT_GT(with_faults.degrade.spool_cuts_deferred, 0u);
  EXPECT_EQ(with_faults.degrade.records_shed, 0u);  // nothing abuse-marked
  ASSERT_GT(baseline.merged.records.size(), 100u);
  EXPECT_EQ(with_faults.merged.records, baseline.merged.records);
  EXPECT_EQ(with_faults.merged.names, baseline.merged.names);
}

// mem_pressure is the one resource fault allowed to change observations: it
// freezes (or caps) the concurrent-session ceiling, so peers beyond it are
// refused at accept — the fd-exhaustion analog. Refusals are counted, never
// silent.
TEST(OverloadScenario, MemPressureCapsSessionsAndCountsRefusals) {
  DistributedConfig config = small_world();
  config.scale = 0.02;
  config.chaos.mem_pressure_mtbf = days(1);
  config.chaos.session_ceiling = 1;

  const auto result = run_distributed(config);
  ASSERT_GT(result.faults.mem_pressure_episodes, 0u);
  EXPECT_GT(result.degrade.degrade_enters, 0u);
  EXPECT_GT(result.degrade.sessions_refused, 0u);
  EXPECT_GT(result.merged.records.size(), 0u);
}

// A memory budget forces early backpressure chunk cuts while the control
// plane is crashing and recovering — and the run stays lossless: with no
// abuse traffic there is nothing shed, and the durable merge equals the
// budget-free run's bit-for-bit.
TEST(OverloadScenario, MemBudgetBackpressureIsLosslessAcrossCrashes) {
  DistributedConfig crashy = small_world();
  crashy.scale = 0.02;
  crashy.days = 16;
  crashy.chaos.manager_mtbf = days(4);

  DistributedConfig budgeted = crashy;
  budgeted.chaos.mem_budget_records = 32;

  const auto with_budget = run_distributed(budgeted);
  const auto baseline = run_distributed(crashy);

  ASSERT_GT(with_budget.faults.manager_crashes, 0u);
  EXPECT_GT(with_budget.degrade.backpressure_cuts, 0u);
  EXPECT_EQ(with_budget.degrade.records_shed, 0u);
  ASSERT_GT(baseline.merged.records.size(), 100u);
  EXPECT_EQ(with_budget.merged.records, baseline.merged.records);
}

// The manager's credit window paces recovery resends (at most `credit`
// chunks in flight per honeypot, one more per ack) without giving up the
// PR-4 losslessness guarantee.
TEST(OverloadScenario, CreditWindowPacesRecoveryAndStaysLossless) {
  DistributedConfig crashy = small_world();
  crashy.scale = 0.02;
  crashy.days = 16;
  crashy.honeypots = 12;
  crashy.chaos.manager_mtbf = days(4);
  crashy.chaos.resend_credit = 2;

  DistributedConfig clean = crashy;
  clean.chaos.manager_mtbf = 0;

  const auto paced = run_distributed(crashy);
  const auto baseline = run_distributed(clean);

  ASSERT_GT(paced.faults.manager_crashes, 0u);
  EXPECT_GT(paced.recovery.manager_recoveries, 0u);
  EXPECT_GT(paced.degrade.resends_paced, 0u);
  ASSERT_GT(baseline.merged.records.size(), 100u);
  EXPECT_EQ(paced.merged.records, baseline.merged.records);
  EXPECT_EQ(paced.merged.names, baseline.merged.names);
}

// ACCEPTANCE HEADLINE (ISSUE 5): 24 honeypots, 32 days, control-plane
// crashes every ~8 days, hostile traffic in the mix. Run A is unlimited and
// reports the peak spool footprint; run B gets HALF that as its quota plus
// a resend credit window. B must retain every evidence record A published,
// and the entire record-count gap must equal B's declared shed count —
// degradation is fully declared, loss is never silent.
TEST(OverloadScenario, HalvedSpoolQuotaRetainsEveryEvidenceRecord) {
  DistributedConfig base;
  base.scale = 0.02;
  base.days = 32;
  base.honeypots = 24;
  base.with_top_peer = false;
  base.chaos.enabled = true;
  base.chaos.host_mtbf = 0;
  base.chaos.manager_mtbf = days(8);
  base.abuse.enabled = true;

  const auto a = run_distributed(base);
  ASSERT_GT(a.faults.manager_crashes, 0u);
  ASSERT_GT(a.degrade.spool_peak_bytes, 0u);
  ASSERT_GT(hostile_count(a.merged), 0u);
  ASSERT_GT(benign_count(a.merged), 1000u);

  DistributedConfig limited = base;
  limited.chaos.disk_quota_bytes = a.degrade.spool_peak_bytes / 2;
  limited.chaos.resend_credit = 4;
  const auto b = run_distributed(limited);

  EXPECT_GT(b.degrade.degrade_enters, 0u);
  EXPECT_GT(b.degrade.compaction_runs, 0u);
  EXPECT_LE(b.degrade.spool_peak_bytes, a.degrade.spool_peak_bytes);
  // 100% evidence retention under half the disk.
  EXPECT_EQ(benign_count(b.merged), benign_count(a.merged));
  // Zero silent loss: the entire gap is declared shed.
  ASSERT_GE(a.merged.records.size(), b.merged.records.size());
  EXPECT_EQ(a.merged.records.size() - b.merged.records.size(),
            b.degrade.records_shed);
  EXPECT_GT(b.degrade.records_shed, 0u);
}

}  // namespace
}  // namespace edhp
