// Simulated transport: connection establishment, reachability, ordering,
// serialization delay, close semantics.

#include <gtest/gtest.h>

#include <vector>

#include "net/network.hpp"

namespace edhp::net {
namespace {

struct Fixture : ::testing::Test {
  sim::Simulation s{123};
  Network net{s};
};

TEST_F(Fixture, NodesGetDistinctIps) {
  std::vector<NodeId> ids;
  for (int i = 0; i < 100; ++i) ids.push_back(net.add_node(true));
  std::set<std::uint32_t> ips;
  for (auto id : ids) ips.insert(net.info(id).ip.value());
  EXPECT_EQ(ips.size(), 100u);
  EXPECT_FALSE(ips.contains(0u));
}

TEST_F(Fixture, ConnectDeliversBothEndpoints) {
  auto a = net.add_node(true);
  auto b = net.add_node(true);
  EndpointPtr accepted, initiated;
  net.listen(b, [&](EndpointPtr ep) { accepted = std::move(ep); });
  net.connect(a, b, [&](EndpointPtr ep) { initiated = std::move(ep); });
  s.run();
  ASSERT_TRUE(accepted);
  ASSERT_TRUE(initiated);
  EXPECT_EQ(accepted->local_node(), b);
  EXPECT_EQ(accepted->remote_node(), a);
  EXPECT_EQ(initiated->local_node(), a);
  EXPECT_EQ(initiated->remote_node(), b);
  EXPECT_TRUE(initiated->open());
}

TEST_F(Fixture, ConnectToNonListenerFails) {
  auto a = net.add_node(true);
  auto b = net.add_node(true);
  bool called = false;
  EndpointPtr result = std::make_shared<Endpoint>();
  net.connect(a, b, [&](EndpointPtr ep) {
    called = true;
    result = std::move(ep);
  });
  s.run();
  EXPECT_TRUE(called);
  EXPECT_EQ(result, nullptr);
}

TEST_F(Fixture, ConnectToFirewalledNodeFails) {
  auto a = net.add_node(true);
  auto b = net.add_node(false);  // LowID: cannot accept
  net.listen(b, [](EndpointPtr) { FAIL() << "firewalled node accepted"; });
  bool failed = false;
  net.connect(a, b, [&](EndpointPtr ep) { failed = (ep == nullptr); });
  s.run();
  EXPECT_TRUE(failed);
}

TEST_F(Fixture, MessagesArriveInOrder) {
  auto a = net.add_node(true);
  auto b = net.add_node(true);
  std::vector<int> received;
  EndpointPtr server_ep;
  net.listen(b, [&](EndpointPtr ep) {
    server_ep = ep;
    server_ep->on_message([&](Bytes m) { received.push_back(m[0]); });
  });
  net.connect(a, b, [&](EndpointPtr ep) {
    ASSERT_TRUE(ep);
    for (int i = 0; i < 10; ++i) {
      ep->send(Bytes{static_cast<std::uint8_t>(i)});
    }
    // Keep the endpoint alive for the duration of the run.
    static EndpointPtr keep;
    keep = std::move(ep);
  });
  s.run();
  ASSERT_EQ(received.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(received[static_cast<std::size_t>(i)], i);
  }
}

TEST_F(Fixture, LargePayloadTakesLongerThanSmall) {
  auto a = net.add_node(true, 0.0, 100.0);  // 100 B/s uplink
  auto b = net.add_node(true);
  EndpointPtr keep_client, keep_server;
  double small_at = -1, big_at = -1;
  net.listen(b, [&](EndpointPtr ep) {
    keep_server = ep;
    keep_server->on_message([&](Bytes m) {
      if (m.size() < 100) {
        small_at = s.now();
      } else {
        big_at = s.now();
      }
    });
  });
  net.connect(a, b, [&](EndpointPtr ep) {
    keep_client = std::move(ep);
    keep_client->send(Bytes(10, 0));     // 0.1 s serialization
    keep_client->send(Bytes(1000, 1));   // 10 s serialization, queued after
  });
  s.run();
  ASSERT_GT(small_at, 0);
  ASSERT_GT(big_at, 0);
  EXPECT_GT(big_at, small_at + 9.9);
}

TEST_F(Fixture, CloseNotifiesRemoteOnce) {
  auto a = net.add_node(true);
  auto b = net.add_node(true);
  int closes = 0;
  EndpointPtr keep_server, keep_client;
  net.listen(b, [&](EndpointPtr ep) {
    keep_server = ep;
    keep_server->on_close([&] { ++closes; });
  });
  net.connect(a, b, [&](EndpointPtr ep) {
    keep_client = std::move(ep);
    keep_client->close();
    keep_client->close();  // idempotent
  });
  s.run();
  EXPECT_EQ(closes, 1);
  EXPECT_FALSE(keep_client->open());
}

TEST_F(Fixture, SendAfterCloseIsDropped) {
  auto a = net.add_node(true);
  auto b = net.add_node(true);
  int messages = 0;
  EndpointPtr keep_server, keep_client;
  net.listen(b, [&](EndpointPtr ep) {
    keep_server = ep;
    keep_server->on_message([&](Bytes) { ++messages; });
  });
  net.connect(a, b, [&](EndpointPtr ep) {
    keep_client = std::move(ep);
    keep_client->send(Bytes{1});
    keep_client->close();
    keep_client->send(Bytes{2});
  });
  s.run();
  // The pre-close message was sent but close() raced it: our model drops
  // in-flight data once the connection is closed, like a RST.
  EXPECT_EQ(messages, 0);
}

TEST_F(Fixture, DroppedEndpointStopsDelivery) {
  auto a = net.add_node(true);
  auto b = net.add_node(true);
  int messages = 0;
  net.listen(b, [&](EndpointPtr ep) {
    // Accept but immediately drop our reference.
    ep->on_message([&](Bytes) { ++messages; });
  });
  EndpointPtr keep_client;
  net.connect(a, b, [&](EndpointPtr ep) {
    keep_client = std::move(ep);
    keep_client->send(Bytes{1});
  });
  s.run();
  EXPECT_EQ(messages, 0);
}

TEST_F(Fixture, StatsCountDeliveries) {
  auto a = net.add_node(true);
  auto b = net.add_node(true);
  EndpointPtr keep_server, keep_client;
  net.listen(b, [&](EndpointPtr ep) {
    keep_server = ep;
    keep_server->on_message([](Bytes) {});
  });
  net.connect(a, b, [&](EndpointPtr ep) {
    keep_client = std::move(ep);
    keep_client->send(Bytes(7, 0));
    keep_client->send(Bytes(3, 0));
  });
  s.run();
  EXPECT_EQ(net.messages_delivered(), 2u);
  EXPECT_EQ(net.bytes_delivered(), 10u);
}

TEST_F(Fixture, UnknownNodeThrows) {
  EXPECT_THROW((void)net.info(99), std::out_of_range);
  EXPECT_THROW(net.listen(99, [](EndpointPtr) {}), std::out_of_range);
  EXPECT_THROW(net.connect(0, 99, [](EndpointPtr) {}), std::out_of_range);
}

}  // namespace
}  // namespace edhp::net

namespace edhp::net {
namespace {

TEST_F(Fixture, SendSizedAccountsVirtualBytes) {
  auto a = net.add_node(true, 0.0, 1000.0);  // 1000 B/s uplink
  auto b = net.add_node(true);
  EndpointPtr keep_server, keep_client;
  double arrival = -1;
  std::size_t payload_bytes = 0;
  net.listen(b, [&](EndpointPtr ep) {
    keep_server = ep;
    keep_server->on_message([&](Bytes m) {
      arrival = s.now();
      payload_bytes = m.size();
    });
  });
  net.connect(a, b, [&](EndpointPtr ep) {
    keep_client = std::move(ep);
    // 32 bytes materialized, 10,000 on the wire: ~10 s serialization.
    keep_client->send_sized(Bytes(32, 1), 10000);
  });
  s.run();
  ASSERT_GT(arrival, 0);
  EXPECT_EQ(payload_bytes, 32u);             // handler sees the sample only
  EXPECT_GE(arrival, 10.0);                  // timing follows the wire size
  EXPECT_EQ(net.bytes_delivered(), 10000u);  // stats follow the wire size
}

TEST_F(Fixture, SendSizedNeverShrinksBelowPayload) {
  auto a = net.add_node(true);
  auto b = net.add_node(true);
  EndpointPtr keep_server, keep_client;
  net.listen(b, [&](EndpointPtr ep) {
    keep_server = ep;
    keep_server->on_message([](Bytes) {});
  });
  net.connect(a, b, [&](EndpointPtr ep) {
    keep_client = std::move(ep);
    keep_client->send_sized(Bytes(100, 1), 5);  // wire_size below payload
  });
  s.run();
  EXPECT_EQ(net.bytes_delivered(), 100u);
}

TEST_F(Fixture, StopListeningBetweenSynAndAcceptDropsAccept) {
  auto a = net.add_node(true);
  auto b = net.add_node(true);
  bool accepted = false;
  EndpointPtr initiated;
  net.listen(b, [&](EndpointPtr) { accepted = true; });
  net.connect(a, b, [&](EndpointPtr ep) { initiated = std::move(ep); });
  // The SYN is in flight (one latency away); the target goes away first.
  net.stop_listening(b);
  s.run();
  EXPECT_FALSE(accepted);
  // The initiator still gets an endpoint — the handshake completed at
  // transport level — but nobody ever answers it.
  ASSERT_TRUE(initiated);
  EXPECT_TRUE(initiated->open());
  EXPECT_EQ(net.counters(b).connects_accepted, 0u);
  EXPECT_EQ(net.counters(a).connects_initiated, 1u);
}

TEST_F(Fixture, PerNodeCountersTrackTraffic) {
  auto a = net.add_node(true);
  auto b = net.add_node(true);
  EndpointPtr keep_server, keep_client;
  net.listen(b, [&](EndpointPtr ep) {
    keep_server = ep;
    keep_server->on_message([](Bytes) {});
  });
  net.connect(a, b, [&](EndpointPtr ep) {
    keep_client = std::move(ep);
    keep_client->send(Bytes(7, 0));
    keep_client->send(Bytes(3, 0));
  });
  net.connect(a, a, [](EndpointPtr) {});  // refused: a is not listening
  s.run();
  EXPECT_EQ(net.counters(a).connects_initiated, 2u);
  EXPECT_EQ(net.counters(a).refusals, 1u);
  EXPECT_EQ(net.counters(a).messages_sent, 2u);
  EXPECT_EQ(net.counters(a).bytes_serialized, 10u);
  EXPECT_EQ(net.counters(b).connects_accepted, 1u);
  EXPECT_EQ(net.counters(b).messages_delivered, 2u);
  EXPECT_EQ(net.counters(b).bytes_delivered, 10u);
  EXPECT_EQ(net.totals().messages_sent, 2u);
  EXPECT_EQ(net.totals().messages_delivered, 2u);
  EXPECT_THROW((void)net.counters(99), std::out_of_range);
}

TEST_F(Fixture, DatagramCountersTrackDrops) {
  auto a = net.add_node(true);
  auto b = net.add_node(true);
  auto fw = net.add_node(false);  // unreachable: every datagram dropped
  int heard = 0;
  net.listen_datagram(b, [&](NodeId, Bytes) { ++heard; });
  for (int i = 0; i < 20; ++i) {
    net.send_datagram(a, b, Bytes{1});
    net.send_datagram(a, fw, Bytes{2});
  }
  s.run();
  const auto& c = net.counters(a);
  EXPECT_EQ(c.datagrams_sent, 40u);
  EXPECT_GE(c.datagrams_dropped, 20u);  // all 20 to the firewalled node
  EXPECT_EQ(static_cast<std::uint64_t>(heard),
            40u - c.datagrams_dropped);
  EXPECT_EQ(net.totals().datagrams_sent, 40u);
}

TEST_F(Fixture, DownNodeRefusesConnectsBothWays) {
  auto a = net.add_node(true);
  auto b = net.add_node(true);
  net.listen(a, [](EndpointPtr) {});
  net.listen(b, [](EndpointPtr) {});
  net.set_node_up(b, false);
  EXPECT_FALSE(net.node_up(b));
  bool ab_failed = false, ba_failed = false;
  net.connect(a, b, [&](EndpointPtr ep) { ab_failed = (ep == nullptr); });
  net.connect(b, a, [&](EndpointPtr ep) { ba_failed = (ep == nullptr); });
  s.run();
  EXPECT_TRUE(ab_failed);
  EXPECT_TRUE(ba_failed);

  net.set_node_up(b, true);
  EndpointPtr up;
  net.connect(a, b, [&](EndpointPtr ep) { up = std::move(ep); });
  s.run();
  EXPECT_TRUE(up);
}

TEST_F(Fixture, DownNodeBlackholesDatagrams) {
  auto a = net.add_node(true);
  auto b = net.add_node(true);
  int heard = 0;
  net.listen_datagram(b, [&](NodeId, Bytes) { ++heard; });
  net.set_node_up(b, false);
  for (int i = 0; i < 10; ++i) net.send_datagram(a, b, Bytes{1});
  s.run();
  EXPECT_EQ(heard, 0);
  EXPECT_EQ(net.counters(a).datagrams_dropped, 10u);
}

TEST_F(Fixture, AbortConnectionsRstsBothSides) {
  auto a = net.add_node(true);
  auto b = net.add_node(true);
  EndpointPtr keep_server, keep_client;
  int closes = 0;
  net.listen(b, [&](EndpointPtr ep) {
    keep_server = std::move(ep);
    keep_server->on_close([&] { ++closes; });
  });
  net.connect(a, b, [&](EndpointPtr ep) {
    keep_client = std::move(ep);
    keep_client->on_close([&] { ++closes; });
  });
  s.run();
  ASSERT_TRUE(keep_client);
  EXPECT_EQ(net.abort_connections(b), 1u);
  s.run();
  EXPECT_EQ(closes, 2);
  EXPECT_FALSE(keep_client->open());
  EXPECT_EQ(net.totals().connections_aborted, 1u);
  EXPECT_EQ(net.counters(a).connections_aborted, 1u);
  EXPECT_EQ(net.counters(b).connections_aborted, 1u);
  // Idempotent: the connection is already gone.
  EXPECT_EQ(net.abort_connections(b), 0u);
}

TEST_F(Fixture, BlockedLinkRefusesConnectsAndDropsDatagrams) {
  auto a = net.add_node(true);
  auto b = net.add_node(true);
  auto c = net.add_node(true);
  net.listen(b, [](EndpointPtr) {});
  net.listen_datagram(b, [](NodeId, Bytes) {});
  net.block_link(a, b);
  bool failed = false;
  net.connect(a, b, [&](EndpointPtr ep) { failed = (ep == nullptr); });
  net.send_datagram(a, b, Bytes{1});
  // Other links are untouched.
  EndpointPtr other;
  net.connect(c, b, [&](EndpointPtr ep) { other = std::move(ep); });
  s.run();
  EXPECT_TRUE(failed);
  EXPECT_EQ(net.counters(a).datagrams_dropped, 1u);
  EXPECT_TRUE(other);

  net.unblock_link(a, b);
  EndpointPtr restored;
  net.connect(a, b, [&](EndpointPtr ep) { restored = std::move(ep); });
  s.run();
  EXPECT_TRUE(restored);
}

TEST_F(Fixture, PartitionSplitsAndHeals) {
  auto a = net.add_node(true);
  auto b = net.add_node(true);
  net.listen(b, [](EndpointPtr) {});
  net.set_partition(b, 1);
  EXPECT_EQ(net.partition_of(b), 1u);
  bool failed = false;
  net.connect(a, b, [&](EndpointPtr ep) { failed = (ep == nullptr); });
  s.run();
  EXPECT_TRUE(failed);

  net.set_partition(b, 0);
  EndpointPtr healed;
  net.connect(a, b, [&](EndpointPtr ep) { healed = std::move(ep); });
  s.run();
  EXPECT_TRUE(healed);
}

TEST_F(Fixture, AbortCrossPartitionSeversOnlyCrossGroupConns) {
  auto a = net.add_node(true);
  auto b = net.add_node(true);
  auto c = net.add_node(true);
  EndpointPtr to_b, to_c, keep1, keep2;
  net.listen(b, [&](EndpointPtr ep) { keep1 = std::move(ep); });
  net.listen(c, [&](EndpointPtr ep) { keep2 = std::move(ep); });
  net.connect(a, b, [&](EndpointPtr ep) { to_b = std::move(ep); });
  net.connect(a, c, [&](EndpointPtr ep) { to_c = std::move(ep); });
  s.run();
  ASSERT_TRUE(to_b);
  ASSERT_TRUE(to_c);
  net.set_partition(b, 1);  // existing a–b connection is now cross-group
  EXPECT_EQ(net.abort_cross_partition(), 1u);
  s.run();
  EXPECT_FALSE(to_b->open());
  EXPECT_TRUE(to_c->open());
}

TEST_F(Fixture, LatencyFactorSlowsDelivery) {
  auto a = net.add_node(true);
  auto b = net.add_node(true);
  EndpointPtr keep_server, keep_client;
  double first = -1, second = -1;
  net.listen(b, [&](EndpointPtr ep) {
    keep_server = std::move(ep);
    keep_server->on_message([&](Bytes) {
      (first < 0 ? first : second) = s.now();
    });
  });
  net.connect(a, b, [&](EndpointPtr ep) {
    keep_client = std::move(ep);
    keep_client->send(Bytes{1});
  });
  s.run();
  ASSERT_GT(first, 0);
  // A congestion episode: subsequent connections are far slower.
  net.set_latency_factor(a, 1000.0);
  const auto t0 = s.now();
  EndpointPtr keep_slow;
  net.connect(a, b, [&](EndpointPtr ep) {
    keep_slow = std::move(ep);
    keep_slow->send(Bytes{2});
  });
  s.run();
  ASSERT_GT(second, 0);
  EXPECT_GT(second - t0, 50.0 * first);
  // Factor 1.0 restores the base model.
  net.set_latency_factor(a, 1.0);
}

TEST_F(Fixture, FindByIpResolvesNodes) {
  auto a = net.add_node(true);
  const auto ip = net.info(a).ip.value();
  const auto found = net.find_by_ip(ip);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, a);
  EXPECT_FALSE(net.find_by_ip(ip + 1).has_value() &&
               *net.find_by_ip(ip + 1) == a);
}

// --- Bursty loss, duplication and reordering (Gilbert–Elliott layer) ------

TEST_F(Fixture, BurstDupReorderCountersStayZeroByDefault) {
  // The GE chain, duplication and reordering are default-off: plain traffic
  // must never tick their counters (and therefore never draws for them).
  auto a = net.add_node(true);
  auto b = net.add_node(true);
  net.listen_datagram(b, [](NodeId, Bytes) {});
  for (int i = 0; i < 50; ++i) net.send_datagram(a, b, Bytes{1});
  s.run();
  EXPECT_EQ(net.totals().datagrams_dropped_burst, 0u);
  EXPECT_EQ(net.totals().datagrams_duplicated, 0u);
  EXPECT_EQ(net.totals().datagrams_reordered, 0u);
}

TEST(GilbertElliott, BadStateDropsBursts) {
  sim::Simulation s{7};
  LinkModel model;
  model.datagram_loss = 0;
  model.ge_p_enter_bad = 1.0;  // first transition lands in the bad state
  model.ge_p_exit_bad = 0.0;   // and stays there
  model.ge_loss_bad = 1.0;     // where everything burns
  Network net{s, model};
  auto a = net.add_node(true);
  auto b = net.add_node(true);
  int heard = 0;
  net.listen_datagram(b, [&](NodeId, Bytes) { ++heard; });
  for (int i = 0; i < 30; ++i) net.send_datagram(a, b, Bytes{1});
  s.run();
  EXPECT_EQ(heard, 0);
  EXPECT_EQ(net.counters(a).datagrams_dropped_burst, 30u);
  EXPECT_EQ(net.totals().datagrams_dropped_burst, 30u);
}

TEST(GilbertElliott, RecoveringChannelDropsOnlyDuringEpisodes) {
  sim::Simulation s{7};
  LinkModel model;
  model.datagram_loss = 0;
  model.ge_p_enter_bad = 0.2;
  model.ge_p_exit_bad = 0.5;
  model.ge_loss_bad = 1.0;
  Network net{s, model};
  auto a = net.add_node(true);
  auto b = net.add_node(true);
  int heard = 0;
  net.listen_datagram(b, [&](NodeId, Bytes) { ++heard; });
  for (int i = 0; i < 200; ++i) net.send_datagram(a, b, Bytes{1});
  s.run();
  const auto& c = net.counters(a);
  // The chain visits both states: some bursts, some clean deliveries, and
  // every drop is a burst drop (good-state loss is zero).
  EXPECT_GT(heard, 0);
  EXPECT_GT(c.datagrams_dropped_burst, 0u);
  EXPECT_EQ(c.datagrams_dropped, c.datagrams_dropped_burst);
  EXPECT_EQ(static_cast<std::uint64_t>(heard),
            200u - c.datagrams_dropped_burst);
}

TEST(DatagramFaults, DuplicationDeliversTwiceAndCounts) {
  sim::Simulation s{7};
  LinkModel model;
  model.datagram_loss = 0;
  model.datagram_dup = 1.0;
  Network net{s, model};
  auto a = net.add_node(true);
  auto b = net.add_node(true);
  int heard = 0;
  net.listen_datagram(b, [&](NodeId, Bytes) { ++heard; });
  for (int i = 0; i < 25; ++i) net.send_datagram(a, b, Bytes{1});
  s.run();
  EXPECT_EQ(heard, 50);  // every datagram arrives twice
  EXPECT_EQ(net.counters(a).datagrams_duplicated, 25u);
  EXPECT_EQ(net.totals().datagrams_duplicated, 25u);
}

TEST(DatagramFaults, ReorderedCopiesArriveLateAndCount) {
  sim::Simulation s{7};
  LinkModel model;
  model.datagram_loss = 0;
  model.datagram_reorder = 1.0;
  model.reorder_delay = 2.0;  // far beyond any latency sample
  Network net{s, model};
  auto a = net.add_node(true);
  auto b = net.add_node(true);
  std::vector<Time> arrivals;
  net.listen_datagram(b, [&](NodeId, Bytes) { arrivals.push_back(s.now()); });
  for (int i = 0; i < 10; ++i) net.send_datagram(a, b, Bytes{1});
  s.run();
  ASSERT_EQ(arrivals.size(), 10u);
  for (Time t : arrivals) EXPECT_GE(t, 2.0);  // the delay was applied
  EXPECT_EQ(net.counters(a).datagrams_reordered, 10u);
  EXPECT_EQ(net.totals().datagrams_reordered, 10u);
}

}  // namespace
}  // namespace edhp::net
