// Anonymisation pipeline: stage-1 salted hashing, stage-2 coherent
// renumbering, filename-word anonymisation — including the privacy
// properties the paper's Section III.C requires.

#include <gtest/gtest.h>

#include <unordered_set>

#include "anonymize/ip_anonymizer.hpp"
#include "anonymize/name_anonymizer.hpp"
#include "anonymize/renumber.hpp"
#include "common/rng.hpp"

namespace edhp::anonymize {
namespace {

TEST(IpAnonymizer, DeterministicPerSalt) {
  IpAnonymizer a("salt-1");
  const IpAddr ip(82, 34, 1, 9);
  EXPECT_EQ(a.anonymize(ip), a.anonymize(ip));
}

TEST(IpAnonymizer, CoherentAcrossInstancesWithSameSalt) {
  // Two honeypots sharing the measurement salt hash coherently — required
  // for cross-honeypot distinct-peer counting.
  IpAnonymizer hp1("measurement-42");
  IpAnonymizer hp2("measurement-42");
  const IpAddr ip(134, 157, 1, 1);
  EXPECT_EQ(hp1.anonymize(ip), hp2.anonymize(ip));
}

TEST(IpAnonymizer, DifferentSaltsDiverge) {
  IpAnonymizer a("salt-a"), b("salt-b");
  const IpAddr ip(10, 0, 0, 1);
  EXPECT_NE(a.anonymize(ip), b.anonymize(ip));
}

TEST(IpAnonymizer, NoCollisionsOnRealisticScale) {
  IpAnonymizer a("salt");
  std::unordered_set<std::uint64_t> seen;
  Rng rng(5);
  for (int i = 0; i < 100000; ++i) {
    seen.insert(a.anonymize(IpAddr(static_cast<std::uint32_t>(rng()))));
  }
  // 64-bit truncation: collisions at 1e5 scale are ~3e-10 likely.
  EXPECT_GE(seen.size(), 99999u);
}

TEST(IpAnonymizer, OutputIsNotTheAddress) {
  IpAnonymizer a("salt");
  const IpAddr ip(1, 2, 3, 4);
  EXPECT_NE(a.anonymize(ip), ip.value());
}

logbook::LogFile stage1_log(std::uint16_t hp,
                            std::initializer_list<std::uint64_t> peers) {
  logbook::LogFile log;
  log.header.honeypot = hp;
  double t = 1;
  for (auto p : peers) {
    logbook::LogRecord r;
    r.timestamp = t++;
    r.honeypot = hp;
    r.peer = p;
    log.records.push_back(r);
  }
  return log;
}

TEST(Renumber, FirstAppearanceOrder) {
  auto log = stage1_log(0, {555, 777, 555, 999, 777});
  const auto distinct = renumber_peers(log);
  EXPECT_EQ(distinct, 3u);
  EXPECT_EQ(log.header.peer_kind, logbook::PeerIdKind::stage2_index);
  std::vector<std::uint64_t> peers;
  for (const auto& r : log.records) peers.push_back(r.peer);
  EXPECT_EQ(peers, (std::vector<std::uint64_t>{0, 1, 0, 2, 1}));
}

TEST(Renumber, CoherentAcrossLogs) {
  std::vector<logbook::LogFile> logs{stage1_log(0, {42, 43}),
                                     stage1_log(1, {43, 44, 42})};
  PeerMapping mapping;
  const auto distinct =
      renumber_peers(std::span<logbook::LogFile>(logs), &mapping);
  EXPECT_EQ(distinct, 3u);
  // Hash 43 appears in both logs; it must map to the same integer.
  EXPECT_EQ(logs[0].records[1].peer, logs[1].records[0].peer);
  EXPECT_EQ(logs[0].records[0].peer, logs[1].records[2].peer);
  EXPECT_EQ(mapping.size(), 3u);
}

TEST(Renumber, OutputContainsNoOriginalHashes) {
  auto log = stage1_log(0, {0xDEADBEEFCAFEBABEull, 0x1234567890ABCDEFull});
  renumber_peers(log);
  for (const auto& r : log.records) {
    EXPECT_LT(r.peer, 2u);  // dense integers only
  }
}

TEST(Renumber, RejectsDoubleApplication) {
  auto log = stage1_log(0, {1, 2});
  renumber_peers(log);
  EXPECT_THROW(renumber_peers(log), std::invalid_argument);
}

TEST(Renumber, EmptyLogYieldsZeroPeers) {
  logbook::LogFile log;
  EXPECT_EQ(renumber_peers(log), 0u);
}

TEST(NameAnonymizer, FrequentWordsKeptRareWordsReplaced) {
  std::vector<std::string> corpus{
      "Holiday.Video.2008.avi", "holiday.music.2008.mp3",
      "john.doe.holiday.2008.avi", "random.text.pdf"};
  NameAnonymizer anonymizer(corpus, 2);
  const auto out = anonymizer.anonymize("john.doe.holiday.2008.avi");
  // "holiday" (3 names) and "2008" (3 names) survive; "john"/"doe"/"avi"...
  EXPECT_NE(out.find("holiday"), std::string::npos);
  EXPECT_NE(out.find("2008"), std::string::npos);
  EXPECT_EQ(out.find("john"), std::string::npos);
  EXPECT_EQ(out.find("doe"), std::string::npos);
}

TEST(NameAnonymizer, ReplacementIsCoherent) {
  std::vector<std::string> corpus{"secret.file.one", "other.thing"};
  NameAnonymizer anonymizer(corpus, 2);
  const auto a = anonymizer.anonymize("secret.file.one");
  const auto b = anonymizer.anonymize("secret.backup");
  // "secret" must map to the same token both times.
  const auto first_token_a = a.substr(0, a.find(' '));
  const auto first_token_b = b.substr(0, b.find(' '));
  EXPECT_EQ(first_token_a, first_token_b);
}

TEST(NameAnonymizer, DistinctRareWordsGetDistinctTokens) {
  std::vector<std::string> corpus{"alpha.file", "beta.file"};
  NameAnonymizer anonymizer(corpus, 5);  // everything rare
  const auto a = anonymizer.anonymize("alpha");
  const auto b = anonymizer.anonymize("beta");
  EXPECT_NE(a, b);
}

TEST(NameAnonymizer, RepeatedWordInOneNameCountsOnce) {
  std::vector<std::string> corpus{"spam.spam.spam.avi", "other.avi"};
  NameAnonymizer anonymizer(corpus, 2);
  // "spam" appears in 1 name only -> rare -> replaced.
  const auto out = anonymizer.anonymize("spam.avi");
  EXPECT_EQ(out.find("spam"), std::string::npos);
  // "avi" appears in 2 names -> kept.
  EXPECT_NE(out.find("avi"), std::string::npos);
}

TEST(NameAnonymizer, UnknownWordsTreatedAsRare) {
  std::vector<std::string> corpus{"known.words.here"};
  NameAnonymizer anonymizer(corpus, 1);
  const auto out = anonymizer.anonymize("neverseen");
  EXPECT_EQ(out.find("neverseen"), std::string::npos);
  EXPECT_FALSE(out.empty());
}

TEST(NameAnonymizer, StatsAddUp) {
  std::vector<std::string> corpus{"a.b.c", "a.b", "a"};
  NameAnonymizer anonymizer(corpus, 2);
  const auto stats = anonymizer.stats();
  EXPECT_EQ(stats.distinct_words, 3u);
  EXPECT_EQ(stats.kept_words + stats.replaced_words, stats.distinct_words);
  EXPECT_EQ(stats.kept_words, 2u);  // "a" (3) and "b" (2)
}

}  // namespace
}  // namespace edhp::anonymize
