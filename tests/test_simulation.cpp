// Discrete-event kernel: ordering, cancellation, timers, clock semantics.

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulation.hpp"

namespace edhp::sim {
namespace {

TEST(Simulation, ExecutesInTimeOrder) {
  Simulation s;
  std::vector<int> order;
  s.schedule_at(3.0, [&] { order.push_back(3); });
  s.schedule_at(1.0, [&] { order.push_back(1); });
  s.schedule_at(2.0, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulation, FifoTieBreakAtEqualTimes) {
  Simulation s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule_at(5.0, [&order, i] { order.push_back(i); });
  }
  s.run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(Simulation, ClockAdvancesToEventTime) {
  Simulation s;
  double seen = -1;
  s.schedule_at(42.5, [&] { seen = s.now(); });
  s.run();
  EXPECT_DOUBLE_EQ(seen, 42.5);
}

TEST(Simulation, RunUntilStopsAtBoundaryInclusive) {
  Simulation s;
  int count = 0;
  s.schedule_at(1.0, [&] { ++count; });
  s.schedule_at(2.0, [&] { ++count; });
  s.schedule_at(2.0000001, [&] { ++count; });
  const auto executed = s.run_until(2.0);
  EXPECT_EQ(executed, 2u);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(s.pending(), 1u);
}

TEST(Simulation, EventsCanScheduleEvents) {
  Simulation s;
  int fired = 0;
  s.schedule_at(1.0, [&] {
    s.schedule_in(1.0, [&] {
      ++fired;
      s.schedule_in(0.5, [&] { ++fired; });
    });
  });
  s.run();
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(s.now(), 2.5);
}

TEST(Simulation, SchedulingInThePastThrows) {
  Simulation s;
  s.schedule_at(10.0, [] {});
  s.run();
  EXPECT_THROW(s.schedule_at(5.0, [] {}), std::invalid_argument);
  EXPECT_THROW(s.schedule_in(-1.0, [] {}), std::invalid_argument);
}

TEST(Simulation, CancelPreventsExecution) {
  Simulation s;
  int fired = 0;
  auto h = s.schedule_at(1.0, [&] { ++fired; });
  s.schedule_at(2.0, [&] { ++fired; });
  s.cancel(h);
  s.run();
  EXPECT_EQ(fired, 1);
}

TEST(Simulation, CancelAfterExecutionIsNoOp) {
  Simulation s;
  auto h = s.schedule_at(1.0, [] {});
  s.run();
  EXPECT_NO_THROW(s.cancel(h));
  EXPECT_NO_THROW(s.cancel(EventHandle{}));
}

TEST(Simulation, StopInterruptsRun) {
  Simulation s;
  int fired = 0;
  s.schedule_at(1.0, [&] {
    ++fired;
    s.stop();
  });
  s.schedule_at(2.0, [&] { ++fired; });
  s.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.pending(), 1u);
}

TEST(Simulation, RunUntilAdvancesClockWhenQueueEmpty) {
  Simulation s;
  s.run_until(100.0);
  EXPECT_DOUBLE_EQ(s.now(), 100.0);
}

TEST(PeriodicTimer, TicksAtPeriod) {
  Simulation s;
  int ticks = 0;
  PeriodicTimer t(s, 10.0, [&] { ++ticks; });
  t.start();
  s.run_until(35.0);
  EXPECT_EQ(ticks, 3);  // at t = 10, 20, 30
}

TEST(PeriodicTimer, StopHaltsTicks) {
  Simulation s;
  int ticks = 0;
  PeriodicTimer t(s, 1.0, [&] { ++ticks; });
  t.start();
  s.schedule_at(3.5, [&] { t.stop(); });
  s.run_until(10.0);
  EXPECT_EQ(ticks, 3);
}

TEST(PeriodicTimer, DestructorCancelsPending) {
  Simulation s;
  int ticks = 0;
  {
    PeriodicTimer t(s, 1.0, [&] { ++ticks; });
    t.start();
  }
  s.run_until(5.0);
  EXPECT_EQ(ticks, 0);
}

TEST(PeriodicTimer, RejectsNonPositivePeriod) {
  Simulation s;
  EXPECT_THROW(PeriodicTimer(s, 0.0, [] {}), std::invalid_argument);
}

TEST(PeriodicTimer, TimerCanStopItself) {
  Simulation s;
  int ticks = 0;
  PeriodicTimer t(s, 1.0, [&] {
    if (++ticks == 2) t.stop();
  });
  t.start();
  s.run_until(10.0);
  EXPECT_EQ(ticks, 2);
}

TEST(Simulation, ExecutedCountAccumulates) {
  Simulation s;
  for (int i = 0; i < 5; ++i) s.schedule_at(i, [] {});
  s.run();
  EXPECT_EQ(s.executed(), 5u);
}

}  // namespace
}  // namespace edhp::sim
