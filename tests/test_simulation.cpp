// Discrete-event kernel: ordering, cancellation, timers, clock semantics.

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <vector>

#include "sim/simulation.hpp"

namespace edhp::sim {
namespace {

TEST(Simulation, ExecutesInTimeOrder) {
  Simulation s;
  std::vector<int> order;
  s.schedule_at(3.0, [&] { order.push_back(3); });
  s.schedule_at(1.0, [&] { order.push_back(1); });
  s.schedule_at(2.0, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulation, FifoTieBreakAtEqualTimes) {
  Simulation s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule_at(5.0, [&order, i] { order.push_back(i); });
  }
  s.run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(Simulation, ClockAdvancesToEventTime) {
  Simulation s;
  double seen = -1;
  s.schedule_at(42.5, [&] { seen = s.now(); });
  s.run();
  EXPECT_DOUBLE_EQ(seen, 42.5);
}

TEST(Simulation, RunUntilStopsAtBoundaryInclusive) {
  Simulation s;
  int count = 0;
  s.schedule_at(1.0, [&] { ++count; });
  s.schedule_at(2.0, [&] { ++count; });
  s.schedule_at(2.0000001, [&] { ++count; });
  const auto executed = s.run_until(2.0);
  EXPECT_EQ(executed, 2u);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(s.pending(), 1u);
}

TEST(Simulation, EventsCanScheduleEvents) {
  Simulation s;
  int fired = 0;
  s.schedule_at(1.0, [&] {
    s.schedule_in(1.0, [&] {
      ++fired;
      s.schedule_in(0.5, [&] { ++fired; });
    });
  });
  s.run();
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(s.now(), 2.5);
}

TEST(Simulation, SchedulingInThePastThrows) {
  Simulation s;
  s.schedule_at(10.0, [] {});
  s.run();
  EXPECT_THROW(s.schedule_at(5.0, [] {}), std::invalid_argument);
  EXPECT_THROW(s.schedule_in(-1.0, [] {}), std::invalid_argument);
}

TEST(Simulation, CancelPreventsExecution) {
  Simulation s;
  int fired = 0;
  auto h = s.schedule_at(1.0, [&] { ++fired; });
  s.schedule_at(2.0, [&] { ++fired; });
  s.cancel(h);
  s.run();
  EXPECT_EQ(fired, 1);
}

TEST(Simulation, CancelAfterExecutionIsNoOp) {
  Simulation s;
  auto h = s.schedule_at(1.0, [] {});
  s.run();
  EXPECT_NO_THROW(s.cancel(h));
  EXPECT_NO_THROW(s.cancel(EventHandle{}));
}

TEST(Simulation, StopInterruptsRun) {
  Simulation s;
  int fired = 0;
  s.schedule_at(1.0, [&] {
    ++fired;
    s.stop();
  });
  s.schedule_at(2.0, [&] { ++fired; });
  s.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.pending(), 1u);
}

TEST(Simulation, RunUntilAdvancesClockWhenQueueEmpty) {
  Simulation s;
  s.run_until(100.0);
  EXPECT_DOUBLE_EQ(s.now(), 100.0);
}

// Regression: run_until(end) used to leave the clock at the last executed
// event when later events remained pending, so relative scheduling between
// run_until calls anchored before the boundary.
TEST(Simulation, RunUntilAdvancesClockWithLaterEventsPending) {
  Simulation s;
  s.schedule_at(10.0, [] {});
  s.schedule_at(500.0, [] {});
  s.run_until(100.0);
  EXPECT_DOUBLE_EQ(s.now(), 100.0);
  EXPECT_EQ(s.pending(), 1u);
  auto h = s.schedule_in(50.0, [] {});  // anchored at the boundary
  s.cancel(h);
  s.run_until(100.0);  // no-op window must not move the clock backwards
  EXPECT_DOUBLE_EQ(s.now(), 100.0);
}

TEST(Simulation, StopSuppressesClockAdvanceToBoundary) {
  Simulation s;
  s.schedule_at(1.0, [&] { s.stop(); });
  s.run_until(100.0);
  EXPECT_DOUBLE_EQ(s.now(), 1.0);
}

TEST(Simulation, CancelReportsWhetherEventWasLive) {
  Simulation s;
  auto h = s.schedule_at(1.0, [] {});
  EXPECT_TRUE(s.cancel(h));
  EXPECT_FALSE(s.cancel(h));  // second cancel: handle already dead
  EXPECT_FALSE(s.cancel(EventHandle{}));
  auto ran = s.schedule_at(2.0, [] {});
  s.run();
  EXPECT_FALSE(s.cancel(ran));
}

// Cancelling handles of already-executed events must not retain anything:
// the old engine kept every such id in a cancellation set until the queue
// drained past it, growing without bound in keep-alive churn.
TEST(Simulation, MassStaleCancelsRetainNothing) {
  Simulation s;
  constexpr int kRounds = 10000;
  std::vector<EventHandle> done;
  done.reserve(kRounds);
  for (int i = 0; i < kRounds; ++i) {
    done.push_back(s.schedule_at(static_cast<Time>(i), [] {}));
  }
  s.run();
  for (const auto& h : done) {
    EXPECT_FALSE(s.cancel(h));
  }
  const auto st = s.stats();
  EXPECT_EQ(st.events_executed, static_cast<std::uint64_t>(kRounds));
  EXPECT_EQ(st.stale_cancels, static_cast<std::uint64_t>(kRounds));
  EXPECT_EQ(st.events_cancelled, 0u);
  EXPECT_EQ(st.live_events, 0u);
  // The slab never grew beyond the peak number of simultaneously pending
  // events, and stale cancels added no bookkeeping.
  EXPECT_EQ(st.slab_capacity, st.peak_heap);
  EXPECT_EQ(st.slab_capacity, static_cast<std::size_t>(kRounds));
}

TEST(Simulation, SlotsAreRecycledInSteadyState) {
  Simulation s;
  // A self-rescheduling chain: one live event at a time, many executions.
  int remaining = 1000;
  std::function<void()> hop = [&] {
    if (--remaining > 0) s.schedule_in(1.0, hop);
  };
  s.schedule_in(1.0, hop);
  s.run();
  const auto st = s.stats();
  EXPECT_EQ(st.events_executed, 1000u);
  EXPECT_EQ(st.slot_acquisitions, 1000u);
  EXPECT_LE(st.slot_allocations, 2u);  // slab stays a handful of slots
  EXPECT_GT(st.recycle_rate(), 0.99);
}

TEST(Simulation, CancelledEventBookkeeping) {
  Simulation s;
  int fired = 0;
  auto a = s.schedule_at(1.0, [&] { ++fired; });
  s.schedule_at(2.0, [&] { ++fired; });
  s.cancel(a);
  EXPECT_EQ(s.pending(), 1u);  // cancellation is visible before the run
  s.run();
  EXPECT_EQ(fired, 1);
  const auto st = s.stats();
  EXPECT_EQ(st.events_cancelled, 1u);
  EXPECT_EQ(st.events_executed, 1u);
  EXPECT_EQ(st.live_events, 0u);
}

TEST(PeriodicTimer, TicksAtPeriod) {
  Simulation s;
  int ticks = 0;
  PeriodicTimer t(s, 10.0, [&] { ++ticks; });
  t.start();
  s.run_until(35.0);
  EXPECT_EQ(ticks, 3);  // at t = 10, 20, 30
}

TEST(PeriodicTimer, StopHaltsTicks) {
  Simulation s;
  int ticks = 0;
  PeriodicTimer t(s, 1.0, [&] { ++ticks; });
  t.start();
  s.schedule_at(3.5, [&] { t.stop(); });
  s.run_until(10.0);
  EXPECT_EQ(ticks, 3);
}

TEST(PeriodicTimer, DestructorCancelsPending) {
  Simulation s;
  int ticks = 0;
  {
    PeriodicTimer t(s, 1.0, [&] { ++ticks; });
    t.start();
  }
  s.run_until(5.0);
  EXPECT_EQ(ticks, 0);
}

TEST(PeriodicTimer, RejectsNonPositivePeriod) {
  Simulation s;
  EXPECT_THROW(PeriodicTimer(s, 0.0, [] {}), std::invalid_argument);
}

TEST(PeriodicTimer, RestartAfterStopReArmsFromCurrentTime) {
  Simulation s;
  std::vector<double> tick_times;
  PeriodicTimer t(s, 10.0, [&] { tick_times.push_back(s.now()); });
  t.start();
  s.run_until(25.0);                   // ticks at 10, 20
  t.stop();
  s.run_until(100.0);                  // silent gap
  t.start();                           // re-arms anchored at now() = 100
  s.run_until(125.0);                  // ticks at 110, 120
  EXPECT_EQ(tick_times,
            (std::vector<double>{10.0, 20.0, 110.0, 120.0}));
}

TEST(PeriodicTimer, DestructionWhileArmedMidRunIsSafe) {
  Simulation s;
  int ticks = 0;
  auto t = std::make_unique<PeriodicTimer>(s, 1.0, [&] { ++ticks; });
  t->start();
  // Destroy from inside the run, between two armed ticks; the pending
  // event's slot may be recycled immediately after.
  s.schedule_at(3.5, [&] { t.reset(); });
  s.schedule_at(4.0, [&] { s.schedule_in(0.25, [] {}); });  // churn the slab
  s.run_until(10.0);
  EXPECT_EQ(ticks, 3);
  EXPECT_EQ(s.stats().live_events, 0u);
}

TEST(PeriodicTimer, TimerCanStopItself) {
  Simulation s;
  int ticks = 0;
  PeriodicTimer t(s, 1.0, [&] {
    if (++ticks == 2) t.stop();
  });
  t.start();
  s.run_until(10.0);
  EXPECT_EQ(ticks, 2);
}

TEST(Simulation, ExecutedCountAccumulates) {
  Simulation s;
  for (int i = 0; i < 5; ++i) s.schedule_at(i, [] {});
  s.run();
  EXPECT_EQ(s.executed(), 5u);
}

}  // namespace
}  // namespace edhp::sim
