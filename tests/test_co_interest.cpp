// Co-interest analysis (file-file overlap and peer-interest structure) and
// the honeypot upload-queue behaviour.

#include <gtest/gtest.h>

#include "analysis/co_interest.hpp"
#include "honeypot/honeypot.hpp"
#include "server/server.hpp"

namespace edhp {
namespace {

using logbook::LogFile;
using logbook::LogRecord;
using logbook::QueryType;

LogRecord frec(double t, std::uint64_t peer, FileId file) {
  LogRecord r;
  r.timestamp = t;
  r.peer = peer;
  r.type = QueryType::start_upload;
  r.file = file;
  r.flags = logbook::kFlagHasFile;
  return r;
}

LogFile stage2(std::vector<LogRecord> records) {
  LogFile log;
  log.header.peer_kind = logbook::PeerIdKind::stage2_index;
  log.records = std::move(records);
  return log;
}

const FileId fa = FileId::from_words(1, 1);
const FileId fb = FileId::from_words(2, 2);
const FileId fc = FileId::from_words(3, 3);

TEST(CoInterest, TopFileOverlapsRankedBySharedPeers) {
  // Peers 0,1,2 query A; 1,2 also query B; 2 also queries C.
  auto log = stage2({
      frec(1, 0, fa), frec(2, 1, fa), frec(3, 2, fa),
      frec(4, 1, fb), frec(5, 2, fb),
      frec(6, 2, fc),
  });
  const std::vector<FileId> files{fa, fb, fc};
  const auto overlaps = analysis::top_file_overlaps(log, files, 10);
  ASSERT_EQ(overlaps.size(), 3u);
  EXPECT_EQ(overlaps[0].a, fa);
  EXPECT_EQ(overlaps[0].b, fb);
  EXPECT_EQ(overlaps[0].shared_peers, 2u);
  EXPECT_DOUBLE_EQ(overlaps[0].jaccard, 2.0 / 3.0);
  // A-C and B-C both share exactly peer 2; B-C has higher Jaccard (2 vs 3
  // union), so it ranks before A-C.
  EXPECT_EQ(overlaps[1].shared_peers, 1u);
  EXPECT_EQ(overlaps[1].a, fb);
  EXPECT_EQ(overlaps[1].b, fc);
}

TEST(CoInterest, TopKTruncates) {
  auto log = stage2({
      frec(1, 0, fa), frec(2, 0, fb), frec(3, 0, fc),
  });
  const std::vector<FileId> files{fa, fb, fc};
  EXPECT_EQ(analysis::top_file_overlaps(log, files, 1).size(), 1u);
}

TEST(CoInterest, DisjointFilesYieldNoEdges) {
  auto log = stage2({frec(1, 0, fa), frec(2, 1, fb)});
  const std::vector<FileId> files{fa, fb};
  EXPECT_TRUE(analysis::top_file_overlaps(log, files, 10).empty());
}

TEST(CoInterest, ParallelMatchesSerial) {
  std::vector<LogRecord> records;
  Rng rng(7);
  std::vector<FileId> files;
  for (std::uint64_t f = 0; f < 20; ++f) {
    files.push_back(FileId::from_words(f, f));
  }
  for (int i = 0; i < 3000; ++i) {
    records.push_back(frec(i, rng.below(300),
                           files[rng.below(files.size())]));
  }
  auto log = stage2(std::move(records));
  analysis::ThreadPool pool(4);
  const auto serial = analysis::top_file_overlaps(log, files, 50, nullptr);
  const auto parallel = analysis::top_file_overlaps(log, files, 50, &pool);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].shared_peers, parallel[i].shared_peers);
    EXPECT_EQ(serial[i].a, parallel[i].a);
    EXPECT_EQ(serial[i].b, parallel[i].b);
  }
}

TEST(CoInterest, SummaryCountsMultiFilePeers) {
  auto log = stage2({
      frec(1, 0, fa), frec(2, 0, fb), frec(3, 0, fc),  // peer 0: 3 files
      frec(4, 1, fa),                                  // peer 1: 1 file
      frec(5, 2, fa), frec(6, 2, fa),                  // peer 2: 1 file (dup)
  });
  const auto summary = analysis::co_interest_summary(log);
  EXPECT_EQ(summary.attributed_peers, 3u);
  EXPECT_EQ(summary.multi_file_peers, 1u);
  EXPECT_EQ(summary.max_files_one_peer, 3u);
  EXPECT_NEAR(summary.avg_files_per_peer, 5.0 / 3.0, 1e-9);
}

TEST(CoInterest, EmptyLogIsZero) {
  const auto summary = analysis::co_interest_summary(stage2({}));
  EXPECT_EQ(summary.attributed_peers, 0u);
  EXPECT_EQ(summary.avg_files_per_peer, 0.0);
}

// --- Upload queue ------------------------------------------------------------

class QueueTest : public ::testing::Test {
 protected:
  void settle(double span = 120.0) { s.run_until(s.now() + span); }

  sim::Simulation s{71};
  net::Network net{s};
  net::NodeId server_node = net.add_node(true);
  server::Server server{net, server_node, {}};
  FileId bait = FileId::from_words(9, 9);

  void SetUp() override { server.start(); }

  struct FakePeer {
    net::EndpointPtr ep;
    std::vector<proto::AnyMessage> inbox;
  };

  FakePeer contact_and_request(honeypot::Honeypot& hp) {
    FakePeer p;
    const auto node = net.add_node(true);
    net.connect(node, hp.node(), [&](net::EndpointPtr ep) {
      p.ep = std::move(ep);
      ASSERT_TRUE(p.ep);
      p.ep->on_message([&](net::Bytes bytes) {
        p.inbox.push_back(proto::decode(proto::Channel::client_client, bytes));
      });
      proto::Hello hello;
      hello.user = UserId::from_words(node, node);
      hello.client_id = net.info(node).ip.value();
      hello.port = 4662;
      p.ep->send(proto::encode(proto::AnyMessage{hello}));
      p.ep->send(proto::encode(proto::AnyMessage{proto::StartUpload{bait}}));
    });
    settle();
    return p;
  }

  template <typename T>
  static bool got(const FakePeer& p) {
    for (const auto& m : p.inbox) {
      if (std::holds_alternative<T>(m)) return true;
    }
    return false;
  }
};

TEST_F(QueueTest, SlotCapQueuesExtraPeers) {
  honeypot::HoneypotConfig c;
  c.name = "queued-hp";
  c.max_upload_slots = 1;
  c.harvest_shared_lists = false;
  honeypot::Honeypot hp(net, net.add_node(true), c);
  hp.connect_to_server(honeypot::ServerRef{server_node, "srv", 4661});
  settle();

  auto first = contact_and_request(hp);
  auto second = contact_and_request(hp);
  EXPECT_TRUE(got<proto::AcceptUpload>(first));
  EXPECT_FALSE(got<proto::AcceptUpload>(second));
  EXPECT_TRUE(got<proto::QueueRank>(second));
  EXPECT_EQ(hp.counters().get("queued_peers"), 1u);

  // The slot holder leaves: the queued peer gets promoted.
  first.ep->close();
  settle();
  EXPECT_TRUE(got<proto::AcceptUpload>(second));
  EXPECT_EQ(hp.counters().get("promoted_from_queue"), 1u);
}

TEST_F(QueueTest, UnlimitedSlotsByDefault) {
  honeypot::HoneypotConfig c;
  c.name = "open-hp";
  c.harvest_shared_lists = false;
  honeypot::Honeypot hp(net, net.add_node(true), c);
  hp.connect_to_server(honeypot::ServerRef{server_node, "srv", 4661});
  settle();
  auto first = contact_and_request(hp);
  auto second = contact_and_request(hp);
  auto third = contact_and_request(hp);
  EXPECT_TRUE(got<proto::AcceptUpload>(first));
  EXPECT_TRUE(got<proto::AcceptUpload>(second));
  EXPECT_TRUE(got<proto::AcceptUpload>(third));
  EXPECT_EQ(hp.counters().get("queued_peers"), 0u);
}

}  // namespace
}  // namespace edhp
