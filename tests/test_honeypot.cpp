// The honeypot itself: server protocol behaviour, advertisement, query
// logging with stage-1 anonymisation, content strategies, harvesting,
// greedy growth, crash/relaunch.

#include <gtest/gtest.h>

#include "honeypot/honeypot.hpp"
#include "proto/filehash.hpp"
#include "server/server.hpp"

namespace edhp::honeypot {
namespace {

using proto::AnyMessage;
using proto::Channel;

class HoneypotTest : public ::testing::Test {
 protected:
  // run() would never return while honeypot keep-alive timers are armed;
  // settle() drains a bounded window instead.
  void settle(double span = 180.0) { s.run_until(s.now() + span); }

  sim::Simulation s{11};
  net::Network net{s};
  net::NodeId server_node = net.add_node(true);
  server::Server server{net, server_node, {}};
  ServerRef ref{server_node, "test-server", 4661};

  AdvertisedFile fake{FileId::from_words(0xAA, 0xBB), "bait.avi", 1000000};

  void SetUp() override { server.start(); }

  HoneypotConfig config(ContentStrategy strategy) {
    HoneypotConfig c;
    c.id = 1;
    c.name = "hp-test";
    c.strategy = strategy;
    return c;
  }

  /// A scripted fake peer connection to the honeypot.
  struct FakePeer {
    net::EndpointPtr ep;
    std::vector<AnyMessage> inbox;
  };

  FakePeer contact(Honeypot& hp, bool send_hello = true,
                   std::uint32_t client_id = 0x7F000001) {
    FakePeer p;
    const auto node = net.add_node(true);
    net.connect(node, hp.node(), [&, client_id](net::EndpointPtr ep) {
      p.ep = std::move(ep);
      ASSERT_TRUE(p.ep) << "honeypot not listening";
      p.ep->on_message([&](net::Bytes bytes) {
        p.inbox.push_back(proto::decode(Channel::client_client, bytes));
      });
      if (send_hello) {
        proto::Hello hello;
        hello.user = UserId::from_words(5, 6);
        hello.client_id = client_id;
        hello.port = 4662;
        hello.tags = {proto::Tag::string_tag(proto::kTagName, "eMule 0.49b"),
                      proto::Tag::u32_tag(proto::kTagVersion, 0x31)};
        p.ep->send(proto::encode(AnyMessage{hello}));
      }
    });
    settle();
    return p;
  }
};

TEST_F(HoneypotTest, LogsInAndGetsClientId) {
  Honeypot hp(net, net.add_node(true), config(ContentStrategy::no_content));
  EXPECT_EQ(hp.status(), Status::idle);
  hp.connect_to_server(ref);
  EXPECT_EQ(hp.status(), Status::connecting);
  settle();
  EXPECT_EQ(hp.status(), Status::connected);
  EXPECT_TRUE(hp.client_id().is_high());
  EXPECT_EQ(server.session_count(), 1u);
}

TEST_F(HoneypotTest, AdvertisesFilesToServer) {
  Honeypot hp(net, net.add_node(true), config(ContentStrategy::no_content));
  hp.connect_to_server(ref);
  settle();
  hp.advertise({fake});
  settle();
  EXPECT_TRUE(server.index().has_file(fake.id));
  auto sources = server.index().sources(fake.id, 10);
  ASSERT_EQ(sources.size(), 1u);
  EXPECT_EQ(sources[0].client_id, hp.client_id().value());
}

TEST_F(HoneypotTest, OfferKeepAliveRefreshesServer) {
  Honeypot hp(net, net.add_node(true), config(ContentStrategy::no_content));
  hp.connect_to_server(ref);
  settle();
  hp.advertise({fake});
  s.run_until(s.now() + hours(2));
  EXPECT_GE(hp.counters().get("offers_sent"), 4u);  // initial + keepalives
  EXPECT_TRUE(server.index().has_file(fake.id));
}

TEST_F(HoneypotTest, AnswersHelloAndLogsQuery) {
  Honeypot hp(net, net.add_node(true), config(ContentStrategy::no_content));
  hp.connect_to_server(ref);
  settle();
  hp.advertise({fake});
  auto peer = contact(hp);
  ASSERT_FALSE(peer.inbox.empty());
  EXPECT_TRUE(std::holds_alternative<proto::HelloAnswer>(peer.inbox[0]));
  // Harvesting defaults on: the honeypot also asks for the shared list.
  ASSERT_GE(peer.inbox.size(), 2u);
  EXPECT_TRUE(std::holds_alternative<proto::AskSharedFiles>(peer.inbox[1]));

  ASSERT_EQ(hp.log().records.size(), 1u);
  const auto& r = hp.log().records[0];
  EXPECT_EQ(r.type, logbook::QueryType::hello);
  EXPECT_TRUE(r.high_id());
  EXPECT_EQ(hp.log().names[r.name_ref], "eMule 0.49b");
  EXPECT_EQ(r.client_version, 0x31u);
  EXPECT_EQ(r.honeypot, 1);
}

TEST_F(HoneypotTest, LogNeverContainsRawPeerIp) {
  Honeypot hp(net, net.add_node(true), config(ContentStrategy::no_content));
  hp.connect_to_server(ref);
  settle();
  auto peer = contact(hp);
  ASSERT_EQ(hp.log().records.size(), 1u);
  // Stage-1: the peer field is a salted hash, not the IP (in any byte order).
  const auto& r = hp.log().records[0];
  for (std::uint32_t node_ip = 0; node_ip < net.node_count(); ++node_ip) {
    const auto ip = net.info(node_ip).ip.value();
    EXPECT_NE(r.peer, ip);
    EXPECT_NE(r.peer, __builtin_bswap32(ip));
  }
  EXPECT_EQ(hp.log().header.peer_kind, logbook::PeerIdKind::stage1_hash);
}

TEST_F(HoneypotTest, SamePeerSameHashAcrossHoneypotsWithSharedSalt) {
  auto c1 = config(ContentStrategy::no_content);
  auto c2 = config(ContentStrategy::no_content);
  c2.id = 2;
  c1.salt = c2.salt = "shared-measurement-salt";
  Honeypot hp1(net, net.add_node(true), c1);
  Honeypot hp2(net, net.add_node(true), c2);
  hp1.connect_to_server(ref);
  hp2.connect_to_server(ref);
  settle();

  // One peer node contacts both honeypots.
  const auto node = net.add_node(true);
  for (Honeypot* hp : {&hp1, &hp2}) {
    net::EndpointPtr keep;
    net.connect(node, hp->node(), [&](net::EndpointPtr ep) {
      keep = std::move(ep);
      proto::Hello hello;
      hello.user = UserId::from_words(1, 1);
      hello.client_id = net.info(node).ip.value();
      hello.port = 4662;
      keep->send(proto::encode(AnyMessage{hello}));
    });
    settle();
  }
  ASSERT_EQ(hp1.log().records.size(), 1u);
  ASSERT_EQ(hp2.log().records.size(), 1u);
  EXPECT_EQ(hp1.log().records[0].peer, hp2.log().records[0].peer);
}

TEST_F(HoneypotTest, AcceptsUploadAndLogsStartUpload) {
  Honeypot hp(net, net.add_node(true), config(ContentStrategy::no_content));
  hp.connect_to_server(ref);
  settle();
  auto peer = contact(hp);
  peer.ep->send(proto::encode(AnyMessage{proto::StartUpload{fake.id}}));
  settle();
  bool accepted = false;
  for (const auto& m : peer.inbox) {
    if (std::holds_alternative<proto::AcceptUpload>(m)) accepted = true;
  }
  EXPECT_TRUE(accepted);
  ASSERT_EQ(hp.log().records.size(), 2u);
  EXPECT_EQ(hp.log().records[1].type, logbook::QueryType::start_upload);
  EXPECT_EQ(hp.log().records[1].file, fake.id);
  EXPECT_TRUE(hp.log().records[1].has_file());
}

TEST_F(HoneypotTest, NoContentStrategyStaysSilentOnRequestPart) {
  Honeypot hp(net, net.add_node(true), config(ContentStrategy::no_content));
  hp.connect_to_server(ref);
  settle();
  auto peer = contact(hp);
  proto::RequestParts rp;
  rp.file = fake.id;
  rp.begin = {0, 184320, 368640};
  rp.end = {184320, 368640, 552960};
  peer.ep->send(proto::encode(AnyMessage{rp}));
  settle();
  for (const auto& m : peer.inbox) {
    EXPECT_FALSE(std::holds_alternative<proto::SendingPart>(m));
  }
  // ...but the query was logged.
  EXPECT_EQ(hp.log().records.back().type, logbook::QueryType::request_part);
}

TEST_F(HoneypotTest, RandomContentStrategySendsBlocks) {
  Honeypot hp(net, net.add_node(true), config(ContentStrategy::random_content));
  hp.connect_to_server(ref);
  settle();
  auto peer = contact(hp);
  proto::RequestParts rp;
  rp.file = fake.id;
  rp.begin = {0, 184320, 0};
  rp.end = {184320, 368640, 0};  // third range empty
  peer.ep->send(proto::encode(AnyMessage{rp}));
  settle();
  std::size_t blocks = 0;
  std::uint64_t advertised_bytes = 0;
  for (const auto& m : peer.inbox) {
    if (const auto* part = std::get_if<proto::SendingPart>(&m)) {
      ++blocks;
      advertised_bytes += part->end - part->begin;
      EXPECT_FALSE(part->data.empty());
      // The content cannot verify against any fixed expected digest.
      EXPECT_FALSE(proto::verify_part(part->data, Md4::Digest{}));
    }
  }
  EXPECT_EQ(blocks, 2u);  // one per non-empty range
  EXPECT_EQ(advertised_bytes, 2u * 184320u);
}

TEST_F(HoneypotTest, HarvestsSharedListsAndAggregates) {
  Honeypot hp(net, net.add_node(true), config(ContentStrategy::no_content));
  hp.connect_to_server(ref);
  settle();
  auto peer = contact(hp);
  proto::AskSharedFilesAnswer answer;
  for (std::uint64_t i = 0; i < 3; ++i) {
    proto::PublishedFile f;
    f.file = FileId::from_words(i, i);
    f.name = "shared-" + std::to_string(i) + ".avi";
    f.size = 1000 * (static_cast<std::uint32_t>(i) + 1);
    answer.files.push_back(f);
  }
  peer.ep->send(proto::encode(AnyMessage{answer}));
  // A second peer shares an overlapping list.
  auto peer2 = contact(hp);
  peer2.ep->send(proto::encode(AnyMessage{answer}));
  settle();

  EXPECT_EQ(hp.observed_files().size(), 3u);
  EXPECT_EQ(hp.observed_bytes(), 1000u + 2000u + 3000u);
  EXPECT_EQ(hp.counters().get("shared_lists_received"), 2u);
  EXPECT_EQ(hp.observed_names().size(), 3u);
}

TEST_F(HoneypotTest, GreedyModeAdoptsHarvestedFiles) {
  auto c = config(ContentStrategy::no_content);
  c.greedy = true;
  c.greedy_harvest_window = days(1);
  Honeypot hp(net, net.add_node(true), c);
  hp.connect_to_server(ref);
  settle();
  hp.advertise({fake});

  auto peer = contact(hp);
  proto::AskSharedFilesAnswer answer;
  proto::PublishedFile f;
  f.file = FileId::from_words(0xCC, 0xDD);
  f.name = "harvested.mp3";
  f.size = 123;
  answer.files.push_back(f);
  peer.ep->send(proto::encode(AnyMessage{answer}));
  settle();

  ASSERT_EQ(hp.advertised().size(), 2u);
  EXPECT_EQ(hp.advertised()[1].name, "harvested.mp3");
  EXPECT_TRUE(server.index().has_file(f.file));  // re-offered to server
}

TEST_F(HoneypotTest, GreedyStopsAfterHarvestWindow) {
  auto c = config(ContentStrategy::no_content);
  c.greedy = true;
  c.greedy_harvest_window = hours(1);
  Honeypot hp(net, net.add_node(true), c);
  hp.connect_to_server(ref);
  settle();
  s.run_until(s.now() + hours(2));

  auto peer = contact(hp);
  proto::AskSharedFilesAnswer answer;
  proto::PublishedFile f;
  f.file = FileId::from_words(0xEE, 0xFF);
  f.name = "late.avi";
  answer.files.push_back(f);
  peer.ep->send(proto::encode(AnyMessage{answer}));
  settle();
  EXPECT_TRUE(hp.advertised().empty());
  // Still *observed* for the distinct-files statistics.
  EXPECT_EQ(hp.observed_files().size(), 1u);
}

TEST_F(HoneypotTest, AnswersSharedFilesBrowsing) {
  Honeypot hp(net, net.add_node(true), config(ContentStrategy::no_content));
  hp.connect_to_server(ref);
  settle();
  hp.advertise({fake});
  auto peer = contact(hp);
  peer.ep->send(proto::encode(AnyMessage{proto::AskSharedFiles{}}));
  settle();
  const auto* answer =
      std::get_if<proto::AskSharedFilesAnswer>(&peer.inbox.back());
  ASSERT_NE(answer, nullptr);
  ASSERT_EQ(answer->files.size(), 1u);
  EXPECT_EQ(answer->files[0].file, fake.id);
}

TEST_F(HoneypotTest, CrashAndRelaunchKeepsLog) {
  Honeypot hp(net, net.add_node(true), config(ContentStrategy::no_content));
  hp.connect_to_server(ref);
  settle();
  auto peer = contact(hp);
  EXPECT_EQ(hp.log().records.size(), 1u);

  hp.crash();
  EXPECT_EQ(hp.status(), Status::dead);
  settle();
  EXPECT_EQ(server.session_count(), 0u);

  hp.connect_to_server(ref);
  settle();
  EXPECT_EQ(hp.status(), Status::connected);
  EXPECT_EQ(hp.log().records.size(), 1u);  // log survived the crash
}

TEST_F(HoneypotTest, TakeLogDrainsButKeepsHeader) {
  Honeypot hp(net, net.add_node(true), config(ContentStrategy::random_content));
  hp.connect_to_server(ref);
  settle();
  auto peer = contact(hp);
  auto taken = hp.take_log();
  EXPECT_EQ(taken.records.size(), 1u);
  EXPECT_TRUE(hp.log().records.empty());
  EXPECT_EQ(hp.log().header.strategy, "random-content");
  // Logging continues into the fresh log.
  auto peer2 = contact(hp);
  EXPECT_EQ(hp.log().records.size(), 1u);
}

TEST_F(HoneypotTest, MalformedPeerTrafficDropsConnection) {
  Honeypot hp(net, net.add_node(true), config(ContentStrategy::no_content));
  hp.connect_to_server(ref);
  settle();
  auto peer = contact(hp, /*send_hello=*/false);
  peer.ep->send(net::Bytes{0xFF, 0xFF});
  settle();
  EXPECT_EQ(hp.counters().get("peer_decode_errors"), 1u);
  EXPECT_TRUE(hp.log().records.empty());
}

TEST_F(HoneypotTest, LowIdPeerFlaggedInLog) {
  Honeypot hp(net, net.add_node(true), config(ContentStrategy::no_content));
  hp.connect_to_server(ref);
  settle();
  auto peer = contact(hp, true, /*client_id=*/1234);  // LowID
  ASSERT_EQ(hp.log().records.size(), 1u);
  EXPECT_FALSE(hp.log().records[0].high_id());
}

}  // namespace
}  // namespace edhp::honeypot

namespace edhp::honeypot {
namespace {

TEST_F(HoneypotTest, SearchAndAdoptPullsKeywordMatches) {
  // Another client shares keyword-matching files with the server.
  const auto sharer_node = net.add_node(true);
  net::EndpointPtr keep;
  net.connect(sharer_node, server_node, [&](net::EndpointPtr ep) {
    keep = std::move(ep);
    proto::LoginRequest login;
    login.user = UserId::from_words(5, 5);
    login.port = 4662;
    keep->send(proto::encode(proto::AnyMessage{login}));
    proto::OfferFiles offer;
    for (int i = 0; i < 3; ++i) {
      proto::PublishedFile f;
      f.file = FileId::from_words(static_cast<std::uint64_t>(100 + i), 1);
      f.name = "crimson.echo.track" + std::to_string(i) + ".mp3";
      f.size = 5000;
      offer.files.push_back(f);
    }
    proto::PublishedFile other;
    other.file = FileId::from_words(999, 1);
    other.name = "unrelated.iso";
    offer.files.push_back(other);
    keep->send(proto::encode(proto::AnyMessage{std::move(offer)}));
  });
  settle();

  Honeypot hp(net, net.add_node(true), config(ContentStrategy::no_content));
  hp.connect_to_server(ref);
  settle();
  hp.search_and_adopt("crimson echo", 10);
  settle();

  EXPECT_EQ(hp.advertised().size(), 3u);
  EXPECT_EQ(hp.counters().get("search_adopted"), 3u);
  for (const auto& f : hp.advertised()) {
    EXPECT_NE(f.name.find("crimson"), std::string::npos);
  }
  // The honeypot now appears as a provider of the keyword files.
  EXPECT_EQ(server.index()
                .sources(FileId::from_words(100, 1), 10)
                .size(),
            2u);  // original sharer + honeypot
}

TEST_F(HoneypotTest, SearchAdoptRespectsLimit) {
  const auto sharer_node = net.add_node(true);
  net::EndpointPtr keep;
  net.connect(sharer_node, server_node, [&](net::EndpointPtr ep) {
    keep = std::move(ep);
    proto::LoginRequest login;
    login.user = UserId::from_words(6, 6);
    login.port = 4662;
    keep->send(proto::encode(proto::AnyMessage{login}));
    proto::OfferFiles offer;
    for (int i = 0; i < 8; ++i) {
      proto::PublishedFile f;
      f.file = FileId::from_words(static_cast<std::uint64_t>(200 + i), 1);
      f.name = "topic.file" + std::to_string(i) + ".avi";
      offer.files.push_back(f);
    }
    keep->send(proto::encode(proto::AnyMessage{std::move(offer)}));
  });
  settle();

  Honeypot hp(net, net.add_node(true), config(ContentStrategy::no_content));
  hp.connect_to_server(ref);
  settle();
  hp.search_and_adopt("topic", 2);
  settle();
  EXPECT_EQ(hp.advertised().size(), 2u);
}

TEST_F(HoneypotTest, SearchWhileDisconnectedIsNoOp) {
  Honeypot hp(net, net.add_node(true), config(ContentStrategy::no_content));
  hp.search_and_adopt("anything", 5);
  settle();
  EXPECT_TRUE(hp.advertised().empty());
  EXPECT_EQ(hp.counters().get("searches_sent"), 0u);
}

}  // namespace
}  // namespace edhp::honeypot
