// Unit tests for the little-endian byte reader/writer.

#include <gtest/gtest.h>

#include "common/bytes.hpp"

namespace edhp {
namespace {

TEST(ByteWriter, LittleEndianLayout) {
  ByteWriter w;
  w.u8(0x11);
  w.u16(0x2233);
  w.u32(0x44556677);
  w.u64(0x8899AABBCCDDEEFFull);
  const auto& b = w.view();
  ASSERT_EQ(b.size(), 15u);
  EXPECT_EQ(b[0], 0x11);
  EXPECT_EQ(b[1], 0x33);
  EXPECT_EQ(b[2], 0x22);
  EXPECT_EQ(b[3], 0x77);
  EXPECT_EQ(b[4], 0x66);
  EXPECT_EQ(b[5], 0x55);
  EXPECT_EQ(b[6], 0x44);
  EXPECT_EQ(b[7], 0xFF);
  EXPECT_EQ(b[14], 0x88);
}

TEST(ByteWriter, Str16PrefixesLength) {
  ByteWriter w;
  w.str16("abc");
  const auto& b = w.view();
  ASSERT_EQ(b.size(), 5u);
  EXPECT_EQ(b[0], 3);
  EXPECT_EQ(b[1], 0);
  EXPECT_EQ(b[2], 'a');
}

TEST(ByteWriter, PatchU32OverwritesInPlace) {
  ByteWriter w;
  w.u32(0);
  w.u8(0xAB);
  w.patch_u32(0, 0xDEADBEEF);
  ByteReader r(w.view());
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u8(), 0xAB);
}

TEST(ByteWriter, PatchOutOfRangeThrows) {
  ByteWriter w;
  w.u16(7);
  EXPECT_THROW(w.patch_u32(0, 1), DecodeError);
}

TEST(ByteReader, RoundTripAllWidths) {
  ByteWriter w;
  w.u8(200);
  w.u16(60000);
  w.u32(4000000000u);
  w.u64(0x0123456789ABCDEFull);
  w.str16("hello world");
  ByteReader r(w.view());
  EXPECT_EQ(r.u8(), 200);
  EXPECT_EQ(r.u16(), 60000);
  EXPECT_EQ(r.u32(), 4000000000u);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.str16(), "hello world");
  EXPECT_TRUE(r.done());
  EXPECT_NO_THROW(r.expect_done("test"));
}

TEST(ByteReader, TruncatedReadThrows) {
  const std::uint8_t raw[3] = {1, 2, 3};
  ByteReader r{std::span<const std::uint8_t>(raw, 3)};
  EXPECT_EQ(r.u16(), 0x0201u);
  EXPECT_THROW((void)r.u16(), DecodeError);
}

TEST(ByteReader, TruncatedStringThrows) {
  ByteWriter w;
  w.u16(10);  // claims 10 bytes follow
  w.u8('x');
  ByteReader r(w.view());
  EXPECT_THROW((void)r.str16(), DecodeError);
}

TEST(ByteReader, ExpectDoneThrowsOnTrailingBytes) {
  const std::uint8_t raw[2] = {1, 2};
  ByteReader r{std::span<const std::uint8_t>(raw, 2)};
  (void)r.u8();
  EXPECT_THROW(r.expect_done("ctx"), DecodeError);
}

TEST(ByteReader, EmptyBufferReportsDone) {
  ByteReader r{std::span<const std::uint8_t>{}};
  EXPECT_TRUE(r.done());
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_THROW((void)r.u8(), DecodeError);
}

TEST(ByteReader, BytesSpanViewsUnderlyingBuffer) {
  ByteWriter w;
  w.u32(0xAABBCCDD);
  ByteReader r(w.view());
  auto s = r.bytes(4);
  EXPECT_EQ(s[0], 0xDD);
  EXPECT_EQ(s[3], 0xAA);
  EXPECT_TRUE(r.done());
}

}  // namespace
}  // namespace edhp
