// Randomized property sweeps (parameterized over seeds) for cross-module
// invariants: simulation ordering, log serialization/merging/renumbering,
// and subset-curve anchors.

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "analysis/log_stats.hpp"
#include "analysis/subsets.hpp"
#include "anonymize/renumber.hpp"
#include "common/rng.hpp"
#include "logbook/log_io.hpp"
#include "logbook/merge.hpp"
#include "sim/simulation.hpp"

namespace edhp {
namespace {

class SeededProperty : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, SeededProperty,
                         ::testing::Values(1, 7, 42, 1234, 99991, 31337, 2008,
                                           0xDEADBEEF));

// --- Simulation: random schedules execute in nondecreasing time order -----

TEST_P(SeededProperty, SimulationExecutesChronologically) {
  Rng rng(GetParam());
  sim::Simulation s;
  std::vector<double> executed_at;
  std::vector<sim::EventHandle> handles;
  for (int i = 0; i < 500; ++i) {
    const double t = rng.uniform(0, 1000);
    handles.push_back(s.schedule_at(t, [&executed_at, &s] {
      executed_at.push_back(s.now());
    }));
  }
  // Cancel a random third.
  std::size_t cancelled = 0;
  for (const auto& h : handles) {
    if (rng.chance(1.0 / 3)) {
      s.cancel(h);
      ++cancelled;
    }
  }
  s.run();
  EXPECT_EQ(executed_at.size(), 500 - cancelled);
  EXPECT_TRUE(std::is_sorted(executed_at.begin(), executed_at.end()));
}

// --- Logbook: arbitrary logs survive serialization and merging -------------

logbook::LogFile random_log(Rng& rng, std::uint16_t hp) {
  logbook::LogFile log;
  log.header.honeypot = hp;
  log.header.honeypot_name = "hp-" + std::to_string(hp);
  log.header.strategy = rng.chance(0.5) ? "no-content" : "random-content";
  log.header.server_ip = static_cast<std::uint32_t>(rng());
  std::vector<std::uint16_t> refs{0};
  for (int n = 0; n < 3; ++n) {
    refs.push_back(log.intern("client-" + std::to_string(rng.below(5))));
  }
  const auto records = rng.below(200);
  double t = 0;
  for (std::uint64_t i = 0; i < records; ++i) {
    logbook::LogRecord r;
    t += rng.exponential(60);
    r.timestamp = t;
    r.honeypot = hp;
    r.peer = rng.below(50);  // small id space forces cross-log collisions
    r.user = rng();
    r.type = static_cast<logbook::QueryType>(rng.below(3));
    r.peer_port = static_cast<std::uint16_t>(rng());
    r.name_ref = refs[rng.below(refs.size())];
    r.client_version = static_cast<std::uint32_t>(rng.below(100));
    r.flags = static_cast<std::uint8_t>(rng.below(4));
    if (r.has_file()) {
      r.file = FileId::from_words(rng.below(20), 1);
    } else {
      r.file = FileId{};
    }
    log.records.push_back(r);
  }
  return log;
}

TEST_P(SeededProperty, LogBinaryRoundTripIsIdentity) {
  Rng rng(GetParam() * 3 + 1);
  const auto log = random_log(rng, 3);
  std::stringstream buffer;
  logbook::write_binary(buffer, log);
  EXPECT_EQ(logbook::read_binary(buffer), log);
}

TEST_P(SeededProperty, MergePreservesEveryRecord) {
  Rng rng(GetParam() * 5 + 2);
  std::vector<logbook::LogFile> logs;
  std::size_t total = 0;
  const auto n_logs = 1 + rng.below(5);
  for (std::uint64_t i = 0; i < n_logs; ++i) {
    logs.push_back(random_log(rng, static_cast<std::uint16_t>(i)));
    total += logs.back().records.size();
  }
  const auto merged = logbook::merge_logs(logs);
  EXPECT_EQ(merged.records.size(), total);
  // Ordered by (timestamp, honeypot).
  for (std::size_t i = 1; i < merged.records.size(); ++i) {
    const auto& a = merged.records[i - 1];
    const auto& b = merged.records[i];
    EXPECT_TRUE(a.timestamp < b.timestamp ||
                (a.timestamp == b.timestamp && a.honeypot <= b.honeypot));
  }
  // Per-honeypot record counts conserved, and name strings resolve the same.
  for (std::uint64_t i = 0; i < n_logs; ++i) {
    std::size_t count = 0;
    for (const auto& r : merged.records) {
      if (r.honeypot == i) ++count;
    }
    EXPECT_EQ(count, logs[i].records.size());
  }
}

TEST_P(SeededProperty, RenumberingIsDenseAndCoherent) {
  Rng rng(GetParam() * 7 + 3);
  std::vector<logbook::LogFile> logs;
  const auto n_logs = 1 + rng.below(4);
  for (std::uint64_t i = 0; i < n_logs; ++i) {
    logs.push_back(random_log(rng, static_cast<std::uint16_t>(i)));
  }
  // Remember hash -> (first seen) to verify coherence afterwards.
  std::vector<std::vector<std::uint64_t>> original;
  for (const auto& log : logs) {
    original.emplace_back();
    for (const auto& r : log.records) {
      original.back().push_back(r.peer);
    }
  }
  anonymize::PeerMapping mapping;
  const auto distinct =
      anonymize::renumber_peers(std::span<logbook::LogFile>(logs), &mapping);

  // Dense: every assigned id < distinct; coherent: same hash -> same id.
  std::unordered_map<std::uint64_t, std::uint64_t> seen;
  for (std::size_t l = 0; l < logs.size(); ++l) {
    for (std::size_t i = 0; i < logs[l].records.size(); ++i) {
      const auto id = logs[l].records[i].peer;
      EXPECT_LT(id, distinct);
      auto [it, inserted] = seen.try_emplace(original[l][i], id);
      EXPECT_EQ(it->second, id) << "hash mapped to two different ids";
    }
  }
  EXPECT_EQ(seen.size(), distinct);
  EXPECT_EQ(mapping.size(), distinct);
}

// --- Subset curves: anchors and monotonicity on random inputs --------------

TEST_P(SeededProperty, SubsetCurveAnchorsHold) {
  Rng rng(GetParam() * 11 + 5);
  const auto n_sets = 2 + rng.below(12);
  const std::size_t universe = 64 + rng.below(500);
  std::vector<analysis::DynBitset> sets(n_sets, analysis::DynBitset(universe));
  analysis::DynBitset all(universe);
  for (auto& set : sets) {
    const auto members = rng.below(universe / 2);
    for (std::uint64_t m = 0; m < members; ++m) {
      const auto v = rng.below(universe);
      set.set(v);
      all.set(v);
    }
  }
  const auto curve = analysis::subset_union_curve(sets, 40, Rng(GetParam()));
  ASSERT_EQ(curve.size(), n_sets);
  // The full prefix is exactly the union of everything, in every sample.
  EXPECT_EQ(curve.min.back(), all.count());
  EXPECT_EQ(curve.max.back(), all.count());
  // min <= avg <= max and all monotone in n.
  for (std::size_t i = 0; i < curve.size(); ++i) {
    EXPECT_LE(static_cast<double>(curve.min[i]), curve.avg[i] + 1e-9);
    EXPECT_GE(static_cast<double>(curve.max[i]) + 1e-9, curve.avg[i]);
    if (i > 0) {
      EXPECT_GE(curve.avg[i], curve.avg[i - 1]);
    }
  }
}

// --- Distinct series: cumulative equals running sum of fresh ----------------

TEST_P(SeededProperty, DistinctSeriesInternallyConsistent) {
  Rng rng(GetParam() * 13 + 7);
  auto log = random_log(rng, 0);
  log.header.peer_kind = logbook::PeerIdKind::stage2_index;
  const std::size_t days = 5;
  const auto series =
      analysis::distinct_peers_by_day(log, std::nullopt, days);
  std::uint64_t acc = 0;
  for (std::size_t d = 0; d < days; ++d) {
    acc += series.fresh[d];
    EXPECT_EQ(series.cumulative[d], acc);
  }
  EXPECT_LE(series.total, 50u);  // bounded by the record id space
  EXPECT_EQ(series.cumulative.back(), series.total);
}

}  // namespace
}  // namespace edhp
