// Reporting helpers: formatting, table rendering, gnuplot export, strides.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "analysis/report.hpp"

namespace edhp::analysis {
namespace {

TEST(WithCommas, GroupsThousands) {
  EXPECT_EQ(with_commas(0), "0");
  EXPECT_EQ(with_commas(999), "999");
  EXPECT_EQ(with_commas(1000), "1,000");
  EXPECT_EQ(with_commas(1234567), "1,234,567");
  EXPECT_EQ(with_commas(110049), "110,049");
}

TEST(IndexAxis, OneAndZeroBased) {
  EXPECT_EQ(index_axis(3), (std::vector<double>{1, 2, 3}));
  EXPECT_EQ(index_axis(3, true), (std::vector<double>{0, 1, 2}));
  EXPECT_TRUE(index_axis(0).empty());
}

TEST(StrideRows, ShortInputKeptWhole) {
  EXPECT_EQ(stride_rows(5, 10).size(), 5u);
  EXPECT_EQ(stride_rows(0, 10).size(), 0u);
}

TEST(StrideRows, LongInputDownsampledKeepingEnds) {
  const auto rows = stride_rows(168, 20);
  ASSERT_LE(rows.size(), 20u);
  EXPECT_EQ(rows.front(), 0u);
  EXPECT_EQ(rows.back(), 167u);
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_GT(rows[i], rows[i - 1]);
  }
}

TEST(PrintTable, RendersTitleHeaderAndRows) {
  std::ostringstream out;
  std::vector<Series> series{{"alpha", {10, 20}}, {"beta", {1.5, 2.5}}};
  const std::vector<double> x{1, 2};
  print_table(out, "demo", "day", x, series);
  const auto text = out.str();
  EXPECT_NE(text.find("== demo =="), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("beta"), std::string::npos);
  EXPECT_NE(text.find("20"), std::string::npos);
  EXPECT_NE(text.find("2.5"), std::string::npos);
}

TEST(PrintTable, ShortSeriesPadsWithDash) {
  std::ostringstream out;
  std::vector<Series> series{{"a", {10}}};
  const std::vector<double> x{1, 2};
  print_table(out, "demo", "n", x, series);
  EXPECT_NE(out.str().find('-'), std::string::npos);
}

TEST(PrintKv, AlignsKeys) {
  std::ostringstream out;
  std::vector<std::pair<std::string, std::string>> rows{
      {"k", "1"}, {"longer key", "2"}};
  print_kv(out, "block", rows);
  const auto text = out.str();
  EXPECT_NE(text.find("== block =="), std::string::npos);
  EXPECT_NE(text.find("longer key"), std::string::npos);
}

TEST(WriteGnuplot, ProducesParseableColumns) {
  const std::string path = ::testing::TempDir() + "/edhp_gnuplot_test.dat";
  std::vector<Series> series{{"y1", {5, 6, 7}}, {"y2", {1, 2, 3}}};
  const std::vector<double> x{10, 20, 30};
  write_gnuplot(path, x, series);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "# x y1 y2");
  double a, b, c;
  in >> a >> b >> c;
  EXPECT_DOUBLE_EQ(a, 10);
  EXPECT_DOUBLE_EQ(b, 5);
  EXPECT_DOUBLE_EQ(c, 1);
  in.close();
  std::remove(path.c_str());
}

TEST(WriteGnuplot, UnwritablePathThrows) {
  EXPECT_THROW(write_gnuplot("/nonexistent-dir/x.dat", {}, {}),
               std::runtime_error);
}

}  // namespace
}  // namespace edhp::analysis
