// Control-plane crash tolerance: journal replay rebuilds the manager's
// state, orphaned honeypots are re-adopted with their spools intact, and
// the watchdog keeps working through (and racing) recovery.

#include <gtest/gtest.h>

#include <memory>

#include "audit/audit.hpp"
#include "honeypot/manager.hpp"
#include "proto/messages.hpp"
#include "server/server.hpp"

namespace edhp::honeypot {
namespace {

/// UDP surveys and spool delivery must be deterministic here, so the link
/// model drops nothing.
net::LinkModel lossless() {
  net::LinkModel m;
  m.datagram_loss = 0.0;
  return m;
}

class RecoveryTest : public ::testing::Test {
 protected:
  void settle(double span = 180.0) { s.run_until(s.now() + span); }

  /// Connect `n` fresh peers to the honeypot; each sends one HELLO, which
  /// appends one record to the honeypot's log.
  void feed_hellos(Honeypot& hp, int n) {
    for (int i = 0; i < n; ++i) {
      const auto peer_node = net.add_node(true);
      const auto user = static_cast<std::uint64_t>(++next_user_);
      net.connect(peer_node, hp.node(),
                  [this, peer_node, user](net::EndpointPtr ep) {
                    if (!ep) return;
                    proto::Hello hello;
                    hello.user = UserId::from_words(user, 77);
                    hello.client_id = net.info(peer_node).ip.value();
                    hello.port = 4662;
                    ep->send(proto::encode(proto::AnyMessage{hello}));
                    keep_.push_back(std::move(ep));
                  });
    }
    settle();
  }

  ManagerConfig durable_config() {
    ManagerConfig mc;
    mc.journal = journal;
    mc.spool_store = store;
    mc.spool.enabled = true;
    mc.spool.period = minutes(5);
    return mc;
  }

  std::size_t launch_one(Manager& m, const ServerRef& where) {
    HoneypotConfig c;
    c.name = "hp-" + std::to_string(m.fleet_size());
    c.strategy = ContentStrategy::no_content;
    return m.launch(std::move(c), net.add_node(true), where);
  }

  sim::Simulation s{97};
  net::Network net{s, lossless()};
  net::NodeId server_node = net.add_node(true);
  server::Server server{net, server_node, {}};
  ServerRef ref{server_node, "srv", 4661};
  net::NodeId backup_node = net.add_node(true);
  server::Server backup{net, backup_node, {}};
  ServerRef backup_ref{backup_node, "backup", 4661};
  std::shared_ptr<logbook::Journal> journal =
      std::make_shared<logbook::Journal>();
  std::shared_ptr<logbook::SpoolStore> store =
      std::make_shared<logbook::SpoolStore>();
  std::vector<net::EndpointPtr> keep_;
  int next_user_ = 0;

  void SetUp() override {
    server.start();
    backup.start();
  }
};

TEST_F(RecoveryTest, RecoverWithoutJournalThrows) {
  Manager manager(net, {});
  EXPECT_THROW(manager.recover(), std::logic_error);
}

TEST_F(RecoveryTest, InPlaceCrashRecoverRestoresFleetAndAssignments) {
  Manager manager(net, durable_config());
  launch_one(manager, ref);
  launch_one(manager, ref);
  settle();
  manager.reassign(1, backup_ref);
  AdvertisedFile f{FileId::from_words(11, 12), "bait.avi", 1000};
  manager.advertise(0, {f});
  settle();
  manager.start();

  const auto orphaned = manager.crash();
  EXPECT_EQ(orphaned, 2u);
  EXPECT_EQ(manager.fleet_size(), 0u);

  s.run_until(s.now() + hours(1));
  manager.recover(s.now() - hours(1));

  ASSERT_EQ(manager.fleet_size(), 2u);
  EXPECT_EQ(manager.server_of(0).name, "srv");
  EXPECT_EQ(manager.server_of(1).name, "backup");
  ASSERT_EQ(manager.ordered_files(0).size(), 1u);
  EXPECT_EQ(manager.ordered_files(0)[0].id, f.id);
  const auto stats = manager.recovery_stats();
  EXPECT_EQ(stats.manager_recoveries, 1u);
  EXPECT_EQ(stats.orphans_readopted, 2u);
  EXPECT_NEAR(stats.manager_downtime, hours(1), 1.0);
  EXPECT_GT(stats.journal_replayed, 0u);
}

TEST_F(RecoveryTest, ColdStartRecoveryAdoptsOrphansFromDeadManager) {
  auto first = std::make_unique<Manager>(net, durable_config());
  launch_one(*first, ref);
  launch_one(*first, backup_ref);
  first->start();
  settle();

  first->crash();
  auto orphans = first->take_orphans();
  ASSERT_EQ(orphans.size(), 2u);
  first.reset();  // the dead process is gone for good

  auto second =
      Manager::recover(net, durable_config(), std::move(orphans), s.now());
  ASSERT_EQ(second->fleet_size(), 2u);
  EXPECT_EQ(second->server_of(1).name, "backup");
  // Polling was running at crash time, so the new incarnation resumed it:
  // a honeypot crash after recovery still gets relaunched.
  second->honeypot(0).crash();
  s.run_until(s.now() + minutes(30));
  EXPECT_EQ(second->honeypot(0).status(), Status::connected);
  EXPECT_GE(second->relaunches(), 1u);
}

TEST_F(RecoveryTest, JournalProvenChunksAreAckedWithoutResend) {
  Manager manager(net, durable_config());
  const auto index = launch_one(manager, ref);
  Honeypot* hp = &manager.honeypot(index);  // handle outlives the crash
  settle();
  ASSERT_EQ(hp->status(), Status::connected);

  feed_hellos(*hp, 3);
  hp->spool_now();
  settle(60.0);  // chunk delivered, acked, and journaled as stored
  const auto stored_before = store->chunks_accepted();
  ASSERT_GT(stored_before, 0u);
  ASSERT_EQ(hp->pending_spool(), 0u);

  manager.crash();
  // While the manager is down the honeypot keeps logging and spooling
  // locally; the cut chunks pile up with nowhere to go.
  feed_hellos(*hp, 2);
  hp->spool_now();
  ASSERT_GT(hp->pending_spool(), 0u);

  s.run_until(s.now() + hours(1));
  manager.recover(s.now() - hours(1));
  settle(hours(1));

  const auto stats = manager.recovery_stats();
  // Chunks the journal proved stored were acked directly at adoption; the
  // re-sent remainder deduped against the store instead of double-storing.
  EXPECT_EQ(store->chunks_accepted() + store->chunks_duplicate(),
            stats.chunks_accepted + stats.chunks_duplicate);
  EXPECT_EQ(stats.chunks_quarantined, 0u);
  // Nothing was lost across the outage: everything the honeypot generated
  // is either in the store or still locally spooled.
  manager.stop();
  const auto durable = manager.merged_anonymized_durable();
  const auto live = manager.merged_anonymized();
  EXPECT_EQ(durable.records, live.records);
  // The conservation ledger over the same run: every record the honeypot
  // ever stamped landed in the durable dataset — no shed, no tail loss, no
  // quarantine residue, so `born == merged` exactly.
  audit::AuditStats ledger;
  ledger.records_born = hp->records_born();
  ledger.records_merged = durable.records.size();
  ledger.records_excluded = manager.records_excluded_last_merge();
  ledger.records_quarantined = manager.records_quarantined_last_merge();
  ledger.records_lost_tail = hp->records_lost_tail();
  EXPECT_EQ(ledger.records_born, 5u);
  EXPECT_TRUE(ledger.balanced()) << ledger.breakdown();
}

TEST_F(RecoveryTest, CountersSurviveAcrossCrash) {
  ManagerConfig mc = durable_config();
  mc.escalate_after = 1;
  mc.status_poll = minutes(10);
  Manager manager(net, mc);
  manager.set_backup_servers({backup_ref});
  launch_one(manager, ref);
  settle();
  manager.start();

  // Kill the primary server so the watchdog escalates to the backup.
  server.stop();
  manager.honeypot(0).crash();
  s.run_until(s.now() + hours(2));
  const auto before = manager.recovery_stats();
  ASSERT_GE(before.escalations, 1u);
  const auto relaunches_before = manager.relaunches();

  manager.crash();
  manager.recover(s.now());

  const auto after = manager.recovery_stats();
  EXPECT_EQ(after.escalations, before.escalations);
  EXPECT_EQ(after.heartbeat_escalations, before.heartbeat_escalations);
  EXPECT_EQ(after.re_advertise_repairs, before.re_advertise_repairs);
  EXPECT_EQ(manager.relaunches(), relaunches_before);
  EXPECT_EQ(manager.server_of(0).name, "backup");
}

TEST_F(RecoveryTest, WatchdogKeepsWorkingAfterRecovery) {
  Manager manager(net, durable_config());
  launch_one(manager, ref);
  settle();
  manager.start();

  manager.crash();
  s.run_until(s.now() + minutes(30));
  manager.recover(s.now() - minutes(30));

  manager.honeypot(0).crash();
  s.run_until(s.now() + minutes(30));
  EXPECT_EQ(manager.honeypot(0).status(), Status::connected);
  EXPECT_GE(manager.relaunches(), 1u);
}

// The reassign-vs-recovery races of the satellite checklist.

TEST_F(RecoveryTest, ReassignDuringRetryBackoffSurvivesCrashRecover) {
  ManagerConfig mc = durable_config();
  mc.retry.enabled = true;
  mc.retry.base = minutes(5);
  mc.retry.cap = minutes(30);
  mc.retry.max_retries = 6;
  Manager manager(net, mc);
  launch_one(manager, ref);
  settle();
  manager.start();

  // Sever the session so the honeypot enters its retry backoff...
  server.stop();
  settle(30.0);
  // ...reassign mid-backoff, then crash before the backoff elapses.
  manager.reassign(0, backup_ref);
  manager.crash();
  s.run_until(s.now() + minutes(10));
  manager.recover(s.now() - minutes(10));
  // No hang: the recovered slot remembers the reassignment and the watchdog
  // (or the honeypot's own retry) lands it on the backup server.
  s.run_until(s.now() + hours(2));
  EXPECT_EQ(manager.server_of(0).name, "backup");
  EXPECT_EQ(manager.honeypot(0).status(), Status::connected);
  EXPECT_EQ(backup.session_count(), 1u);
}

TEST_F(RecoveryTest, CrashWithOutstandingSurveyDeliversWithoutUseAfterFree) {
  auto first = std::make_unique<Manager>(net, durable_config());
  launch_one(*first, ref);
  settle();

  // Start a survey, then destroy the manager before the probe timeout.
  bool delivered = false;
  std::size_t answers = 0;
  first->survey_servers({ref, backup_ref}, net.add_node(true), 10.0,
                        [&](auto entries) {
                          delivered = true;
                          answers = entries.size();
                        });
  first->crash();
  auto orphans = first->take_orphans();
  first.reset();

  // The survey's callbacks captured the network, not the dead manager: the
  // timeout still fires and delivers every answer.
  settle(30.0);
  EXPECT_TRUE(delivered);
  EXPECT_EQ(answers, 2u);

  auto second =
      Manager::recover(net, durable_config(), std::move(orphans), s.now());
  EXPECT_EQ(second->fleet_size(), 1u);
  // Reassigning right after recovery neither hangs nor double-advertises.
  AdvertisedFile f{FileId::from_words(5, 6), "bait.avi", 10};
  second->advertise(0, {f});
  settle();
  second->reassign(0, backup_ref);
  settle(hours(1));
  EXPECT_EQ(second->honeypot(0).status(), Status::connected);
  EXPECT_EQ(second->honeypot(0).advertised().size(), 1u);
  EXPECT_EQ(backup.index().sources(f.id, 10).size(), 1u);
}

// A checkpoint damaged on disk must never brick a cold start: scan()
// already demotes a cut-short final frame to a torn tail and a bit-rotted
// one to quarantine, so recovery silently falls back to replaying the full
// journal. The sweep proves it for EVERY strict prefix inside the frame.
TEST_F(RecoveryTest, TruncatedCheckpointFallsBackToFullReplay) {
  Manager manager(net, durable_config());
  launch_one(manager, ref);
  launch_one(manager, ref);
  settle();
  manager.crash();
  manager.recover(s.now());  // appends `recovered` + the final checkpoint

  const auto bytes = journal->bytes();  // copy: sweep journals diverge
  const auto scan = journal->scan();
  ASSERT_FALSE(scan.entries.empty());
  const auto& last = scan.entries.back();
  ASSERT_EQ(last.type,
            static_cast<std::uint8_t>(logbook::JournalEntryType::checkpoint));

  for (std::size_t cut = last.offset + 1; cut < bytes.size(); ++cut) {
    ManagerConfig mc = durable_config();
    mc.journal = std::make_shared<logbook::Journal>(logbook::Journal::from_bytes(
        std::vector<std::uint8_t>(bytes.begin(),
                                  bytes.begin() + static_cast<long>(cut))));
    const auto prefix_scan = mc.journal->scan();
    EXPECT_TRUE(prefix_scan.torn_tail) << "cut at " << cut;
    std::unique_ptr<Manager> cold;
    ASSERT_NO_THROW(cold = Manager::recover(net, mc, {}, s.now()))
        << "cut at " << cut;
    // Full-journal fallback: every intact pre-checkpoint entry was applied
    // (launch, launch, recovered), not the snapshot that was cut short.
    EXPECT_EQ(cold->recovery_stats().journal_replayed,
              prefix_scan.entries.size())
        << "cut at " << cut;
    EXPECT_GE(cold->recovery_stats().journal_replayed, 3u);
  }
}

TEST_F(RecoveryTest, BitRottedCheckpointIsQuarantinedNotFatal) {
  Manager manager(net, durable_config());
  launch_one(manager, ref);
  settle();
  manager.crash();
  manager.recover(s.now());

  auto damaged = journal->bytes();
  const auto scan = journal->scan();
  const auto& last = scan.entries.back();
  ASSERT_EQ(last.type,
            static_cast<std::uint8_t>(logbook::JournalEntryType::checkpoint));
  // Flip one payload byte: the frame stays complete but fails its checksum.
  damaged[damaged.size() - last.payload.size() / 2 - 1] ^= 0x40;

  ManagerConfig mc = durable_config();
  mc.journal = std::make_shared<logbook::Journal>(
      logbook::Journal::from_bytes(std::move(damaged)));
  ASSERT_EQ(mc.journal->scan().quarantined.size(), 1u);
  std::unique_ptr<Manager> cold;
  ASSERT_NO_THROW(cold = Manager::recover(net, mc, {}, s.now()));
  EXPECT_GE(cold->recovery_stats().journal_replayed, 2u);
}

TEST_F(RecoveryTest, CheckpointCompactsReplay) {
  Manager manager(net, durable_config());
  launch_one(manager, ref);
  launch_one(manager, ref);
  settle();

  manager.crash();
  manager.recover(s.now());  // recover() checkpoints automatically
  const auto first_replay = manager.recovery_stats().journal_replayed;

  manager.crash();
  manager.recover(s.now());
  // The second replay starts from the checkpoint: it applies the snapshot
  // plus the handful of entries recovery itself appended, not the full
  // launch history.
  const auto second_replay = manager.recovery_stats().journal_replayed;
  EXPECT_LE(second_replay, first_replay + 2);
  ASSERT_EQ(manager.fleet_size(), 2u);
  EXPECT_EQ(manager.recovery_stats().manager_recoveries, 2u);
}

// --- Clock-observation durability ----------------------------------------

TEST_F(RecoveryTest, ClockObservationsJournaledOnlyWhenTracked) {
  // Off by default: spool cuts and polls happen, but no type-18 frames and
  // no observation state — the clock-off journal stays bit-identical.
  {
    Manager manager(net, durable_config());
    launch_one(manager, ref);
    manager.start();
    feed_hellos(manager.honeypot(0), 3);
    s.run_until(s.now() + minutes(30));
    EXPECT_TRUE(manager.clock_observations().empty());
    for (const auto& e : journal->scan().entries) {
      EXPECT_NE(e.type, static_cast<std::uint8_t>(
                            logbook::JournalEntryType::clock_observation));
    }
    manager.stop();
  }
  // On: every stored fresh chunk and status poll yields a sighting, and
  // each one is journaled as it happens.
  journal = std::make_shared<logbook::Journal>();
  store = std::make_shared<logbook::SpoolStore>();
  auto mc = durable_config();
  mc.track_clocks = true;
  Manager manager(net, mc);
  launch_one(manager, ref);
  manager.start();
  feed_hellos(manager.honeypot(0), 3);
  s.run_until(s.now() + minutes(30));
  ASSERT_FALSE(manager.clock_observations().empty());
  std::size_t frames = 0;
  for (const auto& e : journal->scan().entries) {
    if (e.type == static_cast<std::uint8_t>(
                      logbook::JournalEntryType::clock_observation)) {
      ++frames;
    }
  }
  EXPECT_EQ(frames, manager.clock_observations().size());
  // Undisturbed clocks read true time: every sighting is exact.
  for (const auto& o : manager.clock_observations()) {
    EXPECT_EQ(o.local_time, o.true_time);
  }
}

TEST_F(RecoveryTest, ClockObservationsSurviveCrashAndReplay) {
  auto mc = durable_config();
  mc.track_clocks = true;
  Manager manager(net, mc);
  launch_one(manager, ref);
  manager.start();
  feed_hellos(manager.honeypot(0), 5);
  s.run_until(s.now() + minutes(30));
  const auto before = manager.clock_observations();
  ASSERT_FALSE(before.empty());

  manager.crash();
  EXPECT_TRUE(manager.clock_observations().empty());  // dead process state
  manager.recover(s.now());
  const auto& after = manager.clock_observations();
  ASSERT_GE(after.size(), before.size());
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(after[i], before[i]) << "observation " << i;
  }

  // Second crash replays from the checkpoint recovery wrote — the clock
  // section must round-trip through the snapshot path too.
  const auto mid = manager.clock_observations();
  manager.crash();
  manager.recover(s.now());
  ASSERT_GE(manager.clock_observations().size(), mid.size());
  for (std::size_t i = 0; i < mid.size(); ++i) {
    EXPECT_EQ(manager.clock_observations()[i], mid[i]);
  }
}

// A self-probe is in flight (verdict or timeout pending) when the manager
// dies. The probe sink must not reach into the dead incarnation — crash()
// severs it — and the verdict stream must resume once recovery rewires the
// fleet. Cold-start makes the race maximal: the first Manager object is
// destroyed outright while the honeypot keeps probing as an orphan.
TEST_F(RecoveryTest, RecoveryRacesPendingSelfProbe) {
  const auto probed_config = [this] {
    HoneypotConfig c;
    c.name = "hp-probe-race";
    c.strategy = ContentStrategy::no_content;
    c.integrity_defense = true;
    c.self_probe_period = minutes(5);
    c.self_probe_timeout = minutes(2);
    return c;
  };
  auto first = std::make_unique<Manager>(net, durable_config());
  const auto idx =
      first->launch(probed_config(), net.add_node(true), ref);
  first->start();
  settle();
  first->advertise(idx, {AdvertisedFile{FileId::from_words(0xC, 0xC),
                                        "probe-bait.avi", 1000}});
  settle(minutes(21));
  const auto verdicts_at = [this] {
    std::uint64_t n = 0;
    for (const auto& e : journal->scan().entries) {
      if (e.type == static_cast<std::uint8_t>(
                        logbook::JournalEntryType::probe_verdict)) {
        ++n;
      }
    }
    return n;
  };
  const auto before = verdicts_at();
  ASSERT_GT(before, 0u);

  // Land the crash inside a probe window: the next probe fires within
  // 5 minutes and its verdict/timeout finds the manager gone.
  settle(minutes(4.5));
  first->crash();
  auto orphans = first->take_orphans();
  ASSERT_EQ(orphans.size(), 1u);
  first.reset();  // any probe callback into the dead manager is now a UAF

  // The orphan keeps probing against the live server while unmanaged; its
  // verdicts go nowhere, and must not crash the process.
  settle(minutes(12));

  auto second =
      Manager::recover(net, durable_config(), std::move(orphans), s.now());
  ASSERT_EQ(second->fleet_size(), 1u);
  settle(minutes(21));

  // The verdict stream resumed under the new incarnation.
  EXPECT_GT(verdicts_at(), before);
  EXPECT_GT(second->integrity_stats().probes_sent, 0u);
  EXPECT_EQ(second->integrity_stats().probes_missed, 0u);
  EXPECT_EQ(second->server_health("srv"), 0.0);
}

}  // namespace
}  // namespace edhp::honeypot
