// Adversarial-traffic subsystem: abuse plan generation, the wire-corruption
// hook, token-bucket admission control on the server, and the scenario-level
// guarantee that a defended fleet keeps logging through a standing attack.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "fault/abuse.hpp"
#include "net/admission.hpp"
#include "proto/messages.hpp"
#include "scenario/scenario.hpp"
#include "server/server.hpp"

namespace edhp {
namespace {

using fault::AbuseConfig;
using fault::AbuseEvent;
using fault::AbuseKind;
using fault::AbusePlan;
using scenario::DistributedConfig;
using scenario::run_distributed;

// --- AbusePlan --------------------------------------------------------------

TEST(AbusePlan, DeterministicInConfigAndSeed) {
  AbuseConfig config;
  config.enabled = true;
  const auto a = AbusePlan::generate(config, 8, 1, days(8), Rng(7));
  const auto b = AbusePlan::generate(config, 8, 1, days(8), Rng(7));
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a.events(), b.events());

  const auto c = AbusePlan::generate(config, 8, 1, days(8), Rng(8));
  EXPECT_NE(a.events(), c.events());
}

TEST(AbusePlan, DisabledConfigYieldsEmptyPlan) {
  AbuseConfig config;  // enabled = false
  EXPECT_TRUE(AbusePlan::generate(config, 24, 1, days(32), Rng(1)).empty());
}

TEST(AbusePlan, EventsSortedByTimeWithinHorizon) {
  AbuseConfig config;
  config.enabled = true;
  const auto plan = AbusePlan::generate(config, 6, 2, days(16), Rng(5));
  ASSERT_GT(plan.size(), 20u);
  for (std::size_t i = 1; i < plan.size(); ++i) {
    EXPECT_LE(plan.events()[i - 1].at, plan.events()[i].at);
  }
  for (const auto& e : plan.events()) {
    EXPECT_GE(e.at, 0.0);
    EXPECT_LT(e.at, days(16));
    EXPECT_LT(e.target, 8u);
  }
}

TEST(AbusePlan, AddingOneClassDoesNotShiftAnother) {
  AbuseConfig config;
  config.enabled = true;
  config.flood_mtba = 0;  // corrupt / slowloris / oversize only
  const auto base = AbusePlan::generate(config, 6, 1, days(16), Rng(11));
  config.flood_mtba = hours(8);
  const auto more = AbusePlan::generate(config, 6, 1, days(16), Rng(11));

  auto corrupt_of = [](const AbusePlan& p) {
    std::vector<AbuseEvent> out;
    for (const auto& e : p.events()) {
      if (e.kind == AbuseKind::corrupt_episode) out.push_back(e);
    }
    return out;
  };
  ASSERT_FALSE(corrupt_of(base).empty());
  EXPECT_EQ(corrupt_of(base), corrupt_of(more));
  EXPECT_GT(more.size(), base.size());
}

TEST(AbusePlan, IntensityScalesArrivalCount) {
  AbuseConfig config;
  config.enabled = true;
  const auto calm = AbusePlan::generate(config, 8, 1, days(16), Rng(3));
  config.intensity = 4.0;
  const auto storm = AbusePlan::generate(config, 8, 1, days(16), Rng(3));
  EXPECT_GT(storm.size(), 2 * calm.size());
}

// --- TokenBucket ------------------------------------------------------------

TEST(TokenBucket, UnlimitedWhenRateNonPositive) {
  net::TokenBucket bucket(0.0, 5.0, 0.0);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(bucket.try_take(0.0));
  }
}

TEST(TokenBucket, BurstDepletesThenLazyRefill) {
  net::TokenBucket bucket(1.0, 2.0, 0.0);  // 1 token/s, burst 2
  EXPECT_TRUE(bucket.try_take(0.0));
  EXPECT_TRUE(bucket.try_take(0.0));
  EXPECT_FALSE(bucket.try_take(0.0));
  EXPECT_FALSE(bucket.try_take(0.5));  // only half a token back
  EXPECT_TRUE(bucket.try_take(1.6));
  EXPECT_FALSE(bucket.try_take(1.6));
}

TEST(TokenBucket, RefillNeverExceedsBurst) {
  net::TokenBucket bucket(10.0, 3.0, 0.0);
  EXPECT_TRUE(bucket.try_take(100.0));  // long idle: capped at burst
  EXPECT_TRUE(bucket.try_take(100.0));
  EXPECT_TRUE(bucket.try_take(100.0));
  EXPECT_FALSE(bucket.try_take(100.0));
}

// Regression: the lazy refill accumulates elapsed x rate in u64 microtokens;
// a campaign-length idle gap (32 days at 8 tokens/s ~ 2.2e19 utok) overflows
// u64 and used to WRAP, leaving the bucket empty and every later peer
// rate-limited forever. The refill must saturate at burst instead.
TEST(TokenBucket, CampaignLengthIdleSaturatesInsteadOfWrapping) {
  net::TokenBucket bucket(8.0, 16.0, 0.0);
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(bucket.try_take(0.0)) << "burst take " << i;
  }
  EXPECT_FALSE(bucket.try_take(0.0));

  const double after_idle = 32.0 * 86400.0;  // 32 days, the paper's campaign
  for (int i = 0; i < 16; ++i) {
    EXPECT_TRUE(bucket.try_take(after_idle)) << "post-idle take " << i;
  }
  EXPECT_FALSE(bucket.try_take(after_idle));
  // And the bucket keeps refilling normally afterwards (1/8 s = 1 token).
  EXPECT_TRUE(bucket.try_take(after_idle + 0.125));
  EXPECT_FALSE(bucket.try_take(after_idle + 0.125));
}

TEST(DefenseStats, AccumulateSumsEveryField) {
  net::DefenseStats a;
  a.accepted = 1;
  a.shed = 2;
  a.rate_limited = 3;
  a.reaped = 4;
  a.malformed = 5;
  a.queue_dropped = 6;
  net::DefenseStats b = a;
  b += a;
  EXPECT_EQ(b.accepted, 2u);
  EXPECT_EQ(b.shed, 4u);
  EXPECT_EQ(b.rate_limited, 6u);
  EXPECT_EQ(b.reaped, 8u);
  EXPECT_EQ(b.malformed, 10u);
  EXPECT_EQ(b.queue_dropped, 12u);
}

// --- Network corruption hook ------------------------------------------------

TEST(Corruption, FlipMutatesPayloadAndCounts) {
  sim::Simulation simulation(1);
  net::Network network(simulation);
  const auto a = network.add_node(true);
  const auto b = network.add_node(true);

  std::vector<net::Bytes> received;
  net::EndpointPtr receiver;
  network.listen(b, [&](net::EndpointPtr ep) {
    receiver = std::move(ep);
    receiver->on_message(
        [&](net::Bytes bytes) { received.push_back(std::move(bytes)); });
  });

  net::Network::CorruptionSpec spec;
  spec.flip = 1.0;
  spec.seed = 42;
  network.set_corruption(a, spec);

  const net::Bytes original{1, 2, 3, 4, 5, 6, 7, 8};
  net::EndpointPtr sender;
  network.connect(a, b, [&sender, &original](net::EndpointPtr ep) {
    ASSERT_TRUE(ep);
    sender = std::move(ep);
    sender->send(original);
  });
  simulation.run_until(10.0);

  ASSERT_EQ(received.size(), 1u);
  EXPECT_NE(received[0], original);  // exactly one bit differs
  EXPECT_EQ(received[0].size(), original.size());
  EXPECT_EQ(network.counters(a).messages_corrupted, 1u);
  EXPECT_EQ(network.totals().messages_corrupted, 1u);

  // After clearing, payloads pass through untouched.
  network.clear_corruption(a);
  sender->send(original);
  simulation.run_until(20.0);
  ASSERT_EQ(received.size(), 2u);
  EXPECT_EQ(received[1], original);
  EXPECT_EQ(network.totals().messages_corrupted, 1u);
}

TEST(Corruption, NoteMalformedCountsPerNodeAndTotal) {
  sim::Simulation simulation(1);
  net::Network network(simulation);
  const auto n = network.add_node(true);
  network.note_malformed(n);
  network.note_malformed(n);
  EXPECT_EQ(network.counters(n).malformed_packets, 2u);
  EXPECT_EQ(network.totals().malformed_packets, 2u);
}

// --- Server admission control ----------------------------------------------

struct ServerRig {
  sim::Simulation simulation{1};
  net::Network network{simulation};
  net::NodeId server_node;
  std::unique_ptr<server::Server> server;

  explicit ServerRig(const net::DefenseConfig& defense) {
    server_node = network.add_node(true);
    server::ServerConfig sc;
    sc.defense = defense;
    server = std::make_unique<server::Server>(network, server_node, sc);
    server->start();
  }
};

TEST(ServerDefense, SessionCapShedsNewestConnections) {
  net::DefenseConfig defense;
  defense.enabled = true;
  defense.max_sessions = 4;
  defense.connect_rate = 0;  // isolate the cap from the rate limiter
  defense.handshake_timeout = 0;
  ServerRig rig(defense);

  const auto attacker = rig.network.add_node(false);
  std::vector<net::EndpointPtr> conns;
  for (int i = 0; i < 10; ++i) {
    rig.network.connect(attacker, rig.server_node,
                        [&conns](net::EndpointPtr ep) {
                          if (ep) conns.push_back(std::move(ep));
                        });
  }
  rig.simulation.run_until(10.0);

  EXPECT_EQ(rig.server->defense_stats().accepted, 4u);
  EXPECT_EQ(rig.server->defense_stats().shed, 6u);
  EXPECT_EQ(rig.server->session_count(), 4u);
}

TEST(ServerDefense, ConnectRateLimiterBitesOneHotSource) {
  net::DefenseConfig defense;
  defense.enabled = true;
  defense.max_sessions = 1000;
  defense.connect_rate = 0.01;
  defense.connect_burst = 2.0;
  defense.handshake_timeout = 0;
  ServerRig rig(defense);

  const auto flooder = rig.network.add_node(false);
  const auto honest = rig.network.add_node(false);
  for (int i = 0; i < 10; ++i) {
    rig.network.connect(flooder, rig.server_node, [](net::EndpointPtr) {});
  }
  // A different source has its own bucket and sails through.
  rig.network.connect(honest, rig.server_node, [](net::EndpointPtr) {});
  rig.simulation.run_until(10.0);

  EXPECT_EQ(rig.server->defense_stats().accepted, 3u);  // 2 flood + 1 honest
  EXPECT_EQ(rig.server->defense_stats().rate_limited, 8u);
  EXPECT_EQ(rig.server->session_count(), 3u);
}

TEST(ServerDefense, HandshakeTimeoutReapsSilentSessions) {
  net::DefenseConfig defense;
  defense.enabled = true;
  defense.handshake_timeout = 30.0;
  ServerRig rig(defense);

  const auto attacker = rig.network.add_node(false);
  for (int i = 0; i < 3; ++i) {
    rig.network.connect(attacker, rig.server_node, [](net::EndpointPtr) {});
  }
  rig.simulation.run_until(5.0);
  EXPECT_EQ(rig.server->session_count(), 3u);

  rig.simulation.run_until(100.0);
  EXPECT_EQ(rig.server->defense_stats().reaped, 3u);
  EXPECT_EQ(rig.server->session_count(), 0u);
}

TEST(ServerDefense, IdleTimeoutReapsAfterLogin) {
  net::DefenseConfig defense;
  defense.enabled = true;
  defense.handshake_timeout = 30.0;
  defense.idle_timeout = 600.0;
  ServerRig rig(defense);

  const auto client = rig.network.add_node(true);
  net::EndpointPtr ep;
  rig.network.connect(client, rig.server_node, [&ep](net::EndpointPtr e) {
    ASSERT_TRUE(e);
    ep = std::move(e);
    proto::LoginRequest login;
    login.user = UserId::from_words(1, 2);
    login.port = 4662;
    ep->send(proto::encode(proto::AnyMessage{login}));
  });
  rig.simulation.run_until(5.0);
  EXPECT_EQ(rig.server->session_count(), 1u);

  // The login re-armed the reap to the idle timeout; it outlives the
  // handshake deadline but not ten minutes of silence.
  rig.simulation.run_until(100.0);
  EXPECT_EQ(rig.server->session_count(), 1u);
  rig.simulation.run_until(1000.0);
  EXPECT_EQ(rig.server->defense_stats().reaped, 1u);
  EXPECT_EQ(rig.server->session_count(), 0u);
}

TEST(ServerDefense, MalformedPacketsCountedEvenWithoutDefense) {
  ServerRig rig(net::DefenseConfig{});  // defense disabled
  const auto client = rig.network.add_node(true);
  net::EndpointPtr ep;
  rig.network.connect(client, rig.server_node, [&ep](net::EndpointPtr e) {
    ASSERT_TRUE(e);
    ep = std::move(e);
    ep->send(net::Bytes{0xFF, 0x00, 0x01});  // bad protocol marker
  });
  rig.simulation.run_until(10.0);

  EXPECT_EQ(rig.server->defense_stats().malformed, 1u);
  EXPECT_EQ(rig.network.counters(rig.server_node).malformed_packets, 1u);
  EXPECT_EQ(rig.server->defense_stats().accepted, 0u);  // dormant otherwise
}

// --- Scenario integration ---------------------------------------------------

DistributedConfig mini_config() {
  DistributedConfig config;
  config.scale = 0.01;
  config.days = 2;
  config.honeypots = 4;
  config.with_top_peer = false;
  config.host_mtbf = 0;
  return config;
}

TEST(AbuseScenario, MiniRunExercisesEveryAttackClassAndDefense) {
  DistributedConfig config = mini_config();
  config.abuse.enabled = true;
  config.abuse.intensity = 2.0;
  const auto r = run_distributed(config);

  EXPECT_GT(r.abuse.corrupt_episodes, 0u);
  EXPECT_GT(r.abuse.flood_episodes, 0u);
  EXPECT_GT(r.abuse.slowloris_episodes, 0u);
  EXPECT_GT(r.abuse.oversize_episodes, 0u);
  EXPECT_GT(r.abuse.messages_sent, 0u);
  EXPECT_GT(r.abuse.connections_opened, 0u);

  // The auto-applied defense made decisions on both sides.
  EXPECT_GT(r.defense.accepted, 0u);
  EXPECT_GT(r.defense.reaped, 0u);  // slowloris + flood holds cut short
  EXPECT_GT(r.defense.shed + r.defense.rate_limited, 0u);
  // Corrupted packets reached decoders and were rejected, visibly.
  EXPECT_GT(r.defense.malformed, 0u);
  EXPECT_GT(r.net_totals.messages_corrupted, 0u);
  EXPECT_GT(r.net_totals.malformed_packets, 0u);

  // Hostile handshakes are logged under the filterable abuse identity.
  std::uint64_t hostile = 0;
  for (const auto& rec : r.merged.records) {
    if (rec.user == fault::kAbuseUserWord) ++hostile;
  }
  EXPECT_GT(hostile, 0u);
}

TEST(AbuseScenario, DisabledAbuseLeavesNoTrace) {
  const auto r = run_distributed(mini_config());
  EXPECT_EQ(r.abuse.corrupt_episodes + r.abuse.flood_episodes +
                r.abuse.slowloris_episodes + r.abuse.oversize_episodes,
            0u);
  EXPECT_EQ(r.abuse.messages_sent, 0u);
  EXPECT_EQ(r.defense.accepted + r.defense.shed + r.defense.rate_limited +
                r.defense.reaped + r.defense.queue_dropped,
            0u);
  EXPECT_EQ(r.net_totals.messages_corrupted, 0u);
  // Benign traffic never trips a decoder.
  EXPECT_EQ(r.net_totals.malformed_packets, 0u);
  EXPECT_EQ(r.defense.malformed, 0u);
  for (const auto& rec : r.merged.records) {
    ASSERT_NE(rec.user, fault::kAbuseUserWord);
  }
}

TEST(AbuseScenario, UndefendedBaselineFightsBareHanded) {
  DistributedConfig config = mini_config();
  config.abuse.enabled = true;
  config.auto_defense = false;  // the ablation baseline
  const auto r = run_distributed(config);
  EXPECT_GT(r.abuse.messages_sent, 0u);
  // No admission-control decisions were made...
  EXPECT_EQ(r.defense.accepted + r.defense.shed + r.defense.rate_limited +
                r.defense.reaped + r.defense.queue_dropped,
            0u);
  // ...but malformed traffic is still visible (counted unconditionally).
  EXPECT_GT(r.defense.malformed, 0u);
}

TEST(AbuseScenario, DeterministicForFixedSeed) {
  DistributedConfig config = mini_config();
  config.abuse.enabled = true;
  const auto a = run_distributed(config);
  const auto b = run_distributed(config);
  EXPECT_EQ(a.merged.records.size(), b.merged.records.size());
  EXPECT_EQ(a.abuse.messages_sent, b.abuse.messages_sent);
  EXPECT_EQ(a.defense.reaped, b.defense.reaped);
  EXPECT_EQ(a.net_totals.malformed_packets, b.net_totals.malformed_packets);
}

// The PR's acceptance bar: a defended fleet under the full standing attack
// mix still collects >= 99% of the records an attack-free measurement
// would, after filtering the attackers' own log entries out.
TEST(AbuseScenario, RetainsAtLeast99PercentUnderStandingAttack) {
  DistributedConfig attacked;
  attacked.scale = 0.02;
  attacked.days = 32;
  attacked.honeypots = 24;
  attacked.with_top_peer = false;
  attacked.host_mtbf = 0;
  attacked.abuse.enabled = true;

  DistributedConfig clean = attacked;
  clean.abuse.enabled = false;

  const auto under_attack = run_distributed(attacked);
  const auto baseline = run_distributed(clean);
  ASSERT_GT(baseline.merged.records.size(), 1000u);
  EXPECT_GT(under_attack.abuse.messages_sent, 0u);
  EXPECT_GT(under_attack.defense.shed + under_attack.defense.rate_limited,
            0u);

  std::uint64_t benign = 0;
  for (const auto& rec : under_attack.merged.records) {
    if (rec.user != fault::kAbuseUserWord) ++benign;
  }
  const double ratio = static_cast<double>(benign) /
                       static_cast<double>(baseline.merged.records.size());
  EXPECT_GE(ratio, 0.99) << benign << " benign of "
                         << baseline.merged.records.size()
                         << " attack-free records";
}

}  // namespace
}  // namespace edhp
