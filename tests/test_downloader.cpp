// The peer downloader state machine against real honeypots: handshakes,
// upload slots, request/timeout behaviour, detection, and shared lists.

#include <gtest/gtest.h>

#include "honeypot/honeypot.hpp"
#include "peer/downloader.hpp"
#include "server/server.hpp"

namespace edhp::peer {
namespace {

class DownloaderTest : public ::testing::Test {
 protected:
  // run() would never return while honeypot keep-alive timers are armed;
  // settle() drains a bounded window instead.
  void settle(double span = 180.0) { s.run_until(s.now() + span); }

  sim::Simulation s{21};
  net::Network net{s};
  net::NodeId server_node = net.add_node(true);
  server::Server server{net, server_node, {}};
  sim::DiurnalProfile diurnal = sim::DiurnalProfile::flat();
  FileCatalog catalog{CatalogParams{500, 0.9, 0.05}, Rng(5)};
  BehaviorParams params = fast_params();
  SharedBlacklist blacklist{0.01};
  FileId target = FileId::from_words(0xAA, 0xBB);
  std::vector<std::unique_ptr<honeypot::Honeypot>> pots;

  static BehaviorParams fast_params() {
    BehaviorParams p;
    p.extra_sources_mean = 50;  // contact everything -> deterministic tests
    p.aggressive_prob = 0;
    p.sessions_mean = 8;  // plenty: detection ends sources first
    p.session_gap_mean = hours(1);
    p.start_upload_prob = 1.0;   // always an uploader
    p.request_timeout = 20.0;
    p.timeouts_per_session = 2;
    p.detect_after_timeouts = 2;
    p.detect_after_bad_parts = 1;
    p.max_rounds_per_session = 30;
    p.gossip_prob_timeout = 1.0;  // always publish (deterministic)
    p.gossip_prob_bad_part = 1.0;
    p.share_list_prob = 1.0;
    p.cache_size_mean = 5;
    p.high_id_fraction = 1.0;
    return p;
  }

  PeerContext context() {
    PeerContext ctx;
    ctx.net = &net;
    ctx.server_node = server_node;
    ctx.blacklist = &blacklist;
    ctx.catalog = &catalog;
    ctx.params = &params;
    ctx.diurnal = &diurnal;
    return ctx;
  }

  honeypot::Honeypot& spawn_honeypot(honeypot::ContentStrategy strategy) {
    honeypot::HoneypotConfig c;
    c.id = static_cast<std::uint16_t>(pots.size());
    c.name = "hp-" + std::to_string(pots.size());
    c.strategy = strategy;
    pots.push_back(std::make_unique<honeypot::Honeypot>(
        net, net.add_node(true), std::move(c)));
    pots.back()->connect_to_server(
        honeypot::ServerRef{server_node, "srv", 4661});
    settle();
    pots.back()->advertise({honeypot::AdvertisedFile{target, "bait.avi", 1000}});
    settle();
    return *pots.back();
  }

  Rng profile_rng{3};

  std::unique_ptr<Peer> make_peer(bool* done = nullptr, std::uint64_t seed = 9) {
    PeerProfile profile = sample_profile(profile_rng, params, diurnal);
    profile.reachable = true;
    const auto node = net.add_node(true);
    return std::make_unique<Peer>(context(), node, profile, target, Rng(seed),
                                  [done] {
                                    if (done) *done = true;
                                  });
  }

  void SetUp() override { server.start(); }
};

TEST_F(DownloaderTest, HandshakesWithEveryProvider) {
  auto& hp1 = spawn_honeypot(honeypot::ContentStrategy::no_content);
  auto& hp2 = spawn_honeypot(honeypot::ContentStrategy::random_content);
  bool done = false;
  auto peer = make_peer(&done);
  peer->start();
  s.run_until(days(3));
  EXPECT_GE(peer->stats().hellos_sent, 2u);
  EXPECT_GE(hp1.log().records.size(), 1u);
  EXPECT_GE(hp2.log().records.size(), 1u);
  EXPECT_GT(peer->stats().sessions, 0u);
}

TEST_F(DownloaderTest, NoContentPathTimesOutAndDetects) {
  auto& hp = spawn_honeypot(honeypot::ContentStrategy::no_content);
  auto peer = make_peer();
  peer->start();
  s.run_until(days(3));
  // 2 timeouts/session * 2 sessions to detect.
  EXPECT_EQ(peer->stats().request_parts_sent, 4u);
  EXPECT_EQ(peer->stats().detections, 1u);
  EXPECT_EQ(peer->stats().parts_completed, 0u);
  EXPECT_LT(blacklist.reputation(net.info(hp.node()).ip.value()), 1.0);
  // Once detected, the peer finished early (all sources dead).
  EXPECT_TRUE(peer->finished());
}

TEST_F(DownloaderTest, RandomContentPathCompletesPartAndDetects) {
  auto& hp = spawn_honeypot(honeypot::ContentStrategy::random_content);
  auto peer = make_peer();
  peer->start();
  s.run_until(days(4));
  // A full part is 9,728,000 bytes = 18 rounds of 3x180 KiB.
  EXPECT_GE(peer->stats().parts_completed, 1u);
  EXPECT_GE(peer->stats().request_parts_sent, 17u);
  EXPECT_EQ(peer->stats().detections, 1u);
  EXPECT_GE(hp.counters().get("blocks_sent"), 3u * 17u);
}

TEST_F(DownloaderTest, SilenceDetectedFasterThanRandomContent) {
  // The paper's core asymmetry, as wall-clock time to detection.
  auto& nc = spawn_honeypot(honeypot::ContentStrategy::no_content);
  auto peer_nc = make_peer(nullptr, 1);
  peer_nc->start();
  s.run_until(days(6));
  const bool nc_detected = peer_nc->stats().detections > 0;

  // Fresh world for the random-content case would be cleaner, but the
  // timing comparison works in one world: spawn a second peer against a
  // random-content honeypot and compare detection progress at equal ages.
  auto& rc = spawn_honeypot(honeypot::ContentStrategy::random_content);
  (void)nc;
  (void)rc;
  EXPECT_TRUE(nc_detected);
  // Timing detail asserted in the scenario-level test; here we assert the
  // no-content path needed no completed part.
  EXPECT_EQ(peer_nc->stats().parts_completed, 0u);
}

TEST_F(DownloaderTest, SharesCacheWhenAsked) {
  auto& hp = spawn_honeypot(honeypot::ContentStrategy::no_content);
  auto peer = make_peer();
  peer->start();
  s.run_until(days(1));
  EXPECT_GE(hp.observed_files().size(), 1u);
  EXPECT_GT(hp.observed_bytes(), 0u);
}

TEST_F(DownloaderTest, NeverSharesWhenDisabled) {
  params.share_list_prob = 0.0;
  auto& hp = spawn_honeypot(honeypot::ContentStrategy::no_content);
  auto peer = make_peer();
  peer->start();
  s.run_until(days(1));
  EXPECT_EQ(hp.observed_files().size(), 0u);
}

TEST_F(DownloaderTest, HandshakeOnlyPeerNeverStartsUpload) {
  params.start_upload_prob = 0.0;
  auto& hp = spawn_honeypot(honeypot::ContentStrategy::no_content);
  auto peer = make_peer();
  peer->start();
  s.run_until(days(2));
  EXPECT_GT(peer->stats().hellos_sent, 0u);
  EXPECT_EQ(peer->stats().start_uploads_sent, 0u);
  for (const auto& r : hp.log().records) {
    EXPECT_EQ(r.type, logbook::QueryType::hello);
  }
}

TEST_F(DownloaderTest, FinishesWithNoProviders) {
  // No honeypot advertises the file: FOUND-SOURCES is empty.
  bool done = false;
  auto peer = make_peer(&done);
  peer->start();
  s.run_until(days(1));
  EXPECT_TRUE(done);
  EXPECT_TRUE(peer->finished());
  EXPECT_EQ(peer->stats().hellos_sent, 0u);
}

TEST_F(DownloaderTest, SurvivesProviderCrashMidSession) {
  auto& hp = spawn_honeypot(honeypot::ContentStrategy::random_content);
  auto peer = make_peer();
  peer->start();
  s.run_until(100.0);          // mid-transfer
  hp.crash();
  EXPECT_NO_THROW(s.run_until(days(3)));
  EXPECT_TRUE(peer->finished() || peer->stats().sessions > 0);
}

TEST_F(DownloaderTest, ReportedReputationLowersSelection) {
  auto& hp = spawn_honeypot(honeypot::ContentStrategy::no_content);
  const auto ip = net.info(hp.node()).ip.value();
  // Hammer the reputation down.
  SharedBlacklist& bl = blacklist;
  for (int i = 0; i < 2000; ++i) bl.report(ip);
  EXPECT_LT(bl.reputation(ip), 1.0);

  // With a single candidate whose weight is scaled by reputation, selection
  // still happens (weights are relative), so the peer is not starved:
  auto peer = make_peer();
  peer->start();
  s.run_until(days(1));
  EXPECT_GE(peer->stats().hellos_sent, 1u);
}

TEST_F(DownloaderTest, LowIdProvidersSkipped) {
  // Register a fake LowID provider directly in the server's index by
  // logging in a firewalled node that offers the target file.
  const auto lowid_node = net.add_node(false);
  net::EndpointPtr keep;
  net.connect(lowid_node, server_node, [&](net::EndpointPtr ep) {
    keep = std::move(ep);
    proto::LoginRequest login;
    login.user = UserId::from_words(9, 9);
    login.port = 4662;
    keep->send(proto::encode(proto::AnyMessage{login}));
    proto::PublishedFile f;
    f.file = target;
    f.name = "bait.avi";
    keep->send(proto::encode(proto::AnyMessage{proto::OfferFiles{{f}}}));
  });
  settle();
  ASSERT_EQ(server.index().sources(target, 10).size(), 1u);

  auto peer = make_peer();
  peer->start();
  s.run_until(days(1));
  // The only provider is LowID: unreachable, so no HELLO was possible.
  EXPECT_EQ(peer->stats().hellos_sent, 0u);
  EXPECT_TRUE(peer->finished());
}

}  // namespace
}  // namespace edhp::peer
