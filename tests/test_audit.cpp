// Record-conservation audit ledger: the balance equation holds under any
// composition of chaos axes, an injected silent loss is a hard failure,
// the off-path is a bit-identical no-op, the SpoolStore classification
// seams count every record exactly once, and every committed chaos repro
// in tests/chaos_corpus/ replays to its recorded verdict forever.

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>

#include "audit/audit.hpp"
#include "audit/chaos_point.hpp"
#include "logbook/spool.hpp"
#include "scenario/scenario.hpp"

namespace edhp::audit {
namespace {

/// Same FNV-1a record mix as the golden tests in test_scenario.cpp.
std::uint64_t fingerprint(const logbook::LogFile& log) {
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  for (const auto& rec : log.records) {
    std::uint64_t t_bits = 0;
    std::memcpy(&t_bits, &rec.timestamp, 8);
    mix(t_bits);
    mix(rec.peer);
    mix(rec.user);
    mix(static_cast<std::uint64_t>(rec.honeypot));
    mix(static_cast<std::uint64_t>(rec.type));
  }
  return h;
}

scenario::DistributedConfig small_config() {
  scenario::DistributedConfig config;
  config.scale = 0.02;
  config.days = 1;
  config.honeypots = 4;
  config.with_top_peer = false;
  return config;
}

// --- The tentpole claim: conservation under composed chaos ----------------

// Byzantine lies + clock steps + a spool quota + manager crashes in ONE
// paper-sized (24-honeypot) run. Each axis was proven zero-silent-loss in
// its own PR; this holds the composition to the same standard: the ledger
// must balance, and crash-destroyed evidence must stay under 1%.
TEST(AuditLedger, CombinedAxesBalanceWithHighRetention) {
  scenario::DistributedConfig config;
  config.scale = 0.02;
  config.days = 2;
  config.honeypots = 24;
  config.with_top_peer = false;
  config.audit = true;
  config.chaos.enabled = true;
  config.chaos.manager_mtbf = hours(12);
  config.chaos.clock_step_mtbf = hours(8);
  config.chaos.clock_step_max = 90;
  config.chaos.disk_quota_bytes = 192 * 1024;
  auto& b = config.chaos.byzantine;
  b.enabled = true;
  b.fabricate_mtbf = hours(8);
  b.forge_list_mtba = hours(3);

  const auto r = scenario::run_distributed(config);

  // Every axis genuinely fired.
  EXPECT_GE(r.faults.manager_crashes, 1u);
  EXPECT_GE(r.faults.clock_steps, 1u);
  EXPECT_GT(r.byzantine.forged_lists_sent, 0u);
  EXPECT_GT(r.integrity.records_excluded, 0u);

  // The ledger balances (run_distributed would have thrown otherwise, but
  // assert the published stats too) and names real dispositions.
  EXPECT_TRUE(r.audit.enabled);
  EXPECT_TRUE(r.audit.balanced()) << r.audit.breakdown();
  EXPECT_EQ(r.audit.records_merged, r.merged.records.size());
  EXPECT_EQ(r.audit.records_excluded, r.integrity.records_excluded);
  EXPECT_GT(r.audit.records_born, r.audit.records_merged);

  // Evidence retention: crashes may destroy an unspooled tail, but the
  // spool pipeline keeps it under 1% of everything ever stamped.
  EXPECT_GE(r.recovery.retained_fraction, 0.99);
  EXPECT_LT(r.audit.records_lost_tail, r.audit.records_born / 100 + 1);
}

// --- Hard failure on injected imbalance -----------------------------------

// The self-test backdoor destroys every Nth record after all accounting
// points — the exact silent-loss bug class the ledger exists to catch. An
// audited run must throw; an unaudited run must still expose the deficit.
TEST(AuditLedger, InjectedSilentLossFailsAuditedRun) {
  auto config = small_config();
  config.chaos.audit_selftest_drop = 97;

  config.audit = false;
  const auto r = scenario::run_distributed(config);
  EXPECT_FALSE(r.audit.enabled);
  EXPECT_FALSE(r.audit.balanced());
  EXPECT_GT(r.audit.unaccounted(), 0) << r.audit.breakdown();

  config.audit = true;
  EXPECT_THROW((void)scenario::run_distributed(config), ImbalanceError);
}

TEST(AuditLedger, ImbalanceErrorCarriesTheLedger) {
  auto config = small_config();
  config.chaos.audit_selftest_drop = 97;
  config.audit = true;
  try {
    (void)scenario::run_distributed(config);
    FAIL() << "imbalanced audited run did not throw";
  } catch (const ImbalanceError& e) {
    EXPECT_GT(e.stats().unaccounted(), 0);
    EXPECT_NE(std::string(e.what()).find("unaccounted"), std::string::npos);
  }
}

// --- Zero-cost off-path ----------------------------------------------------

// Auditing must not perturb the measurement: same config with audit on and
// off yields the bit-identical dataset, and the ledger itself is identical
// except for the `enabled` flag.
TEST(AuditLedger, AuditFlagIsBitIdenticalNoOp) {
  auto config = small_config();
  config.chaos.enabled = true;
  config.chaos.host_mtbf = hours(18);
  const auto off = scenario::run_distributed(config);
  config.audit = true;
  const auto on = scenario::run_distributed(config);

  EXPECT_EQ(on.merged.records.size(), off.merged.records.size());
  EXPECT_EQ(fingerprint(on.merged), fingerprint(off.merged));
  EXPECT_FALSE(off.audit.enabled);
  EXPECT_TRUE(on.audit.enabled);
  EXPECT_EQ(on.audit.records_born, off.audit.records_born);
  EXPECT_EQ(on.audit.records_merged, off.audit.records_merged);
  EXPECT_EQ(on.audit.accounted(), off.audit.accounted());
  EXPECT_TRUE(off.audit.balanced()) << off.audit.breakdown();
}

TEST(AuditLedger, GreedyCampaignBalancesAudited) {
  scenario::GreedyConfig config;
  config.scale = 0.02;
  config.days = 2;
  config.audit = true;
  config.chaos.enabled = true;
  config.chaos.host_mtbf = hours(12);
  const auto r = scenario::run_greedy(config);
  EXPECT_TRUE(r.audit.balanced()) << r.audit.breakdown();
  EXPECT_EQ(r.audit.records_merged, r.merged.records.size());
}

// --- Classification seams (ISSUE 10 satellite 6) ---------------------------

logbook::LogChunk make_chunk(std::uint16_t hp, std::uint64_t seq,
                             std::size_t records) {
  logbook::LogChunk chunk;
  chunk.honeypot = hp;
  chunk.seq = seq;
  chunk.epoch = 1;
  for (std::size_t i = 0; i < records; ++i) {
    logbook::LogRecord r;
    r.timestamp = 10.0 * static_cast<double>(seq) + static_cast<double>(i);
    r.peer = 1000 + i;
    r.user = 2000 + i;
    r.honeypot = hp;
    chunk.records.push_back(r);
  }
  chunk.checksum = logbook::chunk_checksum(chunk);
  return chunk;
}

// Quarantine is a state, not a disposition: an intact re-send of the same
// (honeypot, seq) reclassifies the records as stored, so they must leave
// the quarantined tally — else the ledger would double-count them.
TEST(AuditSeams, QuarantineThenIntactResendReclassifiesOnce) {
  logbook::SpoolStore store;
  auto chunk = make_chunk(1, 0, 5);
  auto bad = chunk;
  bad.checksum ^= 1;
  ASSERT_EQ(store.ingest(bad), logbook::SpoolStore::Ingest::quarantined);
  EXPECT_EQ(store.records_quarantined_resident(), 5u);

  // A second corrupt copy of the SAME pending sequence adds a chunk
  // quarantine but no new resident records.
  ASSERT_EQ(store.ingest(bad), logbook::SpoolStore::Ingest::quarantined);
  EXPECT_EQ(store.chunks_quarantined(), 2u);
  EXPECT_EQ(store.records_quarantined_resident(), 5u);

  // The intact re-send wins: records become stored, residency drops to 0.
  ASSERT_EQ(store.ingest(chunk), logbook::SpoolStore::Ingest::stored);
  EXPECT_EQ(store.records_quarantined_resident(), 0u);
  EXPECT_EQ(store.records_stored(), 5u);
  EXPECT_EQ(store.reassemble(1).records.size(), 5u);
}

// A corrupt re-send of an ALREADY-stored sequence is counted as a chunk
// quarantine (triage signal) but contributes zero resident records: the
// evidence is durable regardless, and counting it would fabricate a
// disposition for records already classified as merged.
TEST(AuditSeams, CorruptResendOfStoredSeqAddsNoResidentRecords) {
  logbook::SpoolStore store;
  auto chunk = make_chunk(2, 7, 4);
  ASSERT_EQ(store.ingest(chunk), logbook::SpoolStore::Ingest::stored);
  auto bad = chunk;
  bad.checksum ^= 1;
  ASSERT_EQ(store.ingest(bad), logbook::SpoolStore::Ingest::quarantined);
  EXPECT_EQ(store.chunks_quarantined(), 1u);
  EXPECT_EQ(store.records_quarantined_resident(), 0u);
  EXPECT_EQ(store.records_stored(), 4u);
}

// Beyond the per-sequence tracking cap the records are still counted (the
// documented overflow, never silent), they just can no longer be
// reclassified by a winning re-send.
TEST(AuditSeams, QuarantineResidencySurvivesTheRefCap) {
  logbook::SpoolStore store;
  const std::size_t total = logbook::kQuarantineRefCap + 8;
  for (std::size_t seq = 0; seq < total; ++seq) {
    auto bad = make_chunk(3, seq, 2);
    bad.checksum ^= 1;
    ASSERT_EQ(store.ingest(bad), logbook::SpoolStore::Ingest::quarantined);
  }
  EXPECT_EQ(store.records_quarantined_resident(), 2 * total);
  // A winning re-send of a tracked sequence still reclassifies...
  ASSERT_EQ(store.ingest(make_chunk(3, 0, 2)),
            logbook::SpoolStore::Ingest::stored);
  EXPECT_EQ(store.records_quarantined_resident(), 2 * total - 2);
  // ...an untracked one stores the records but cannot erase its pending
  // count (the capped, documented overestimate — conservative, not lossy).
  ASSERT_EQ(store.ingest(make_chunk(3, total - 1, 2)),
            logbook::SpoolStore::Ingest::stored);
  EXPECT_EQ(store.records_quarantined_resident(), 2 * total - 2);
}

// --- Chaos-point plumbing ---------------------------------------------------

TEST(ChaosPoint, ReproRoundTripsThroughSerialize) {
  ReproConfig repro;
  repro.seed = 424242;
  repro.scale = 0.03;
  repro.days = 1.5;
  repro.honeypots = 5;
  repro.expect_imbalance = true;
  repro.point.knobs.emplace_back(
      static_cast<std::size_t>(knob_index("host_mtbf")), 21600.0);
  repro.point.knobs.emplace_back(
      static_cast<std::size_t>(knob_index("link_dup")), 0.01);
  const auto parsed = parse_repro(serialize(repro));
  EXPECT_EQ(parsed.seed, repro.seed);
  EXPECT_EQ(parsed.scale, repro.scale);
  EXPECT_EQ(parsed.days, repro.days);
  EXPECT_EQ(parsed.honeypots, repro.honeypots);
  EXPECT_EQ(parsed.expect_imbalance, repro.expect_imbalance);
  ASSERT_EQ(parsed.point.knobs.size(), repro.point.knobs.size());
  EXPECT_EQ(parsed.point.knobs, repro.point.knobs);
}

TEST(ChaosPoint, RegistryNamesAreUniqueAndIndexed) {
  const auto registry = knob_registry();
  for (std::size_t i = 0; i < registry.size(); ++i) {
    EXPECT_EQ(knob_index(registry[i].name), static_cast<int>(i))
        << registry[i].name;
    // Flag-style knobs (e.g. *_off / *_no_*) pin lo == hi.
    EXPECT_LE(registry[i].lo, registry[i].hi) << registry[i].name;
  }
  EXPECT_EQ(knob_index("no_such_knob"), -1);
}

TEST(ChaosPoint, SampledKnobsRespectTheirBounds) {
  Rng rng(7);
  const auto registry = knob_registry();
  for (int round = 0; round < 50; ++round) {
    const auto point = sample_point(rng);
    for (const auto& [index, value] : point.knobs) {
      ASSERT_LT(index, registry.size());
      EXPECT_GE(value, registry[index].lo) << registry[index].name;
      EXPECT_LE(value, registry[index].hi) << registry[index].name;
    }
  }
}

// --- Committed corpus replay ------------------------------------------------

/// Mirror of tools/chaos_run.hpp::repro_config — the replay contract the
/// fuzzer, the inspector, and this regression test all share.
scenario::DistributedConfig corpus_config(const ReproConfig& repro) {
  scenario::DistributedConfig config;
  config.scale = repro.scale;
  config.seed = repro.seed;
  config.days = repro.days;
  config.honeypots = repro.honeypots;
  config.with_top_peer = false;
  apply(repro.point, config.chaos, config.abuse);
  return config;
}

// Every repro the fuzzer ever shrank and committed replays to its recorded
// verdict: `expect=imbalance` files must still trip the ledger (if one
// reports balanced, the auditor has grown a hole), `expect=balanced` files
// must still hold conservation under their composed knobs.
TEST(ChaosCorpus, EveryCommittedReproReplaysToItsVerdict) {
  const std::filesystem::path dir = EDHP_CHAOS_CORPUS_DIR;
  ASSERT_TRUE(std::filesystem::exists(dir)) << dir;
  std::size_t replayed = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".cfg") continue;
    std::ifstream file(entry.path());
    ASSERT_TRUE(file) << entry.path();
    const std::string text((std::istreambuf_iterator<char>(file)),
                           std::istreambuf_iterator<char>());
    const ReproConfig repro = parse_repro(text);
    const auto result = scenario::run_distributed(corpus_config(repro));
    EXPECT_EQ(!result.audit.balanced(), repro.expect_imbalance)
        << entry.path() << ": " << result.audit.breakdown();
    ++replayed;
  }
  EXPECT_GE(replayed, 2u) << "committed corpus went missing";
}

}  // namespace
}  // namespace edhp::audit
