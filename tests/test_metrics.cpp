// Metric recorders and text helpers.

#include <gtest/gtest.h>

#include "common/text.hpp"
#include "sim/metrics.hpp"

namespace edhp {
namespace {

TEST(BucketSeries, BucketsByWidth) {
  sim::BucketSeries series(10.0);
  series.add(0.0);
  series.add(9.999);
  series.add(10.0);
  series.add(35.0, 5);
  EXPECT_EQ(series.num_buckets(), 4u);
  EXPECT_EQ(series.at(0), 2u);
  EXPECT_EQ(series.at(1), 1u);
  EXPECT_EQ(series.at(2), 0u);
  EXPECT_EQ(series.at(3), 5u);
  EXPECT_EQ(series.at(99), 0u);  // untouched bucket reads as 0
  EXPECT_EQ(series.total(), 8u);
}

TEST(BucketSeries, RejectsBadInput) {
  EXPECT_THROW(sim::BucketSeries(0.0), std::invalid_argument);
  EXPECT_THROW(sim::BucketSeries(-1.0), std::invalid_argument);
  sim::BucketSeries series(1.0);
  EXPECT_THROW(series.add(-0.5), std::invalid_argument);
}

TEST(CounterSet, AccumulatesAndSorts) {
  sim::CounterSet counters;
  counters.add("b");
  counters.add("a", 3);
  counters.add("b", 2);
  EXPECT_EQ(counters.get("a"), 3u);
  EXPECT_EQ(counters.get("b"), 3u);
  EXPECT_EQ(counters.get("missing"), 0u);
  const auto sorted = counters.sorted();
  ASSERT_EQ(sorted.size(), 2u);
  EXPECT_EQ(sorted[0].first, "a");
  EXPECT_EQ(sorted[1].first, "b");
}

class TokenizeCase : public ::testing::TestWithParam<
                         std::pair<const char*, std::vector<std::string>>> {};

TEST_P(TokenizeCase, SplitsAsExpected) {
  const auto& [input, expected] = GetParam();
  EXPECT_EQ(tokenize(input), expected);
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, TokenizeCase,
    ::testing::Values(
        std::pair{"The.Best_Movie(2008)",
                  std::vector<std::string>{"the", "best", "movie", "2008"}},
        std::pair{"", std::vector<std::string>{}},
        std::pair{"...", std::vector<std::string>{}},
        std::pair{"single", std::vector<std::string>{"single"}},
        std::pair{"UPPER lower", std::vector<std::string>{"upper", "lower"}},
        std::pair{"a-b_c d", std::vector<std::string>{"a", "b", "c", "d"}},
        std::pair{"trailing.", std::vector<std::string>{"trailing"}},
        std::pair{".leading", std::vector<std::string>{"leading"}}));

TEST(ToLower, Ascii) {
  EXPECT_EQ(to_lower("MiXeD 123!"), "mixed 123!");
  EXPECT_EQ(to_lower(""), "");
}

}  // namespace
}  // namespace edhp
