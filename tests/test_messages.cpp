// Message codecs: parameterized round-trip over every message type, wire
// header layout, channel dispatch, malformed-packet rejection, and a
// randomized property sweep.

#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.hpp"
#include "proto/messages.hpp"

namespace edhp::proto {
namespace {

UserId user(std::uint64_t n) { return UserId::from_words(n, ~n); }
FileId file(std::uint64_t n) { return FileId::from_words(n * 3, n * 7 + 1); }

PublishedFile pub(std::uint64_t n) {
  PublishedFile f;
  f.file = file(n);
  f.client_id = static_cast<std::uint32_t>(0x1000000 + n);
  f.port = static_cast<std::uint16_t>(4662 + n);
  f.name = "file-" + std::to_string(n) + ".avi";
  f.size = static_cast<std::uint32_t>(1000 + n * 12345);
  return f;
}

std::vector<Tag> hello_tags() {
  return {Tag::string_tag(kTagName, "edhp-peer"), Tag::u32_tag(kTagVersion, 0x3C)};
}

// --- Parameterized round-trip across all message kinds --------------------

using Case = std::tuple<const char*, Channel, AnyMessage>;

class RoundTrip : public ::testing::TestWithParam<Case> {};

TEST_P(RoundTrip, EncodeDecodeIdentity) {
  const auto& [name, channel, msg] = GetParam();
  const auto wire = encode(msg);
  const AnyMessage back = decode(channel, wire);
  EXPECT_EQ(back, msg) << name;
  EXPECT_EQ(name_of(back), name_of(msg));
}

TEST_P(RoundTrip, HeaderLayout) {
  const auto& [name, channel, msg] = GetParam();
  (void)name;
  (void)channel;
  const auto wire = encode(msg);
  ASSERT_GE(wire.size(), 6u);
  EXPECT_EQ(wire[0], kProtoEDonkey);
  const std::uint32_t len = static_cast<std::uint32_t>(wire[1]) |
                            (static_cast<std::uint32_t>(wire[2]) << 8) |
                            (static_cast<std::uint32_t>(wire[3]) << 16) |
                            (static_cast<std::uint32_t>(wire[4]) << 24);
  EXPECT_EQ(len, wire.size() - 5);
  EXPECT_EQ(wire[5], opcode_of(msg));
}

TEST_P(RoundTrip, TruncationAlwaysRejected) {
  const auto& [name, channel, msg] = GetParam();
  (void)name;
  const auto wire = encode(msg);
  // Chopping any suffix must throw, never crash or mis-decode. (The length
  // field makes every truncation detectable.)
  for (std::size_t keep = 0; keep < wire.size(); ++keep) {
    EXPECT_THROW(
        (void)decode(channel, std::span<const std::uint8_t>(wire.data(), keep)),
        DecodeError)
        << name << " truncated to " << keep;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllMessages, RoundTrip,
    ::testing::Values(
        Case{"login", Channel::client_server,
             LoginRequest{user(1), 0, 4662,
                          {Tag::string_tag(kTagName, "hp-01"),
                           Tag::u32_tag(kTagVersion, 60),
                           Tag::u32_tag(kTagPort, 4662)}}},
        Case{"id_change", Channel::client_server, IdChange{0xC0A80001, 0}},
        Case{"id_change_lowid", Channel::client_server, IdChange{4242, 1}},
        Case{"offer_none", Channel::client_server, OfferFiles{{}}},
        Case{"offer_some", Channel::client_server,
             OfferFiles{{pub(1), pub(2), pub(3), pub(4)}}},
        Case{"get_sources", Channel::client_server, GetSources{file(9)}},
        Case{"found_none", Channel::client_server, FoundSources{file(9), {}}},
        Case{"found_some", Channel::client_server,
             FoundSources{file(9),
                          {SourceEntry{0x05060708, 4662},
                           SourceEntry{123, 4672}}}},
        Case{"search", Channel::client_server, SearchRequest{"linux iso"}},
        Case{"search_result", Channel::client_server, SearchResult{{pub(7)}}},
        Case{"server_message", Channel::client_server,
             ServerMessage{"server full"}},
        Case{"hello", Channel::client_client,
             Hello{user(2), 0x0A000001, 4662, hello_tags(), 0x51234567, 4661}},
        Case{"hello_answer", Channel::client_client,
             HelloAnswer{user(3), 77, 4662, hello_tags(), 0x51234567, 4661}},
        Case{"start_upload", Channel::client_client, StartUpload{file(5)}},
        Case{"accept_upload", Channel::client_client, AcceptUpload{}},
        Case{"queue_rank", Channel::client_client, QueueRank{42}},
        Case{"request_parts", Channel::client_client,
             RequestParts{file(5),
                          {0u, 184320u, 368640u},
                          {184320u, 368640u, 552960u}}},
        Case{"sending_part", Channel::client_client,
             SendingPart{file(5), 0, 5, {1, 2, 3, 4, 5}}},
        Case{"sending_part_empty", Channel::client_client,
             SendingPart{file(5), 10, 10, {}}},
        Case{"cancel", Channel::client_client, CancelTransfer{}},
        Case{"ask_shared", Channel::client_client, AskSharedFiles{}},
        Case{"ask_shared_answer", Channel::client_client,
             AskSharedFilesAnswer{{pub(1), pub(2)}}}),
    [](const auto& inf) { return std::get<0>(inf.param); });

// --- Channel dispatch ------------------------------------------------------

TEST(Decode, OpcodeIsContextual) {
  // 0x01 is LOGIN-REQUEST on a server link but HELLO on a peer link.
  LoginRequest login{user(1), 0, 4662, {}};
  const auto wire = encode(AnyMessage{login});
  EXPECT_EQ(wire[5], kOpLoginRequest);
  EXPECT_EQ(kOpLoginRequest, kOpHello);
  EXPECT_TRUE(
      std::holds_alternative<LoginRequest>(decode(Channel::client_server, wire)));
  // On the client channel the LOGIN payload is not a valid HELLO (it lacks
  // the hash-size byte), so decoding must fail rather than mis-parse.
  EXPECT_THROW((void)decode(Channel::client_client, wire), DecodeError);
}

TEST(Decode, ClientOpcodeRejectedOnServerChannel) {
  const auto wire = encode(AnyMessage{StartUpload{file(1)}});
  EXPECT_THROW((void)decode(Channel::client_server, wire), DecodeError);
}

// --- Malformed packets -----------------------------------------------------

TEST(Decode, BadMarkerRejected) {
  auto wire = encode(AnyMessage{AcceptUpload{}});
  wire[0] = 0xE5;
  EXPECT_THROW((void)decode(Channel::client_client, wire), DecodeError);
}

TEST(Decode, LengthMismatchRejected) {
  auto wire = encode(AnyMessage{QueueRank{1}});
  wire[1] = static_cast<std::uint8_t>(wire[1] + 1);
  EXPECT_THROW((void)decode(Channel::client_client, wire), DecodeError);
}

TEST(Decode, TrailingBytesRejected) {
  auto wire = encode(AnyMessage{AcceptUpload{}});
  wire.push_back(0xAA);
  wire[1] = static_cast<std::uint8_t>(wire[1] + 1);  // keep length consistent
  EXPECT_THROW((void)decode(Channel::client_client, wire), DecodeError);
}

TEST(Decode, UnknownOpcodeRejected) {
  auto wire = encode(AnyMessage{AcceptUpload{}});
  wire[5] = 0xEE;
  EXPECT_THROW((void)decode(Channel::client_client, wire), DecodeError);
}

TEST(Decode, SendingPartBackwardRangeRejected) {
  SendingPart m{file(1), 100, 50, {}};
  const auto wire = encode(AnyMessage{m});
  EXPECT_THROW((void)decode(Channel::client_client, wire), DecodeError);
}

TEST(Decode, EmptyPacketRejected) {
  // Header claiming zero-length payload has no opcode.
  std::vector<std::uint8_t> wire{kProtoEDonkey, 0, 0, 0, 0};
  EXPECT_THROW((void)decode(Channel::client_client, wire), DecodeError);
}

// --- Randomized property sweep ---------------------------------------------

TEST(Property, RandomOfferFilesRoundTrip) {
  Rng rng(2024);
  for (int iter = 0; iter < 200; ++iter) {
    OfferFiles offer;
    const auto n = rng.below(20);
    for (std::uint64_t i = 0; i < n; ++i) {
      PublishedFile f;
      f.file = FileId::from_words(rng(), rng());
      f.client_id = static_cast<std::uint32_t>(rng());
      f.port = static_cast<std::uint16_t>(rng());
      const auto name_len = rng.below(64);
      for (std::uint64_t c = 0; c < name_len; ++c) {
        f.name.push_back(static_cast<char>('!' + rng.below(90)));
      }
      f.size = static_cast<std::uint32_t>(rng());
      offer.files.push_back(std::move(f));
    }
    const AnyMessage msg{offer};
    EXPECT_EQ(decode(Channel::client_server, encode(msg)), msg);
  }
}

TEST(Property, RandomByteSoupNeverCrashes) {
  Rng rng(77);
  for (int iter = 0; iter < 2000; ++iter) {
    std::vector<std::uint8_t> junk(rng.below(64));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng());
    for (auto ch : {Channel::client_server, Channel::client_client}) {
      try {
        (void)decode(ch, junk);
      } catch (const DecodeError&) {
        // expected for almost all inputs
      }
    }
  }
}

}  // namespace
}  // namespace edhp::proto
