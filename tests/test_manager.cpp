// The measurement manager: launching, advertising orders, status polling
// with relaunch, log collection, merged anonymised output.

#include <gtest/gtest.h>

#include <filesystem>

#include "honeypot/manager.hpp"
#include "logbook/log_io.hpp"
#include "server/server.hpp"

namespace edhp::honeypot {
namespace {

class ManagerTest : public ::testing::Test {
 protected:
  // run() would never return while honeypot keep-alive timers are armed;
  // settle() drains a bounded window instead.
  void settle(double span = 180.0) { s.run_until(s.now() + span); }

  sim::Simulation s{41};
  net::Network net{s};
  net::NodeId server_node = net.add_node(true);
  server::Server server{net, server_node, {}};
  ServerRef ref{server_node, "srv", 4661};
  Manager manager{net, {}};

  void SetUp() override { server.start(); }

  std::size_t launch_one(ContentStrategy strategy = ContentStrategy::no_content) {
    HoneypotConfig c;
    c.name = "hp-" + std::to_string(manager.fleet_size());
    c.strategy = strategy;
    return manager.launch(std::move(c), net.add_node(true), ref);
  }
};

TEST_F(ManagerTest, LaunchConnectsAndAssignsIds) {
  launch_one();
  launch_one();
  settle();
  EXPECT_EQ(manager.fleet_size(), 2u);
  EXPECT_EQ(manager.honeypot(0).status(), Status::connected);
  EXPECT_EQ(manager.honeypot(1).status(), Status::connected);
  EXPECT_NE(manager.honeypot(0).config().id, manager.honeypot(1).config().id);
  EXPECT_EQ(server.session_count(), 2u);
}

TEST_F(ManagerTest, InjectsSharedSalt) {
  launch_one();
  launch_one();
  EXPECT_EQ(manager.honeypot(0).config().salt, manager.honeypot(1).config().salt);
  EXPECT_FALSE(manager.honeypot(0).config().salt.empty());
}

TEST_F(ManagerTest, AdvertiseAllPushesSameList) {
  launch_one();
  launch_one();
  settle();
  AdvertisedFile f{FileId::from_words(1, 2), "bait.avi", 100};
  manager.advertise_all({f});
  settle();
  EXPECT_EQ(server.index().sources(f.id, 10).size(), 2u);
  EXPECT_EQ(manager.honeypot(0).advertised().size(), 1u);
  EXPECT_EQ(manager.honeypot(1).advertised().size(), 1u);
}

TEST_F(ManagerTest, PerHoneypotAdvertise) {
  launch_one();
  launch_one();
  settle();
  AdvertisedFile f{FileId::from_words(3, 4), "one.mp3", 5};
  manager.advertise(1, {f});
  settle();
  EXPECT_TRUE(manager.honeypot(0).advertised().empty());
  EXPECT_EQ(manager.honeypot(1).advertised().size(), 1u);
  EXPECT_EQ(server.index().sources(f.id, 10).size(), 1u);
}

TEST_F(ManagerTest, PollRelaunchesDeadHoneypots) {
  launch_one();
  settle();
  manager.start();
  AdvertisedFile f{FileId::from_words(5, 6), "bait.avi", 9};
  manager.advertise(0, {f});
  settle();

  manager.honeypot(0).crash();
  EXPECT_EQ(manager.honeypot(0).status(), Status::dead);
  s.run_until(s.now() + minutes(30));  // poll period is 10 minutes
  EXPECT_EQ(manager.honeypot(0).status(), Status::connected);
  EXPECT_GE(manager.relaunches(), 1u);
  // The advertised list survived (honeypot kept it) and is re-offered.
  EXPECT_TRUE(server.index().has_file(f.id));
}

TEST_F(ManagerTest, RepeatedCrashesKeepGettingRelaunched) {
  launch_one();
  settle();
  manager.start();
  for (int i = 0; i < 3; ++i) {
    manager.honeypot(0).crash();
    s.run_until(s.now() + minutes(30));
    EXPECT_EQ(manager.honeypot(0).status(), Status::connected) << "cycle " << i;
  }
  EXPECT_GE(manager.relaunches(), 3u);
}

TEST_F(ManagerTest, CollectLogsSnapshotsEveryHoneypot) {
  launch_one();
  launch_one(ContentStrategy::random_content);
  settle();
  const auto logs = manager.collect_logs();
  ASSERT_EQ(logs.size(), 2u);
  EXPECT_EQ(logs[0].header.strategy, "no-content");
  EXPECT_EQ(logs[1].header.strategy, "random-content");
}

TEST_F(ManagerTest, MergedAnonymizedIsStage2) {
  launch_one();
  settle();
  std::uint64_t distinct = 99;
  const auto merged = manager.merged_anonymized(&distinct);
  EXPECT_EQ(merged.header.peer_kind, logbook::PeerIdKind::stage2_index);
  EXPECT_EQ(distinct, 0u);  // no peers contacted anything yet
}

TEST_F(ManagerTest, StopDisconnectsFleet) {
  launch_one();
  launch_one();
  settle();
  manager.stop();
  settle();
  EXPECT_EQ(manager.honeypot(0).status(), Status::idle);
  EXPECT_EQ(server.session_count(), 0u);
}

TEST_F(ManagerTest, ObservedFilesUnionAcrossFleet) {
  launch_one();
  settle();
  EXPECT_EQ(manager.observed_files().distinct, 0u);
  EXPECT_EQ(manager.observed_files().bytes, 0u);
}

TEST_F(ManagerTest, OutOfRangeIndexThrows) {
  EXPECT_THROW((void)manager.honeypot(0), std::out_of_range);
  EXPECT_THROW(manager.advertise(5, {}), std::out_of_range);
  EXPECT_THROW(manager.reassign(5, ref), std::out_of_range);
}

TEST_F(ManagerTest, ReassignMovesHoneypotToAnotherServer) {
  // A second directory server.
  const auto other_node = net.add_node(true);
  server::Server other(net, other_node, {});
  other.start();
  ServerRef other_ref{other_node, "other-server", 4661};

  launch_one();
  settle();
  AdvertisedFile f{FileId::from_words(7, 8), "bait.avi", 10};
  manager.advertise(0, {f});
  settle();
  EXPECT_TRUE(server.index().has_file(f.id));
  EXPECT_FALSE(other.index().has_file(f.id));

  manager.reassign(0, other_ref);
  settle();
  EXPECT_EQ(manager.honeypot(0).status(), Status::connected);
  // The old server dropped the session (and its offers); the new one has
  // the re-advertised list.
  EXPECT_EQ(server.session_count(), 0u);
  EXPECT_TRUE(other.index().has_file(f.id));
  EXPECT_EQ(manager.honeypot(0).log().header.server_name, "other-server");
}

TEST_F(ManagerTest, ExportObservedNamesAnonymises) {
  launch_one();
  settle();
  // Feed the honeypot a shared list through the wire.
  const auto peer_node = net.add_node(true);
  net::EndpointPtr keep;
  net.connect(peer_node, manager.honeypot(0).node(), [&](net::EndpointPtr ep) {
    keep = std::move(ep);
    proto::Hello hello;
    hello.user = UserId::from_words(1, 1);
    hello.client_id = net.info(peer_node).ip.value();
    hello.port = 4662;
    keep->send(proto::encode(proto::AnyMessage{hello}));
    proto::AskSharedFilesAnswer answer;
    for (int i = 0; i < 3; ++i) {
      proto::PublishedFile pf;
      pf.file = FileId::from_words(static_cast<std::uint64_t>(i), 9);
      pf.name = "common.word.secret" + std::to_string(i) + ".avi";
      pf.size = 10;
      answer.files.push_back(pf);
    }
    keep->send(proto::encode(proto::AnyMessage{answer}));
  });
  settle();

  const auto names = manager.export_observed_names(/*threshold=*/2);
  ASSERT_EQ(names.size(), 3u);
  for (const auto& n : names) {
    // Frequent words survive, the per-file "secretN" tokens do not.
    EXPECT_NE(n.find("common"), std::string::npos);
    EXPECT_EQ(n.find("secret"), std::string::npos);
  }
}

}  // namespace
}  // namespace edhp::honeypot

namespace edhp::honeypot {
namespace {

TEST_F(ManagerTest, PersistLogsWritesLoadableFiles) {
  launch_one();
  launch_one(ContentStrategy::random_content);
  settle();
  const auto dir = ::testing::TempDir() + "edhp_persist";
  std::filesystem::create_directories(dir);
  const auto paths = manager.persist_logs(dir);
  ASSERT_EQ(paths.size(), 2u);
  for (const auto& path : paths) {
    const auto log = logbook::load(path);
    EXPECT_EQ(log.header.peer_kind, logbook::PeerIdKind::stage1_hash);
  }
  EXPECT_EQ(logbook::load(paths[1]).header.strategy, "random-content");
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace edhp::honeypot
