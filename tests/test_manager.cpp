// The measurement manager: launching, advertising orders, status polling
// with relaunch, log collection, merged anonymised output.

#include <gtest/gtest.h>

#include <filesystem>

#include "honeypot/manager.hpp"
#include "logbook/log_io.hpp"
#include "server/server.hpp"

namespace edhp::honeypot {
namespace {

class ManagerTest : public ::testing::Test {
 protected:
  // run() would never return while honeypot keep-alive timers are armed;
  // settle() drains a bounded window instead.
  void settle(double span = 180.0) { s.run_until(s.now() + span); }

  sim::Simulation s{41};
  net::Network net{s};
  net::NodeId server_node = net.add_node(true);
  server::Server server{net, server_node, {}};
  ServerRef ref{server_node, "srv", 4661};
  Manager manager{net, {}};

  void SetUp() override { server.start(); }

  std::size_t launch_one(ContentStrategy strategy = ContentStrategy::no_content) {
    HoneypotConfig c;
    c.name = "hp-" + std::to_string(manager.fleet_size());
    c.strategy = strategy;
    return manager.launch(std::move(c), net.add_node(true), ref);
  }
};

TEST_F(ManagerTest, LaunchConnectsAndAssignsIds) {
  launch_one();
  launch_one();
  settle();
  EXPECT_EQ(manager.fleet_size(), 2u);
  EXPECT_EQ(manager.honeypot(0).status(), Status::connected);
  EXPECT_EQ(manager.honeypot(1).status(), Status::connected);
  EXPECT_NE(manager.honeypot(0).config().id, manager.honeypot(1).config().id);
  EXPECT_EQ(server.session_count(), 2u);
}

TEST_F(ManagerTest, InjectsSharedSalt) {
  launch_one();
  launch_one();
  EXPECT_EQ(manager.honeypot(0).config().salt, manager.honeypot(1).config().salt);
  EXPECT_FALSE(manager.honeypot(0).config().salt.empty());
}

TEST_F(ManagerTest, AdvertiseAllPushesSameList) {
  launch_one();
  launch_one();
  settle();
  AdvertisedFile f{FileId::from_words(1, 2), "bait.avi", 100};
  manager.advertise_all({f});
  settle();
  EXPECT_EQ(server.index().sources(f.id, 10).size(), 2u);
  EXPECT_EQ(manager.honeypot(0).advertised().size(), 1u);
  EXPECT_EQ(manager.honeypot(1).advertised().size(), 1u);
}

TEST_F(ManagerTest, PerHoneypotAdvertise) {
  launch_one();
  launch_one();
  settle();
  AdvertisedFile f{FileId::from_words(3, 4), "one.mp3", 5};
  manager.advertise(1, {f});
  settle();
  EXPECT_TRUE(manager.honeypot(0).advertised().empty());
  EXPECT_EQ(manager.honeypot(1).advertised().size(), 1u);
  EXPECT_EQ(server.index().sources(f.id, 10).size(), 1u);
}

TEST_F(ManagerTest, PollRelaunchesDeadHoneypots) {
  launch_one();
  settle();
  manager.start();
  AdvertisedFile f{FileId::from_words(5, 6), "bait.avi", 9};
  manager.advertise(0, {f});
  settle();

  manager.honeypot(0).crash();
  EXPECT_EQ(manager.honeypot(0).status(), Status::dead);
  s.run_until(s.now() + minutes(30));  // poll period is 10 minutes
  EXPECT_EQ(manager.honeypot(0).status(), Status::connected);
  EXPECT_GE(manager.relaunches(), 1u);
  // The advertised list survived (honeypot kept it) and is re-offered.
  EXPECT_TRUE(server.index().has_file(f.id));
}

TEST_F(ManagerTest, RepeatedCrashesKeepGettingRelaunched) {
  launch_one();
  settle();
  manager.start();
  for (int i = 0; i < 3; ++i) {
    manager.honeypot(0).crash();
    s.run_until(s.now() + minutes(30));
    EXPECT_EQ(manager.honeypot(0).status(), Status::connected) << "cycle " << i;
  }
  EXPECT_GE(manager.relaunches(), 3u);
}

TEST_F(ManagerTest, CollectLogsSnapshotsEveryHoneypot) {
  launch_one();
  launch_one(ContentStrategy::random_content);
  settle();
  const auto logs = manager.collect_logs();
  ASSERT_EQ(logs.size(), 2u);
  EXPECT_EQ(logs[0].header.strategy, "no-content");
  EXPECT_EQ(logs[1].header.strategy, "random-content");
}

TEST_F(ManagerTest, MergedAnonymizedIsStage2) {
  launch_one();
  settle();
  std::uint64_t distinct = 99;
  const auto merged = manager.merged_anonymized(&distinct);
  EXPECT_EQ(merged.header.peer_kind, logbook::PeerIdKind::stage2_index);
  EXPECT_EQ(distinct, 0u);  // no peers contacted anything yet
}

TEST_F(ManagerTest, StopDisconnectsFleet) {
  launch_one();
  launch_one();
  settle();
  manager.stop();
  settle();
  EXPECT_EQ(manager.honeypot(0).status(), Status::idle);
  EXPECT_EQ(server.session_count(), 0u);
}

TEST_F(ManagerTest, ObservedFilesUnionAcrossFleet) {
  launch_one();
  settle();
  EXPECT_EQ(manager.observed_files().distinct, 0u);
  EXPECT_EQ(manager.observed_files().bytes, 0u);
}

TEST_F(ManagerTest, OutOfRangeIndexThrows) {
  EXPECT_THROW((void)manager.honeypot(0), std::out_of_range);
  EXPECT_THROW(manager.advertise(5, {}), std::out_of_range);
  EXPECT_THROW(manager.reassign(5, ref), std::out_of_range);
}

TEST_F(ManagerTest, ReassignMovesHoneypotToAnotherServer) {
  // A second directory server.
  const auto other_node = net.add_node(true);
  server::Server other(net, other_node, {});
  other.start();
  ServerRef other_ref{other_node, "other-server", 4661};

  launch_one();
  settle();
  AdvertisedFile f{FileId::from_words(7, 8), "bait.avi", 10};
  manager.advertise(0, {f});
  settle();
  EXPECT_TRUE(server.index().has_file(f.id));
  EXPECT_FALSE(other.index().has_file(f.id));

  manager.reassign(0, other_ref);
  settle();
  EXPECT_EQ(manager.honeypot(0).status(), Status::connected);
  // The old server dropped the session (and its offers); the new one has
  // the re-advertised list.
  EXPECT_EQ(server.session_count(), 0u);
  EXPECT_TRUE(other.index().has_file(f.id));
  EXPECT_EQ(manager.honeypot(0).log().header.server_name, "other-server");
}

TEST_F(ManagerTest, ExportObservedNamesAnonymises) {
  launch_one();
  settle();
  // Feed the honeypot a shared list through the wire.
  const auto peer_node = net.add_node(true);
  net::EndpointPtr keep;
  net.connect(peer_node, manager.honeypot(0).node(), [&](net::EndpointPtr ep) {
    keep = std::move(ep);
    proto::Hello hello;
    hello.user = UserId::from_words(1, 1);
    hello.client_id = net.info(peer_node).ip.value();
    hello.port = 4662;
    keep->send(proto::encode(proto::AnyMessage{hello}));
    proto::AskSharedFilesAnswer answer;
    for (int i = 0; i < 3; ++i) {
      proto::PublishedFile pf;
      pf.file = FileId::from_words(static_cast<std::uint64_t>(i), 9);
      pf.name = "common.word.secret" + std::to_string(i) + ".avi";
      pf.size = 10;
      answer.files.push_back(pf);
    }
    keep->send(proto::encode(proto::AnyMessage{answer}));
  });
  settle();

  const auto names = manager.export_observed_names(/*threshold=*/2);
  ASSERT_EQ(names.size(), 3u);
  for (const auto& n : names) {
    // Frequent words survive, the per-file "secretN" tokens do not.
    EXPECT_NE(n.find("common"), std::string::npos);
    EXPECT_EQ(n.find("secret"), std::string::npos);
  }
}

}  // namespace
}  // namespace edhp::honeypot

namespace edhp::honeypot {
namespace {

// Regression (hot-spin): with a backoff configured, a honeypot whose server
// stays down is NOT reconnected on every poll tick — attempts are gated and
// the skipped polls are accounted as deferred.
TEST_F(ManagerTest, RelaunchBackoffBoundsAttemptsWhileServerDown) {
  ManagerConfig mc;
  mc.relaunch_backoff_base = minutes(20);
  mc.relaunch_backoff_cap = hours(2);
  Manager wd{net, mc};
  HoneypotConfig c;
  c.name = "hp-backoff";
  wd.launch(std::move(c), net.add_node(true), ref);
  settle();
  ASSERT_EQ(wd.honeypot(0).status(), Status::connected);
  wd.start();

  server.stop();  // the server is gone for four hours
  s.run_until(s.now() + hours(4));
  const auto rec = wd.recovery_stats();
  // 24 polls happened; backoff doubling (20, 40, 80, 120 min) limits the
  // actual reconnect attempts to a handful, the rest are deferred.
  EXPECT_GE(rec.relaunches, 2u);
  EXPECT_LE(rec.relaunches, 8u);
  EXPECT_GE(rec.deferred, 10u);
  EXPECT_EQ(wd.honeypot(0).status(), Status::dead);
  EXPECT_GT(rec.total_downtime, hours(3));

  server.start();
  s.run_until(s.now() + hours(3));  // next gated attempt reconnects
  EXPECT_EQ(wd.honeypot(0).status(), Status::connected);
}

// Regression (lost advertise order): an advertise issued while the honeypot
// is dead is dropped by the honeypot; the watchdog notices the ordered list
// is not covered after relaunch and re-offers it.
TEST_F(ManagerTest, RepairsAdvertiseOrderLostWhileDead) {
  launch_one();
  settle();
  manager.start();
  manager.honeypot(0).crash();
  AdvertisedFile f{FileId::from_words(21, 22), "late.avi", 7};
  manager.advertise(0, {f});  // order arrives while dead: honeypot drops it
  EXPECT_EQ(manager.honeypot(0).counters().get("advertise_orders_lost"), 1u);
  EXPECT_TRUE(manager.honeypot(0).advertised().empty());

  s.run_until(s.now() + minutes(30));
  EXPECT_EQ(manager.honeypot(0).status(), Status::connected);
  EXPECT_TRUE(server.index().has_file(f.id));
  EXPECT_GE(manager.recovery_stats().re_advertise_repairs, 1u);
}

TEST_F(ManagerTest, EscalatesToBackupAfterConsecutiveFailures) {
  const auto backup_node = net.add_node(true);
  server::Server backup{net, backup_node, {}};
  backup.start();
  const ServerRef backup_ref{backup_node, "backup", 4661};

  ManagerConfig mc;
  mc.escalate_after = 2;
  Manager wd{net, mc};
  wd.set_backup_servers({backup_ref});
  HoneypotConfig c;
  c.name = "hp-escalate";
  wd.launch(std::move(c), net.add_node(true), ref);
  settle();
  ASSERT_EQ(wd.honeypot(0).status(), Status::connected);
  wd.start();

  server.stop();  // the primary never comes back
  s.run_until(s.now() + hours(2));
  EXPECT_EQ(wd.honeypot(0).status(), Status::connected);
  EXPECT_EQ(wd.honeypot(0).log().header.server_name, "backup");
  EXPECT_GE(wd.recovery_stats().escalations, 1u);
  EXPECT_GT(wd.recovery_stats().total_downtime, 0.0);
}

// A honeypot whose SYN raced a server shutdown is wedged in `connecting`
// forever (the transport handshake completed, nobody answers the login).
// Status alone never reports it; the heartbeat watchdog does.
TEST_F(ManagerTest, HeartbeatWatchdogUnwedgesStalledLogin) {
  const auto backup_node = net.add_node(true);
  server::Server backup{net, backup_node, {}};
  backup.start();
  const ServerRef backup_ref{backup_node, "backup", 4661};

  ManagerConfig mc;
  mc.heartbeat_timeout = minutes(30);
  Manager wd{net, mc};
  wd.set_backup_servers({backup_ref});
  HoneypotConfig c;
  c.name = "hp-wedged";
  wd.launch(std::move(c), net.add_node(true), ref);
  server.stop();  // SYN in flight: accept never happens, login unanswered
  wd.start();
  s.run_until(s.now() + minutes(5));
  ASSERT_EQ(wd.honeypot(0).status(), Status::connecting) << "not wedged";

  s.run_until(s.now() + hours(2));
  EXPECT_GE(wd.recovery_stats().heartbeat_escalations, 1u);
  EXPECT_EQ(wd.honeypot(0).status(), Status::connected);
  EXPECT_EQ(wd.honeypot(0).log().header.server_name, "backup");
}

TEST(ManagerSurvey, CrashedCandidateTimesOutOnlyRespondersDelivered) {
  sim::Simulation s{17};
  net::LinkModel model;
  model.datagram_loss = 0.0;  // isolate the crash from random UDP loss
  net::Network net{s, model};

  std::vector<std::unique_ptr<server::Server>> servers;
  std::vector<ServerRef> refs;
  for (int i = 0; i < 3; ++i) {
    const auto node = net.add_node(true);
    servers.push_back(std::make_unique<server::Server>(net, node, server::ServerConfig{}));
    servers.back()->start();
    refs.push_back(ServerRef{node, "srv-" + std::to_string(i), 4661});
  }

  Manager manager{net, {}};
  const auto probe = net.add_node(true);
  bool done = false;
  std::vector<Manager::ServerSurveyEntry> got;
  manager.survey_servers(refs, probe, 5.0, [&](auto entries) {
    done = true;
    got = std::move(entries);
  });
  // The third candidate's host dies while the probe is in flight: its
  // answer is lost, the timeout fires, the responders are delivered.
  net.set_node_up(refs[2].node, false);

  s.run_until(30.0);
  ASSERT_TRUE(done);
  ASSERT_EQ(got.size(), 2u);
  for (const auto& e : got) {
    EXPECT_NE(e.server.name, "srv-2");
  }
}

TEST_F(ManagerTest, PersistLogsWritesLoadableFiles) {
  launch_one();
  launch_one(ContentStrategy::random_content);
  settle();
  const auto dir = ::testing::TempDir() + "edhp_persist";
  std::filesystem::create_directories(dir);
  const auto paths = manager.persist_logs(dir);
  ASSERT_EQ(paths.size(), 2u);
  for (const auto& path : paths) {
    const auto log = logbook::load(path);
    EXPECT_EQ(log.header.peer_kind, logbook::PeerIdKind::stage1_hash);
  }
  EXPECT_EQ(logbook::load(paths[1]).header.strategy, "random-content");
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace edhp::honeypot
