// Deterministic structure-aware fuzzer for the wire codecs.
//
// The decoder's contract under hostile bytes is binary: every input either
// parses or throws DecodeError — never crashes, never throws anything else,
// never allocates absurdly. Three layers enforce it:
//   1. a truncation sweep over every strict prefix of every golden packet;
//   2. a committed regression corpus (tests/fuzz_corpus/*.hex) of packets
//      that once mattered — crafted lying-length, absurd-count and
//      bad-marker cases stay covered forever;
//   3. a seeded mutation loop over the golden corpus (bit flips, byte sets,
//      truncation, extension, length-field splicing, region duplication).
// Run under the asan preset (ASan+UBSan) these become memory-safety proofs,
// which is how scripts/tier1.sh invokes them.

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "proto/messages.hpp"
#include "proto/opcodes.hpp"
#include "proto/udp_messages.hpp"

namespace edhp::proto {
namespace {

using Bytes = std::vector<std::uint8_t>;

// --- Golden corpus: one valid encoding of every message type ---------------

std::vector<Tag> sample_tags() {
  return {Tag::string_tag(kTagName, "client name"),
          Tag::u32_tag(kTagVersion, 0x3C)};
}

PublishedFile sample_file(std::uint64_t salt) {
  PublishedFile f;
  f.file = FileId::from_words(salt, ~salt);
  f.client_id = 0x0A0B0C0D;
  f.port = 4662;
  f.name = "file-" + std::to_string(salt) + ".avi";
  f.size = 700u << 20;
  return f;
}

std::vector<Bytes> tcp_corpus() {
  const UserId user = UserId::from_words(0x1111, 0x2222);
  const FileId file = FileId::from_words(0x3333, 0x4444);
  std::vector<AnyMessage> messages;
  messages.push_back(LoginRequest{user, 0, 4662, sample_tags()});
  messages.push_back(IdChange{0x01020304, 0});
  messages.push_back(OfferFiles{{sample_file(1), sample_file(2)}});
  messages.push_back(GetSources{file});
  messages.push_back(FoundSources{file, {{0x05060708, 4662}, {42, 4711}}});
  messages.push_back(SearchRequest{"blade runner"});
  messages.push_back(SearchResult{{sample_file(3)}});
  messages.push_back(ServerMessage{"server of the day"});
  messages.push_back(Hello{user, 0x0A0B0C0D, 4662, sample_tags(), 0x7F000001,
                           4661});
  messages.push_back(HelloAnswer{user, 0x0A0B0C0D, 4662, sample_tags(),
                                 0x7F000001, 4661});
  messages.push_back(StartUpload{file});
  messages.push_back(AcceptUpload{});
  messages.push_back(QueueRank{17});
  RequestParts parts;
  parts.file = file;
  parts.begin = {0, 184320, 368640};
  parts.end = {184320, 368640, 552960};
  messages.push_back(parts);
  messages.push_back(SendingPart{file, 0, 4, {1, 2, 3, 4}});
  messages.push_back(CancelTransfer{});
  messages.push_back(AskSharedFiles{});
  messages.push_back(AskSharedFilesAnswer{{sample_file(4), sample_file(5)}});

  std::vector<Bytes> corpus;
  corpus.reserve(messages.size());
  for (const auto& m : messages) {
    corpus.push_back(encode(m));
  }
  return corpus;
}

std::vector<Bytes> udp_corpus() {
  std::vector<AnyUdpMessage> messages;
  messages.push_back(ServStatRequest{0xCAFE});
  messages.push_back(ServStatResponse{0xCAFE, 123456, 7890123});
  messages.push_back(ServDescRequest{});
  messages.push_back(ServDescResponse{"lugdunum", "a 2008 directory server"});
  std::vector<Bytes> corpus;
  for (const auto& m : messages) {
    corpus.push_back(encode_udp(m));
  }
  return corpus;
}

/// The fuzz oracle: parse or DecodeError. Anything else propagates out and
/// fails the test (and trips ASan/UBSan first if memory went wrong).
void expect_parses_or_rejects(const Bytes& packet) {
  for (const auto channel : {Channel::client_server, Channel::client_client}) {
    try {
      (void)decode(channel, packet);
    } catch (const DecodeError&) {
    }
  }
}

/// The zero-copy oracle: decode_view must accept exactly the inputs decode
/// accepts, and materialize must reproduce the owning decoder's message
/// while the views still borrow the packet buffer. Run under ASan this is
/// the lifetime proof for the view path.
void expect_view_path_agrees(const Bytes& packet) {
  MessageArena arena;
  for (const auto channel : {Channel::client_server, Channel::client_client}) {
    bool owned_ok = true;
    AnyMessage owned;
    try {
      owned = decode(channel, packet);
    } catch (const DecodeError&) {
      owned_ok = false;
    }
    bool view_ok = true;
    try {
      const AnyMessageView view = decode_view(channel, packet, arena);
      ASSERT_TRUE(owned_ok) << "view path accepted what decode rejected";
      EXPECT_EQ(materialize(view, arena), owned);
    } catch (const DecodeError&) {
      view_ok = false;
    }
    EXPECT_EQ(owned_ok, view_ok);
  }
}

void expect_udp_parses_or_rejects(const Bytes& datagram) {
  try {
    (void)decode_udp(datagram);
  } catch (const DecodeError&) {
  }
}

// --- 1. Truncation sweep ----------------------------------------------------

TEST(CodecFuzz, EveryStrictTcpPrefixIsRejected) {
  for (const auto& packet : tcp_corpus()) {
    ASSERT_GE(packet.size(), 6u);
    for (std::size_t len = 0; len < packet.size(); ++len) {
      const Bytes prefix(packet.begin(),
                         packet.begin() + static_cast<std::ptrdiff_t>(len));
      for (const auto channel :
           {Channel::client_server, Channel::client_client}) {
        // The header length cross-check makes every strict prefix
        // detectable, so rejection (not just non-crashing) is the contract.
        EXPECT_THROW((void)decode(channel, prefix), DecodeError)
            << "prefix " << len << " of " << packet.size();
      }
    }
  }
}

TEST(CodecFuzz, EveryStrictUdpPrefixParsesOrRejects) {
  for (const auto& datagram : udp_corpus()) {
    for (std::size_t len = 0; len < datagram.size(); ++len) {
      const Bytes prefix(datagram.begin(),
                         datagram.begin() + static_cast<std::ptrdiff_t>(len));
      expect_udp_parses_or_rejects(prefix);
    }
  }
}

// --- 2. Committed regression corpus ----------------------------------------

/// Parse a .hex corpus file: whitespace-separated hex byte pairs, '#' to
/// end of line is a comment.
Bytes load_hex(const std::filesystem::path& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  Bytes out;
  std::string line;
  while (std::getline(in, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::string token;
    for (const char c : line) {
      if (std::isxdigit(static_cast<unsigned char>(c))) {
        token.push_back(c);
        if (token.size() == 2) {
          out.push_back(static_cast<std::uint8_t>(
              std::stoul(token, nullptr, 16)));
          token.clear();
        }
      } else {
        EXPECT_TRUE(token.empty()) << "odd hex digit in " << path;
      }
    }
    EXPECT_TRUE(token.empty()) << "odd hex digit in " << path;
  }
  return out;
}

TEST(CodecFuzz, RegressionCorpusParsesOrRejects) {
  const std::filesystem::path dir = EDHP_FUZZ_CORPUS_DIR;
  ASSERT_TRUE(std::filesystem::is_directory(dir)) << dir;
  std::size_t seen = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".hex") continue;
    ++seen;
    const Bytes packet = load_hex(entry.path());
    if (entry.path().filename().string().starts_with("udp_")) {
      expect_udp_parses_or_rejects(packet);
    } else {
      expect_parses_or_rejects(packet);
      expect_view_path_agrees(packet);
    }
  }
  EXPECT_GE(seen, 10u) << "regression corpus went missing from " << dir;
}

TEST(CodecFuzz, ViewsStayValidAfterArenaGrowth) {
  // One OFFER-FILES with enough entries that the arena's vectors reallocate
  // mid-parse several times over: TagRange/FileRange are index ranges, not
  // pointers, so every early entry must still read back intact at the end.
  OfferFiles offer;
  for (std::uint64_t i = 0; i < 64; ++i) {
    offer.files.push_back(sample_file(i));
  }
  const Bytes packet = encode(AnyMessage{offer});
  MessageArena arena;
  const auto view = decode_view(Channel::client_server, packet, arena);
  const auto* ofv = std::get_if<OfferFilesView>(&view);
  ASSERT_NE(ofv, nullptr);
  const auto files = arena.of(ofv->files);
  ASSERT_EQ(files.size(), offer.files.size());
  for (std::size_t i = 0; i < files.size(); ++i) {
    EXPECT_EQ(files[i].file, offer.files[i].file);
    EXPECT_EQ(files[i].name, offer.files[i].name);
    EXPECT_EQ(files[i].size, offer.files[i].size);
  }
  EXPECT_EQ(materialize(view, arena), AnyMessage{offer});
}

TEST(CodecFuzz, ViewsBorrowThePacketNotTheArena) {
  // String views must point into the original packet buffer — the whole
  // point of the zero-copy path. (If this ever starts copying, the RSS
  // claims of the million-peer benches die quietly.)
  const Bytes packet =
      encode(AnyMessage{Hello{UserId::from_words(1, 2), 3, 4, sample_tags(),
                              0x7F000001, 4661}});
  MessageArena arena;
  const auto view = decode_view(Channel::client_client, packet, arena);
  const auto* hello = std::get_if<HelloView>(&view);
  ASSERT_NE(hello, nullptr);
  const auto tags = arena.of(hello->tags);
  const auto* name = find_string_tag(tags, kTagName);
  ASSERT_NE(name, nullptr);
  const auto* lo = reinterpret_cast<const char*>(packet.data());
  EXPECT_GE(name->data(), lo);
  EXPECT_LE(name->data() + name->size(),
            lo + static_cast<std::ptrdiff_t>(packet.size()));
}

TEST(CodecFuzz, LyingLengthFieldsAreRejected) {
  for (const auto& packet : tcp_corpus()) {
    // The u32 at offset 1 must equal opcode + payload size; any other value
    // is a framing lie and must be rejected on both channels.
    for (const std::uint32_t lie :
         {0u, 1u, static_cast<std::uint32_t>(packet.size()),
          static_cast<std::uint32_t>(packet.size() - 5) + 1, 0x7FFFFFFFu,
          0xFFFFFFFFu}) {
      Bytes lying = packet;
      lying[1] = static_cast<std::uint8_t>(lie);
      lying[2] = static_cast<std::uint8_t>(lie >> 8);
      lying[3] = static_cast<std::uint8_t>(lie >> 16);
      lying[4] = static_cast<std::uint8_t>(lie >> 24);
      if (lie == packet.size() - 5) continue;  // that one is the truth
      for (const auto channel :
           {Channel::client_server, Channel::client_client}) {
        EXPECT_THROW((void)decode(channel, lying), DecodeError) << lie;
      }
    }
  }
}

TEST(CodecFuzz, FileListCountCrossCheckedAgainstPayload) {
  // OFFER-FILES claiming 1000 entries with zero bytes of entries: the count
  // guard must reject it before reserving anything.
  ByteWriter w(16);
  w.u8(kProtoEDonkey);
  w.u32(1 + 4);  // opcode + count
  w.u8(kOpOfferFiles);
  w.u32(1000);
  const Bytes packet = std::move(w).take();
  EXPECT_THROW((void)decode(Channel::client_server, packet), DecodeError);
}

// --- 3. Seeded mutation loop -----------------------------------------------

void mutate(Bytes& packet, Rng& rng) {
  switch (rng.below(7)) {
    case 0:  // flip one bit
      if (!packet.empty()) {
        packet[rng.below(packet.size())] ^=
            static_cast<std::uint8_t>(1u << rng.below(8));
      }
      break;
    case 1:  // overwrite one byte
      if (!packet.empty()) {
        packet[rng.below(packet.size())] =
            static_cast<std::uint8_t>(rng.below(256));
      }
      break;
    case 2:  // truncate the tail
      if (!packet.empty()) {
        packet.resize(rng.below(packet.size()));
      }
      break;
    case 3:  // extend with junk
      for (std::uint64_t i = 0, n = 1 + rng.below(16); i < n; ++i) {
        packet.push_back(static_cast<std::uint8_t>(rng.below(256)));
      }
      break;
    case 4:  // splice a random length field
      if (packet.size() >= 5) {
        const auto lie = static_cast<std::uint32_t>(rng.below(1ull << 32));
        packet[1] = static_cast<std::uint8_t>(lie);
        packet[2] = static_cast<std::uint8_t>(lie >> 8);
        packet[3] = static_cast<std::uint8_t>(lie >> 16);
        packet[4] = static_cast<std::uint8_t>(lie >> 24);
      }
      break;
    case 5:  // zero a region
      if (!packet.empty()) {
        const std::size_t at = rng.below(packet.size());
        const std::size_t len =
            std::min<std::size_t>(1 + rng.below(8), packet.size() - at);
        std::fill_n(packet.begin() + static_cast<std::ptrdiff_t>(at), len, 0);
      }
      break;
    case 6:  // duplicate a region onto the tail
      if (!packet.empty()) {
        const std::size_t at = rng.below(packet.size());
        const std::size_t len =
            std::min<std::size_t>(1 + rng.below(8), packet.size() - at);
        packet.insert(packet.end(),
                      packet.begin() + static_cast<std::ptrdiff_t>(at),
                      packet.begin() + static_cast<std::ptrdiff_t>(at + len));
      }
      break;
  }
}

TEST(CodecFuzz, SeededTcpMutationsNeverEscapeTheOracle) {
  const auto corpus = tcp_corpus();
  Rng rng(0xF0220001);
  for (int iter = 0; iter < 40000; ++iter) {
    Bytes packet = corpus[rng.below(corpus.size())];
    for (std::uint64_t m = 0, n = 1 + rng.below(4); m < n; ++m) {
      mutate(packet, rng);
    }
    expect_parses_or_rejects(packet);
  }
}

TEST(CodecFuzz, SeededMutationsKeepViewAndOwnedDecodersInAgreement) {
  // 60k mutated packets through BOTH decoders: same accept/reject verdict,
  // and on accept, materialize(view) == owned message. Under ASan, the
  // view-path half of this sweep is the memory-safety proof for borrowed
  // string_views and arena index ranges under hostile framing.
  const auto corpus = tcp_corpus();
  Rng rng(0xF0220004);
  for (int iter = 0; iter < 60000; ++iter) {
    Bytes packet = corpus[rng.below(corpus.size())];
    for (std::uint64_t m = 0, n = 1 + rng.below(4); m < n; ++m) {
      mutate(packet, rng);
    }
    expect_view_path_agrees(packet);
  }
}

TEST(CodecFuzz, SeededUdpMutationsNeverEscapeTheOracle) {
  const auto corpus = udp_corpus();
  Rng rng(0xF0220002);
  for (int iter = 0; iter < 20000; ++iter) {
    Bytes datagram = corpus[rng.below(corpus.size())];
    for (std::uint64_t m = 0, n = 1 + rng.below(4); m < n; ++m) {
      mutate(datagram, rng);
    }
    expect_udp_parses_or_rejects(datagram);
  }
}

TEST(CodecFuzz, MutationLoopIsDeterministic) {
  // Same seed, same corpus, same mutations: the fuzzer is a regression test,
  // not a dice roll. Record the first few mutated packets of two runs.
  auto first_packets = [] {
    const auto corpus = tcp_corpus();
    Rng rng(0xF0220003);
    std::vector<Bytes> out;
    for (int iter = 0; iter < 64; ++iter) {
      Bytes packet = corpus[rng.below(corpus.size())];
      mutate(packet, rng);
      out.push_back(std::move(packet));
    }
    return out;
  };
  EXPECT_EQ(first_packets(), first_packets());
}

}  // namespace
}  // namespace edhp::proto
