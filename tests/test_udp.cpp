// UDP datagram channel, server status protocol, and the manager's
// server-selection survey.

#include <gtest/gtest.h>

#include "honeypot/manager.hpp"
#include "proto/udp_messages.hpp"
#include "server/server.hpp"

namespace edhp {
namespace {

TEST(UdpCodec, StatRoundTrip) {
  const proto::AnyUdpMessage msg{proto::ServStatRequest{0xCAFE}};
  EXPECT_EQ(proto::decode_udp(proto::encode_udp(msg)), msg);
  const proto::AnyUdpMessage res{proto::ServStatResponse{7, 120049, 4000000}};
  EXPECT_EQ(proto::decode_udp(proto::encode_udp(res)), res);
}

TEST(UdpCodec, DescRoundTrip) {
  const proto::AnyUdpMessage req{proto::ServDescRequest{}};
  EXPECT_EQ(proto::decode_udp(proto::encode_udp(req)), req);
  const proto::AnyUdpMessage res{
      proto::ServDescResponse{"big server", "no spam"}};
  EXPECT_EQ(proto::decode_udp(proto::encode_udp(res)), res);
}

TEST(UdpCodec, MalformedRejected) {
  EXPECT_THROW((void)proto::decode_udp(std::vector<std::uint8_t>{}),
               DecodeError);
  EXPECT_THROW((void)proto::decode_udp(std::vector<std::uint8_t>{0xE3}),
               DecodeError);
  EXPECT_THROW((void)proto::decode_udp(std::vector<std::uint8_t>{0xE3, 0x42}),
               DecodeError);
  // Truncated stat request.
  EXPECT_THROW(
      (void)proto::decode_udp(std::vector<std::uint8_t>{0xE3, 0x96, 1, 2}),
      DecodeError);
  // Trailing junk.
  auto wire = proto::encode_udp(proto::AnyUdpMessage{proto::ServDescRequest{}});
  wire.push_back(0);
  EXPECT_THROW((void)proto::decode_udp(wire), DecodeError);
}

class UdpNetworkTest : public ::testing::Test {
 protected:
  sim::Simulation s{61};
  net::LinkModel lossless() {
    net::LinkModel m;
    m.datagram_loss = 0.0;
    return m;
  }
  net::Network net{s, lossless()};
};

TEST_F(UdpNetworkTest, DatagramDelivered) {
  const auto a = net.add_node(true);
  const auto b = net.add_node(true);
  net::NodeId seen_from = 999;
  net::Bytes seen;
  net.listen_datagram(b, [&](net::NodeId from, net::Bytes payload) {
    seen_from = from;
    seen = std::move(payload);
  });
  net.send_datagram(a, b, net::Bytes{1, 2, 3});
  s.run();
  EXPECT_EQ(seen_from, a);
  EXPECT_EQ(seen, (net::Bytes{1, 2, 3}));
}

TEST_F(UdpNetworkTest, NoListenerSilentlyDropped) {
  const auto a = net.add_node(true);
  const auto b = net.add_node(true);
  EXPECT_NO_THROW(net.send_datagram(a, b, net::Bytes{1}));
  s.run();
}

TEST_F(UdpNetworkTest, UnreachableTargetDropped) {
  const auto a = net.add_node(true);
  const auto b = net.add_node(false);  // firewalled
  bool seen = false;
  net.listen_datagram(b, [&](net::NodeId, net::Bytes) { seen = true; });
  net.send_datagram(a, b, net::Bytes{1});
  s.run();
  EXPECT_FALSE(seen);
}

TEST_F(UdpNetworkTest, LossDropsAllAtProbabilityOne) {
  net::LinkModel lossy;
  lossy.datagram_loss = 1.0;
  net::Network lossy_net{s, lossy};
  const auto a = lossy_net.add_node(true);
  const auto b = lossy_net.add_node(true);
  bool seen = false;
  lossy_net.listen_datagram(b, [&](net::NodeId, net::Bytes) { seen = true; });
  for (int i = 0; i < 50; ++i) lossy_net.send_datagram(a, b, net::Bytes{1});
  s.run();
  EXPECT_FALSE(seen);
}

class ServerUdpTest : public ::testing::Test {
 protected:
  sim::Simulation s{62};
  net::LinkModel lossless() {
    net::LinkModel m;
    m.datagram_loss = 0.0;
    return m;
  }
  net::Network net{s, lossless()};
  net::NodeId server_node = net.add_node(true);
  server::Server server{net, server_node, {}};

  void SetUp() override { server.start(); }
};

TEST_F(ServerUdpTest, AnswersStatusPing) {
  const auto probe = net.add_node(true);
  std::optional<proto::ServStatResponse> answer;
  net.listen_datagram(probe, [&](net::NodeId, net::Bytes payload) {
    auto msg = proto::decode_udp(payload);
    if (const auto* res = std::get_if<proto::ServStatResponse>(&msg)) {
      answer = *res;
    }
  });
  net.send_datagram(probe, server_node,
                    proto::encode_udp(proto::AnyUdpMessage{
                        proto::ServStatRequest{0xBEEF}}));
  s.run();
  ASSERT_TRUE(answer.has_value());
  EXPECT_EQ(answer->challenge, 0xBEEFu);
  EXPECT_EQ(answer->users, 0u);
  EXPECT_EQ(server.counters().get("udp_status_requests"), 1u);
}

TEST_F(ServerUdpTest, AnswersDescription) {
  const auto probe = net.add_node(true);
  std::string name;
  net.listen_datagram(probe, [&](net::NodeId, net::Bytes payload) {
    auto msg = proto::decode_udp(payload);
    if (const auto* res = std::get_if<proto::ServDescResponse>(&msg)) {
      name = res->name;
    }
  });
  net.send_datagram(probe, server_node,
                    proto::encode_udp(proto::AnyUdpMessage{
                        proto::ServDescRequest{}}));
  s.run();
  EXPECT_EQ(name, "edhp directory server");
}

TEST_F(ServerUdpTest, MalformedDatagramCounted) {
  const auto probe = net.add_node(true);
  net.send_datagram(probe, server_node, net::Bytes{0xFF, 0xFF});
  s.run();
  EXPECT_EQ(server.counters().get("udp_decode_errors"), 1u);
}

class SurveyTest : public ::testing::Test {
 protected:
  sim::Simulation s{63};
  net::LinkModel lossless() {
    net::LinkModel m;
    m.datagram_loss = 0.0;
    return m;
  }
  net::Network net{s, lossless()};
  honeypot::Manager manager{net, {}};
};

TEST_F(SurveyTest, RanksServersByUsers) {
  // Two servers; give one a logged-in client so it reports more users.
  const auto n1 = net.add_node(true);
  const auto n2 = net.add_node(true);
  server::Server s1(net, n1, {});
  server::Server s2(net, n2, {});
  s1.start();
  s2.start();

  const auto client_node = net.add_node(true);
  net::EndpointPtr keep;
  net.connect(client_node, n2, [&](net::EndpointPtr ep) {
    keep = std::move(ep);
    proto::LoginRequest login;
    login.user = UserId::from_words(1, 1);
    login.port = 4662;
    keep->send(proto::encode(proto::AnyMessage{login}));
  });
  s.run();
  ASSERT_EQ(s2.session_count(), 1u);

  const auto probe = net.add_node(true);
  std::vector<honeypot::Manager::ServerSurveyEntry> result;
  manager.survey_servers(
      {honeypot::ServerRef{n1, "one", 4661}, honeypot::ServerRef{n2, "two", 4661}},
      probe, 5.0, [&](auto entries) { result = std::move(entries); });
  s.run();

  ASSERT_EQ(result.size(), 2u);
  EXPECT_EQ(result[0].server.name, "two");  // busiest first
  EXPECT_EQ(result[0].users, 1u);
  EXPECT_EQ(result[1].users, 0u);
}

TEST_F(SurveyTest, RetransmitRecoversFromALostRequest) {
  // A candidate that ignores the first ServStat request (a lost datagram,
  // from the survey's point of view) but answers the retry round: with
  // retries enabled the row is recovered instead of missing.
  honeypot::ManagerConfig mc;
  mc.survey_retries = 2;
  mc.survey_retry_interval = 1.0;
  honeypot::Manager retry_manager{net, mc};

  const auto deaf_once = net.add_node(true);
  int requests_seen = 0;
  net.listen_datagram(deaf_once, [&](net::NodeId from, net::Bytes datagram) {
    const auto msg = proto::decode_udp(datagram);
    const auto* req = std::get_if<proto::ServStatRequest>(&msg);
    ASSERT_NE(req, nullptr);
    if (++requests_seen == 1) return;  // drop the first request on the floor
    proto::ServStatResponse res;
    res.challenge = req->challenge;
    res.users = 7;
    net.send_datagram(deaf_once, from, proto::encode_udp(res));
  });

  const auto probe = net.add_node(true);
  std::vector<honeypot::Manager::ServerSurveyEntry> result;
  retry_manager.survey_servers({honeypot::ServerRef{deaf_once, "flaky", 4661}},
                               probe, 5.0,
                               [&](auto entries) { result = std::move(entries); });
  s.run();

  EXPECT_GE(requests_seen, 2);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].server.name, "flaky");
  EXPECT_EQ(result[0].users, 7u);
  EXPECT_GE(retry_manager.recovery_stats().probe_retries, 1u);
}

TEST_F(SurveyTest, DuplicateRepliesAreSuppressedFirstCopyWins) {
  // A candidate that answers every request twice (a duplicated reply on the
  // wire): the first copy wins, the second is recognized and counted, and
  // the survey still delivers exactly one row.
  honeypot::ManagerConfig mc;
  mc.survey_retries = 1;
  honeypot::Manager dup_manager{net, mc};

  const auto chatty = net.add_node(true);
  net.listen_datagram(chatty, [&](net::NodeId from, net::Bytes datagram) {
    const auto msg = proto::decode_udp(datagram);
    const auto* req = std::get_if<proto::ServStatRequest>(&msg);
    ASSERT_NE(req, nullptr);
    for (int copy = 0; copy < 2; ++copy) {
      proto::ServStatResponse res;
      res.challenge = req->challenge;
      res.users = 3;
      net.send_datagram(chatty, from, proto::encode_udp(res));
    }
  });

  const auto probe = net.add_node(true);
  std::vector<honeypot::Manager::ServerSurveyEntry> result;
  dup_manager.survey_servers({honeypot::ServerRef{chatty, "chatty", 4661}},
                             probe, 5.0,
                             [&](auto entries) { result = std::move(entries); });
  s.run();

  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].users, 3u);
  EXPECT_GE(dup_manager.recovery_stats().probe_dups_suppressed, 1u);
  // The answered candidate is never re-asked: no retry round fired.
  EXPECT_EQ(dup_manager.recovery_stats().probe_retries, 0u);
}

TEST_F(SurveyTest, DeadServersOmitted) {
  const auto n1 = net.add_node(true);
  server::Server s1(net, n1, {});
  s1.start();
  const auto dead = net.add_node(true);  // nothing listening

  const auto probe = net.add_node(true);
  std::vector<honeypot::Manager::ServerSurveyEntry> result;
  bool called = false;
  manager.survey_servers(
      {honeypot::ServerRef{n1, "alive", 4661},
       honeypot::ServerRef{dead, "dead", 4661}},
      probe, 5.0, [&](auto entries) {
        called = true;
        result = std::move(entries);
      });
  s.run();
  EXPECT_TRUE(called);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].server.name, "alive");
}

}  // namespace
}  // namespace edhp
