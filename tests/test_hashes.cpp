// MD4 and SHA-1 against the official RFC test vectors, plus incremental
// feeding invariants (the part hasher feeds block-unaligned spans).

#include <gtest/gtest.h>

#include <string>

#include "common/ids.hpp"
#include "common/md4.hpp"
#include "common/sha1.hpp"

namespace edhp {
namespace {

std::string md4_hex(std::string_view s) { return to_hex(Md4::hash(s)); }
std::string sha1_hex(std::string_view s) { return to_hex(Sha1::hash(s)); }

TEST(Md4, Rfc1320Vectors) {
  EXPECT_EQ(md4_hex(""), "31d6cfe0d16ae931b73c59d7e0c089c0");
  EXPECT_EQ(md4_hex("a"), "bde52cb31de33e46245e05fbdbd6fb24");
  EXPECT_EQ(md4_hex("abc"), "a448017aaf21d8525fc10ae87aa6729d");
  EXPECT_EQ(md4_hex("message digest"), "d9130a8164549fe818874806e1c7014b");
  EXPECT_EQ(md4_hex("abcdefghijklmnopqrstuvwxyz"),
            "d79e1c308aa5bbcdeea8ed63df412da9");
  EXPECT_EQ(
      md4_hex("ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"),
      "043f8582f241db351ce627e153e7f0e4");
  EXPECT_EQ(md4_hex("12345678901234567890123456789012345678901234567890123456"
                    "789012345678901234567890"),
            "e33b4ddc9c38f2199c3e7b164fcc0536");
}

TEST(Sha1, Rfc3174Vectors) {
  EXPECT_EQ(sha1_hex("abc"), "a9993e364706816aba3e25717850c26c9cd0d89d");
  EXPECT_EQ(sha1_hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
  EXPECT_EQ(sha1_hex(""), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Sha1, MillionAs) {
  Sha1 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(to_hex(h.finish()), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Md4, IncrementalMatchesOneShot) {
  std::string data;
  for (int i = 0; i < 1000; ++i) data += static_cast<char>('a' + (i * 7) % 26);
  const auto oneshot = Md4::hash(data);

  // Feed in awkward chunk sizes that straddle the 64-byte block boundary.
  for (std::size_t chunk : {1u, 7u, 63u, 64u, 65u, 129u, 997u}) {
    Md4 h;
    for (std::size_t off = 0; off < data.size(); off += chunk) {
      h.update(std::string_view(data).substr(off, chunk));
    }
    EXPECT_EQ(h.finish(), oneshot) << "chunk size " << chunk;
  }
}

TEST(Sha1, IncrementalMatchesOneShot) {
  std::string data;
  for (int i = 0; i < 777; ++i) data += static_cast<char>('A' + (i * 13) % 26);
  const auto oneshot = Sha1::hash(data);
  for (std::size_t chunk : {1u, 19u, 64u, 100u}) {
    Sha1 h;
    for (std::size_t off = 0; off < data.size(); off += chunk) {
      h.update(std::string_view(data).substr(off, chunk));
    }
    EXPECT_EQ(h.finish(), oneshot) << "chunk size " << chunk;
  }
}

TEST(Md4, ResetAllowsReuse) {
  Md4 h;
  h.update(std::string_view("junk"));
  (void)h.finish();
  h.reset();
  h.update(std::string_view("abc"));
  EXPECT_EQ(to_hex(h.finish()), "a448017aaf21d8525fc10ae87aa6729d");
}

TEST(Md4, LengthBoundaryPadding) {
  // 55, 56 and 64 byte inputs exercise the three padding branches.
  const std::string s55(55, 'x'), s56(56, 'x'), s64(64, 'x');
  EXPECT_NE(md4_hex(s55), md4_hex(s56));
  EXPECT_NE(md4_hex(s56), md4_hex(s64));
  // Cross-check a couple of block-boundary digests are stable.
  EXPECT_EQ(Md4::hash(s55), Md4::hash(s55));
}

}  // namespace
}  // namespace edhp
