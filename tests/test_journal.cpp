// The control-plane write-ahead journal: framing, torn-tail semantics,
// checksum quarantine, file persistence, and the spool-chunk integrity path
// that shares its checksum.

#include <gtest/gtest.h>

#include <bit>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "logbook/journal.hpp"
#include "logbook/spool.hpp"

namespace edhp::logbook {
namespace {

std::vector<std::uint8_t> payload(std::initializer_list<int> bytes) {
  std::vector<std::uint8_t> out;
  for (const int b : bytes) out.push_back(static_cast<std::uint8_t>(b));
  return out;
}

Journal sample_journal() {
  Journal j;
  j.append(JournalEntryType::launch, payload({1, 2, 3}));
  j.append(JournalEntryType::advertise, payload({}));
  j.append(JournalEntryType::chunk_stored, payload({9, 9, 9, 9, 9}));
  j.append(JournalEntryType::checkpoint, payload({42}));
  j.append(JournalEntryType::recovered, payload({7, 7}));
  return j;
}

TEST(Fnv1a, MatchesReferenceVectors) {
  // Standard FNV-1a 64-bit test vectors.
  EXPECT_EQ(fnv1a({}), 14695981039346656037ull);
  const std::uint8_t a = 'a';
  EXPECT_EQ(fnv1a(std::span(&a, 1)), 0xaf63dc4c8601ec8cull);
}

TEST(Journal, RoundTripsEntriesInOrder) {
  const Journal j = sample_journal();
  EXPECT_EQ(j.entries_appended(), 5u);
  const auto scan = j.scan();
  ASSERT_EQ(scan.entries.size(), 5u);
  EXPECT_TRUE(scan.quarantined.empty());
  EXPECT_FALSE(scan.torn_tail);
  EXPECT_EQ(scan.entries[0].type,
            static_cast<std::uint8_t>(JournalEntryType::launch));
  EXPECT_EQ(scan.entries[0].payload, payload({1, 2, 3}));
  EXPECT_EQ(scan.entries[1].payload, payload({}));
  EXPECT_EQ(scan.entries[3].type,
            static_cast<std::uint8_t>(JournalEntryType::checkpoint));
  EXPECT_EQ(scan.entries[4].payload, payload({7, 7}));
}

TEST(Journal, EmptyJournalScansClean) {
  const Journal j;
  const auto scan = j.scan();
  EXPECT_TRUE(scan.entries.empty());
  EXPECT_TRUE(scan.quarantined.empty());
  EXPECT_FALSE(scan.torn_tail);
}

// The satellite regression: EVERY strict prefix of a valid journal must scan
// without throwing, yield exactly the entries whose frames survived whole,
// and flag a torn tail iff the cut landed inside a frame.
TEST(Journal, ByteByByteTruncationSweep) {
  const Journal j = sample_journal();
  const auto full = j.scan();

  // Frame boundaries, from the intact scan.
  std::vector<std::size_t> boundaries;
  for (const auto& e : full.entries) boundaries.push_back(e.offset);
  boundaries.push_back(j.size_bytes());

  for (std::size_t cut = 0; cut < j.size_bytes(); ++cut) {
    std::vector<std::uint8_t> bytes(j.bytes().begin(),
                                    j.bytes().begin() + static_cast<long>(cut));
    JournalScan scan;
    ASSERT_NO_THROW(scan = scan_journal(bytes)) << "cut at " << cut;

    // How many whole frames fit below the cut?
    std::size_t whole = 0;
    while (whole + 1 < boundaries.size() && boundaries[whole + 1] <= cut) {
      ++whole;
    }
    ASSERT_EQ(scan.entries.size(), whole) << "cut at " << cut;
    for (std::size_t i = 0; i < whole; ++i) {
      EXPECT_EQ(scan.entries[i].payload, full.entries[i].payload)
          << "cut at " << cut << " entry " << i;
    }
    const bool inside_frame = cut != boundaries[whole];
    EXPECT_EQ(scan.torn_tail, inside_frame) << "cut at " << cut;
    if (inside_frame) {
      EXPECT_EQ(scan.torn_bytes, cut - boundaries[whole]) << "cut at " << cut;
    } else {
      EXPECT_EQ(scan.torn_bytes, 0u) << "cut at " << cut;
    }
    EXPECT_TRUE(scan.quarantined.empty()) << "cut at " << cut;
  }
}

// Same sweep with the journal ending in a clock-observation frame — the
// shape a crash leaves when the manager dies right after harvesting a clock
// sighting from a spool cut. Entries before the tear must survive, and the
// final observation must parse whole or vanish whole, never half.
TEST(Journal, TruncationSweepEndingInClockObservation) {
  Journal j;
  j.append(JournalEntryType::launch, payload({1, 2, 3}));
  j.append(JournalEntryType::chunk_stored, payload({9, 9}));
  // u16 honeypot + u64 true-time bits + u64 local-time bits, the type-18
  // wire shape the manager writes.
  std::vector<std::uint8_t> obs(2 + 8 + 8);
  obs[0] = 4;  // honeypot 4
  const auto true_bits = std::bit_cast<std::uint64_t>(1234.5);
  const auto local_bits = std::bit_cast<std::uint64_t>(1204.25);
  for (int i = 0; i < 8; ++i) {
    obs[2 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(true_bits >> (8 * i));
    obs[10 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(local_bits >> (8 * i));
  }
  j.append(JournalEntryType::clock_observation, obs);

  const auto full = j.scan();
  ASSERT_EQ(full.entries.size(), 3u);
  const std::size_t obs_offset = full.entries[2].offset;
  for (std::size_t cut = 0; cut < j.size_bytes(); ++cut) {
    std::vector<std::uint8_t> bytes(j.bytes().begin(),
                                    j.bytes().begin() + static_cast<long>(cut));
    JournalScan scan;
    ASSERT_NO_THROW(scan = scan_journal(bytes)) << "cut at " << cut;
    if (cut <= obs_offset) {
      // The observation frame is gone entirely; earlier entries intact.
      EXPECT_LE(scan.entries.size(), 2u) << "cut at " << cut;
      for (std::size_t i = 0; i < scan.entries.size(); ++i) {
        EXPECT_EQ(scan.entries[i].payload, full.entries[i].payload);
      }
    } else {
      // Mid-observation tear: never a partial type-18 payload.
      ASSERT_EQ(scan.entries.size(), 2u) << "cut at " << cut;
      EXPECT_TRUE(scan.torn_tail) << "cut at " << cut;
    }
  }
  // And the intact frame round-trips the observation bit-exactly.
  EXPECT_EQ(full.entries[2].type,
            static_cast<std::uint8_t>(JournalEntryType::clock_observation));
  EXPECT_EQ(full.entries[2].payload, obs);
}

// A complete frame whose payload was corrupted is quarantined — skipped,
// reported with its offset — and scanning continues with later frames.
TEST(Journal, MidStreamCorruptionIsQuarantinedNotFatal) {
  const Journal j = sample_journal();
  const auto full = j.scan();
  auto bytes = j.bytes();

  // Flip one payload byte of the middle (non-empty) entry.
  const auto& victim = full.entries[2];
  const std::size_t header = 1 + 4 + 8;
  bytes[victim.offset + header] ^= 0xFF;

  const auto scan = scan_journal(bytes);
  ASSERT_EQ(scan.quarantined.size(), 1u);
  EXPECT_EQ(scan.quarantined[0].offset, victim.offset);
  EXPECT_EQ(scan.quarantined[0].type, victim.type);
  ASSERT_EQ(scan.entries.size(), full.entries.size() - 1);
  // Entries after the corrupt frame still decode.
  EXPECT_EQ(scan.entries.back().payload, full.entries.back().payload);
  EXPECT_FALSE(scan.torn_tail);
}

TEST(Journal, SaveLoadRoundTrip) {
  const auto path =
      (std::filesystem::temp_directory_path() / "edhp_journal_rt.edhpjrn")
          .string();
  const Journal j = sample_journal();
  j.save(path);
  const Journal loaded = Journal::load(path);
  EXPECT_EQ(loaded.bytes(), j.bytes());
  EXPECT_EQ(loaded.entries_appended(), j.entries_appended());
  std::remove(path.c_str());
}

TEST(Journal, LoadRejectsBadMagicAndMissingFile) {
  const auto path =
      (std::filesystem::temp_directory_path() / "edhp_journal_bad.edhpjrn")
          .string();
  {
    std::ofstream f(path, std::ios::binary);
    f << "NOTAJRNL plus some trailing garbage";
  }
  EXPECT_THROW((void)Journal::load(path), std::runtime_error);
  std::remove(path.c_str());
  EXPECT_THROW((void)Journal::load(path), std::runtime_error);
}

TEST(Journal, LoadToleratesTornTailInFile) {
  const auto path =
      (std::filesystem::temp_directory_path() / "edhp_journal_torn.edhpjrn")
          .string();
  const Journal j = sample_journal();
  j.save(path);
  // Truncate the file mid-frame (drop the last 3 bytes).
  std::filesystem::resize_file(path, std::filesystem::file_size(path) - 3);
  const Journal loaded = Journal::load(path);
  const auto scan = loaded.scan();
  EXPECT_TRUE(scan.torn_tail);
  EXPECT_EQ(scan.entries.size(), sample_journal().scan().entries.size() - 1);
  std::remove(path.c_str());
}

// --- Spool-chunk integrity (shares fnv1a with the journal) -----------------

LogChunk make_chunk(std::uint16_t hp, std::uint64_t seq) {
  LogChunk chunk;
  chunk.honeypot = hp;
  chunk.seq = seq;
  chunk.epoch = 1;
  chunk.name_base = 0;
  chunk.names = {"", "file.avi"};
  LogRecord r;
  r.timestamp = 123.456 + static_cast<double>(seq);
  r.peer = 77;
  r.user = 88;
  r.honeypot = hp;
  r.name_ref = 1;
  chunk.records.push_back(r);
  chunk.checksum = chunk_checksum(chunk);
  return chunk;
}

TEST(SpoolIntegrity, ChecksumCoversNamesAndRecords) {
  auto chunk = make_chunk(3, 0);
  const auto base = chunk.checksum;
  chunk.records[0].peer ^= 1;
  EXPECT_NE(chunk_checksum(chunk), base);
  chunk.records[0].peer ^= 1;
  chunk.names[1] = "other.avi";
  EXPECT_NE(chunk_checksum(chunk), base);
  chunk.names[1] = "file.avi";
  EXPECT_EQ(chunk_checksum(chunk), base);
}

TEST(SpoolIntegrity, CorruptChunkIsQuarantinedNeverStored) {
  SpoolStore store;
  auto good = make_chunk(1, 0);
  EXPECT_EQ(store.ingest(good), SpoolStore::Ingest::stored);

  auto bad = make_chunk(1, 1);
  bad.records[0].user ^= 0xDEAD;  // corrupt after stamping
  EXPECT_EQ(store.ingest(bad), SpoolStore::Ingest::quarantined);
  EXPECT_EQ(store.chunks_quarantined(), 1u);
  ASSERT_EQ(store.quarantine().size(), 1u);
  EXPECT_EQ(store.quarantine()[0].honeypot, 1u);
  EXPECT_EQ(store.quarantine()[0].seq, 1u);
  // The quarantined chunk contributed nothing to the dataset.
  EXPECT_EQ(store.records_stored(), 1u);
  EXPECT_EQ(store.next_seq(1), 1u);

  // A clean re-send of the same sequence is accepted normally.
  EXPECT_EQ(store.ingest(make_chunk(1, 1)), SpoolStore::Ingest::stored);
  EXPECT_EQ(store.next_seq(1), 2u);
}

// A corruptor hurling endless distinct bad chunks must not balloon manager
// memory: refs are kept for the FIRST kQuarantineRefCap quarantines, the
// counter keeps the true total, and the overflow is reported.
TEST(SpoolIntegrity, QuarantineRefsAreCappedButStillCounted) {
  SpoolStore store;
  const std::uint64_t total = kQuarantineRefCap + 40;
  for (std::uint64_t i = 0; i < total; ++i) {
    auto bad = make_chunk(1, i);
    bad.records[0].user ^= 0xDEAD;
    ASSERT_EQ(store.ingest(bad), SpoolStore::Ingest::quarantined);
  }
  EXPECT_EQ(store.chunks_quarantined(), total);
  ASSERT_EQ(store.quarantine().size(), kQuarantineRefCap);
  EXPECT_EQ(store.quarantine_dropped(), total - kQuarantineRefCap);
  EXPECT_EQ(store.quarantine().front().seq, 0u);
  EXPECT_EQ(store.quarantine().back().seq, kQuarantineRefCap - 1);
  EXPECT_EQ(store.records_stored(), 0u);
}

TEST(SpoolCost, DeterministicAcrossPlatformsAndGrowsWithPayload) {
  // The cost is the serialized wire footprint, not sizeof(): fixed frame
  // header (22) + checksum (8), 2 + len per name, 56 per packed record.
  LogChunk empty;
  EXPECT_EQ(chunk_cost_bytes(empty), 30u);
  const auto chunk = make_chunk(1, 0);  // names "" + "file.avi", one record
  EXPECT_EQ(chunk_cost_bytes(chunk), 30u + 2 + (2 + 8) + 56);
  auto more = chunk;
  more.records.push_back(chunk.records[0]);
  EXPECT_EQ(chunk_cost_bytes(more), chunk_cost_bytes(chunk) + 56);
}

TEST(SpoolIntegrity, DuplicateStillDetectedAndLegacyChunksSkipVerification) {
  SpoolStore store;
  EXPECT_EQ(store.ingest(make_chunk(2, 0)), SpoolStore::Ingest::stored);
  EXPECT_EQ(store.ingest(make_chunk(2, 0)), SpoolStore::Ingest::duplicate);

  // checksum == 0 marks a pre-checksum chunk: verification is skipped.
  auto legacy = make_chunk(2, 1);
  legacy.records[0].user ^= 0xBEEF;
  legacy.checksum = 0;
  EXPECT_EQ(store.ingest(legacy), SpoolStore::Ingest::stored);
  EXPECT_EQ(store.chunks_quarantined(), 0u);
}

}  // namespace
}  // namespace edhp::logbook
