// Peer profile sampling: client mix, regions, reachability, bandwidth.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "peer/profile.hpp"

namespace edhp::peer {
namespace {

TEST(Profile, SamplesSpanClientMix) {
  Rng rng(1);
  BehaviorParams params;
  auto diurnal = sim::DiurnalProfile::european_2008();
  std::set<std::string> names;
  for (int i = 0; i < 2000; ++i) {
    names.insert(sample_profile(rng, params, diurnal).client_name);
  }
  // All six 2008-era client kinds should appear.
  EXPECT_EQ(names.size(), 6u);
  EXPECT_TRUE(names.contains("eMule 0.49b"));
}

TEST(Profile, HighIdFractionRespected) {
  Rng rng(2);
  BehaviorParams params;
  params.high_id_fraction = 0.25;
  auto diurnal = sim::DiurnalProfile::flat();
  int reachable = 0;
  constexpr int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (sample_profile(rng, params, diurnal).reachable) ++reachable;
  }
  EXPECT_NEAR(reachable, n / 4.0, n * 0.02);
}

TEST(Profile, RegionsFollowMixtureWeights) {
  Rng rng(3);
  BehaviorParams params;
  auto diurnal = sim::DiurnalProfile::european_2008();
  std::map<double, int> region_counts;
  constexpr int n = 20000;
  for (int i = 0; i < n; ++i) {
    ++region_counts[sample_profile(rng, params, diurnal).tz_offset_hours];
  }
  ASSERT_EQ(region_counts.size(), diurnal.regions().size());
  // The dominant region (CET, weight 0.58) should dominate the samples.
  EXPECT_NEAR(region_counts[0.0], 0.58 * n, n * 0.02);
}

TEST(Profile, BandwidthPositiveWithFloor) {
  Rng rng(4);
  BehaviorParams params;
  auto diurnal = sim::DiurnalProfile::flat();
  for (int i = 0; i < 2000; ++i) {
    const auto p = sample_profile(rng, params, diurnal);
    EXPECT_GE(p.upload_bps, 16.0 * 1024);
    EXPECT_LT(p.upload_bps, 10e6);
  }
}

TEST(Profile, UserHashesDistinct) {
  Rng rng(5);
  BehaviorParams params;
  auto diurnal = sim::DiurnalProfile::flat();
  std::set<UserId> users;
  for (int i = 0; i < 5000; ++i) {
    users.insert(sample_profile(rng, params, diurnal).user);
  }
  EXPECT_EQ(users.size(), 5000u);
}

}  // namespace
}  // namespace edhp::peer
