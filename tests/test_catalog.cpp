// File catalog: construction, popularity skew, cache sampling, private
// files, name realism.

#include <gtest/gtest.h>

#include <unordered_set>

#include "common/text.hpp"
#include "peer/catalog.hpp"

namespace edhp::peer {
namespace {

TEST(FileCatalog, ConstructsRequestedSize) {
  FileCatalog c(CatalogParams{1000, 0.9, 0.0}, Rng(1));
  EXPECT_EQ(c.size(), 1000u);
  EXPECT_THROW((void)c.at(1000), std::out_of_range);
}

TEST(FileCatalog, IdsAreDistinct) {
  FileCatalog c(CatalogParams{2000, 0.9, 0.0}, Rng(2));
  std::unordered_set<FileId> ids;
  for (std::size_t i = 0; i < c.size(); ++i) {
    ids.insert(c.at(i).id);
  }
  EXPECT_EQ(ids.size(), c.size());
}

TEST(FileCatalog, PopularityDecreasesWithRank) {
  FileCatalog c(CatalogParams{100, 0.9, 0.0}, Rng(3));
  EXPECT_GT(c.at(0).popularity, c.at(50).popularity);
  EXPECT_GT(c.at(50).popularity, c.at(99).popularity);
}

TEST(FileCatalog, SamplePrefersPopularRanks) {
  FileCatalog c(CatalogParams{1000, 1.0, 0.0}, Rng(4));
  Rng rng(5);
  std::size_t low_ranks = 0;
  constexpr int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (c.sample(rng) < 100) ++low_ranks;
  }
  // Top 10% of ranks should draw far more than 10% of samples.
  EXPECT_GT(low_ranks, n / 4);
}

TEST(FileCatalog, CacheEntriesDistinctWithoutTail) {
  FileCatalog c(CatalogParams{500, 0.9, 0.0}, Rng(6));
  Rng rng(7);
  const auto cache = c.sample_cache(rng, 50);
  EXPECT_GE(cache.size(), 40u);  // bounded retries may fall slightly short
  std::unordered_set<FileId> ids;
  for (const auto& f : cache) ids.insert(f.id);
  EXPECT_EQ(ids.size(), cache.size());
}

TEST(FileCatalog, UniqueTailProducesPrivateFiles) {
  FileCatalog c(CatalogParams{500, 0.9, 1.0}, Rng(8));  // all private
  Rng rng(9);
  const auto cache = c.sample_cache(rng, 30);
  EXPECT_EQ(cache.size(), 30u);
  std::unordered_set<FileId> catalog_ids;
  for (std::size_t i = 0; i < c.size(); ++i) catalog_ids.insert(c.at(i).id);
  for (const auto& f : cache) {
    EXPECT_FALSE(catalog_ids.contains(f.id)) << "private file is in catalog";
    EXPECT_EQ(f.popularity, 0.0);
    EXPECT_GT(f.size, 0u);
  }
}

TEST(FileCatalog, PrivateFilesAreDistinct) {
  FileCatalog c(CatalogParams{10, 0.9, 0.0}, Rng(10));
  Rng rng(11);
  std::unordered_set<FileId> ids;
  for (int i = 0; i < 1000; ++i) {
    ids.insert(c.make_private_file(rng).id);
  }
  EXPECT_EQ(ids.size(), 1000u);
}

TEST(FileCatalog, NamesTokenizeIntoWords) {
  FileCatalog c(CatalogParams{50, 0.9, 0.0}, Rng(12));
  for (std::size_t i = 0; i < c.size(); ++i) {
    const auto words = tokenize(c.at(i).name);
    EXPECT_GE(words.size(), 3u) << c.at(i).name;
  }
}

TEST(FileCatalog, SizeMixtureSpansOrdersOfMagnitude) {
  FileCatalog c(CatalogParams{5000, 0.9, 0.0}, Rng(13));
  std::uint32_t smallest = UINT32_MAX, largest = 0;
  for (std::size_t i = 0; i < c.size(); ++i) {
    smallest = std::min(smallest, c.at(i).size);
    largest = std::max(largest, c.at(i).size);
  }
  EXPECT_LT(smallest, 10'000'000u);     // documents/songs
  EXPECT_GT(largest, 400'000'000u);     // video
  EXPECT_LE(largest, 4'000'000'000u);   // wire-format cap
}

TEST(FileCatalog, RejectsEmpty) {
  EXPECT_THROW(FileCatalog(CatalogParams{0, 0.9, 0.0}, Rng(1)),
               std::invalid_argument);
}

TEST(SynthFileName, DeterministicPerRngState) {
  Rng a(42), b(42);
  EXPECT_EQ(synth_file_name(7, a), synth_file_name(7, b));
}

}  // namespace
}  // namespace edhp::peer
