// Multi-server deployment scenario: survey-driven assignment, per-server
// subpopulations, global-view union.

#include <gtest/gtest.h>

#include <cstring>

#include "analysis/log_stats.hpp"
#include "scenario/multi_server.hpp"

namespace edhp::scenario {
namespace {

const MultiServerResult& mini_run() {
  static const MultiServerResult result = [] {
    MultiServerConfig config;
    config.scale = 0.03;
    config.days = 4;
    config.honeypots = 6;
    config.server_sizes = {0.5, 0.3, 0.2};
    return run_multi_server(config);
  }();
  return result;
}

TEST(MultiServer, SurveyRanksServersBySize) {
  const auto& r = mini_run();
  ASSERT_EQ(r.survey.size(), 3u);
  // Busiest first, matching the configured resident shares.
  EXPECT_EQ(r.survey[0].first, "server-0");
  EXPECT_GE(r.survey[0].second, r.survey[1].second);
  EXPECT_GE(r.survey[1].second, r.survey[2].second);
  EXPECT_GT(r.survey[0].second, 0u);
}

TEST(MultiServer, BusyServersGetMoreHoneypots) {
  const auto& r = mini_run();
  std::vector<int> per_server(3, 0);
  for (auto s : r.server_of_honeypot) {
    ASSERT_LT(s, 3u);
    ++per_server[s];
  }
  EXPECT_GE(per_server[0], per_server[2]);
  EXPECT_GT(per_server[0], 0);
}

TEST(MultiServer, EveryAssignedHoneypotObservesPeers) {
  const auto& r = mini_run();
  ASSERT_EQ(r.peers_per_honeypot.size(), 6u);
  for (std::size_t h = 0; h < r.peers_per_honeypot.size(); ++h) {
    EXPECT_GT(r.peers_per_honeypot[h], 0u) << "honeypot " << h;
  }
}

TEST(MultiServer, UnionExceedsBestSingleHoneypot) {
  const auto& r = mini_run();
  std::uint64_t best = 0;
  for (auto v : r.peers_per_honeypot) best = std::max(best, v);
  EXPECT_GT(r.base.distinct_peers, best);
  // Cross-server observation: honeypots on different servers see largely
  // disjoint subpopulations, so the union is much bigger than any single
  // honeypot's view.
  EXPECT_GT(static_cast<double>(r.base.distinct_peers),
            1.5 * static_cast<double>(best));
}

TEST(MultiServer, HoneypotsOnDifferentServersSeeDifferentPeers) {
  const auto& r = mini_run();
  const auto sets = analysis::peer_sets_by_honeypot(r.base.merged, 6);
  // Find two honeypots on different servers and compare overlap with two on
  // the same server.
  std::optional<std::size_t> a, b_same, b_other;
  for (std::size_t h = 1; h < 6; ++h) {
    if (!a) {
      a = 0;
    }
    if (r.server_of_honeypot[h] == r.server_of_honeypot[0] && !b_same) {
      b_same = h;
    }
    if (r.server_of_honeypot[h] != r.server_of_honeypot[0] && !b_other) {
      b_other = h;
    }
  }
  ASSERT_TRUE(a && b_same && b_other);
  const auto same_overlap = sets[*a].intersect_count(sets[*b_same]);
  const auto cross_overlap = sets[*a].intersect_count(sets[*b_other]);
  // Peers are homed on one server; only peer exchange leaks providers
  // across groups, so same-server overlap must dominate.
  EXPECT_GT(same_overlap, cross_overlap)
      << "same-server honeypots should share far more peers";
}

// Golden baseline: with the fault model disabled (default), the campaign
// must stay bit-identical run over run and across refactors. A change here
// means a dormant code path consumed an RNG draw or reordered events.
TEST(MultiServer, GoldenUnchangedWithFaultsDisabled) {
  const auto& r = mini_run();
  EXPECT_EQ(r.base.merged.records.size(), 12778u);
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  for (const auto& rec : r.base.merged.records) {
    std::uint64_t t_bits = 0;
    std::memcpy(&t_bits, &rec.timestamp, 8);
    mix(t_bits);
    mix(rec.peer);
    mix(rec.user);
    mix(static_cast<std::uint64_t>(rec.honeypot));
    mix(static_cast<std::uint64_t>(rec.type));
  }
  EXPECT_EQ(h, 0x4187cf786e73a860ull);
  EXPECT_EQ(r.base.faults.host_crashes, 0u);
  EXPECT_EQ(r.base.recovery.records_lost_tail, 0u);
}

// Third leg of the lazy-vs-eager determinism contract (distributed and
// greedy live in test_scenario.cpp): eager materialization must reproduce
// the lazy campaign — and therefore the golden fingerprint — bit for bit.
TEST(MultiServer, LazyAndEagerCampaignsProduceIdenticalDatasets) {
  MultiServerConfig config;
  config.scale = 0.03;
  config.days = 4;
  config.honeypots = 6;
  config.server_sizes = {0.5, 0.3, 0.2};
  config.population_mode = peer::PopulationMode::legacy_eager;
  const auto eager = run_multi_server(config);
  const auto& lazy = mini_run();  // default mode is lazy
  ASSERT_EQ(eager.base.merged.records.size(),
            lazy.base.merged.records.size());
  for (std::size_t i = 0; i < eager.base.merged.records.size(); ++i) {
    const auto& a = eager.base.merged.records[i];
    const auto& b = lazy.base.merged.records[i];
    ASSERT_EQ(a.timestamp, b.timestamp) << "record " << i;
    ASSERT_EQ(a.peer, b.peer) << "record " << i;
    ASSERT_EQ(a.user, b.user) << "record " << i;
    ASSERT_EQ(a.honeypot, b.honeypot) << "record " << i;
    ASSERT_EQ(a.type, b.type) << "record " << i;
  }
  EXPECT_EQ(eager.base.net_nodes_retired, 0u);
  EXPECT_GT(lazy.base.net_nodes_retired, 0u);
}

TEST(MultiServer, MergedLogIsStage2AndOrdered) {
  const auto& r = mini_run();
  EXPECT_EQ(r.base.merged.header.peer_kind, logbook::PeerIdKind::stage2_index);
  for (std::size_t i = 1; i < r.base.merged.records.size(); ++i) {
    EXPECT_LE(r.base.merged.records[i - 1].timestamp,
              r.base.merged.records[i].timestamp);
  }
}

}  // namespace
}  // namespace edhp::scenario
