// The Fig 8/9 crawler: discovery, per-source encounter chains, strategy
// asymmetry, plateaus, and crash resilience.

#include <gtest/gtest.h>

#include "honeypot/honeypot.hpp"
#include "peer/top_peer.hpp"
#include "server/server.hpp"

namespace edhp::peer {
namespace {

class TopPeerTest : public ::testing::Test {
 protected:
  // run() would never return while honeypot keep-alive timers are armed;
  // settle() drains a bounded window instead.
  void settle(double span = 180.0) { s.run_until(s.now() + span); }

  sim::Simulation s{51};
  net::Network net{s};
  net::NodeId server_node = net.add_node(true);
  server::Server server{net, server_node, {}};
  FileId target = FileId::from_words(0xAA, 0xBB);
  std::vector<std::unique_ptr<honeypot::Honeypot>> pots;

  void SetUp() override { server.start(); }

  honeypot::Honeypot& spawn_honeypot(honeypot::ContentStrategy strategy) {
    honeypot::HoneypotConfig c;
    c.id = static_cast<std::uint16_t>(pots.size());
    c.name = "hp-" + std::to_string(pots.size());
    c.strategy = strategy;
    c.harvest_shared_lists = false;
    pots.push_back(std::make_unique<honeypot::Honeypot>(
        net, net.add_node(true), std::move(c)));
    pots.back()->connect_to_server(honeypot::ServerRef{server_node, "srv", 4661});
    settle();
    pots.back()->advertise({honeypot::AdvertisedFile{target, "bait.avi", 1000}});
    settle();
    return *pots.back();
  }

  PeerProfile crawler_profile() {
    PeerProfile p;
    p.user = UserId::from_words(9, 9);
    p.client_name = "MLDonkey 2.9";
    p.client_version = 0x29;
    p.reachable = true;
    p.upload_bps = 100 * 1024;
    return p;
  }

  TopPeerParams fast_params() {
    TopPeerParams p;
    p.rounds_per_encounter = 2;
    p.gap_after_data = minutes(10);
    p.gap_after_timeout = minutes(15);
    p.request_timeout = 30.0;
    p.active_period_mean = days(30);  // no plateaus unless tested
    return p;
  }

  std::uint64_t hellos_logged(const honeypot::Honeypot& hp) {
    std::uint64_t n = 0;
    for (const auto& r : hp.log().records) {
      if (r.type == logbook::QueryType::hello) ++n;
    }
    return n;
  }
};

TEST_F(TopPeerTest, DiscoversAllProvidersViaServer) {
  auto& nc = spawn_honeypot(honeypot::ContentStrategy::no_content);
  auto& rc = spawn_honeypot(honeypot::ContentStrategy::random_content);
  TopPeer crawler(net, server_node, crawler_profile(), target, fast_params(),
                  Rng(1));
  crawler.start();
  s.run_until(s.now() + days(1));
  ASSERT_EQ(crawler.per_source().size(), 2u);
  EXPECT_GT(crawler.per_source()[0].hellos, 0u);
  EXPECT_GT(crawler.per_source()[1].hellos, 0u);
  EXPECT_GT(hellos_logged(nc), 0u);
  EXPECT_GT(hellos_logged(rc), 0u);
  crawler.stop();
}

TEST_F(TopPeerTest, RandomContentGetsMoreQueriesThanNoContent) {
  auto& nc = spawn_honeypot(honeypot::ContentStrategy::no_content);
  auto& rc = spawn_honeypot(honeypot::ContentStrategy::random_content);
  TopPeer crawler(net, server_node, crawler_profile(), target, fast_params(),
                  Rng(2));
  crawler.start();
  s.run_until(s.now() + days(4));
  crawler.stop();

  std::uint64_t nc_su = 0, rc_su = 0, nc_rp = 0, rc_rp = 0;
  for (const auto& st : crawler.per_source()) {
    const bool is_rc = st.client_id == net.info(rc.node()).ip.value();
    (is_rc ? rc_su : nc_su) += st.start_uploads;
    (is_rc ? rc_rp : nc_rp) += st.request_parts;
  }
  (void)nc;
  EXPECT_GT(rc_su, nc_su);
  EXPECT_GT(rc_rp, nc_rp);
  EXPECT_GT(nc_su, 0u);
  EXPECT_GT(nc_rp, 0u);
}

TEST_F(TopPeerTest, QueriesArriveInHoneypotLogs) {
  auto& hp = spawn_honeypot(honeypot::ContentStrategy::random_content);
  TopPeer crawler(net, server_node, crawler_profile(), target, fast_params(),
                  Rng(3));
  crawler.start();
  s.run_until(s.now() + days(1));
  crawler.stop();
  // Crawler-side counters equal honeypot-side log entries.
  std::uint64_t hp_su = 0;
  for (const auto& r : hp.log().records) {
    if (r.type == logbook::QueryType::start_upload) ++hp_su;
  }
  ASSERT_EQ(crawler.per_source().size(), 1u);
  EXPECT_EQ(hp_su, crawler.per_source()[0].start_uploads);
}

TEST_F(TopPeerTest, PlateausSuppressActivity) {
  spawn_honeypot(honeypot::ContentStrategy::random_content);
  auto params = fast_params();
  params.active_period_mean = hours(6);
  params.pause_min = hours(24);
  params.pause_max = hours(30);
  TopPeer crawler(net, server_node, crawler_profile(), target, params, Rng(4));
  crawler.start();
  // Track activity per 6h window over 4 days; with ~6h active periods and
  // day-long pauses there must be at least one silent window.
  std::vector<std::uint64_t> per_window;
  std::uint64_t last = 0;
  for (int w = 0; w < 16; ++w) {
    s.run_until(s.now() + hours(6));
    const auto total = crawler.per_source().empty()
                           ? 0
                           : crawler.per_source()[0].start_uploads;
    per_window.push_back(total - last);
    last = total;
  }
  crawler.stop();
  const auto silent =
      std::count(per_window.begin(), per_window.end(), std::uint64_t{0});
  EXPECT_GE(silent, 1) << "expected at least one idle plateau window";
  EXPECT_GT(last, 0u) << "crawler should still have done work overall";
}

TEST_F(TopPeerTest, SurvivesProviderCrash) {
  auto& hp = spawn_honeypot(honeypot::ContentStrategy::random_content);
  TopPeer crawler(net, server_node, crawler_profile(), target, fast_params(),
                  Rng(5));
  crawler.start();
  s.run_until(s.now() + hours(2));
  hp.crash();
  EXPECT_NO_THROW(s.run_until(s.now() + days(1)));
  // Chain stays alive: once the honeypot is gone, encounters fail but keep
  // rescheduling; no crash, no runaway.
  crawler.stop();
}

TEST_F(TopPeerTest, NoProvidersIsGraceful) {
  TopPeer crawler(net, server_node, crawler_profile(), target, fast_params(),
                  Rng(6));
  crawler.start();
  EXPECT_NO_THROW(s.run_until(s.now() + days(1)));
  EXPECT_TRUE(crawler.per_source().empty());
  crawler.stop();
}

}  // namespace
}  // namespace edhp::peer
