// Directory server over the simulated transport: login/ID assignment,
// offer indexing, source queries, search, disconnect cleanup.

#include <gtest/gtest.h>

#include "server/server.hpp"

namespace edhp::server {
namespace {

using proto::AnyMessage;
using proto::Channel;

class ServerTest : public ::testing::Test {
 protected:
  sim::Simulation s{7};
  net::Network net{s};
  net::NodeId server_node = net.add_node(true);
  Server server{net, server_node, {}};

  struct Client {
    net::EndpointPtr ep;
    std::vector<AnyMessage> inbox;
    std::uint32_t client_id = 0;
  };

  /// Connect a node to the server, log in, run to idle.
  Client login(net::NodeId node, std::uint64_t user_seed = 1) {
    Client c;
    net.connect(node, server_node, [&](net::EndpointPtr ep) {
      c.ep = std::move(ep);
      ASSERT_TRUE(c.ep);
      c.ep->on_message([&](net::Bytes p) {
        auto msg = proto::decode(Channel::client_server, p);
        if (const auto* id = std::get_if<proto::IdChange>(&msg)) {
          c.client_id = id->client_id;
        }
        c.inbox.push_back(std::move(msg));
      });
      proto::LoginRequest login_msg;
      login_msg.user = UserId::from_words(user_seed, user_seed);
      login_msg.port = 4662;
      login_msg.tags = {proto::Tag::string_tag(proto::kTagName, "test-client")};
      c.ep->send(proto::encode(AnyMessage{login_msg}));
    });
    s.run();
    return c;
  }

  static proto::PublishedFile pub(std::uint64_t n, const std::string& name) {
    proto::PublishedFile f;
    f.file = FileId::from_words(n, n);
    f.name = name;
    f.size = 100;
    return f;
  }

  void SetUp() override { server.start(); }
};

TEST_F(ServerTest, ReachableClientGetsHighId) {
  auto node = net.add_node(true);
  auto c = login(node);
  ASSERT_FALSE(c.inbox.empty());
  EXPECT_TRUE(std::holds_alternative<proto::IdChange>(c.inbox[0]));
  EXPECT_TRUE(ClientId(c.client_id).is_high());
  EXPECT_EQ(c.client_id, net.info(node).ip.value());
  EXPECT_EQ(server.session_count(), 1u);
}

TEST_F(ServerTest, FirewalledClientGetsLowId) {
  auto c = login(net.add_node(false));
  EXPECT_TRUE(ClientId(c.client_id).is_low());
  EXPECT_GT(c.client_id, 0u);
}

TEST_F(ServerTest, LowIdsAreDistinct) {
  auto c1 = login(net.add_node(false), 1);
  auto c2 = login(net.add_node(false), 2);
  EXPECT_NE(c1.client_id, c2.client_id);
}

TEST_F(ServerTest, OfferIndexesFilesAndGetSourcesFindsThem) {
  auto provider = login(net.add_node(true), 1);
  provider.ep->send(proto::encode(AnyMessage{
      proto::OfferFiles{{pub(5, "file.avi")}}}));
  s.run();
  EXPECT_EQ(server.index().file_count(), 1u);

  auto seeker = login(net.add_node(true), 2);
  seeker.ep->send(
      proto::encode(AnyMessage{proto::GetSources{FileId::from_words(5, 5)}}));
  s.run();
  ASSERT_GE(seeker.inbox.size(), 2u);
  const auto* found = std::get_if<proto::FoundSources>(&seeker.inbox.back());
  ASSERT_NE(found, nullptr);
  ASSERT_EQ(found->sources.size(), 1u);
  EXPECT_EQ(found->sources[0].client_id, provider.client_id);
}

TEST_F(ServerTest, GetSourcesForUnknownFileReturnsEmpty) {
  auto c = login(net.add_node(true));
  c.ep->send(
      proto::encode(AnyMessage{proto::GetSources{FileId::from_words(9, 9)}}));
  s.run();
  const auto* found = std::get_if<proto::FoundSources>(&c.inbox.back());
  ASSERT_NE(found, nullptr);
  EXPECT_TRUE(found->sources.empty());
}

TEST_F(ServerTest, SearchReturnsMatches) {
  auto provider = login(net.add_node(true), 1);
  provider.ep->send(proto::encode(AnyMessage{proto::OfferFiles{
      {pub(1, "Linux.Distribution.2008.iso"), pub(2, "music.mp3")}}}));
  s.run();

  auto seeker = login(net.add_node(true), 2);
  seeker.ep->send(proto::encode(AnyMessage{proto::SearchRequest{"linux 2008"}}));
  s.run();
  const auto* results = std::get_if<proto::SearchResult>(&seeker.inbox.back());
  ASSERT_NE(results, nullptr);
  ASSERT_EQ(results->files.size(), 1u);
  EXPECT_EQ(results->files[0].file, FileId::from_words(1, 1));
}

TEST_F(ServerTest, DisconnectRemovesProviders) {
  auto provider = login(net.add_node(true), 1);
  provider.ep->send(proto::encode(AnyMessage{proto::OfferFiles{{pub(5, "f")}}}));
  s.run();
  EXPECT_EQ(server.index().file_count(), 1u);
  provider.ep->close();
  s.run();
  EXPECT_EQ(server.index().file_count(), 0u);
  EXPECT_EQ(server.session_count(), 0u);
}

TEST_F(ServerTest, QueriesBeforeLoginIgnored) {
  net::EndpointPtr raw;
  std::size_t replies = 0;
  net.connect(net.add_node(true), server_node, [&](net::EndpointPtr ep) {
    raw = std::move(ep);
    raw->on_message([&](net::Bytes) { ++replies; });
    raw->send(proto::encode(AnyMessage{proto::OfferFiles{{pub(1, "f")}}}));
    raw->send(
        proto::encode(AnyMessage{proto::GetSources{FileId::from_words(1, 1)}}));
  });
  s.run();
  EXPECT_EQ(server.index().file_count(), 0u);
  EXPECT_EQ(replies, 0u);
  EXPECT_EQ(server.counters().get("offer_before_login"), 1u);
}

TEST_F(ServerTest, MalformedPacketClosesSession) {
  net::EndpointPtr raw;
  net.connect(net.add_node(true), server_node, [&](net::EndpointPtr ep) {
    raw = std::move(ep);
    raw->send(net::Bytes{0x01, 0x02, 0x03});
  });
  s.run();
  EXPECT_EQ(server.session_count(), 0u);
  EXPECT_EQ(server.counters().get("decode_errors"), 1u);
}

TEST_F(ServerTest, StopDropsEverything) {
  auto provider = login(net.add_node(true), 1);
  provider.ep->send(proto::encode(AnyMessage{proto::OfferFiles{{pub(5, "f")}}}));
  s.run();
  server.stop();
  EXPECT_EQ(server.session_count(), 0u);
  EXPECT_EQ(server.index().file_count(), 0u);
  // New connections are refused while stopped.
  bool failed = false;
  net.connect(net.add_node(true), server_node,
              [&](net::EndpointPtr ep) { failed = (ep == nullptr); });
  s.run();
  EXPECT_TRUE(failed);
}

TEST_F(ServerTest, ReofferUpdatesKeepAliveSemantics) {
  auto provider = login(net.add_node(true), 1);
  provider.ep->send(proto::encode(AnyMessage{proto::OfferFiles{{pub(1, "a")}}}));
  provider.ep->send(proto::encode(
      AnyMessage{proto::OfferFiles{{pub(1, "a"), pub(2, "b")}}}));
  s.run();
  EXPECT_EQ(server.index().file_count(), 2u);
  EXPECT_EQ(server.counters().get("offers"), 2u);
}

}  // namespace
}  // namespace edhp::server
