// Byzantine infrastructure: plan generation, server lie windows, honeypot
// detection (self-probes, forged lists, replayed HELLOs), manager health
// scoring + quarantine, journal replay of the integrity entry types, and the
// campaign-level zero-leak / retention acceptance bar.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "fault/byzantine.hpp"
#include "honeypot/manager.hpp"
#include "logbook/journal.hpp"
#include "scenario/scenario.hpp"
#include "server/server.hpp"

namespace edhp {
namespace {

using fault::ByzantineConfig;
using fault::ByzantineEvent;
using fault::ByzantineKind;
using fault::ByzantinePlan;

// --- ByzantinePlan ----------------------------------------------------------

ByzantineConfig all_behaviors() {
  ByzantineConfig config;
  config.enabled = true;
  config.offer_drop_mtbf = days(2);
  config.offer_truncate_mtbf = days(2);
  config.stale_index_mtbf = days(2);
  config.fabricate_mtbf = days(2);
  config.corrupt_search_mtbf = days(2);
  config.forge_list_mtba = hours(6);
  config.replay_hello_mtba = hours(6);
  return config;
}

TEST(ByzantinePlan, DeterministicInConfigAndSeed) {
  const auto config = all_behaviors();
  const auto a = ByzantinePlan::generate(config, 8, 2, days(8), Rng(7));
  const auto b = ByzantinePlan::generate(config, 8, 2, days(8), Rng(7));
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a.events(), b.events());

  const auto c = ByzantinePlan::generate(config, 8, 2, days(8), Rng(8));
  EXPECT_NE(a.events(), c.events());
}

TEST(ByzantinePlan, DisabledConfigYieldsEmptyPlan) {
  ByzantineConfig config;  // enabled = false
  EXPECT_TRUE(ByzantinePlan::generate(config, 24, 3, days(32), Rng(1)).empty());
}

TEST(ByzantinePlan, EventsSortedWithSubjectsInRange) {
  const auto plan =
      ByzantinePlan::generate(all_behaviors(), 6, 3, days(16), Rng(5));
  ASSERT_GT(plan.size(), 20u);
  for (std::size_t i = 1; i < plan.size(); ++i) {
    EXPECT_LE(plan.events()[i - 1].at, plan.events()[i].at);
  }
  for (const auto& e : plan.events()) {
    EXPECT_GE(e.at, 0.0);
    EXPECT_LT(e.at, days(16));
    const bool peer_behavior = e.kind == ByzantineKind::forge_shared_list ||
                               e.kind == ByzantineKind::replay_hello;
    EXPECT_LT(e.subject, peer_behavior ? 6u : 3u);
  }
}

TEST(ByzantinePlan, AddingOneBehaviorDoesNotShiftAnother) {
  ByzantineConfig drops_only;
  drops_only.enabled = true;
  drops_only.offer_drop_mtbf = days(2);

  ByzantineConfig everything = all_behaviors();

  const auto filter_drops = [](const ByzantinePlan& plan) {
    std::vector<ByzantineEvent> out;
    for (const auto& e : plan.events()) {
      if (e.kind == ByzantineKind::offer_drop_begin ||
          e.kind == ByzantineKind::offer_drop_end) {
        out.push_back(e);
      }
    }
    return out;
  };
  const auto a =
      filter_drops(ByzantinePlan::generate(drops_only, 8, 2, days(8), Rng(3)));
  const auto b =
      filter_drops(ByzantinePlan::generate(everything, 8, 2, days(8), Rng(3)));
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace edhp

// --- Server lie windows ------------------------------------------------------

namespace edhp::server {
namespace {

using proto::AnyMessage;
using proto::Channel;

class ByzantineServerTest : public ::testing::Test {
 protected:
  sim::Simulation s{7};
  net::Network net{s};
  net::NodeId server_node = net.add_node(true);
  Server server{net, server_node, {}};

  struct Client {
    net::EndpointPtr ep;
    std::vector<AnyMessage> inbox;
    std::uint32_t client_id = 0;
  };

  Client login(net::NodeId node, std::uint64_t user_seed = 1) {
    Client c;
    net.connect(node, server_node, [&](net::EndpointPtr ep) {
      c.ep = std::move(ep);
      ASSERT_TRUE(c.ep);
      c.ep->on_message([&](net::Bytes p) {
        auto msg = proto::decode(Channel::client_server, p);
        if (const auto* id = std::get_if<proto::IdChange>(&msg)) {
          c.client_id = id->client_id;
        }
        c.inbox.push_back(std::move(msg));
      });
      proto::LoginRequest login_msg;
      login_msg.user = UserId::from_words(user_seed, user_seed);
      login_msg.port = 4662;
      login_msg.tags = {proto::Tag::string_tag(proto::kTagName, "test-client")};
      c.ep->send(proto::encode(AnyMessage{login_msg}));
    });
    s.run();
    return c;
  }

  static proto::PublishedFile pub(std::uint64_t n, const std::string& name) {
    proto::PublishedFile f;
    f.file = FileId::from_words(n, n);
    f.name = name;
    f.size = 100;
    return f;
  }

  void SetUp() override { server.start(); }
};

TEST_F(ByzantineServerTest, DropOffersWindowIgnoresListsAndAuditsClean) {
  auto provider = login(net.add_node(true), 1);
  server.set_drop_offers(true);
  provider.ep->send(
      proto::encode(AnyMessage{proto::OfferFiles{{pub(5, "a.avi")}}}));
  s.run();
  EXPECT_EQ(server.index().file_count(), 0u);
  EXPECT_GT(server.counters().get("byz_offers_dropped"), 0u);
  EXPECT_EQ(server.index_audit(), 0u);  // the lie never corrupts the index

  server.set_drop_offers(false);
  provider.ep->send(
      proto::encode(AnyMessage{proto::OfferFiles{{pub(5, "a.avi")}}}));
  s.run();
  EXPECT_EQ(server.index().file_count(), 1u);
}

TEST_F(ByzantineServerTest, TruncateOffersKeepsOnlyPrefix) {
  auto provider = login(net.add_node(true), 1);
  server.set_truncate_offers(true, 0.5);
  provider.ep->send(proto::encode(AnyMessage{proto::OfferFiles{
      {pub(1, "a.avi"), pub(2, "b.avi"), pub(3, "c.avi"), pub(4, "d.avi")}}}));
  s.run();
  EXPECT_EQ(server.index().file_count(), 2u);
  EXPECT_GT(server.counters().get("byz_offers_truncated"), 0u);
  EXPECT_EQ(server.index_audit(), 0u);
}

TEST_F(ByzantineServerTest, StaleIndexDefersOffersUntilWindowEnds) {
  auto provider = login(net.add_node(true), 1);
  server.set_stale_index(true);
  provider.ep->send(
      proto::encode(AnyMessage{proto::OfferFiles{{pub(9, "late.avi")}}}));
  s.run();
  EXPECT_EQ(server.index().file_count(), 0u);  // deferred, not indexed
  EXPECT_GT(server.counters().get("byz_offers_deferred"), 0u);

  server.set_stale_index(false);  // window ends: deferred offers land
  s.run();
  EXPECT_EQ(server.index().file_count(), 1u);
  EXPECT_GT(server.counters().get("byz_offers_late_indexed"), 0u);
  EXPECT_EQ(server.index_audit(), 0u);
}

TEST_F(ByzantineServerTest, FabricatedSourcesPadRepliesOnlyDuringWindow) {
  auto provider = login(net.add_node(true), 1);
  provider.ep->send(
      proto::encode(AnyMessage{proto::OfferFiles{{pub(5, "real.avi")}}}));
  s.run();

  auto seeker = login(net.add_node(true), 2);
  const auto ask = [&] {
    seeker.inbox.clear();
    seeker.ep->send(
        proto::encode(AnyMessage{proto::GetSources{FileId::from_words(5, 5)}}));
    s.run();
    for (const auto& m : seeker.inbox) {
      if (const auto* found = std::get_if<proto::FoundSources>(&m)) {
        return found->sources;
      }
    }
    return std::vector<proto::SourceEntry>{};
  };

  const auto honest = ask();
  ASSERT_EQ(honest.size(), 1u);

  server.set_fabricate_sources(true, 3, 42);
  const auto lied = ask();
  EXPECT_EQ(lied.size(), 4u);  // 1 real + 3 forged
  std::size_t forged = 0;
  for (const auto& src : lied) {
    if ((src.client_id & 0x80000000u) != 0 &&
        src.client_id != honest[0].client_id) {
      ++forged;
    }
  }
  EXPECT_EQ(forged, 3u);  // forged entries are nonexistent HighID peers
  EXPECT_GT(server.counters().get("byz_sources_fabricated"), 0u);
  EXPECT_EQ(server.index_audit(), 0u);  // forgeries never enter the index

  // Even a file nobody offered gains sources — the canary the honeypot
  // self-probe exploits.
  seeker.inbox.clear();
  seeker.ep->send(proto::encode(
      AnyMessage{proto::GetSources{FileId::from_words(0xDEAD, 0xBEEF)}}));
  s.run();
  bool canary_bitten = false;
  for (const auto& m : seeker.inbox) {
    if (const auto* found = std::get_if<proto::FoundSources>(&m)) {
      canary_bitten = !found->sources.empty();
    }
  }
  EXPECT_TRUE(canary_bitten);

  server.set_fabricate_sources(false, 0, 0);
  EXPECT_EQ(ask().size(), 1u);
}

TEST_F(ByzantineServerTest, CorruptSearchGarblesFileIdsOnlyDuringWindow) {
  auto provider = login(net.add_node(true), 1);
  provider.ep->send(
      proto::encode(AnyMessage{proto::OfferFiles{{pub(5, "target.avi")}}}));
  s.run();

  auto seeker = login(net.add_node(true), 2);
  const auto search = [&] {
    seeker.inbox.clear();
    seeker.ep->send(
        proto::encode(AnyMessage{proto::SearchRequest{"target.avi"}}));
    s.run();
    for (const auto& m : seeker.inbox) {
      if (const auto* result = std::get_if<proto::SearchResult>(&m)) {
        return result->files;
      }
    }
    return std::vector<proto::PublishedFile>{};
  };

  const auto honest = search();
  ASSERT_EQ(honest.size(), 1u);
  EXPECT_EQ(honest[0].file, FileId::from_words(5, 5));

  server.set_corrupt_search(true, 77);
  const auto lied = search();
  ASSERT_EQ(lied.size(), 1u);
  EXPECT_NE(lied[0].file, FileId::from_words(5, 5));
  EXPECT_GT(server.counters().get("byz_searches_corrupted"), 0u);
  EXPECT_EQ(server.index_audit(), 0u);

  server.set_corrupt_search(false, 0);
  const auto again = search();
  ASSERT_EQ(again.size(), 1u);
  EXPECT_EQ(again[0].file, FileId::from_words(5, 5));
}

}  // namespace
}  // namespace edhp::server

// --- Honeypot defenses + manager quarantine ---------------------------------

namespace edhp::honeypot {
namespace {

net::LinkModel lossless() {
  net::LinkModel m;
  m.datagram_loss = 0.0;
  return m;
}

class ByzantineDefenseTest : public ::testing::Test {
 protected:
  void settle(double span = 180.0) { s.run_until(s.now() + span); }

  HoneypotConfig defended_config(const std::string& name) {
    HoneypotConfig c;
    c.name = name;
    c.strategy = ContentStrategy::no_content;
    c.harvest_shared_lists = true;
    c.integrity_defense = true;
    c.self_probe_period = minutes(5);
    c.self_probe_timeout = minutes(1);
    return c;
  }

  std::vector<AdvertisedFile> bait() {
    return {AdvertisedFile{FileId::from_words(0xA, 0xA), "bait-a.avi", 1000},
            AdvertisedFile{FileId::from_words(0xB, 0xB), "bait-b.avi", 2000}};
  }

  /// Connect a liar node to the honeypot and run `send` once the endpoint
  /// is up; the endpoint is kept alive for the test's duration.
  void drive_peer(Honeypot& hp,
                  std::function<void(net::Endpoint&)> send) {
    const auto node = net.add_node(false);
    net.connect(node, hp.node(), [this, send](net::EndpointPtr ep) {
      if (!ep) return;
      send(*ep);
      keep_.push_back(std::move(ep));
    });
    settle();
  }

  static proto::Hello hello_from(std::uint64_t lo, std::uint64_t hi) {
    proto::Hello h;
    h.user = UserId::from_words(lo, hi);
    h.client_id = 0x01020304;
    h.port = 4662;
    return h;
  }

  sim::Simulation s{31};
  net::Network net{s, lossless()};
  net::NodeId server_node = net.add_node(true);
  server::Server server{net, server_node, {}};
  ServerRef ref{server_node, "srv", 4661};
  net::NodeId backup_node = net.add_node(true);
  server::Server backup{net, backup_node, {}};
  ServerRef backup_ref{backup_node, "honest-backup", 4661};
  std::shared_ptr<logbook::Journal> journal =
      std::make_shared<logbook::Journal>();
  std::vector<net::EndpointPtr> keep_;

  void SetUp() override {
    server.start();
    backup.start();
  }
};

TEST_F(ByzantineDefenseTest, SelfProbesConfirmAgainstHonestServer) {
  ManagerConfig mc;
  mc.journal = journal;
  Manager m(net, mc);
  const auto idx = m.launch(defended_config("hp-probe"), net.add_node(true), ref);
  m.start();
  settle();
  m.advertise(idx, bait());
  settle(hours(2));

  const auto stats = m.integrity_stats();
  EXPECT_GT(stats.probes_sent, 10u);
  EXPECT_EQ(stats.probes_missed, 0u);
  EXPECT_GE(stats.probes_confirmed + 1, stats.probes_sent);  // last may pend
  EXPECT_EQ(stats.fabricated_sources_detected, 0u);
  EXPECT_EQ(m.server_health("srv"), 0.0);
  m.stop();

  // Every verdict was journaled for the post-campaign audit.
  std::uint64_t verdicts = 0;
  for (const auto& e : journal->scan().entries) {
    if (e.type ==
        static_cast<std::uint8_t>(logbook::JournalEntryType::probe_verdict)) {
      ++verdicts;
    }
  }
  EXPECT_EQ(verdicts, stats.probes_confirmed + stats.probes_missed);
}

TEST_F(ByzantineDefenseTest, ProbeTimeoutRetransmitsAndSuppressesLateReplies) {
  // A probe timeout shorter than the link's minimum RTT makes the race
  // deterministic: every probe times out before its reply can land, so the
  // retransmit path fires, and the original reply then arrives as a late
  // duplicate that must be recognized — never re-scored as a verdict.
  auto c = defended_config("hp-retrans");
  c.self_probe_retries = 1;
  c.self_probe_timeout = 0.001;  // < min_latency (5 ms): reply always loses
  ManagerConfig mc;
  mc.journal = journal;
  Manager m(net, mc);
  const auto idx = m.launch(std::move(c), net.add_node(true), ref);
  m.start();
  settle();
  m.advertise(idx, bait());
  settle(hours(1));

  const auto& hp = m.honeypot(idx);
  EXPECT_GE(hp.probe_retransmits(), 1u);
  EXPECT_GE(hp.probe_dup_replies(), 1u);
  // Both the retransmit and the duplicate replies roll up into the
  // manager's fleet-wide recovery accounting.
  EXPECT_GE(m.recovery_stats().probe_retries, hp.probe_retransmits());
  EXPECT_GE(m.recovery_stats().probe_dups_suppressed, hp.probe_dup_replies());
  // Every probe resolved exactly once: sent == confirmed + missed (+1 if
  // one is still pending at shutdown).
  const auto stats = m.integrity_stats();
  EXPECT_LE(stats.probes_confirmed + stats.probes_missed, stats.probes_sent);
  EXPECT_GE(stats.probes_confirmed + stats.probes_missed + 1,
            stats.probes_sent);
  m.stop();
}

TEST_F(ByzantineDefenseTest, CanaryProbeCatchesFabricatedSources) {
  ManagerConfig mc;
  mc.journal = journal;
  Manager m(net, mc);
  const auto idx = m.launch(defended_config("hp-canary"), net.add_node(true), ref);
  m.start();
  settle();
  m.advertise(idx, bait());
  server.set_fabricate_sources(true, 3, 99);
  settle(hours(2));

  const auto stats = m.integrity_stats();
  EXPECT_GT(stats.fabricated_sources_detected, 0u);
  EXPECT_GT(stats.probes_missed, 0u);
  EXPECT_GT(m.server_health("srv"), 0.0);  // misses outrun confirm decay
  m.stop();
}

TEST_F(ByzantineDefenseTest, ForgedSharedListRejectedAndExcludedFromMerge) {
  Manager m(net, {});
  const auto idx = m.launch(defended_config("hp-forge"), net.add_node(true), ref);
  m.start();
  settle();
  m.advertise(idx, bait());
  settle();

  Honeypot& hp = m.honeypot(idx);
  drive_peer(hp, [&](net::Endpoint& ep) {
    ep.send(proto::encode(proto::AnyMessage{hello_from(0xF0, 0xF1)}));
    // Volunteer a shared list claiming the honeypot's own bait hashes.
    proto::AskSharedFilesAnswer answer;
    for (const auto& f : bait()) {
      proto::PublishedFile pf;
      pf.file = f.id;
      pf.name = f.name;
      pf.size = f.size;
      pf.port = 4662;
      answer.files.push_back(std::move(pf));
    }
    ep.send(proto::encode(proto::AnyMessage{std::move(answer)}));
  });

  EXPECT_EQ(hp.integrity_stats().forged_lists_rejected, 1u);
  // The forged files were NOT adopted into the observed/advertised state.
  EXPECT_EQ(hp.advertised().size(), bait().size());
  // The connection's HELLO record was retro-tainted and the merge drops it.
  EXPECT_GT(hp.integrity_stats().records_quarantined, 0u);
  std::uint64_t distinct = 0;
  const auto merged = m.merged_anonymized(&distinct);
  for (const auto& rec : merged.records) {
    EXPECT_FALSE(rec.tainted());
  }
  EXPECT_EQ(m.integrity_stats().records_excluded,
            m.integrity_stats().records_quarantined);
  m.stop();
}

TEST_F(ByzantineDefenseTest, ReplayedHelloRejectedWithoutAnswer) {
  Manager m(net, {});
  const auto idx = m.launch(defended_config("hp-replay"), net.add_node(true), ref);
  m.start();
  settle();

  Honeypot& hp = m.honeypot(idx);
  drive_peer(hp, [&](net::Endpoint& ep) {
    ep.send(proto::encode(proto::AnyMessage{hello_from(0xAA, 1)}));
    ep.send(proto::encode(proto::AnyMessage{hello_from(0xBB, 2)}));
    ep.send(proto::encode(proto::AnyMessage{hello_from(0xCC, 3)}));
  });

  EXPECT_EQ(hp.integrity_stats().replayed_hellos_rejected, 2u);
  // All three HELLO records (the first retroactively) carry provenance.
  EXPECT_EQ(hp.integrity_stats().records_quarantined, 3u);
  std::uint64_t distinct = 0;
  const auto merged = m.merged_anonymized(&distinct);
  EXPECT_TRUE(merged.records.empty());
  EXPECT_EQ(m.integrity_stats().records_excluded, 3u);
  m.stop();
}

TEST_F(ByzantineDefenseTest, LyingServerQuarantinedThenReinstated) {
  ManagerConfig mc;
  mc.journal = journal;
  mc.quarantine_threshold = 2.0;
  mc.probe_confirm_decay = 0.0;  // only misses move the needle here
  mc.quarantine_cooloff = hours(1);
  Manager m(net, mc);
  m.set_backup_servers({backup_ref});
  const auto idx = m.launch(defended_config("hp-q"), net.add_node(true), ref);
  m.start();
  settle();
  m.advertise(idx, bait());
  server.set_fabricate_sources(true, 3, 7);  // lies, permanently
  settle(hours(1));

  EXPECT_TRUE(m.server_quarantined("srv"));
  auto stats = m.integrity_stats();
  EXPECT_GE(stats.servers_quarantined, 1u);
  // The displaced honeypot now measures from the honest backup.
  EXPECT_EQ(m.server_of(idx).name, "honest-backup");

  std::uint64_t quarantine_frames = 0;
  for (const auto& e : journal->scan().entries) {
    if (e.type == static_cast<std::uint8_t>(
                      logbook::JournalEntryType::server_quarantine)) {
      ++quarantine_frames;
    }
  }
  EXPECT_GE(quarantine_frames, 1u);

  // Cooloff served: the slot moves back to its planned server (which will
  // promptly earn another quarantine, since it still lies).
  settle(hours(2));
  stats = m.integrity_stats();
  EXPECT_GE(stats.servers_reinstated, 1u);
  std::uint64_t reinstate_frames = 0;
  for (const auto& e : journal->scan().entries) {
    if (e.type == static_cast<std::uint8_t>(
                      logbook::JournalEntryType::server_reinstate)) {
      ++reinstate_frames;
    }
  }
  EXPECT_GE(reinstate_frames, 1u);
  m.stop();
}

TEST_F(ByzantineDefenseTest, QuarantineStateSurvivesCrashRecover) {
  ManagerConfig mc;
  mc.journal = journal;
  mc.quarantine_threshold = 2.0;
  mc.probe_confirm_decay = 0.0;
  mc.quarantine_cooloff = hours(6);
  Manager m(net, mc);
  m.set_backup_servers({backup_ref});
  const auto idx = m.launch(defended_config("hp-cq"), net.add_node(true), ref);
  m.start();
  settle();
  m.advertise(idx, bait());
  server.set_fabricate_sources(true, 3, 7);
  settle(hours(1));
  ASSERT_TRUE(m.server_quarantined("srv"));
  const auto before = m.integrity_stats();

  const Time down_at = s.now();
  (void)m.crash();
  settle(60.0);
  m.recover(down_at);

  // Replay rebuilt the quarantine ledger without re-deciding anything.
  EXPECT_TRUE(m.server_quarantined("srv"));
  const auto after = m.integrity_stats();
  EXPECT_EQ(after.servers_quarantined, before.servers_quarantined);
  EXPECT_GT(m.server_health("srv") + 1.0, 0.0);  // health map rebuilt
  EXPECT_EQ(m.server_of(idx).name, "honest-backup");
  m.stop();
}

// Torn-tail sweep over a journal whose last intact frame is a quarantine
// entry: every prefix must scan cleanly (no exception, no garbage entry),
// and the full stream must end in the quarantine frame.
TEST_F(ByzantineDefenseTest, TornTailSweepEndingInQuarantineFrame) {
  logbook::Journal j;
  {
    ByteWriter w;
    w.u16(4);
    w.u8(0);
    w.str16("srv");
    j.append(logbook::JournalEntryType::probe_verdict, w.view());
  }
  {
    ByteWriter w;
    w.u16(4);
    w.u8(1);
    w.str16("srv");
    j.append(logbook::JournalEntryType::probe_verdict, w.view());
  }
  {
    ByteWriter w;
    w.str16("srv");
    w.u64(1);        // original ServerRef
    w.str16("srv");
    w.u16(4661);
    w.u64(0);        // reinstate deadline
    w.u32(2);
    w.u32(0);
    w.u32(1);
    j.append(logbook::JournalEntryType::server_quarantine, w.view());
  }
  const auto& bytes = j.bytes();
  const auto full = logbook::scan_journal(bytes);
  ASSERT_EQ(full.entries.size(), 3u);
  EXPECT_FALSE(full.torn_tail);
  EXPECT_EQ(full.entries.back().type,
            static_cast<std::uint8_t>(
                logbook::JournalEntryType::server_quarantine));

  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    const auto scan = logbook::scan_journal({bytes.data(), cut});
    // A prefix either ends exactly on a frame boundary or reports a torn
    // tail; quarantined (checksum-failed) frames never appear from clean
    // truncation.
    EXPECT_TRUE(scan.quarantined.empty()) << "cut at " << cut;
    EXPECT_LE(scan.entries.size(), 3u);
    if (!scan.torn_tail) {
      std::size_t consumed = 0;
      for (const auto& e : scan.entries) {
        consumed = e.offset;  // offsets are monotone frame starts
      }
      EXPECT_LE(consumed, cut);
    }
  }
}

}  // namespace
}  // namespace edhp::honeypot

// --- Campaign-level acceptance ----------------------------------------------

namespace edhp::scenario {
namespace {

std::uint64_t fingerprint(const logbook::LogFile& log) {
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  for (const auto& rec : log.records) {
    std::uint64_t t_bits = 0;
    std::memcpy(&t_bits, &rec.timestamp, 8);
    mix(t_bits);
    mix(rec.peer);
    mix(rec.user);
    mix(static_cast<std::uint64_t>(rec.honeypot));
    mix(static_cast<std::uint64_t>(rec.type));
  }
  return h;
}

DistributedConfig mini_byzantine_config() {
  DistributedConfig config;
  config.scale = 0.01;
  config.days = 2;
  config.honeypots = 4;
  config.with_top_peer = false;
  config.host_mtbf = 0;
  auto& b = config.chaos.byzantine;
  b.enabled = true;
  b.offer_drop_mtbf = hours(12);
  b.offer_truncate_mtbf = hours(12);
  b.stale_index_mtbf = hours(12);
  b.fabricate_mtbf = hours(12);
  b.corrupt_search_mtbf = hours(12);
  b.forge_list_mtba = hours(3);
  b.replay_hello_mtba = hours(3);
  return config;
}

TEST(ByzantineScenario, MiniRunExercisesEveryMisbehaviorAndDefense) {
  const auto r = run_distributed(mini_byzantine_config());

  EXPECT_GT(r.byzantine.offer_drop_episodes, 0u);
  EXPECT_GT(r.byzantine.offer_truncate_episodes, 0u);
  EXPECT_GT(r.byzantine.stale_index_episodes, 0u);
  EXPECT_GT(r.byzantine.fabricate_episodes, 0u);
  EXPECT_GT(r.byzantine.corrupt_search_episodes, 0u);
  EXPECT_GT(r.byzantine.forged_lists_sent, 0u);
  EXPECT_GT(r.byzantine.replayed_hellos_sent, 0u);

  EXPECT_GT(r.integrity.probes_sent, 0u);
  EXPECT_GT(r.integrity.forged_lists_rejected, 0u);
  EXPECT_GT(r.integrity.replayed_hellos_rejected, 0u);
  EXPECT_GT(r.integrity.records_quarantined, 0u);
  EXPECT_EQ(r.integrity.records_excluded, r.integrity.records_quarantined);
}

TEST(ByzantineScenario, DeterministicForFixedSeed) {
  const auto config = mini_byzantine_config();
  const auto a = run_distributed(config);
  const auto b = run_distributed(config);
  EXPECT_EQ(a.merged.records, b.merged.records);
  EXPECT_EQ(a.byzantine.forged_lists_sent, b.byzantine.forged_lists_sent);
  EXPECT_EQ(a.integrity.probes_sent, b.integrity.probes_sent);
  EXPECT_EQ(a.integrity.records_excluded, b.integrity.records_excluded);
}

TEST(ByzantineScenario, DisabledByzantineLeavesNoTrace) {
  DistributedConfig config;
  config.scale = 0.01;
  config.days = 2;
  config.honeypots = 4;
  config.with_top_peer = false;
  config.host_mtbf = 0;
  const auto r = run_distributed(config);
  EXPECT_EQ(r.byzantine.connections_opened + r.byzantine.messages_sent, 0u);
  EXPECT_EQ(r.integrity, honeypot::IntegrityStats{});
  for (const auto& rec : r.merged.records) {
    ASSERT_FALSE(fault::is_byzantine_user(rec.user));
    ASSERT_FALSE(rec.tainted());
  }
}

TEST(ByzantineScenario, GreedyVariantProbesWithoutBreakingHarvest) {
  GreedyConfig config;
  config.scale = 0.02;
  config.days = 3;
  auto& b = config.chaos.byzantine;
  b.enabled = true;
  b.fabricate_mtbf = hours(12);
  const auto r = run_greedy(config);
  EXPECT_GT(r.integrity.probes_sent, 0u);
  // Greedy keeps forged-list defense off by design: the harvest (adopting
  // files volunteered by contacting peers) must keep working.
  EXPECT_GT(r.advertised_files, 10u);
  EXPECT_EQ(r.integrity.forged_lists_rejected, 0u);
}

// The PR's acceptance bar, at the paper's scale parameters: servers turning
// Byzantine at MTBF 8 days plus a standing stream of forging/replaying
// peers, and the published dataset still contains zero fabricated-source or
// forged-list records, retains >= 99% of the true-peer evidence, and every
// excluded record is accounted in IntegrityStats.
//
// Retention is measured against the *undefended* run of the same attack
// (byzantine.defend = false): reply-path lies poison what the server tells
// legitimate peers, so contacts that never happened are attack damage
// upstream of the measurement — no honeypot-side defense can retain a
// record that was never generated. What the integrity layer owes the
// operator is that its own exclusions cost < 1% of the true-peer evidence
// the fleet actually logged. The raw in-window contact loss against a
// lie-free baseline is asserted separately, with a bound matching the duty
// cycle of the lie windows.
TEST(ByzantineScenario, ZeroLeakAndRetentionAtPaperScale) {
  DistributedConfig lied_to;
  lied_to.scale = 0.02;
  lied_to.days = 32;
  lied_to.honeypots = 24;
  lied_to.with_top_peer = false;
  lied_to.host_mtbf = 0;
  auto& b = lied_to.chaos.byzantine;
  b.enabled = true;
  b.offer_drop_mtbf = days(8);
  b.offer_truncate_mtbf = days(8);
  b.stale_index_mtbf = days(8);
  b.fabricate_mtbf = days(8);
  b.corrupt_search_mtbf = days(8);
  b.forge_list_mtba = hours(2);   // ~10% of contacting peers forge
  b.replay_hello_mtba = hours(4);
  // Quarantine displacement is counterproductive here: the whole peer
  // population sits on the one big server, so benching it hides every
  // honeypot from discovery for the cooloff. Containment via exclusion
  // (provenance) is the right tool at this topology; quarantine is
  // exercised by the dedicated manager/recovery tests.
  b.quarantine_threshold = 0;

  DistributedConfig undefended_cfg = lied_to;
  undefended_cfg.chaos.byzantine.defend = false;
  DistributedConfig clean = lied_to;
  clean.chaos.byzantine.enabled = false;

  const auto byz = run_distributed(lied_to);
  const auto undefended = run_distributed(undefended_cfg);
  const auto baseline = run_distributed(clean);
  ASSERT_GT(baseline.merged.records.size(), 1000u);

  // The liars were genuinely active...
  EXPECT_GT(byz.byzantine.fabricate_episodes, 0u);
  EXPECT_GT(byz.byzantine.forged_lists_sent, 100u);
  EXPECT_GT(byz.byzantine.replayed_hellos_sent, 100u);
  // ...and the defenses genuinely engaged.
  EXPECT_GT(byz.integrity.probes_sent, 1000u);
  EXPECT_GT(byz.integrity.forged_lists_rejected, 0u);
  EXPECT_GT(byz.integrity.replayed_hellos_rejected, 0u);

  // Undefended, the same attack pollutes the published log — the defense
  // is load-bearing, not decorative.
  std::size_t leaked = 0;
  for (const auto& rec : undefended.merged.records) {
    if (fault::is_byzantine_user(rec.user)) ++leaked;
  }
  ASSERT_GT(leaked, 100u);
  EXPECT_EQ(undefended.integrity.records_excluded, 0u);

  // Zero leak: no liar identity and no tainted record in the published log.
  for (const auto& rec : byz.merged.records) {
    ASSERT_FALSE(fault::is_byzantine_user(rec.user));
    ASSERT_FALSE(rec.tainted());
  }

  // Every excluded record is accounted.
  EXPECT_GT(byz.integrity.records_excluded, 0u);
  EXPECT_EQ(byz.integrity.records_excluded, byz.integrity.records_quarantined);

  // Retention: >= 99% of the true-peer evidence the fleet logged under
  // attack survives the defense's exclusions.
  const double undefended_true = static_cast<double>(
      undefended.merged.records.size() - leaked);
  const double ratio =
      static_cast<double>(byz.merged.records.size()) / undefended_true;
  EXPECT_GE(ratio, 0.99) << byz.merged.records.size() << " of "
                         << undefended_true << " true-peer records";

  // In-window contact loss vs a lie-free world stays bounded by the lie
  // duty cycle (five ~30-45 min windows per 8-day MTBF per behavior).
  const double damage = static_cast<double>(byz.merged.records.size()) /
                        static_cast<double>(baseline.merged.records.size());
  EXPECT_GE(damage, 0.97) << byz.merged.records.size() << " of "
                          << baseline.merged.records.size()
                          << " baseline records";
}

// With Byzantine off the campaigns must stay bit-identical to the golden
// fingerprints (the dormant defense layer consumes no draws). The golden
// suite in test_scenario.cpp pins all three; this pins the distributed one
// against this PR's specific code paths.
TEST(ByzantineScenario, GoldenDistributedUnchangedWithByzantineDisabled) {
  DistributedConfig config;
  config.scale = 0.02;
  config.days = 8;
  config.honeypots = 8;
  const auto r = run_distributed(config);
  EXPECT_EQ(r.merged.records.size(), 28945u);
  EXPECT_EQ(fingerprint(r.merged), 0xad6b1b6fa123723aull);
}

}  // namespace
}  // namespace edhp::scenario
