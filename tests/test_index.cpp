// Server file/keyword index: offer-files semantics, provider lifecycle,
// source limits, AND-search.

#include <gtest/gtest.h>

#include "server/index.hpp"

namespace edhp::server {
namespace {

proto::PublishedFile pub(std::uint64_t n, const std::string& name,
                         std::uint32_t size = 1000) {
  proto::PublishedFile f;
  f.file = FileId::from_words(n, n + 1);
  f.name = name;
  f.size = size;
  return f;
}

TEST(FileIndex, AddAndLookupSources) {
  FileIndex index;
  index.set_shared_list(1, 0x11111111, 4662, {pub(1, "a.avi"), pub(2, "b.mp3")});
  index.set_shared_list(2, 0x22222222, 4663, {pub(1, "a.avi")});

  EXPECT_EQ(index.file_count(), 2u);
  EXPECT_EQ(index.provider_count(), 3u);

  auto sources = index.sources(FileId::from_words(1, 2), 10);
  ASSERT_EQ(sources.size(), 2u);
  EXPECT_EQ(sources[0].client_id, 0x11111111u);
  EXPECT_EQ(sources[1].client_id, 0x22222222u);

  EXPECT_TRUE(index.sources(FileId::from_words(99, 100), 10).empty());
}

TEST(FileIndex, SourceLimitRespected) {
  FileIndex index;
  for (std::uint64_t s = 1; s <= 50; ++s) {
    index.set_shared_list(s, static_cast<std::uint32_t>(0x1000000 + s), 4662,
                          {pub(7, "x.iso")});
  }
  EXPECT_EQ(index.sources(FileId::from_words(7, 8), 10).size(), 10u);
  EXPECT_EQ(index.sources(FileId::from_words(7, 8), 200).size(), 50u);
}

TEST(FileIndex, OfferReplacesPreviousList) {
  FileIndex index;
  index.set_shared_list(1, 1, 4662, {pub(1, "a.avi"), pub(2, "b.mp3")});
  index.set_shared_list(1, 1, 4662, {pub(3, "c.pdf")});
  EXPECT_EQ(index.file_count(), 1u);
  EXPECT_TRUE(index.sources(FileId::from_words(1, 2), 10).empty());
  EXPECT_EQ(index.sources(FileId::from_words(3, 4), 10).size(), 1u);
}

TEST(FileIndex, DropSessionRemovesProviders) {
  FileIndex index;
  index.set_shared_list(1, 1, 4662, {pub(1, "a.avi")});
  index.set_shared_list(2, 2, 4662, {pub(1, "a.avi")});
  index.drop_session(1);
  EXPECT_EQ(index.provider_count(), 1u);
  EXPECT_EQ(index.file_count(), 1u);
  index.drop_session(2);
  EXPECT_EQ(index.file_count(), 0u);
  EXPECT_FALSE(index.has_file(FileId::from_words(1, 2)));
}

TEST(FileIndex, DropUnknownSessionIsNoOp) {
  FileIndex index;
  EXPECT_NO_THROW(index.drop_session(42));
}

TEST(FileIndex, DuplicateHashInOneListKeptOnce) {
  FileIndex index;
  index.set_shared_list(1, 1, 4662, {pub(1, "a.avi"), pub(1, "renamed.avi")});
  EXPECT_EQ(index.provider_count(), 1u);
  EXPECT_EQ(index.sources(FileId::from_words(1, 2), 10).size(), 1u);
}

TEST(FileIndex, FirstAdvertiserNamesTheFile) {
  FileIndex index;
  index.set_shared_list(1, 1, 4662, {pub(1, "Original.Name.avi")});
  index.set_shared_list(2, 2, 4662, {pub(1, "other_name.avi")});
  EXPECT_EQ(index.name_of(FileId::from_words(1, 2)), "Original.Name.avi");
}

TEST(FileIndex, SearchMatchesAllTerms) {
  FileIndex index;
  index.set_shared_list(1, 1, 4662,
                        {pub(1, "Night.Voyage.2008.DVDRip.avi"),
                         pub(2, "night.sky.mp3"), pub(3, "voyage.iso")});
  auto hits = index.search("night voyage", 10);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].file, FileId::from_words(1, 2));

  EXPECT_EQ(index.search("night", 10).size(), 2u);
  EXPECT_TRUE(index.search("nothing matches", 10).empty());
  EXPECT_TRUE(index.search("", 10).empty());
}

TEST(FileIndex, SearchCaseInsensitive) {
  FileIndex index;
  index.set_shared_list(1, 1, 4662, {pub(1, "LINUX-Distribution.ISO")});
  EXPECT_EQ(index.search("linux distribution", 10).size(), 1u);
  EXPECT_EQ(index.search("LiNuX", 10).size(), 1u);
}

TEST(FileIndex, SearchLimitRespected) {
  FileIndex index;
  std::vector<proto::PublishedFile> files;
  for (std::uint64_t i = 0; i < 30; ++i) {
    files.push_back(pub(i, "common.word." + std::to_string(i) + ".avi"));
  }
  index.set_shared_list(1, 1, 4662, files);
  EXPECT_EQ(index.search("common", 5).size(), 5u);
}

TEST(FileIndex, SearchAfterAllProvidersGone) {
  FileIndex index;
  index.set_shared_list(1, 1, 4662, {pub(1, "ghost.file.avi")});
  index.drop_session(1);
  EXPECT_TRUE(index.search("ghost", 10).empty());
}

}  // namespace
}  // namespace edhp::server
