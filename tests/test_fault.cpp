// Fault-injection subsystem: plan generation, the injector driving network
// primitives, honeypot retry/backoff, crash-safe log spooling, and the
// chaos variants of the campaign scenarios.

#include <gtest/gtest.h>

#include <vector>

#include "fault/fault.hpp"
#include "honeypot/manager.hpp"
#include "scenario/scenario.hpp"
#include "server/server.hpp"

namespace edhp::fault {
namespace {

TEST(FaultPlan, DeterministicInConfigAndSeed) {
  ChaosConfig config;
  config.enabled = true;
  config.uplink_mtbf = days(4);
  config.server_mtbf = days(8);
  config.latency_spike_mtbf = days(8);
  config.partition_mtbf = days(8);
  const auto a = FaultPlan::generate(config, 8, 2, days(32), Rng(7));
  const auto b = FaultPlan::generate(config, 8, 2, days(32), Rng(7));
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a.events(), b.events());

  const auto c = FaultPlan::generate(config, 8, 2, days(32), Rng(8));
  EXPECT_NE(a.events(), c.events());
}

TEST(FaultPlan, DisabledConfigYieldsEmptyPlan) {
  ChaosConfig config;  // enabled = false
  EXPECT_TRUE(FaultPlan::generate(config, 24, 1, days(32), Rng(1)).empty());
}

TEST(FaultPlan, OnlyEnabledClassesAppear) {
  ChaosConfig config;
  config.enabled = true;  // defaults: host crashes only
  const auto plan = FaultPlan::generate(config, 8, 1, days(32), Rng(3));
  ASSERT_FALSE(plan.empty());
  for (const auto& e : plan.events()) {
    EXPECT_TRUE(e.kind == FaultKind::host_crash ||
                e.kind == FaultKind::host_reboot)
        << to_string(e.kind);
  }
}

TEST(FaultPlan, EventsSortedByTimeWithinHorizon) {
  ChaosConfig config;
  config.enabled = true;
  config.host_mtbf = days(2);
  config.uplink_mtbf = days(2);
  config.server_mtbf = days(4);
  const auto plan = FaultPlan::generate(config, 6, 2, days(16), Rng(5));
  ASSERT_GT(plan.size(), 10u);
  for (std::size_t i = 1; i < plan.size(); ++i) {
    EXPECT_LE(plan.events()[i - 1].at, plan.events()[i].at);
  }
  for (const auto& e : plan.events()) {
    EXPECT_GE(e.at, 0.0);
    EXPECT_LT(e.at, days(16));
  }
}

TEST(FaultPlan, AddingOneClassDoesNotShiftAnother) {
  ChaosConfig config;
  config.enabled = true;  // host crashes only
  const auto base = FaultPlan::generate(config, 6, 1, days(32), Rng(11));
  config.uplink_mtbf = days(4);  // enable a second class
  const auto more = FaultPlan::generate(config, 6, 1, days(32), Rng(11));

  auto crashes_of = [](const FaultPlan& p) {
    std::vector<FaultEvent> out;
    for (const auto& e : p.events()) {
      if (e.kind == FaultKind::host_crash || e.kind == FaultKind::host_reboot) {
        out.push_back(e);
      }
    }
    return out;
  };
  EXPECT_EQ(crashes_of(base), crashes_of(more));
  EXPECT_GT(more.size(), base.size());
}

// The manager fault class rides its own RNG split: enabling it must not
// shift any other schedule, and the recovery toggle must not change the plan
// at all (disabling recovery only leaves the binding unset).
TEST(FaultPlan, ManagerClassDoesNotShiftOtherSchedules) {
  ChaosConfig config;
  config.enabled = true;
  config.uplink_mtbf = days(4);
  config.server_mtbf = days(8);
  const auto base = FaultPlan::generate(config, 6, 1, days(32), Rng(11));
  config.manager_mtbf = days(8);
  const auto more = FaultPlan::generate(config, 6, 1, days(32), Rng(11));

  auto without_manager = [](const FaultPlan& p) {
    std::vector<FaultEvent> out;
    for (const auto& e : p.events()) {
      if (e.kind != FaultKind::manager_crash &&
          e.kind != FaultKind::manager_recover) {
        out.push_back(e);
      }
    }
    return out;
  };
  EXPECT_EQ(without_manager(more), base.events());
  EXPECT_GT(more.size(), base.size());

  config.manager_recovery = false;
  const auto no_recovery = FaultPlan::generate(config, 6, 1, days(32), Rng(11));
  EXPECT_EQ(no_recovery.events(), more.events());
}

TEST(FaultPlan, HandCraftedPlanIsSorted) {
  FaultPlan plan(std::vector<FaultEvent>{
      {50.0, FaultKind::host_reboot, 0, 1.0},
      {10.0, FaultKind::host_crash, 0, 1.0},
  });
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_EQ(plan.events()[0].kind, FaultKind::host_crash);
  EXPECT_EQ(plan.events()[1].kind, FaultKind::host_reboot);
}

TEST(Injector, RequiresHostNodeBinding) {
  sim::Simulation s{1};
  net::Network net{s};
  FaultPlan plan(std::vector<FaultEvent>{{1.0, FaultKind::host_crash, 0, 1.0}});
  EXPECT_THROW(Injector(net, std::move(plan), Injector::Bindings{}),
               std::invalid_argument);
}

TEST(Injector, CrashAndRebootDriveNetworkAndHooks) {
  sim::Simulation s{2};
  net::Network net{s};
  const auto node = net.add_node(true);
  int crashed = 0;
  FaultPlan plan(std::vector<FaultEvent>{
      {10.0, FaultKind::host_crash, 0, 1.0},
      {20.0, FaultKind::host_reboot, 0, 1.0},
  });
  Injector::Bindings bind;
  bind.host_count = 1;
  bind.host_node = [node](std::size_t) { return node; };
  bind.crash_host = [&crashed](std::size_t) { ++crashed; };
  Injector injector{net, std::move(plan), std::move(bind)};
  injector.arm();

  s.run_until(15.0);
  EXPECT_FALSE(net.node_up(node));
  EXPECT_EQ(crashed, 1);
  s.run_until(25.0);
  EXPECT_TRUE(net.node_up(node));
  EXPECT_EQ(injector.stats().host_crashes, 1u);
  EXPECT_EQ(injector.stats().host_reboots, 1u);
}

TEST(Injector, LatencySpikeAndPartitionApplyAndRevert) {
  sim::Simulation s{3};
  net::Network net{s};
  const auto a = net.add_node(true);
  const auto b = net.add_node(true);
  FaultPlan plan(std::vector<FaultEvent>{
      {10.0, FaultKind::partition_begin, 1, 1.0},
      {20.0, FaultKind::partition_heal, 1, 1.0},
      {30.0, FaultKind::latency_spike_begin, 0, 8.0},
      {40.0, FaultKind::latency_spike_end, 0, 8.0},
  });
  Injector::Bindings bind;
  bind.host_count = 2;
  bind.host_node = [a, b](std::size_t h) { return h == 0 ? a : b; };
  Injector injector{net, std::move(plan), std::move(bind)};
  injector.arm();

  s.run_until(15.0);
  EXPECT_EQ(net.partition_of(b), 1u);
  s.run_until(25.0);
  EXPECT_EQ(net.partition_of(b), 0u);
  s.run_until(45.0);
  EXPECT_EQ(injector.stats().partition_episodes, 1u);
  EXPECT_EQ(injector.stats().latency_spikes, 1u);
}

// An uplink outage severs the server session; the honeypot retries on its
// own with backoff and is logged in again once the link returns — the
// manager never has to relaunch it.
TEST(Recovery, HoneypotRetriesThroughUplinkOutage) {
  sim::Simulation s{7};
  net::Network net{s};
  const auto server_node = net.add_node(true);
  server::Server server{net, server_node, {}};
  server.start();
  const honeypot::ServerRef ref{server_node, "srv", 4661};

  const auto hp_node = net.add_node(true);
  honeypot::HoneypotConfig hc;
  hc.name = "hp-retry";
  hc.retry.enabled = true;
  hc.retry.base = 5.0;
  hc.retry.cap = 60.0;
  hc.retry.max_retries = 8;
  honeypot::Honeypot hp{net, hp_node, hc};
  hp.connect_to_server(ref);
  s.run_until(60.0);
  ASSERT_EQ(hp.status(), honeypot::Status::connected);
  EXPECT_EQ(hp.epoch(), 1u);

  FaultPlan plan(std::vector<FaultEvent>{
      {100.0, FaultKind::uplink_down, 0, 1.0},
      {130.0, FaultKind::uplink_up, 0, 1.0},
  });
  Injector::Bindings bind;
  bind.host_count = 1;
  bind.host_node = [hp_node](std::size_t) { return hp_node; };
  Injector injector{net, std::move(plan), std::move(bind)};
  injector.arm();

  s.run_until(110.0);
  EXPECT_NE(hp.status(), honeypot::Status::connected);
  EXPECT_NE(hp.status(), honeypot::Status::dead);  // self-retrying

  s.run_until(600.0);
  EXPECT_EQ(hp.status(), honeypot::Status::connected);
  EXPECT_GE(hp.retries(), 1u);
  EXPECT_EQ(hp.epoch(), 1u);  // self-retry is not a relaunch
  ASSERT_GE(hp.coverage().size(), 1u);  // first window closed by the outage
  EXPECT_GT(hp.connected_time(), 0.0);
  EXPECT_LT(hp.connected_time(), s.now());
  EXPECT_EQ(injector.stats().uplink_outages, 1u);
}

// Exhausting the per-episode retry budget reports dead: escalation moves to
// the manager's watchdog instead of retrying forever.
TEST(Recovery, RetryBudgetExhaustionReportsDead) {
  sim::Simulation s{8};
  net::Network net{s};
  const auto server_node = net.add_node(true);
  server::Server server{net, server_node, {}};
  server.start();
  const honeypot::ServerRef ref{server_node, "srv", 4661};

  const auto hp_node = net.add_node(true);
  honeypot::HoneypotConfig hc;
  hc.retry.enabled = true;
  hc.retry.base = 2.0;
  hc.retry.cap = 10.0;
  hc.retry.max_retries = 3;
  honeypot::Honeypot hp{net, hp_node, hc};
  hp.connect_to_server(ref);
  s.run_until(60.0);
  ASSERT_EQ(hp.status(), honeypot::Status::connected);

  server.stop();  // permanent: every retry fails
  s.run_until(s.now() + minutes(10));
  EXPECT_EQ(hp.status(), honeypot::Status::dead);
  EXPECT_EQ(hp.counters().get("retry_budget_exhausted"), 1u);
  EXPECT_GE(hp.retries(), 3u);
}

// Backoff jitter is derived from (honeypot id, attempt), not an RNG
// stream: the whole retry schedule — including the instant the budget runs
// out — is identical across runs.
TEST(Recovery, RetryScheduleIsDeterministic) {
  auto death_time = [] {
    sim::Simulation s{9};
    net::Network net{s};
    const auto server_node = net.add_node(true);
    server::Server server{net, server_node, {}};
    server.start();
    const honeypot::ServerRef ref{server_node, "srv", 4661};
    honeypot::HoneypotConfig hc;
    hc.retry.enabled = true;
    hc.retry.base = 3.0;
    hc.retry.cap = 50.0;
    hc.retry.max_retries = 5;
    honeypot::Honeypot hp{net, net.add_node(true), hc};
    hp.connect_to_server(ref);
    s.run_until(30.0);
    server.stop();
    while (hp.status() != honeypot::Status::dead && s.now() < 3600.0) {
      s.run_until(s.now() + 1.0);
    }
    return s.now();
  };
  const double a = death_time();
  const double b = death_time();
  EXPECT_EQ(a, b);
  EXPECT_LT(a, 3600.0);
}

class SpoolTest : public ::testing::Test {
 protected:
  void settle(double span = 120.0) { s.run_until(s.now() + span); }

  /// Connect `n` fresh peers to the honeypot; each sends one HELLO, which
  /// appends one record to the honeypot's log.
  void feed_hellos(honeypot::Honeypot& hp, int n) {
    for (int i = 0; i < n; ++i) {
      const auto peer_node = net.add_node(true);
      const auto user = static_cast<std::uint64_t>(++next_user_);
      net.connect(peer_node, hp.node(),
                  [this, peer_node, user](net::EndpointPtr ep) {
                    if (!ep) return;
                    proto::Hello hello;
                    hello.user = UserId::from_words(user, 77);
                    hello.client_id = net.info(peer_node).ip.value();
                    hello.port = 4662;
                    ep->send(proto::encode(proto::AnyMessage{hello}));
                    keep_.push_back(std::move(ep));
                  });
    }
    settle();
  }

  sim::Simulation s{43};
  net::Network net{s};
  net::NodeId server_node = net.add_node(true);
  server::Server server{net, server_node, {}};
  honeypot::ServerRef ref{server_node, "srv", 4661};
  std::vector<net::EndpointPtr> keep_;
  int next_user_ = 0;

  void SetUp() override { server.start(); }
};

TEST_F(SpoolTest, CrashLosesOnlyTheUnspooledTail) {
  honeypot::ManagerConfig mc;
  mc.spool.enabled = true;
  mc.spool.period = hours(1);  // manual spool_now() controls the cuts
  mc.spool.ack_delay = 5.0;
  honeypot::Manager manager{net, mc};
  honeypot::HoneypotConfig c;
  c.name = "hp-spool";
  manager.launch(std::move(c), net.add_node(true), ref);
  settle();
  auto& hp = manager.honeypot(0);
  ASSERT_EQ(hp.status(), honeypot::Status::connected);

  feed_hellos(hp, 3);
  ASSERT_EQ(hp.log().records.size(), 3u);
  hp.spool_now();
  settle(30.0);  // chunk delivered and acknowledged
  EXPECT_EQ(hp.pending_spool(), 0u);

  feed_hellos(hp, 2);
  ASSERT_EQ(hp.log().records.size(), 5u);
  const auto durable = manager.spool_store().reassemble(hp.config().id);

  hp.crash();
  // The crash destroyed exactly the records produced since the last cut.
  EXPECT_EQ(hp.records_lost_tail(), 2u);
  EXPECT_EQ(hp.log().records.size(), 3u);
  EXPECT_EQ(hp.log().records, durable.records);
  EXPECT_EQ(manager.spool_store().chunks_accepted(), 1u);
  EXPECT_EQ(manager.spool_store().records_stored(), 3u);

  const auto rec = manager.recovery_stats();
  EXPECT_EQ(rec.records_lost_tail, 2u);
  EXPECT_EQ(rec.records_spooled, 3u);
  EXPECT_NEAR(rec.retained_fraction, 3.0 / 5.0, 1e-9);
}

TEST_F(SpoolTest, CrashInsideAckWindowResendsAndDedups) {
  honeypot::ManagerConfig mc;
  mc.spool.enabled = true;
  mc.spool.period = hours(1);
  mc.spool.ack_delay = 30.0;
  honeypot::Manager manager{net, mc};
  honeypot::HoneypotConfig c;
  c.name = "hp-dedup";
  manager.launch(std::move(c), net.add_node(true), ref);
  settle();
  auto& hp = manager.honeypot(0);
  ASSERT_EQ(hp.status(), honeypot::Status::connected);

  feed_hellos(hp, 2);
  hp.spool_now();              // chunk accepted; ack still 30 s away
  EXPECT_EQ(hp.pending_spool(), 1u);
  hp.crash();                  // inside the ack window
  EXPECT_EQ(hp.records_lost_tail(), 0u);  // everything was already spooled
  EXPECT_EQ(hp.pending_spool(), 1u);      // local spool survived the crash

  // Relaunch before the ack arrives: the chunk is re-sent at-least-once
  // with its original sequence number and deduplicated by the store.
  hp.connect_to_server(ref);
  settle();
  EXPECT_GE(hp.counters().get("chunks_resent"), 1u);
  EXPECT_EQ(manager.spool_store().chunks_accepted(), 1u);
  EXPECT_GE(manager.spool_store().chunks_duplicate(), 1u);
  EXPECT_EQ(manager.spool_store().reassemble(hp.config().id).records.size(),
            2u);  // no duplicate records despite the duplicate chunk
  EXPECT_EQ(hp.epoch(), 2u);
  EXPECT_EQ(hp.pending_spool(), 0u);  // the re-send's ack cleared it
}

TEST_F(SpoolTest, ManagerStopFlushesFinalTail) {
  honeypot::ManagerConfig mc;
  mc.spool.enabled = true;
  mc.spool.period = hours(1);
  honeypot::Manager manager{net, mc};
  honeypot::HoneypotConfig c;
  manager.launch(std::move(c), net.add_node(true), ref);
  settle();
  feed_hellos(manager.honeypot(0), 4);
  manager.stop();  // final gathering flushes the unspooled tail
  const auto id = manager.honeypot(0).config().id;
  EXPECT_EQ(manager.spool_store().reassemble(id).records.size(), 4u);
}

}  // namespace
}  // namespace edhp::fault

namespace edhp::scenario {
namespace {

/// A small chaos campaign exercising every fault class.
DistributedConfig small_chaos_config() {
  DistributedConfig config;
  config.scale = 0.01;
  config.days = 2;
  config.honeypots = 4;
  config.with_top_peer = false;
  config.chaos.enabled = true;
  config.chaos.host_mtbf = hours(18);
  config.chaos.uplink_mtbf = hours(16);
  config.chaos.server_mtbf = days(2);
  config.chaos.latency_spike_mtbf = hours(12);
  config.chaos.partition_mtbf = days(1);
  return config;
}

TEST(ChaosScenario, DeterministicForFixedSeed) {
  const auto config = small_chaos_config();
  const auto a = run_distributed(config);
  const auto b = run_distributed(config);
  EXPECT_GT(a.faults.host_crashes, 0u);
  EXPECT_EQ(a.faults.host_crashes, b.faults.host_crashes);
  EXPECT_EQ(a.faults.connections_aborted, b.faults.connections_aborted);
  EXPECT_EQ(a.recovery.relaunches, b.recovery.relaunches);
  EXPECT_EQ(a.recovery.honeypot_retries, b.recovery.honeypot_retries);
  EXPECT_EQ(a.merged.records.size(), b.merged.records.size());
  EXPECT_EQ(a.merged.records, b.merged.records);
}

TEST(ChaosScenario, ChaosSeedChangesFaultScheduleOnly) {
  auto config = small_chaos_config();
  const auto a = run_distributed(config);
  config.chaos.seed += 1;
  const auto b = run_distributed(config);
  // A different chaos stream injects a different schedule.
  EXPECT_NE(a.merged.records, b.merged.records);
}

TEST(ChaosScenario, RecoveryMachineryEngages) {
  const auto r = run_distributed(small_chaos_config());
  EXPECT_GT(r.faults.host_crashes, 0u);
  EXPECT_GT(r.faults.uplink_outages, 0u);
  EXPECT_GT(r.faults.connections_aborted, 0u);
  // Self-retry and/or watchdog relaunch brought honeypots back.
  EXPECT_GT(r.recovery.relaunches + r.recovery.honeypot_retries, 0u);
  EXPECT_GT(r.recovery.total_downtime, 0.0);
  // Spooling was active and bounded the damage.
  EXPECT_GT(r.recovery.records_spooled, 0u);
  EXPECT_GE(r.recovery.retained_fraction, 0.9);
  EXPECT_GT(r.merged.records.size(), 100u);
}

// Acceptance: at the paper's scale parameters (24 honeypots, 32 days, host
// MTBF 16 days) the platform retains at least 99% of the records a
// crash-free run of the same world produces.
TEST(ChaosScenario, RetainsAtLeast99PercentAtPaperMtbf) {
  DistributedConfig chaos;
  chaos.scale = 0.02;
  chaos.days = 32;
  chaos.honeypots = 24;
  chaos.with_top_peer = false;
  chaos.chaos.enabled = true;  // defaults: host MTBF 16 days

  DistributedConfig clean = chaos;
  clean.chaos.enabled = false;
  clean.host_mtbf = 0;  // crash-free baseline

  const auto faulty = run_distributed(chaos);
  const auto baseline = run_distributed(clean);
  ASSERT_GT(baseline.merged.records.size(), 1000u);
  EXPECT_GT(faulty.faults.host_crashes, 0u);

  const double ratio = static_cast<double>(faulty.merged.records.size()) /
                       static_cast<double>(baseline.merged.records.size());
  EXPECT_GE(ratio, 0.99) << faulty.merged.records.size() << " of "
                         << baseline.merged.records.size() << " records";
  EXPECT_GE(faulty.recovery.retained_fraction, 0.99);
  EXPECT_LE(faulty.recovery.retained_fraction, 1.0);
}

// Acceptance headline: control-plane crashes with recovery enabled cost
// nothing — at the paper's scale the merged anonymised log is bit-identical
// to the same world run without manager faults.
TEST(ChaosScenario, ManagerCrashRecoveryIsLossless) {
  DistributedConfig crashy;
  crashy.scale = 0.02;
  crashy.days = 32;
  crashy.honeypots = 24;
  crashy.with_top_peer = false;
  crashy.chaos.enabled = true;
  crashy.chaos.host_mtbf = 0;  // isolate the manager fault class
  crashy.chaos.manager_mtbf = days(8);

  DistributedConfig clean = crashy;
  clean.chaos.manager_mtbf = 0;

  const auto faulty = run_distributed(crashy);
  const auto baseline = run_distributed(clean);
  ASSERT_GT(faulty.faults.manager_crashes, 0u);
  EXPECT_EQ(faulty.recovery.manager_crashes, faulty.faults.manager_crashes);
  EXPECT_GT(faulty.recovery.manager_recoveries, 0u);
  EXPECT_GT(faulty.recovery.manager_downtime, 0.0);
  EXPECT_GT(faulty.recovery.journal_replayed, 0u);
  ASSERT_GT(baseline.merged.records.size(), 1000u);
  EXPECT_EQ(faulty.merged.records, baseline.merged.records);
  EXPECT_EQ(faulty.merged.names, baseline.merged.names);
}

// With recovery disabled the fleet is orphaned at the first crash, yet the
// durable merge (spool store + salvaged local spools) still retains at least
// 99% of the baseline: only per-honeypot tails newer than the last spool cut
// can be lost.
TEST(ChaosScenario, DisabledRecoveryLosesOnlyBoundedTails) {
  DistributedConfig config;
  config.scale = 0.02;
  config.days = 32;
  config.honeypots = 24;
  config.with_top_peer = false;
  config.chaos.enabled = true;
  config.chaos.host_mtbf = 0;
  config.chaos.manager_mtbf = days(8);
  config.chaos.manager_recovery = false;

  DistributedConfig clean = config;
  clean.chaos.manager_mtbf = 0;

  const auto faulty = run_distributed(config);
  const auto baseline = run_distributed(clean);
  ASSERT_GT(faulty.faults.manager_crashes, 0u);
  EXPECT_EQ(faulty.recovery.manager_recoveries, 0u);
  ASSERT_GT(baseline.merged.records.size(), 1000u);
  const double ratio = static_cast<double>(faulty.merged.records.size()) /
                       static_cast<double>(baseline.merged.records.size());
  EXPECT_GE(ratio, 0.99) << faulty.merged.records.size() << " of "
                         << baseline.merged.records.size() << " records";
  EXPECT_LE(ratio, 1.0);
}

TEST(ChaosScenario, GreedyChaosVariantRuns) {
  GreedyConfig config;
  config.scale = 0.02;
  config.days = 3;
  config.chaos.enabled = true;
  config.chaos.host_mtbf = days(1);
  const auto r = run_greedy(config);
  EXPECT_GT(r.merged.records.size(), 100u);
  EXPECT_GT(r.faults.host_crashes, 0u);
  EXPECT_GE(r.recovery.retained_fraction, 0.5);
}

TEST(ChaosScenario, ChaosManagerConfigMapsKnobs) {
  fault::ChaosConfig chaos;
  EXPECT_FALSE(chaos_manager_config(chaos).retry.enabled);
  EXPECT_EQ(chaos_manager_config(chaos).relaunch_backoff_base, 0.0);
  chaos.enabled = true;
  chaos.retry_base = 12.0;
  chaos.retry_max = 4;
  chaos.spool_period = minutes(7);
  chaos.heartbeat_timeout = hours(1);
  const auto mc = chaos_manager_config(chaos);
  EXPECT_TRUE(mc.retry.enabled);
  EXPECT_EQ(mc.retry.base, 12.0);
  EXPECT_EQ(mc.retry.max_retries, 4u);
  EXPECT_TRUE(mc.spool.enabled);
  EXPECT_EQ(mc.spool.period, minutes(7));
  EXPECT_EQ(mc.heartbeat_timeout, hours(1));
  EXPECT_GT(mc.relaunch_backoff_base, 0.0);
  EXPECT_GT(mc.escalate_after, 0u);
}

}  // namespace
}  // namespace edhp::scenario
