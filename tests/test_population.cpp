// Population engine: arrival rates, decay, finite pools, diurnal
// modulation, peer reclamation, and peer exchange.

#include <gtest/gtest.h>

#include "honeypot/honeypot.hpp"
#include "peer/population.hpp"
#include "peer/source_cache.hpp"
#include "server/server.hpp"

namespace edhp::peer {
namespace {

class PopulationTest : public ::testing::Test {
 protected:
  // run() would never return while honeypot keep-alive timers are armed;
  // settle() drains a bounded window instead.
  void settle(double span = 180.0) { s.run_until(s.now() + span); }

  sim::Simulation s{31};
  net::Network net{s};
  net::NodeId server_node = net.add_node(true);
  server::Server server{net, server_node, {}};
  sim::DiurnalProfile diurnal = sim::DiurnalProfile::flat();
  FileCatalog catalog{CatalogParams{200, 0.9, 0.05}, Rng(1)};
  BehaviorParams params;
  SharedBlacklist blacklist{1e-4};
  SourceCache cache;
  FileId file = FileId::from_words(0xF, 0xF);
  std::unique_ptr<honeypot::Honeypot> pot;

  void SetUp() override {
    server.start();
    params.sessions_mean = 1;          // single-session peers: fast tests
    params.session_gap_mean = hours(1);
    params.detect_after_timeouts = 1;
    params.timeouts_per_session = 1;
    params.request_timeout = 10;
    params.pex_prob = 0.0;

    honeypot::HoneypotConfig c;
    c.name = "hp";
    pot = std::make_unique<honeypot::Honeypot>(net, net.add_node(true), c);
    pot->connect_to_server(honeypot::ServerRef{server_node, "srv", 4661});
    settle();
    pot->advertise({honeypot::AdvertisedFile{file, "bait.avi", 1}});
    settle();
  }

  PeerContext context() {
    PeerContext ctx;
    ctx.net = &net;
    ctx.server_node = server_node;
    ctx.blacklist = &blacklist;
    ctx.catalog = &catalog;
    ctx.params = &params;
    ctx.diurnal = &diurnal;
    ctx.source_cache = &cache;
    return ctx;
  }
};

TEST_F(PopulationTest, ArrivalRateMatchesDemand) {
  Population pop(context(), Rng(2));
  pop.add_demand(FileDemand{file, /*rate=*/480, /*decay=*/0, /*pool=*/100000});
  pop.start();
  s.run_until(days(2));
  // Poisson with mean 960: within 15%.
  EXPECT_NEAR(static_cast<double>(pop.arrivals()), 960.0, 145.0);
}

TEST_F(PopulationTest, FinitePoolSaturates) {
  Population pop(context(), Rng(3));
  pop.add_demand(FileDemand{file, 1000, 0, /*pool=*/50});
  pop.start();
  s.run_until(days(3));
  EXPECT_EQ(pop.arrivals(), 50u);
}

TEST_F(PopulationTest, DecayReducesLaterArrivals) {
  Population pop(context(), Rng(4));
  pop.add_demand(FileDemand{file, 400, /*decay=*/1.5, 100000});
  pop.start();
  s.run_until(days(1));
  const auto day1 = pop.arrivals();
  s.run_until(days(4));
  const auto later = pop.arrivals() - day1;
  // With decay 1.5/day, day 1 expects ~207 arrivals and days 2-4 together
  // ~59, a gap of many Poisson standard deviations; decay 0.7 put the two
  // windows less than 2 sigma apart and flipped on minor clock shifts.
  EXPECT_LT(later, day1);
  EXPECT_GT(day1, 0u);
}

TEST_F(PopulationTest, PeersAreReclaimedAfterFinishing) {
  Population pop(context(), Rng(5));
  pop.add_demand(FileDemand{file, 200, 0, 200});
  pop.start();
  s.run_until(days(8));
  EXPECT_EQ(pop.arrivals(), 200u);
  EXPECT_EQ(pop.finished() + pop.active(), pop.arrivals());
  // Nearly everyone is done long after the pool exhausted.
  EXPECT_GT(pop.finished(), 150u);
}

TEST_F(PopulationTest, StopHaltsNewArrivals) {
  Population pop(context(), Rng(6));
  pop.add_demand(FileDemand{file, 1000, 0, 100000});
  pop.start();
  s.run_until(hours(6));
  pop.stop();
  const auto frozen = pop.arrivals();
  EXPECT_GT(frozen, 0u);
  s.run_until(days(2));
  EXPECT_EQ(pop.arrivals(), frozen);
}

TEST_F(PopulationTest, TotalsAggregateBehaviour) {
  Population pop(context(), Rng(7));
  pop.add_demand(FileDemand{file, 100, 0, 100});
  pop.start();
  s.run_until(days(4));
  const auto totals = pop.totals();
  EXPECT_GT(totals.sessions, 0u);
  EXPECT_GT(totals.hellos_sent, 0u);
  // The honeypot logged what the peers sent.
  std::uint64_t hp_hellos = 0;
  for (const auto& r : pot->log().records) {
    if (r.type == logbook::QueryType::hello) ++hp_hellos;
  }
  EXPECT_EQ(hp_hellos, totals.hellos_sent);
}

TEST_F(PopulationTest, DemandAddedWhileRunningTakesEffect) {
  Population pop(context(), Rng(8));
  pop.start();
  s.run_until(hours(2));
  EXPECT_EQ(pop.arrivals(), 0u);
  pop.add_demand(FileDemand{file, 600, 0, 100000});
  s.run_until(hours(26));
  EXPECT_GT(pop.arrivals(), 300u);
}

TEST_F(PopulationTest, DiurnalModulatesArrivalTimes) {
  diurnal = sim::DiurnalProfile::european_2008();
  Population pop(context(), Rng(9));
  pop.add_demand(FileDemand{file, 2000, 0, 1000000});
  pop.start();
  // Count arrivals in afternoon vs night windows over 4 days.
  std::uint64_t last = 0, day_arrivals = 0, night_arrivals = 0;
  for (double t = 0; t < days(4); t += kHour) {
    s.run_until(t + kHour);
    const auto now_count = pop.arrivals();
    const double hod = hour_of_day(t + kHour / 2);
    if (hod >= 13 && hod < 20) {
      day_arrivals += now_count - last;
    } else if (hod >= 1 && hod < 6) {
      night_arrivals += now_count - last;
    }
    last = now_count;
  }
  EXPECT_GT(day_arrivals, 2 * night_arrivals);
}

TEST_F(PopulationTest, ExhaustedPoolSchedulesNoFurtherArrivalCandidates) {
  Population pop(context(), Rng(11));
  pop.add_demand(FileDemand{file, 2000, 0, /*pool=*/10});
  pop.start();
  s.run_until(days(2));
  ASSERT_EQ(pop.arrivals(), 10u);
  ASSERT_EQ(pop.finished(), 10u);
  // The arrival process must have shut itself off at the pool boundary, not
  // keep drawing rejected candidates: an idle week of simulation executes
  // only the honeypot's periodic keep-alive machinery, whose event count is
  // far below the ~28k candidates a still-armed 2000/day thinning loop at
  // diurnal max would burn.
  const auto before = s.executed();
  s.run_until(days(9));
  EXPECT_LT(s.executed() - before, 4000u);
}

TEST_F(PopulationTest, RampUpSuppressesEarlyArrivals) {
  Population pop(context(), Rng(12));
  FileDemand d{file, 1200, 0, 1000000};
  d.ramp_up = days(1);
  pop.add_demand(d);
  pop.start();
  // At t=0 the instantaneous rate is exactly 0 and climbs linearly: the
  // first 2h window expects ~4 accepted arrivals, the same window after the
  // ramp expects ~100.
  s.run_until(hours(2));
  const auto early = pop.arrivals();
  s.run_until(days(1));
  const auto at_ramp = pop.arrivals();
  s.run_until(days(1) + hours(2));
  const auto post_ramp = pop.arrivals() - at_ramp;
  EXPECT_LT(early, 20u);
  EXPECT_GT(post_ramp, 5 * std::max<std::uint64_t>(early, 1));
}

TEST_F(PopulationTest, StopThenRestartResumesCleanly) {
  Population pop(context(), Rng(13));
  pop.add_demand(FileDemand{file, 1000, 0, 100000});
  pop.start();
  s.run_until(hours(6));
  pop.stop();
  const auto frozen = pop.arrivals();
  EXPECT_GT(frozen, 0u);
  s.run_until(hours(30));
  ASSERT_EQ(pop.arrivals(), frozen);
  // start() after stop() re-arms every demand; stale handles from the
  // stopped phase must not fire or double-schedule.
  pop.start();
  s.run_until(hours(54));
  EXPECT_GT(pop.arrivals(), frozen + 100);
  pop.stop();
  const auto frozen2 = pop.arrivals();
  s.run_until(hours(78));
  EXPECT_EQ(pop.arrivals(), frozen2);
}

TEST_F(PopulationTest, LazySlabRecyclesSlotsAndRetiresNodes) {
  Population pop(context(), Rng(14));
  ASSERT_EQ(pop.mode(), PopulationMode::lazy);
  pop.add_demand(FileDemand{file, 300, 0, 300});
  pop.start();
  s.run_until(days(6));
  ASSERT_EQ(pop.arrivals(), 300u);
  ASSERT_GT(pop.finished(), 250u);
  // Memory tracks peak concurrency, not total arrivals: slots recycle...
  EXPECT_EQ(pop.slab_capacity(), pop.peak_active());
  EXPECT_LT(pop.slab_capacity(), pop.arrivals() / 2);
  // ...and every finished peer released its network node.
  EXPECT_EQ(net.nodes_retired(), pop.finished());
  EXPECT_LT(net.live_node_count(), net.node_count());
  // Per-demand folded stats carry the finished peers' behaviour.
  EXPECT_GT(pop.finished_stats(0).sessions, 0u);
}

TEST_F(PopulationTest, LegacyEagerModeKeepsEveryPeerMaterialized) {
  Population pop(context(), Rng(15), PopulationMode::legacy_eager);
  pop.add_demand(FileDemand{file, 200, 0, 100});
  pop.start();
  s.run_until(days(4));
  ASSERT_EQ(pop.arrivals(), 100u);
  EXPECT_EQ(pop.slab_capacity(), 0u);  // the slab never engaged
  EXPECT_EQ(net.nodes_retired(), 0u);  // nodes live forever
  EXPECT_GT(pop.finished(), 50u);
  EXPECT_GT(pop.totals().sessions, 0u);
}

TEST_F(PopulationTest, PexPeersSkipTheServer) {
  params.pex_prob = 1.0;  // everyone tries PEX first
  Population pop(context(), Rng(10));
  pop.add_demand(FileDemand{file, 400, 0, 100000});
  pop.start();
  s.run_until(days(1));
  // The cache starts empty, so the first peers hit the server and seed it;
  // once seeded, PEX peers bypass the server entirely.
  const auto logins = server.counters().get("logins");
  EXPECT_GT(pop.arrivals(), 100u);
  EXPECT_LT(logins, pop.arrivals() / 2)
      << "most peers should have used peer exchange";
  EXPECT_GT(cache.files_known(), 0u);
  // ...and the honeypot still observed them (HELLOs from PEX peers).
  std::uint64_t hellos = 0;
  for (const auto& r : pot->log().records) {
    if (r.type == logbook::QueryType::hello) ++hellos;
  }
  EXPECT_GT(hellos, logins);
}

}  // namespace
}  // namespace edhp::peer
