// Log records, binary/CSV serialization, and multi-log merging.

#include <gtest/gtest.h>

#include <sstream>

#include "common/bytes.hpp"
#include "logbook/log_io.hpp"
#include "logbook/merge.hpp"

namespace edhp::logbook {
namespace {

LogRecord rec(double t, std::uint16_t hp, QueryType type, std::uint64_t peer,
              std::uint16_t name_ref = 0, bool with_file = false) {
  LogRecord r;
  r.timestamp = t;
  r.honeypot = hp;
  r.type = type;
  r.peer = peer;
  r.user = peer * 31;
  r.name_ref = name_ref;
  r.peer_port = 4662;
  r.client_version = 0x31;
  r.flags = kFlagHighId;
  if (with_file) {
    r.file = FileId::from_words(7, 8);
    r.flags |= kFlagHasFile;
  }
  return r;
}

LogFile sample_log(std::uint16_t hp) {
  LogFile log;
  log.header.honeypot = hp;
  log.header.honeypot_name = "hp-" + std::to_string(hp);
  log.header.strategy = "no-content";
  log.header.server_name = "server";
  log.header.server_ip = 0xC0A80001;
  log.header.server_port = 4661;
  const auto ref = log.intern("eMule 0.49b");
  log.records.push_back(rec(1.5, hp, QueryType::hello, 100 + hp, ref));
  log.records.push_back(rec(2.5, hp, QueryType::start_upload, 100 + hp, ref, true));
  log.records.push_back(rec(9.0, hp, QueryType::request_part, 200, 0, true));
  return log;
}

TEST(LogFile, InternReturnsStableIndices) {
  LogFile log;
  EXPECT_EQ(log.names.size(), 1u);  // index 0 = ""
  const auto a = log.intern("eMule");
  const auto b = log.intern("aMule");
  EXPECT_EQ(log.intern("eMule"), a);
  EXPECT_NE(a, b);
  EXPECT_EQ(log.names[a], "eMule");
  EXPECT_EQ(log.intern(""), 0);
}

TEST(LogRecord, FlagAccessors) {
  LogRecord r;
  EXPECT_FALSE(r.high_id());
  EXPECT_FALSE(r.has_file());
  r.flags = kFlagHighId | kFlagHasFile;
  EXPECT_TRUE(r.high_id());
  EXPECT_TRUE(r.has_file());
}

TEST(LogIo, BinaryRoundTrip) {
  const auto log = sample_log(3);
  std::stringstream buffer;
  write_binary(buffer, log);
  const auto back = read_binary(buffer);
  EXPECT_EQ(back, log);
}

TEST(LogIo, BinaryRoundTripEmptyLog) {
  LogFile log;
  log.header.honeypot_name = "empty";
  std::stringstream buffer;
  write_binary(buffer, log);
  EXPECT_EQ(read_binary(buffer), log);
}

TEST(LogIo, BadMagicRejected) {
  std::stringstream buffer("NOTALOG0xxxxxxxxxxxxxxxx");
  EXPECT_THROW((void)read_binary(buffer), DecodeError);
}

TEST(LogIo, TruncatedStreamRejected) {
  const auto log = sample_log(1);
  std::stringstream buffer;
  write_binary(buffer, log);
  std::string data = buffer.str();
  for (const std::size_t keep : {data.size() - 1, data.size() / 2, 9ul}) {
    std::stringstream cut(data.substr(0, keep));
    EXPECT_THROW((void)read_binary(cut), DecodeError) << "keep=" << keep;
  }
}

TEST(LogIo, CsvHasHeaderAndRows) {
  const auto log = sample_log(3);
  std::stringstream out;
  write_csv(out, log);
  std::string line;
  std::getline(out, line);
  EXPECT_NE(line.find("timestamp"), std::string::npos);
  std::size_t rows = 0;
  while (std::getline(out, line)) ++rows;
  EXPECT_EQ(rows, log.records.size());
}

TEST(LogIo, SaveAndLoadFile) {
  const auto log = sample_log(5);
  const std::string path = ::testing::TempDir() + "/edhp_test_log.bin";
  save(path, log);
  EXPECT_EQ(load(path), log);
  EXPECT_THROW((void)load(path + ".does-not-exist"), std::runtime_error);
}

TEST(Merge, OrdersByTimestampAcrossLogs) {
  std::vector<LogFile> logs{sample_log(0), sample_log(1)};
  logs[1].records[0].timestamp = 0.5;  // earliest overall
  const auto merged = merge_logs(logs);
  ASSERT_EQ(merged.records.size(), 6u);
  for (std::size_t i = 1; i < merged.records.size(); ++i) {
    EXPECT_LE(merged.records[i - 1].timestamp, merged.records[i].timestamp);
  }
  EXPECT_EQ(merged.records.front().honeypot, 1);
  EXPECT_EQ(merged.header.honeypot, 0xFFFF);
}

TEST(Merge, TieBreaksByHoneypot) {
  std::vector<LogFile> logs{sample_log(1), sample_log(0)};
  const auto merged = merge_logs(logs);
  // Records at t=1.5 from hp 0 and hp 1: hp 0 must come first.
  EXPECT_EQ(merged.records[0].honeypot, 0);
  EXPECT_EQ(merged.records[1].honeypot, 1);
}

TEST(Merge, UnifiesNameTables) {
  LogFile a = sample_log(0);
  LogFile b;
  b.header = a.header;
  b.header.honeypot = 1;
  const auto ref = b.intern("Shareaza 2.3");
  b.records.push_back(rec(0.1, 1, QueryType::hello, 9, ref));

  std::vector<LogFile> logs{a, b};
  const auto merged = merge_logs(logs);
  // Every record's name resolves to the right string.
  const auto& first = merged.records.front();
  EXPECT_EQ(merged.names[first.name_ref], "Shareaza 2.3");
  bool found_emule = false;
  for (const auto& r : merged.records) {
    if (merged.names[r.name_ref] == "eMule 0.49b") found_emule = true;
  }
  EXPECT_TRUE(found_emule);
}

TEST(Merge, PreservesServerIdentityWhenShared) {
  std::vector<LogFile> logs{sample_log(0), sample_log(1)};
  const auto merged = merge_logs(logs);
  EXPECT_EQ(merged.header.server_ip, 0xC0A80001u);
  EXPECT_EQ(merged.header.server_name, "server");
}

TEST(Merge, ClearsServerIdentityWhenMixed) {
  std::vector<LogFile> logs{sample_log(0), sample_log(1)};
  logs[1].header.server_ip = 0x08080808;
  const auto merged = merge_logs(logs);
  EXPECT_EQ(merged.header.server_ip, 0u);
  EXPECT_TRUE(merged.header.server_name.empty());
}

TEST(Merge, RejectsMixedAnonymisationStages) {
  std::vector<LogFile> logs{sample_log(0), sample_log(1)};
  logs[1].header.peer_kind = PeerIdKind::stage2_index;
  EXPECT_THROW((void)merge_logs(logs), std::invalid_argument);
}

TEST(Merge, EmptyInputYieldsEmptyLog) {
  const auto merged = merge_logs({});
  EXPECT_TRUE(merged.records.empty());
  EXPECT_EQ(merged.header.honeypot, 0xFFFF);
}

}  // namespace
}  // namespace edhp::logbook
