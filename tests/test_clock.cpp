// Time under fire: the per-node virtual clock, clock-fault plan
// generation, the skew-tolerant merge, and the scenario-level twin-run
// property (clock faults re-stamp records, they never change behaviour).

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "fault/fault.hpp"
#include "logbook/merge.hpp"
#include "scenario/scenario.hpp"
#include "sim/clock_model.hpp"

namespace edhp::sim {
namespace {

TEST(ClockModel, IdentityByDefault) {
  ClockModel clock;
  EXPECT_TRUE(clock.identity());
  // Bit-exact passthrough, not just approximately equal.
  EXPECT_EQ(clock.local(0.0), 0.0);
  EXPECT_EQ(clock.local(1234.5678), 1234.5678);
  EXPECT_EQ(clock.local(days(32)), days(32));
}

TEST(ClockModel, DriftScalesElapsedTime) {
  ClockModel clock;
  clock.set_drift(100.0, 200e-6);  // +200 ppm from t=100
  EXPECT_FALSE(clock.identity());
  EXPECT_DOUBLE_EQ(clock.local(100.0), 100.0);
  EXPECT_DOUBLE_EQ(clock.local(100.0 + 10000.0), 100.0 + 10000.0 * 1.0002);
  // Re-drawing the rate rebases: earlier skew is kept, new rate applies.
  clock.set_drift(10100.0, -500e-6);
  const Time at_rebase = clock.local(10100.0);
  EXPECT_DOUBLE_EQ(clock.local(10100.0 + 1000.0), at_rebase + 1000.0 * 0.9995);
}

TEST(ClockModel, StepShiftsImmediately) {
  ClockModel clock;
  clock.step(50.0, -30.0);  // NTP yanks the clock 30 s backwards
  EXPECT_DOUBLE_EQ(clock.local(50.0), 20.0);
  EXPECT_DOUBLE_EQ(clock.local(60.0), 30.0);  // rate unchanged
  clock.step(60.0, 45.0);
  EXPECT_DOUBLE_EQ(clock.local(60.0), 75.0);
}

TEST(ClockModel, FreezeHoldsAndThawResumes) {
  ClockModel clock;
  clock.set_drift(0.0, 1000e-6);
  const Time frozen_at = clock.local(100.0);
  clock.freeze(100.0);
  EXPECT_TRUE(clock.frozen());
  EXPECT_DOUBLE_EQ(clock.local(100.0), frozen_at);
  EXPECT_DOUBLE_EQ(clock.local(500.0), frozen_at);  // time stands still
  clock.thaw(500.0);
  EXPECT_FALSE(clock.frozen());
  // Resumes from the frozen reading at the old rate: the local clock is now
  // ~400 s behind true time.
  EXPECT_DOUBLE_EQ(clock.local(500.0), frozen_at);
  EXPECT_DOUBLE_EQ(clock.local(600.0), frozen_at + 100.0 * 1.001);
  clock.thaw(700.0);  // double-thaw is a no-op
  EXPECT_DOUBLE_EQ(clock.local(700.0), frozen_at + 200.0 * 1.001);
}

}  // namespace
}  // namespace edhp::sim

namespace edhp::fault {
namespace {

ChaosConfig clock_chaos() {
  ChaosConfig config;
  config.enabled = true;
  config.host_mtbf = 0;  // isolate the clock classes
  config.clock_drift_mtbf = days(2);
  config.clock_drift_ppm = 200.0;
  config.clock_step_mtbf = days(1);
  config.clock_step_max = 60.0;
  config.clock_freeze_mtbf = days(4);
  return config;
}

TEST(FaultPlan, ClockClassesGenerateAndStayBounded) {
  const auto plan = FaultPlan::generate(clock_chaos(), 8, 1, days(32), Rng(9));
  ASSERT_FALSE(plan.empty());
  std::uint64_t drifts = 0, steps = 0, freezes = 0, thaws = 0;
  for (const auto& e : plan.events()) {
    EXPECT_LT(e.at, days(32));
    EXPECT_LT(e.subject, 8u);
    switch (e.kind) {
      case FaultKind::clock_drift:
        ++drifts;
        EXPECT_LE(std::abs(e.magnitude), 200.0);  // ppm bound
        break;
      case FaultKind::clock_step:
        ++steps;
        EXPECT_LE(std::abs(e.magnitude), 60.0);  // seconds bound
        break;
      case FaultKind::clock_freeze_begin: ++freezes; break;
      case FaultKind::clock_freeze_end: ++thaws; break;
      default: FAIL() << "unexpected kind " << to_string(e.kind);
    }
  }
  EXPECT_GE(drifts, 8u);  // every host gets an initial rate at t=0
  EXPECT_GT(steps, 0u);
  EXPECT_GT(freezes, 0u);
  // Renewal windows close, except a final window crossing the horizon
  // (at most one per host) whose thaw is never emitted.
  EXPECT_LE(thaws, freezes);
  EXPECT_LE(freezes - thaws, 8u);
}

TEST(FaultPlan, ClockClassesOnFreshSplitsLeaveOtherSchedulesAlone) {
  ChaosConfig config;
  config.enabled = true;
  config.uplink_mtbf = days(4);
  config.server_mtbf = days(8);
  const auto base = FaultPlan::generate(config, 6, 1, days(32), Rng(11));
  config.clock_drift_mtbf = days(2);
  config.clock_step_mtbf = days(1);
  config.clock_freeze_mtbf = days(4);
  const auto more = FaultPlan::generate(config, 6, 1, days(32), Rng(11));
  ASSERT_GT(more.size(), base.size());
  // Every pre-existing event survives unchanged.
  std::vector<FaultEvent> kept;
  for (const auto& e : more.events()) {
    if (e.kind != FaultKind::clock_drift && e.kind != FaultKind::clock_step &&
        e.kind != FaultKind::clock_freeze_begin &&
        e.kind != FaultKind::clock_freeze_end) {
      kept.push_back(e);
    }
  }
  EXPECT_EQ(kept, base.events());
}

}  // namespace
}  // namespace edhp::fault

namespace edhp::logbook {
namespace {

LogRecord record_at(Time t, std::uint16_t hp, std::uint64_t user) {
  LogRecord r;
  r.timestamp = t;
  r.honeypot = hp;
  r.peer = user * 1000 + hp;
  r.user = user;
  return r;
}

LogFile log_for(std::uint16_t hp, std::vector<LogRecord> records) {
  LogFile log;
  log.header.honeypot = hp;
  log.records = std::move(records);
  return log;
}

TEST(MergeSkew, NoObservationsMonotoneInputMatchesPlainMerge) {
  std::vector<LogFile> logs;
  logs.push_back(log_for(0, {record_at(10, 0, 1), record_at(30, 0, 2)}));
  logs.push_back(log_for(1, {record_at(5, 1, 3), record_at(20, 1, 4)}));
  TimeIntegrityStats stats;
  const auto skew = merge_logs_skew(logs, {}, &stats);
  const auto plain = merge_logs(logs);
  EXPECT_EQ(skew.records, plain.records);
  EXPECT_EQ(stats, TimeIntegrityStats{});
}

TEST(MergeSkew, CrossingDriftsRestoreTrueInterleaving) {
  // Two honeypots log the same true instants 0, 60, 120, ..., but hp0's
  // clock runs 1% fast from -100 s and hp1's 1% slow from +100 s (the
  // clocks cross mid-run). Raw merge interleaves them wrongly; observations
  // every 5 minutes let the corrected merge recover the true alternation.
  const auto local0 = [](Time t) { return -100.0 + t * 1.01; };
  const auto local1 = [](Time t) { return 100.0 + t * 0.99; };
  std::vector<LogRecord> r0, r1;
  std::vector<ClockObservation> obs;
  for (int i = 0; i < 200; ++i) {
    const Time t = 60.0 * i;
    r0.push_back(record_at(local0(t), 0, static_cast<std::uint64_t>(2 * i)));
    r1.push_back(
        record_at(local1(t + 30.0), 1, static_cast<std::uint64_t>(2 * i + 1)));
    if (i % 5 == 0) {
      obs.push_back({0, t, local0(t)});
      obs.push_back({1, t, local1(t)});
    }
  }
  std::vector<LogFile> logs{log_for(0, r0), log_for(1, r1)};

  // Sanity: the raw merge gets the interleaving wrong somewhere.
  const auto raw = merge_logs(logs);
  bool raw_alternates = true;
  for (std::size_t i = 0; i + 1 < raw.records.size(); ++i) {
    raw_alternates =
        raw_alternates && raw.records[i].user + 1 == raw.records[i + 1].user;
  }
  EXPECT_FALSE(raw_alternates);

  TimeIntegrityStats stats;
  const auto merged = merge_logs_skew(logs, obs, &stats);
  ASSERT_EQ(merged.records.size(), 400u);
  for (std::size_t i = 0; i < merged.records.size(); ++i) {
    EXPECT_EQ(merged.records[i].user, i) << "at position " << i;
  }
  EXPECT_EQ(stats.honeypots_tracked, 2u);
  EXPECT_GT(stats.records_corrected, 0u);
  EXPECT_GT(stats.records_interpolated, 0u);
  EXPECT_EQ(stats.monotonicity_violations, 0u);
}

TEST(MergeSkew, BackwardsStepRacingASpoolCutIsRepairedAndFlagged) {
  // hp0's clock is yanked 50 s backwards between records 2 and 3 — exactly
  // the window where a spool cut (and its clock observation) lands, so the
  // observation stream regresses too. Append order is ground truth: the
  // merge must keep records 0..5 in order, flag the violation, and never
  // reorder silently.
  std::vector<LogRecord> r0;
  const Time locals[] = {100, 160, 220, 170, 230, 290};  // -50 s step after #2
  for (int i = 0; i < 6; ++i) {
    r0.push_back(record_at(locals[i], 0, static_cast<std::uint64_t>(i)));
  }
  std::vector<ClockObservation> obs = {
      {0, 100, 100}, {0, 220, 220},
      {0, 240, 190},  // the cut fired just after the step: local regressed
      {0, 300, 250},
  };
  std::vector<LogFile> logs{log_for(0, r0)};
  TimeIntegrityStats stats;
  const auto merged = merge_logs_skew(logs, obs, &stats);
  ASSERT_EQ(merged.records.size(), 6u);
  for (std::size_t i = 0; i < merged.records.size(); ++i) {
    EXPECT_EQ(merged.records[i].user, i) << "same-hp order must hold";
    if (i > 0) {
      EXPECT_GE(merged.records[i].timestamp, merged.records[i - 1].timestamp);
    }
  }
  EXPECT_EQ(stats.monotonicity_violations, 1u);  // raw 220 -> 170
  EXPECT_GE(stats.order_restorations, 1u);
  EXPECT_EQ(stats.observation_resets, 1u);  // envelope absorbed 220 -> 190
  EXPECT_GT(stats.records_ambiguous + stats.records_interpolated +
                stats.records_extrapolated,
            0u);
}

TEST(MergeSkew, SingleObservationSupportsConstantOffset) {
  std::vector<LogFile> logs{
      log_for(0, {record_at(1000, 0, 0), record_at(1100, 0, 1)})};
  std::vector<ClockObservation> obs = {{0, 500, 1000}};  // clock +500 s fast
  TimeIntegrityStats stats;
  const auto merged = merge_logs_skew(logs, obs, &stats);
  EXPECT_DOUBLE_EQ(merged.records[0].timestamp, 500.0);
  EXPECT_DOUBLE_EQ(merged.records[1].timestamp, 600.0);
  EXPECT_EQ(stats.records_extrapolated, 2u);
  EXPECT_EQ(stats.records_corrected, 2u);
  EXPECT_DOUBLE_EQ(stats.max_abs_correction, 500.0);
}

TEST(MergeSkew, ExtrapolatesBeyondObservedRangeWithMeasuredDrift) {
  // Observations cover [1000, 2000] local with a 2:1 local:true rate;
  // records before and after that window extrapolate at the same rate.
  std::vector<ClockObservation> obs = {{0, 500, 1000}, {0, 1000, 2000}};
  std::vector<LogFile> logs{
      log_for(0, {record_at(800, 0, 0), record_at(2400, 0, 1)})};
  TimeIntegrityStats stats;
  const auto merged = merge_logs_skew(logs, obs, &stats);
  EXPECT_DOUBLE_EQ(merged.records[0].timestamp, 500.0 - 200.0 * 0.5);
  EXPECT_DOUBLE_EQ(merged.records[1].timestamp, 1000.0 + 400.0 * 0.5);
  EXPECT_EQ(stats.records_extrapolated, 2u);
}

}  // namespace
}  // namespace edhp::logbook

namespace edhp::scenario {
namespace {

DistributedConfig small_clock_config() {
  DistributedConfig config;
  config.scale = 0.01;
  config.days = 2;
  config.honeypots = 4;
  config.with_top_peer = false;
  config.chaos.enabled = true;
  config.chaos.host_mtbf = 0;  // isolate the clock axis
  return config;
}

void enable_clock_faults(DistributedConfig& config) {
  config.chaos.clock_drift_mtbf = hours(12);
  config.chaos.clock_drift_ppm = 500.0;
  config.chaos.clock_step_mtbf = hours(8);
  config.chaos.clock_step_max = 90.0;
  config.chaos.clock_freeze_mtbf = days(1);
}

/// Per-honeypot sequence of twin-stable identity fields, in merged order.
std::map<std::uint16_t, std::vector<std::uint64_t>> per_hp_users(
    const logbook::LogFile& log) {
  std::map<std::uint16_t, std::vector<std::uint64_t>> out;
  for (const auto& r : log.records) {
    out[r.honeypot].push_back(r.user * 4 +
                              static_cast<std::uint64_t>(r.type));
  }
  return out;
}

TEST(ClockScenario, TwinRunsSameRecordsDifferentStampsOnly) {
  auto config = small_clock_config();
  const auto truth = run_distributed(config);
  EXPECT_EQ(truth.faults.clock_drift_changes, 0u);
  EXPECT_EQ(truth.time_integrity, logbook::TimeIntegrityStats{});

  enable_clock_faults(config);
  const auto skewed = run_distributed(config);
  EXPECT_GT(skewed.faults.clock_drift_changes, 0u);
  EXPECT_GT(skewed.faults.clock_steps, 0u);
  EXPECT_GT(skewed.time_integrity.observations_used, 0u);
  EXPECT_GT(skewed.time_integrity.records_corrected, 0u);

  // Clock faults re-stamp records; they must not change what was recorded.
  ASSERT_EQ(skewed.merged.records.size(), truth.merged.records.size());
  EXPECT_EQ(per_hp_users(skewed.merged), per_hp_users(truth.merged));
  EXPECT_EQ(skewed.recovery.records_spooled, truth.recovery.records_spooled);
}

TEST(ClockScenario, DeterministicForFixedSeed) {
  auto config = small_clock_config();
  enable_clock_faults(config);
  const auto a = run_distributed(config);
  const auto b = run_distributed(config);
  EXPECT_EQ(a.faults.clock_drift_changes, b.faults.clock_drift_changes);
  EXPECT_EQ(a.faults.clock_steps, b.faults.clock_steps);
  EXPECT_EQ(a.faults.clock_freezes, b.faults.clock_freezes);
  EXPECT_EQ(a.time_integrity, b.time_integrity);
  EXPECT_EQ(a.merged.records, b.merged.records);
}

TEST(ClockScenario, CorrectedOrderMatchesTrueOrder) {
  auto config = small_clock_config();
  const auto truth = run_distributed(config);
  enable_clock_faults(config);
  const auto skewed = run_distributed(config);
  ASSERT_EQ(skewed.merged.records.size(), truth.merged.records.size());
  const auto n = truth.merged.records.size();
  ASSERT_GT(n, 200u);

  // True rank of each record, keyed (honeypot, occurrence index) — valid
  // because the twin-run property keeps per-honeypot streams identical.
  std::map<std::uint16_t, std::vector<std::uint64_t>> true_ranks;
  for (std::size_t i = 0; i < n; ++i) {
    true_ranks[truth.merged.records[i].honeypot].push_back(i);
  }
  std::map<std::uint16_t, std::size_t> occ;
  std::vector<std::uint64_t> ranks;
  for (const auto& r : skewed.merged.records) {
    const auto k = occ[r.honeypot]++;
    ASSERT_LT(k, true_ranks[r.honeypot].size());
    ranks.push_back(true_ranks[r.honeypot][k]);
  }
  // O(n^2)/2 pair scan is fine at this scale; same-honeypot pairs cannot
  // invert (k is assigned in merged order), so inversions are cross-hp.
  std::uint64_t cross_pairs = 0, inversions = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (skewed.merged.records[i].honeypot ==
          skewed.merged.records[j].honeypot) {
        continue;
      }
      ++cross_pairs;
      if (ranks[i] > ranks[j]) ++inversions;
    }
  }
  ASSERT_GT(cross_pairs, 0u);
  const double accuracy =
      1.0 - static_cast<double>(inversions) / static_cast<double>(cross_pairs);
  EXPECT_GE(accuracy, 0.999) << inversions << " of " << cross_pairs
                             << " cross-honeypot pairs inverted";
  // Nothing silent: if anything was reordered, the ledger says so.
  if (inversions > 0) {
    EXPECT_GT(skewed.time_integrity.records_corrected, 0u);
  }
}

TEST(ClockScenario, ClockStepInsideManagerOutageSurvivesRecovery) {
  // A clock step landing while the control plane is down must not corrupt
  // the recovered manager's observation ledger: the journal replays the
  // pre-crash sightings, post-recovery polls resume them, and the durable
  // merge still corrects with full accounting.
  auto config = small_clock_config();
  enable_clock_faults(config);
  config.chaos.manager_mtbf = hours(12);
  config.chaos.manager_outage_mean = hours(2);
  const auto r = run_distributed(config);
  EXPECT_GT(r.recovery.manager_recoveries, 0u);
  EXPECT_GT(r.time_integrity.observations_used, 0u);
  EXPECT_GT(r.time_integrity.records_corrected, 0u);
  // Determinism holds through the outage + recovery path too.
  const auto again = run_distributed(config);
  EXPECT_EQ(r.merged.records, again.merged.records);
  EXPECT_EQ(r.time_integrity, again.time_integrity);
}

}  // namespace
}  // namespace edhp::scenario
