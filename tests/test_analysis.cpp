// Log-statistics functions on hand-built stage-2 logs.

#include <gtest/gtest.h>

#include "analysis/client_stats.hpp"
#include "analysis/log_stats.hpp"

namespace edhp::analysis {
namespace {

using logbook::LogFile;
using logbook::LogRecord;
using logbook::QueryType;

LogRecord rec(double t, std::uint16_t hp, QueryType type, std::uint64_t peer,
              FileId file = {}) {
  LogRecord r;
  r.timestamp = t;
  r.honeypot = hp;
  r.type = type;
  r.peer = peer;
  if (!file.is_zero()) {
    r.file = file;
    r.flags |= logbook::kFlagHasFile;
  }
  return r;
}

LogFile stage2(std::vector<LogRecord> records) {
  LogFile log;
  log.header.peer_kind = logbook::PeerIdKind::stage2_index;
  log.records = std::move(records);
  return log;
}

TEST(LogStats, RejectsStage1Logs) {
  LogFile log;  // defaults to stage1
  EXPECT_THROW((void)distinct_peers_by_day(log, std::nullopt, 1),
               std::invalid_argument);
  EXPECT_THROW((void)distinct_peers(log), std::invalid_argument);
  EXPECT_THROW((void)most_active_peer(log), std::invalid_argument);
}

TEST(LogStats, DistinctPeersByDayCountsFirstSeen) {
  auto log = stage2({
      rec(hours(1), 0, QueryType::hello, 0),
      rec(hours(2), 0, QueryType::hello, 1),
      rec(hours(3), 0, QueryType::hello, 0),       // repeat, not fresh
      rec(days(1) + 5, 1, QueryType::hello, 2),
      rec(days(2) + 5, 1, QueryType::hello, 0),    // old peer on day 2
      rec(days(2) + 9, 1, QueryType::hello, 3),
  });
  const auto series = distinct_peers_by_day(log, std::nullopt, 3);
  EXPECT_EQ(series.total, 4u);
  EXPECT_EQ(series.fresh, (std::vector<std::uint64_t>{2, 1, 1}));
  EXPECT_EQ(series.cumulative, (std::vector<std::uint64_t>{2, 3, 4}));
}

TEST(LogStats, TypeFilterRestrictsCounting) {
  auto log = stage2({
      rec(1, 0, QueryType::hello, 0),
      rec(2, 0, QueryType::start_upload, 1),
      rec(3, 0, QueryType::request_part, 2),
  });
  EXPECT_EQ(distinct_peers_by_day(log, QueryType::hello, 1).total, 1u);
  EXPECT_EQ(distinct_peers_by_day(log, QueryType::start_upload, 1).total, 1u);
  EXPECT_EQ(distinct_peers_by_day(log, std::nullopt, 1).total, 3u);
}

TEST(LogStats, HoneypotFilterRestrictsCounting) {
  auto log = stage2({
      rec(1, 0, QueryType::hello, 0),
      rec(2, 1, QueryType::hello, 1),
      rec(3, 2, QueryType::hello, 2),
  });
  const auto only_even = [](std::uint16_t h) { return h % 2 == 0; };
  EXPECT_EQ(distinct_peers_by_day(log, std::nullopt, 1, only_even).total, 2u);
}

TEST(LogStats, CumulativeMessagesByDayAccumulates) {
  auto log = stage2({
      rec(1, 0, QueryType::request_part, 0),
      rec(2, 0, QueryType::request_part, 0),
      rec(days(2) + 1, 0, QueryType::request_part, 1),
      rec(days(2) + 2, 0, QueryType::hello, 1),  // different type: excluded
  });
  const auto series =
      cumulative_messages_by_day(log, QueryType::request_part, 3);
  EXPECT_EQ(series, (std::vector<std::uint64_t>{2, 2, 3}));
}

TEST(LogStats, MessagesByHourBuckets) {
  auto log = stage2({
      rec(60, 0, QueryType::hello, 0),
      rec(61, 0, QueryType::hello, 0),
      rec(hours(1) + 1, 0, QueryType::hello, 1),
      rec(hours(5) + 1, 0, QueryType::hello, 1),
  });
  const auto hourly = messages_by_hour(log, QueryType::hello, 6);
  EXPECT_EQ(hourly, (std::vector<std::uint64_t>{2, 1, 0, 0, 0, 1}));
}

TEST(LogStats, MostActivePeerByRecordCount) {
  auto log = stage2({
      rec(1, 0, QueryType::hello, 7),
      rec(2, 0, QueryType::request_part, 7),
      rec(3, 0, QueryType::request_part, 7),
      rec(4, 0, QueryType::hello, 8),
  });
  const auto top = most_active_peer(log);
  ASSERT_TRUE(top.has_value());
  EXPECT_EQ(*top, 7u);
  EXPECT_FALSE(most_active_peer(stage2({})).has_value());
}

TEST(LogStats, PeerMessagesByDayTracksOnePeer) {
  auto log = stage2({
      rec(1, 0, QueryType::request_part, 7),
      rec(2, 1, QueryType::request_part, 7),
      rec(days(1) + 1, 0, QueryType::request_part, 8),  // other peer
      rec(days(1) + 2, 0, QueryType::request_part, 7),
  });
  const auto series = peer_messages_by_day(log, 7, QueryType::request_part, 2);
  EXPECT_EQ(series, (std::vector<std::uint64_t>{2, 3}));
  // Honeypot filter applies too.
  const auto hp0_only = peer_messages_by_day(
      log, 7, QueryType::request_part, 2,
      [](std::uint16_t h) { return h == 0; });
  EXPECT_EQ(hp0_only, (std::vector<std::uint64_t>{1, 2}));
}

TEST(LogStats, PeerSetsByHoneypotBuildBitsets) {
  auto log = stage2({
      rec(1, 0, QueryType::hello, 0),
      rec(2, 0, QueryType::hello, 2),
      rec(3, 1, QueryType::hello, 1),
      rec(4, 2, QueryType::hello, 2),
  });
  const auto sets = peer_sets_by_honeypot(log, 3);
  ASSERT_EQ(sets.size(), 3u);
  EXPECT_EQ(sets[0].count(), 2u);
  EXPECT_EQ(sets[1].count(), 1u);
  EXPECT_EQ(sets[2].count(), 1u);
  EXPECT_TRUE(sets[0].test(0));
  EXPECT_TRUE(sets[0].test(2));
  EXPECT_TRUE(sets[2].test(2));
}

TEST(LogStats, PeerSetsByFileAttributesByQueriedFile) {
  const auto fa = FileId::from_words(1, 1);
  const auto fb = FileId::from_words(2, 2);
  auto log = stage2({
      rec(1, 0, QueryType::start_upload, 0, fa),
      rec(2, 0, QueryType::request_part, 1, fa),
      rec(3, 0, QueryType::start_upload, 2, fb),
      rec(4, 0, QueryType::hello, 3),  // no file: attributed nowhere
  });
  const std::vector<FileId> files{fa, fb};
  const auto sets = peer_sets_by_file(log, files);
  ASSERT_EQ(sets.size(), 2u);
  EXPECT_EQ(sets[0].count(), 2u);
  EXPECT_EQ(sets[1].count(), 1u);
}

TEST(LogStats, FilePopularityDescending) {
  const auto fa = FileId::from_words(1, 1);
  const auto fb = FileId::from_words(2, 2);
  auto log = stage2({
      rec(1, 0, QueryType::start_upload, 0, fa),
      rec(2, 0, QueryType::start_upload, 1, fa),
      rec(2.5, 0, QueryType::request_part, 1, fa),  // same peer: not counted
      rec(3, 0, QueryType::start_upload, 2, fb),
  });
  const auto pop = file_popularity(log);
  ASSERT_EQ(pop.size(), 2u);
  EXPECT_EQ(pop[0].file, fa);
  EXPECT_EQ(pop[0].peers, 2u);
  EXPECT_EQ(pop[1].peers, 1u);
}

TEST(LogStats, DistinctPeersTotal) {
  auto log = stage2({
      rec(1, 0, QueryType::hello, 5),
      rec(2, 1, QueryType::hello, 5),
      rec(3, 2, QueryType::hello, 6),
  });
  EXPECT_EQ(distinct_peers(log), 2u);
  EXPECT_EQ(distinct_peers(stage2({})), 0u);
}

}  // namespace
}  // namespace edhp::analysis

namespace edhp::analysis {
namespace {

TEST(ClientStats, MixCountsDistinctPeersPerClient) {
  logbook::LogFile log;
  log.header.peer_kind = logbook::PeerIdKind::stage2_index;
  const auto emule = log.intern("eMule 0.49b");
  const auto amule = log.intern("aMule 2.2.2");
  auto add = [&](std::uint64_t peer, std::uint16_t ref, bool high) {
    logbook::LogRecord r;
    r.peer = peer;
    r.name_ref = ref;
    if (high) r.flags |= logbook::kFlagHighId;
    log.records.push_back(r);
  };
  add(0, emule, true);
  add(0, emule, true);   // same peer twice: counted once
  add(1, emule, false);
  add(2, amule, true);
  add(3, 0, false);      // no name tag

  const auto mix = client_mix(log);
  ASSERT_EQ(mix.size(), 3u);
  EXPECT_EQ(mix[0].name, "eMule 0.49b");
  EXPECT_EQ(mix[0].peers, 2u);
  EXPECT_NEAR(mix[0].share, 0.5, 1e-9);
  EXPECT_EQ(mix[1].name, "aMule 2.2.2");
  EXPECT_TRUE(mix.back().name.empty());  // unnamed bucket listed last

  const auto ids = high_id_share(log);
  EXPECT_EQ(ids.high, 2u);
  EXPECT_EQ(ids.low, 2u);
  EXPECT_NEAR(ids.fraction_high(), 0.5, 1e-9);
}

TEST(ClientStats, RejectsStage1AndHandlesEmpty) {
  logbook::LogFile stage1;
  EXPECT_THROW((void)client_mix(stage1), std::invalid_argument);
  logbook::LogFile empty;
  empty.header.peer_kind = logbook::PeerIdKind::stage2_index;
  EXPECT_TRUE(client_mix(empty).empty());
  EXPECT_EQ(high_id_share(empty).fraction_high(), 0.0);
}

}  // namespace
}  // namespace edhp::analysis
