// Bitsets, thread pool, and the subset-union estimators behind Figs 10-12.

#include <gtest/gtest.h>

#include <atomic>

#include "analysis/subsets.hpp"

namespace edhp::analysis {
namespace {

TEST(DynBitset, SetTestCount) {
  DynBitset b(200);
  EXPECT_EQ(b.count(), 0u);
  b.set(0);
  b.set(63);
  b.set(64);
  b.set(199);
  EXPECT_TRUE(b.test(0));
  EXPECT_TRUE(b.test(63));
  EXPECT_TRUE(b.test(64));
  EXPECT_TRUE(b.test(199));
  EXPECT_FALSE(b.test(1));
  EXPECT_EQ(b.count(), 4u);
  b.clear();
  EXPECT_EQ(b.count(), 0u);
}

TEST(DynBitset, MergeCountsOnlyNewBits) {
  DynBitset a(128), b(128);
  a.set(1);
  a.set(100);
  b.set(100);
  b.set(101);
  EXPECT_EQ(a.merge_count_new(b), 1u);  // only 101 is new
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.merge_count_new(b), 0u);  // idempotent
}

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  EXPECT_NO_THROW(pool.wait_idle());
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(500);
  parallel_for(&pool, hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelFor, WorksInlineWithoutPool) {
  int sum = 0;
  parallel_for(nullptr, 10, [&](std::size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum, 45);
  parallel_for(nullptr, 0, [&](std::size_t) { FAIL(); });
}

std::vector<DynBitset> demo_sets() {
  // 4 sets over a universe of 10 peers with known unions.
  std::vector<DynBitset> sets(4, DynBitset(10));
  for (std::size_t i : {0u, 1u, 2u}) sets[0].set(i);
  for (std::size_t i : {2u, 3u}) sets[1].set(i);
  for (std::size_t i : {4u, 5u, 6u, 7u}) sets[2].set(i);
  for (std::size_t i : {0u, 9u}) sets[3].set(i);
  return sets;
}

TEST(SubsetCurve, FullPrefixEqualsTotalUnion) {
  const auto sets = demo_sets();
  const auto curve = subset_union_curve(sets, 50, Rng(1));
  ASSERT_EQ(curve.size(), 4u);
  // n = 4 is always the complete union (9 distinct peers), in every sample.
  EXPECT_DOUBLE_EQ(curve.avg[3], 9.0);
  EXPECT_EQ(curve.min[3], 9u);
  EXPECT_EQ(curve.max[3], 9u);
}

TEST(SubsetCurve, SingleEntryBoundsMatchSetSizes) {
  const auto sets = demo_sets();
  const auto curve = subset_union_curve(sets, 200, Rng(2));
  // n = 1: min over samples should reach the smallest set (2), max the
  // largest (4); the average lies between.
  EXPECT_EQ(curve.min[0], 2u);
  EXPECT_EQ(curve.max[0], 4u);
  EXPECT_GT(curve.avg[0], 2.0);
  EXPECT_LT(curve.avg[0], 4.0);
}

TEST(SubsetCurve, MonotoneInN) {
  const auto sets = demo_sets();
  const auto curve = subset_union_curve(sets, 30, Rng(3));
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve.avg[i], curve.avg[i - 1]);
    EXPECT_GE(curve.min[i], curve.min[i - 1]);
    EXPECT_GE(curve.max[i], curve.max[i - 1]);
  }
}

TEST(SubsetCurve, DeterministicAcrossThreadCounts) {
  const auto sets = demo_sets();
  ThreadPool pool1(1), pool4(4);
  const auto serial = subset_union_curve(sets, 64, Rng(7), nullptr);
  const auto one = subset_union_curve(sets, 64, Rng(7), &pool1);
  const auto four = subset_union_curve(sets, 64, Rng(7), &pool4);
  EXPECT_EQ(serial.avg, one.avg);
  EXPECT_EQ(serial.avg, four.avg);
  EXPECT_EQ(serial.min, four.min);
  EXPECT_EQ(serial.max, four.max);
}

TEST(SubsetCurve, EmptyInputsYieldEmptyCurves) {
  const auto curve = subset_union_curve({}, 10, Rng(1));
  EXPECT_EQ(curve.size(), 0u);
}

TEST(SubsetCurve, AgreesWithNaiveReferenceOnAverage) {
  // Statistical agreement between the permutation-prefix estimator and the
  // independent-subset reference implementation.
  Rng data_rng(11);
  constexpr std::size_t kSets = 6, kUniverse = 400;
  std::vector<DynBitset> sets(kSets, DynBitset(kUniverse));
  std::vector<std::vector<std::uint64_t>> lists(kSets);
  for (std::size_t s = 0; s < kSets; ++s) {
    const auto size = 20 + data_rng.below(60);
    for (std::uint64_t i = 0; i < size; ++i) {
      const auto v = data_rng.below(kUniverse);
      if (!sets[s].test(v)) {
        sets[s].set(v);
        lists[s].push_back(v);
      }
    }
  }
  const auto fast = subset_union_curve(sets, 400, Rng(5));
  const auto naive = subset_union_curve_naive(lists, 400, Rng(6));
  for (std::size_t n = 0; n < kSets; ++n) {
    EXPECT_NEAR(fast.avg[n], naive.avg[n], naive.avg[n] * 0.05 + 1.0)
        << "n=" << n + 1;
  }
  // Endpoints are exact in both.
  EXPECT_DOUBLE_EQ(fast.avg[kSets - 1], naive.avg[kSets - 1]);
}

}  // namespace
}  // namespace edhp::analysis
