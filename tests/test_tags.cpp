// eDonkey tag system: round-trips, wire layout, malformed input.

#include <gtest/gtest.h>

#include "proto/opcodes.hpp"
#include "proto/tags.hpp"

namespace edhp::proto {
namespace {

TEST(Tags, StringTagRoundTrip) {
  ByteWriter w;
  encode_tag(w, Tag::string_tag(kTagName, "ubuntu-8.10.iso"));
  ByteReader r(w.view());
  const Tag t = decode_tag(r);
  EXPECT_TRUE(t.is_string());
  EXPECT_EQ(t.name, kTagName);
  EXPECT_EQ(t.as_string(), "ubuntu-8.10.iso");
  EXPECT_TRUE(r.done());
}

TEST(Tags, U32TagRoundTrip) {
  ByteWriter w;
  encode_tag(w, Tag::u32_tag(kTagFileSize, 734003200));
  ByteReader r(w.view());
  const Tag t = decode_tag(r);
  EXPECT_FALSE(t.is_string());
  EXPECT_EQ(t.as_u32(), 734003200u);
}

TEST(Tags, WireLayoutOfU32Tag) {
  ByteWriter w;
  encode_tag(w, Tag::u32_tag(0x0F, 4662));
  const auto& b = w.view();
  ASSERT_EQ(b.size(), 8u);
  EXPECT_EQ(b[0], kTagTypeU32);
  EXPECT_EQ(b[1], 1);  // name length lo
  EXPECT_EQ(b[2], 0);  // name length hi
  EXPECT_EQ(b[3], 0x0F);
  EXPECT_EQ(b[4], 0x36);  // 4662 = 0x1236 little-endian
  EXPECT_EQ(b[5], 0x12);
}

TEST(Tags, WrongAccessorThrows) {
  const Tag s = Tag::string_tag(1, "x");
  const Tag n = Tag::u32_tag(2, 7);
  EXPECT_THROW((void)s.as_u32(), DecodeError);
  EXPECT_THROW((void)n.as_string(), DecodeError);
}

TEST(Tags, TagListRoundTrip) {
  std::vector<Tag> tags{
      Tag::string_tag(kTagName, "honeypot"),
      Tag::u32_tag(kTagVersion, 0x3C),
      Tag::u32_tag(kTagPort, 4662),
  };
  ByteWriter w;
  encode_tags(w, tags);
  ByteReader r(w.view());
  const auto decoded = decode_tags(r);
  EXPECT_EQ(decoded, tags);
}

TEST(Tags, EmptyTagListRoundTrip) {
  ByteWriter w;
  encode_tags(w, {});
  ByteReader r(w.view());
  EXPECT_TRUE(decode_tags(r).empty());
}

TEST(Tags, FindTagReturnsFirstMatch) {
  std::vector<Tag> tags{
      Tag::u32_tag(5, 1),
      Tag::u32_tag(7, 2),
      Tag::u32_tag(5, 3),
  };
  const Tag* t = find_tag(tags, 5);
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->as_u32(), 1u);
  EXPECT_EQ(find_tag(tags, 9), nullptr);
}

TEST(Tags, CountLimitRejectsHostileInput) {
  ByteWriter w;
  w.u32(1000000);  // absurd tag count
  ByteReader r(w.view());
  EXPECT_THROW((void)decode_tags(r, 256), DecodeError);
}

TEST(Tags, UnknownTypeRejected) {
  ByteWriter w;
  w.u8(0x99);
  w.u16(1);
  w.u8(1);
  ByteReader r(w.view());
  EXPECT_THROW((void)decode_tag(r), DecodeError);
}

TEST(Tags, EmptyNameRejected) {
  ByteWriter w;
  w.u8(kTagTypeU32);
  w.u16(0);
  w.u32(1);
  ByteReader r(w.view());
  EXPECT_THROW((void)decode_tag(r), DecodeError);
}

TEST(Tags, LongNameToleratedFirstByteWins) {
  ByteWriter w;
  w.u8(kTagTypeU32);
  w.u16(3);
  w.u8(0x42);
  w.u8(0x00);
  w.u8(0x00);
  w.u32(99);
  ByteReader r(w.view());
  const Tag t = decode_tag(r);
  EXPECT_EQ(t.name, 0x42);
  EXPECT_EQ(t.as_u32(), 99u);
}

TEST(Tags, TruncatedValueThrows) {
  ByteWriter w;
  w.u8(kTagTypeU32);
  w.u16(1);
  w.u8(1);
  w.u16(7);  // only 2 of the 4 value bytes
  ByteReader r(w.view());
  EXPECT_THROW((void)decode_tag(r), DecodeError);
}

}  // namespace
}  // namespace edhp::proto
