#!/usr/bin/env sh
# Tier-1 in one command: Release build + tests, then the ASan/UBSan preset.
#
#   scripts/tier1.sh            # both presets
#   scripts/tier1.sh --release  # release only (fast inner loop)
#   scripts/tier1.sh --asan     # sanitizer only
#   scripts/tier1.sh --fuzz     # asan preset, codec-hardening tests only
#
# The deterministic codec fuzzer and the abuse/admission tests are ordinary
# ctest entries, so both presets always run them; under the asan preset they
# double as memory-safety proofs. --fuzz is the focused loop for codec work.
#
# Requires cmake >= 3.21 (presets v3). Run from anywhere; paths resolve
# relative to the repo root.
set -eu

root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
cd "$root"

want_release=1
want_asan=1
fuzz_only=0
case "${1:-}" in
  --release) want_asan=0 ;;
  --asan) want_release=0 ;;
  --fuzz) want_release=0; fuzz_only=1 ;;
  "") ;;
  *) echo "usage: scripts/tier1.sh [--release|--asan|--fuzz]" >&2; exit 2 ;;
esac

if [ "$want_release" = 1 ]; then
  echo "== tier1: release preset =="
  cmake --preset default
  cmake --build --preset default -j
  ctest --preset default -j"$(nproc)"
fi

if [ "$want_asan" = 1 ]; then
  echo "== tier1: asan preset =="
  cmake --preset asan
  cmake --build --preset asan -j
  if [ "$fuzz_only" = 1 ]; then
    ctest --preset asan -j"$(nproc)" -R 'CodecFuzz|Abuse|Defense|Corruption|TokenBucket|Byzantine'
  else
    ctest --preset asan -j"$(nproc)"
  fi
fi

echo "== tier1: OK =="
