#!/usr/bin/env sh
# Tier-1 in one command: Release build + tests, then the ASan/UBSan preset.
#
#   scripts/tier1.sh                # both presets
#   scripts/tier1.sh --release      # release only (fast inner loop)
#   scripts/tier1.sh --asan         # sanitizer only
#   scripts/tier1.sh --fuzz         # asan preset, codec-hardening tests only
#   scripts/tier1.sh --chaosfuzz N  # release build, N-point chaos-schedule
#                                   # fuzz batch (fixed seed, deterministic)
#                                   # + committed corpus replay
#
# The deterministic codec fuzzer and the abuse/admission tests are ordinary
# ctest entries, so both presets always run them; under the asan preset they
# double as memory-safety proofs. --fuzz is the focused loop for codec work;
# --chaosfuzz is the conservation-ledger smoke (see tools/edhp_chaosfuzz.cpp):
# a fixed-seed batch means a failure here is reproducible verbatim, and any
# shrunk repro lands in tests/chaos_corpus/ ready to commit.
#
# Requires cmake >= 3.21 (presets v3). Run from anywhere; paths resolve
# relative to the repo root.
set -eu

root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
cd "$root"

want_release=1
want_asan=1
fuzz_only=0
chaosfuzz_points=0
case "${1:-}" in
  --release) want_asan=0 ;;
  --asan) want_release=0 ;;
  --fuzz) want_release=0; fuzz_only=1 ;;
  --chaosfuzz)
    want_release=0
    want_asan=0
    chaosfuzz_points="${2:-40}"
    ;;
  "") ;;
  *) echo "usage: scripts/tier1.sh [--release|--asan|--fuzz|--chaosfuzz N]" >&2; exit 2 ;;
esac

if [ "$want_release" = 1 ]; then
  echo "== tier1: release preset =="
  cmake --preset default
  cmake --build --preset default -j
  ctest --preset default -j"$(nproc)"
fi

if [ "$want_asan" = 1 ]; then
  echo "== tier1: asan preset =="
  cmake --preset asan
  cmake --build --preset asan -j
  if [ "$fuzz_only" = 1 ]; then
    ctest --preset asan -j"$(nproc)" -R 'CodecFuzz|Abuse|Defense|Corruption|TokenBucket|Byzantine'
  else
    ctest --preset asan -j"$(nproc)"
  fi
fi

if [ "$chaosfuzz_points" != 0 ]; then
  echo "== tier1: chaos-schedule fuzz ($chaosfuzz_points points) =="
  cmake --preset default
  cmake --build --preset default -j --target edhp_chaosfuzz
  build/tools/edhp_chaosfuzz --selftest
  build/tools/edhp_chaosfuzz --points="$chaosfuzz_points" --seed=20260808 --quiet
  replays=""
  for cfg in tests/chaos_corpus/*.cfg; do
    replays="$replays --replay=$cfg"
  done
  # shellcheck disable=SC2086  # word-splitting the --replay list is the point
  build/tools/edhp_chaosfuzz $replays
fi

echo "== tier1: OK =="
