// Figure 4: number of HELLO messages received each hour during the first
// week of the distributed measurement.
//
// Paper shape: ~10 minutes before the very first query; afterwards a clear
// day-night oscillation (European/North-African phase) between a few
// thousand and ~15-20k HELLOs per hour.

#include <cmath>

#include "analysis/log_stats.hpp"
#include "analysis/report.hpp"
#include "bench_common.hpp"

using namespace edhp;

int main(int argc, char** argv) {
  auto opt = bench::parse_options(argc, argv, 0.1);
  if (!opt.days) opt.days = 8;  // only the first week is plotted
  const auto result = bench::run_distributed(opt);

  constexpr std::size_t kHours = 168;
  const auto hourly = analysis::messages_by_hour(
      result.merged, logbook::QueryType::hello, kHours);

  std::vector<analysis::Series> cols(1);
  cols[0].name = "hello_per_hour";
  std::vector<double> x;
  for (const auto row : analysis::stride_rows(kHours, 56)) {
    x.push_back(static_cast<double>(row));
    cols[0].values.push_back(static_cast<double>(hourly[row]));
  }
  analysis::print_table(std::cout,
                        "Fig 4: HELLO messages per hour, first week "
                        "(strided rows; full series in fig04.dat)",
                        "hour", x, cols);

  // Full-resolution dump for plotting.
  std::vector<analysis::Series> full(1);
  full[0].name = "hello";
  for (auto v : hourly) full[0].values.push_back(static_cast<double>(v));
  analysis::write_gnuplot("fig04.dat", analysis::index_axis(kHours, true), full);

  // Shape checks: time to first query, and day/night contrast.
  double first_query = -1;
  for (const auto& r : result.merged.records) {
    if (r.type == logbook::QueryType::hello) {
      first_query = r.timestamp;
      break;
    }
  }
  std::cout << "first HELLO after " << first_query / 60.0
            << " minutes (paper: ~10 minutes)\n";

  double day_sum = 0, night_sum = 0;
  std::size_t day_n = 0, night_n = 0;
  for (std::size_t h = 24; h < kHours; ++h) {  // skip warm-up day
    const double hod = hour_of_day(static_cast<double>(h) * kHour + kHour / 2);
    if (hod >= 12 && hod < 22) {
      day_sum += static_cast<double>(hourly[h]);
      ++day_n;
    } else if (hod < 7) {
      night_sum += static_cast<double>(hourly[h]);
      ++night_n;
    }
  }
  const double contrast = (night_sum / static_cast<double>(night_n)) > 0
                              ? (day_sum / static_cast<double>(day_n)) /
                                    (night_sum / static_cast<double>(night_n))
                              : 0;
  std::cout << "day/night contrast (afternoon vs night avg): " << contrast
            << "x (paper plot suggests ~3-4x)\n";
  return 0;
}
