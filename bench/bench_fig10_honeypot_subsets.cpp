// Figure 10: number of distinct peers observed as a function of the number
// n of honeypots involved — for each n, 100 random n-subsets of the 24
// honeypots; average, minimum and maximum plotted.
//
// Paper shape: concave but far from saturated at n=24; a single honeypot
// observes between ~13k and ~37k of the ~110k total.

#include "analysis/log_stats.hpp"
#include "analysis/report.hpp"
#include "analysis/subsets.hpp"
#include "bench_common.hpp"

using namespace edhp;

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv, 0.1);
  const auto result = bench::run_distributed(opt);

  const auto sets =
      analysis::peer_sets_by_honeypot(result.merged, result.honeypots);
  analysis::ThreadPool pool;
  const auto curve = analysis::subset_union_curve(sets, 100, Rng(777), &pool);

  std::vector<analysis::Series> cols(3);
  cols[0].name = "avg_100";
  cols[1].name = "min_100";
  cols[2].name = "max_100";
  for (std::size_t i = 0; i < curve.size(); ++i) {
    cols[0].values.push_back(curve.avg[i]);
    cols[1].values.push_back(static_cast<double>(curve.min[i]));
    cols[2].values.push_back(static_cast<double>(curve.max[i]));
  }
  analysis::print_table(std::cout,
                        "Fig 10: distinct peers vs number of honeypots "
                        "(100 random subsets per n)",
                        "honeypots", analysis::index_axis(curve.size()), cols);

  if (!curve.size()) return 0;
  std::cout << "single honeypot: min " << curve.min[0] << ", avg "
            << curve.avg[0] << ", max " << curve.max[0]
            << " (paper: 13k / ~25k / 37k at scale 1)\n";
  std::cout << "all " << curve.size() << ": " << curve.avg.back()
            << " (paper: 110,049); marginal gain of the 24th honeypot: "
            << (curve.size() > 1
                    ? curve.avg.back() - curve.avg[curve.size() - 2]
                    : 0)
            << " peers (paper: still significant)\n";
  return 0;
}
