// Microbenchmarks: directory-server index at greedy-measurement scale.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "common/memstat.hpp"
#include "common/rng.hpp"
#include "server/index.hpp"

namespace {

using namespace edhp;
using namespace edhp::server;

std::vector<proto::PublishedFile> make_list(Rng& rng, std::size_t n) {
  std::vector<proto::PublishedFile> files;
  files.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    proto::PublishedFile f;
    f.file = FileId::from_words(rng(), rng());
    f.name = "file." + std::to_string(rng() % 100000) + ".avi";
    f.size = static_cast<std::uint32_t>(rng());
    files.push_back(std::move(f));
  }
  return files;
}

void BM_IndexOfferSmallLists(benchmark::State& state) {
  // Typical peers: replace a ~50-file list.
  Rng rng(1);
  FileIndex index;
  const auto list = make_list(rng, 50);
  SessionKey session = 1;
  for (auto _ : state) {
    index.set_shared_list(session++ % 1000, 0x2000000, 4662, list);
  }
  state.SetItemsProcessed(state.iterations() * 50);
}
BENCHMARK(BM_IndexOfferSmallLists);

void BM_IndexOfferGreedyList(benchmark::State& state) {
  // The greedy honeypot's keep-alive re-offers thousands of files.
  Rng rng(2);
  FileIndex index;
  const auto list = make_list(rng, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    index.set_shared_list(1, 0x2000000, 4662, list);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_IndexOfferGreedyList)->Arg(3175);

void BM_IndexSourceLookup(benchmark::State& state) {
  Rng rng(3);
  FileIndex index;
  // 200 providers of one hot file plus background noise.
  proto::PublishedFile hot;
  hot.file = FileId::from_words(42, 42);
  hot.name = "hot.file.avi";
  for (SessionKey s = 1; s <= 200; ++s) {
    auto list = make_list(rng, 20);
    list.push_back(hot);
    index.set_shared_list(s, static_cast<std::uint32_t>(0x2000000 + s), 4662,
                          list);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.sources(hot.file, 200));
  }
}
BENCHMARK(BM_IndexSourceLookup);

void BM_IndexKeywordSearch(benchmark::State& state) {
  Rng rng(4);
  FileIndex index;
  for (SessionKey s = 1; s <= 500; ++s) {
    index.set_shared_list(s, static_cast<std::uint32_t>(0x2000000 + s), 4662,
                          make_list(rng, 40));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.search("file 4242", 50));
  }
}
BENCHMARK(BM_IndexKeywordSearch);

void BM_IndexSessionChurn(benchmark::State& state) {
  // Connect-offer-disconnect cycles, the server's steady-state load.
  Rng rng(5);
  FileIndex index;
  const auto list = make_list(rng, 30);
  for (auto _ : state) {
    index.set_shared_list(7, 0x2000000, 4662, list);
    index.drop_session(7);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IndexSessionChurn);

// Headline index throughput for the BENCH_*.json trajectory: published-file
// offers indexed per second through typical 50-file list replacements.
double measure_offers_per_sec() {
  using clock = std::chrono::steady_clock;
  Rng rng(1);
  FileIndex index;
  const auto list = make_list(rng, 50);
  SessionKey session = 1;
  std::uint64_t offers = 0;
  const auto start = clock::now();
  do {
    for (int i = 0; i < 100; ++i) {
      index.set_shared_list(session++ % 1000, 0x2000000, 4662, list);
      offers += list.size();
    }
  } while (clock::now() - start < std::chrono::milliseconds(300));
  const double elapsed =
      std::chrono::duration<double>(clock::now() - start).count();
  return static_cast<double>(offers) / elapsed;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  // One machine-readable line for the perf trajectory (BENCH_*.json).
  std::printf(
      "{\"bench\":\"micro_server\",\"events_per_sec\":%.0f,"
      "\"peak_rss_bytes\":%llu}\n",
      measure_offers_per_sec(),
      static_cast<unsigned long long>(edhp::peak_rss_bytes()));
  return 0;
}
