// Ablation: memory scaling of the lazy population slab.
//
// The same paper-scale distributed campaign runs twice in lazy mode with
// the interested-peer population rescaled to 100k and then 1M peers
// (DistributedConfig::population_override rescales every per-file finite
// pool pro-rata; arrival rates stay at the campaign baseline). Records are
// streamed (counted + fingerprinted, not retained) so the dataset itself
// cannot mask the population's own footprint.
//
// Expected: peak RSS is flat in population size — the 1M run stays within
// 1.25x of the 100k run — because unarrived peers are pure per-demand
// accounting and live-peer storage tracks peak concurrency (slab slots ~=
// peak active peers), not pool size and not total arrivals (which exceed
// peak active by an order of magnitude over a multi-week campaign). A
// third run in legacy_eager mode shows the structural contrast: no slab,
// no node retirement, every arrival stays materialized forever.
//
// Run order matters: peak RSS is a process-wide high-water mark, so the
// 100k lazy run goes first (its snapshot is clean), the 1M run second (its
// snapshot is the true maximum), and the eager contrast last (its RSS
// reading is contaminated by the 1M run and is reported as counters only).

#include <chrono>
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "common/memstat.hpp"
#include "scenario/scenario.hpp"

using namespace edhp;

namespace {

scenario::DistributedConfig campaign(const bench::Options& opt,
                                     std::uint64_t population,
                                     peer::PopulationMode mode) {
  scenario::DistributedConfig config;
  config.scale = opt.scale;
  if (opt.seed != 0) config.seed = opt.seed;
  config.days = opt.days.value_or(16.0);
  config.honeypots = 8;
  config.with_top_peer = false;  // isolate the population's footprint
  config.population_override = population;
  config.stream_records = true;
  config.population_mode = mode;
  return config;
}

struct RunOutcome {
  scenario::ScenarioResult result;
  double wall_seconds = 0;
};

RunOutcome run(const bench::Options& opt, const char* label,
               std::uint64_t population, peer::PopulationMode mode) {
  using clock = std::chrono::steady_clock;
  const auto config = campaign(opt, population, mode);
  std::cout << "  " << label << ": pool " << population << ", "
            << config.days << " days, " << config.honeypots
            << " honeypots...\n";
  const auto start = clock::now();
  RunOutcome o;
  o.result = scenario::run_distributed(config);
  o.wall_seconds = std::chrono::duration<double>(clock::now() - start).count();
  const auto& r = o.result;
  std::cout << "    arrivals " << r.population_arrivals << ", peak active "
            << r.population_peak_active << ", slab slots "
            << r.population_slab_slots << ", peak live nodes "
            << r.net_peak_live_nodes << ", nodes retired "
            << r.net_nodes_retired << "\n    records streamed "
            << r.records_streamed << " (fingerprint 0x" << std::hex
            << r.stream_fingerprint << std::dec << "), peak RSS "
            << r.peak_rss_bytes / (1024 * 1024) << " MiB, "
            << static_cast<std::uint64_t>(static_cast<double>(r.sim_events) /
                                          o.wall_seconds)
            << " events/s, wall " << o.wall_seconds << " s\n";
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv, /*default_scale=*/1.0);
  std::cout << "ablation: population memory scaling (lazy slab, 100k vs 1M)\n\n";

  const RunOutcome small = run(opt, "lazy 100k", 100000,
                               peer::PopulationMode::lazy);
  const RunOutcome large = run(opt, "lazy 1M", 1000000,
                               peer::PopulationMode::lazy);
  const RunOutcome eager = run(opt, "eager 100k (contrast)", 100000,
                               peer::PopulationMode::legacy_eager);

  const double ratio =
      small.result.peak_rss_bytes > 0
          ? static_cast<double>(large.result.peak_rss_bytes) /
                static_cast<double>(small.result.peak_rss_bytes)
          : 0.0;
  std::cout << "\n  peak RSS 100k -> 1M: "
            << small.result.peak_rss_bytes / (1024 * 1024) << " MiB -> "
            << large.result.peak_rss_bytes / (1024 * 1024) << " MiB (ratio "
            << ratio << ", budget 1.25)\n";
  std::cout << "  eager contrast at 100k: slab slots "
            << eager.result.population_slab_slots << ", nodes retired "
            << eager.result.net_nodes_retired << " (every one of "
            << eager.result.population_arrivals
            << " arrivals stays materialized; RSS not comparable after the "
               "1M run)\n";
  std::cout << "\nexpected: the ratio stays under 1.25 — a 10x larger "
               "interested population is pure per-demand accounting, and "
               "live-peer memory tracks peak concurrency (slab slots ~= peak "
               "active), not pool size or total arrivals\n";

  const double events_per_sec =
      large.wall_seconds > 0
          ? static_cast<double>(large.result.sim_events) / large.wall_seconds
          : 0.0;
  std::printf(
      "{\"bench\":\"population\",\"rss_100k_bytes\":%llu,"
      "\"rss_1m_bytes\":%llu,\"rss_ratio\":%.3f,"
      "\"arrivals_100k\":%llu,\"arrivals_1m\":%llu,"
      "\"peak_active_1m\":%llu,\"slab_slots_1m\":%llu,"
      "\"peak_live_nodes_1m\":%llu,\"nodes_retired_1m\":%llu,"
      "\"records_streamed_1m\":%llu,\"events_per_sec_1m\":%.0f}\n",
      static_cast<unsigned long long>(small.result.peak_rss_bytes),
      static_cast<unsigned long long>(large.result.peak_rss_bytes), ratio,
      static_cast<unsigned long long>(small.result.population_arrivals),
      static_cast<unsigned long long>(large.result.population_arrivals),
      static_cast<unsigned long long>(large.result.population_peak_active),
      static_cast<unsigned long long>(large.result.population_slab_slots),
      static_cast<unsigned long long>(large.result.net_peak_live_nodes),
      static_cast<unsigned long long>(large.result.net_nodes_retired),
      static_cast<unsigned long long>(large.result.records_streamed),
      events_per_sec);
  return 0;
}
