// Figure 2: evolution of the number of distinct peers observed during the
// distributed measurement (cumulative) and number of new peers observed
// each day, as a function of time.
//
// Paper shape: near-linear cumulative growth to ~110k peers at day 32; new
// peers per day declining from ~5,500 to ~2,500 but never vanishing.

#include "analysis/log_stats.hpp"
#include "analysis/report.hpp"
#include "bench_common.hpp"

using namespace edhp;

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv, 0.1);
  const auto result = bench::run_distributed(opt);

  const auto days = static_cast<std::size_t>(result.days);
  const auto series =
      analysis::distinct_peers_by_day(result.merged, std::nullopt, days);

  std::vector<analysis::Series> cols(2);
  cols[0].name = "total_peers";
  cols[1].name = "new_peers";
  for (std::size_t d = 0; d < days; ++d) {
    cols[0].values.push_back(static_cast<double>(series.cumulative[d]));
    cols[1].values.push_back(static_cast<double>(series.fresh[d]));
  }
  analysis::print_table(std::cout,
                        "Fig 2: distinct peers over time (distributed)", "day",
                        analysis::index_axis(days), cols);

  const double last_day_new =
      days > 0 ? static_cast<double>(series.fresh[days - 1]) : 0;
  bench::paper_vs_measured("total distinct peers", 110049,
                           static_cast<double>(series.total), opt.scale);
  bench::paper_vs_measured("new peers on the last day", 2500, last_day_new,
                           opt.scale);
  std::cout << "shape check: growth should stay significant through day "
            << days << " (paper: >2,500/day even after a month)\n";
  return 0;
}
