// Ablation: benign-record retention vs hostile-traffic intensity.
//
// PR 3's admission-control stack (session cap with LIFO shedding, per-source
// connect and per-session message token buckets, handshake/idle reaping,
// bounded inbound queues) claims that a standing attack costs the campaign
// almost no benign data. This harness sweeps attack intensity from calm to
// 4x-nominal against an attack-free baseline, plus one undefended run at
// nominal intensity to show what the defenses are worth. Benign records are
// the ones whose truncated user hash is not the attacker marker.
//
// Usage mirrors the other ablations: --scale/--days/--seed/--quiet.

#include <chrono>
#include <cstdio>

#include "bench_common.hpp"
#include "fault/abuse.hpp"

using namespace edhp;

namespace {

struct Outcome {
  std::uint64_t benign_records;
  std::uint64_t hostile_records;
  fault::AbuseStats abuse;
  net::DefenseStats defense;
  double events_per_sec;
};

Outcome run_with(const bench::Options& opt, bool abuse, double intensity,
                 bool defended) {
  auto config = bench::distributed_config(opt);
  config.with_top_peer = false;
  config.host_mtbf = 0;  // isolate the abuse axis from host churn
  config.abuse.enabled = abuse;
  config.abuse.intensity = intensity;
  config.auto_defense = defended;
  const auto start = std::chrono::steady_clock::now();
  const auto result = scenario::run_distributed(config);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  Outcome o{};
  for (const auto& rec : result.merged.records) {
    if (rec.user == fault::kAbuseUserWord) {
      ++o.hostile_records;
    } else {
      ++o.benign_records;
    }
  }
  o.abuse = result.abuse;
  o.defense = result.defense;
  o.events_per_sec = static_cast<double>(result.sim_events) / elapsed;
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv, 0.05);
  std::cout << "ablation: benign-record retention vs attack intensity "
               "(admission control on; acceptance: >= 99% of attack-free "
               "records retained at nominal intensity)\n\n";

  const auto baseline = run_with(opt, false, 0.0, true);
  std::cout << "  attack-free baseline: " << baseline.benign_records
            << " records, "
            << static_cast<std::uint64_t>(baseline.events_per_sec)
            << " events/s\n";

  struct Case {
    const char* name;
    double intensity;
    bool defended;
  };
  const Case cases[] = {
      {"intensity 0.5x, defended", 0.5, true},
      {"intensity 1x (nominal), defended", 1.0, true},
      {"intensity 2x, defended", 2.0, true},
      {"intensity 4x, defended", 4.0, true},
      {"intensity 1x, UNDEFENDED", 1.0, false},
  };
  Outcome nominal{};  // the defended nominal case feeds the machine line
  for (const auto& c : cases) {
    const auto o = run_with(opt, true, c.intensity, c.defended);
    if (c.intensity == 1.0 && c.defended) nominal = o;
    const double retained = static_cast<double>(o.benign_records) /
                            static_cast<double>(baseline.benign_records);
    std::cout << "  " << c.name << ": benign retained " << 100.0 * retained
              << "%, " << o.hostile_records << " hostile records logged, "
              << o.abuse.connections_opened << " hostile connects ("
              << o.defense.shed << " shed, " << o.defense.rate_limited
              << " rate-limited, " << o.defense.reaped << " reaped), "
              << o.defense.queue_dropped << " queue-dropped, "
              << o.defense.malformed << " malformed packets, "
              << static_cast<std::uint64_t>(o.events_per_sec) << " events/s\n";
  }
  std::cout << "\nexpected: benign retention stays >= 99% across the defended "
               "sweep; the undefended run shows the same hostile load with "
               "zero shed/rate-limited/reaped decisions\n";
  const double nominal_retained =
      static_cast<double>(nominal.benign_records) /
      static_cast<double>(baseline.benign_records);
  // One machine-readable line for the perf trajectory (BENCH_abuse.json):
  // the defended nominal-intensity run.
  std::printf(
      "{\"bench\":\"abuse\",\"benign_retained_pct\":%.3f,"
      "\"hostile_connects\":%llu,\"shed\":%llu,\"rate_limited\":%llu,"
      "\"reaped\":%llu,\"malformed\":%llu,\"events_per_sec\":%.0f}\n",
      100.0 * nominal_retained,
      static_cast<unsigned long long>(nominal.abuse.connections_opened),
      static_cast<unsigned long long>(nominal.defense.shed),
      static_cast<unsigned long long>(nominal.defense.rate_limited),
      static_cast<unsigned long long>(nominal.defense.reaped),
      static_cast<unsigned long long>(nominal.defense.malformed),
      nominal.events_per_sec);
  return 0;
}
