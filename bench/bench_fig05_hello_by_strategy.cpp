// Figure 5: distinct peers sending HELLO to the random-content vs
// no-content honeypot groups over the distributed measurement.
//
// Paper shape: both grow near-linearly all month; random-content ends
// noticeably (but not hugely) above no-content — the blacklisting signal.

#include "analysis/log_stats.hpp"
#include "analysis/report.hpp"
#include "bench_common.hpp"

using namespace edhp;

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv, 0.1);
  const auto result = bench::run_distributed(opt);
  const auto days = static_cast<std::size_t>(result.days);

  const auto random_series = analysis::distinct_peers_by_day(
      result.merged, logbook::QueryType::hello, days,
      scenario::strategy_filter(result, true));
  const auto none_series = analysis::distinct_peers_by_day(
      result.merged, logbook::QueryType::hello, days,
      scenario::strategy_filter(result, false));

  std::vector<analysis::Series> cols(2);
  cols[0].name = "random_content";
  cols[1].name = "no_content";
  for (std::size_t d = 0; d < days; ++d) {
    cols[0].values.push_back(static_cast<double>(random_series.cumulative[d]));
    cols[1].values.push_back(static_cast<double>(none_series.cumulative[d]));
  }
  analysis::print_table(std::cout,
                        "Fig 5: distinct peers sending HELLO, by strategy",
                        "day", analysis::index_axis(days), cols);

  const double rc = static_cast<double>(random_series.total);
  const double nc = static_cast<double>(none_series.total);
  std::cout << "final: random-content " << rc << ", no-content " << nc
            << " -> ratio " << (nc > 0 ? rc / nc : 0)
            << " (paper plot: ~85k vs ~72k, ratio ~1.15-1.2)\n";
  std::cout << "blacklist: " << result.blacklist_reports
            << " published detections; mean reputation no-content "
            << result.reputation_no_content << " vs random-content "
            << result.reputation_random_content << "\n";
  return 0;
}
