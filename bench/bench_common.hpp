#pragma once
// Shared helpers for the figure/table reproduction harnesses.
//
// Every harness accepts:
//   --scale=<f>   population scale (default 0.2; 1.0 = paper scale)
//   --paper       shorthand for --scale=1.0
//   --seed=<n>    RNG seed
//   --days=<d>    shorten the measurement (shapes preserved)
//   --quiet       suppress per-day progress
// and prints the same rows/series the paper reports, plus a recap of the
// paper's values for comparison.

#include <cstdint>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "scenario/scenario.hpp"

namespace edhp::bench {

struct Options {
  double scale = 0.2;
  std::uint64_t seed = 0;  ///< 0: keep the scenario default
  std::optional<double> days;
  bool quiet = false;
};

inline Options parse_options(int argc, char** argv, double default_scale = 0.2) {
  Options opt;
  opt.scale = default_scale;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--paper") {
      opt.scale = 1.0;
    } else if (arg.rfind("--scale=", 0) == 0) {
      opt.scale = std::stod(arg.substr(8));
    } else if (arg.rfind("--seed=", 0) == 0) {
      opt.seed = std::stoull(arg.substr(7));
    } else if (arg.rfind("--days=", 0) == 0) {
      opt.days = std::stod(arg.substr(7));
    } else if (arg == "--quiet") {
      opt.quiet = true;
    } else if (arg == "--help") {
      std::cout << "options: --scale=<f> | --paper | --seed=<n> | --days=<d> "
                   "| --quiet\n";
      std::exit(0);
    }
  }
  return opt;
}

inline scenario::DistributedConfig distributed_config(const Options& opt) {
  scenario::DistributedConfig config;
  config.scale = opt.scale;
  if (opt.seed != 0) config.seed = opt.seed;
  if (opt.days) config.days = *opt.days;
  return config;
}

inline scenario::GreedyConfig greedy_config(const Options& opt) {
  scenario::GreedyConfig config;
  config.scale = opt.scale;
  if (opt.seed != 0) config.seed = opt.seed;
  if (opt.days) config.days = *opt.days;
  return config;
}

inline scenario::ScenarioResult run_distributed(const Options& opt) {
  auto config = distributed_config(opt);
  std::cout << "running distributed measurement: scale=" << config.scale
            << " honeypots=" << config.honeypots << " days=" << config.days
            << "\n";
  return scenario::run_distributed(config, opt.quiet ? nullptr : &std::cout);
}

inline scenario::ScenarioResult run_greedy(const Options& opt) {
  auto config = greedy_config(opt);
  std::cout << "running greedy measurement: scale=" << config.scale
            << " days=" << config.days << "\n";
  return scenario::run_greedy(config, opt.quiet ? nullptr : &std::cout);
}

/// "paper reports X (at scale 1.0); measured Y" one-liner.
inline void paper_vs_measured(std::string_view what, double paper_value,
                              double measured, double scale) {
  std::cout << "  " << what << ": paper " << paper_value
            << " | measured " << measured;
  if (scale != 1.0) {
    std::cout << " (at scale " << scale << ", scale-adjusted paper ~"
              << paper_value * scale << ")";
  }
  std::cout << "\n";
}

}  // namespace edhp::bench
