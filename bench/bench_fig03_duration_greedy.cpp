// Figure 3: evolution of the number of distinct peers observed during the
// greedy measurement plus new peers per day.
//
// Paper shape: negligible day 1 (the harvest/initialisation phase), then a
// stable ~54,000 new peers per day up to ~871k total at day 15.

#include "analysis/log_stats.hpp"
#include "analysis/report.hpp"
#include "bench_common.hpp"

using namespace edhp;

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv, 0.1);
  const auto result = bench::run_greedy(opt);

  const auto days = static_cast<std::size_t>(result.days);
  const auto series =
      analysis::distinct_peers_by_day(result.merged, std::nullopt, days);

  std::vector<analysis::Series> cols(2);
  cols[0].name = "total_peers";
  cols[1].name = "new_peers";
  for (std::size_t d = 0; d < days; ++d) {
    cols[0].values.push_back(static_cast<double>(series.cumulative[d]));
    cols[1].values.push_back(static_cast<double>(series.fresh[d]));
  }
  analysis::print_table(std::cout, "Fig 3: distinct peers over time (greedy)",
                        "day", analysis::index_axis(days), cols);

  std::cout << "advertised files after harvest: " << result.advertised_files
            << " (paper: 3,175)\n";
  bench::paper_vs_measured("total distinct peers", 871445,
                           static_cast<double>(series.total), opt.scale);
  if (days >= 3) {
    const double day1 = static_cast<double>(series.fresh[0]);
    double later = 0;
    for (std::size_t d = 2; d < days; ++d) {
      later += static_cast<double>(series.fresh[d]);
    }
    later /= static_cast<double>(days - 2);
    std::cout << "initialisation check: day-1 new peers " << day1
              << " vs steady-state " << later
              << "/day (paper: day 1 invisible on the plot; then ~54,000/day "
               "at scale 1)\n";
  }
  return 0;
}
