// Ablation: conservation-ledger cost and coverage.
//
// Two claims, measured in one harness:
//
//   1. Cost — auditing is (nearly) free. The only hot-path addition is one
//      unconditional counter increment at record-stamp time; everything
//      else reads counters the subsystems already keep. Best-of-3 timed
//      twin runs, audit off vs on, must stay within 5% events/s.
//
//   2. Coverage — the balance equation  born == merged + Σ accounted
//      holds across a sweep of composed chaos configurations: silence
//      faults, abuse traffic, byzantine lies, clock faults, resource
//      budgets, and all of them at once. Zero unaccounted records across
//      the whole sweep, with the loss landing in *named* dispositions.
//
// Usage mirrors the other ablations: --scale/--days/--seed/--quiet.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string_view>
#include <vector>

#include "bench_common.hpp"

using namespace edhp;

namespace {

double one_run(const scenario::DistributedConfig& config,
               std::uint64_t* events) {
  const auto start = std::chrono::steady_clock::now();
  const auto r = scenario::run_distributed(config);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  *events = r.sim_events;
  return static_cast<double>(r.sim_events) / elapsed;
}

/// Audit-on/off throughput comparison robust to machine noise: seven
/// back-to-back (off, on) pairs after one untimed warm-up. Each pair shares
/// its slice of machine state (caches, thermal/throttle phase), so the
/// per-pair on/off RATIO is far steadier than any absolute rate; the median
/// ratio then shrugs off the odd descheduled run that best-of-N absolute
/// comparisons are hostage to. Returns the median on/off ratio; the peak
/// absolute rates come back for the human row and the perf trajectory.
double timed_twins(scenario::DistributedConfig config, double* rate_off,
                   double* rate_on, std::uint64_t* events_off,
                   std::uint64_t* events_on) {
  std::uint64_t scratch = 0;
  config.audit = false;
  (void)one_run(config, &scratch);  // warm-up, untimed
  *rate_off = *rate_on = 0;
  std::vector<double> ratios;
  for (int rep = 0; rep < 7; ++rep) {
    // Alternate which variant goes first so a slow monotonic drift (thermal
    // ramp, background load decay) biases neither side.
    double off = 0, on = 0;
    if (rep % 2 == 0) {
      config.audit = false;
      off = one_run(config, events_off);
      config.audit = true;
      on = one_run(config, events_on);
    } else {
      config.audit = true;
      on = one_run(config, events_on);
      config.audit = false;
      off = one_run(config, events_off);
    }
    *rate_off = std::max(*rate_off, off);
    *rate_on = std::max(*rate_on, on);
    ratios.push_back(on / off);
  }
  std::sort(ratios.begin(), ratios.end());
  return ratios[ratios.size() / 2];
}

struct SweepCase {
  const char* name;
  void (*arm)(scenario::DistributedConfig&);
};

void arm_silence(scenario::DistributedConfig& c) {
  c.chaos.enabled = true;
  c.chaos.host_mtbf = hours(18);
  c.chaos.uplink_mtbf = hours(16);
  c.chaos.server_mtbf = days(2);
}

void arm_abuse(scenario::DistributedConfig& c) {
  arm_silence(c);
  c.abuse.enabled = true;
}

void arm_byzantine(scenario::DistributedConfig& c) {
  arm_abuse(c);
  auto& b = c.chaos.byzantine;
  b.enabled = true;
  b.fabricate_mtbf = hours(12);
  b.stale_index_mtbf = hours(12);
  b.forge_list_mtba = hours(4);
  b.replay_hello_mtba = hours(4);
}

void arm_clock(scenario::DistributedConfig& c) {
  arm_byzantine(c);
  c.chaos.clock_drift_mtbf = days(2);
  c.chaos.clock_step_mtbf = hours(12);
  c.chaos.clock_step_max = 60.0;
}

void arm_budgets(scenario::DistributedConfig& c) {
  arm_clock(c);
  c.chaos.disk_quota_bytes = 192 * 1024;
  c.chaos.mem_budget_records = 4096;
}

void arm_everything(scenario::DistributedConfig& c) {
  arm_budgets(c);
  c.chaos.manager_mtbf = days(1);
  c.chaos.disk_full_mtbf = hours(12);
  c.chaos.mem_pressure_mtbf = hours(12);
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv, 0.02);
  std::cout << "ablation: conservation-ledger cost and coverage (acceptance: "
               "audit-on within 5% events/s of audit-off; zero unaccounted "
               "records across the composed-chaos sweep)\n\n";
  bool all_ok = true;

  // --- Cost: timed twins on the chaos-off hot path -------------------------
  auto base = bench::distributed_config(opt);
  base.with_top_peer = false;
  std::uint64_t events_off = 0, events_on = 0;
  double rate_off = 0, rate_on = 0;
  const double median_ratio =
      timed_twins(base, &rate_off, &rate_on, &events_off, &events_on);
  // Two noise-contaminated estimators of the same ratio: the median of the
  // paired runs (robust to outlier runs, hostage to slow load waves) and
  // peak-vs-peak (robust to waves, hostage to one descheduled side). Real
  // overhead shows in both; noise rarely inflates both, so gate on the
  // smaller.
  const double overhead_pct =
      100.0 * (1.0 - std::max(median_ratio, rate_on / rate_off));
  std::cout << "  audit off: " << static_cast<std::uint64_t>(rate_off)
            << " events/s   audit on: " << static_cast<std::uint64_t>(rate_on)
            << " events/s   overhead (min of median-paired and peak-vs-peak): "
            << overhead_pct << "%\n";
  if (events_on != events_off) {
    std::cout << "  EVENT COUNTS DIVERGED (auditing must not change "
                 "behaviour): off=" << events_off << " on=" << events_on
              << "\n";
    all_ok = false;
  }
  if (overhead_pct > 5.0) {
    std::cout << "  OVERHEAD GATE FAILED (> 5%)\n";
    all_ok = false;
  }

  // --- Coverage: the composed-chaos sweep, every run audited ---------------
  const SweepCase cases[] = {
      {"silence faults", arm_silence},
      {"+ abuse", arm_abuse},
      {"+ byzantine", arm_byzantine},
      {"+ clock faults", arm_clock},
      {"+ budgets", arm_budgets},
      {"+ manager churn + resource faults", arm_everything},
  };
  std::cout << "\n  composed-chaos sweep (audited; imbalance throws and fails "
               "the bench):\n";
  std::uint64_t sweep_born = 0, sweep_accounted = 0;
  std::int64_t unaccounted_total = 0;
  for (const auto& c : cases) {
    auto config = bench::distributed_config(opt);
    config.with_top_peer = false;
    config.audit = true;
    c.arm(config);
    audit::AuditStats a;
    try {
      a = scenario::run_distributed(config).audit;
    } catch (const audit::ImbalanceError& e) {
      std::cout << "  " << c.name << ": IMBALANCE — " << e.what() << "\n";
      all_ok = false;
      continue;
    }
    std::cout << "  " << c.name << ": " << a.breakdown() << "\n";
    sweep_born += a.records_born;
    sweep_accounted += a.accounted();
    unaccounted_total += a.unaccounted();
    all_ok = all_ok && a.balanced();
  }

  std::cout << "\nexpected: overhead under 5% with identical event counts; "
               "every sweep row balanced, losses in named dispositions\n";
  if (!all_ok) std::cout << "ACCEPTANCE FAILED (see rows above)\n";
  // One machine-readable line for the perf trajectory (BENCH_audit.json).
  std::printf(
      "{\"bench\":\"audit\",\"overhead_pct\":%.2f,"
      "\"events_per_sec_on\":%.0f,\"events_per_sec_off\":%.0f,"
      "\"sweep_cases\":%zu,\"sweep_born\":%llu,\"sweep_accounted\":%llu,"
      "\"unaccounted_total\":%lld}\n",
      overhead_pct, rate_on, rate_off, std::size(cases),
      static_cast<unsigned long long>(sweep_born),
      static_cast<unsigned long long>(sweep_accounted),
      static_cast<long long>(unaccounted_total));
  return all_ok ? 0 : 1;
}
