// Ablation: record loss vs host MTBF under the fault model.
//
// The paper's manager exists because PlanetLab hosts die mid-campaign; our
// recovery stack (retry backoff, watchdog escalation, crash-safe spooling)
// claims that churn costs almost no data. This harness sweeps host MTBF
// from "paper-like" (16 days) down to hostile (2 days) against a crash-free
// baseline and reports the retained record fraction, the recovery work the
// fleet performed, and the engine throughput under chaos.

#include <chrono>
#include <cstdio>

#include "bench_common.hpp"

using namespace edhp;

namespace {

struct Outcome {
  std::uint64_t records;
  std::uint64_t crashes;
  std::uint64_t relaunches;
  std::uint64_t escalations;
  std::uint64_t retries;
  std::uint64_t lost_tail;
  double retained;      ///< kept / generated, from RecoveryStats
  double downtime_h;    ///< fleet-sum dead time, hours
  double events_per_sec;
};

Outcome run_with(const bench::Options& opt, bool chaos, Duration host_mtbf) {
  auto config = bench::distributed_config(opt);
  config.with_top_peer = false;
  config.chaos.enabled = chaos;
  config.chaos.host_mtbf = host_mtbf;
  if (!chaos) config.host_mtbf = 0;  // crash-free baseline
  const auto start = std::chrono::steady_clock::now();
  const auto result = scenario::run_distributed(config);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return Outcome{
      result.merged.records.size(),
      result.faults.host_crashes,
      result.recovery.relaunches,
      result.recovery.escalations + result.recovery.heartbeat_escalations,
      result.recovery.honeypot_retries,
      result.recovery.records_lost_tail,
      result.recovery.retained_fraction,
      result.recovery.total_downtime / 3600.0,
      static_cast<double>(result.sim_events) / elapsed};
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv, 0.05);
  std::cout << "ablation: record loss vs host MTBF (spooling + relaunch; "
               "acceptance: >= 99% retained at the paper's 16-day MTBF)\n\n";

  const auto baseline = run_with(opt, false, 0);
  std::cout << "  crash-free baseline: " << baseline.records << " records, "
            << static_cast<std::uint64_t>(baseline.events_per_sec)
            << " events/s\n";

  struct Case {
    const char* name;
    double mtbf_days;
  };
  const Case cases[] = {
      {"mtbf 32 days", 32.0},
      {"mtbf 16 days (paper)", 16.0},
      {"mtbf 8 days", 8.0},
      {"mtbf 4 days", 4.0},
      {"mtbf 2 days", 2.0},
  };
  Outcome paper{};  // the 16-day case feeds the machine-readable line
  for (const auto& c : cases) {
    const auto o = run_with(opt, true, c.mtbf_days * kDay);
    if (c.mtbf_days == 16.0) paper = o;
    const double vs_baseline =
        static_cast<double>(o.records) / static_cast<double>(baseline.records);
    std::cout << "  " << c.name << ": retained " << 100.0 * o.retained
              << "% (vs baseline " << 100.0 * vs_baseline << "%), "
              << o.crashes << " crashes, " << o.relaunches << " relaunches, "
              << o.escalations << " escalations, " << o.retries
              << " self-retries, " << o.lost_tail << " records lost in tails, "
              << o.downtime_h << " h fleet downtime, "
              << static_cast<std::uint64_t>(o.events_per_sec) << " events/s\n";
  }
  std::cout << "\nexpected: retained fraction degrades smoothly as MTBF "
               "shrinks but stays >= 99% at 16 days; relaunch/escalation "
               "counts grow roughly inversely with MTBF\n";
  // One machine-readable line for the perf trajectory (BENCH_faults.json):
  // the paper-MTBF chaos run.
  std::printf(
      "{\"bench\":\"faults\",\"retained_pct\":%.3f,\"relaunches\":%llu,"
      "\"escalations\":%llu,\"events_per_sec\":%.0f}\n",
      100.0 * paper.retained,
      static_cast<unsigned long long>(paper.relaunches),
      static_cast<unsigned long long>(paper.escalations),
      paper.events_per_sec);
  return 0;
}
