// Microbenchmarks + ablation for the Fig 10-12 subset estimators.
//
// DESIGN.md's design choice: dense bitsets + permutation-prefix sampling,
// parallelised with per-sample RNG streams. The ablation compares the naive
// independent-subset hash-set estimator against the bitset estimator,
// serial and on the thread pool.

#include <benchmark/benchmark.h>

#include "analysis/subsets.hpp"

namespace {

using namespace edhp;
using namespace edhp::analysis;

struct Data {
  std::vector<DynBitset> sets;
  std::vector<std::vector<std::uint64_t>> lists;
};

Data make_data(std::size_t n_sets, std::size_t universe, std::size_t set_size) {
  Data d;
  Rng rng(99);
  d.sets.assign(n_sets, DynBitset(universe));
  d.lists.resize(n_sets);
  for (std::size_t s = 0; s < n_sets; ++s) {
    for (std::size_t i = 0; i < set_size; ++i) {
      const auto v = rng.below(universe);
      if (!d.sets[s].test(v)) {
        d.sets[s].set(v);
        d.lists[s].push_back(v);
      }
    }
  }
  return d;
}

void BM_SubsetCurve_NaiveHashSets(benchmark::State& state) {
  const auto d = make_data(24, static_cast<std::size_t>(state.range(0)),
                           static_cast<std::size_t>(state.range(0)) / 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(subset_union_curve_naive(d.lists, 20, Rng(1)));
  }
}
BENCHMARK(BM_SubsetCurve_NaiveHashSets)->Arg(2000)->Arg(20000)
    ->Unit(benchmark::kMillisecond);

void BM_SubsetCurve_BitsetSerial(benchmark::State& state) {
  const auto d = make_data(24, static_cast<std::size_t>(state.range(0)),
                           static_cast<std::size_t>(state.range(0)) / 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(subset_union_curve(d.sets, 100, Rng(1), nullptr));
  }
}
BENCHMARK(BM_SubsetCurve_BitsetSerial)->Arg(2000)->Arg(20000)->Arg(120000)
    ->Unit(benchmark::kMillisecond);

void BM_SubsetCurve_BitsetPool(benchmark::State& state) {
  const auto d = make_data(24, static_cast<std::size_t>(state.range(0)),
                           static_cast<std::size_t>(state.range(0)) / 5);
  ThreadPool pool;
  for (auto _ : state) {
    benchmark::DoNotOptimize(subset_union_curve(d.sets, 100, Rng(1), &pool));
  }
}
BENCHMARK(BM_SubsetCurve_BitsetPool)->Arg(2000)->Arg(20000)->Arg(120000)
    ->Unit(benchmark::kMillisecond);

void BM_SubsetCurve_100FilesGreedyShape(benchmark::State& state) {
  // Fig 11/12 shape: 100 file-sets over a large peer universe.
  const auto d = make_data(100, 800000, 2000);
  ThreadPool pool;
  for (auto _ : state) {
    benchmark::DoNotOptimize(subset_union_curve(d.sets, 100, Rng(1), &pool));
  }
}
BENCHMARK(BM_SubsetCurve_100FilesGreedyShape)->Unit(benchmark::kMillisecond);

void BM_BitsetMerge(benchmark::State& state) {
  DynBitset a(static_cast<std::size_t>(state.range(0)));
  DynBitset b(static_cast<std::size_t>(state.range(0)));
  Rng rng(3);
  for (int i = 0; i < state.range(0) / 10; ++i) {
    b.set(rng.below(static_cast<std::uint64_t>(state.range(0))));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.merge_count_new(b));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0) / 8);
}
BENCHMARK(BM_BitsetMerge)->Arg(120000)->Arg(1000000);

}  // namespace

BENCHMARK_MAIN();
