// Figure 11: distinct peers observed by the greedy measurement as a
// function of the number of advertised files, for a set of 100 randomly
// chosen files (100 random subsets per n; avg/min/max).
//
// Paper shape: near-linear growth; on average each new file brings ~1,000
// new peers.

#include "analysis/log_stats.hpp"
#include "analysis/report.hpp"
#include "analysis/subsets.hpp"
#include "bench_common.hpp"

using namespace edhp;

// NOTE: per-file demand is a network property and is NOT scaled; only the
// harvested-list size scales. Compare absolute values at --paper; at lower
// scales the 100-file sample covers a larger fraction of a smaller list,
// which inflates overlap and compresses the popular/random contrast.

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv, 0.3);
  const auto result = bench::run_greedy(opt);

  // 100 randomly chosen advertised files.
  Rng pick(4242);
  std::vector<FileId> chosen;
  const std::size_t n_files = std::min<std::size_t>(100, result.advertised_ids.size());
  for (auto idx : pick.sample_indices(result.advertised_ids.size(), n_files)) {
    chosen.push_back(result.advertised_ids[idx]);
  }

  const auto sets = analysis::peer_sets_by_file(result.merged, chosen);
  analysis::ThreadPool pool;
  const auto curve = analysis::subset_union_curve(sets, 100, Rng(777), &pool);

  std::vector<analysis::Series> cols(3);
  cols[0].name = "avg_100";
  cols[1].name = "min_100";
  cols[2].name = "max_100";
  std::vector<double> x;
  for (const auto row : analysis::stride_rows(curve.size(), 34)) {
    x.push_back(static_cast<double>(row + 1));
    cols[0].values.push_back(curve.avg[row]);
    cols[1].values.push_back(static_cast<double>(curve.min[row]));
    cols[2].values.push_back(static_cast<double>(curve.max[row]));
  }
  analysis::print_table(std::cout,
                        "Fig 11: distinct peers vs number of advertised files "
                        "(random-files set)",
                        "files", x, cols);

  if (curve.size() > 1) {
    const double per_file = curve.avg.back() / static_cast<double>(curve.size());
    bench::paper_vs_measured("peers at 100 random files", 100000,
                             curve.avg.back(), 1.0);
    std::cout << "new peers per added file: " << per_file
              << " (paper: ~1,000 at scale 1)\n";
  }
  return 0;
}
