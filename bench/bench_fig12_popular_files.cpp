// Figure 12: distinct peers observed by the greedy measurement as a
// function of the number of advertised files, for the 100 files queried by
// the largest number of peers (popular-files set).
//
// Paper shape: near-linear; ~2,700 peers per file on average; the most
// popular single file was queried by 13,373 peers, while some files drew
// only 2.

#include "analysis/log_stats.hpp"
#include "analysis/report.hpp"
#include "analysis/subsets.hpp"
#include "bench_common.hpp"

using namespace edhp;

// NOTE: per-file demand is a network property and is NOT scaled; only the
// harvested-list size scales. Compare absolute values at --paper; at lower
// scales the 100-file sample covers a larger fraction of a smaller list,
// which inflates overlap and compresses the popular/random contrast.

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv, 0.3);
  const auto result = bench::run_greedy(opt);

  const auto popularity = analysis::file_popularity(result.merged);
  const std::size_t n_files = std::min<std::size_t>(100, popularity.size());
  std::vector<FileId> chosen;
  chosen.reserve(n_files);
  for (std::size_t i = 0; i < n_files; ++i) {
    chosen.push_back(popularity[i].file);
  }

  const auto sets = analysis::peer_sets_by_file(result.merged, chosen);
  analysis::ThreadPool pool;
  const auto curve = analysis::subset_union_curve(sets, 100, Rng(777), &pool);

  std::vector<analysis::Series> cols(3);
  cols[0].name = "avg_100";
  cols[1].name = "min_100";
  cols[2].name = "max_100";
  std::vector<double> x;
  for (const auto row : analysis::stride_rows(curve.size(), 34)) {
    x.push_back(static_cast<double>(row + 1));
    cols[0].values.push_back(curve.avg[row]);
    cols[1].values.push_back(static_cast<double>(curve.min[row]));
    cols[2].values.push_back(static_cast<double>(curve.max[row]));
  }
  analysis::print_table(std::cout,
                        "Fig 12: distinct peers vs number of advertised files "
                        "(popular-files set)",
                        "files", x, cols);

  if (!popularity.empty() && curve.size() > 1) {
    bench::paper_vs_measured("peers at 100 popular files", 270000,
                             curve.avg.back(), 1.0);
    bench::paper_vs_measured("most popular file's peers", 13373,
                             static_cast<double>(popularity.front().peers),
                             1.0);
    std::cout << "least-queried advertised file: "
              << popularity.back().peers
              << " peers (paper: some files saw only 2)\n";
    std::cout << "new peers per added file: "
              << curve.avg.back() / static_cast<double>(curve.size())
              << " (paper: ~2,700 at scale 1)\n";
  }
  return 0;
}
