// Figure 6: distinct peers sending START-UPLOAD to each strategy group.
//
// Paper shape: same ordering as Fig 5 (random-content above no-content),
// at roughly two thirds of the HELLO peer counts.

#include "analysis/log_stats.hpp"
#include "analysis/report.hpp"
#include "bench_common.hpp"

using namespace edhp;

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv, 0.1);
  const auto result = bench::run_distributed(opt);
  const auto days = static_cast<std::size_t>(result.days);

  const auto random_series = analysis::distinct_peers_by_day(
      result.merged, logbook::QueryType::start_upload, days,
      scenario::strategy_filter(result, true));
  const auto none_series = analysis::distinct_peers_by_day(
      result.merged, logbook::QueryType::start_upload, days,
      scenario::strategy_filter(result, false));
  const auto hello_random = analysis::distinct_peers_by_day(
      result.merged, logbook::QueryType::hello, days,
      scenario::strategy_filter(result, true));

  std::vector<analysis::Series> cols(2);
  cols[0].name = "random_content";
  cols[1].name = "no_content";
  for (std::size_t d = 0; d < days; ++d) {
    cols[0].values.push_back(static_cast<double>(random_series.cumulative[d]));
    cols[1].values.push_back(static_cast<double>(none_series.cumulative[d]));
  }
  analysis::print_table(
      std::cout, "Fig 6: distinct peers sending START-UPLOAD, by strategy",
      "day", analysis::index_axis(days), cols);

  const double rc = static_cast<double>(random_series.total);
  const double nc = static_cast<double>(none_series.total);
  const double hello_rc = static_cast<double>(hello_random.total);
  std::cout << "final: random-content " << rc << ", no-content " << nc
            << " (paper: ~57k vs ~46k)\n";
  std::cout << "START-UPLOAD/HELLO peer ratio (random group): "
            << (hello_rc > 0 ? rc / hello_rc : 0)
            << " (paper: roughly 2/3)\n";
  return 0;
}
