// Microbenchmarks: simulation kernel, RNG and network primitives — the
// per-event costs that bound full-measurement runtimes.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>

#include "common/memstat.hpp"
#include "net/network.hpp"
#include "sim/diurnal.hpp"
#include "sim/simulation.hpp"

namespace {

using namespace edhp;

void BM_EventScheduleAndRun(benchmark::State& state) {
  // Schedule/execute cycles through a queue preloaded to the given depth.
  const auto depth = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulation s;
    std::uint64_t sink = 0;
    state.ResumeTiming();
    for (std::size_t i = 0; i < depth; ++i) {
      s.schedule_at(static_cast<double>(i % 97), [&sink] { ++sink; });
    }
    s.run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventScheduleAndRun)->Arg(1024)->Arg(65536);

void BM_TimerCancelChurn(benchmark::State& state) {
  // The downloader pattern: arm a timeout, cancel it when the answer lands.
  sim::Simulation s;
  for (auto _ : state) {
    auto h = s.schedule_at(s.now() + 1000.0, [] {});
    s.cancel(h);
    s.schedule_at(s.now() + 0.001, [] {});
    s.run_until(s.now() + 0.001);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TimerCancelChurn);

void BM_RngUniform(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.uniform());
  }
}
BENCHMARK(BM_RngUniform);

void BM_RngPoissonSmallMean(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.poisson(2.2));
  }
}
BENCHMARK(BM_RngPoissonSmallMean);

void BM_ZipfSample(benchmark::State& state) {
  ZipfSampler zipf(static_cast<std::size_t>(state.range(0)), 0.9);
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.sample(rng));
  }
}
BENCHMARK(BM_ZipfSample)->Arg(8000)->Arg(500000);

void BM_DiurnalFactor(benchmark::State& state) {
  const auto profile = sim::DiurnalProfile::european_2008();
  double t = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(profile.factor(t));
    t += 37.0;
  }
}
BENCHMARK(BM_DiurnalFactor);

void BM_NetworkMessageRoundtrip(benchmark::State& state) {
  // One message through the simulated transport (send + delivery event).
  sim::Simulation s;
  net::Network net(s);
  const auto a = net.add_node(true);
  const auto b = net.add_node(true);
  net::EndpointPtr client, server_side;
  std::uint64_t received = 0;
  net.listen(b, [&](net::EndpointPtr ep) {
    server_side = std::move(ep);
    server_side->on_message([&](net::Bytes) { ++received; });
  });
  net.connect(a, b, [&](net::EndpointPtr ep) { client = std::move(ep); });
  s.run();

  net::Bytes payload(64, 0xAB);
  for (auto _ : state) {
    client->send(payload);
    s.run();
  }
  benchmark::DoNotOptimize(received);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NetworkMessageRoundtrip);

// Headline kernel throughput for the BENCH_*.json trajectory: 1024
// concurrent self-rescheduling chains (the keep-alive timer load of a full
// campaign), each hop costing one heap pop, one slab recycle and one
// schedule at realistic queue depth. The chain closure is a plain value
// type: with the move-only inline Action there is no shared_ptr<function>
// trampoline and no allocation per hop — the loop measures the kernel, not
// the allocator.
struct ChainHop {
  sim::Simulation* s;
  double period;
  void operator()() const { s->schedule_in(period, *this); }
};

double measure_events_per_sec() {
  using clock = std::chrono::steady_clock;
  sim::Simulation s;
  for (int i = 0; i < 1024; ++i) {
    const double period = 1.0 + static_cast<double>(i % 97);
    s.schedule_in(period, ChainHop{&s, period});
  }
  const auto start = clock::now();
  do {
    s.run_until(s.now() + 1000.0);
  } while (clock::now() - start < std::chrono::milliseconds(300));
  const double elapsed =
      std::chrono::duration<double>(clock::now() - start).count();
  return static_cast<double>(s.executed()) / elapsed;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  // One machine-readable line for the perf trajectory (BENCH_*.json).
  std::printf(
      "{\"bench\":\"micro_sim\",\"events_per_sec\":%.0f,"
      "\"peak_rss_bytes\":%llu}\n",
      measure_events_per_sec(),
      static_cast<unsigned long long>(edhp::peak_rss_bytes()));
  return 0;
}
