// Figure 7: cumulative REQUEST-PART messages received by each strategy
// group.
//
// Paper shape: random-content ends at ~1.9M messages, no-content at ~1.5M;
// the gap opens because peers give up on silent providers sooner, while
// random content keeps them requesting until a part fails verification.

#include "analysis/log_stats.hpp"
#include "analysis/report.hpp"
#include "bench_common.hpp"

using namespace edhp;

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv, 0.1);
  const auto result = bench::run_distributed(opt);
  const auto days = static_cast<std::size_t>(result.days);

  const auto rc = analysis::cumulative_messages_by_day(
      result.merged, logbook::QueryType::request_part, days,
      scenario::strategy_filter(result, true));
  const auto nc = analysis::cumulative_messages_by_day(
      result.merged, logbook::QueryType::request_part, days,
      scenario::strategy_filter(result, false));

  std::vector<analysis::Series> cols(2);
  cols[0].name = "random_content";
  cols[1].name = "no_content";
  for (std::size_t d = 0; d < days; ++d) {
    cols[0].values.push_back(static_cast<double>(rc[d]));
    cols[1].values.push_back(static_cast<double>(nc[d]));
  }
  analysis::print_table(std::cout,
                        "Fig 7: cumulative REQUEST-PART messages, by strategy",
                        "day", analysis::index_axis(days), cols);

  const double rc_total = days ? static_cast<double>(rc.back()) : 0;
  const double nc_total = days ? static_cast<double>(nc.back()) : 0;
  bench::paper_vs_measured("random-content REQUEST-PART total", 1.9e6, rc_total,
                           opt.scale);
  bench::paper_vs_measured("no-content REQUEST-PART total", 1.5e6, nc_total,
                           opt.scale);
  std::cout << "ratio random/none: " << (nc_total > 0 ? rc_total / nc_total : 0)
            << " (paper: ~1.27)\n";
  return 0;
}
