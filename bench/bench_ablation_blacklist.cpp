// Ablation: the blacklisting/gossip model behind the Fig 5-7 strategy gap.
//
// DESIGN.md attributes the random-content vs no-content gap to community
// blacklisting with asymmetric publication probabilities (silence is
// unambiguous, corruption is usually blamed on the transfer). This harness
// sweeps the mechanism: gossip disabled, paper calibration, and an
// amplified variant, and reports the resulting distinct-peer ratios — the
// gap must vanish without gossip and grow with it.

#include "analysis/log_stats.hpp"
#include "bench_common.hpp"

using namespace edhp;

namespace {

struct Outcome {
  double hello_ratio;
  double su_ratio;
  double rp_ratio;
  std::uint64_t reports;
};

Outcome run_with(double gossip_timeout, double gossip_bad_part, double scale) {
  scenario::DistributedConfig config;
  config.scale = scale;
  config.days = 20;
  config.with_top_peer = false;
  config.behavior.gossip_prob_timeout = gossip_timeout;
  config.behavior.gossip_prob_bad_part = gossip_bad_part;
  const auto result = scenario::run_distributed(config);

  const auto days = static_cast<std::size_t>(result.days);
  const auto rc_h = analysis::distinct_peers_by_day(
      result.merged, logbook::QueryType::hello, days,
      scenario::strategy_filter(result, true));
  const auto nc_h = analysis::distinct_peers_by_day(
      result.merged, logbook::QueryType::hello, days,
      scenario::strategy_filter(result, false));
  const auto rc_s = analysis::distinct_peers_by_day(
      result.merged, logbook::QueryType::start_upload, days,
      scenario::strategy_filter(result, true));
  const auto nc_s = analysis::distinct_peers_by_day(
      result.merged, logbook::QueryType::start_upload, days,
      scenario::strategy_filter(result, false));
  const auto rc_r = analysis::cumulative_messages_by_day(
      result.merged, logbook::QueryType::request_part, days,
      scenario::strategy_filter(result, true));
  const auto nc_r = analysis::cumulative_messages_by_day(
      result.merged, logbook::QueryType::request_part, days,
      scenario::strategy_filter(result, false));

  auto ratio = [](double a, double b) { return b > 0 ? a / b : 0.0; };
  return Outcome{
      ratio(static_cast<double>(rc_h.total), static_cast<double>(nc_h.total)),
      ratio(static_cast<double>(rc_s.total), static_cast<double>(nc_s.total)),
      ratio(static_cast<double>(rc_r.back()), static_cast<double>(nc_r.back())),
      result.blacklist_reports};
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv, 0.05);
  std::cout << "ablation: community blacklisting strength "
               "(random-content / no-content ratios; paper: HELLO ~1.15-1.2, "
               "REQUEST-PART ~1.27)\n\n";
  struct Case {
    const char* name;
    double timeout_prob;
    double bad_part_prob;
  };
  const Case cases[] = {
      {"gossip disabled", 0.0, 0.0},
      {"paper calibration", 0.30, 0.06},
      {"amplified 2x", 0.60, 0.12},
      {"symmetric (no asymmetry)", 0.30, 0.30},
  };
  for (const auto& c : cases) {
    const auto o = run_with(c.timeout_prob, c.bad_part_prob, opt.scale);
    std::cout << "  " << c.name << ": HELLO-peers ratio " << o.hello_ratio
              << ", START-UPLOAD " << o.su_ratio << ", REQUEST-PART "
              << o.rp_ratio << " (" << o.reports << " reports)\n";
  }
  std::cout << "\nexpected: ratio ~1.0 when disabled; grows with gossip "
               "strength; the symmetric case keeps the REQUEST-PART gap "
               "(timeout dynamics) but shrinks the distinct-peer gap\n";
  return 0;
}
