// Figure 8: cumulative START-UPLOAD messages received from the single most
// active peer, per strategy group.
//
// Paper shape: step-like growth with idle plateaus; the random-content
// group receives ~1.5x the queries of the no-content group (~6k vs ~4k)
// because unanswered queries are re-sent at a lower rate.

#include "analysis/log_stats.hpp"
#include "analysis/report.hpp"
#include "bench_common.hpp"

using namespace edhp;

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv, 0.1);
  const auto result = bench::run_distributed(opt);
  const auto days = static_cast<std::size_t>(result.days);

  const auto top = analysis::most_active_peer(result.merged);
  if (!top) {
    std::cout << "no records; nothing to plot\n";
    return 0;
  }

  const auto rc = analysis::peer_messages_by_day(
      result.merged, *top, logbook::QueryType::start_upload, days,
      scenario::strategy_filter(result, true));
  const auto nc = analysis::peer_messages_by_day(
      result.merged, *top, logbook::QueryType::start_upload, days,
      scenario::strategy_filter(result, false));

  std::vector<analysis::Series> cols(2);
  cols[0].name = "random_content";
  cols[1].name = "no_content";
  for (std::size_t d = 0; d < days; ++d) {
    cols[0].values.push_back(static_cast<double>(rc[d]));
    cols[1].values.push_back(static_cast<double>(nc[d]));
  }
  analysis::print_table(
      std::cout, "Fig 8: START-UPLOAD from the most active peer, by strategy",
      "day", analysis::index_axis(days), cols);

  const double rc_total = days ? static_cast<double>(rc.back()) : 0;
  const double nc_total = days ? static_cast<double>(nc.back()) : 0;
  std::cout << "top peer (stage-2 id " << *top << "): random-content "
            << rc_total << ", no-content " << nc_total << ", ratio "
            << (nc_total > 0 ? rc_total / nc_total : 0)
            << " (paper: ~6k vs ~4k, ratio ~1.5; plateaus = idle periods)\n";
  return 0;
}
