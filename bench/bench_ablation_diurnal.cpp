// Ablation: the diurnal activity model behind Fig 4.
//
// The paper argues the day-night oscillation of HELLO arrivals reflects the
// regional (European / North-African) nature of eDonkey activity: a
// worldwide population would flatten it. This harness runs the first
// measurement week under (a) the calibrated European mixture, (b) a flat
// profile, and (c) a worldwide mixture, and reports the day/night contrast
// of hourly HELLO counts for each.

#include <cmath>

#include "analysis/log_stats.hpp"
#include "bench_common.hpp"
#include "sim/diurnal.hpp"

using namespace edhp;

namespace {

double contrast_of(const scenario::ScenarioResult& result) {
  const auto hours_total = static_cast<std::size_t>(result.days * 24);
  const auto hourly = analysis::messages_by_hour(
      result.merged, logbook::QueryType::hello, hours_total);
  double day = 0, night = 0;
  std::size_t dn = 0, nn = 0;
  for (std::size_t h = 24; h < hours_total; ++h) {
    const double hod = hour_of_day(static_cast<double>(h) * kHour + 1800);
    if (hod >= 12 && hod < 22) {
      day += static_cast<double>(hourly[h]);
      ++dn;
    } else if (hod < 7) {
      night += static_cast<double>(hourly[h]);
      ++nn;
    }
  }
  if (nn == 0 || night <= 0) return 0;
  return (day / static_cast<double>(dn)) / (night / static_cast<double>(nn));
}

}  // namespace

int main(int argc, char** argv) {
  auto opt = bench::parse_options(argc, argv, 0.05);
  if (!opt.days) opt.days = 7;

  std::cout << "ablation: regional day-night structure of peer activity\n\n";

  // (a) calibrated European/North-African mixture (the scenario default).
  {
    auto config = bench::distributed_config(opt);
    config.with_top_peer = false;
    const auto result = scenario::run_distributed(config);
    std::cout << "  european mixture: day/night contrast " << contrast_of(result)
              << "x (the Fig 4 regime)\n";
  }

  // (b) worldwide population: the same activity spread over all timezones.
  {
    auto config = bench::distributed_config(opt);
    config.with_top_peer = false;
    config.diurnal = sim::DiurnalProfile({
        {0.0, 1}, {-8.0, 1}, {-5.0, 1}, {3.0, 1}, {8.0, 1}, {12.0, 1},
    });
    const auto result = scenario::run_distributed(config);
    std::cout << "  worldwide mixture: day/night contrast "
              << contrast_of(result) << "x (flattened)\n";
  }

  // (c) no diurnal structure at all.
  {
    auto config = bench::distributed_config(opt);
    config.with_top_peer = false;
    config.diurnal = sim::DiurnalProfile::flat();
    const auto result = scenario::run_distributed(config);
    std::cout << "  flat profile: day/night contrast " << contrast_of(result)
              << "x (control, ~1x)\n";
  }

  std::cout << "\nexpected: the European mixture shows a clear >1.5x "
               "contrast; a worldwide population flattens it toward 1x, "
               "supporting the paper's regional-activity reading of Fig 4\n";
  return 0;
}
