// Table I: basic statistics of the two measurement campaigns.
//
// Paper values (scale 1.0):
//                       distributed   greedy
//   honeypots                    24        1
//   duration (days)              32       15
//   shared (advertised) files     4    3,175
//   distinct peers          110,049  871,445
//   distinct files           28,007  267,047
//   space used                 9 TB    90 TB

#include "analysis/report.hpp"
#include "bench_common.hpp"

using namespace edhp;

namespace {

void print_column(const char* name, const scenario::ScenarioResult& r) {
  std::vector<std::pair<std::string, std::string>> rows;
  rows.emplace_back("number of honeypots", std::to_string(r.honeypots));
  rows.emplace_back("duration in days",
                    std::to_string(static_cast<int>(r.days)));
  rows.emplace_back("number of shared files",
                    analysis::with_commas(r.advertised_files));
  rows.emplace_back("number of distinct peers",
                    analysis::with_commas(r.distinct_peers));
  rows.emplace_back("number of distinct files",
                    analysis::with_commas(r.observed.distinct));
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f TB",
                static_cast<double>(r.observed.bytes) / 1e12);
  rows.emplace_back("space used by distinct files", buf);
  rows.emplace_back("log records", analysis::with_commas(r.merged.records.size()));
  analysis::print_kv(std::cout, name, rows);
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv, 0.1);

  auto distributed = bench::run_distributed(opt);
  print_column("Table I -- distributed measurement", distributed);

  auto greedy = bench::run_greedy(opt);
  print_column("Table I -- greedy measurement", greedy);

  std::cout << "paper (scale 1.0): distributed 110,049 peers / 28,007 files / "
               "9 TB; greedy 871,445 peers / 267,047 files / 90 TB\n";
  bench::paper_vs_measured("distributed distinct peers", 110049,
                           static_cast<double>(distributed.distinct_peers),
                           opt.scale);
  bench::paper_vs_measured("greedy distinct peers", 871445,
                           static_cast<double>(greedy.distinct_peers), opt.scale);
  return 0;
}
