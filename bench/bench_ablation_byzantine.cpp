// Ablation: measurement integrity vs Byzantine-infrastructure intensity.
//
// The Byzantine layer makes the infrastructure *lie* — servers drop or
// truncate OFFER-FILES, serve stale indexes, fabricate GET-SOURCES
// entries and corrupt search replies, while liar peers volunteer forged
// shared-file lists and replay HELLOs under rotated user hashes. The
// defense stack (honeypot self-probes, provenance tagging, manager health
// scoring) claims the published dataset stays clean: zero liar records
// leak, and the exclusions cost < 1% of the true-peer evidence the fleet
// logged under attack. This harness sweeps the server-lie MTBF from rare
// to aggressive, plus one undefended run at nominal intensity to show the
// pollution the defenses remove.
//
// Retention is quoted against the *undefended* run of the same attack:
// reply-path lies poison what the server tells legitimate peers, so
// contacts that never happened are attack damage upstream of the
// measurement, not something a honeypot-side defense could retain.
//
// Usage mirrors the other ablations: --scale/--days/--seed/--quiet.

#include <chrono>
#include <cstdio>

#include "bench_common.hpp"
#include "fault/byzantine.hpp"

using namespace edhp;

namespace {

struct Outcome {
  std::uint64_t true_records;
  std::uint64_t liar_records;
  fault::ByzantineStats byzantine;
  honeypot::IntegrityStats integrity;
  double events_per_sec;
};

Outcome run_with(const bench::Options& opt, bool byzantine, Duration lie_mtbf,
                 bool defended) {
  auto config = bench::distributed_config(opt);
  config.with_top_peer = false;
  config.host_mtbf = 0;  // isolate the Byzantine axis from host churn
  auto& b = config.chaos.byzantine;
  b.enabled = byzantine;
  b.defend = defended;
  b.offer_drop_mtbf = lie_mtbf;
  b.offer_truncate_mtbf = lie_mtbf;
  b.stale_index_mtbf = lie_mtbf;
  b.fabricate_mtbf = lie_mtbf;
  b.corrupt_search_mtbf = lie_mtbf;
  b.forge_list_mtba = hours(2);
  b.replay_hello_mtba = hours(4);
  // Exclusion, not displacement: the whole peer population sits on the one
  // big server, so benching it would hide every honeypot for the cooloff.
  b.quarantine_threshold = 0;
  const auto start = std::chrono::steady_clock::now();
  const auto result = scenario::run_distributed(config);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  Outcome o{};
  for (const auto& rec : result.merged.records) {
    if (fault::is_byzantine_user(rec.user)) {
      ++o.liar_records;
    } else {
      ++o.true_records;
    }
  }
  o.byzantine = result.byzantine;
  o.integrity = result.integrity;
  o.events_per_sec = static_cast<double>(result.sim_events) / elapsed;
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv, 0.05);
  std::cout << "ablation: measurement integrity vs Byzantine-lie intensity "
               "(defenses on; acceptance: zero liar records leak, >= 99% of "
               "the true-peer evidence logged under attack is published)\n\n";

  const auto baseline = run_with(opt, false, 0, true);
  std::cout << "  lie-free baseline: " << baseline.true_records << " records, "
            << static_cast<std::uint64_t>(baseline.events_per_sec)
            << " events/s\n";

  // Undefended nominal first: it is the retention denominator.
  const auto undefended = run_with(opt, true, days(8), false);
  std::cout << "  MTBF 8d, UNDEFENDED: " << undefended.liar_records
            << " liar records published, " << undefended.true_records
            << " true records, "
            << undefended.integrity.records_excluded << " excluded, "
            << static_cast<std::uint64_t>(undefended.events_per_sec)
            << " events/s\n";

  struct Case {
    const char* name;
    Duration mtbf;
  };
  const Case cases[] = {
      {"MTBF 16d (rare), defended", days(16)},
      {"MTBF 8d (nominal), defended", days(8)},
      {"MTBF 4d (aggressive), defended", days(4)},
  };
  Outcome nominal{};  // the defended nominal case feeds the machine line
  for (const auto& c : cases) {
    const auto o = run_with(opt, true, c.mtbf, true);
    if (c.mtbf == days(8)) nominal = o;
    const double vs_baseline = static_cast<double>(o.true_records) /
                               static_cast<double>(baseline.true_records);
    std::cout << "  " << c.name << ": " << o.liar_records
              << " liar records leaked, true records " << o.true_records
              << " (" << 100.0 * vs_baseline << "% of lie-free), "
              << o.integrity.records_excluded << " excluded ("
              << o.integrity.forged_lists_rejected << " forged lists, "
              << o.integrity.replayed_hellos_rejected << " replayed HELLOs), "
              << o.integrity.probes_sent << " self-probes ("
              << o.integrity.probes_missed << " missed, "
              << o.integrity.fabricated_sources_detected
              << " fabrications caught), "
              << static_cast<std::uint64_t>(o.events_per_sec) << " events/s\n";
  }
  std::cout << "\nexpected: zero liar records leak across the defended sweep "
               "(the undefended run shows thousands); exclusions track the "
               "liar traffic one-for-one and cost < 1% of the true-peer "
               "evidence\n";
  const double retained = static_cast<double>(nominal.true_records) /
                          static_cast<double>(undefended.true_records);
  // One machine-readable line for the perf trajectory
  // (BENCH_byzantine.json): the defended nominal-MTBF run.
  std::printf(
      "{\"bench\":\"byzantine\",\"true_retained_pct\":%.3f,"
      "\"leaked_records\":%llu,\"undefended_leaked\":%llu,"
      "\"records_excluded\":%llu,\"forged_lists_rejected\":%llu,"
      "\"replayed_hellos_rejected\":%llu,\"probes_sent\":%llu,"
      "\"events_per_sec\":%.0f}\n",
      100.0 * retained, static_cast<unsigned long long>(nominal.liar_records),
      static_cast<unsigned long long>(undefended.liar_records),
      static_cast<unsigned long long>(nominal.integrity.records_excluded),
      static_cast<unsigned long long>(nominal.integrity.forged_lists_rejected),
      static_cast<unsigned long long>(
          nominal.integrity.replayed_hellos_rejected),
      static_cast<unsigned long long>(nominal.integrity.probes_sent),
      nominal.events_per_sec);
  return 0;
}
