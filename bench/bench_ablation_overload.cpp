// Ablation: what the overload/degradation layer costs when idle, and what
// it buys when the spool quota actually bites.
//
// Two measurements:
//   1. chaos-off engine kernel throughput — the same 1024-chain
//      self-rescheduling measurement as bench_micro_sim's headline JSON
//      line, re-run with the budget-aware data plane linked in. Budgets off
//      must be free: CI fails the build if this drops more than 10% below
//      the recorded micro_sim baseline.
//   2. spool-quota ablation at campaign scale (manager crashes + hostile
//      traffic in the mix): unlimited quota reports the peak spool
//      footprint, then the same world re-runs at 1/2 and 1/4 of that peak.
//
// Expected: evidence retention stays at 100% at every quota (the degrade
// layer sheds only abuse-marked records, and declares every one); shed and
// compaction counts grow as the quota shrinks.

#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>

#include "bench_common.hpp"
#include "fault/abuse.hpp"
#include "scenario/scenario.hpp"

using namespace edhp;

namespace {

/// Identical to bench_micro_sim's headline kernel: 1024 concurrent
/// self-rescheduling timer chains, each hop one heap pop + slab recycle +
/// schedule at realistic queue depth.
double measure_events_per_sec() {
  using clock = std::chrono::steady_clock;
  sim::Simulation s;
  for (int i = 0; i < 1024; ++i) {
    const double period = 1.0 + static_cast<double>(i % 97);
    auto hop = std::make_shared<std::function<void()>>();
    *hop = [&s, hop, period] { s.schedule_in(period, *hop); };
    s.schedule_in(period, *hop);
  }
  const auto start = clock::now();
  do {
    s.run_until(s.now() + 1000.0);
  } while (clock::now() - start < std::chrono::milliseconds(300));
  const double elapsed =
      std::chrono::duration<double>(clock::now() - start).count();
  return static_cast<double>(s.executed()) / elapsed;
}

std::uint64_t benign_count(const logbook::LogFile& log) {
  std::uint64_t hostile = 0;
  for (const auto& r : log.records) {
    if (r.user == fault::kAbuseUserWord) ++hostile;
  }
  return log.records.size() - hostile;
}

scenario::DistributedConfig campaign() {
  scenario::DistributedConfig config;
  config.scale = 0.02;
  config.days = 16;
  config.honeypots = 12;
  config.with_top_peer = false;
  config.chaos.enabled = true;
  config.chaos.host_mtbf = 0;
  config.chaos.manager_mtbf = days(4);
  config.abuse.enabled = true;
  return config;
}

struct QuotaOutcome {
  const char* label;
  std::uint64_t quota;
  std::uint64_t records;
  std::uint64_t benign;
  std::uint64_t shed;
  std::uint64_t compaction_runs;
  std::uint64_t peak;
};

QuotaOutcome run_at_quota(const char* label, std::uint64_t quota) {
  auto config = campaign();
  config.chaos.disk_quota_bytes = quota;
  config.chaos.resend_credit = 4;
  const auto r = scenario::run_distributed(config);
  return QuotaOutcome{label,
                      quota,
                      r.merged.records.size(),
                      benign_count(r.merged),
                      r.degrade.records_shed,
                      r.degrade.compaction_runs,
                      r.degrade.spool_peak_bytes};
}

}  // namespace

int main(int argc, char** argv) {
  (void)bench::parse_options(argc, argv);  // accept the standard flags
  std::cout << "ablation: overload layer idle cost + spool quota sweep\n\n";

  const double events_per_sec = measure_events_per_sec();
  std::cout << "  chaos-off engine kernel: "
            << static_cast<std::uint64_t>(events_per_sec) << " events/s\n\n";

  const auto unlimited = scenario::run_distributed(campaign());
  const std::uint64_t peak = unlimited.degrade.spool_peak_bytes;
  const std::uint64_t benign_full = benign_count(unlimited.merged);
  std::cout << "  unlimited quota: " << unlimited.merged.records.size()
            << " records (" << benign_full << " benign), peak spool " << peak
            << " bytes\n";

  const QuotaOutcome half = run_at_quota("1/2 peak", peak / 2);
  const QuotaOutcome quarter = run_at_quota("1/4 peak", peak / 4);
  for (const auto& o : {half, quarter}) {
    const double retained =
        benign_full > 0
            ? static_cast<double>(o.benign) / static_cast<double>(benign_full)
            : 1.0;
    std::cout << "  quota " << o.label << " (" << o.quota << " B): " << o.records
              << " records, benign retained " << retained * 100.0
              << "%, shed " << o.shed << ", compaction runs "
              << o.compaction_runs << ", peak " << o.peak << " B\n";
  }

  std::cout << "\nexpected: benign retention 100% at every quota; shed and "
               "compaction grow as the quota shrinks; the kernel number "
               "matches bench_micro_sim's baseline (budgets off are free)\n";
  const double half_retained =
      benign_full > 0
          ? static_cast<double>(half.benign) / static_cast<double>(benign_full)
          : 1.0;
  const double quarter_retained =
      benign_full > 0 ? static_cast<double>(quarter.benign) /
                            static_cast<double>(benign_full)
                      : 1.0;
  std::printf(
      "{\"bench\":\"overload\",\"events_per_sec\":%.0f,"
      "\"spool_peak_bytes\":%llu,\"half_quota_shed\":%llu,"
      "\"half_quota_benign_retained\":%.4f,\"quarter_quota_shed\":%llu,"
      "\"quarter_quota_benign_retained\":%.4f,\"half_quota_compactions\":%llu}\n",
      events_per_sec, static_cast<unsigned long long>(peak),
      static_cast<unsigned long long>(half.shed), half_retained,
      static_cast<unsigned long long>(quarter.shed), quarter_retained,
      static_cast<unsigned long long>(half.compaction_runs));
  return 0;
}
