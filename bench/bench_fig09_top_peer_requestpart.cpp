// Figure 9: cumulative REQUEST-PART messages from the single most active
// peer, per strategy group.
//
// Paper shape: ~12k (random-content) vs ~8k (no-content); the no-content
// curve is smoother because the time between queries is the constant client
// timeout, while random-content transfer times vary.

#include <cmath>

#include "analysis/log_stats.hpp"
#include "analysis/report.hpp"
#include "bench_common.hpp"

using namespace edhp;

namespace {

/// Coefficient of variation of day-over-day increments — the smoothness
/// check the paper makes visually.
double increment_cv(const std::vector<std::uint64_t>& cumulative) {
  std::vector<double> inc;
  for (std::size_t d = 1; d < cumulative.size(); ++d) {
    inc.push_back(static_cast<double>(cumulative[d] - cumulative[d - 1]));
  }
  if (inc.empty()) return 0;
  double mean = 0;
  for (auto v : inc) mean += v;
  mean /= static_cast<double>(inc.size());
  if (mean <= 0) return 0;
  double var = 0;
  for (auto v : inc) var += (v - mean) * (v - mean);
  var /= static_cast<double>(inc.size());
  return std::sqrt(var) / mean;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv, 0.1);
  const auto result = bench::run_distributed(opt);
  const auto days = static_cast<std::size_t>(result.days);

  const auto top = analysis::most_active_peer(result.merged);
  if (!top) {
    std::cout << "no records; nothing to plot\n";
    return 0;
  }

  const auto rc = analysis::peer_messages_by_day(
      result.merged, *top, logbook::QueryType::request_part, days,
      scenario::strategy_filter(result, true));
  const auto nc = analysis::peer_messages_by_day(
      result.merged, *top, logbook::QueryType::request_part, days,
      scenario::strategy_filter(result, false));

  std::vector<analysis::Series> cols(2);
  cols[0].name = "random_content";
  cols[1].name = "no_content";
  for (std::size_t d = 0; d < days; ++d) {
    cols[0].values.push_back(static_cast<double>(rc[d]));
    cols[1].values.push_back(static_cast<double>(nc[d]));
  }
  analysis::print_table(
      std::cout, "Fig 9: REQUEST-PART from the most active peer, by strategy",
      "day", analysis::index_axis(days), cols);

  const double rc_total = days ? static_cast<double>(rc.back()) : 0;
  const double nc_total = days ? static_cast<double>(nc.back()) : 0;
  std::cout << "totals: random-content " << rc_total << ", no-content "
            << nc_total << " (paper: ~12k vs ~8k)\n";
  std::cout << "smoothness (cv of daily increments): no-content "
            << increment_cv(nc) << " vs random-content " << increment_cv(rc)
            << " (paper: no-content smoother, i.e. lower cv)\n";
  return 0;
}
