// Microbenchmarks: eDonkey wire codecs and hashing.
//
// Design-choice ablation: DESIGN.md commits to encoding every simulated
// message to real wire bytes. These benches show codec cost stays in the
// tens-of-nanoseconds to low-microseconds range, negligible next to event
// dispatch, so byte-accurate simulation is affordable.

#include <benchmark/benchmark.h>

#include "common/md4.hpp"
#include "common/rng.hpp"
#include "common/sha1.hpp"
#include "proto/filehash.hpp"
#include "proto/messages.hpp"

namespace {

using namespace edhp;
using namespace edhp::proto;

Hello make_hello() {
  Hello h;
  h.user = UserId::from_words(1, 2);
  h.client_id = 0xC0A80102;
  h.port = 4662;
  h.tags = {Tag::string_tag(kTagName, "eMule 0.49b"),
            Tag::u32_tag(kTagVersion, 0x31)};
  h.server_ip = 0x55667788;
  h.server_port = 4661;
  return h;
}

OfferFiles make_offer(std::size_t n) {
  OfferFiles offer;
  Rng rng(7);
  for (std::size_t i = 0; i < n; ++i) {
    PublishedFile f;
    f.file = FileId::from_words(rng(), rng());
    f.client_id = static_cast<std::uint32_t>(rng());
    f.port = 4662;
    f.name = "some.shared.file." + std::to_string(i) + ".avi";
    f.size = static_cast<std::uint32_t>(rng());
    offer.files.push_back(std::move(f));
  }
  return offer;
}

void BM_EncodeHello(benchmark::State& state) {
  const AnyMessage msg{make_hello()};
  for (auto _ : state) {
    benchmark::DoNotOptimize(encode(msg));
  }
}
BENCHMARK(BM_EncodeHello);

void BM_DecodeHello(benchmark::State& state) {
  const auto wire = encode(AnyMessage{make_hello()});
  for (auto _ : state) {
    benchmark::DoNotOptimize(decode(Channel::client_client, wire));
  }
}
BENCHMARK(BM_DecodeHello);

void BM_EncodeRequestParts(benchmark::State& state) {
  RequestParts rp;
  rp.file = FileId::from_words(3, 4);
  rp.begin = {0, 184320, 368640};
  rp.end = {184320, 368640, 552960};
  const AnyMessage msg{rp};
  for (auto _ : state) {
    benchmark::DoNotOptimize(encode(msg));
  }
}
BENCHMARK(BM_EncodeRequestParts);

void BM_EncodeOfferFiles(benchmark::State& state) {
  const AnyMessage msg{make_offer(static_cast<std::size_t>(state.range(0)))};
  for (auto _ : state) {
    benchmark::DoNotOptimize(encode(msg));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EncodeOfferFiles)->Arg(4)->Arg(64)->Arg(1024);

void BM_DecodeOfferFiles(benchmark::State& state) {
  const auto wire =
      encode(AnyMessage{make_offer(static_cast<std::size_t>(state.range(0)))});
  for (auto _ : state) {
    benchmark::DoNotOptimize(decode(Channel::client_server, wire));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DecodeOfferFiles)->Arg(4)->Arg(64)->Arg(1024);

void BM_Md4Throughput(benchmark::State& state) {
  std::vector<std::uint8_t> data(static_cast<std::size_t>(state.range(0)));
  Rng rng(1);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng());
  for (auto _ : state) {
    benchmark::DoNotOptimize(Md4::hash(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Md4Throughput)->Arg(1024)->Arg(64 * 1024)->Arg(1024 * 1024);

void BM_Sha1IpAnonymisation(benchmark::State& state) {
  // Stage-1 anonymisation cost per logged query.
  std::string salt = "measurement-salt";
  std::uint32_t ip = 0;
  for (auto _ : state) {
    Sha1 h;
    h.update(salt);
    const std::uint8_t be[4] = {
        static_cast<std::uint8_t>(ip >> 24), static_cast<std::uint8_t>(ip >> 16),
        static_cast<std::uint8_t>(ip >> 8), static_cast<std::uint8_t>(ip)};
    h.update(std::span<const std::uint8_t>(be, 4));
    benchmark::DoNotOptimize(h.finish());
    ++ip;
  }
}
BENCHMARK(BM_Sha1IpAnonymisation);

void BM_PartHashing(benchmark::State& state) {
  // Verifying one full eDonkey part (what detection costs a real client).
  std::vector<std::uint8_t> part(static_cast<std::size_t>(kPartSize));
  Rng rng(2);
  for (auto& b : part) b = static_cast<std::uint8_t>(rng());
  for (auto _ : state) {
    benchmark::DoNotOptimize(part_hashes(part));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(kPartSize));
}
BENCHMARK(BM_PartHashing);

}  // namespace

BENCHMARK_MAIN();
