// Ablation: merge-order fidelity vs per-honeypot clock skew.
//
// The clock-fault layer makes honeypot clocks *wrong* — per-host drift
// rates re-drawn on a Poisson cadence, NTP-style steps, and frozen-clock
// episodes — while the behaviour of every node stays bit-identical (clock
// faults change what records SAY about time, never what happens or what
// the RNG draws). That twin-run property is the measurement instrument
// here: the same seed with clocks off yields the same record stream with
// true timestamps, so every record in the skewed run has a known true
// position, identified by (honeypot, per-honeypot occurrence index).
//
// The skew-corrected merge claims: after reconstruction from the manager's
// clock observations, (a) same-honeypot record order is exactly the true
// order, (b) >= 99.9% of cross-honeypot record pairs land in true relative
// order, and (c) nothing is reordered silently — the TimeIntegrityStats
// ledger accounts for every repair. This harness sweeps drift from mild to
// hostile (drift + steps + freezes), counts surviving inversions against
// the clock-off twin, and prints the machine line BENCH_clock.json tracks.
//
// Usage mirrors the other ablations: --scale/--days/--seed/--quiet.

#include <chrono>
#include <cstdio>
#include <map>
#include <vector>

#include "bench_common.hpp"

using namespace edhp;

namespace {

/// Per-record identity that survives re-stamping and stage-2 renumbering:
/// the user hash, query type and client version are recomputed identically
/// in both twin runs, and per-honeypot record order is append order.
struct RecordKey {
  std::uint64_t user;
  std::uint8_t type;
  std::uint32_t version;
  bool operator==(const RecordKey&) const = default;
};

RecordKey key_of(const logbook::LogRecord& r) {
  return RecordKey{r.user, static_cast<std::uint8_t>(r.type),
                   r.client_version};
}

/// Merge-sort inversion count over `ranks` (number of pairs out of order).
std::uint64_t count_inversions(std::vector<std::uint64_t> ranks) {
  std::vector<std::uint64_t> tmp(ranks.size());
  std::uint64_t inversions = 0;
  for (std::size_t width = 1; width < ranks.size(); width *= 2) {
    for (std::size_t lo = 0; lo + width < ranks.size(); lo += 2 * width) {
      const std::size_t mid = lo + width;
      const std::size_t hi = std::min(lo + 2 * width, ranks.size());
      std::size_t a = lo, b = mid, out = lo;
      while (a < mid && b < hi) {
        if (ranks[a] <= ranks[b]) {
          tmp[out++] = ranks[a++];
        } else {
          inversions += mid - a;  // everything left in [a, mid) beats ranks[b]
          tmp[out++] = ranks[b++];
        }
      }
      while (a < mid) tmp[out++] = ranks[a++];
      while (b < hi) tmp[out++] = ranks[b++];
      std::copy(tmp.begin() + static_cast<std::ptrdiff_t>(lo),
                tmp.begin() + static_cast<std::ptrdiff_t>(hi),
                ranks.begin() + static_cast<std::ptrdiff_t>(lo));
    }
  }
  return inversions;
}

struct ClockCase {
  const char* name;
  Duration drift_mtbf;
  double drift_ppm;
  Duration step_mtbf;
  Duration step_max;
  Duration freeze_mtbf;
};

struct Outcome {
  std::uint64_t records = 0;
  std::uint64_t cross_pairs = 0;
  std::uint64_t cross_inversions = 0;
  bool same_hp_order_preserved = false;
  bool record_sets_match = false;
  double pair_accuracy_pct = 0;
  std::uint64_t unaccounted_reorders = 0;
  logbook::TimeIntegrityStats integrity;
  double events_per_sec = 0;
};

scenario::DistributedConfig base_config(const bench::Options& opt) {
  auto config = bench::distributed_config(opt);
  config.with_top_peer = false;
  config.chaos.enabled = true;
  // Isolate the clock axis: no silence faults, no control-plane outages.
  // The twin runs then produce identical record streams whose only
  // difference is what the timestamps claim.
  config.chaos.host_mtbf = 0;
  config.chaos.manager_mtbf = 0;
  return config;
}

Outcome run_case(const bench::Options& opt, const ClockCase& c,
                 const scenario::ScenarioResult& truth) {
  auto config = base_config(opt);
  config.chaos.clock_drift_mtbf = c.drift_mtbf;
  config.chaos.clock_drift_ppm = c.drift_ppm;
  config.chaos.clock_step_mtbf = c.step_mtbf;
  config.chaos.clock_step_max = c.step_max;
  config.chaos.clock_freeze_mtbf = c.freeze_mtbf;
  const auto start = std::chrono::steady_clock::now();
  const auto skewed = scenario::run_distributed(config);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  Outcome o;
  o.records = skewed.merged.records.size();
  o.integrity = skewed.time_integrity;
  o.events_per_sec = static_cast<double>(skewed.sim_events) / elapsed;

  // True rank of the skewed run's records: position in the clock-off twin's
  // merged order, identified by (honeypot, occurrence index).
  std::map<std::uint16_t, std::vector<std::uint64_t>> true_ranks_by_hp;
  std::map<std::uint16_t, std::vector<RecordKey>> true_keys_by_hp;
  for (std::size_t i = 0; i < truth.merged.records.size(); ++i) {
    const auto& r = truth.merged.records[i];
    true_ranks_by_hp[r.honeypot].push_back(i);
    true_keys_by_hp[r.honeypot].push_back(key_of(r));
  }
  o.record_sets_match = o.records == truth.merged.records.size();
  o.same_hp_order_preserved = o.record_sets_match;
  std::map<std::uint16_t, std::size_t> occurrence;
  std::vector<std::uint64_t> ranks;
  ranks.reserve(o.records);
  std::uint64_t same_hp_pairs = 0;
  for (const auto& r : skewed.merged.records) {
    const auto occ = occurrence[r.honeypot]++;
    const auto& hp_ranks = true_ranks_by_hp[r.honeypot];
    if (occ >= hp_ranks.size()) {
      o.record_sets_match = false;
      o.same_hp_order_preserved = false;
      break;
    }
    // Same-honeypot order check by content: occurrence slot occ of this
    // honeypot must hold the same record as in the twin run, or the merge
    // silently permuted a honeypot's own stream.
    if (!(key_of(r) == true_keys_by_hp[r.honeypot][occ])) {
      o.same_hp_order_preserved = false;
    }
    ranks.push_back(hp_ranks[occ]);
  }
  for (const auto& [hp, n] : occurrence) {
    same_hp_pairs += static_cast<std::uint64_t>(n) * (n - 1) / 2;
    if (n != true_ranks_by_hp[hp].size()) o.record_sets_match = false;
  }
  if (!o.record_sets_match) return o;

  const std::uint64_t total_pairs =
      static_cast<std::uint64_t>(o.records) * (o.records - 1) / 2;
  o.cross_pairs = total_pairs - same_hp_pairs;
  // Same-honeypot pairs cannot invert (order equality was checked above),
  // so every counted inversion is a cross-honeypot pair.
  o.cross_inversions = count_inversions(std::move(ranks));
  o.pair_accuracy_pct =
      o.cross_pairs == 0
          ? 100.0
          : 100.0 * (1.0 - static_cast<double>(o.cross_inversions) /
                               static_cast<double>(o.cross_pairs));
  // Silent-reordering audit: a merge that moved records while its own
  // ledger claims it corrected nothing (and saw no ambiguity) reordered
  // silently. Same for a permuted same-honeypot stream.
  const bool ledger_silent = o.integrity.records_corrected == 0 &&
                             o.integrity.records_ambiguous == 0 &&
                             o.integrity.monotonicity_violations == 0 &&
                             o.integrity.observation_resets == 0;
  if (!o.same_hp_order_preserved || (o.cross_inversions > 0 && ledger_silent)) {
    o.unaccounted_reorders = o.cross_inversions + (o.same_hp_order_preserved
                                                       ? 0
                                                       : std::uint64_t{1});
  }
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv, 0.02);
  std::cout << "ablation: merge-order fidelity vs honeypot clock skew "
               "(skew-corrected merge; acceptance: same-honeypot order exact, "
               ">= 99.9% of cross-honeypot pairs in true order, zero "
               "unaccounted reorders)\n\n";

  // The clock-off twin is the ground truth: same seed, same behaviour,
  // true timestamps.
  const auto truth = scenario::run_distributed(base_config(opt));
  std::cout << "  clock-off twin: " << truth.merged.records.size()
            << " records (true order)\n";

  const ClockCase cases[] = {
      {"drift ±50 ppm (mild)", days(4), 50.0, 0, 0, 0},
      {"drift ±200 ppm + 60 s steps (nominal)", days(2), 200.0, hours(12),
       60.0, 0},
      {"drift ±500 ppm + 300 s steps + freezes (hostile)", days(1), 500.0,
       hours(4), 300.0, hours(18)},
  };
  Outcome nominal{};
  bool all_ok = true;
  for (const auto& c : cases) {
    const auto o = run_case(opt, c, truth);
    if (std::string_view(c.name).find("nominal") != std::string_view::npos) {
      nominal = o;
    }
    if (!o.record_sets_match) {
      std::cout << "  " << c.name
                << ": RECORD SETS DIVERGED (clock faults must not change "
                   "behaviour)\n";
      all_ok = false;
      continue;
    }
    std::cout << "  " << c.name << ": " << o.records << " records, "
              << o.cross_inversions << " of " << o.cross_pairs
              << " cross-honeypot pairs inverted (accuracy "
              << o.pair_accuracy_pct << "%), same-hp order "
              << (o.same_hp_order_preserved ? "exact" : "BROKEN") << ", "
              << o.integrity.observations_used << " observations, "
              << o.integrity.records_corrected << " corrected (max "
              << o.integrity.max_abs_correction << " s), "
              << o.integrity.monotonicity_violations
              << " monotonicity violations repaired, "
              << o.unaccounted_reorders << " unaccounted, "
              << static_cast<std::uint64_t>(o.events_per_sec) << " events/s\n";
    all_ok = all_ok && o.same_hp_order_preserved &&
             o.pair_accuracy_pct >= 99.9 && o.unaccounted_reorders == 0;
  }
  std::cout << "\nexpected: accuracy >= 99.9% with zero unaccounted reorders "
               "at every intensity; corrections scale with drift while "
               "same-honeypot order never moves\n";
  if (!all_ok) {
    std::cout << "ACCEPTANCE FAILED (see rows above)\n";
  }
  // One machine-readable line for the perf trajectory (BENCH_clock.json):
  // the nominal drift+step run.
  std::printf(
      "{\"bench\":\"clock\",\"pair_accuracy_pct\":%.4f,"
      "\"cross_inversions\":%llu,\"unaccounted_reorders\":%llu,"
      "\"same_hp_order_preserved\":%d,\"records\":%llu,"
      "\"observations\":%llu,\"records_corrected\":%llu,"
      "\"monotonicity_violations\":%llu,\"max_abs_correction_s\":%.3f,"
      "\"events_per_sec\":%.0f}\n",
      nominal.pair_accuracy_pct,
      static_cast<unsigned long long>(nominal.cross_inversions),
      static_cast<unsigned long long>(nominal.unaccounted_reorders),
      nominal.same_hp_order_preserved ? 1 : 0,
      static_cast<unsigned long long>(nominal.records),
      static_cast<unsigned long long>(nominal.integrity.observations_used),
      static_cast<unsigned long long>(nominal.integrity.records_corrected),
      static_cast<unsigned long long>(
          nominal.integrity.monotonicity_violations),
      nominal.integrity.max_abs_correction, nominal.events_per_sec);
  return all_ok ? 0 : 1;
}
