// Ablation: control-plane journal cost and recovery replay time.
//
// The crash-tolerant manager buys its durability with a write-ahead journal:
// every launch/reassign/advertise/escalation appends one checksummed frame,
// and recovery replays the suffix after the last checkpoint. This harness
// measures both sides of that trade:
//   1. raw append throughput (the steady-state tax on the control plane);
//   2. recover() wall time vs fleet size, before and after a checkpoint
//      compacts the replay window.
//
// Expected: appends run in the millions per second (the journal is never the
// bottleneck), replay time grows linearly with the journal suffix, and the
// post-checkpoint recovery replays a near-constant number of entries
// regardless of history length.

#include <chrono>
#include <cstdio>

#include "bench_common.hpp"
#include "logbook/journal.hpp"
#include "server/server.hpp"

using namespace edhp;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

struct AppendOutcome {
  double entries_per_sec;
  double mb_per_sec;
};

/// Steady-state journal tax: append `n` representative frames.
AppendOutcome bench_append(std::size_t n) {
  logbook::Journal journal;
  std::vector<std::uint8_t> payload(48);  // typical advertise/checkpoint row
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 31);
  }
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < n; ++i) {
    payload[0] = static_cast<std::uint8_t>(i);
    journal.append(logbook::JournalEntryType::advertise, payload);
  }
  const double elapsed = seconds_since(start);
  return AppendOutcome{
      static_cast<double>(n) / elapsed,
      static_cast<double>(journal.size_bytes()) / (1024.0 * 1024.0) / elapsed};
}

struct ReplayOutcome {
  std::size_t fleet;
  std::uint64_t entries;       ///< journal length at first crash
  std::uint64_t bytes;
  std::uint64_t replayed;      ///< entries applied by the first recovery
  double recover_ms;           ///< first recovery (full history)
  std::uint64_t replayed_ckpt; ///< entries applied after a checkpoint
  double recover_ckpt_ms;      ///< second recovery (checkpoint-compacted)
};

/// Build a fleet of `n` honeypots, churn the control plane to grow the
/// journal, then crash and time the recovery replay twice: once over the
/// full history and once from the checkpoint recover() itself wrote.
ReplayOutcome bench_replay(std::size_t n, std::size_t churn_rounds) {
  sim::Simulation s{421};
  net::Network net{s};
  const auto server_node = net.add_node(true);
  server::Server server{net, server_node, {}};
  const honeypot::ServerRef ref{server_node, "srv", 4661};
  const auto backup_node = net.add_node(true);
  server::Server backup{net, backup_node, {}};
  const honeypot::ServerRef backup_ref{backup_node, "backup", 4661};
  server.start();
  backup.start();

  honeypot::ManagerConfig mc;
  mc.journal = std::make_shared<logbook::Journal>();
  mc.spool_store = std::make_shared<logbook::SpoolStore>();
  honeypot::Manager manager(net, mc);
  manager.set_backup_servers({backup_ref});
  for (std::size_t i = 0; i < n; ++i) {
    honeypot::HoneypotConfig c;
    c.name = "hp-" + std::to_string(i);
    c.strategy = honeypot::ContentStrategy::no_content;
    manager.launch(std::move(c), net.add_node(true), ref);
  }
  s.run_until(s.now() + 180.0);

  // Control-plane churn: every round re-advertises each honeypot's bait and
  // bounces a rotating member between the two servers.
  for (std::size_t round = 0; round < churn_rounds; ++round) {
    for (std::size_t i = 0; i < n; ++i) {
      honeypot::AdvertisedFile f{
          FileId::from_words(i + 1, round + 1),
          "bait-" + std::to_string(round) + ".avi", 700 * 1024 * 1024};
      manager.advertise(i, {f});
    }
    manager.reassign(round % n, round % 2 == 0 ? backup_ref : ref);
    s.run_until(s.now() + 60.0);
  }

  ReplayOutcome out{};
  out.fleet = n;
  out.entries = manager.recovery_stats().journal_entries;
  out.bytes = manager.recovery_stats().journal_bytes;

  manager.crash();
  auto start = std::chrono::steady_clock::now();
  manager.recover(s.now());
  out.recover_ms = 1000.0 * seconds_since(start);
  out.replayed = manager.recovery_stats().journal_replayed;

  // recover() checkpointed, so a second crash replays only the tail.
  manager.crash();
  start = std::chrono::steady_clock::now();
  manager.recover(s.now());
  out.recover_ckpt_ms = 1000.0 * seconds_since(start);
  out.replayed_ckpt = manager.recovery_stats().journal_replayed;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  (void)bench::parse_options(argc, argv);  // accept the standard flags
  std::cout << "ablation: manager journal append cost and recovery replay "
               "time vs fleet size\n\n";

  const auto append = bench_append(1'000'000);
  std::cout << "  append: "
            << static_cast<std::uint64_t>(append.entries_per_sec)
            << " entries/s (" << append.mb_per_sec << " MB/s)\n\n";

  ReplayOutcome paper{};  // the 24-honeypot row feeds the JSON line
  for (const std::size_t fleet : {8u, 24u, 64u}) {
    const auto o = bench_replay(fleet, 50);
    if (fleet == 24u) paper = o;
    std::cout << "  fleet " << o.fleet << ": journal " << o.entries
              << " entries (" << o.bytes << " bytes), first recovery replayed "
              << o.replayed << " in " << o.recover_ms
              << " ms, post-checkpoint recovery replayed " << o.replayed_ckpt
              << " in " << o.recover_ckpt_ms << " ms\n";
  }

  std::cout << "\nexpected: replay time scales with journal length (itself "
               "linear in fleet x churn); the checkpointed recovery replays "
               "a snapshot plus a constant-size tail\n";
  std::printf(
      "{\"bench\":\"journal\",\"append_per_sec\":%.0f,"
      "\"append_mb_per_sec\":%.1f,\"journal_entries_fleet24\":%llu,"
      "\"recover_ms_fleet24\":%.3f,\"recover_ckpt_ms_fleet24\":%.3f,"
      "\"replayed_after_checkpoint\":%llu}\n",
      append.entries_per_sec, append.mb_per_sec,
      static_cast<unsigned long long>(paper.entries), paper.recover_ms,
      paper.recover_ckpt_ms,
      static_cast<unsigned long long>(paper.replayed_ckpt));
  return 0;
}
