#pragma once
// Shared between edhp_chaosfuzz and `edhp_inspect audit`: turn a committed
// chaos repro into a runnable scaled-down campaign. Enforcement is left OFF
// in the returned config — the caller inspects the ledger itself (the
// fuzzer to shrink, the inspector to report) instead of catching throws.

#include "audit/chaos_point.hpp"
#include "scenario/scenario.hpp"

namespace edhp::tools {

inline scenario::DistributedConfig repro_config(
    const audit::ReproConfig& repro) {
  scenario::DistributedConfig config;
  config.scale = repro.scale;
  config.seed = repro.seed;
  config.days = repro.days;
  config.honeypots = repro.honeypots;
  config.with_top_peer = false;  // shape knob, not a chaos axis: keep fast
  config.audit = false;
  audit::apply(repro.point, config.chaos, config.abuse);
  return config;
}

/// Run one repro and return its filled ledger (never throws on imbalance).
inline audit::AuditStats run_repro(const audit::ReproConfig& repro) {
  return scenario::run_distributed(repro_config(repro)).audit;
}

}  // namespace edhp::tools
