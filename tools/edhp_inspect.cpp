// edhp_inspect — operator CLI for honeypot log files.
//
// Subcommands:
//   stats <log...>            per-file and combined summary statistics
//   csv <log>                 dump a log as CSV to stdout
//   merge <out> <log...>      merge per-honeypot logs (stage-1) into one file
//   anonymize <in> <out>      apply stage-2 renumbering to a merged log
//   clients <log>             client-software mix of a stage-2 log
//   defense <log...>          triage hostile-marked traffic in campaign logs
//   journal <journal...>      audit a manager write-ahead journal
//   degrade <journal...>      triage overload/degradation episodes
//   integrity <journal...>    triage Byzantine-defense verdicts/quarantines
//   clock <journal...>        triage honeypot clock skew from observations
//   audit <repro.cfg...>      replay chaos repro(s), report the
//                             record-conservation ledger
//
// A `--json` flag anywhere on the command line switches the reporting modes
// (stats, defense, journal, degrade, integrity, clients) to one JSON object
// per input file on stdout — machine-readable for CI gates and dashboards.
//
// Logs are the binary format honeypots write (logbook::save/load). The
// pipeline an operator runs after a campaign:
//   edhp_inspect merge merged.edhplog hp-*.edhplog
//   edhp_inspect anonymize merged.edhplog published.edhplog
//   edhp_inspect stats published.edhplog
//   edhp_inspect defense published.edhplog
//
// Exit codes: 0 success, 1 I/O or decode error, 2 usage. `degrade` adds a
// triage contract on top: 0 = no degradation recorded, 3 = degradation
// recorded but every episode closed (fully declared loss), 4 = at least one
// honeypot still degraded at the end of the journal. `integrity` mirrors it:
// 0 = no Byzantine-defense activity, 3 = every quarantine was reinstated,
// 4 = a server is still quarantined when the journal ends. `clock` completes
// the family: 0 = no clock observations recorded, 3 = observations present
// and every honeypot's local clock ran monotonically through them, 4 = at
// least one honeypot's local clock was caught running backwards (a step the
// merge had to repair). `audit` extends it to the conservation ledger:
// 0 = balanced with nothing lost anywhere (born == merged + streamed),
// 3 = balanced but some records met an accounted loss disposition
// (shed/excluded/tail-lost/unflushed/quarantined — declared, bounded),
// 4 = the ledger does not balance (silent loss or double accounting: the
// bug class the auditor exists to catch).

#include <algorithm>
#include <bit>
#include <cmath>
#include <iostream>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include <fstream>
#include <iterator>

#include "analysis/client_stats.hpp"
#include "analysis/log_stats.hpp"
#include "analysis/report.hpp"
#include "anonymize/renumber.hpp"
#include "audit/audit.hpp"
#include "audit/chaos_point.hpp"
#include "common/budget.hpp"
#include "common/bytes.hpp"
#include "fault/abuse.hpp"
#include "logbook/journal.hpp"
#include "logbook/log_io.hpp"
#include "logbook/merge.hpp"
#include "logbook/spool.hpp"

#include "chaos_run.hpp"

using namespace edhp;

namespace {

int usage() {
  std::cerr << "usage: edhp_inspect [--json] <stats|csv|merge|anonymize|clients|defense|journal|degrade|integrity|clock|audit> ...\n"
               "  stats <log...>\n"
               "  csv <log>\n"
               "  merge <out> <log...>\n"
               "  anonymize <in> <out>\n"
               "  clients <log>\n"
               "  defense <log...>\n"
               "  journal <journal...>\n"
               "  degrade <journal...>   exit 0: no degradation, 3: closed"
               " episodes, 4: still degraded\n"
               "  integrity <journal...> exit 0: no Byzantine activity,"
               " 3: quarantines all reinstated, 4: still quarantined\n"
               "  clock <journal...>     exit 0: no clock observations,"
               " 3: all clocks monotone, 4: backwards clock observed\n"
               "  audit <repro.cfg...>   exit 0: conserved with zero loss,"
               " 3: accounted loss only, 4: unaccounted loss\n"
               "  --json: reporting modes emit one JSON object per file\n";
  return 2;
}

/// One JSON string literal (quotes, backslashes and control bytes escaped).
std::string json_quote(std::string_view s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

/// Report sink shared by every reporting mode: the human kv table, or one
/// JSON object line when `--json` was given. Row keys pass through verbatim
/// (leading indentation and all) so the two forms stay diffable.
void emit(const std::string& path,
          const std::vector<std::pair<std::string, std::string>>& rows,
          bool json) {
  if (!json) {
    analysis::print_kv(std::cout, path, rows);
    return;
  }
  std::string line = "{" + json_quote("path") + ":" + json_quote(path);
  for (const auto& [key, value] : rows) {
    std::string_view k = key;
    while (!k.empty() && k.front() == ' ') k.remove_prefix(1);
    line += "," + json_quote(k) + ":" + json_quote(value);
  }
  line += "}";
  std::cout << line << "\n";
}

/// Manager write-ahead-journal audit: frame counts per entry type, the
/// checkpoint the next recovery would replay from, and integrity findings
/// (quarantined frames, torn tail). Never throws on damage — damage is the
/// report.
void print_journal(const std::string& path, const logbook::Journal& journal,
                   bool json) {
  const auto scan = journal.scan();
  std::vector<std::pair<std::string, std::string>> rows;
  rows.emplace_back("bytes", analysis::with_commas(journal.size_bytes()));
  rows.emplace_back("entries", analysis::with_commas(scan.entries.size()));
  std::map<std::uint8_t, std::uint64_t> by_type;
  std::size_t last_checkpoint = scan.entries.size();
  for (std::size_t i = 0; i < scan.entries.size(); ++i) {
    ++by_type[scan.entries[i].type];
    if (scan.entries[i].type ==
        static_cast<std::uint8_t>(logbook::JournalEntryType::checkpoint)) {
      last_checkpoint = i;
    }
  }
  for (const auto& [type, count] : by_type) {
    rows.emplace_back(
        std::string("  ") +
            std::string(logbook::to_string(
                static_cast<logbook::JournalEntryType>(type))),
        analysis::with_commas(count));
  }
  rows.emplace_back("replay window",
                    last_checkpoint < scan.entries.size()
                        ? analysis::with_commas(scan.entries.size() -
                                                last_checkpoint) +
                              " entries from last checkpoint"
                        : "full journal (no checkpoint)");
  rows.emplace_back("quarantined", analysis::with_commas(scan.quarantined.size()));
  // Per-offset listing is capped like the SpoolStore's quarantine refs: an
  // adversarial stream cannot make the audit report itself unbounded.
  const std::size_t listed =
      std::min(scan.quarantined.size(), logbook::kQuarantineRefCap);
  for (std::size_t i = 0; i < listed; ++i) {
    rows.emplace_back("  bad checksum at offset",
                      analysis::with_commas(scan.quarantined[i].offset));
  }
  if (scan.quarantined.size() > listed) {
    rows.emplace_back(
        "  quarantine listing capped",
        "first " + analysis::with_commas(listed) + " of " +
            analysis::with_commas(scan.quarantined.size()) + " offsets");
  }
  rows.emplace_back("torn tail", scan.torn_tail
                                     ? analysis::with_commas(scan.torn_bytes) +
                                           " bytes (clean tail loss)"
                                     : std::string("none"));
  emit(path, rows, json);
}

/// Byzantine-defense triage over the manager journal's probe_verdict /
/// server_quarantine / server_reinstate entries: per-server verdict ledger
/// and quarantine history. Exit-code contract mirrors `degrade`: 0 = no
/// Byzantine-defense activity, 3 = quarantines happened and every one was
/// reinstated, 4 = a server is still quarantined when the journal ends.
int print_integrity(const std::string& path, const logbook::Journal& journal,
                    bool json) {
  struct PerServer {
    std::uint64_t confirmed = 0;
    std::uint64_t missed = 0;
    std::uint64_t quarantines = 0;
    std::uint64_t reinstates = 0;
    std::uint64_t displaced = 0;  ///< honeypot slots moved by quarantines
    bool quarantined = false;     ///< quarantined and never reinstated
  };
  std::map<std::string, PerServer> servers;
  std::uint64_t verdicts = 0;
  std::uint64_t undecodable = 0;
  const auto scan = journal.scan();
  for (const auto& e : scan.entries) {
    const auto type = static_cast<logbook::JournalEntryType>(e.type);
    if (type != logbook::JournalEntryType::probe_verdict &&
        type != logbook::JournalEntryType::server_quarantine &&
        type != logbook::JournalEntryType::server_reinstate) {
      continue;
    }
    try {
      ByteReader r(e.payload);
      if (type == logbook::JournalEntryType::probe_verdict) {
        (void)r.u16();  // honeypot id
        const bool confirmed = r.u8() != 0;
        auto& s = servers[r.str16()];
        ++verdicts;
        if (confirmed) {
          ++s.confirmed;
        } else {
          ++s.missed;
        }
      } else if (type == logbook::JournalEntryType::server_quarantine) {
        auto& s = servers[r.str16()];
        ++s.quarantines;
        s.quarantined = true;
        // Skip the original ServerRef (node id, name, port) + deadline,
        // then count the displaced slot list.
        (void)r.u64();
        (void)r.str16();
        (void)r.u16();
        (void)r.u64();
        s.displaced += r.u32();
      } else {
        auto& s = servers[r.str16()];
        ++s.reinstates;
        s.quarantined = false;
      }
    } catch (const DecodeError&) {
      ++undecodable;
    }
  }

  std::vector<std::pair<std::string, std::string>> rows;
  rows.emplace_back("probe verdicts", analysis::with_commas(verdicts));
  std::uint64_t total_quarantines = 0;
  bool any_open = false;
  for (const auto& [name, s] : servers) {
    any_open = any_open || s.quarantined;
    total_quarantines += s.quarantines;
    std::string detail = analysis::with_commas(s.confirmed) + " confirmed, " +
                         analysis::with_commas(s.missed) + " missed";
    if (s.quarantines > 0) {
      detail += "; quarantined x" + analysis::with_commas(s.quarantines) +
                " (" + analysis::with_commas(s.displaced) +
                " slots displaced), reinstated x" +
                analysis::with_commas(s.reinstates);
    }
    if (s.quarantined) {
      detail += "; STILL QUARANTINED";
    }
    rows.emplace_back("  server " + name, detail);
  }
  rows.emplace_back("quarantines", analysis::with_commas(total_quarantines));
  if (undecodable > 0) {
    rows.emplace_back("undecodable integrity entries",
                      analysis::with_commas(undecodable));
  }
  const bool quiet = verdicts == 0 && total_quarantines == 0;
  rows.emplace_back("verdict", quiet      ? "no Byzantine-defense activity"
                               : any_open ? "quarantined at end of journal"
                                          : "all quarantines reinstated");
  emit(path, rows, json);
  if (quiet) return 0;
  return any_open ? 4 : 3;
}

/// Clock-skew triage over the manager journal's clock_observation entries
/// (checkpoint-embedded observation sections are deliberately ignored: the
/// live entries are a superset until a checkpoint compacts them, and a
/// post-checkpoint journal replays them back into manager memory anyway).
/// Per honeypot: how many sightings exist, the drift the end-to-end span
/// implies, the worst absolute offset from true time, and whether the local
/// clock was ever caught running backwards between consecutive sightings.
/// Exit: 0 = no observations, 3 = observations and every clock monotone,
/// 4 = at least one backwards step observed.
int print_clock(const std::string& path, const logbook::Journal& journal,
                bool json) {
  struct PerHoneypot {
    std::uint64_t observations = 0;
    double first_true = 0, first_local = 0;
    double last_true = 0, last_local = 0;
    double max_abs_offset = 0;
    std::uint64_t backwards = 0;  ///< local regressions between sightings
  };
  std::map<std::uint16_t, PerHoneypot> fleet;
  std::uint64_t undecodable = 0;
  const auto scan = journal.scan();
  for (const auto& e : scan.entries) {
    if (static_cast<logbook::JournalEntryType>(e.type) !=
        logbook::JournalEntryType::clock_observation) {
      continue;
    }
    try {
      ByteReader r(e.payload);
      const auto id = r.u16();
      const double true_time = std::bit_cast<double>(r.u64());
      const double local_time = std::bit_cast<double>(r.u64());
      auto& hp = fleet[id];
      if (hp.observations == 0) {
        hp.first_true = true_time;
        hp.first_local = local_time;
      } else if (local_time < hp.last_local) {
        ++hp.backwards;
      }
      hp.last_true = true_time;
      hp.last_local = local_time;
      hp.max_abs_offset =
          std::max(hp.max_abs_offset, std::abs(local_time - true_time));
      ++hp.observations;
    } catch (const DecodeError&) {
      ++undecodable;
    }
  }

  std::vector<std::pair<std::string, std::string>> rows;
  std::uint64_t observations = 0;
  std::uint64_t backwards = 0;
  for (const auto& [id, hp] : fleet) {
    observations += hp.observations;
    backwards += hp.backwards;
    const double span = hp.last_true - hp.first_true;
    const double drift_ppm =
        span > 0
            ? ((hp.last_local - hp.first_local) - span) / span * 1e6
            : 0.0;
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "%s obs, drift %+.1f ppm, max offset %.3f s%s",
                  analysis::with_commas(hp.observations).c_str(), drift_ppm,
                  hp.max_abs_offset,
                  hp.backwards > 0 ? ", BACKWARDS CLOCK" : "");
    rows.emplace_back("  hp " + std::to_string(id), buf);
  }
  rows.emplace_back("clock observations", analysis::with_commas(observations));
  rows.emplace_back("honeypots tracked", analysis::with_commas(fleet.size()));
  rows.emplace_back("backwards steps observed", analysis::with_commas(backwards));
  if (undecodable > 0) {
    rows.emplace_back("undecodable clock entries",
                      analysis::with_commas(undecodable));
  }
  rows.emplace_back("verdict", observations == 0 ? "no clock observations"
                               : backwards > 0   ? "backwards clock observed"
                                                 : "all clocks monotone");
  emit(path, rows, json);
  if (observations == 0) return 0;
  return backwards > 0 ? 4 : 3;
}

/// Overload triage over the manager journal's degrade_enter/degrade_exit
/// entries. Returns the per-journal triage verdict: 0 = no degradation, 3 =
/// every episode closed (loss fully declared), 4 = a honeypot was still
/// degraded when the journal ends. Damaged frames are skipped by scan();
/// undecodable payloads of the right type are counted but otherwise ignored
/// (the tool must never crash on a field journal).
int print_degrade(const std::string& path, const logbook::Journal& journal,
                  bool json) {
  struct PerHoneypot {
    std::uint64_t enters = 0;
    std::uint64_t exits = 0;
    std::map<std::uint8_t, std::uint64_t> reasons;
    std::uint64_t last_resident = 0;   ///< spool bytes at the latest enter
    std::uint64_t last_tail = 0;       ///< unspooled records at latest enter
    std::uint64_t shed = 0;            ///< cumulative, from the latest exit
    std::uint64_t compacted = 0;
    std::uint64_t backpressure = 0;
    bool open = false;  ///< entered degraded mode and never left
  };
  std::map<std::uint16_t, PerHoneypot> fleet;
  std::uint64_t undecodable = 0;
  const auto scan = journal.scan();
  for (const auto& e : scan.entries) {
    const auto type = static_cast<logbook::JournalEntryType>(e.type);
    if (type != logbook::JournalEntryType::degrade_enter &&
        type != logbook::JournalEntryType::degrade_exit) {
      continue;
    }
    try {
      ByteReader r(e.payload);
      auto& hp = fleet[r.u16()];
      if (type == logbook::JournalEntryType::degrade_enter) {
        ++hp.enters;
        ++hp.reasons[r.u8()];
        hp.last_resident = r.u64();
        hp.last_tail = r.u64();
        hp.open = true;
      } else {
        ++hp.exits;
        hp.shed = r.u64();
        hp.compacted = r.u64();
        hp.backpressure = r.u64();
        hp.open = false;
      }
    } catch (const DecodeError&) {
      ++undecodable;
    }
  }

  std::vector<std::pair<std::string, std::string>> rows;
  rows.emplace_back("degraded honeypots", analysis::with_commas(fleet.size()));
  std::uint64_t total_shed = 0;
  bool any_open = false;
  for (const auto& [id, hp] : fleet) {
    any_open = any_open || hp.open;
    total_shed += hp.shed;
    std::string detail = analysis::with_commas(hp.enters) + " episodes";
    for (const auto& [reason, count] : hp.reasons) {
      detail += ", " +
                std::string(budget::to_string(
                    static_cast<budget::DegradeReason>(reason))) +
                " x" + analysis::with_commas(count);
    }
    detail += "; shed " + analysis::with_commas(hp.shed) + ", compacted " +
              analysis::with_commas(hp.compacted) + " chunks, backpressure " +
              analysis::with_commas(hp.backpressure) + " cuts";
    if (hp.open) {
      detail += "; STILL DEGRADED (resident " +
                analysis::with_commas(hp.last_resident) + " B, tail " +
                analysis::with_commas(hp.last_tail) + ")";
    }
    rows.emplace_back("  hp " + std::to_string(id), detail);
  }
  rows.emplace_back("records shed (declared)", analysis::with_commas(total_shed));
  if (undecodable > 0) {
    rows.emplace_back("undecodable degrade entries",
                      analysis::with_commas(undecodable));
  }
  rows.emplace_back("verdict", fleet.empty()  ? "no degradation recorded"
                               : any_open     ? "degraded at end of journal"
                                              : "all episodes closed");
  emit(path, rows, json);
  if (fleet.empty()) return 0;
  return any_open ? 4 : 3;
}

/// Hostile-traffic triage: attackers in the abuse model carry a fixed
/// truncated user hash (fault::kAbuseUserWord), so their records can be
/// separated from the measurement after the fact. Reports, per log, how much
/// of the record stream the defenses let through from hostile sessions and
/// what the benign measurement actually kept.
void print_defense(const std::string& path, const logbook::LogFile& log,
                   bool json) {
  std::uint64_t hostile = 0;
  std::array<std::uint64_t, 3> hostile_by_type{};
  double first_hostile = -1, last_hostile = -1;
  for (const auto& r : log.records) {
    if (r.user != fault::kAbuseUserWord) continue;
    ++hostile;
    ++hostile_by_type[static_cast<std::size_t>(r.type)];
    if (first_hostile < 0) first_hostile = r.timestamp;
    last_hostile = r.timestamp;
  }
  const std::uint64_t benign = log.records.size() - hostile;
  std::vector<std::pair<std::string, std::string>> rows;
  rows.emplace_back("records", analysis::with_commas(log.records.size()));
  rows.emplace_back("benign", analysis::with_commas(benign));
  rows.emplace_back("hostile-marked", analysis::with_commas(hostile));
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f%%",
                log.records.empty()
                    ? 0.0
                    : 100.0 * static_cast<double>(hostile) /
                          static_cast<double>(log.records.size()));
  rows.emplace_back("hostile share", buf);
  rows.emplace_back("hostile HELLO", analysis::with_commas(hostile_by_type[0]));
  rows.emplace_back("hostile START-UPLOAD",
                    analysis::with_commas(hostile_by_type[1]));
  rows.emplace_back("hostile REQUEST-PART",
                    analysis::with_commas(hostile_by_type[2]));
  if (first_hostile >= 0) {
    rows.emplace_back("hostile span", std::to_string((last_hostile - first_hostile) / kDay) + " days");
  }
  emit(path, rows, json);
}

void print_stats(const std::string& path, const logbook::LogFile& log,
                 bool json) {
  std::vector<std::pair<std::string, std::string>> rows;
  rows.emplace_back("honeypot", log.header.honeypot == 0xFFFF
                                    ? "merged"
                                    : std::to_string(log.header.honeypot));
  rows.emplace_back("strategy", log.header.strategy.empty() ? "-"
                                                            : log.header.strategy);
  rows.emplace_back("server", log.header.server_name.empty()
                                  ? "-"
                                  : log.header.server_name);
  rows.emplace_back("anonymisation",
                    log.header.peer_kind == logbook::PeerIdKind::stage1_hash
                        ? "stage-1 (salted hashes)"
                        : "stage-2 (dense integers)");
  rows.emplace_back("records", analysis::with_commas(log.records.size()));
  std::array<std::uint64_t, 3> by_type{};
  double first = -1, last = -1;
  for (const auto& r : log.records) {
    ++by_type[static_cast<std::size_t>(r.type)];
    if (first < 0) first = r.timestamp;
    last = r.timestamp;
  }
  rows.emplace_back("HELLO", analysis::with_commas(by_type[0]));
  rows.emplace_back("START-UPLOAD", analysis::with_commas(by_type[1]));
  rows.emplace_back("REQUEST-PART", analysis::with_commas(by_type[2]));
  // Provenance-tainted records only ever appear in raw per-honeypot logs:
  // the manager's merge excludes them from anything it publishes.
  std::uint64_t tainted = 0;
  for (const auto& r : log.records) {
    if (r.tainted()) ++tainted;
  }
  if (tainted > 0) {
    rows.emplace_back("provenance-tainted", analysis::with_commas(tainted));
  }
  if (first >= 0) {
    rows.emplace_back("span",
                      std::to_string((last - first) / kDay) + " days");
  }
  if (log.header.peer_kind == logbook::PeerIdKind::stage2_index) {
    rows.emplace_back("distinct peers",
                      analysis::with_commas(analysis::distinct_peers(log)));
    const auto ids = analysis::high_id_share(log);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f%%", 100 * ids.fraction_high());
    rows.emplace_back("HighID peers", buf);
  }
  emit(path, rows, json);
}

/// Record-conservation triage: replay a committed chaos repro and report
/// the ledger. Verdict: 0 = balanced and nothing met a loss disposition,
/// 3 = balanced with accounted loss only, 4 = unbalanced (silent loss or
/// double accounting). `expect=imbalance` repros that do imbalance still
/// exit 4 — the verdict reports the ledger, the expectation lives in the
/// fuzzer's replay mode and the regression tests.
int print_audit(const std::string& path, bool json) {
  std::ifstream file(path);
  if (!file) {
    throw std::runtime_error("cannot read " + path);
  }
  const std::string text((std::istreambuf_iterator<char>(file)),
                         std::istreambuf_iterator<char>());
  const audit::ReproConfig repro = audit::parse_repro(text);
  const audit::AuditStats a = tools::run_repro(repro);
  const std::uint64_t lost = a.accounted() - a.records_streamed;
  int verdict = 0;
  if (!a.balanced()) {
    verdict = 4;
  } else if (lost > 0) {
    verdict = 3;
  }
  std::vector<std::pair<std::string, std::string>> rows;
  rows.emplace_back("knobs", std::to_string(repro.point.knobs.size()));
  rows.emplace_back("expected", repro.expect_imbalance ? "imbalance"
                                                       : "balanced");
  rows.emplace_back("born", analysis::with_commas(a.records_born));
  rows.emplace_back("merged", analysis::with_commas(a.records_merged));
  rows.emplace_back("shed", analysis::with_commas(a.records_shed));
  rows.emplace_back("excluded", analysis::with_commas(a.records_excluded));
  rows.emplace_back("lost tail", analysis::with_commas(a.records_lost_tail));
  rows.emplace_back("unflushed", analysis::with_commas(a.records_unflushed));
  rows.emplace_back("quarantined",
                    analysis::with_commas(a.records_quarantined));
  rows.emplace_back("streamed", analysis::with_commas(a.records_streamed));
  rows.emplace_back("unaccounted", std::to_string(a.unaccounted()));
  rows.emplace_back("verdict", verdict == 0   ? "balanced"
                               : verdict == 3 ? "accounted loss"
                                              : "UNACCOUNTED LOSS");
  emit(path, rows, json);
  return verdict;
}

}  // namespace

int main(int argc, char** argv) {
  // `--json` may appear anywhere; strip it before positional parsing.
  bool json = false;
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--json") {
      json = true;
    } else {
      args.emplace_back(argv[i]);
    }
  }
  if (args.size() < 2) return usage();
  const std::string& cmd = args[0];
  try {
    if (cmd == "stats") {
      for (std::size_t i = 1; i < args.size(); ++i) {
        print_stats(args[i], logbook::load(args[i]), json);
      }
      return 0;
    }
    if (cmd == "csv") {
      logbook::write_csv(std::cout, logbook::load(args[1]));
      return 0;
    }
    if (cmd == "merge") {
      if (args.size() < 3) return usage();
      std::vector<logbook::LogFile> logs;
      for (std::size_t i = 2; i < args.size(); ++i) {
        logs.push_back(logbook::load(args[i]));
      }
      const auto merged = logbook::merge_logs(logs);
      logbook::save(args[1], merged);
      std::cout << "merged " << logs.size() << " logs ("
                << analysis::with_commas(merged.records.size())
                << " records) into " << args[1] << "\n";
      return 0;
    }
    if (cmd == "anonymize") {
      if (args.size() < 3) return usage();
      auto log = logbook::load(args[1]);
      const auto distinct = anonymize::renumber_peers(log);
      logbook::save(args[2], log);
      std::cout << "stage-2 applied: " << analysis::with_commas(distinct)
                << " distinct peers -> " << args[2] << "\n";
      return 0;
    }
    if (cmd == "defense" || cmd == "--defense") {
      for (std::size_t i = 1; i < args.size(); ++i) {
        print_defense(args[i], logbook::load(args[i]), json);
      }
      return 0;
    }
    if (cmd == "journal") {
      for (std::size_t i = 1; i < args.size(); ++i) {
        print_journal(args[i], logbook::Journal::load(args[i]), json);
      }
      return 0;
    }
    if (cmd == "degrade") {
      int verdict = 0;
      for (std::size_t i = 1; i < args.size(); ++i) {
        verdict = std::max(verdict, print_degrade(
                                        args[i],
                                        logbook::Journal::load(args[i]), json));
      }
      return verdict;
    }
    if (cmd == "integrity") {
      int verdict = 0;
      for (std::size_t i = 1; i < args.size(); ++i) {
        verdict = std::max(
            verdict,
            print_integrity(args[i], logbook::Journal::load(args[i]), json));
      }
      return verdict;
    }
    if (cmd == "clock") {
      int verdict = 0;
      for (std::size_t i = 1; i < args.size(); ++i) {
        verdict = std::max(
            verdict,
            print_clock(args[i], logbook::Journal::load(args[i]), json));
      }
      return verdict;
    }
    if (cmd == "audit") {
      int verdict = 0;
      for (std::size_t i = 1; i < args.size(); ++i) {
        verdict = std::max(verdict, print_audit(args[i], json));
      }
      return verdict;
    }
    if (cmd == "clients") {
      const auto log = logbook::load(args[1]);
      const auto mix = analysis::client_mix(log);
      if (json) {
        std::string line = "{" + json_quote("kinds") + ":" +
                           std::to_string(mix.size()) + "," +
                           json_quote("clients") + ":[";
        for (std::size_t i = 0; i < mix.size(); ++i) {
          const auto& c = mix[i];
          if (i > 0) line += ",";
          line += "{" + json_quote("name") + ":" +
                  json_quote(c.name.empty() ? "(no name tag)" : c.name) + "," +
                  json_quote("share") + ":" + std::to_string(c.share) + "," +
                  json_quote("peers") + ":" + std::to_string(c.peers) + "}";
        }
        line += "]}";
        std::cout << line << "\n";
        return 0;
      }
      std::cout << "client software mix (" << mix.size() << " kinds):\n";
      for (const auto& c : mix) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%5.1f%%", 100 * c.share);
        std::cout << "  " << buf << "  "
                  << (c.name.empty() ? "(no name tag)" : c.name) << "  ("
                  << analysis::with_commas(c.peers) << " peers)\n";
      }
      return 0;
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
