// edhp_chaosfuzz — combinatorial chaos-schedule fuzzer with automatic
// shrinking.
//
// Draws seeded random points from the full cross-product of every chaos
// knob family (silence faults × abuse × byzantine lies × clock faults ×
// budgets × link model × manager churn — see audit::knob_registry), runs a
// scaled-down distributed campaign per point, and checks the standing
// invariants:
//
//   conservation   born == merged + Σ accounted (the audit ledger balances);
//   determinism    every --twin-th point runs twice and must reproduce the
//                  same dataset and the same ledger bit-for-bit;
//   no surprises   a run must not throw.
//
// On failure the offending point is delta-debugged to a 1-minimal knob set
// (greedily reset each knob to its default; keep any removal that still
// fails; loop to fixpoint) and a replayable repro file is written — commit
// it under tests/chaos_corpus/ and test_audit replays it forever.
//
// Usage:
//   edhp_chaosfuzz [--points=N] [--seed=S] [--scale=F] [--days=D]
//                  [--honeypots=H] [--twin=K] [--out=DIR] [--quiet]
//   edhp_chaosfuzz --replay=FILE...   replay repro files, verify `expect=`
//   edhp_chaosfuzz --selftest         prove the auditor catches an injected
//                                     imbalance and shrinks it (exit 0 iff
//                                     caught and the repro is <= 3 knobs)
//
// Exit codes: 0 every point/replay passed; 1 an invariant failed (repro
// written in batch mode); 2 usage.

#include <cstdint>
#include <fstream>
#include <iostream>
#include <iterator>
#include <string>
#include <string_view>
#include <vector>

#include "audit/audit.hpp"
#include "audit/chaos_point.hpp"
#include "common/rng.hpp"

#include "chaos_run.hpp"

using namespace edhp;

namespace {

struct Options {
  std::size_t points = 20;
  std::uint64_t seed = 20260808;
  double scale = 0.02;
  double days = 2.0;
  std::size_t honeypots = 6;
  std::size_t twin = 8;  ///< twin-run determinism cadence (0 = never)
  std::string out = "tests/chaos_corpus";
  bool quiet = false;
  bool selftest = false;
  std::vector<std::string> replays;
};

int usage() {
  std::cerr << "usage: edhp_chaosfuzz [--points=N] [--seed=S] [--scale=F] "
               "[--days=D] [--honeypots=H] [--twin=K] [--out=DIR] [--quiet]\n"
               "       edhp_chaosfuzz --replay=FILE...\n"
               "       edhp_chaosfuzz --selftest\n";
  return 2;
}

/// What one run of a point observed (a thrown exception counts as failed).
struct Outcome {
  audit::AuditStats stats;
  bool threw = false;
  std::string error;

  [[nodiscard]] bool failed() const { return threw || !stats.balanced(); }
};

Outcome run_point(const audit::ReproConfig& repro) {
  Outcome out;
  try {
    out.stats = tools::run_repro(repro);
  } catch (const std::exception& e) {
    out.threw = true;
    out.error = e.what();
  }
  return out;
}

/// Greedy ddmin: drop one knob at a time (reset to default) while the
/// point keeps failing; loop to fixpoint. The result is 1-minimal — no
/// single remaining knob can be removed without the failure vanishing.
audit::ReproConfig shrink(audit::ReproConfig repro, std::size_t* runs) {
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < repro.point.knobs.size(); ++i) {
      audit::ReproConfig candidate = repro;
      candidate.point = repro.point.without(i);
      ++*runs;
      if (run_point(candidate).failed()) {
        repro = candidate;
        changed = true;
        break;
      }
    }
  }
  return repro;
}

std::string knob_names(const audit::ChaosPoint& point) {
  const auto registry = audit::knob_registry();
  std::string out;
  for (const auto& [index, value] : point.knobs) {
    if (!out.empty()) out += ",";
    out += std::string(registry[index].name);
  }
  return out.empty() ? "(none)" : out;
}

/// Write the shrunk repro where the batch asked (default: the committed
/// corpus directory). Returns the path, empty on I/O failure.
std::string write_repro(const Options& opt, const audit::ReproConfig& repro,
                        std::size_t point_index) {
  const std::string path = opt.out + "/shrunk-" + std::to_string(opt.seed) +
                           "-" + std::to_string(point_index) + ".cfg";
  std::ofstream file(path);
  if (!file) {
    std::cerr << "chaosfuzz: cannot write repro to " << path << "\n";
    return {};
  }
  file << audit::serialize(repro);
  return path;
}

int run_batch(const Options& opt) {
  const Rng batch_rng(opt.seed);
  std::size_t failed = 0;
  std::size_t total_runs = 0;
  for (std::size_t i = 0; i < opt.points; ++i) {
    Rng point_rng = batch_rng.split(i);
    audit::ReproConfig repro;
    repro.seed = point_rng();
    repro.scale = opt.scale;
    repro.days = opt.days;
    repro.honeypots = opt.honeypots;
    repro.point = audit::sample_point(point_rng);
    ++total_runs;
    const Outcome first = run_point(repro);
    bool bad = first.failed();
    std::string why = first.threw ? ("throw: " + first.error)
                                  : "imbalance: " + first.stats.breakdown();
    if (!bad && opt.twin != 0 && i % opt.twin == 0) {
      // Twin-run determinism: same repro, bit-identical ledger (born and
      // merged pin the dataset record count; the scenario's own golden
      // tests pin content fingerprints).
      ++total_runs;
      const Outcome second = run_point(repro);
      if (second.threw ||
          second.stats.records_born != first.stats.records_born ||
          second.stats.records_merged != first.stats.records_merged ||
          second.stats.accounted() != first.stats.accounted()) {
        bad = true;
        why = "twin-run mismatch: first " + first.stats.breakdown() +
              " | second " +
              (second.threw ? "throw: " + second.error
                            : second.stats.breakdown());
      }
    }
    if (!bad) {
      if (!opt.quiet) {
        std::cout << "point " << i << ": ok knobs=" << repro.point.knobs.size()
                  << " " << first.stats.breakdown() << "\n";
      }
      continue;
    }
    ++failed;
    std::cout << "point " << i << ": FAILED (" << why << ")\n"
              << "  knobs: " << knob_names(repro.point) << "\n";
    repro.expect_imbalance = true;
    std::size_t shrink_runs = 0;
    const audit::ReproConfig minimal = shrink(repro, &shrink_runs);
    total_runs += shrink_runs;
    std::cout << "  shrunk to " << minimal.point.knobs.size() << " knob(s) in "
              << shrink_runs << " runs: " << knob_names(minimal.point) << "\n";
    const std::string path = write_repro(opt, minimal, i);
    if (!path.empty()) {
      std::cout << "  repro written: " << path << "\n";
    }
  }
  std::cout << "chaosfuzz: " << (opt.points - failed) << "/" << opt.points
            << " points passed (" << total_runs << " campaign runs, seed "
            << opt.seed << ")\n";
  return failed == 0 ? 0 : 1;
}

int run_replays(const Options& opt) {
  int rc = 0;
  for (const auto& path : opt.replays) {
    std::ifstream file(path);
    if (!file) {
      std::cerr << "chaosfuzz: cannot read " << path << "\n";
      return 1;
    }
    const std::string text((std::istreambuf_iterator<char>(file)),
                           std::istreambuf_iterator<char>());
    const audit::ReproConfig repro = audit::parse_repro(text);
    const Outcome outcome = run_point(repro);
    const bool imbalanced = outcome.failed();
    const bool pass = imbalanced == repro.expect_imbalance;
    std::cout << path << ": "
              << (imbalanced ? "imbalance" : "balanced") << " (expected "
              << (repro.expect_imbalance ? "imbalance" : "balanced") << ") "
              << (pass ? "OK" : "MISMATCH") << "\n  "
              << (outcome.threw ? "throw: " + outcome.error
                                : outcome.stats.breakdown())
              << "\n";
    if (!pass) rc = 1;
  }
  return rc;
}

int run_selftest(const Options& opt) {
  // Arm the deliberate silent-loss backdoor plus two innocent-bystander
  // knobs, prove the auditor flags it, and prove the shrinker strips the
  // bystanders — ending at a <= 3-knob (here: 1-knob) repro.
  audit::ReproConfig repro;
  repro.seed = opt.seed;
  repro.scale = opt.scale;
  repro.days = 1.0;
  repro.honeypots = 4;
  repro.expect_imbalance = true;
  const auto add = [&repro](std::string_view name, double value) {
    repro.point.knobs.emplace_back(
        static_cast<std::size_t>(audit::knob_index(name)), value);
  };
  add("host_mtbf", 6 * 3600.0);
  add("clock_step_mtbf", 8 * 3600.0);
  add("audit_selftest_drop", 97);
  const Outcome outcome = run_point(repro);
  if (!outcome.failed()) {
    std::cout << "selftest: auditor MISSED the injected imbalance: "
              << outcome.stats.breakdown() << "\n";
    return 1;
  }
  std::size_t shrink_runs = 0;
  const audit::ReproConfig minimal = shrink(repro, &shrink_runs);
  std::cout << "selftest: injected imbalance caught ("
            << (outcome.threw ? outcome.error : outcome.stats.breakdown())
            << ")\n  shrunk " << repro.point.knobs.size() << " -> "
            << minimal.point.knobs.size()
            << " knob(s): " << knob_names(minimal.point) << "\n";
  return minimal.point.knobs.size() <= 3 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&arg](std::string_view prefix) {
      return arg.substr(prefix.size());
    };
    if (arg.rfind("--points=", 0) == 0) {
      opt.points = std::stoul(value("--points="));
    } else if (arg.rfind("--seed=", 0) == 0) {
      opt.seed = std::stoull(value("--seed="));
    } else if (arg.rfind("--scale=", 0) == 0) {
      opt.scale = std::stod(value("--scale="));
    } else if (arg.rfind("--days=", 0) == 0) {
      opt.days = std::stod(value("--days="));
    } else if (arg.rfind("--honeypots=", 0) == 0) {
      opt.honeypots = std::stoul(value("--honeypots="));
    } else if (arg.rfind("--twin=", 0) == 0) {
      opt.twin = std::stoul(value("--twin="));
    } else if (arg.rfind("--out=", 0) == 0) {
      opt.out = value("--out=");
    } else if (arg.rfind("--replay=", 0) == 0) {
      opt.replays.push_back(value("--replay="));
    } else if (arg == "--selftest") {
      opt.selftest = true;
    } else if (arg == "--quiet") {
      opt.quiet = true;
    } else {
      return usage();
    }
  }
  try {
    if (opt.selftest) return run_selftest(opt);
    if (!opt.replays.empty()) return run_replays(opt);
    return run_batch(opt);
  } catch (const std::exception& e) {
    std::cerr << "chaosfuzz: error: " << e.what() << "\n";
    return 1;
  }
}
