#pragma once
// Honeypot query-log data model.
//
// Each honeypot records one LogRecord per logged query (HELLO,
// START-UPLOAD, REQUEST-PART — the message types the paper logs), plus the
// metadata the paper lists: peer identity, port, client name and version,
// HighID/LowID status, the file concerned, and a reception timestamp. The
// server's identity and the honeypot's configuration are per-log-file
// constants and live in the LogHeader.
//
// PRIVACY: the peer identity field never contains an IP address. Stage-1
// anonymisation (a salted one-way hash, see anonymize/ip_anonymizer.hpp)
// runs inside the honeypot before a record is constructed, so neither the
// in-memory log nor any serialized form ever holds raw addresses. After the
// manager's stage-2 pass the field holds a small dense integer instead.

#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/ids.hpp"

namespace edhp::logbook {

/// Message types the honeypot logs.
enum class QueryType : std::uint8_t {
  hello = 0,
  start_upload = 1,
  request_part = 2,
};

[[nodiscard]] std::string_view to_string(QueryType t);

/// Bit flags describing the recorded query. Bits >= kFlagProvFabricated are
/// provenance taints set by the honeypot's integrity defenses; the merge
/// pass excludes tainted records from the published dataset (accounted in
/// IntegrityStats), and the golden-fingerprint mix never includes flags, so
/// chaos-off runs (where no taint is ever set) stay bit-identical.
enum RecordFlags : std::uint8_t {
  kFlagHighId = 1u << 0,  ///< the peer had a HighID
  kFlagHasFile = 1u << 1, ///< the file field is meaningful
  kFlagProvFabricated = 1u << 2,  ///< upload query for a never-advertised file
  kFlagProvForged = 1u << 3,      ///< peer sent a forged shared-file list
  kFlagProvReplayed = 1u << 4,    ///< HELLO replayed under a rotated user hash
};

/// All provenance-taint bits (records carrying any of these are excluded
/// from the merged dataset).
inline constexpr std::uint8_t kProvenanceMask =
    kFlagProvFabricated | kFlagProvForged | kFlagProvReplayed;

/// One logged query. 56 bytes; honeypots at paper scale produce tens of
/// millions of these, so the layout is deliberately compact: client-name
/// strings are interned per log file and referenced by index.
struct LogRecord {
  Time timestamp = 0;        ///< seconds since measurement start
  std::uint64_t peer = 0;    ///< stage-1 hash, or stage-2 index after merge
  std::uint64_t user = 0;    ///< truncated user hash (persistent client id)
  FileId file{};             ///< queried file (valid when kFlagHasFile)
  std::uint32_t client_version = 0;
  std::uint16_t honeypot = 0;  ///< honeypot index within the measurement
  std::uint16_t peer_port = 0;
  std::uint16_t name_ref = 0;  ///< index into LogFile::names
  QueryType type = QueryType::hello;
  std::uint8_t flags = 0;

  [[nodiscard]] bool high_id() const noexcept { return flags & kFlagHighId; }
  [[nodiscard]] bool has_file() const noexcept { return flags & kFlagHasFile; }
  [[nodiscard]] bool tainted() const noexcept {
    return (flags & kProvenanceMask) != 0;
  }

  bool operator==(const LogRecord&) const = default;
};

/// Whether stage-2 anonymisation has been applied to the peer fields.
enum class PeerIdKind : std::uint8_t {
  stage1_hash = 0,   ///< salted one-way hash (honeypot output)
  stage2_index = 1,  ///< coherent dense integers (manager output)
};

/// Per-log-file constants.
struct LogHeader {
  std::uint16_t honeypot = 0;
  std::string honeypot_name;
  std::string strategy;  ///< "no-content" or "random-content"
  std::string server_name;
  std::uint32_t server_ip = 0;
  std::uint16_t server_port = 0;
  PeerIdKind peer_kind = PeerIdKind::stage1_hash;

  bool operator==(const LogHeader&) const = default;
};

/// A complete honeypot log: header, interned client-name table, records.
struct LogFile {
  LogHeader header;
  std::vector<std::string> names;  ///< index 0 is always "" (unknown)
  std::vector<LogRecord> records;

  LogFile() : names{""} {}

  /// Intern a client-name string, returning its stable index.
  std::uint16_t intern(std::string_view name);

  bool operator==(const LogFile&) const = default;
};

}  // namespace edhp::logbook
