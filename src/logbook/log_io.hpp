#pragma once
// Serialization of honeypot logs: a compact binary format (what honeypots
// write to disk or stream to the manager) and a CSV export for external
// analysis tools.

#include <iosfwd>
#include <string>

#include "logbook/record.hpp"

namespace edhp::logbook {

/// Serialize a log to the binary on-disk format.
void write_binary(std::ostream& out, const LogFile& log);

/// Parse a binary log; throws DecodeError on malformed input.
[[nodiscard]] LogFile read_binary(std::istream& in);

/// Convenience: write/read via a file path (throws std::runtime_error on
/// I/O failure).
void save(const std::string& path, const LogFile& log);
[[nodiscard]] LogFile load(const std::string& path);

/// CSV export with a header row; one line per record.
void write_csv(std::ostream& out, const LogFile& log);

}  // namespace edhp::logbook
