#include "logbook/journal.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "common/bytes.hpp"

namespace edhp::logbook {
namespace {

constexpr std::size_t kFrameHeader = 1 + 4 + 8;  // type + length + checksum
constexpr char kMagic[8] = {'E', 'D', 'H', 'P', 'J', 'R', 'N', '1'};

}  // namespace

std::uint64_t fnv1a(std::span<const std::uint8_t> bytes) {
  std::uint64_t h = 14695981039346656037ull;
  for (const auto b : bytes) {
    h ^= b;
    h *= 1099511628211ull;
  }
  return h;
}

std::string_view to_string(JournalEntryType t) {
  switch (t) {
    case JournalEntryType::checkpoint: return "checkpoint";
    case JournalEntryType::launch: return "launch";
    case JournalEntryType::reassign: return "reassign";
    case JournalEntryType::advertise: return "advertise";
    case JournalEntryType::backups: return "backups";
    case JournalEntryType::start: return "start";
    case JournalEntryType::stop: return "stop";
    case JournalEntryType::relaunch: return "relaunch";
    case JournalEntryType::escalate: return "escalate";
    case JournalEntryType::repair: return "repair";
    case JournalEntryType::chunk_stored: return "chunk_stored";
    case JournalEntryType::recovered: return "recovered";
    case JournalEntryType::degrade_enter: return "degrade_enter";
    case JournalEntryType::degrade_exit: return "degrade_exit";
    case JournalEntryType::probe_verdict: return "probe_verdict";
    case JournalEntryType::server_quarantine: return "server_quarantine";
    case JournalEntryType::server_reinstate: return "server_reinstate";
    case JournalEntryType::clock_observation: return "clock_observation";
  }
  return "unknown";
}

JournalScan scan_journal(std::span<const std::uint8_t> bytes) {
  JournalScan out;
  std::size_t pos = 0;
  while (pos < bytes.size()) {
    const std::size_t remaining = bytes.size() - pos;
    if (remaining < kFrameHeader) {
      out.torn_tail = true;
      out.torn_bytes = remaining;
      return out;
    }
    ByteReader header(bytes.subspan(pos, kFrameHeader));
    const std::uint8_t type = header.u8();
    const std::uint32_t length = header.u32();
    const std::uint64_t checksum = header.u64();
    if (remaining - kFrameHeader < length) {
      // The length prefix promises more payload than the stream holds: the
      // writer died mid-append. Clean tail loss.
      out.torn_tail = true;
      out.torn_bytes = remaining;
      return out;
    }
    const auto payload = bytes.subspan(pos + kFrameHeader, length);
    JournalEntry entry;
    entry.type = type;
    entry.payload.assign(payload.begin(), payload.end());
    entry.offset = pos;
    if (fnv1a(payload) != checksum) {
      out.quarantined.push_back(std::move(entry));
    } else {
      out.entries.push_back(std::move(entry));
    }
    pos += kFrameHeader + length;
  }
  return out;
}

void Journal::append(std::uint8_t type, std::span<const std::uint8_t> payload) {
  ByteWriter frame(kFrameHeader + payload.size());
  frame.u8(type);
  frame.u32(static_cast<std::uint32_t>(payload.size()));
  frame.u64(fnv1a(payload));
  frame.bytes(payload);
  const auto& encoded = frame.view();
  bytes_.insert(bytes_.end(), encoded.begin(), encoded.end());
  ++entries_appended_;
}

void Journal::save(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    throw std::runtime_error("journal save: cannot open " + path);
  }
  bool ok = std::fwrite(kMagic, 1, sizeof(kMagic), f) == sizeof(kMagic);
  if (ok && !bytes_.empty()) {
    ok = std::fwrite(bytes_.data(), 1, bytes_.size(), f) == bytes_.size();
  }
  const bool closed = std::fclose(f) == 0;
  if (!ok || !closed) {
    throw std::runtime_error("journal save: short write to " + path);
  }
}

Journal Journal::load(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw std::runtime_error("journal load: cannot open " + path);
  }
  std::vector<std::uint8_t> data;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    data.insert(data.end(), buf, buf + n);
  }
  std::fclose(f);
  if (data.size() < sizeof(kMagic) ||
      !std::equal(kMagic, kMagic + sizeof(kMagic), data.begin())) {
    throw std::runtime_error("journal load: bad magic in " + path);
  }
  data.erase(data.begin(),
             data.begin() + static_cast<std::ptrdiff_t>(sizeof(kMagic)));
  return from_bytes(std::move(data));
}

Journal Journal::from_bytes(std::vector<std::uint8_t> bytes) {
  Journal j;
  j.bytes_ = std::move(bytes);
  const auto scan = scan_journal(j.bytes_);
  j.entries_appended_ = scan.entries.size() + scan.quarantined.size();
  return j;
}

}  // namespace edhp::logbook
