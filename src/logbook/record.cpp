#include "logbook/record.hpp"

#include <stdexcept>

namespace edhp::logbook {

std::string_view to_string(QueryType t) {
  switch (t) {
    case QueryType::hello:
      return "HELLO";
    case QueryType::start_upload:
      return "START-UPLOAD";
    case QueryType::request_part:
      return "REQUEST-PART";
  }
  return "UNKNOWN";
}

std::uint16_t LogFile::intern(std::string_view name) {
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return static_cast<std::uint16_t>(i);
  }
  if (names.size() >= 0xFFFF) {
    throw std::length_error("LogFile::intern: name table full");
  }
  names.emplace_back(name);
  return static_cast<std::uint16_t>(names.size() - 1);
}

}  // namespace edhp::logbook
