#pragma once
// Write-ahead journal for the manager's control plane.
//
// The manager is the platform's last single point of failure: it launches
// honeypots, assigns servers and merges logs, but (before this module) all
// of that lived in process memory. The journal is the durable side of the
// control plane: an append-only stream of framed, checksummed entries, one
// per state transition, that a restarted manager replays to reconstruct the
// fleet table, watchdog counters and spool-ack frontier before re-adopting
// the honeypots that kept running (and spooling) while it was down.
//
// Frame layout (little-endian):
//
//   [u8 type][u32 payload_len][u64 fnv1a(payload)][payload bytes]
//
// The length prefix + checksum give crash semantics a fsync'd file would:
//   - a frame cut short by a crash mid-append (header or payload missing
//     bytes) is a TORN TAIL: scan() stops cleanly before it and reports the
//     discarded byte count — never an exception, never a garbage entry;
//   - a complete frame whose payload fails its checksum (bit rot, a torn
//     write that happened to keep the length intact) is QUARANTINED: the
//     entry is skipped and reported with its offset, and scanning continues
//     with the next frame.
//
// The journal itself is format-agnostic (type + payload bytes); the typed
// manager entries and their codecs live with honeypot::Manager. The type
// registry below exists here so audit tooling (edhp_inspect journal) can
// name entries without linking the control plane.

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace edhp::logbook {

/// FNV-1a over a byte span (the checksum used for journal frames and spool
/// chunks).
[[nodiscard]] std::uint64_t fnv1a(std::span<const std::uint8_t> bytes);

/// Control-plane entry types. The numeric values are part of the on-disk
/// format: append only, never renumber.
enum class JournalEntryType : std::uint8_t {
  checkpoint = 1,     ///< full state snapshot; replay starts at the last one
  launch = 2,         ///< honeypot added to the fleet
  reassign = 3,       ///< slot pointed at another server
  advertise = 4,      ///< file list ordered for a slot
  backups = 5,        ///< backup-server set replaced
  start = 6,          ///< status polling began
  stop = 7,           ///< polling stopped, fleet disconnected
  relaunch = 8,       ///< watchdog relaunch attempt (epoch bump)
  escalate = 9,       ///< watchdog escalation to a backup server
  repair = 10,        ///< ordered-list re-offer (advertise repair)
  chunk_stored = 11,  ///< spool chunk durably ingested (ack frontier)
  recovered = 12,     ///< a recovery completed (downtime accounting)
  degrade_enter = 13, ///< a honeypot declared degraded mode (overload)
  degrade_exit = 14,  ///< degraded mode ended (shed/compaction totals)
  probe_verdict = 15,      ///< a self-probe verdict reached the manager
  server_quarantine = 16,  ///< a lying server quarantined, slots reassigned
  server_reinstate = 17,   ///< quarantine cooloff ended, slots moved back
  clock_observation = 18,  ///< a honeypot's (true, local) clock sighting
};

[[nodiscard]] std::string_view to_string(JournalEntryType t);

/// One decoded frame.
struct JournalEntry {
  std::uint8_t type = 0;
  std::vector<std::uint8_t> payload;
  std::size_t offset = 0;  ///< byte offset of the frame start
};

/// Result of scanning a journal byte stream. Never throws: damage is
/// reported, not raised.
struct JournalScan {
  std::vector<JournalEntry> entries;     ///< intact frames, in order
  std::vector<JournalEntry> quarantined; ///< complete frames failing checksum
  bool torn_tail = false;   ///< stream ended inside a frame
  std::size_t torn_bytes = 0;  ///< bytes discarded with the torn tail
};

/// Scan a raw frame stream (no file magic), tolerating a torn tail and
/// quarantining corrupt frames. See the header comment for the policy.
[[nodiscard]] JournalScan scan_journal(std::span<const std::uint8_t> bytes);

/// The append-only journal device. In the field this is an fsync'd file on
/// the manager host; here it is a byte buffer that survives the manager
/// object's crash/recover cycle (it is shared between incarnations via
/// ManagerConfig::journal).
class Journal {
 public:
  /// Append one framed entry.
  void append(std::uint8_t type, std::span<const std::uint8_t> payload);
  void append(JournalEntryType type, std::span<const std::uint8_t> payload) {
    append(static_cast<std::uint8_t>(type), payload);
  }

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept {
    return bytes_;
  }
  [[nodiscard]] std::size_t size_bytes() const noexcept { return bytes_.size(); }
  [[nodiscard]] std::uint64_t entries_appended() const noexcept {
    return entries_appended_;
  }

  /// Scan the current contents (see scan_journal).
  [[nodiscard]] JournalScan scan() const { return scan_journal(bytes_); }

  /// Persist to / restore from a file ("EDHPJRN1" magic + raw frames).
  /// save throws std::runtime_error on I/O failure; load throws on missing
  /// file or bad magic — but never on damaged frames, which scan() reports.
  void save(const std::string& path) const;
  [[nodiscard]] static Journal load(const std::string& path);

  /// Adopt a raw frame stream (tests, tools). Entry count is recomputed
  /// from an initial scan.
  [[nodiscard]] static Journal from_bytes(std::vector<std::uint8_t> bytes);

 private:
  std::vector<std::uint8_t> bytes_;
  std::uint64_t entries_appended_ = 0;
};

}  // namespace edhp::logbook
