#pragma once
// Crash-safe log spooling.
//
// The paper's manager "gathers the logs" of its honeypots during the
// measurement, not only at the end — a PlanetLab host that dies loses at
// most the records produced since the last gathering. This module models
// that pipeline:
//
//   - a honeypot periodically cuts the records appended since the last cut
//     into a LogChunk, stamped with its relaunch epoch and a monotone
//     sequence number, and hands it to the manager (see
//     Honeypot::set_spool_sink);
//   - the chunk stays in the honeypot's local spool (its on-disk journal)
//     until the manager acknowledges it, so a crash between send and ack
//     re-sends the chunk on relaunch with its ORIGINAL (epoch, seq);
//   - the manager's SpoolStore accepts chunks at-least-once and dedups by
//     sequence number, so the reassembled per-honeypot log equals the
//     honeypot's own log regardless of crashes, minus only the records a
//     crash destroyed before they were ever spooled (the accounted tail).

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.hpp"
#include "logbook/record.hpp"

namespace edhp::logbook {

/// Spooling knobs, injected into each honeypot by the manager.
struct SpoolConfig {
  bool enabled = false;
  /// Chunk-cutting cadence (the paper's periodic log gathering).
  Duration period = minutes(10);
  /// Delay between the manager receiving a chunk and the honeypot learning
  /// it is safe to drop it (models the out-of-band transfer round-trip); a
  /// crash inside this window causes a duplicate re-send on relaunch.
  Duration ack_delay = 30.0;
};

/// One sequence-numbered batch of log records. `names` carries the tail of
/// the honeypot's interned-name table added since the previous chunk, so
/// the store can rebuild the full table; `name_base` is its start index.
struct LogChunk {
  std::uint16_t honeypot = 0;
  std::uint32_t epoch = 0;  ///< process incarnation that FIRST sent it
  std::uint64_t seq = 0;    ///< monotone per honeypot, across epochs
  std::size_t name_base = 0;
  /// The honeypot's LOCAL clock reading at the instant it cut the chunk.
  /// The manager pairs it with its own receive time to observe the
  /// honeypot's clock offset (see logbook::ClockObservation); 0 on chunks
  /// from producers predating virtual clocks. Checksummed, but excluded
  /// from chunk_cost_bytes so quota thresholds are identical across clock
  /// ablations.
  Time cut_at_local = 0;
  std::vector<std::string> names;
  std::vector<LogRecord> records;
  /// FNV-1a over the payload (see chunk_checksum), stamped by the honeypot
  /// when it cuts the chunk. 0 = unchecksummed (legacy producers); the
  /// store then skips verification.
  std::uint64_t checksum = 0;
};

/// Payload checksum of a chunk: FNV-1a over identity, every record field
/// and the name-table slice. Field-by-field (not struct bytes), so padding
/// never leaks into the value.
[[nodiscard]] std::uint64_t chunk_checksum(const LogChunk& chunk);

/// Byte cost a resident chunk charges against a spool quota: the serialized
/// footprint (frame header + name-table slice + packed records + checksum),
/// deliberately the same arithmetic on every platform so byte-accounted
/// degradation thresholds are deterministic.
[[nodiscard]] std::uint64_t chunk_cost_bytes(const LogChunk& chunk);

/// Quarantined chunks whose (honeypot, seq) refs are retained for triage;
/// beyond this, quarantines are still counted and still rejected, but only
/// the counter grows (a corruptor must not be able to balloon manager
/// memory with distinct bad chunks — see ISSUE 5 satellite 1).
inline constexpr std::size_t kQuarantineRefCap = 64;

/// Manager-side chunk store: accepts chunks at-least-once, dedups by
/// (honeypot, seq), and reassembles per-honeypot logs in sequence order.
class SpoolStore {
 public:
  /// Record the header to attach to reassembled logs (first write wins for
  /// name/strategy; server fields refresh on reassignment).
  void set_header(std::uint16_t honeypot, const LogHeader& header);

  /// Outcome of one chunk ingestion.
  enum class Ingest : std::uint8_t {
    stored,       ///< new sequence number, payload verified, now durable
    duplicate,    ///< already-accepted sequence number (at-least-once)
    quarantined,  ///< checksum mismatch; chunk set aside, NOT merged
  };

  /// Ingest one chunk: verify its checksum (when stamped), dedup by
  /// (honeypot, seq). Quarantined chunks are counted and listed but never
  /// enter a reassembled log — a corrupted transfer must be re-sent, so the
  /// caller should not acknowledge it.
  Ingest ingest(const LogChunk& chunk);

  /// Ingest one chunk. Returns true when the chunk was new, false for a
  /// duplicate (already-accepted sequence number) or a quarantined one.
  bool accept(const LogChunk& chunk) {
    return ingest(chunk) == Ingest::stored;
  }

  /// Rebuild one honeypot's log from its accepted chunks, in sequence
  /// order. Unknown honeypots yield an empty log.
  [[nodiscard]] LogFile reassemble(std::uint16_t honeypot) const;
  /// Rebuild every known honeypot's log, ordered by honeypot id.
  [[nodiscard]] std::vector<LogFile> reassemble_all() const;

  [[nodiscard]] std::uint64_t chunks_accepted() const noexcept {
    return chunks_accepted_;
  }
  [[nodiscard]] std::uint64_t chunks_duplicate() const noexcept {
    return chunks_duplicate_;
  }
  [[nodiscard]] std::uint64_t records_stored() const noexcept {
    return records_stored_;
  }
  [[nodiscard]] std::uint64_t chunks_quarantined() const noexcept {
    return chunks_quarantined_;
  }
  /// (honeypot, seq) of quarantined chunks in arrival order — the
  /// operator's triage list, capped at kQuarantineRefCap entries (the
  /// counter above keeps the true total; the overflow is
  /// `quarantine_dropped()`).
  struct QuarantineRef {
    std::uint16_t honeypot = 0;
    std::uint64_t seq = 0;
  };
  [[nodiscard]] const std::vector<QuarantineRef>& quarantine() const noexcept {
    return quarantine_;
  }
  /// Quarantined chunks beyond the ref cap (counted, refs not retained).
  [[nodiscard]] std::uint64_t quarantine_dropped() const noexcept {
    return chunks_quarantined_ > quarantine_.size()
               ? chunks_quarantined_ - quarantine_.size()
               : 0;
  }
  /// Records currently resident in quarantined chunks with no intact copy
  /// stored — the conservation ledger's `quarantined` disposition. The
  /// classification is decided once, at publish time, not at quarantine
  /// time: a later intact re-send of the same (honeypot, seq) moves the
  /// records to `stored` (the pending entry is erased), and a corrupt
  /// re-send of an ALREADY-stored sequence counts a chunk quarantine but
  /// zero resident records (they are durable regardless). Per-sequence
  /// tracking is capped at kQuarantineRefCap distinct sequences, like the
  /// triage refs; beyond it records are still counted but a winning re-send
  /// can no longer reclassify them (documented cap, not silent loss).
  [[nodiscard]] std::uint64_t records_quarantined_resident() const noexcept {
    return quarantine_resident_ + quarantine_resident_untracked_;
  }
  /// Highest stored sequence number + 1 for a honeypot (0 when none): the
  /// ack frontier a recovering manager re-acknowledges from.
  [[nodiscard]] std::uint64_t next_seq(std::uint16_t honeypot) const;

 private:
  struct PerHoneypot {
    LogHeader header;
    bool header_set = false;
    std::vector<std::string> names{""};  ///< rebuilt intern table
    std::map<std::uint64_t, std::vector<LogRecord>> chunks;  ///< by seq
  };

  std::map<std::uint16_t, PerHoneypot> honeypots_;
  std::uint64_t chunks_accepted_ = 0;
  std::uint64_t chunks_duplicate_ = 0;
  std::uint64_t records_stored_ = 0;
  std::uint64_t chunks_quarantined_ = 0;
  std::vector<QuarantineRef> quarantine_;
  /// Record counts of quarantined sequences still awaiting an intact
  /// re-send, keyed (honeypot, seq); erased when the re-send wins. Capped
  /// at kQuarantineRefCap entries (overflow counts into the untracked sum).
  std::map<std::pair<std::uint16_t, std::uint64_t>, std::uint64_t>
      quarantine_pending_;
  std::uint64_t quarantine_resident_ = 0;
  std::uint64_t quarantine_resident_untracked_ = 0;
};

}  // namespace edhp::logbook
