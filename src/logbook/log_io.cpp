#include "logbook/log_io.hpp"

#include <fstream>
#include <ostream>

#include "common/bytes.hpp"

namespace edhp::logbook {
namespace {

constexpr char kMagic[8] = {'E', 'D', 'H', 'P', 'L', 'O', 'G', '1'};

void write_u64(std::ostream& out, std::uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) {
    b[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  }
  out.write(b, 8);
}

std::uint64_t read_u64(std::istream& in) {
  unsigned char b[8];
  in.read(reinterpret_cast<char*>(b), 8);
  if (!in) throw DecodeError("log: truncated u64");
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | b[i];
  }
  return v;
}

void write_str(std::ostream& out, const std::string& s) {
  write_u64(out, s.size());
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string read_str(std::istream& in) {
  const auto n = read_u64(in);
  if (n > (1u << 20)) throw DecodeError("log: absurd string length");
  std::string s(n, '\0');
  in.read(s.data(), static_cast<std::streamsize>(n));
  if (!in) throw DecodeError("log: truncated string");
  return s;
}

std::uint64_t double_bits(double d) {
  std::uint64_t v;
  static_assert(sizeof(v) == sizeof(d));
  __builtin_memcpy(&v, &d, sizeof(v));
  return v;
}

double bits_double(std::uint64_t v) {
  double d;
  __builtin_memcpy(&d, &v, sizeof(d));
  return d;
}

}  // namespace

void write_binary(std::ostream& out, const LogFile& log) {
  out.write(kMagic, sizeof(kMagic));
  const auto& h = log.header;
  write_u64(out, h.honeypot);
  write_str(out, h.honeypot_name);
  write_str(out, h.strategy);
  write_str(out, h.server_name);
  write_u64(out, h.server_ip);
  write_u64(out, h.server_port);
  write_u64(out, static_cast<std::uint64_t>(h.peer_kind));

  write_u64(out, log.names.size());
  for (const auto& n : log.names) {
    write_str(out, n);
  }

  write_u64(out, log.records.size());
  for (const auto& r : log.records) {
    write_u64(out, double_bits(r.timestamp));
    write_u64(out, r.peer);
    write_u64(out, r.user);
    out.write(reinterpret_cast<const char*>(r.file.bytes().data()), 16);
    write_u64(out, r.client_version);
    write_u64(out, (static_cast<std::uint64_t>(r.honeypot) << 48) |
                       (static_cast<std::uint64_t>(r.peer_port) << 32) |
                       (static_cast<std::uint64_t>(r.name_ref) << 16) |
                       (static_cast<std::uint64_t>(r.type) << 8) |
                       static_cast<std::uint64_t>(r.flags));
  }
}

LogFile read_binary(std::istream& in) {
  char magic[8];
  in.read(magic, 8);
  if (!in || !std::equal(magic, magic + 8, kMagic)) {
    throw DecodeError("log: bad magic");
  }
  LogFile log;
  auto& h = log.header;
  h.honeypot = static_cast<std::uint16_t>(read_u64(in));
  h.honeypot_name = read_str(in);
  h.strategy = read_str(in);
  h.server_name = read_str(in);
  h.server_ip = static_cast<std::uint32_t>(read_u64(in));
  h.server_port = static_cast<std::uint16_t>(read_u64(in));
  const auto kind = read_u64(in);
  if (kind > 1) throw DecodeError("log: bad peer-id kind");
  h.peer_kind = static_cast<PeerIdKind>(kind);

  const auto n_names = read_u64(in);
  if (n_names == 0 || n_names > 0x10000) {
    throw DecodeError("log: bad name-table size");
  }
  log.names.clear();
  log.names.reserve(n_names);
  for (std::uint64_t i = 0; i < n_names; ++i) {
    log.names.push_back(read_str(in));
  }

  const auto n_records = read_u64(in);
  log.records.reserve(n_records);
  for (std::uint64_t i = 0; i < n_records; ++i) {
    LogRecord r;
    r.timestamp = bits_double(read_u64(in));
    r.peer = read_u64(in);
    r.user = read_u64(in);
    FileId::Bytes fb{};
    in.read(reinterpret_cast<char*>(fb.data()), 16);
    if (!in) throw DecodeError("log: truncated record");
    r.file = FileId(fb);
    r.client_version = static_cast<std::uint32_t>(read_u64(in));
    const auto packed = read_u64(in);
    r.honeypot = static_cast<std::uint16_t>(packed >> 48);
    r.peer_port = static_cast<std::uint16_t>((packed >> 32) & 0xFFFF);
    r.name_ref = static_cast<std::uint16_t>((packed >> 16) & 0xFFFF);
    const auto type = static_cast<std::uint8_t>((packed >> 8) & 0xFF);
    if (type > 2) throw DecodeError("log: bad record type");
    r.type = static_cast<QueryType>(type);
    r.flags = static_cast<std::uint8_t>(packed & 0xFF);
    if (r.name_ref >= log.names.size()) {
      throw DecodeError("log: name reference out of range");
    }
    log.records.push_back(r);
  }
  return log;
}

void save(const std::string& path, const LogFile& log) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  write_binary(out, log);
  if (!out) throw std::runtime_error("write failed: " + path);
}

LogFile load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open for reading: " + path);
  return read_binary(in);
}

void write_csv(std::ostream& out, const LogFile& log) {
  out << "timestamp,honeypot,type,peer,user,high_id,file,peer_port,"
         "client_name,client_version\n";
  for (const auto& r : log.records) {
    out << r.timestamp << ',' << r.honeypot << ',' << to_string(r.type) << ','
        << r.peer << ',' << r.user << ',' << (r.high_id() ? 1 : 0) << ','
        << (r.has_file() ? r.file.hex() : std::string{}) << ',' << r.peer_port
        << ',' << log.names[r.name_ref] << ',' << r.client_version << '\n';
  }
}

}  // namespace edhp::logbook
