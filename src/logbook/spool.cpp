#include "logbook/spool.hpp"

#include <bit>
#include <utility>

#include "common/bytes.hpp"
#include "logbook/journal.hpp"

namespace edhp::logbook {

std::uint64_t chunk_checksum(const LogChunk& chunk) {
  ByteWriter w(64 + chunk.records.size() * 56);
  w.u16(chunk.honeypot);
  w.u32(chunk.epoch);
  w.u64(chunk.seq);
  w.u64(chunk.name_base);
  w.u64(std::bit_cast<std::uint64_t>(chunk.cut_at_local));
  for (const auto& name : chunk.names) {
    w.str16(name);
  }
  for (const auto& r : chunk.records) {
    w.u64(std::bit_cast<std::uint64_t>(r.timestamp));
    w.u64(r.peer);
    w.u64(r.user);
    w.bytes(r.file.bytes());
    w.u32(r.client_version);
    w.u16(r.honeypot);
    w.u16(r.peer_port);
    w.u16(r.name_ref);
    w.u8(static_cast<std::uint8_t>(r.type));
    w.u8(r.flags);
  }
  return fnv1a(w.view());
}

std::uint64_t chunk_cost_bytes(const LogChunk& chunk) {
  // Fixed header: honeypot(2) + epoch(4) + seq(8) + name_base(8) = 22,
  // plus the trailing checksum word. Records are costed at their packed
  // wire width (56 B), names at length-prefixed size — NOT sizeof() of the
  // in-memory containers, so the figure is platform-independent.
  std::uint64_t cost = 22 + 8;
  for (const auto& name : chunk.names) {
    cost += 2 + name.size();
  }
  cost += chunk.records.size() * 56;
  return cost;
}

void SpoolStore::set_header(std::uint16_t honeypot, const LogHeader& header) {
  auto& hp = honeypots_[honeypot];
  hp.header = header;
  hp.header_set = true;
}

SpoolStore::Ingest SpoolStore::ingest(const LogChunk& chunk) {
  const auto key = std::make_pair(chunk.honeypot, chunk.seq);
  if (chunk.checksum != 0 && chunk_checksum(chunk) != chunk.checksum) {
    // The payload does not match what the honeypot stamped: a corrupted
    // transfer. Never merged, never acked — the sender keeps it spooled
    // and a later re-send (or the operator) resolves it.
    ++chunks_quarantined_;
    if (quarantine_.size() < kQuarantineRefCap) {
      quarantine_.push_back({chunk.honeypot, chunk.seq});
    }
    // Conservation accounting: the records are quarantined-resident only
    // while no intact copy of this sequence is durable. A corrupt re-send
    // of an already-stored sequence adds nothing (its records are safe),
    // and a re-quarantine of the same pending sequence is not re-counted.
    const auto hp_it = honeypots_.find(chunk.honeypot);
    const bool already_stored =
        hp_it != honeypots_.end() && hp_it->second.chunks.contains(chunk.seq);
    if (!already_stored && !quarantine_pending_.contains(key)) {
      if (quarantine_pending_.size() < kQuarantineRefCap) {
        quarantine_pending_.emplace(key, chunk.records.size());
        quarantine_resident_ += chunk.records.size();
      } else {
        quarantine_resident_untracked_ += chunk.records.size();
      }
    }
    return Ingest::quarantined;
  }
  auto& hp = honeypots_[chunk.honeypot];
  if (hp.chunks.contains(chunk.seq)) {
    ++chunks_duplicate_;
    return Ingest::duplicate;
  }
  // An intact copy landed: any earlier quarantine of this sequence is
  // reclassified — those records' terminal disposition is `stored`.
  if (const auto pending = quarantine_pending_.find(key);
      pending != quarantine_pending_.end()) {
    quarantine_resident_ -= pending->second;
    quarantine_pending_.erase(pending);
  }
  // Splice the name-table tail at its declared base. Re-sent chunks carry
  // the same (base, names) slice, and chunks are cut in order, so the table
  // grows append-only; an out-of-order arrival just pre-extends it.
  if (chunk.name_base + chunk.names.size() > hp.names.size()) {
    hp.names.resize(chunk.name_base + chunk.names.size());
  }
  for (std::size_t i = 0; i < chunk.names.size(); ++i) {
    hp.names[chunk.name_base + i] = chunk.names[i];
  }
  records_stored_ += chunk.records.size();
  hp.chunks.emplace(chunk.seq, chunk.records);
  ++chunks_accepted_;
  return Ingest::stored;
}

std::uint64_t SpoolStore::next_seq(std::uint16_t honeypot) const {
  const auto it = honeypots_.find(honeypot);
  if (it == honeypots_.end() || it->second.chunks.empty()) return 0;
  return it->second.chunks.rbegin()->first + 1;
}

LogFile SpoolStore::reassemble(std::uint16_t honeypot) const {
  LogFile out;
  const auto it = honeypots_.find(honeypot);
  if (it == honeypots_.end()) return out;
  const auto& hp = it->second;
  if (hp.header_set) out.header = hp.header;
  out.names = hp.names;
  if (out.names.empty()) out.names.push_back("");
  std::size_t total = 0;
  for (const auto& [seq, records] : hp.chunks) {
    total += records.size();
  }
  out.records.reserve(total);
  for (const auto& [seq, records] : hp.chunks) {
    out.records.insert(out.records.end(), records.begin(), records.end());
  }
  return out;
}

std::vector<LogFile> SpoolStore::reassemble_all() const {
  std::vector<LogFile> out;
  out.reserve(honeypots_.size());
  for (const auto& [id, hp] : honeypots_) {
    out.push_back(reassemble(id));
  }
  return out;
}

}  // namespace edhp::logbook
