#include "logbook/spool.hpp"

namespace edhp::logbook {

void SpoolStore::set_header(std::uint16_t honeypot, const LogHeader& header) {
  auto& hp = honeypots_[honeypot];
  hp.header = header;
  hp.header_set = true;
}

bool SpoolStore::accept(const LogChunk& chunk) {
  auto& hp = honeypots_[chunk.honeypot];
  if (hp.chunks.contains(chunk.seq)) {
    ++chunks_duplicate_;
    return false;
  }
  // Splice the name-table tail at its declared base. Re-sent chunks carry
  // the same (base, names) slice, and chunks are cut in order, so the table
  // grows append-only; an out-of-order arrival just pre-extends it.
  if (chunk.name_base + chunk.names.size() > hp.names.size()) {
    hp.names.resize(chunk.name_base + chunk.names.size());
  }
  for (std::size_t i = 0; i < chunk.names.size(); ++i) {
    hp.names[chunk.name_base + i] = chunk.names[i];
  }
  records_stored_ += chunk.records.size();
  hp.chunks.emplace(chunk.seq, chunk.records);
  ++chunks_accepted_;
  return true;
}

LogFile SpoolStore::reassemble(std::uint16_t honeypot) const {
  LogFile out;
  const auto it = honeypots_.find(honeypot);
  if (it == honeypots_.end()) return out;
  const auto& hp = it->second;
  if (hp.header_set) out.header = hp.header;
  out.names = hp.names;
  if (out.names.empty()) out.names.push_back("");
  std::size_t total = 0;
  for (const auto& [seq, records] : hp.chunks) {
    total += records.size();
  }
  out.records.reserve(total);
  for (const auto& [seq, records] : hp.chunks) {
    out.records.insert(out.records.end(), records.begin(), records.end());
  }
  return out;
}

std::vector<LogFile> SpoolStore::reassemble_all() const {
  std::vector<LogFile> out;
  out.reserve(honeypots_.size());
  for (const auto& [id, hp] : honeypots_) {
    out.push_back(reassemble(id));
  }
  return out;
}

}  // namespace edhp::logbook
