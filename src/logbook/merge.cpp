#include "logbook/merge.hpp"

#include <algorithm>
#include <stdexcept>

namespace edhp::logbook {

LogFile merge_logs(std::span<const LogFile> logs) {
  LogFile merged;
  merged.header.honeypot = 0xFFFF;
  merged.header.honeypot_name = "merged";

  if (logs.empty()) return merged;

  merged.header.peer_kind = logs.front().header.peer_kind;
  merged.header.server_name = logs.front().header.server_name;
  merged.header.server_ip = logs.front().header.server_ip;
  merged.header.server_port = logs.front().header.server_port;

  std::size_t total = 0;
  for (const auto& log : logs) {
    if (log.header.peer_kind != merged.header.peer_kind) {
      throw std::invalid_argument(
          "merge_logs: cannot mix stage-1 and stage-2 logs");
    }
    if (log.header.server_ip != merged.header.server_ip) {
      // Honeypots on different servers: no single server identity.
      merged.header.server_name.clear();
      merged.header.server_ip = 0;
      merged.header.server_port = 0;
    }
    total += log.records.size();
  }

  merged.records.reserve(total);
  for (const auto& log : logs) {
    // Re-intern names into the unified table and remap references.
    std::vector<std::uint16_t> remap(log.names.size());
    for (std::size_t i = 0; i < log.names.size(); ++i) {
      remap[i] = merged.intern(log.names[i]);
    }
    for (LogRecord r : log.records) {
      r.name_ref = remap[r.name_ref];
      merged.records.push_back(r);
    }
  }

  std::stable_sort(merged.records.begin(), merged.records.end(),
                   [](const LogRecord& a, const LogRecord& b) {
                     if (a.timestamp != b.timestamp) {
                       return a.timestamp < b.timestamp;
                     }
                     return a.honeypot < b.honeypot;
                   });
  return merged;
}

}  // namespace edhp::logbook
