#include "logbook/merge.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_map>
#include <vector>

namespace edhp::logbook {
namespace {

/// Header union + name re-interning shared by both merge flavors: records
/// are appended in log order (each input log is one honeypot's chunks in
/// (epoch, seq) order, so per-honeypot append order survives), unsorted.
LogFile merge_unsorted(std::span<const LogFile> logs) {
  LogFile merged;
  merged.header.honeypot = 0xFFFF;
  merged.header.honeypot_name = "merged";

  if (logs.empty()) return merged;

  merged.header.peer_kind = logs.front().header.peer_kind;
  merged.header.server_name = logs.front().header.server_name;
  merged.header.server_ip = logs.front().header.server_ip;
  merged.header.server_port = logs.front().header.server_port;

  std::size_t total = 0;
  for (const auto& log : logs) {
    if (log.header.peer_kind != merged.header.peer_kind) {
      throw std::invalid_argument(
          "merge_logs: cannot mix stage-1 and stage-2 logs");
    }
    if (log.header.server_ip != merged.header.server_ip) {
      // Honeypots on different servers: no single server identity.
      merged.header.server_name.clear();
      merged.header.server_ip = 0;
      merged.header.server_port = 0;
    }
    total += log.records.size();
  }

  merged.records.reserve(total);
  for (const auto& log : logs) {
    // Re-intern names into the unified table and remap references.
    std::vector<std::uint16_t> remap(log.names.size());
    for (std::size_t i = 0; i < log.names.size(); ++i) {
      remap[i] = merged.intern(log.names[i]);
    }
    for (LogRecord r : log.records) {
      r.name_ref = remap[r.name_ref];
      merged.records.push_back(r);
    }
  }
  return merged;
}

void sort_merged(LogFile& merged) {
  std::stable_sort(merged.records.begin(), merged.records.end(),
                   [](const LogRecord& a, const LogRecord& b) {
                     if (a.timestamp != b.timestamp) {
                       return a.timestamp < b.timestamp;
                     }
                     return a.honeypot < b.honeypot;
                   });
}

/// One honeypot's reconstructed clock: the monotone envelope of its
/// observed local readings paired with the manager's true times, plus the
/// boundary slopes used beyond the observed range.
struct ClockFit {
  std::vector<Time> local;  ///< monotone envelope, non-decreasing
  std::vector<Time> truth;  ///< strictly increasing observation times
  double slope_lo = 1.0;    ///< d(true)/d(local) before the first sighting
  double slope_hi = 1.0;    ///< ... after the last sighting
};

/// Map a (monotone-repaired) local reading onto the true timeline.
Time apply_fit(const ClockFit& fit, Time local, TimeIntegrityStats& stats) {
  const std::size_t n = fit.local.size();
  if (n == 1) {
    // A single sighting supports only a constant-offset model.
    ++stats.records_extrapolated;
    return local + (fit.truth[0] - fit.local[0]);
  }
  const auto it = std::upper_bound(fit.local.begin(), fit.local.end(), local);
  const auto idx = static_cast<std::size_t>(it - fit.local.begin());
  if (idx == 0) {
    ++stats.records_extrapolated;
    return fit.truth.front() + (local - fit.local.front()) * fit.slope_lo;
  }
  if (idx == n) {
    ++stats.records_extrapolated;
    return fit.truth.back() + (local - fit.local.back()) * fit.slope_hi;
  }
  const std::size_t i = idx - 1;
  const Time dl = fit.local[i + 1] - fit.local[i];
  if (dl <= 0) {
    // Flat (non-invertible) segment: a backwards step collapsed it. The
    // best defensible claim is "somewhere in this window"; pin to its
    // start so same-honeypot order still decides, and flag it.
    ++stats.records_ambiguous;
    return fit.truth[i];
  }
  ++stats.records_interpolated;
  return fit.truth[i] +
         (local - fit.local[i]) * (fit.truth[i + 1] - fit.truth[i]) / dl;
}

}  // namespace

LogFile merge_logs(std::span<const LogFile> logs) {
  LogFile merged = merge_unsorted(logs);
  sort_merged(merged);
  return merged;
}

LogFile merge_logs_skew(std::span<const LogFile> logs,
                        std::span<const ClockObservation> observations,
                        TimeIntegrityStats* stats_out) {
  TimeIntegrityStats stats;
  LogFile merged = merge_unsorted(logs);

  // --- Per-honeypot piecewise-linear clock reconstruction ----------------
  std::unordered_map<std::uint16_t, std::vector<ClockObservation>> by_hp;
  for (const auto& obs : observations) by_hp[obs.honeypot].push_back(obs);
  stats.observations_used = observations.size();

  std::unordered_map<std::uint16_t, ClockFit> fits;
  fits.reserve(by_hp.size());
  for (auto& [hp, obs] : by_hp) {
    std::stable_sort(obs.begin(), obs.end(),
                     [](const ClockObservation& a, const ClockObservation& b) {
                       return a.true_time < b.true_time;
                     });
    ClockFit fit;
    fit.local.reserve(obs.size());
    fit.truth.reserve(obs.size());
    for (const auto& o : obs) {
      if (!fit.truth.empty() && o.true_time == fit.truth.back() &&
          o.local_time == fit.local.back()) {
        continue;  // heartbeat and chunk cut landing on the same instant
      }
      Time env = o.local_time;
      if (!fit.local.empty() && env < fit.local.back()) {
        // The honeypot's clock regressed between sightings (backwards NTP
        // step). Keep the envelope monotone so the map stays invertible;
        // the collapsed span becomes a flagged flat segment.
        ++stats.observation_resets;
        env = fit.local.back();
      }
      fit.local.push_back(env);
      fit.truth.push_back(o.true_time);
    }
    if (fit.truth.size() >= 2) ++stats.honeypots_tracked;
    // Boundary slopes: reuse the nearest invertible segment's rate so a
    // drifting clock extrapolates with its measured drift, not 1:1.
    for (std::size_t j = 0; j + 1 < fit.local.size(); ++j) {
      if (fit.local[j + 1] > fit.local[j] && fit.truth[j + 1] > fit.truth[j]) {
        fit.slope_lo =
            (fit.truth[j + 1] - fit.truth[j]) / (fit.local[j + 1] - fit.local[j]);
        break;
      }
    }
    for (std::size_t j = fit.local.size(); j-- > 1;) {
      if (fit.local[j] > fit.local[j - 1] && fit.truth[j] > fit.truth[j - 1]) {
        fit.slope_hi =
            (fit.truth[j] - fit.truth[j - 1]) / (fit.local[j] - fit.local[j - 1]);
        break;
      }
    }
    fits.emplace(hp, std::move(fit));
  }

  // --- Rewrite timestamps in per-honeypot append order -------------------
  // Within a honeypot, append order (chunk (epoch, seq) order) is ground
  // truth: a raw local timestamp running backwards is a clock artifact,
  // never a real reordering, so it is lifted back to monotone before the
  // clock map is applied and the lift is counted.
  struct HpState {
    bool has_prev = false;
    Time prev_raw = 0;
    Time prev_eff = 0;
    Time prev_corrected = 0;
  };
  std::unordered_map<std::uint16_t, HpState> state;
  for (LogRecord& r : merged.records) {
    HpState& st = state[r.honeypot];
    const Time raw = r.timestamp;
    if (st.has_prev && raw < st.prev_raw) ++stats.monotonicity_violations;
    Time eff = raw;
    if (st.has_prev && eff < st.prev_eff) {
      eff = st.prev_eff;
      ++stats.order_restorations;
    }
    Time corrected = eff;
    const auto fit = fits.find(r.honeypot);
    if (fit != fits.end() && !fit->second.truth.empty()) {
      corrected = apply_fit(fit->second, eff, stats);
    }
    // The map is monotone in eff, so this clamp only absorbs floating-point
    // dust at segment boundaries; it can never silently reorder.
    if (st.has_prev && corrected < st.prev_corrected) {
      corrected = st.prev_corrected;
    }
    if (corrected != raw) {
      ++stats.records_corrected;
      stats.max_abs_correction =
          std::max(stats.max_abs_correction, std::abs(corrected - raw));
    }
    st.prev_raw = raw;
    st.prev_eff = eff;
    st.prev_corrected = corrected;
    st.has_prev = true;
    r.timestamp = corrected;
  }

  sort_merged(merged);
  if (stats_out != nullptr) *stats_out = stats;
  return merged;
}

}  // namespace edhp::logbook
