#pragma once
// Merging and unifying honeypot logs (one of the manager's roles): combine
// per-honeypot log files into a single time-ordered log with a unified
// client-name table.

#include <span>

#include "logbook/record.hpp"

namespace edhp::logbook {

/// Merge per-honeypot logs into one log ordered by (timestamp, honeypot).
/// All inputs must carry the same PeerIdKind; record honeypot ids are
/// preserved. The merged header keeps the shared server identity when all
/// inputs agree, and marks the honeypot field with 0xFFFF ("merged").
[[nodiscard]] LogFile merge_logs(std::span<const LogFile> logs);

}  // namespace edhp::logbook
