#pragma once
// Merging and unifying honeypot logs (one of the manager's roles): combine
// per-honeypot log files into a single time-ordered log with a unified
// client-name table.
//
// Two entry points:
//   merge_logs       — trust the timestamps (the pre-clock-fault pipeline);
//   merge_logs_skew  — reconstruct each honeypot's local clock from bounded
//                      -offset observations (heartbeats, spool-chunk acks)
//                      and rewrite every timestamp back onto the manager's
//                      timeline before ordering. Every correction, fallback
//                      and local-monotonicity violation is counted in
//                      TimeIntegrityStats: no silent reordering, ever.

#include <cstdint>
#include <span>

#include "common/clock.hpp"
#include "logbook/record.hpp"

namespace edhp::logbook {

/// One bounded-offset clock sighting: at manager (true) time `true_time`,
/// honeypot `honeypot` reported its local clock reading `local_time`. The
/// manager harvests these from exchanges it already has — heartbeat polls
/// and freshly-cut spool chunks — so no extra protocol traffic exists.
struct ClockObservation {
  std::uint16_t honeypot = 0;
  Time true_time = 0;
  Time local_time = 0;

  bool operator==(const ClockObservation&) const = default;
};

/// Ledger of everything the skew-correction pass did. The integrity
/// contract: output record count equals input record count, same-honeypot
/// relative order is preserved exactly, and every timestamp the pass moved
/// or could not disambiguate is counted here — a deviation between the
/// merged order and true-time order that is NOT accounted for in these
/// counters is a bug, not a measurement artifact.
struct TimeIntegrityStats {
  std::uint64_t observations_used = 0;    ///< clock sightings consumed
  std::uint64_t honeypots_tracked = 0;    ///< honeypots with >= 2 sightings
  std::uint64_t records_corrected = 0;    ///< timestamps actually rewritten
  std::uint64_t records_interpolated = 0; ///< mapped inside an obs segment
  std::uint64_t records_extrapolated = 0; ///< mapped beyond the obs range
  std::uint64_t records_ambiguous = 0;    ///< non-invertible (flat) segment
  std::uint64_t monotonicity_violations = 0;  ///< raw local time ran backwards
  std::uint64_t order_restorations = 0;   ///< records lifted back into order
  std::uint64_t observation_resets = 0;   ///< obs where local time regressed
  double max_abs_correction = 0;          ///< worst |corrected - raw| (s)

  bool operator==(const TimeIntegrityStats&) const = default;
};

/// Merge per-honeypot logs into one log ordered by (timestamp, honeypot).
/// All inputs must carry the same PeerIdKind; record honeypot ids are
/// preserved. The merged header keeps the shared server identity when all
/// inputs agree, and marks the honeypot field with 0xFFFF ("merged").
[[nodiscard]] LogFile merge_logs(std::span<const LogFile> logs);

/// merge_logs with a skew-correction pass. Per honeypot, the observations
/// define a piecewise-linear local→true clock map (anchored on the monotone
/// envelope of the local readings, so a backwards NTP step between two
/// sightings degrades to a flagged flat segment instead of poisoning the
/// fit). Records are rewritten through that map — honeypots with fewer than
/// two sightings fall back to a constant offset (one sighting) or identity
/// (none) — then ordered by (corrected timestamp, honeypot). Within a
/// honeypot, append order (the chunk (epoch, seq) order) is authoritative
/// and is preserved no matter what the local clock claimed. With no
/// observations and monotone inputs the result is bit-identical to
/// merge_logs. `stats`, when non-null, receives the full ledger.
[[nodiscard]] LogFile merge_logs_skew(std::span<const LogFile> logs,
                                      std::span<const ClockObservation> observations,
                                      TimeIntegrityStats* stats = nullptr);

}  // namespace edhp::logbook
