#pragma once
// Move-only callable with a large inline buffer, built for the event kernel.
//
// std::function's small-buffer optimization only applies to targets that are
// both tiny (two words on libstdc++) and trivially copyable, so almost every
// simulation closure — anything capturing a shared_ptr or more than two
// words — costs one heap allocation per scheduled event. InlineAction stores
// any nothrow-movable callable up to kInlineSize bytes in place, falling
// back to the heap only for outsized targets, which removes the allocator
// from the schedule/execute hot path entirely.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>

namespace edhp::sim {

class InlineAction {
 public:
  /// Closures up to this size (and max_align_t alignment) are stored inline.
  /// 48 bytes covers six captured words — enough for every closure the
  /// simulator schedules on its hot paths.
  static constexpr std::size_t kInlineSize = 48;

  InlineAction() noexcept = default;
  InlineAction(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, InlineAction> &&
             std::is_invocable_r_v<void, std::remove_cvref_t<F>&>)
  InlineAction(F&& f) {  // NOLINT(google-explicit-constructor)
    using D = std::remove_cvref_t<F>;
    if constexpr (kFitsInline<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(f)));
      ops_ = &kHeapOps<D>;
    }
  }

  InlineAction(InlineAction&& other) noexcept { move_from(other); }
  InlineAction& operator=(InlineAction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  InlineAction& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  InlineAction(const InlineAction&) = delete;
  InlineAction& operator=(const InlineAction&) = delete;

  ~InlineAction() { reset(); }

  [[nodiscard]] explicit operator bool() const noexcept {
    return ops_ != nullptr;
  }

  /// Invoke the stored callable. Precondition: non-empty.
  void operator()() { ops_->invoke(storage_); }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    void (*relocate)(void* dst, void* src) noexcept;  // move + destroy src
    void (*destroy)(void*) noexcept;
  };

  template <typename D>
  static constexpr bool kFitsInline =
      sizeof(D) <= kInlineSize && alignof(D) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<D>;

  template <typename D>
  static constexpr Ops kInlineOps{
      [](void* s) { (*std::launder(static_cast<D*>(s)))(); },
      [](void* dst, void* src) noexcept {
        D* from = std::launder(static_cast<D*>(src));
        ::new (dst) D(std::move(*from));
        from->~D();
      },
      [](void* s) noexcept { std::launder(static_cast<D*>(s))->~D(); },
  };

  template <typename D>
  static constexpr Ops kHeapOps{
      [](void* s) { (**std::launder(static_cast<D**>(s)))(); },
      [](void* dst, void* src) noexcept {
        ::new (dst) D*(*std::launder(static_cast<D**>(src)));
      },
      [](void* s) noexcept { delete *std::launder(static_cast<D**>(s)); },
  };

  void move_from(InlineAction& other) noexcept {
    if (other.ops_ != nullptr) {
      other.ops_->relocate(storage_, other.storage_);
      ops_ = other.ops_;
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) std::byte storage_[kInlineSize]{};
  const Ops* ops_ = nullptr;
};

}  // namespace edhp::sim
