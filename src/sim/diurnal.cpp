#include "sim/diurnal.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

namespace edhp::sim {

DiurnalProfile::DiurnalProfile(std::vector<Region> regions, DiurnalShape shape)
    : regions_(std::move(regions)), shape_(shape) {
  if (regions_.empty()) {
    regions_.push_back(Region{0.0, 1.0});
  }
  double total_weight = 0.0;
  for (const auto& r : regions_) {
    if (r.weight < 0) {
      throw std::invalid_argument("DiurnalProfile: negative region weight");
    }
    total_weight += r.weight;
  }
  if (total_weight <= 0) {
    throw std::invalid_argument("DiurnalProfile: zero total weight");
  }
  for (auto& r : regions_) {
    r.weight /= total_weight;
  }

  // Normalise so the weekday average over 24 h is 1.
  double sum = 0.0;
  constexpr int kSamples = 24 * 12;
  for (int i = 0; i < kSamples; ++i) {
    const double t = (24.0 * i) / kSamples;
    double f = 0.0;
    for (const auto& r : regions_) {
      f += r.weight * region_factor(std::fmod(t + r.tz_offset_hours + 24.0, 24.0));
    }
    sum += f;
  }
  normalization_ = kSamples / sum;
}

DiurnalProfile DiurnalProfile::european_2008() {
  return DiurnalProfile({
      Region{0.0, 0.58},   // Western/Central Europe (CET)
      Region{-1.0, 0.22},  // Iberia, UK, Morocco/Algeria
      Region{1.0, 0.12},   // Eastern Europe
      Region{-6.0, 0.05},  // Americas remainder
      Region{7.0, 0.03},   // Asia remainder
  });
}

DiurnalProfile DiurnalProfile::flat() {
  DiurnalProfile p({Region{0.0, 1.0}});
  p.flat_ = true;
  return p;
}

double DiurnalProfile::region_factor(double local_hour) const {
  // Smooth day bump: trough + (1 - trough) * bump(local_hour), where the
  // bump is a wrapped cosine-shaped window centred on peak_hour.
  double d = std::fabs(local_hour - shape_.peak_hour);
  d = std::min(d, 24.0 - d);  // circular distance in hours
  const double x = d / shape_.width_hours;
  const double bump = x >= 1.6 ? 0.0 : std::exp(-x * x * 1.8);
  return shape_.trough + (1.0 - shape_.trough) * bump;
}

double DiurnalProfile::factor(Time t) const {
  if (flat_) return 1.0;
  double f = 0.0;
  for (const auto& r : regions_) {
    f += r.weight * region_factor(hour_of_day(t, r.tz_offset_hours));
  }
  f *= normalization_;
  const auto dow = day_of_week(t);
  if (dow >= 5) {
    f *= shape_.weekend_boost;
  }
  return f;
}

}  // namespace edhp::sim
