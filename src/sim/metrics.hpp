#pragma once
// Lightweight metric recorders used by servers, honeypots and scenarios.

#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.hpp"

namespace edhp::sim {

/// Counts events into fixed-width time buckets (e.g. one per hour). Buckets
/// are created on demand; reading an untouched bucket yields 0.
class BucketSeries {
 public:
  explicit BucketSeries(Duration bucket_width);

  void add(Time t, std::uint64_t count = 1);

  [[nodiscard]] Duration bucket_width() const noexcept { return width_; }
  [[nodiscard]] std::size_t num_buckets() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t at(std::size_t bucket) const;
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] const std::vector<std::uint64_t>& counts() const noexcept {
    return counts_;
  }

 private:
  Duration width_;
  std::uint64_t total_ = 0;
  std::vector<std::uint64_t> counts_;
};

/// Simple named counter bundle for coarse run statistics.
class CounterSet {
 public:
  void add(const std::string& name, std::uint64_t n = 1);
  [[nodiscard]] std::uint64_t get(const std::string& name) const;
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>> sorted() const;

 private:
  std::vector<std::pair<std::string, std::uint64_t>> counters_;
};

}  // namespace edhp::sim
