#include "sim/metrics.hpp"

#include <algorithm>
#include <stdexcept>

namespace edhp::sim {

BucketSeries::BucketSeries(Duration bucket_width) : width_(bucket_width) {
  if (bucket_width <= 0) {
    throw std::invalid_argument("BucketSeries: bucket width must be > 0");
  }
}

void BucketSeries::add(Time t, std::uint64_t count) {
  if (t < 0) {
    throw std::invalid_argument("BucketSeries::add: negative time");
  }
  const auto bucket = static_cast<std::size_t>(t / width_);
  if (bucket >= counts_.size()) {
    counts_.resize(bucket + 1, 0);
  }
  counts_[bucket] += count;
  total_ += count;
}

std::uint64_t BucketSeries::at(std::size_t bucket) const {
  return bucket < counts_.size() ? counts_[bucket] : 0;
}

void CounterSet::add(const std::string& name, std::uint64_t n) {
  for (auto& [key, value] : counters_) {
    if (key == name) {
      value += n;
      return;
    }
  }
  counters_.emplace_back(name, n);
}

std::uint64_t CounterSet::get(const std::string& name) const {
  for (const auto& [key, value] : counters_) {
    if (key == name) return value;
  }
  return 0;
}

std::vector<std::pair<std::string, std::uint64_t>> CounterSet::sorted() const {
  auto out = counters_;
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace edhp::sim
