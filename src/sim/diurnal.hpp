#pragma once
// Diurnal (day/night) activity profiles.
//
// The paper's Fig 4 shows a strong day-night oscillation in HELLO arrivals
// whose phase follows European / North-African daily life. We model peer
// activity as a mixture of regions, each with a timezone offset and weight;
// each region's activity over local hour-of-day is a smooth day-shaped curve
// with a configurable trough-to-peak ratio, plus an optional weekend boost.

#include <vector>

#include "common/clock.hpp"

namespace edhp::sim {

/// One region contributing to the activity mixture.
struct Region {
  double tz_offset_hours;  ///< offset from the reference timezone (CET)
  double weight;           ///< relative share of the peer population
};

/// Parameters of the per-region day curve.
struct DiurnalShape {
  double trough = 0.12;      ///< activity multiplier at the quietest hour
  double peak_hour = 15.0;   ///< local hour of maximal activity
  double width_hours = 6.5;  ///< spread of the active period
  double weekend_boost = 1.12;  ///< multiplier on Saturdays/Sundays
};

/// Activity multiplier as a function of simulated time, normalised so that
/// its average over 24 h (weekdays) is ~1. Used to modulate Poisson arrival
/// rates and peer session starts.
class DiurnalProfile {
 public:
  /// Mixture profile; an empty region list means a single region at the
  /// reference timezone.
  explicit DiurnalProfile(std::vector<Region> regions = {},
                          DiurnalShape shape = {});

  /// The paper's population: mostly Western/Central Europe plus North
  /// Africa, with a small worldwide remainder.
  [[nodiscard]] static DiurnalProfile european_2008();

  /// Flat profile (factor 1 everywhere) for tests and ablations.
  [[nodiscard]] static DiurnalProfile flat();

  /// Activity multiplier at simulated time t. Always > 0.
  [[nodiscard]] double factor(Time t) const;

  [[nodiscard]] const std::vector<Region>& regions() const noexcept {
    return regions_;
  }

 private:
  [[nodiscard]] double region_factor(double local_hour) const;

  std::vector<Region> regions_;
  DiurnalShape shape_;
  double normalization_ = 1.0;
  bool flat_ = false;
};

}  // namespace edhp::sim
