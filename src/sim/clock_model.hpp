#pragma once
// Per-node virtual clocks: deterministic local-time views of true sim time.
//
// Every measurement in the paper rests on merging logs stamped by 24
// machines whose wall clocks drift, step (NTP corrections), and sometimes
// freeze outright. A ClockModel maps the simulation's one true timeline to
// a node's *local* reading via an anchored affine segment: local time
// advances at (1 + drift) seconds per true second from the last anchor,
// plus discrete steps. Faults re-anchor the model; between faults the map
// is a straight line, so the whole local timeline is piecewise linear —
// exactly the shape the skew-tolerant merge reconstructs on the other end.
//
// Determinism contract: a freshly constructed ClockModel is the *identity*
// map, bit-exact — local(t) returns t itself, not the result of arithmetic
// that happens to equal t. Nodes that no fault ever touches therefore
// stamp identical doubles with or without the clock layer compiled in, and
// the chaos-off golden fingerprints cannot move. Mutators consume no RNG
// and schedule no events; driving them is the fault injector's job.

#include "common/clock.hpp"

namespace edhp::sim {

class ClockModel {
 public:
  /// The node's local reading of true instant `now`.
  [[nodiscard]] Time local(Time now) const noexcept {
    if (identity_) return now;  // bit-exact until the first fault
    if (frozen_) return local_anchor_;
    return local_anchor_ + (now - anchor_) * (1.0 + drift_);
  }

  /// True if no mutator has ever run: local(t) == t bit-exactly.
  [[nodiscard]] bool identity() const noexcept { return identity_; }
  /// Current fractional drift rate (e.g. 200e-6 for +200 ppm).
  [[nodiscard]] double drift() const noexcept { return drift_; }
  [[nodiscard]] bool frozen() const noexcept { return frozen_; }

  /// Change the drift rate at true instant `now`. The local value is
  /// continuous across the change: past skew stays baked into the anchor,
  /// as a real oscillator's accumulated error would.
  void set_drift(Time now, double drift) {
    rebase(now);
    drift_ = drift;
  }

  /// Apply a discrete step of `delta` local seconds at true instant `now`
  /// (an NTP-style correction). Negative deltas make local time run
  /// backwards — the merge layer must detect and repair that.
  void step(Time now, Duration delta) {
    rebase(now);
    local_anchor_ += delta;
  }

  /// Halt the local clock at its current reading (hung RTC, suspended VM).
  void freeze(Time now) {
    rebase(now);
    frozen_ = true;
  }

  /// Resume ticking from the frozen reading; the pause becomes a permanent
  /// negative offset relative to true time.
  void thaw(Time now) {
    if (!frozen_) return;
    anchor_ = now;
    frozen_ = false;
  }

 private:
  // Re-anchor the affine segment at `now` so a mutator changes the future
  // without rewriting the past. Any mutation ends the identity regime.
  void rebase(Time now) {
    local_anchor_ = local(now);
    anchor_ = now;
    identity_ = false;
  }

  Time local_anchor_ = 0;  ///< local reading at the anchor instant
  Time anchor_ = 0;        ///< true time of the last re-anchoring
  double drift_ = 0;       ///< fractional rate error (ppm * 1e-6)
  bool frozen_ = false;
  bool identity_ = true;
};

}  // namespace edhp::sim
