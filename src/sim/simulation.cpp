#include "sim/simulation.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace edhp::sim {

Simulation::Simulation(std::uint64_t seed) : rng_(seed) {}

void Simulation::EventHeap::push(Entry e) {
  // Hole-shifting insert: parents slide down into the hole, the new entry is
  // written once at its final position (one move per level, not a swap).
  std::size_t i = heap_.size();
  heap_.push_back(e);
  while (i > 0) {
    const std::size_t parent = (i - 1) / kArity;
    if (!before(e, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

void Simulation::EventHeap::pop() {
  const Entry last = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  if (n == 0) return;
  std::size_t i = 0;
  for (;;) {
    const std::size_t first = i * kArity + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t cap = std::min(first + kArity, n);
    for (std::size_t c = first + 1; c < cap; ++c) {
      if (before(heap_[c], heap_[best])) best = c;
    }
    if (!before(heap_[best], last)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = last;
}

std::uint32_t Simulation::acquire_slot(Action action) {
  ++slot_acquisitions_;
  std::uint32_t index;
  if (free_head_ != kNoFreeSlot) {
    index = free_head_;
    free_head_ = slots_[index].next_free;
  } else {
    ++slot_allocations_;
    index = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& slot = slots_[index];
  slot.action = std::move(action);
  slot.pending = true;
  return index;
}

void Simulation::retire_slot(std::uint32_t index) noexcept {
  Slot& slot = slots_[index];
  slot.pending = false;
  ++slot.generation;  // all outstanding handles to this slot go dead
  slot.action = nullptr;
}

void Simulation::free_slot(std::uint32_t index) noexcept {
  slots_[index].next_free = free_head_;
  free_head_ = index;
}

EventHandle Simulation::schedule_at(Time t, Action action) {
  if (t < now_) {
    throw std::invalid_argument("Simulation::schedule_at: time in the past");
  }
  const std::uint32_t slot = acquire_slot(std::move(action));
  queue_.push(Entry{t, next_seq_++, slot});
  peak_heap_ = std::max(peak_heap_, queue_.size());
  ++live_;
  return EventHandle(slot, slots_[slot].generation);
}

EventHandle Simulation::schedule_in(Duration delay, Action action) {
  if (delay < 0) {
    throw std::invalid_argument("Simulation::schedule_in: negative delay");
  }
  return schedule_at(now_ + delay, std::move(action));
}

bool Simulation::cancel(EventHandle h) {
  if (!h.valid() || h.slot_ >= slots_.size()) {
    if (h.valid()) ++stale_cancels_;
    return false;
  }
  Slot& slot = slots_[h.slot_];
  if (slot.generation != h.generation_ || !slot.pending) {
    ++stale_cancels_;
    return false;
  }
  // The heap entry stays behind as a tombstone and returns the slot to the
  // free list when popped; the closure is released right here.
  retire_slot(h.slot_);
  ++cancelled_;
  --live_;
  return true;
}

bool Simulation::pop_next(Time end, Entry& out) {
  while (!queue_.empty()) {
    const Entry& top = queue_.top();
    if (top.t > end) return false;
    const Entry e = top;
    queue_.pop();
    if (!slots_[e.slot].pending) {
      free_slot(e.slot);  // tombstone of a cancelled event
      continue;
    }
    out = e;
    return true;
  }
  return false;
}

std::uint64_t Simulation::run_until(Time end) {
  stopped_ = false;
  std::uint64_t n = 0;
  Entry e;
  while (!stopped_ && pop_next(end, e)) {
    Action action = std::move(slots_[e.slot].action);
    retire_slot(e.slot);
    free_slot(e.slot);
    --live_;
    now_ = e.t;
    action();
    ++n;
    ++executed_;
  }
  if (!stopped_) {
    now_ = std::max(now_, end);
  }
  return n;
}

std::uint64_t Simulation::run() {
  stopped_ = false;
  std::uint64_t n = 0;
  Entry e;
  while (!stopped_ &&
         pop_next(std::numeric_limits<Time>::infinity(), e)) {
    Action action = std::move(slots_[e.slot].action);
    retire_slot(e.slot);
    free_slot(e.slot);
    --live_;
    now_ = e.t;
    action();
    ++n;
    ++executed_;
  }
  return n;
}

EngineStats Simulation::stats() const noexcept {
  EngineStats s;
  s.events_executed = executed_;
  s.events_cancelled = cancelled_;
  s.stale_cancels = stale_cancels_;
  s.slot_acquisitions = slot_acquisitions_;
  s.slot_allocations = slot_allocations_;
  s.peak_heap = peak_heap_;
  s.live_events = live_;
  s.slab_capacity = slots_.size();
  return s;
}

PeriodicTimer::PeriodicTimer(Simulation& simulation, Duration period,
                             Simulation::Action tick)
    : sim_(simulation), period_(period), tick_(std::move(tick)) {
  if (period <= 0) {
    throw std::invalid_argument("PeriodicTimer: period must be > 0");
  }
}

PeriodicTimer::~PeriodicTimer() { stop(); }

void PeriodicTimer::start() {
  if (running_) return;
  running_ = true;
  arm();
}

void PeriodicTimer::stop() {
  if (!running_) return;
  running_ = false;
  sim_.cancel(pending_);
  pending_ = EventHandle{};
}

void PeriodicTimer::arm() {
  pending_ = sim_.schedule_in(period_, [this] {
    if (!running_) return;
    tick_();
    if (running_) arm();
  });
}

}  // namespace edhp::sim
