#include "sim/simulation.hpp"

#include <algorithm>
#include <stdexcept>

namespace edhp::sim {

Simulation::Simulation(std::uint64_t seed) : rng_(seed) {}

EventHandle Simulation::schedule_at(Time t, Action action) {
  if (t < now_) {
    throw std::invalid_argument("Simulation::schedule_at: time in the past");
  }
  const std::uint64_t seq = next_seq_++;
  queue_.push(Entry{t, seq, std::move(action)});
  ++live_;
  return EventHandle(seq);
}

EventHandle Simulation::schedule_in(Duration delay, Action action) {
  if (delay < 0) {
    throw std::invalid_argument("Simulation::schedule_in: negative delay");
  }
  return schedule_at(now_ + delay, std::move(action));
}

void Simulation::cancel(EventHandle h) {
  if (!h.valid()) return;
  cancelled_.insert(h.id_);
}

bool Simulation::is_cancelled(std::uint64_t seq) {
  return cancelled_.erase(seq) > 0;
}

std::uint64_t Simulation::run_until(Time end) {
  stopped_ = false;
  std::uint64_t n = 0;
  while (!queue_.empty() && !stopped_) {
    const Entry& top = queue_.top();
    if (top.t > end) break;
    Entry e{top.t, top.seq, std::move(const_cast<Entry&>(top).action)};
    queue_.pop();
    --live_;
    if (is_cancelled(e.seq)) continue;
    now_ = e.t;
    e.action();
    ++n;
    ++executed_;
  }
  if (queue_.empty()) {
    cancelled_.clear();
    now_ = std::max(now_, end);
  }
  return n;
}

std::uint64_t Simulation::run() {
  stopped_ = false;
  std::uint64_t n = 0;
  while (!queue_.empty() && !stopped_) {
    Entry e{queue_.top().t, queue_.top().seq,
            std::move(const_cast<Entry&>(queue_.top()).action)};
    queue_.pop();
    --live_;
    if (is_cancelled(e.seq)) continue;
    now_ = e.t;
    e.action();
    ++n;
    ++executed_;
  }
  if (queue_.empty()) cancelled_.clear();
  return n;
}

PeriodicTimer::PeriodicTimer(Simulation& simulation, Duration period,
                             Simulation::Action tick)
    : sim_(simulation), period_(period), tick_(std::move(tick)) {
  if (period <= 0) {
    throw std::invalid_argument("PeriodicTimer: period must be > 0");
  }
}

PeriodicTimer::~PeriodicTimer() { stop(); }

void PeriodicTimer::start() {
  if (running_) return;
  running_ = true;
  arm();
}

void PeriodicTimer::stop() {
  if (!running_) return;
  running_ = false;
  sim_.cancel(pending_);
  pending_ = EventHandle{};
}

void PeriodicTimer::arm() {
  pending_ = sim_.schedule_in(period_, [this] {
    if (!running_) return;
    tick_();
    if (running_) arm();
  });
}

}  // namespace edhp::sim
