#pragma once
// Discrete-event simulation kernel.
//
// A Simulation owns a clock and an event queue. Events are closures
// scheduled at absolute or relative times; ties are broken by scheduling
// order (FIFO), which makes runs deterministic. Cancellation is lazy: a
// cancelled event stays in the heap but is skipped when popped.

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/clock.hpp"
#include "common/rng.hpp"

namespace edhp::sim {

/// Handle to a scheduled event, usable to cancel it.
class EventHandle {
 public:
  EventHandle() = default;

  [[nodiscard]] bool valid() const noexcept { return id_ != 0; }

 private:
  friend class Simulation;
  explicit EventHandle(std::uint64_t id) : id_(id) {}
  std::uint64_t id_ = 0;
};

/// Single-threaded discrete-event simulator.
class Simulation {
 public:
  using Action = std::function<void()>;

  explicit Simulation(std::uint64_t seed = 1);

  /// Current simulated time in seconds since measurement start.
  [[nodiscard]] Time now() const noexcept { return now_; }

  /// Root RNG for the run; components should split() sub-streams from it.
  [[nodiscard]] Rng& rng() noexcept { return rng_; }

  /// Schedule `action` at absolute time `t` (>= now).
  EventHandle schedule_at(Time t, Action action);
  /// Schedule `action` after `delay` seconds (>= 0).
  EventHandle schedule_in(Duration delay, Action action);

  /// Cancel a pending event; no-op if it already ran or was cancelled.
  void cancel(EventHandle h);

  /// Run until the queue is empty or the clock passes `end`. Events exactly
  /// at `end` are executed. Returns the number of events executed.
  std::uint64_t run_until(Time end);

  /// Run until the queue is empty.
  std::uint64_t run();

  /// Request that run()/run_until() return after the current event.
  void stop() noexcept { stopped_ = true; }

  [[nodiscard]] std::size_t pending() const noexcept { return live_; }
  [[nodiscard]] std::uint64_t executed() const noexcept { return executed_; }

 private:
  struct Entry {
    Time t;
    std::uint64_t seq;  // FIFO tie-break and cancellation id
    Action action;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      return a.t > b.t || (a.t == b.t && a.seq > b.seq);
    }
  };

  Time now_ = 0.0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  std::size_t live_ = 0;
  bool stopped_ = false;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  std::unordered_set<std::uint64_t> cancelled_;
  Rng rng_;

  [[nodiscard]] bool is_cancelled(std::uint64_t seq);
};

/// Repeating timer built on Simulation: invokes `tick` every `period`
/// seconds (optionally jittered) until stopped or its owner destroys it.
class PeriodicTimer {
 public:
  PeriodicTimer(Simulation& simulation, Duration period, Simulation::Action tick);
  ~PeriodicTimer();

  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  void start();
  void stop();
  [[nodiscard]] bool running() const noexcept { return running_; }

 private:
  void arm();

  Simulation& sim_;
  Duration period_;
  Simulation::Action tick_;
  EventHandle pending_{};
  bool running_ = false;
};

}  // namespace edhp::sim
