#pragma once
// Discrete-event simulation kernel.
//
// A Simulation owns a clock and an event queue. Events are closures
// scheduled at absolute or relative times; ties are broken by scheduling
// order (FIFO), which makes runs deterministic.
//
// Storage is a recycling slot arena ("slab"): every scheduled action lives
// in a slot identified by {index, generation}. The 4-ary heap itself holds
// only {time, seq, slot} PODs, so sifting moves 24-byte entries instead of
// closure objects. An EventHandle is a {slot, generation} pair:
// cancel() compares generations and retires the slot in O(1) — no auxiliary
// cancellation set, and cancelling an already-executed (or already-
// cancelled) handle is a constant-time no-op that retains nothing. Slots
// are recycled through an intrusive free list once their heap entry pops,
// so steady-state runs stop allocating entirely.

#include <cstdint>
#include <vector>

#include "common/clock.hpp"
#include "common/rng.hpp"
#include "sim/inline_action.hpp"

namespace edhp::sim {

/// Handle to a scheduled event, usable to cancel it. Handles are
/// generation-checked: a handle to an event that already ran (or was
/// cancelled) is dead and cancelling it is a safe no-op, even after its
/// slot has been recycled for a newer event.
class EventHandle {
 public:
  EventHandle() = default;

  [[nodiscard]] bool valid() const noexcept { return slot_ != kInvalidSlot; }

 private:
  friend class Simulation;
  static constexpr std::uint32_t kInvalidSlot = 0xFFFFFFFFu;
  EventHandle(std::uint32_t slot, std::uint32_t generation)
      : slot_(slot), generation_(generation) {}
  std::uint32_t slot_ = kInvalidSlot;
  std::uint32_t generation_ = 0;
};

/// Snapshot of the kernel's run-level statistics (see Simulation::stats()).
struct EngineStats {
  std::uint64_t events_executed = 0;
  std::uint64_t events_cancelled = 0;  ///< cancels that killed a live event
  std::uint64_t stale_cancels = 0;     ///< no-op cancels of dead handles
  std::uint64_t slot_acquisitions = 0; ///< total events scheduled
  std::uint64_t slot_allocations = 0;  ///< acquisitions that grew the slab
  std::size_t peak_heap = 0;           ///< max simultaneous heap entries
  std::size_t live_events = 0;         ///< currently pending (not cancelled)
  std::size_t slab_capacity = 0;       ///< slots ever allocated

  /// Fraction of schedules served from recycled slots; approaches 1 in
  /// steady state, 0 when every event needed a fresh allocation.
  [[nodiscard]] double recycle_rate() const noexcept {
    return slot_acquisitions == 0
               ? 0.0
               : 1.0 - static_cast<double>(slot_allocations) /
                           static_cast<double>(slot_acquisitions);
  }
};

/// Single-threaded discrete-event simulator.
class Simulation {
 public:
  /// Scheduled closures live in InlineAction's in-place buffer, so the
  /// schedule/execute cycle allocates nothing in steady state.
  using Action = InlineAction;

  explicit Simulation(std::uint64_t seed = 1);

  /// Current simulated time in seconds since measurement start.
  [[nodiscard]] Time now() const noexcept { return now_; }

  /// Root RNG for the run; components should split() sub-streams from it.
  [[nodiscard]] Rng& rng() noexcept { return rng_; }

  /// Schedule `action` at absolute time `t` (>= now).
  EventHandle schedule_at(Time t, Action action);
  /// Schedule `action` after `delay` seconds (>= 0).
  EventHandle schedule_in(Duration delay, Action action);

  /// Cancel a pending event in O(1). Returns true when a live event was
  /// cancelled; cancelling an executed/cancelled/default handle is a no-op
  /// returning false.
  bool cancel(EventHandle h);

  /// Run until the queue is empty or the clock passes `end`. Events exactly
  /// at `end` are executed. Unless stop() interrupts the run, the clock is
  /// advanced to `end` even when later events remain pending, so subsequent
  /// relative scheduling is anchored at the boundary. Returns the number of
  /// events executed.
  std::uint64_t run_until(Time end);

  /// Run until the queue is empty.
  std::uint64_t run();

  /// Request that run()/run_until() return after the current event.
  void stop() noexcept { stopped_ = true; }

  /// Number of live (scheduled, not cancelled, not executed) events.
  [[nodiscard]] std::size_t pending() const noexcept { return live_; }
  [[nodiscard]] std::uint64_t executed() const noexcept { return executed_; }

  /// Run-level kernel statistics snapshot.
  [[nodiscard]] EngineStats stats() const noexcept;

 private:
  static constexpr std::uint32_t kNoFreeSlot = 0xFFFFFFFFu;

  /// Arena slot: owns the action while the event is pending. `generation`
  /// advances every time the slot is retired, invalidating old handles.
  struct Slot {
    Action action;
    std::uint32_t generation = 0;
    std::uint32_t next_free = kNoFreeSlot;
    bool pending = false;
  };
  /// Heap entry: trivially copyable, the heap never touches actions.
  struct Entry {
    Time t;
    std::uint64_t seq;   // FIFO tie-break
    std::uint32_t slot;  // arena index
  };

  /// 4-ary min-heap of Entry ordered by (t, seq). The strict total order
  /// means any correct heap pops the same sequence, so swapping the binary
  /// std::priority_queue for a shallower, cache-friendlier d-ary heap is
  /// invisible to determinism. Sift loops move 24-byte PODs only.
  class EventHeap {
   public:
    [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
    [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }
    [[nodiscard]] const Entry& top() const noexcept { return heap_.front(); }
    void push(Entry e);
    void pop();

   private:
    static constexpr std::size_t kArity = 4;
    static bool before(const Entry& a, const Entry& b) noexcept {
      return a.t < b.t || (a.t == b.t && a.seq < b.seq);
    }
    std::vector<Entry> heap_;
  };

  [[nodiscard]] std::uint32_t acquire_slot(Action action);
  void retire_slot(std::uint32_t index) noexcept;
  void free_slot(std::uint32_t index) noexcept;
  /// Pop the next live entry into `out`; false when queue is drained or the
  /// next live event is after `end`.
  bool pop_next(Time end, Entry& out);

  Time now_ = 0.0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  std::uint64_t cancelled_ = 0;
  std::uint64_t stale_cancels_ = 0;
  std::uint64_t slot_acquisitions_ = 0;
  std::uint64_t slot_allocations_ = 0;
  std::size_t peak_heap_ = 0;
  std::size_t live_ = 0;
  bool stopped_ = false;
  EventHeap queue_;
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNoFreeSlot;
  Rng rng_;
};

/// Repeating timer built on Simulation: invokes `tick` every `period`
/// seconds until stopped or its owner destroys it. start() after stop()
/// re-arms from the current time.
class PeriodicTimer {
 public:
  PeriodicTimer(Simulation& simulation, Duration period, Simulation::Action tick);
  ~PeriodicTimer();

  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  void start();
  void stop();
  [[nodiscard]] bool running() const noexcept { return running_; }

 private:
  void arm();

  Simulation& sim_;
  Duration period_;
  Simulation::Action tick_;
  EventHandle pending_{};
  bool running_ = false;
};

}  // namespace edhp::sim
