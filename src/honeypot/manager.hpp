#pragma once
// The measurement manager (Section III.A of the paper).
//
// The manager launches honeypots, assigns each to a server, tells them which
// files to advertise, periodically checks their status (relaunching dead
// ones), and finally gathers their logs, merges them and runs stage-2
// anonymisation. In the field the control channel is out-of-band (SSH to
// PlanetLab hosts); here it is direct method calls on the honeypot objects,
// which preserves the observable eDonkey-side behaviour exactly.

#include <memory>
#include <string>
#include <vector>

#include "honeypot/honeypot.hpp"
#include "logbook/merge.hpp"

namespace edhp::honeypot {

struct ManagerConfig {
  /// Status-poll period (the manager "regularly checks the status of each
  /// honeypot").
  Duration status_poll = minutes(10);
  /// Relaunch dead honeypots automatically.
  bool auto_relaunch = true;
  /// Measurement-wide stage-1 anonymisation salt pushed to every honeypot.
  std::string salt = "edhp-measurement-salt";
};

/// Owns and coordinates a fleet of honeypots.
class Manager {
 public:
  Manager(net::Network& network, ManagerConfig config = {});
  ~Manager();

  Manager(const Manager&) = delete;
  Manager& operator=(const Manager&) = delete;

  /// Launch a honeypot on `host` and point it at `server`. The manager
  /// injects its measurement salt into the honeypot configuration.
  /// Returns the fleet index.
  std::size_t launch(HoneypotConfig config, net::NodeId host,
                     const ServerRef& server);

  /// One probed candidate server, with its self-reported load.
  struct ServerSurveyEntry {
    ServerRef server;
    std::uint32_t users = 0;
    std::uint32_t files = 0;
  };
  using SurveyCallback = std::function<void(std::vector<ServerSurveyEntry>)>;

  /// Probe candidate servers over UDP from `probe_node` and deliver the
  /// ones that answered within `timeout`, busiest first — the paper's
  /// manager guides server choice "by their resources and number of users".
  void survey_servers(std::vector<ServerRef> candidates, net::NodeId probe_node,
                      Duration timeout, SurveyCallback done);

  /// Redirect honeypot `index` toward another server (the paper's manager
  /// "re-launch[es] dead honeypots or redirect[s] them toward other
  /// servers"). The query log survives; the advertised list is re-offered
  /// to the new server.
  void reassign(std::size_t index, const ServerRef& server);

  /// Order honeypot `index` to advertise `files`.
  void advertise(std::size_t index, std::vector<AdvertisedFile> files);
  /// Order every honeypot to advertise the same list (the paper's
  /// distributed measurement advertised identical files everywhere).
  void advertise_all(std::vector<AdvertisedFile> files);

  /// Begin the status-polling loop.
  void start();
  /// Stop polling and disconnect every honeypot.
  void stop();

  [[nodiscard]] std::size_t fleet_size() const noexcept { return fleet_.size(); }
  [[nodiscard]] Honeypot& honeypot(std::size_t index);
  [[nodiscard]] const Honeypot& honeypot(std::size_t index) const;
  [[nodiscard]] std::uint64_t relaunches() const noexcept { return relaunches_; }

  /// Snapshot every honeypot's current log (without draining).
  [[nodiscard]] std::vector<logbook::LogFile> collect_logs() const;

  /// Write every honeypot's current (stage-1) log to
  /// `<directory>/hp-<id>.edhplog` in the binary format; returns the paths.
  /// This is the periodic gathering the paper's manager performs.
  std::vector<std::string> persist_logs(const std::string& directory) const;

  /// Merge all logs and apply stage-2 anonymisation: the published dataset.
  /// Returns the merged log; `distinct_peers_out` (optional) receives the
  /// number of distinct peers assigned by renumbering.
  [[nodiscard]] logbook::LogFile merged_anonymized(
      std::uint64_t* distinct_peers_out = nullptr) const;

  /// Union of observed (harvested) files across the fleet with their total
  /// size in bytes — Table I's distinct-files and space-used statistics.
  struct ObservedFiles {
    std::uint64_t distinct = 0;
    std::uint64_t bytes = 0;
  };
  [[nodiscard]] ObservedFiles observed_files() const;

  /// Publishable catalog of observed file names: every name harvested by
  /// the fleet, passed through the word-frequency anonymiser (words rarer
  /// than `threshold` become integer tokens).
  [[nodiscard]] std::vector<std::string> export_observed_names(
      std::uint64_t threshold) const;

 private:
  struct Slot {
    std::unique_ptr<Honeypot> honeypot;
    ServerRef server;
    std::vector<AdvertisedFile> files;
  };

  void poll();

  net::Network& net_;
  ManagerConfig config_;
  std::vector<Slot> fleet_;
  std::unique_ptr<sim::PeriodicTimer> poll_timer_;
  std::uint64_t relaunches_ = 0;
};

}  // namespace edhp::honeypot
