#pragma once
// The measurement manager (Section III.A of the paper).
//
// The manager launches honeypots, assigns each to a server, tells them which
// files to advertise, periodically checks their status (relaunching dead
// ones), and finally gathers their logs, merges them and runs stage-2
// anonymisation. In the field the control channel is out-of-band (SSH to
// PlanetLab hosts); here it is direct method calls on the honeypot objects,
// which preserves the observable eDonkey-side behaviour exactly.

#include <memory>
#include <string>
#include <vector>

#include "honeypot/honeypot.hpp"
#include "logbook/merge.hpp"
#include "logbook/spool.hpp"

namespace edhp::honeypot {

struct ManagerConfig {
  /// Status-poll period (the manager "regularly checks the status of each
  /// honeypot").
  Duration status_poll = minutes(10);
  /// Relaunch dead honeypots automatically.
  bool auto_relaunch = true;
  /// Measurement-wide stage-1 anonymisation salt pushed to every honeypot.
  std::string salt = "edhp-measurement-salt";

  // --- Watchdog policy. The defaults reproduce the pre-fault-subsystem
  // --- manager exactly: relaunch on every poll, never escalate.

  /// Backoff between relaunch attempts of the same honeypot while they keep
  /// failing (doubling per consecutive failure, capped). 0 = attempt on
  /// every poll tick — the historical hot-spinning behaviour.
  Duration relaunch_backoff_base = 0;
  Duration relaunch_backoff_cap = hours(4);
  /// After this many consecutive failed relaunches, reassign the honeypot
  /// to a backup server (round-robin over set_backup_servers). 0 = never.
  std::size_t escalate_after = 0;
  /// Escalate a honeypot whose heartbeat is older than this even when its
  /// status looks alive (catches wedged logins and zombie sessions).
  /// 0 = disabled.
  Duration heartbeat_timeout = 0;

  /// Self-reconnect policy injected into every launched honeypot.
  RetryPolicy retry;
  /// Log-spooling policy injected into every launched honeypot; when
  /// enabled the manager wires itself as the chunk sink and acknowledges
  /// chunks after spool.ack_delay.
  logbook::SpoolConfig spool;
  /// Admission-control policy injected into every launched honeypot.
  net::DefenseConfig defense;
};

/// Aggregated fault-recovery accounting (see Manager::recovery_stats()).
struct RecoveryStats {
  std::uint64_t relaunches = 0;        ///< relaunch attempts issued
  std::uint64_t deferred = 0;          ///< polls skipped by relaunch backoff
  std::uint64_t escalations = 0;       ///< reassignments to a backup server
  std::uint64_t heartbeat_escalations = 0;  ///< stale-heartbeat escalations
  std::uint64_t re_advertise_repairs = 0;   ///< ordered-list re-offers
  std::uint64_t honeypot_retries = 0;  ///< fleet self-reconnect attempts
  std::uint64_t chunks_accepted = 0;
  std::uint64_t chunks_duplicate = 0;  ///< deduped at-least-once re-sends
  std::uint64_t records_spooled = 0;
  std::uint64_t records_lost_tail = 0; ///< destroyed before spooling
  double total_downtime = 0;           ///< observed dead time, fleet sum (s)
  /// records kept / records generated (1.0 when nothing was ever lost).
  double retained_fraction = 1.0;
};

/// Owns and coordinates a fleet of honeypots.
class Manager {
 public:
  Manager(net::Network& network, ManagerConfig config = {});
  ~Manager();

  Manager(const Manager&) = delete;
  Manager& operator=(const Manager&) = delete;

  /// Launch a honeypot on `host` and point it at `server`. The manager
  /// injects its measurement salt into the honeypot configuration.
  /// Returns the fleet index.
  std::size_t launch(HoneypotConfig config, net::NodeId host,
                     const ServerRef& server);

  /// One probed candidate server, with its self-reported load.
  struct ServerSurveyEntry {
    ServerRef server;
    std::uint32_t users = 0;
    std::uint32_t files = 0;
  };
  using SurveyCallback = std::function<void(std::vector<ServerSurveyEntry>)>;

  /// Probe candidate servers over UDP from `probe_node` and deliver the
  /// ones that answered within `timeout`, busiest first — the paper's
  /// manager guides server choice "by their resources and number of users".
  void survey_servers(std::vector<ServerRef> candidates, net::NodeId probe_node,
                      Duration timeout, SurveyCallback done);

  /// Redirect honeypot `index` toward another server (the paper's manager
  /// "re-launch[es] dead honeypots or redirect[s] them toward other
  /// servers"). The query log survives; the advertised list is re-offered
  /// to the new server.
  void reassign(std::size_t index, const ServerRef& server);

  /// Standby servers for watchdog escalation, used round-robin when a
  /// honeypot exhausts `escalate_after` consecutive relaunch failures.
  void set_backup_servers(std::vector<ServerRef> backups);

  /// Order honeypot `index` to advertise `files`.
  void advertise(std::size_t index, std::vector<AdvertisedFile> files);
  /// Order every honeypot to advertise the same list (the paper's
  /// distributed measurement advertised identical files everywhere).
  void advertise_all(std::vector<AdvertisedFile> files);

  /// Begin the status-polling loop.
  void start();
  /// Stop polling and disconnect every honeypot.
  void stop();

  [[nodiscard]] std::size_t fleet_size() const noexcept { return fleet_.size(); }
  [[nodiscard]] Honeypot& honeypot(std::size_t index);
  [[nodiscard]] const Honeypot& honeypot(std::size_t index) const;
  [[nodiscard]] std::uint64_t relaunches() const noexcept { return relaunches_; }

  /// Snapshot of fault-recovery accounting across the fleet, including
  /// still-open downtime windows at call time.
  [[nodiscard]] RecoveryStats recovery_stats() const;

  /// Fleet-sum of every honeypot's admission-control decision counters.
  [[nodiscard]] net::DefenseStats defense_stats() const;

  /// The chunk store backing crash-safe spooling (empty unless
  /// ManagerConfig::spool.enabled).
  [[nodiscard]] const logbook::SpoolStore& spool_store() const noexcept {
    return spool_store_;
  }

  /// Snapshot every honeypot's current log (without draining).
  [[nodiscard]] std::vector<logbook::LogFile> collect_logs() const;

  /// Write every honeypot's current (stage-1) log to
  /// `<directory>/hp-<id>.edhplog` in the binary format; returns the paths.
  /// This is the periodic gathering the paper's manager performs.
  std::vector<std::string> persist_logs(const std::string& directory) const;

  /// Merge all logs and apply stage-2 anonymisation: the published dataset.
  /// Returns the merged log; `distinct_peers_out` (optional) receives the
  /// number of distinct peers assigned by renumbering.
  [[nodiscard]] logbook::LogFile merged_anonymized(
      std::uint64_t* distinct_peers_out = nullptr) const;

  /// Union of observed (harvested) files across the fleet with their total
  /// size in bytes — Table I's distinct-files and space-used statistics.
  struct ObservedFiles {
    std::uint64_t distinct = 0;
    std::uint64_t bytes = 0;
  };
  [[nodiscard]] ObservedFiles observed_files() const;

  /// Publishable catalog of observed file names: every name harvested by
  /// the fleet, passed through the word-frequency anonymiser (words rarer
  /// than `threshold` become integer tokens).
  [[nodiscard]] std::vector<std::string> export_observed_names(
      std::uint64_t threshold) const;

 private:
  struct Slot {
    std::unique_ptr<Honeypot> honeypot;
    ServerRef server;
    std::vector<AdvertisedFile> files;
    // Watchdog state.
    std::size_t consecutive_failures = 0;  ///< failed relaunches in a row
    Time next_attempt_at = 0;              ///< relaunch backoff gate
    Time down_since = -1.0;                ///< first poll that saw it dead
  };

  void poll();
  /// Relaunch backoff for the given consecutive-failure count (1-based).
  [[nodiscard]] Duration relaunch_backoff(std::size_t failures) const;
  /// Whether every ordered file is present in the advertised list.
  [[nodiscard]] static bool covers(const std::vector<AdvertisedFile>& advertised,
                                   const std::vector<AdvertisedFile>& ordered);
  /// Re-offer the ordered list plus any extras the honeypot grew itself.
  void repair_advertised(Slot& slot);
  /// Move the slot to the next backup server (or reconnect in place when
  /// no backups are configured).
  void escalate(std::size_t index);

  net::Network& net_;
  ManagerConfig config_;
  std::vector<Slot> fleet_;
  std::vector<ServerRef> backups_;
  std::size_t next_backup_ = 0;
  std::unique_ptr<sim::PeriodicTimer> poll_timer_;
  std::uint64_t relaunches_ = 0;
  logbook::SpoolStore spool_store_;
  RecoveryStats recovery_;  ///< counters accumulated by the watchdog
};

}  // namespace edhp::honeypot
