#pragma once
// The measurement manager (Section III.A of the paper).
//
// The manager launches honeypots, assigns each to a server, tells them which
// files to advertise, periodically checks their status (relaunching dead
// ones), and finally gathers their logs, merges them and runs stage-2
// anonymisation. In the field the control channel is out-of-band (SSH to
// PlanetLab hosts); here it is direct method calls on the honeypot objects,
// which preserves the observable eDonkey-side behaviour exactly.

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "honeypot/honeypot.hpp"
#include "logbook/journal.hpp"
#include "logbook/merge.hpp"
#include "logbook/spool.hpp"

namespace edhp::honeypot {

struct ManagerConfig {
  /// Status-poll period (the manager "regularly checks the status of each
  /// honeypot").
  Duration status_poll = minutes(10);
  /// Relaunch dead honeypots automatically.
  bool auto_relaunch = true;
  /// Measurement-wide stage-1 anonymisation salt pushed to every honeypot.
  std::string salt = "edhp-measurement-salt";

  // --- Watchdog policy. The defaults reproduce the pre-fault-subsystem
  // --- manager exactly: relaunch on every poll, never escalate.

  /// Backoff between relaunch attempts of the same honeypot while they keep
  /// failing (doubling per consecutive failure, capped). 0 = attempt on
  /// every poll tick — the historical hot-spinning behaviour.
  Duration relaunch_backoff_base = 0;
  Duration relaunch_backoff_cap = hours(4);
  /// After this many consecutive failed relaunches, reassign the honeypot
  /// to a backup server (round-robin over set_backup_servers). 0 = never.
  std::size_t escalate_after = 0;
  /// Escalate a honeypot whose heartbeat is older than this even when its
  /// status looks alive (catches wedged logins and zombie sessions).
  /// 0 = disabled.
  Duration heartbeat_timeout = 0;

  /// Self-reconnect policy injected into every launched honeypot.
  RetryPolicy retry;
  /// Log-spooling policy injected into every launched honeypot; when
  /// enabled the manager wires itself as the chunk sink and acknowledges
  /// chunks after spool.ack_delay.
  logbook::SpoolConfig spool;
  /// Credit window for recovery resends: when re-adopting orphans, at most
  /// this many spooled chunks are in flight per honeypot at once, and each
  /// ack releases one more credit. 0 = unlimited (the legacy burst), which
  /// can re-trigger the very overload that crashed the manager.
  std::uint32_t resend_credit = 0;
  /// Admission-control policy injected into every launched honeypot.
  net::DefenseConfig defense;

  /// Harvest clock observations from exchanges the manager already has
  /// (heartbeat polls, freshly-cut spool chunks) and run the skew-corrected
  /// merge. Off by default: the historical pipeline trusts timestamps, and
  /// clock-off campaigns append no extra journal entries.
  bool track_clocks = false;
  /// UDP server-survey retransmit rounds for candidates that have not
  /// answered yet (0 = the historical single-shot survey). Duplicate
  /// replies are deduped by challenge, not double-counted.
  std::size_t survey_retries = 0;
  Duration survey_retry_interval = 5.0;

  // --- Server-health scoring (Byzantine defense). Threshold 0 = disabled:
  // --- probe verdicts are still journaled for audit, but never acted on.

  /// A probe miss adds 1.0 to the reporting server's health score; at this
  /// score the server is quarantined — every slot assigned to it moves to a
  /// backup server — until the cooloff expires. High enough by default that
  /// transient outages (which also miss probes) never trip it.
  double quarantine_threshold = 0;
  /// Score decay applied by each confirmed probe (honest servers that
  /// occasionally race a keep-alive recover instead of accumulating).
  double probe_confirm_decay = 0.25;
  /// How long a quarantined server stays benched before its displaced
  /// honeypots are reassigned back (checked by the poll loop).
  Duration quarantine_cooloff = minutes(30);

  // --- Control-plane durability. Both null by default: the historical
  // --- purely-in-memory manager, byte-identical behaviour.

  /// Write-ahead journal. When set, every control-plane state transition
  /// (launch, reassign, advertise, backups, watchdog actions, chunk acks)
  /// is appended before it takes effect, and crash()/recover() become
  /// available. Shared between manager incarnations: it models the fsync'd
  /// journal file that outlives the process.
  std::shared_ptr<logbook::Journal> journal;
  /// Durable chunk store shared between incarnations. When null (and
  /// spooling is enabled) the manager creates a private one, which still
  /// survives in-place crash()/recover() but not object destruction.
  std::shared_ptr<logbook::SpoolStore> spool_store;
};

/// Aggregated fault-recovery accounting (see Manager::recovery_stats()).
struct RecoveryStats {
  std::uint64_t relaunches = 0;        ///< relaunch attempts issued
  std::uint64_t deferred = 0;          ///< polls skipped by relaunch backoff
  std::uint64_t escalations = 0;       ///< reassignments to a backup server
  std::uint64_t heartbeat_escalations = 0;  ///< stale-heartbeat escalations
  std::uint64_t re_advertise_repairs = 0;   ///< ordered-list re-offers
  std::uint64_t honeypot_retries = 0;  ///< fleet self-reconnect attempts
  std::uint64_t chunks_accepted = 0;
  std::uint64_t chunks_duplicate = 0;  ///< deduped at-least-once re-sends
  std::uint64_t records_spooled = 0;
  std::uint64_t records_lost_tail = 0; ///< destroyed before spooling
  double total_downtime = 0;           ///< observed dead time, fleet sum (s)
  /// records kept / records generated (1.0 when nothing was ever lost).
  double retained_fraction = 1.0;

  // --- Control-plane durability (all zero without a journal/chaos).
  std::uint64_t chunks_quarantined = 0; ///< checksum-failed chunks set aside
  std::uint64_t manager_crashes = 0;    ///< control-plane crashes injected
  std::uint64_t manager_recoveries = 0; ///< journal replays completed
  double manager_downtime = 0;          ///< control-plane dead time (s)
  std::uint64_t orphans_readopted = 0;  ///< honeypots re-adopted by recovery
  std::uint64_t journal_entries = 0;    ///< entries appended to the WAL
  std::uint64_t journal_bytes = 0;      ///< WAL size
  std::uint64_t journal_replayed = 0;   ///< entries applied by the last replay
  std::uint64_t journal_tail_lost = 0;  ///< torn-tail bytes at the last replay

  // --- Probe/survey retransmit accounting (zero unless retries enabled).
  std::uint64_t probe_retries = 0;          ///< probe + survey re-sends
  std::uint64_t probe_dups_suppressed = 0;  ///< duplicate replies recognized
};

/// Owns and coordinates a fleet of honeypots.
class Manager {
 public:
  Manager(net::Network& network, ManagerConfig config = {});
  ~Manager();

  Manager(const Manager&) = delete;
  Manager& operator=(const Manager&) = delete;

  /// Launch a honeypot on `host` and point it at `server`. The manager
  /// injects its measurement salt into the honeypot configuration.
  /// Returns the fleet index.
  std::size_t launch(HoneypotConfig config, net::NodeId host,
                     const ServerRef& server);

  /// One probed candidate server, with its self-reported load.
  struct ServerSurveyEntry {
    ServerRef server;
    std::uint32_t users = 0;
    std::uint32_t files = 0;
  };
  using SurveyCallback = std::function<void(std::vector<ServerSurveyEntry>)>;

  /// Probe candidate servers over UDP from `probe_node` and deliver the
  /// ones that answered within `timeout`, busiest first — the paper's
  /// manager guides server choice "by their resources and number of users".
  void survey_servers(std::vector<ServerRef> candidates, net::NodeId probe_node,
                      Duration timeout, SurveyCallback done);

  /// Redirect honeypot `index` toward another server (the paper's manager
  /// "re-launch[es] dead honeypots or redirect[s] them toward other
  /// servers"). The query log survives; the advertised list is re-offered
  /// to the new server.
  void reassign(std::size_t index, const ServerRef& server);

  /// Standby servers for watchdog escalation, used round-robin when a
  /// honeypot exhausts `escalate_after` consecutive relaunch failures.
  void set_backup_servers(std::vector<ServerRef> backups);

  /// Order honeypot `index` to advertise `files`.
  void advertise(std::size_t index, std::vector<AdvertisedFile> files);
  /// Order every honeypot to advertise the same list (the paper's
  /// distributed measurement advertised identical files everywhere).
  void advertise_all(std::vector<AdvertisedFile> files);

  /// Begin the status-polling loop.
  void start();
  /// Stop polling and disconnect every honeypot.
  void stop();

  // --- Crash tolerance (requires ManagerConfig::journal) ------------------

  /// Simulate a control-plane crash: the poll loop, fleet table, backup
  /// list, ack frontier and every counter die with process memory. The
  /// honeypot processes are remote and keep running (and spooling locally,
  /// since their sink to the dead manager is severed); they are parked as
  /// orphans until a recover() re-adopts them. The journal and the durable
  /// chunk store survive by construction. Returns the orphan count.
  std::size_t crash();

  /// Restart after crash(): replay the journal (from the last checkpoint)
  /// to rebuild the fleet table, watchdog/escalation counters and spool-ack
  /// frontier, then re-adopt the orphaned honeypots — chunks the journal
  /// proves durable are acknowledged immediately, the rest re-sent and
  /// deduped. Polling resumes if it was running at crash time.
  /// `crashed_at` (simulation time) feeds downtime accounting; pass a
  /// negative value when unknown. Throws std::logic_error without a journal.
  void recover(Time crashed_at = -1.0);

  /// Cold-start recovery: a brand-new manager process, configured with the
  /// dead one's journal + durable store, adopting its orphans.
  [[nodiscard]] static std::unique_ptr<Manager> recover(
      net::Network& network, ManagerConfig config,
      std::vector<std::unique_ptr<Honeypot>> orphans, Time crashed_at = -1.0);

  /// Surrender the orphaned fleet (for cold-start recovery by another
  /// manager object). Only meaningful after crash().
  [[nodiscard]] std::vector<std::unique_ptr<Honeypot>> take_orphans() {
    return std::move(orphans_);
  }

  /// Append a full-state snapshot to the journal so the next replay starts
  /// here instead of at the beginning (recover() checkpoints automatically).
  void checkpoint();

  [[nodiscard]] std::size_t fleet_size() const noexcept { return fleet_.size(); }
  [[nodiscard]] Honeypot& honeypot(std::size_t index);
  [[nodiscard]] const Honeypot& honeypot(std::size_t index) const;
  /// Current server assignment / ordered file list of a slot (restored by
  /// recovery; exposed for operators and tests).
  [[nodiscard]] const ServerRef& server_of(std::size_t index) const {
    return fleet_.at(index).server;
  }
  [[nodiscard]] const std::vector<AdvertisedFile>& ordered_files(
      std::size_t index) const {
    return fleet_.at(index).files;
  }
  [[nodiscard]] std::uint64_t relaunches() const noexcept { return relaunches_; }

  /// Snapshot of fault-recovery accounting across the fleet, including
  /// still-open downtime windows at call time.
  [[nodiscard]] RecoveryStats recovery_stats() const;

  /// Fleet-sum of every honeypot's admission-control decision counters.
  [[nodiscard]] net::DefenseStats defense_stats() const;

  /// Fleet-sum of measurement-integrity accounting (probe verdicts,
  /// detections, quarantined records) plus the manager's own verdicts
  /// (servers quarantined/reinstated, records excluded by the last merge).
  [[nodiscard]] IntegrityStats integrity_stats() const;

  /// Ledger of the last skew-corrected merge (zero-initialized until a
  /// track_clocks merge ran).
  [[nodiscard]] const logbook::TimeIntegrityStats& time_integrity()
      const noexcept {
    return time_integrity_;
  }
  /// Clock sightings harvested so far (journaled; survives crash/recover).
  [[nodiscard]] const std::vector<logbook::ClockObservation>&
  clock_observations() const noexcept {
    return clock_obs_;
  }

  /// Current health score of a server (by name); 0 when never scored.
  [[nodiscard]] double server_health(const std::string& name) const;
  /// Whether a server is currently benched by a quarantine.
  [[nodiscard]] bool server_quarantined(const std::string& name) const;

  /// The chunk store backing crash-safe spooling (empty unless
  /// ManagerConfig::spool.enabled).
  [[nodiscard]] const logbook::SpoolStore& spool_store() const noexcept {
    return *spool_store_;
  }

  // --- Conservation-ledger inputs (see audit::AuditStats) -----------------

  /// Tainted records dropped by the most recent merged_anonymized[_durable]
  /// call — the ledger's merge-time `excluded` disposition (deliberately
  /// NOT the stamp-time quarantine tally in IntegrityStats, which also
  /// counts tainted records a budget or crash destroyed first).
  [[nodiscard]] std::uint64_t records_excluded_last_merge() const noexcept {
    return records_excluded_;
  }
  /// Records left resident in corrupt (quarantined) chunks by the most
  /// recent merged_anonymized_durable salvage pass; 0 after a live merge.
  [[nodiscard]] std::uint64_t records_quarantined_last_merge() const noexcept {
    return durable_quarantine_records_;
  }

  /// Snapshot every honeypot's current log (without draining).
  [[nodiscard]] std::vector<logbook::LogFile> collect_logs() const;

  /// Write every honeypot's current (stage-1) log to
  /// `<directory>/hp-<id>.edhplog` in the binary format; returns the paths.
  /// This is the periodic gathering the paper's manager performs.
  std::vector<std::string> persist_logs(const std::string& directory) const;

  /// Merge all logs and apply stage-2 anonymisation: the published dataset.
  /// Returns the merged log; `distinct_peers_out` (optional) receives the
  /// number of distinct peers assigned by renumbering.
  [[nodiscard]] logbook::LogFile merged_anonymized(
      std::uint64_t* distinct_peers_out = nullptr) const;

  /// The dataset recoverable from durable state alone: the chunk store plus
  /// every honeypot's local on-disk spool (fleet and orphans alike), merged
  /// and stage-2 anonymised. This is what an operator publishes after a
  /// control-plane crash — it misses only in-memory tails never cut into a
  /// chunk, so the loss is bounded by the spool period per honeypot.
  [[nodiscard]] logbook::LogFile merged_anonymized_durable(
      std::uint64_t* distinct_peers_out = nullptr) const;

  /// Union of observed (harvested) files across the fleet with their total
  /// size in bytes — Table I's distinct-files and space-used statistics.
  struct ObservedFiles {
    std::uint64_t distinct = 0;
    std::uint64_t bytes = 0;
  };
  [[nodiscard]] ObservedFiles observed_files() const;

  /// Publishable catalog of observed file names: every name harvested by
  /// the fleet, passed through the word-frequency anonymiser (words rarer
  /// than `threshold` become integer tokens).
  [[nodiscard]] std::vector<std::string> export_observed_names(
      std::uint64_t threshold) const;

 private:
  struct Slot {
    std::unique_ptr<Honeypot> honeypot;
    std::uint16_t id = 0;       ///< honeypot id (journal identity)
    net::NodeId host = 0;       ///< host node (journal/audit record)
    ServerRef server;
    std::vector<AdvertisedFile> files;
    // Watchdog state.
    std::size_t consecutive_failures = 0;  ///< failed relaunches in a row
    Time next_attempt_at = 0;              ///< relaunch backoff gate
    Time down_since = -1.0;                ///< first poll that saw it dead
  };

  /// Why the watchdog escalated (journaled for exact counter replay).
  enum class EscalateReason : std::uint8_t { failures = 0, heartbeat = 1 };

  void poll();
  /// Relaunch backoff for the given consecutive-failure count (1-based).
  [[nodiscard]] Duration relaunch_backoff(std::size_t failures) const;
  /// Whether every ordered file is present in the advertised list.
  [[nodiscard]] static bool covers(const std::vector<AdvertisedFile>& advertised,
                                   const std::vector<AdvertisedFile>& ordered);
  /// Re-offer the ordered list plus any extras the honeypot grew itself.
  void repair_advertised(std::size_t index);
  /// Move the slot to the next backup server (or reconnect in place when
  /// no backups are configured).
  void escalate(std::size_t index, EscalateReason reason);
  /// Install the spool-chunk sink (ingest + journal + delayed ack) on the
  /// slot's honeypot.
  void wire_spool_sink(Slot& slot);
  /// Install the degraded-mode observer (journals every transition).
  void wire_degrade_sink(Slot& slot);
  /// Install the self-probe verdict observer (health scoring + journal).
  void wire_probe_sink(Slot& slot);
  /// Score one probe verdict; may quarantine the reporting server.
  void on_probe_verdict(std::uint16_t hp_id, bool confirmed);
  /// Bench a server: journal the verdict, move its slots to backups.
  void quarantine_server(const std::string& name);
  /// Expire due quarantines: reassign displaced slots back to the original.
  void service_quarantines(Time now);
  /// Record one (true, local) clock sighting for honeypot `hp_id` at the
  /// current instant: journaled, retained for the skew-corrected merge.
  /// No-op unless config_.track_clocks.
  void record_clock_observation(std::uint16_t hp_id, Time local_time);
  /// Merge per-honeypot logs, skew-correcting against accumulated clock
  /// observations when clock tracking is on (plain merge_logs otherwise).
  [[nodiscard]] logbook::LogFile merge_with_clock_correction(
      std::span<const logbook::LogFile> logs) const;
  /// Append one framed entry to the journal (no-op without one).
  void journal_append(logbook::JournalEntryType type,
                      std::span<const std::uint8_t> payload);
  /// Rebuild fleet/backups/counters/frontier from the journal.
  void replay_journal();
  /// Match orphans to replayed slots by honeypot id, rewire their sinks,
  /// ack journal-proven chunks and re-send the rest. Returns adopted count.
  std::size_t adopt_orphans();

  net::Network& net_;
  ManagerConfig config_;
  std::vector<Slot> fleet_;
  std::vector<ServerRef> backups_;
  std::size_t next_backup_ = 0;
  std::unique_ptr<sim::PeriodicTimer> poll_timer_;
  bool started_ = false;  ///< polling requested (journaled; survives replay)
  std::uint64_t relaunches_ = 0;
  std::shared_ptr<logbook::SpoolStore> spool_store_;  ///< durable chunk store
  /// Per-honeypot next-unstored sequence number, proven by journaled
  /// chunk_stored entries; recovery acks below it without a re-send.
  std::map<std::uint16_t, std::uint64_t> ack_frontier_;
  /// Honeypots surviving a control-plane crash, awaiting re-adoption.
  std::vector<std::unique_ptr<Honeypot>> orphans_;
  RecoveryStats recovery_;  ///< counters accumulated by the watchdog

  // --- Server-health / quarantine state (Byzantine defense) ---------------
  struct ServerHealth {
    double score = 0;
    std::uint64_t misses = 0;
    std::uint64_t confirms = 0;
  };
  /// One benched server and the slots displaced away from it, so the
  /// reinstate can move exactly those honeypots back (journaled, so a
  /// recovered manager honors the pending cooloff).
  struct Quarantine {
    std::string server_name;
    ServerRef original;
    Time until = 0;
    std::vector<std::uint32_t> displaced;
  };
  std::map<std::string, ServerHealth> health_;
  std::vector<Quarantine> quarantines_;
  IntegrityStats integrity_;  ///< manager-side verdict counters
  /// Tainted records dropped by the most recent merged_anonymized[_durable]
  /// pass (mutable: merging is logically const, the audit trail is not).
  mutable std::uint64_t records_excluded_ = 0;
  /// Quarantined-resident records observed by the most recent durable
  /// salvage merge (mutable for the same reason).
  mutable std::uint64_t durable_quarantine_records_ = 0;

  // --- Virtual-clock state (empty unless config_.track_clocks) -------------
  /// Clock sightings in arrival order; journaled (type clock_observation)
  /// and checkpointed, so a recovered manager keeps its reconstruction
  /// anchors. Cleared by crash(), restored by replay.
  std::vector<logbook::ClockObservation> clock_obs_;
  /// Ledger of the last skew-corrected merge (mutable for the same reason
  /// as records_excluded_).
  mutable logbook::TimeIntegrityStats time_integrity_;

  /// Survey retransmit accounting, shared with in-flight survey closures
  /// (which deliberately never capture `this`).
  struct SurveyCounters {
    std::uint64_t retries = 0;
    std::uint64_t dups = 0;
  };
  std::shared_ptr<SurveyCounters> survey_counters_ =
      std::make_shared<SurveyCounters>();
};

}  // namespace edhp::honeypot
