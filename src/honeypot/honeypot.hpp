#pragma once
// The honeypot: a fake eDonkey peer that advertises files it does not have
// and logs every query it receives for them.
//
// Built as a modified client (the paper modifies aMule): it keeps the
// normal protocol behaviour — server login, OFFER-FILES advertisement and
// keep-alive, HELLO/HELLO-ANSWER, START-UPLOAD/ACCEPT-UPLOAD — and diverges
// only at the final step: it never delivers real content. Depending on its
// strategy it either ignores REQUEST-PART queries (no-content) or answers
// them with random bytes (random-content).
//
// Every HELLO, START-UPLOAD and REQUEST-PART received is appended to the
// query log together with the peer metadata the paper lists. IP addresses
// pass through stage-1 anonymisation before entering the log.
//
// Failure handling (all off by default, enabled by the chaos campaigns):
// with a RetryPolicy the honeypot reconnects to its server on its own with
// capped exponential backoff before reporting Status::dead to the manager;
// with a SpoolConfig it periodically cuts its log tail into sequence-
// numbered chunks handed to the manager, so a crash destroys at most the
// unspooled tail (accounted in counters()["records_lost_tail"]). Each
// (re)launch increments an epoch; chunks spooled but unacknowledged at
// crash time are re-sent on relaunch with their original sequence numbers
// and deduplicated manager-side.

#include <deque>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "anonymize/ip_anonymizer.hpp"
#include "honeypot/config.hpp"
#include "honeypot/integrity.hpp"
#include "logbook/record.hpp"
#include "net/network.hpp"
#include "proto/messages.hpp"
#include "sim/metrics.hpp"

namespace edhp::honeypot {

/// Lifecycle state reported to the manager.
enum class Status : std::uint8_t {
  idle,        ///< launched, not yet told to connect
  connecting,  ///< server connection / login in progress
  connected,   ///< logged in, advertising
  dead,        ///< lost the server connection (or crashed)
};

[[nodiscard]] std::string_view to_string(Status s);

/// Where a honeypot should connect (resolved by the manager).
struct ServerRef {
  net::NodeId node = 0;
  std::string name;
  std::uint16_t port = 4661;
};

class Honeypot {
 public:
  Honeypot(net::Network& network, net::NodeId self, HoneypotConfig config);
  ~Honeypot();

  Honeypot(const Honeypot&) = delete;
  Honeypot& operator=(const Honeypot&) = delete;

  // --- Manager orders -----------------------------------------------------

  /// Connect to a server and log in; safe to call again after death
  /// (relaunch), preserving the query log.
  void connect_to_server(const ServerRef& server);

  /// Replace the advertised file list and push it to the server.
  void advertise(std::vector<AdvertisedFile> files);

  /// Append one file (greedy growth); the OFFER keep-alive pushes it.
  void add_advertised(AdvertisedFile file);

  /// Keyword bootstrap: search the server for `query` and adopt up to
  /// `limit` results into the advertised list — the paper's suggested way
  /// of capturing "all the activity regarding ... a specific keyword".
  /// Results arrive asynchronously; adopted count is visible via
  /// counters()["search_adopted"].
  void search_and_adopt(const std::string& query, std::size_t limit);

  /// Drop the server connection and stop accepting peers.
  void disconnect();

  /// Simulate a host crash: connection lost without cleanup. The log
  /// survives (it is streamed/stored out-of-band), status becomes dead.
  void crash();

  // --- Status for the manager's polling loop ------------------------------

  [[nodiscard]] Status status() const noexcept { return status_; }
  [[nodiscard]] ClientId client_id() const noexcept { return client_id_; }
  [[nodiscard]] const HoneypotConfig& config() const noexcept { return config_; }
  [[nodiscard]] net::NodeId node() const noexcept { return self_; }
  [[nodiscard]] const std::vector<AdvertisedFile>& advertised() const noexcept {
    return advertised_;
  }

  // --- Recovery & durability ----------------------------------------------

  /// Process incarnation: incremented by every connect_to_server (launch or
  /// relaunch). Spool chunks are stamped with the epoch that first cut them.
  [[nodiscard]] std::uint32_t epoch() const noexcept { return epoch_; }

  /// Last instant this honeypot demonstrably made progress (connect
  /// attempt, login, OFFER keep-alive, or logged query). The manager's
  /// watchdog escalates on heartbeat age, which also catches a honeypot
  /// wedged in `connecting` (its SYN raced a server restart). Measured on
  /// TRUE time: the watchdog must not be fooled by a frozen local clock.
  [[nodiscard]] Time last_heartbeat() const noexcept { return heartbeat_; }

  /// This honeypot's LOCAL wall-clock reading of the current instant —
  /// what it stamps on records and spool cuts. Identity with true sim time
  /// until a clock fault touches the host.
  [[nodiscard]] Time local_now() const { return net_.local_time(self_); }

  /// Total self-reconnect attempts across all outage episodes.
  [[nodiscard]] std::uint64_t retries() const noexcept { return retries_total_; }

  /// Closed [login, connection-loss) intervals; the currently open interval
  /// (if connected) is not included — see connected_time().
  struct CoverageWindow {
    Time begin = 0;
    Time end = 0;
  };
  [[nodiscard]] const std::vector<CoverageWindow>& coverage() const noexcept {
    return coverage_;
  }
  /// Total time spent logged in, including the currently open window.
  [[nodiscard]] double connected_time() const;

  /// Receives every spooled chunk (the manager's gathering channel); the
  /// bool is true for a fresh cut, false for a (possibly stale) re-send —
  /// only fresh cuts are trustworthy clock observations. A new sink is a
  /// new manager incarnation: chunks marked in-flight toward the old one
  /// become eligible for (credit-paced) resending again.
  void set_spool_sink(std::function<void(const logbook::LogChunk&, bool)> sink) {
    spool_sink_ = std::move(sink);
    for (auto& meta : pending_meta_) {
      meta.in_flight = false;
    }
  }
  /// Cut the unspooled log tail into a chunk now (also runs periodically
  /// while spooling is enabled). No-op when the tail is empty.
  void spool_now();
  /// The manager confirmed durable receipt of chunk `seq`; it leaves the
  /// local spool and will not be re-sent on relaunch.
  void ack_spooled(std::uint64_t seq);
  /// Records destroyed by crashes before they were spooled.
  [[nodiscard]] std::uint64_t records_lost_tail() const noexcept {
    return lost_tail_;
  }
  /// Chunks spooled locally but not yet acknowledged.
  [[nodiscard]] std::size_t pending_spool() const noexcept {
    return pending_chunks_.size();
  }
  /// The local on-disk spool itself (unacknowledged chunks, oldest first) —
  /// what an operator salvages from a host when the manager never returns.
  [[nodiscard]] const std::vector<logbook::LogChunk>& pending_chunks()
      const noexcept {
    return pending_chunks_;
  }
  /// Re-send every spooled-but-unacked chunk through the current sink (the
  /// manager calls this when it re-adopts an orphan after recovery; also
  /// runs on every relaunch). The store dedups by (honeypot, seq).
  void resend_spool();
  /// Credit-paced variant: re-send at most `limit` chunks not already in
  /// flight toward the current sink; the rest stay spooled and are counted
  /// as paced. The manager tops the window up one chunk per ack, so a
  /// recovery cannot re-trigger the overload that caused the crash.
  /// Returns the number of chunks deferred.
  std::size_t resend_spool(std::size_t limit);

  // --- Measurement integrity ----------------------------------------------

  /// Observes every self-probe verdict (true = confirmed, false = missed or
  /// canary tripped). The manager scores server health from these; severed
  /// on crash() like the degrade sink, so a probe resolving after a host
  /// crash cannot call into stale manager wiring.
  void set_probe_sink(std::function<void(bool)> sink) {
    probe_sink_ = std::move(sink);
  }
  [[nodiscard]] const IntegrityStats& integrity_stats() const noexcept {
    return integrity_;
  }
  /// The canary hash this honeypot GET-SOURCES-probes (never advertised; a
  /// server returning sources for it is fabricating). Exposed for tests.
  [[nodiscard]] FileId canary_file() const;
  /// Probe copies re-sent after a timeout (config.self_probe_retries caps
  /// the per-probe budget).
  [[nodiscard]] std::uint64_t probe_retransmits() const noexcept {
    return probe_retransmits_;
  }
  /// Duplicate probe replies recognized and suppressed (late copies after
  /// the probe already resolved, e.g. under bursty loss + retransmit).
  [[nodiscard]] std::uint64_t probe_dup_replies() const noexcept {
    return probe_dup_replies_;
  }

  // --- Overload & degradation ---------------------------------------------

  /// Apply (or lift) a resource-exhaustion fault episode. `magnitude` is
  /// the quota/budget multiplier (disk_full, mem_pressure) or the cut-period
  /// factor (disk_slow). No-op when the degrade policy is `off`.
  void set_resource_fault(budget::ResourceFault which, bool active,
                          double magnitude);
  /// Observes every degraded-mode transition: (entered, reason). The
  /// manager journals these; cleared when the manager crashes.
  void set_degrade_sink(std::function<void(bool, budget::DegradeReason)> sink) {
    degrade_sink_ = std::move(sink);
  }
  [[nodiscard]] bool degraded() const noexcept { return degraded_; }
  [[nodiscard]] const budget::DegradeStats& degrade_stats() const noexcept {
    return degrade_;
  }
  /// Resident (spooled-but-unacked) chunk bytes held locally.
  [[nodiscard]] std::uint64_t spool_resident_bytes() const noexcept {
    return spool_resident_bytes_;
  }
  /// Records appended since the last spool cut (the in-memory tail).
  [[nodiscard]] std::uint64_t unspooled_tail() const noexcept {
    return log_.records.size() - spooled_mark_;
  }

  // --- Collected data ------------------------------------------------------

  [[nodiscard]] const logbook::LogFile& log() const noexcept { return log_; }
  /// Move the accumulated log out (manager collection); logging continues
  /// into a fresh log with the same header.
  [[nodiscard]] logbook::LogFile take_log();

  /// Distinct files seen in harvested shared-file lists (with their sizes),
  /// for Table I's "distinct files" / "space used".
  [[nodiscard]] const std::unordered_map<FileId, std::uint32_t>& observed_files()
      const noexcept {
    return observed_files_;
  }
  [[nodiscard]] std::uint64_t observed_bytes() const noexcept {
    return observed_bytes_;
  }
  /// Names of observed files (for the manager's anonymised catalog export).
  [[nodiscard]] const std::vector<std::string>& observed_names() const noexcept {
    return observed_names_;
  }

  [[nodiscard]] const sim::CounterSet& counters() const noexcept {
    return counters_;
  }
  [[nodiscard]] const net::DefenseStats& defense_stats() const noexcept {
    return defense_;
  }

  /// Records ever stamped by this honeypot (the conservation ledger's
  /// birth count): every append_record call, before the budget gate, the
  /// stream fold or any later destruction. Survives crash/relaunch with
  /// the object, like the disposition counters it balances against.
  [[nodiscard]] std::uint64_t records_born() const noexcept {
    return records_born_;
  }

  /// Records folded away by stream mode (0 unless config.stream_records).
  [[nodiscard]] std::uint64_t records_streamed() const noexcept {
    return records_streamed_;
  }
  /// FNV-1a over the streamed records' bit-identity fields (same mix as the
  /// golden-fingerprint checks); the FNV offset basis when none streamed.
  [[nodiscard]] std::uint64_t stream_fingerprint() const noexcept {
    return stream_fingerprint_;
  }

 private:
  struct PeerConn {
    net::EndpointPtr endpoint;
    std::uint64_t peer_hash = 0;      // stage-1 anonymised identity
    std::uint64_t user = 0;
    std::uint32_t client_id = 0;
    std::uint16_t port = 0;
    std::uint16_t name_ref = 0;
    std::uint32_t version = 0;
    bool hello_seen = false;
    bool uploading = false;  ///< holds an upload slot
    bool queued = false;     ///< waiting for a slot
    std::uint8_t taint = 0;  ///< provenance flags applied to new records
    Time connected_at = 0;   ///< accept time (bounds retroactive tainting)
    net::TokenBucket bucket;  ///< per-peer message budget (defense)
    sim::EventHandle reap;    ///< pending handshake/idle timeout
  };
  using ConnKey = std::uint64_t;

  void on_server_message(net::Bytes packet);
  void on_server_closed();
  /// The listen + connect + login attempt (no episode/epoch bookkeeping).
  void attempt_connect();
  /// Schedule the next backoff-ed reconnect, or go dead when the episode's
  /// retry budget is spent.
  void schedule_retry();
  /// Backoff delay for the given 0-based attempt, with deterministic jitter
  /// derived from (honeypot id, attempt) — no RNG stream involved.
  [[nodiscard]] Duration retry_delay(std::size_t attempt) const;
  void begin_coverage();
  void end_coverage();
  void send_offer();
  void on_peer_accept(net::EndpointPtr ep);
  void on_peer_message(ConnKey key, net::Bytes packet);
  /// Decode and dispatch one peer packet (post-admission).
  void process_peer(ConnKey key, net::Bytes packet);
  /// (Re)schedule the peer's reap timer; O(1) cancel of the old one.
  void arm_reap(PeerConn& conn, ConnKey key, Duration timeout);
  void reap_peer(ConnKey key);
  /// Drain up to queue_batch packets from the bounded inbound queue.
  void service_inbox();
  /// Close + forget one peer connection, cancelling its reap timer.
  void drop_peer(ConnKey key);

  void handle_hello(PeerConn& conn, const proto::HelloView& msg);
  void handle_start_upload(ConnKey key, PeerConn& conn,
                           const proto::StartUpload& msg);
  void handle_request_parts(PeerConn& conn, const proto::RequestParts& msg);
  void handle_shared_list(PeerConn& conn,
                          const proto::AskSharedFilesAnswerView& msg);

  void append_record(const PeerConn& conn, logbook::QueryType type,
                     const FileId* file, std::uint8_t taint = 0);
  /// One advertise-and-verify self-probe tick: alternates a keyword search
  /// for an own advertised file with a canary GET-SOURCES.
  void run_self_probe();
  /// Probe deadline hit: either re-send the same probe (retry budget left)
  /// or declare the miss.
  void on_probe_timeout();
  /// Resolve the in-flight probe; a miss re-advertises (self-heal) and both
  /// outcomes reach the manager through the probe sink.
  void probe_result(bool confirmed);
  /// Retroactively taint this connection's records since accept time (a
  /// forged list proves everything the peer sent was adversarial).
  void taint_tail(const PeerConn& conn, std::uint8_t taint);
  /// Budget gate for one record-to-be (identified by its user word): false
  /// = shed (declared). May force an early backpressure cut first.
  [[nodiscard]] bool admit_record(std::uint64_t user);
  /// Periodic cut wrapper honoring disk_slow throttling.
  void periodic_spool();
  /// Coalesce the undelivered pending-chunk suffix (and shed low-priority
  /// records from it) when resident bytes exceed the effective quota.
  void maybe_compact();
  void enter_degraded(budget::DegradeReason reason);
  /// Leave degraded mode once no episode is active and budgets are met.
  void update_degrade_state();
  [[nodiscard]] std::uint64_t effective_disk_quota() const;
  [[nodiscard]] std::uint64_t effective_mem_budget() const;
  std::uint16_t intern_name(const std::string& name);
  [[nodiscard]] bool in_harvest_window() const;
  void grant_slot(ConnKey key, PeerConn& conn);
  void release_slot(ConnKey key, PeerConn& conn);

  net::Network& net_;
  net::NodeId self_;
  HoneypotConfig config_;
  /// Scratch backing the zero-copy decode of the packet currently being
  /// handled; reused across deliveries (steady state: no allocation).
  proto::MessageArena arena_;
  anonymize::IpAnonymizer ip_anon_;
  UserId user_hash_;

  Status status_ = Status::idle;
  std::optional<ServerRef> server_;
  net::EndpointPtr server_ep_;
  ClientId client_id_{};
  std::unique_ptr<sim::PeriodicTimer> offer_timer_;
  bool offer_dirty_ = false;  ///< advertised list changed since last OFFER

  std::vector<AdvertisedFile> advertised_;
  std::unordered_set<FileId> advertised_ids_;
  std::size_t pending_search_adopt_ = 0;  ///< limit of the in-flight search

  std::unordered_map<ConnKey, PeerConn> peers_;
  ConnKey next_conn_ = 1;
  std::size_t slots_used_ = 0;
  std::deque<ConnKey> upload_queue_;

  // Defense state (all dormant unless config_.defense.enabled).
  net::DefenseStats defense_;
  std::unordered_map<net::NodeId, net::TokenBucket> connect_buckets_;
  std::deque<std::pair<ConnKey, net::Bytes>> inbox_;
  bool inbox_armed_ = false;

  logbook::LogFile log_;
  std::uint64_t records_streamed_ = 0;
  std::uint64_t stream_fingerprint_ = 1469598103934665603ull;  // FNV offset
  std::uint64_t records_born_ = 0;         ///< conservation-ledger births
  std::uint64_t audit_selftest_tick_ = 0;  ///< Nth-record drop cadence
  std::unordered_map<std::string, std::uint16_t> name_cache_;
  std::unordered_map<FileId, std::uint32_t> observed_files_;
  std::uint64_t observed_bytes_ = 0;
  std::vector<std::string> observed_names_;
  Time started_at_ = 0;

  // Recovery state.
  std::uint32_t epoch_ = 0;
  Time heartbeat_ = 0;
  sim::EventHandle retry_event_{};
  std::size_t retries_episode_ = 0;
  std::uint64_t retries_total_ = 0;
  std::vector<CoverageWindow> coverage_;
  Time connected_since_ = -1.0;  ///< < 0 when no window is open

  // Spool state. Marks index into log_: records/names below the mark are
  // already cut into chunks; `pending_chunks_` is the local on-disk spool
  // (survives crash(); re-sent on relaunch until acked).
  std::unique_ptr<sim::PeriodicTimer> spool_timer_;
  std::function<void(const logbook::LogChunk&, bool)> spool_sink_;
  std::vector<logbook::LogChunk> pending_chunks_;
  std::size_t spooled_mark_ = 0;
  std::size_t names_spooled_mark_ = 1;  ///< log_.names[0] is always ""
  std::uint64_t next_chunk_seq_ = 0;
  std::uint64_t lost_tail_ = 0;

  // Overload & degradation state. `pending_meta_` is index-aligned with
  // `pending_chunks_`: which log range a chunk covers (compaction erases
  // shed records from log and chunk together, so the local log and the
  // spool never diverge), whether any sink ever received it (delivered
  // chunks are never compacted: the store may already hold their seq), and
  // whether it is in flight toward the current sink (credit pacing).
  struct SpoolMeta {
    bool delivered = false;
    bool in_flight = false;
    std::size_t rec_begin = 0;
    std::size_t rec_end = 0;
  };
  std::vector<SpoolMeta> pending_meta_;
  std::uint64_t spool_resident_bytes_ = 0;
  Time last_spool_cut_ = 0;
  budget::DegradeStats degrade_;
  std::function<void(bool, budget::DegradeReason)> degrade_sink_;
  bool degraded_ = false;
  bool disk_full_active_ = false;
  double disk_full_magnitude_ = 1.0;
  std::uint64_t disk_full_frozen_quota_ = 0;
  bool disk_slow_active_ = false;
  double disk_slow_factor_ = 1.0;
  bool mem_pressure_active_ = false;
  double mem_pressure_magnitude_ = 1.0;
  std::uint64_t mem_frozen_budget_ = 0;
  std::size_t session_ceiling_active_ = 0;

  // Measurement-integrity state (dormant unless config_.self_probe_period
  // or config_.integrity_defense is set).
  IntegrityStats integrity_;
  std::function<void(bool)> probe_sink_;
  std::unique_ptr<sim::PeriodicTimer> probe_timer_;
  sim::EventHandle probe_timeout_event_{};
  bool probe_pending_ = false;
  bool probe_await_search_ = false;  ///< reply consumed before adopt path
  bool probe_await_canary_ = false;
  std::uint64_t probe_seq_ = 0;     ///< alternates search / canary probes
  std::size_t probe_cursor_ = 0;    ///< round-robin over advertised files
  FileId probe_file_{};             ///< file the pending search probe expects
  net::Bytes probe_payload_;        ///< encoded probe, kept for retransmit
  std::size_t probe_retries_left_ = 0;
  std::uint64_t probe_retransmits_ = 0;
  std::uint64_t probe_dup_replies_ = 0;
  /// Extra replies still possibly in flight after the probe resolved (one
  /// per retransmit of the resolved probe) — the dedup window.
  std::uint64_t probe_dups_expected_ = 0;

  sim::CounterSet counters_;
};

}  // namespace edhp::honeypot
