#include "honeypot/honeypot.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/md4.hpp"

namespace edhp::honeypot {
namespace {

/// Truncate a 128-bit user hash to the 64-bit form stored in log records.
std::uint64_t truncate_user(const UserId& user) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | user.bytes()[static_cast<std::size_t>(i)];
  }
  return v;
}

/// Approximate wire overhead of a SENDING-PART packet (header + hash +
/// offsets), used when accounting the un-materialized block body.
constexpr std::size_t kSendingPartOverhead = 5 + 1 + 16 + 8;

}  // namespace

std::string_view to_string(ContentStrategy s) {
  return s == ContentStrategy::no_content ? "no-content" : "random-content";
}

std::string_view to_string(Status s) {
  switch (s) {
    case Status::idle:
      return "idle";
    case Status::connecting:
      return "connecting";
    case Status::connected:
      return "connected";
    case Status::dead:
      return "dead";
  }
  return "?";
}

Honeypot::Honeypot(net::Network& network, net::NodeId self, HoneypotConfig config)
    : net_(network),
      self_(self),
      config_(std::move(config)),
      ip_anon_(config_.salt) {
  // Persistent user hash, derived deterministically from the honeypot
  // identity (a real client stores one in its config file).
  Md4 h;
  h.update(config_.name);
  const std::uint32_t ip = net_.info(self_).ip.value();
  h.update(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(&ip), sizeof(ip)));
  user_hash_ = UserId(h.finish());

  log_.header.honeypot = config_.id;
  log_.header.honeypot_name = config_.name;
  log_.header.strategy = std::string(to_string(config_.strategy));
}

Honeypot::~Honeypot() {
  disconnect();
  net_.stop_listening(self_);
}

void Honeypot::connect_to_server(const ServerRef& server) {
  server_ = server;
  ++epoch_;
  retries_episode_ = 0;
  net_.simulation().cancel(retry_event_);
  log_.header.server_name = server.name;
  log_.header.server_ip = net_.info(server.node).ip.value();
  log_.header.server_port = server.port;

  if (config_.spool.enabled) {
    // Relaunch of the spooling pipeline: chunks in the local spool that were
    // never acknowledged go out again with their original sequence numbers
    // (the manager dedups), then the periodic cutter resumes.
    resend_spool();
    spool_timer_ = std::make_unique<sim::PeriodicTimer>(
        net_.simulation(), config_.spool.period, [this] { periodic_spool(); });
    spool_timer_->start();
  }

  attempt_connect();
}

void Honeypot::attempt_connect() {
  if (!server_) return;
  status_ = Status::connecting;
  heartbeat_ = net_.simulation().now();

  net_.listen(self_, [this](net::EndpointPtr ep) { on_peer_accept(std::move(ep)); });

  net_.connect(self_, server_->node, [this](net::EndpointPtr ep) {
    if (!ep) {
      counters_.add("server_connect_failures");
      if (config_.retry.enabled) {
        schedule_retry();
      } else {
        status_ = Status::dead;
      }
      return;
    }
    server_ep_ = std::move(ep);
    server_ep_->on_message([this](net::Bytes p) { on_server_message(std::move(p)); });
    server_ep_->on_close([this] { on_server_closed(); });

    proto::LoginRequest login;
    login.user = user_hash_;
    login.client_id = 0;
    login.port = net_.info(self_).port;
    login.tags = {proto::Tag::string_tag(proto::kTagName, config_.name),
                  proto::Tag::u32_tag(proto::kTagVersion, config_.client_version),
                  proto::Tag::u32_tag(proto::kTagPort, login.port)};
    server_ep_->send(proto::encode(proto::AnyMessage{login}));
  });
}

void Honeypot::on_server_message(net::Bytes packet) {
  proto::AnyMessageView msg;
  try {
    msg = proto::decode_view(proto::Channel::client_server, packet, arena_);
  } catch (const DecodeError&) {
    counters_.add("server_decode_errors");
    defense_.malformed += 1;
    net_.note_malformed(self_);
    return;
  }
  if (const auto* results = std::get_if<proto::SearchResultView>(&msg)) {
    if (probe_await_search_) {
      // Probe reply, consumed before the adopt path: confirmed iff the
      // reply still lists the advertised file we asked about. A corrupted
      // reply (garbled ids) or an emptied index both read as a miss.
      bool confirmed = false;
      for (const auto& f : arena_.of(results->files)) {
        if (f.file == probe_file_) {
          confirmed = true;
          break;
        }
      }
      probe_result(confirmed);
      return;
    }
    if (probe_dups_expected_ > 0 && pending_search_adopt_ == 0) {
      // A retransmitted probe's extra reply landing after the probe already
      // resolved: recognized and suppressed, never re-scored.
      ++probe_dup_replies_;
      --probe_dups_expected_;
      counters_.add("probe_dup_replies");
      return;
    }
    std::size_t adopted = 0;
    for (const auto& f : arena_.of(results->files)) {
      if (adopted >= pending_search_adopt_) break;
      if (advertised_ids_.contains(f.file)) continue;
      add_advertised(AdvertisedFile{f.file, std::string(f.name), f.size});
      ++adopted;
    }
    pending_search_adopt_ = 0;
    counters_.add("search_adopted", adopted);
    return;
  }
  if (const auto* found = std::get_if<proto::FoundSourcesView>(&msg)) {
    if (probe_await_canary_ && found->file == canary_file()) {
      // The canary hash was never advertised by anyone: any source the
      // server returns for it is fabricated.
      if (found->sources.count > 0) {
        ++integrity_.fabricated_sources_detected;
        counters_.add("fabricated_sources_detected");
        probe_result(false);
      } else {
        probe_result(true);
      }
    } else if (found->file == canary_file() && probe_dups_expected_ > 0) {
      // Late duplicate of an already-resolved canary probe (only our own
      // probes ever ask about the canary hash).
      ++probe_dup_replies_;
      --probe_dups_expected_;
      counters_.add("probe_dup_replies");
    }
    return;
  }
  if (const auto* id = std::get_if<proto::IdChange>(&msg)) {
    client_id_ = ClientId(id->client_id);
    const bool first_login = status_ != Status::connected;
    status_ = Status::connected;
    if (first_login && started_at_ == 0) {
      started_at_ = net_.simulation().now();
    }
    retries_episode_ = 0;
    heartbeat_ = net_.simulation().now();
    begin_coverage();
    counters_.add("logins");
    send_offer();
    offer_timer_ = std::make_unique<sim::PeriodicTimer>(
        net_.simulation(), config_.offer_keepalive, [this] { send_offer(); });
    offer_timer_->start();
    if (config_.self_probe_period > 0) {
      probe_timer_ = std::make_unique<sim::PeriodicTimer>(
          net_.simulation(), config_.self_probe_period,
          [this] { run_self_probe(); });
      probe_timer_->start();
    }
  }
  // FOUND-SOURCES / SERVER-MESSAGE are accepted silently.
}

void Honeypot::on_server_closed() {
  counters_.add("server_connection_lost");
  offer_timer_.reset();
  probe_timer_.reset();
  net_.simulation().cancel(probe_timeout_event_);
  probe_pending_ = probe_await_search_ = probe_await_canary_ = false;
  // In-flight probe replies (and their dedup window) die with the session.
  probe_retries_left_ = 0;
  probe_dups_expected_ = 0;
  probe_payload_.clear();
  server_ep_.reset();
  end_coverage();
  if (config_.retry.enabled) {
    // New outage episode: reconnect on our own before involving the
    // manager, like a real client riding out a server restart.
    retries_episode_ = 0;
    schedule_retry();
  } else {
    status_ = Status::dead;
  }
}

void Honeypot::schedule_retry() {
  if (retries_episode_ >= config_.retry.max_retries) {
    counters_.add("retry_budget_exhausted");
    status_ = Status::dead;
    return;
  }
  const Duration delay = retry_delay(retries_episode_);
  ++retries_episode_;
  ++retries_total_;
  counters_.add("server_retries");
  status_ = Status::connecting;
  retry_event_ =
      net_.simulation().schedule_in(delay, [this] { attempt_connect(); });
}

Duration Honeypot::retry_delay(std::size_t attempt) const {
  const double raw =
      config_.retry.base * std::pow(2.0, static_cast<double>(attempt));
  const double capped = std::min(raw, config_.retry.cap);
  // SplitMix64 of (id, attempt): stable jitter without touching any RNG
  // stream, so retry timing is a pure function of identity and history.
  std::uint64_t x = (static_cast<std::uint64_t>(config_.id) << 32) ^
                    ((attempt + 1) * 0x9E3779B97F4A7C15ull);
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  const double unit = static_cast<double>(x >> 11) * 0x1.0p-53;  // [0, 1)
  return capped * (1.0 + config_.retry.jitter * (2.0 * unit - 1.0));
}

void Honeypot::begin_coverage() {
  if (connected_since_ < 0) {
    connected_since_ = net_.simulation().now();
  }
}

void Honeypot::end_coverage() {
  if (connected_since_ >= 0) {
    coverage_.push_back({connected_since_, net_.simulation().now()});
    connected_since_ = -1.0;
  }
}

double Honeypot::connected_time() const {
  double total = 0;
  for (const auto& w : coverage_) {
    total += w.end - w.begin;
  }
  if (connected_since_ >= 0) {
    total += net_.simulation().now() - connected_since_;
  }
  return total;
}

void Honeypot::periodic_spool() {
  if (!config_.spool.enabled) return;
  if (log_.records.size() == spooled_mark_) return;
  if (disk_slow_active_) {
    // The episode throttles the cut cadence; forced cuts (backpressure,
    // final flush on stop) go through spool_now directly and are unaffected.
    const Duration min_gap = config_.spool.period * disk_slow_factor_;
    if (net_.simulation().now() - last_spool_cut_ < min_gap) {
      ++degrade_.spool_cuts_deferred;
      counters_.add("spool_cuts_deferred");
      return;
    }
  }
  spool_now();
}

void Honeypot::spool_now() {
  if (!config_.spool.enabled) return;
  if (log_.records.size() == spooled_mark_) return;
  logbook::LogChunk chunk;
  chunk.honeypot = config_.id;
  chunk.epoch = epoch_;
  chunk.seq = next_chunk_seq_++;
  chunk.name_base = names_spooled_mark_;
  chunk.names.assign(log_.names.begin() +
                         static_cast<std::ptrdiff_t>(names_spooled_mark_),
                     log_.names.end());
  const std::size_t rec_begin = spooled_mark_;
  chunk.records.assign(
      log_.records.begin() + static_cast<std::ptrdiff_t>(spooled_mark_),
      log_.records.end());
  spooled_mark_ = log_.records.size();
  names_spooled_mark_ = log_.names.size();
  // Stamped with the LOCAL clock: the manager pairs this with its own
  // receive time to observe this host's clock offset.
  chunk.cut_at_local = local_now();
  chunk.checksum = logbook::chunk_checksum(chunk);
  counters_.add("chunks_spooled");
  last_spool_cut_ = net_.simulation().now();
  spool_resident_bytes_ += logbook::chunk_cost_bytes(chunk);
  degrade_.spool_peak_bytes =
      std::max(degrade_.spool_peak_bytes, spool_resident_bytes_);
  pending_chunks_.push_back(std::move(chunk));
  pending_meta_.push_back(
      {spool_sink_ != nullptr, spool_sink_ != nullptr, rec_begin, spooled_mark_});
  if (spool_sink_) spool_sink_(pending_chunks_.back(), /*fresh=*/true);
  maybe_compact();
  update_degrade_state();
}

void Honeypot::resend_spool() {
  // Legacy unlimited path (honeypot relaunch): everything goes out again,
  // including chunks already in flight — the previous send may have died
  // with the crashed process.
  for (std::size_t i = 0; i < pending_chunks_.size(); ++i) {
    counters_.add("chunks_resent");
    if (spool_sink_) {
      pending_meta_[i].delivered = true;
      pending_meta_[i].in_flight = true;
      spool_sink_(pending_chunks_[i], /*fresh=*/false);
    }
  }
}

std::size_t Honeypot::resend_spool(std::size_t limit) {
  std::size_t sent = 0;
  std::size_t deferred = 0;
  for (std::size_t i = 0; i < pending_chunks_.size(); ++i) {
    if (pending_meta_[i].in_flight) continue;
    if (sent >= limit) {
      ++deferred;
      continue;
    }
    counters_.add("chunks_resent");
    if (spool_sink_) {
      pending_meta_[i].delivered = true;
      pending_meta_[i].in_flight = true;
      spool_sink_(pending_chunks_[i], /*fresh=*/false);
    }
    ++sent;
  }
  if (deferred > 0) {
    degrade_.resends_paced += deferred;
    counters_.add("resends_paced", deferred);
  }
  return deferred;
}

void Honeypot::ack_spooled(std::uint64_t seq) {
  for (std::size_t i = 0; i < pending_chunks_.size(); ++i) {
    if (pending_chunks_[i].seq != seq) continue;
    const std::uint64_t cost = logbook::chunk_cost_bytes(pending_chunks_[i]);
    spool_resident_bytes_ =
        cost >= spool_resident_bytes_ ? 0 : spool_resident_bytes_ - cost;
    pending_chunks_.erase(pending_chunks_.begin() +
                          static_cast<std::ptrdiff_t>(i));
    pending_meta_.erase(pending_meta_.begin() + static_cast<std::ptrdiff_t>(i));
    counters_.add("chunks_acked");
    update_degrade_state();
    return;
  }
}

void Honeypot::send_offer() {
  if (!server_ep_ || !server_ep_->open()) return;
  proto::OfferFiles offer;
  offer.files.reserve(advertised_.size());
  for (const auto& f : advertised_) {
    proto::PublishedFile pf;
    pf.file = f.id;
    pf.client_id = client_id_.value();
    pf.port = net_.info(self_).port;
    pf.name = f.name;
    pf.size = f.size;
    offer.files.push_back(std::move(pf));
  }
  server_ep_->send(proto::encode(proto::AnyMessage{std::move(offer)}));
  offer_dirty_ = false;
  heartbeat_ = net_.simulation().now();
  counters_.add("offers_sent");
}

void Honeypot::advertise(std::vector<AdvertisedFile> files) {
  if (status_ == Status::dead) {
    // The out-of-band order never reaches a dead host; the manager must
    // re-issue it after relaunch (it checks ordered-vs-advertised in poll).
    counters_.add("advertise_orders_lost");
    return;
  }
  advertised_ = std::move(files);
  advertised_ids_.clear();
  for (const auto& f : advertised_) {
    advertised_ids_.insert(f.id);
  }
  if (status_ == Status::connected) {
    send_offer();
  }
}

void Honeypot::add_advertised(AdvertisedFile file) {
  if (!advertised_ids_.insert(file.id).second) return;
  advertised_.push_back(std::move(file));
  // Batch growth into the keep-alive OFFER instead of spamming the server
  // on every harvested file; push promptly at small sizes so the first
  // advertisements go out quickly.
  offer_dirty_ = true;
  if (status_ == Status::connected &&
      (advertised_.size() < 8 || advertised_.size() % 64 == 0)) {
    send_offer();
  }
}

void Honeypot::search_and_adopt(const std::string& query, std::size_t limit) {
  if (!server_ep_ || !server_ep_->open() || limit == 0) return;
  pending_search_adopt_ = limit;
  server_ep_->send(proto::encode(proto::AnyMessage{proto::SearchRequest{query}}));
  counters_.add("searches_sent");
}

void Honeypot::disconnect() {
  offer_timer_.reset();
  probe_timer_.reset();
  spool_timer_.reset();
  net_.simulation().cancel(retry_event_);
  net_.simulation().cancel(probe_timeout_event_);
  probe_pending_ = probe_await_search_ = probe_await_canary_ = false;
  end_coverage();
  if (server_ep_) {
    server_ep_->close();
    server_ep_.reset();
  }
  for (auto& [key, conn] : peers_) {
    net_.simulation().cancel(conn.reap);
    if (conn.endpoint) conn.endpoint->close();
  }
  peers_.clear();
  slots_used_ = 0;
  upload_queue_.clear();
  inbox_.clear();
  inbox_armed_ = false;
  connect_buckets_.clear();
  status_ = Status::idle;
}

void Honeypot::crash() {
  counters_.add("crashes");
  offer_timer_.reset();
  probe_timer_.reset();
  spool_timer_.reset();
  net_.simulation().cancel(retry_event_);
  net_.simulation().cancel(probe_timeout_event_);
  probe_pending_ = probe_await_search_ = probe_await_canary_ = false;
  // Severed like the degrade sink: the sink captures manager wiring, and a
  // probe verdict racing a relaunch must not reach a stale incarnation.
  probe_sink_ = nullptr;
  retries_episode_ = 0;
  end_coverage();
  if (config_.spool.enabled) {
    // Records appended since the last spool cut lived only in process
    // memory: they die with the process. Everything below the mark is in
    // the local spool (pending_chunks_) or already with the manager.
    const auto lost = log_.records.size() - spooled_mark_;
    if (lost > 0) {
      lost_tail_ += lost;
      counters_.add("records_lost_tail", lost);
      log_.records.resize(spooled_mark_);
    }
  }
  if (server_ep_) {
    server_ep_->close();
    server_ep_.reset();
  }
  for (auto& [key, conn] : peers_) {
    net_.simulation().cancel(conn.reap);
    if (conn.endpoint) conn.endpoint->close();
  }
  peers_.clear();
  slots_used_ = 0;
  upload_queue_.clear();
  inbox_.clear();
  inbox_armed_ = false;
  connect_buckets_.clear();
  net_.stop_listening(self_);
  status_ = Status::dead;
}

logbook::LogFile Honeypot::take_log() {
  logbook::LogFile out = std::move(log_);
  log_ = logbook::LogFile{};
  log_.header = out.header;
  name_cache_.clear();
  spooled_mark_ = 0;
  names_spooled_mark_ = 1;
  // The marks reset, so every pending chunk's log range is stale: freeze
  // them as delivered (compaction must never touch them again). The caller
  // collected the log; the chunks only remain for at-least-once delivery.
  for (auto& meta : pending_meta_) {
    meta.delivered = true;
    meta.rec_begin = 0;
    meta.rec_end = 0;
  }
  return out;
}

void Honeypot::on_peer_accept(net::EndpointPtr ep) {
  if (peers_.size() >= config_.hard_peer_cap) {
    // The fd-limit analog: even an undefended honeypot cannot hold
    // unbounded peer connections.
    counters_.add("hard_cap_refused");
    ep->close();
    return;
  }
  if (mem_pressure_active_ && session_ceiling_active_ != 0 &&
      peers_.size() >= session_ceiling_active_) {
    // Declared degradation: under memory pressure the episode's session
    // ceiling refuses new peers before they can cost a buffer.
    ++degrade_.sessions_refused;
    counters_.add("sessions_refused");
    ep->close();
    return;
  }
  const auto& defense = config_.defense;
  if (defense.enabled) {
    const Time now = net_.simulation().now();
    // LIFO shedding: at the cap the NEWEST arrival is shed; peers already
    // talking to us keep producing log records.
    if (peers_.size() >= defense.max_sessions) {
      counters_.add("peers_shed");
      defense_.shed += 1;
      ep->close();
      return;
    }
    auto bucket = connect_buckets_
                      .try_emplace(ep->remote_node(), defense.connect_rate,
                                   defense.connect_burst, now)
                      .first;
    if (!bucket->second.try_take(now)) {
      counters_.add("peer_connect_rate_limited");
      defense_.rate_limited += 1;
      ep->close();
      return;
    }
  }
  const ConnKey key = next_conn_++;
  PeerConn conn;
  conn.endpoint = std::move(ep);
  // Local clock: taint_tail compares this against record timestamps, which
  // are local-stamped too — mixing timebases would unbound the scan.
  conn.connected_at = local_now();
  auto [it, inserted] = peers_.emplace(key, std::move(conn));
  net::Endpoint& endpoint = *it->second.endpoint;
  endpoint.on_message([this, key](net::Bytes p) { on_peer_message(key, std::move(p)); });
  endpoint.on_close([this, key] {
    auto conn_it = peers_.find(key);
    if (conn_it != peers_.end()) {
      net_.simulation().cancel(conn_it->second.reap);
      release_slot(key, conn_it->second);
      peers_.erase(conn_it);
    }
  });
  if (defense.enabled) {
    defense_.accepted += 1;
    it->second.bucket = net::TokenBucket(defense.message_rate,
                                         defense.message_burst,
                                         net_.simulation().now());
    arm_reap(it->second, key, defense.handshake_timeout);
  }
  counters_.add("peer_connections");
}

void Honeypot::arm_reap(PeerConn& conn, ConnKey key, Duration timeout) {
  auto& sim = net_.simulation();
  sim.cancel(conn.reap);  // O(1); harmless on an invalid/spent handle
  if (timeout <= 0) return;
  conn.reap = sim.schedule_in(timeout, [this, key] { reap_peer(key); });
}

void Honeypot::reap_peer(ConnKey key) {
  auto it = peers_.find(key);
  if (it == peers_.end()) return;
  counters_.add("peers_reaped");
  defense_.reaped += 1;
  drop_peer(key);
}

void Honeypot::drop_peer(ConnKey key) {
  auto it = peers_.find(key);
  if (it == peers_.end()) return;
  net_.simulation().cancel(it->second.reap);
  if (it->second.endpoint) it->second.endpoint->close();
  release_slot(key, it->second);
  peers_.erase(it);
}

void Honeypot::on_peer_message(ConnKey key, net::Bytes packet) {
  const auto& defense = config_.defense;
  if (!defense.enabled) {
    process_peer(key, std::move(packet));
    return;
  }
  auto it = peers_.find(key);
  if (it == peers_.end()) return;
  if (!it->second.bucket.try_take(net_.simulation().now())) {
    counters_.add("peer_rate_limited");
    defense_.rate_limited += 1;
    return;  // dropped, not fatal
  }
  inbox_.emplace_back(key, std::move(packet));
  if (inbox_.size() > defense.max_queue) {
    inbox_.pop_front();  // overload: shed oldest-first
    counters_.add("peer_queue_dropped");
    defense_.queue_dropped += 1;
  }
  if (!inbox_armed_) {
    inbox_armed_ = true;
    net_.simulation().schedule_in(defense.queue_service,
                                  [this] { service_inbox(); });
  }
}

void Honeypot::service_inbox() {
  inbox_armed_ = false;
  std::size_t budget = std::max<std::size_t>(1, config_.defense.queue_batch);
  while (budget-- > 0 && !inbox_.empty()) {
    auto [key, packet] = std::move(inbox_.front());
    inbox_.pop_front();
    process_peer(key, std::move(packet));
  }
  if (!inbox_.empty()) {
    inbox_armed_ = true;
    net_.simulation().schedule_in(config_.defense.queue_service,
                                  [this] { service_inbox(); });
  }
}

void Honeypot::process_peer(ConnKey key, net::Bytes packet) {
  auto it = peers_.find(key);
  if (it == peers_.end()) return;
  PeerConn& conn = it->second;

  proto::AnyMessageView msg;
  try {
    msg = proto::decode_view(proto::Channel::client_client, packet, arena_);
  } catch (const DecodeError&) {
    counters_.add("peer_decode_errors");
    defense_.malformed += 1;
    net_.note_malformed(self_);
    drop_peer(key);
    return;
  }

  if (config_.defense.enabled) {
    // A valid message is the peer's handshake/keep-alive: push the reap
    // horizon out to the idle timeout.
    arm_reap(conn, key, config_.defense.idle_timeout);
  }

  std::visit(
      [&](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, proto::HelloView>) {
          handle_hello(conn, m);
        } else if constexpr (std::is_same_v<T, proto::StartUpload>) {
          handle_start_upload(key, conn, m);
        } else if constexpr (std::is_same_v<T, proto::RequestParts>) {
          handle_request_parts(conn, m);
        } else if constexpr (std::is_same_v<T, proto::AskSharedFilesAnswerView>) {
          handle_shared_list(conn, m);
        } else if constexpr (std::is_same_v<T, proto::AskSharedFiles>) {
          // A peer may browse us; answer with the advertised list to look
          // like a normal sharer.
          proto::AskSharedFilesAnswer answer;
          answer.files.reserve(advertised_.size());
          for (const auto& f : advertised_) {
            proto::PublishedFile pf;
            pf.file = f.id;
            pf.client_id = client_id_.value();
            pf.port = net_.info(self_).port;
            pf.name = f.name;
            pf.size = f.size;
            answer.files.push_back(std::move(pf));
          }
          conn.endpoint->send(proto::encode(proto::AnyMessage{std::move(answer)}));
        } else if constexpr (std::is_same_v<T, proto::CancelTransfer>) {
          counters_.add("cancels");
        } else {
          counters_.add("unexpected_peer_messages");
        }
      },
      msg);
}

void Honeypot::handle_hello(PeerConn& conn, const proto::HelloView& msg) {
  if (config_.integrity_defense && conn.hello_seen &&
      truncate_user(msg.user) != conn.user) {
    // A second HELLO on the same connection under a different user hash is
    // a replay: one client process has exactly one persistent user hash, so
    // rotating it mid-connection cannot be benign (and node recycling makes
    // any cross-connection IP heuristic unsafe — this rule has zero false
    // positives). Record the attempt tainted and answer nothing.
    ++integrity_.replayed_hellos_rejected;
    counters_.add("replayed_hellos_rejected");
    conn.taint |= logbook::kFlagProvReplayed;
    // The first HELLO of the episode looked benign when it arrived; now
    // that the rotation proves a replayer, taint everything this
    // connection already logged.
    taint_tail(conn, logbook::kFlagProvReplayed);
    conn.user = truncate_user(msg.user);
    append_record(conn, logbook::QueryType::hello, nullptr);
    return;
  }
  // Stage-1 anonymisation happens here, before the record exists.
  conn.peer_hash = ip_anon_.anonymize(net_.info(conn.endpoint->remote_node()).ip);
  conn.user = truncate_user(msg.user);
  conn.client_id = msg.client_id;
  conn.port = msg.port;
  const auto tags = arena_.of(msg.tags);
  if (const auto* name = proto::find_string_tag(tags, proto::kTagName)) {
    conn.name_ref = intern_name(std::string(*name));
  }
  if (const auto* version = proto::find_u32_tag(tags, proto::kTagVersion)) {
    conn.version = *version;
  }
  conn.hello_seen = true;

  append_record(conn, logbook::QueryType::hello, nullptr);

  proto::HelloAnswer answer;
  answer.user = user_hash_;
  answer.client_id = client_id_.value();
  answer.port = net_.info(self_).port;
  answer.tags = {proto::Tag::string_tag(proto::kTagName, config_.name),
                 proto::Tag::u32_tag(proto::kTagVersion, config_.client_version)};
  if (server_) {
    answer.server_ip = net_.info(server_->node).ip.value();
    answer.server_port = server_->port;
  }
  conn.endpoint->send(proto::encode(proto::AnyMessage{std::move(answer)}));

  if (config_.harvest_shared_lists) {
    conn.endpoint->send(proto::encode(proto::AnyMessage{proto::AskSharedFiles{}}));
  }
}

void Honeypot::handle_start_upload(ConnKey key, PeerConn& conn,
                                   const proto::StartUpload& msg) {
  if (!conn.hello_seen) {
    counters_.add("start_upload_without_hello");
  }
  std::uint8_t taint = 0;
  if (config_.integrity_defense && !advertised_ids_.contains(msg.file)) {
    // We never advertised this hash, so no honest index can have steered
    // the peer here for it: the query exists because a server invented a
    // source record. Log it (the operator audits quarantined evidence) but
    // taint it out of the published dataset.
    ++integrity_.fabricated_sources_detected;
    counters_.add("fabricated_upload_queries");
    taint = logbook::kFlagProvFabricated;
  }
  append_record(conn, logbook::QueryType::start_upload, &msg.file, taint);
  if (conn.uploading) {
    // Additional wanted files on an already-granted connection: the slot
    // covers the connection, just log the query (done above).
    return;
  }
  // Default configuration grants everyone immediately — keeping peers out
  // of a queue maximises the queries we observe. With a slot cap the
  // honeypot behaves like a loaded client and queues the peer.
  if (config_.max_upload_slots == 0 || slots_used_ < config_.max_upload_slots) {
    grant_slot(key, conn);
    return;
  }
  if (!conn.queued) {
    conn.queued = true;
    upload_queue_.push_back(key);
  }
  const auto rank = static_cast<std::uint32_t>(upload_queue_.size());
  conn.endpoint->send(proto::encode(proto::AnyMessage{proto::QueueRank{rank}}));
  counters_.add("queued_peers");
}

void Honeypot::grant_slot(ConnKey key, PeerConn& conn) {
  (void)key;
  conn.uploading = true;
  conn.queued = false;
  ++slots_used_;
  conn.endpoint->send(proto::encode(proto::AnyMessage{proto::AcceptUpload{}}));
}

void Honeypot::release_slot(ConnKey key, PeerConn& conn) {
  (void)key;
  if (!conn.uploading) return;
  conn.uploading = false;
  if (slots_used_ > 0) --slots_used_;
  // Promote the next queued connection that is still alive.
  while (!upload_queue_.empty()) {
    const auto next = upload_queue_.front();
    upload_queue_.pop_front();
    auto it = peers_.find(next);
    if (it == peers_.end() || !it->second.queued || !it->second.endpoint) {
      continue;
    }
    grant_slot(next, it->second);
    counters_.add("promoted_from_queue");
    break;
  }
}

void Honeypot::handle_request_parts(PeerConn& conn, const proto::RequestParts& msg) {
  append_record(conn, logbook::QueryType::request_part, &msg.file);
  if (config_.strategy == ContentStrategy::no_content) {
    return;  // silence: the downloader will time out
  }
  // random-content: answer every non-empty range with random bytes. Only a
  // small sample of the block is materialized; the transport accounts for
  // the full wire size (send_sized), so timing matches a real upload.
  auto& rng = net_.simulation().rng();
  for (std::size_t i = 0; i < proto::kRequestPartRanges; ++i) {
    if (msg.end[i] <= msg.begin[i]) continue;
    const std::uint32_t block = msg.end[i] - msg.begin[i];
    proto::SendingPart part;
    part.file = msg.file;
    part.begin = msg.begin[i];
    part.end = msg.end[i];
    part.data.resize(std::min<std::uint32_t>(block, 32));
    for (auto& b : part.data) {
      b = static_cast<std::uint8_t>(rng());
    }
    conn.endpoint->send_sized(proto::encode(proto::AnyMessage{std::move(part)}),
                              block + kSendingPartOverhead);
    counters_.add("blocks_sent");
  }
}

void Honeypot::handle_shared_list(PeerConn& conn,
                                  const proto::AskSharedFilesAnswerView& msg) {
  counters_.add("shared_lists_received");
  if (config_.integrity_defense) {
    // Our advertised files are fakes the manager invented: no honest peer
    // can really hold them, so a shared list claiming several of them is
    // forged flattery designed to pollute the observed-files statistics.
    std::size_t matches = 0;
    for (const auto& f : arena_.of(msg.files)) {
      if (advertised_ids_.contains(f.file)) ++matches;
    }
    if (matches >= std::max<std::size_t>(1, config_.forged_list_min_matches)) {
      ++integrity_.forged_lists_rejected;
      counters_.add("forged_lists_rejected");
      conn.taint |= logbook::kFlagProvForged;
      // The HELLO that opened this exchange looked benign; the forged list
      // proves the whole connection adversarial.
      taint_tail(conn, logbook::kFlagProvForged);
      return;  // reject: no observed-files/greedy adoption from a forger
    }
  }
  for (const auto& f : arena_.of(msg.files)) {
    if (observed_files_.try_emplace(f.file, f.size).second) {
      observed_bytes_ += f.size;
      // Retained past the packet's lifetime: copy out of the view.
      observed_names_.push_back(std::string(f.name));
    }
    if (config_.greedy && in_harvest_window() &&
        advertised_.size() < config_.greedy_max_files &&
        !advertised_ids_.contains(f.file)) {
      add_advertised(AdvertisedFile{f.file, std::string(f.name), f.size});
    }
  }
  (void)conn;
}

void Honeypot::append_record(const PeerConn& conn, logbook::QueryType type,
                             const FileId* file, std::uint8_t taint) {
  logbook::LogRecord r;
  // The honeypot stamps what its own wall clock claims — identical to true
  // sim time until a clock fault touches this host. The merge layer earns
  // back the true ordering from clock observations.
  r.timestamp = local_now();
  r.peer = conn.peer_hash;
  r.user = conn.user;
  r.client_version = conn.version;
  r.honeypot = config_.id;
  r.peer_port = conn.port;
  r.name_ref = conn.name_ref;
  r.type = type;
  r.flags = static_cast<std::uint8_t>(taint | conn.taint);
  if (ClientId(conn.client_id).is_high()) {
    r.flags |= logbook::kFlagHighId;
  }
  if (file != nullptr) {
    r.file = *file;
    r.flags |= logbook::kFlagHasFile;
  }
  if (r.tainted()) {
    ++integrity_.records_quarantined;
    counters_.add("records_quarantined");
  }
  // The query happened either way: heartbeat and per-type counters reflect
  // observed traffic; only the LOG is subject to the budget gate.
  heartbeat_ = net_.simulation().now();
  counters_.add(std::string(logbook::to_string(type)));
  // Birth certificate for the conservation ledger: every stamped record
  // counts, whatever disposition it meets below. Unconditional (one add,
  // no RNG, no events), so audited and unaudited runs are bit-identical.
  ++records_born_;
  if (!admit_record(r.user)) return;
  if (config_.audit_selftest_drop != 0 &&
      ++audit_selftest_tick_ % config_.audit_selftest_drop == 0) {
    // Deliberate silent loss (see HoneypotConfig::audit_selftest_drop):
    // born above, no disposition — an audited run must now fail.
    return;
  }
  if (config_.stream_records) {
    // Fold instead of retain: the running count + fingerprint are the
    // evidence a bench campaign keeps of its dataset.
    ++records_streamed_;
    auto mix = [this](std::uint64_t v) {
      stream_fingerprint_ ^= v;
      stream_fingerprint_ *= 1099511628211ull;
    };
    std::uint64_t t_bits = 0;
    static_assert(sizeof(r.timestamp) == 8);
    std::memcpy(&t_bits, &r.timestamp, 8);
    mix(t_bits);
    mix(r.peer);
    mix(r.user);
    mix(static_cast<std::uint64_t>(r.honeypot));
    mix(static_cast<std::uint64_t>(r.type));
    return;
  }
  log_.records.push_back(r);
}

FileId Honeypot::canary_file() const {
  // Deterministic per-honeypot hash nobody ever advertises (the scenario's
  // catalog ids come from dedicated RNG splits with different high words).
  return FileId::from_words(0xEDC0FFEE00000000ull | config_.id,
                            0x0000000CA7A12E5ull);
}

void Honeypot::run_self_probe() {
  if (status_ != Status::connected || !server_ep_ || !server_ep_->open()) return;
  if (probe_pending_) return;  // previous probe still awaiting its timeout
  const bool canary = (probe_seq_++ % 2) == 1;
  if (canary) {
    probe_await_canary_ = true;
    probe_payload_ =
        proto::encode(proto::AnyMessage{proto::GetSources{canary_file()}});
  } else {
    if (advertised_.empty()) {
      --probe_seq_;  // nothing to verify yet; keep the alternation phase
      return;
    }
    const auto& f = advertised_[probe_cursor_++ % advertised_.size()];
    probe_file_ = f.id;
    probe_await_search_ = true;
    probe_payload_ =
        proto::encode(proto::AnyMessage{proto::SearchRequest{f.name}});
  }
  // The encoded probe is kept verbatim for timeout retransmits.
  server_ep_->send(probe_payload_);
  probe_pending_ = true;
  probe_retries_left_ = config_.self_probe_retries;
  ++integrity_.probes_sent;
  counters_.add("self_probes_sent");
  probe_timeout_event_ = net_.simulation().schedule_in(
      config_.self_probe_timeout, [this] { on_probe_timeout(); });
}

void Honeypot::on_probe_timeout() {
  if (!probe_pending_) return;
  if (probe_retries_left_ > 0 && status_ == Status::connected && server_ep_ &&
      server_ep_->open()) {
    // Re-send the identical probe instead of scoring a miss: under bursty
    // loss the request (or its reply) often just vanished. The earlier
    // copy may still be answered, so widen the duplicate-reply window.
    --probe_retries_left_;
    ++probe_retransmits_;
    ++probe_dups_expected_;
    counters_.add("probe_retransmits");
    server_ep_->send(probe_payload_);
    probe_timeout_event_ = net_.simulation().schedule_in(
        config_.self_probe_timeout, [this] { on_probe_timeout(); });
    return;
  }
  probe_result(false);
}

void Honeypot::probe_result(bool confirmed) {
  if (!probe_pending_) return;
  probe_pending_ = probe_await_search_ = probe_await_canary_ = false;
  net_.simulation().cancel(probe_timeout_event_);
  if (confirmed) {
    ++integrity_.probes_confirmed;
    counters_.add("self_probes_confirmed");
  } else {
    ++integrity_.probes_missed;
    counters_.add("self_probes_missed");
    // Self-heal: the server lost (or lied away) our advertisement; push the
    // full list again immediately instead of waiting for the keep-alive.
    if (status_ == Status::connected) send_offer();
  }
  if (probe_sink_) probe_sink_(confirmed);
}

void Honeypot::taint_tail(const PeerConn& conn, std::uint8_t taint) {
  // Bounded backwards scan: a connection's records are a suffix slice no
  // older than its accept time (records append in time order).
  for (auto it = log_.records.rbegin(); it != log_.records.rend(); ++it) {
    if (it->timestamp < conn.connected_at) break;
    if (it->peer != conn.peer_hash) continue;
    if ((it->flags & taint) != 0) continue;
    const bool fresh = !it->tainted();
    it->flags |= taint;
    if (fresh) {
      ++integrity_.records_quarantined;
      counters_.add("records_quarantined");
    }
  }
}

std::uint16_t Honeypot::intern_name(const std::string& name) {
  auto it = name_cache_.find(name);
  if (it != name_cache_.end()) return it->second;
  const auto ref = log_.intern(name);
  name_cache_.emplace(name, ref);
  return ref;
}

bool Honeypot::in_harvest_window() const {
  if (status_ != Status::connected) return false;
  return net_.simulation().now() - started_at_ <= config_.greedy_harvest_window;
}

std::uint64_t Honeypot::effective_disk_quota() const {
  const std::uint64_t base = config_.budget.disk_quota_bytes;
  if (!disk_full_active_) return base;
  if (base == 0) {
    // No configured quota to shrink: the episode freezes the disk at the
    // fill level observed when it began.
    return std::max<std::uint64_t>(1, disk_full_frozen_quota_);
  }
  return std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(static_cast<double>(base) *
                                    disk_full_magnitude_));
}

std::uint64_t Honeypot::effective_mem_budget() const {
  const std::uint64_t base = config_.budget.mem_budget_records;
  if (!mem_pressure_active_) return base;
  if (base == 0) {
    return std::max<std::uint64_t>(1, mem_frozen_budget_);
  }
  return std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(static_cast<double>(base) *
                                    mem_pressure_magnitude_));
}

bool Honeypot::admit_record(std::uint64_t user) {
  const auto& b = config_.budget;
  if (b.policy == budget::DegradePolicy::off) return true;
  const std::uint64_t quota = effective_disk_quota();
  const std::uint64_t mem = effective_mem_budget();
  const bool disk_over = quota != 0 && spool_resident_bytes_ > quota;
  const bool mem_over = mem != 0 && unspooled_tail() >= mem;
  if (!disk_over && !mem_over) return true;
  if (b.shed_user_word != 0 && user == b.shed_user_word) {
    // Low-priority record while over budget: shed at the source, declared.
    enter_degraded(disk_over ? budget::DegradeReason::disk_quota
                             : budget::DegradeReason::mem_budget);
    ++degrade_.records_shed;
    counters_.add("records_shed");
    return false;
  }
  // Evidence record: always kept. A full record buffer emits backpressure —
  // an early cut pushes the tail downstream (and may compact) before this
  // record lands; a full disk is soft for evidence (overrun counted).
  if (mem_over) {
    enter_degraded(budget::DegradeReason::mem_budget);
    ++degrade_.backpressure_cuts;
    counters_.add("backpressure_cuts");
    spool_now();
  }
  if (disk_over) {
    enter_degraded(budget::DegradeReason::disk_quota);
    ++degrade_.quota_overruns;
  }
  return true;
}

void Honeypot::maybe_compact() {
  const auto& b = config_.budget;
  if (b.policy == budget::DegradePolicy::off) return;
  const std::uint64_t quota = effective_disk_quota();
  if (quota == 0 || spool_resident_bytes_ <= quota) return;
  enter_degraded(disk_full_active_ ? budget::DegradeReason::fault_disk_full
                                   : budget::DegradeReason::disk_quota);
  if (pending_chunks_.empty()) return;
  // Coalesce the maximal suffix of chunks no sink has ever received (the
  // store cannot hold their seqs, so rebuilding them is safe) from the
  // current epoch. Their log ranges are contiguous and end exactly at the
  // spooled mark, so shedding from chunk and log together keeps the local
  // log and the spool byte-for-byte consistent.
  std::size_t first = pending_chunks_.size();
  const std::uint32_t epoch = pending_chunks_.back().epoch;
  while (first > 0 && !pending_meta_[first - 1].delivered &&
         pending_chunks_[first - 1].epoch == epoch) {
    --first;
  }
  const std::size_t n = pending_chunks_.size() - first;
  if (n == 0) return;
  const std::size_t lo = pending_meta_[first].rec_begin;
  const std::size_t hi = spooled_mark_;
  std::size_t removed = 0;
  if (b.shed_user_word != 0 && hi > lo) {
    const auto begin = log_.records.begin() + static_cast<std::ptrdiff_t>(lo);
    const auto end = log_.records.begin() + static_cast<std::ptrdiff_t>(hi);
    const auto keep_end =
        std::remove_if(begin, end, [&](const logbook::LogRecord& r) {
          return r.user == b.shed_user_word;
        });
    removed = static_cast<std::size_t>(end - keep_end);
    if (removed > 0) {
      log_.records.erase(keep_end, end);
    }
  }
  if (n < 2 && removed == 0) return;  // nothing to coalesce, nothing shed
  spooled_mark_ -= removed;
  if (removed > 0) {
    degrade_.records_shed += removed;
    counters_.add("records_shed", removed);
  }
  logbook::LogChunk merged;
  merged.honeypot = config_.id;
  merged.epoch = epoch;
  // Reuse the suffix's smallest seq: never delivered, so no dedup hazard;
  // the seqs above it simply become gaps (dedup is exact-match).
  merged.seq = pending_chunks_[first].seq;
  merged.name_base = pending_chunks_[first].name_base;
  for (std::size_t i = first; i < pending_chunks_.size(); ++i) {
    merged.names.insert(merged.names.end(), pending_chunks_[i].names.begin(),
                        pending_chunks_[i].names.end());
  }
  merged.records.assign(
      log_.records.begin() + static_cast<std::ptrdiff_t>(lo),
      log_.records.begin() + static_cast<std::ptrdiff_t>(spooled_mark_));
  merged.checksum = logbook::chunk_checksum(merged);
  std::uint64_t old_cost = 0;
  for (std::size_t i = first; i < pending_chunks_.size(); ++i) {
    old_cost += logbook::chunk_cost_bytes(pending_chunks_[i]);
  }
  const std::uint64_t new_cost = logbook::chunk_cost_bytes(merged);
  pending_chunks_.resize(first);
  pending_meta_.resize(first);
  pending_chunks_.push_back(std::move(merged));
  pending_meta_.push_back({false, false, lo, spooled_mark_});
  spool_resident_bytes_ =
      old_cost >= spool_resident_bytes_ + new_cost
          ? new_cost
          : spool_resident_bytes_ - old_cost + new_cost;
  ++degrade_.compaction_runs;
  degrade_.chunks_compacted += n;
  if (old_cost > new_cost) {
    degrade_.compaction_bytes_reclaimed += old_cost - new_cost;
  }
  counters_.add("compaction_runs");
}

void Honeypot::set_resource_fault(budget::ResourceFault which, bool active,
                                  double magnitude) {
  if (config_.budget.policy == budget::DegradePolicy::off) return;
  switch (which) {
    case budget::ResourceFault::disk_full: {
      disk_full_active_ = active;
      disk_full_magnitude_ = magnitude;
      if (active) {
        if (config_.budget.disk_quota_bytes == 0) {
          disk_full_frozen_quota_ =
              std::max<std::uint64_t>(1, spool_resident_bytes_);
        }
        enter_degraded(budget::DegradeReason::fault_disk_full);
        maybe_compact();  // the quota just dropped: react immediately
      }
      break;
    }
    case budget::ResourceFault::disk_slow: {
      disk_slow_active_ = active;
      disk_slow_factor_ = active ? std::max(1.0, magnitude) : 1.0;
      if (active) enter_degraded(budget::DegradeReason::fault_disk_slow);
      break;
    }
    case budget::ResourceFault::mem_pressure: {
      mem_pressure_active_ = active;
      mem_pressure_magnitude_ = magnitude;
      if (active) {
        if (config_.budget.mem_budget_records == 0) {
          mem_frozen_budget_ = std::max<std::uint64_t>(1, unspooled_tail());
        }
        session_ceiling_active_ =
            config_.budget.session_ceiling != 0
                ? config_.budget.session_ceiling
                : std::max<std::size_t>(1, peers_.size());
        enter_degraded(budget::DegradeReason::fault_mem_pressure);
      } else {
        session_ceiling_active_ = 0;
      }
      break;
    }
  }
  if (!active) update_degrade_state();
}

void Honeypot::enter_degraded(budget::DegradeReason reason) {
  if (degraded_) return;
  degraded_ = true;
  ++degrade_.degrade_enters;
  counters_.add("degrade_enters");
  if (degrade_sink_) degrade_sink_(true, reason);
}

void Honeypot::update_degrade_state() {
  if (!degraded_) return;
  if (disk_full_active_ || disk_slow_active_ || mem_pressure_active_) return;
  const std::uint64_t quota = effective_disk_quota();
  if (quota != 0 && spool_resident_bytes_ > quota) return;
  const std::uint64_t mem = effective_mem_budget();
  if (mem != 0 && unspooled_tail() >= mem) return;
  degraded_ = false;
  ++degrade_.degrade_exits;
  counters_.add("degrade_exits");
  if (degrade_sink_) degrade_sink_(false, budget::DegradeReason::none);
}

}  // namespace edhp::honeypot
