#pragma once
// Configuration types for honeypots and measurements.

#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/ids.hpp"

namespace edhp::honeypot {

/// How a honeypot answers REQUEST-PART queries (Section IV.B of the paper).
enum class ContentStrategy : std::uint8_t {
  no_content,      ///< never answer part requests
  random_content,  ///< answer with random bytes
};

[[nodiscard]] std::string_view to_string(ContentStrategy s);

/// A fake file the manager orders a honeypot to advertise: the manager
/// specifies name, size and fileID (Section III.A).
struct AdvertisedFile {
  FileId id;
  std::string name;
  std::uint32_t size = 0;

  bool operator==(const AdvertisedFile&) const = default;
};

/// Per-honeypot configuration, assembled by the manager at launch.
struct HoneypotConfig {
  std::uint16_t id = 0;
  std::string name = "edhp";          ///< client name shown in handshakes
  std::uint32_t client_version = 0x3C;  ///< presented protocol version
  ContentStrategy strategy = ContentStrategy::no_content;

  /// Ask every contacting peer for its shared-file list (used for the
  /// distinct-files statistics and by the greedy strategy).
  bool harvest_shared_lists = true;

  /// Greedy mode: adopt harvested files into the advertised list during the
  /// harvest window (the greedy measurement's first day).
  bool greedy = false;
  Duration greedy_harvest_window = days(1);
  std::size_t greedy_max_files = 100000;

  /// Period of the OFFER-FILES keep-alive to the server.
  Duration offer_keepalive = minutes(30);

  /// Upload slots granted concurrently; 0 = unlimited (the paper's
  /// honeypots accept everyone to maximise observed queries, but a
  /// realistic-client disguise can enable queueing).
  std::size_t max_upload_slots = 0;

  /// Stage-1 anonymisation salt, shared measurement-wide by the manager.
  std::string salt = "edhp-measurement";
};

}  // namespace edhp::honeypot
