#pragma once
// Configuration types for honeypots and measurements.

#include <cstdint>
#include <string>
#include <vector>

#include "common/budget.hpp"
#include "common/clock.hpp"
#include "common/ids.hpp"
#include "logbook/spool.hpp"
#include "net/admission.hpp"

namespace edhp::honeypot {

/// Server-reconnect policy a honeypot applies on its own, below the
/// manager's slower relaunch loop: capped exponential backoff with
/// deterministic jitter (derived from honeypot id + attempt, never from an
/// RNG stream, so enabling retries cannot shift unrelated draws). After
/// `max_retries` failed attempts in one outage episode the honeypot reports
/// Status::dead and escalation moves to the manager's watchdog.
struct RetryPolicy {
  bool enabled = false;
  Duration base = 30.0;         ///< first-retry delay
  Duration cap = minutes(30);   ///< backoff ceiling
  std::size_t max_retries = 6;  ///< per outage episode
  double jitter = 0.1;          ///< +/- fraction applied deterministically
};

/// How a honeypot answers REQUEST-PART queries (Section IV.B of the paper).
enum class ContentStrategy : std::uint8_t {
  no_content,      ///< never answer part requests
  random_content,  ///< answer with random bytes
};

[[nodiscard]] std::string_view to_string(ContentStrategy s);

/// A fake file the manager orders a honeypot to advertise: the manager
/// specifies name, size and fileID (Section III.A).
struct AdvertisedFile {
  FileId id;
  std::string name;
  std::uint32_t size = 0;

  bool operator==(const AdvertisedFile&) const = default;
};

/// Per-honeypot configuration, assembled by the manager at launch.
struct HoneypotConfig {
  std::uint16_t id = 0;
  std::string name = "edhp";          ///< client name shown in handshakes
  std::uint32_t client_version = 0x3C;  ///< presented protocol version
  ContentStrategy strategy = ContentStrategy::no_content;

  /// Ask every contacting peer for its shared-file list (used for the
  /// distinct-files statistics and by the greedy strategy).
  bool harvest_shared_lists = true;

  /// Greedy mode: adopt harvested files into the advertised list during the
  /// harvest window (the greedy measurement's first day).
  bool greedy = false;
  Duration greedy_harvest_window = days(1);
  std::size_t greedy_max_files = 100000;

  /// Period of the OFFER-FILES keep-alive to the server.
  Duration offer_keepalive = minutes(30);

  /// Upload slots granted concurrently; 0 = unlimited (the paper's
  /// honeypots accept everyone to maximise observed queries, but a
  /// realistic-client disguise can enable queueing).
  std::size_t max_upload_slots = 0;

  /// Stage-1 anonymisation salt, shared measurement-wide by the manager.
  std::string salt = "edhp-measurement";

  /// Self-reconnect policy (disabled by default: a connection loss reports
  /// Status::dead immediately, the pre-fault-subsystem behaviour).
  RetryPolicy retry;

  /// Crash-safe log spooling (disabled by default: the whole in-memory log
  /// survives a crash, the pre-fault-subsystem behaviour).
  logbook::SpoolConfig spool;

  /// Admission control against hostile peers (disabled by default; the
  /// manager copies its own defense config here at launch, like the salt).
  net::DefenseConfig defense;

  /// Hard fd-limit analog on concurrent peer connections, enforced even
  /// with the defense layer disabled; far above benign concurrency.
  std::size_t hard_peer_cap = 2048;

  /// Resource budgets + degradation policy (all ceilings default 0 =
  /// unlimited: the pre-budget data plane, bit-for-bit). The scenario fills
  /// these from ChaosConfig; the manager's launch path leaves them alone.
  budget::BudgetConfig budget;

  /// Advertise-and-verify self-probes (0 = off, the default). Every period
  /// the honeypot alternates between (a) searching the server for one of its
  /// own advertised files — the reply must contain that file id — and (b) a
  /// canary GET-SOURCES for a hash it never advertised — any non-empty reply
  /// proves the server fabricates sources. A probe miss triggers an
  /// immediate re-advertise (self-heal) and is reported to the manager
  /// through the probe sink for server health scoring.
  /// Audit self-test fault (0 = off, always off outside the conservation
  /// auditor's negative tests): silently destroy every Nth admitted record
  /// AFTER the shed/stream accounting points, a deliberate unaccounted loss
  /// the audit ledger must flag. Copied from ChaosConfig by the scenarios.
  std::uint32_t audit_selftest_drop = 0;

  Duration self_probe_period = 0;
  Duration self_probe_timeout = minutes(2);
  /// Timeout retransmits allowed per probe before a miss is scored (0 = the
  /// historical one-shot probe). Late duplicate replies from earlier copies
  /// are recognized and suppressed, so bursty UDP loss costs retries, not
  /// false "server is lying" verdicts.
  std::size_t self_probe_retries = 0;

  /// Record-level integrity defenses (provenance tainting + forged-list
  /// rejection). Off by default: greedy honeypots adopt harvested catalog
  /// files into their own advertised list, so an honest peer sharing the
  /// same catalog files would trip the forged-list detector. The Byzantine
  /// campaigns enable this on the distributed fleet only.
  bool integrity_defense = false;
  /// A shared-file list claiming at least this many of the honeypot's own
  /// advertised hashes is treated as forged (honeypot files are fakes nobody
  /// else can legitimately have).
  std::size_t forged_list_min_matches = 2;

  /// Million-peer bench mode: fold every admitted record into a running
  /// count + FNV-1a fingerprint instead of appending it to the in-memory
  /// log, so the footprint stops growing with observed traffic. Intended
  /// for chaos-off campaigns only (an empty log means spooling and
  /// publication have nothing to ship); the dataset campaigns keep it off.
  bool stream_records = false;
};

}  // namespace edhp::honeypot
