#include "honeypot/manager.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "anonymize/name_anonymizer.hpp"
#include "anonymize/renumber.hpp"
#include "logbook/log_io.hpp"
#include "proto/udp_messages.hpp"

namespace edhp::honeypot {

Manager::Manager(net::Network& network, ManagerConfig config)
    : net_(network), config_(std::move(config)) {}

Manager::~Manager() { stop(); }

std::size_t Manager::launch(HoneypotConfig config, net::NodeId host,
                            const ServerRef& server) {
  config.salt = config_.salt;
  config.retry = config_.retry;
  config.spool = config_.spool;
  config.defense = config_.defense;
  if (config.id == 0) {
    config.id = static_cast<std::uint16_t>(fleet_.size());
  }
  Slot slot;
  slot.honeypot = std::make_unique<Honeypot>(net_, host, std::move(config));
  slot.server = server;
  if (config_.spool.enabled) {
    // Gathering channel: ingest each chunk (deduping re-sends) and
    // acknowledge after the transfer round-trip, so a crash inside the ack
    // window exercises the at-least-once path.
    Honeypot* hp = slot.honeypot.get();
    hp->set_spool_sink([this, hp](const logbook::LogChunk& chunk) {
      spool_store_.set_header(chunk.honeypot, hp->log().header);
      spool_store_.accept(chunk);
      const auto seq = chunk.seq;
      net_.simulation().schedule_in(config_.spool.ack_delay,
                                    [hp, seq] { hp->ack_spooled(seq); });
    });
  }
  slot.honeypot->connect_to_server(server);
  fleet_.push_back(std::move(slot));
  return fleet_.size() - 1;
}

void Manager::set_backup_servers(std::vector<ServerRef> backups) {
  backups_ = std::move(backups);
  next_backup_ = 0;
}

void Manager::survey_servers(std::vector<ServerRef> candidates,
                             net::NodeId probe_node, Duration timeout,
                             SurveyCallback done) {
  struct Survey {
    std::vector<ServerRef> candidates;
    std::vector<std::optional<proto::ServStatResponse>> answers;
  };
  auto survey = std::make_shared<Survey>();
  survey->candidates = std::move(candidates);
  survey->answers.resize(survey->candidates.size());

  net_.listen_datagram(probe_node, [this, survey, probe_node](net::NodeId,
                                                              net::Bytes datagram) {
    proto::AnyUdpMessage msg;
    try {
      msg = proto::decode_udp(datagram);
    } catch (const DecodeError&) {
      net_.note_malformed(probe_node);
      return;
    }
    if (const auto* res = std::get_if<proto::ServStatResponse>(&msg)) {
      // The challenge encodes the candidate index.
      if (res->challenge < survey->answers.size()) {
        survey->answers[res->challenge] = *res;
      }
    }
  });

  for (std::size_t i = 0; i < survey->candidates.size(); ++i) {
    proto::ServStatRequest req;
    req.challenge = static_cast<std::uint32_t>(i);
    net_.send_datagram(probe_node, survey->candidates[i].node,
                       proto::encode_udp(req));
  }

  net_.simulation().schedule_in(
      timeout, [this, survey, probe_node, done = std::move(done)] {
        net_.stop_listening_datagram(probe_node);
        std::vector<ServerSurveyEntry> out;
        for (std::size_t i = 0; i < survey->candidates.size(); ++i) {
          if (!survey->answers[i]) continue;
          out.push_back(ServerSurveyEntry{survey->candidates[i],
                                          survey->answers[i]->users,
                                          survey->answers[i]->files});
        }
        std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
          return a.users > b.users;
        });
        done(std::move(out));
      });
}

void Manager::reassign(std::size_t index, const ServerRef& server) {
  auto& slot = fleet_.at(index);
  slot.server = server;
  slot.honeypot->disconnect();
  slot.honeypot->connect_to_server(server);
  if (!slot.honeypot->advertised().empty()) {
    // Re-push the current list once the new login completes: advertise()
    // re-sends OFFER-FILES when connected, and the keep-alive covers the
    // race where login is still in flight.
    slot.honeypot->advertise(
        std::vector<AdvertisedFile>(slot.honeypot->advertised()));
  } else if (!slot.files.empty()) {
    slot.honeypot->advertise(slot.files);
  }
}

void Manager::advertise(std::size_t index, std::vector<AdvertisedFile> files) {
  auto& slot = fleet_.at(index);
  slot.files = files;
  slot.honeypot->advertise(std::move(files));
}

void Manager::advertise_all(std::vector<AdvertisedFile> files) {
  for (std::size_t i = 0; i < fleet_.size(); ++i) {
    advertise(i, files);
  }
}

void Manager::start() {
  if (poll_timer_) return;
  poll_timer_ = std::make_unique<sim::PeriodicTimer>(
      net_.simulation(), config_.status_poll, [this] { poll(); });
  poll_timer_->start();
}

void Manager::stop() {
  poll_timer_.reset();
  for (auto& slot : fleet_) {
    if (config_.spool.enabled) {
      // Final gathering: flush the unspooled tail so the store holds the
      // complete log of every honeypot that survived to the end.
      slot.honeypot->spool_now();
    }
    slot.honeypot->disconnect();
  }
}

Duration Manager::relaunch_backoff(std::size_t failures) const {
  if (config_.relaunch_backoff_base <= 0 || failures == 0) return 0;
  const double raw = config_.relaunch_backoff_base *
                     std::pow(2.0, static_cast<double>(failures - 1));
  return std::min(raw, config_.relaunch_backoff_cap);
}

bool Manager::covers(const std::vector<AdvertisedFile>& advertised,
                     const std::vector<AdvertisedFile>& ordered) {
  std::unordered_set<FileId> have;
  have.reserve(advertised.size());
  for (const auto& f : advertised) {
    have.insert(f.id);
  }
  return std::all_of(ordered.begin(), ordered.end(),
                     [&have](const AdvertisedFile& f) {
                       return have.contains(f.id);
                     });
}

void Manager::repair_advertised(Slot& slot) {
  // Ordered files first, then everything the honeypot grew on its own
  // (greedy harvest) that the order does not already contain.
  std::vector<AdvertisedFile> full = slot.files;
  std::unordered_set<FileId> ordered_ids;
  ordered_ids.reserve(full.size());
  for (const auto& f : full) {
    ordered_ids.insert(f.id);
  }
  for (const auto& f : slot.honeypot->advertised()) {
    if (!ordered_ids.contains(f.id)) {
      full.push_back(f);
    }
  }
  ++recovery_.re_advertise_repairs;
  slot.honeypot->advertise(std::move(full));
}

void Manager::escalate(std::size_t index) {
  auto& slot = fleet_.at(index);
  slot.consecutive_failures = 0;
  slot.next_attempt_at = 0;
  if (backups_.empty()) {
    reassign(index, slot.server);  // reconnect in place
    return;
  }
  ++recovery_.escalations;
  reassign(index, backups_[next_backup_++ % backups_.size()]);
}

void Manager::poll() {
  if (!config_.auto_relaunch) return;
  const Time now = net_.simulation().now();
  for (std::size_t i = 0; i < fleet_.size(); ++i) {
    auto& slot = fleet_[i];
    auto& hp = *slot.honeypot;
    const Status status = hp.status();

    if (status == Status::connected) {
      if (slot.down_since >= 0) {
        recovery_.total_downtime += now - slot.down_since;
        slot.down_since = -1.0;
        slot.consecutive_failures = 0;
        slot.next_attempt_at = 0;
      }
      if (config_.heartbeat_timeout > 0 &&
          now - hp.last_heartbeat() > config_.heartbeat_timeout) {
        // Zombie session: status says connected but nothing has happened
        // for longer than any keep-alive period allows.
        ++recovery_.heartbeat_escalations;
        escalate(i);
        continue;
      }
      // A honeypot that died mid-OFFER (or whose advertise order was lost
      // while it was dead) is missing part of its ordered list: repair it.
      if (!slot.files.empty() && !covers(hp.advertised(), slot.files)) {
        repair_advertised(slot);
      }
      continue;
    }

    if (status != Status::dead) {
      // connecting/idle: the honeypot is handling itself (login in flight
      // or self-retrying); only interfere when its heartbeat went stale.
      if (config_.heartbeat_timeout > 0 && status == Status::connecting &&
          now - hp.last_heartbeat() > config_.heartbeat_timeout) {
        ++recovery_.heartbeat_escalations;
        escalate(i);
      }
      continue;
    }

    // Dead. Gate relaunch attempts behind the backoff so a honeypot whose
    // server is down does not get reconnected (and recounted) every tick.
    if (slot.down_since < 0) {
      slot.down_since = now;
    }
    if (now < slot.next_attempt_at) {
      ++recovery_.deferred;
      continue;
    }
    if (config_.escalate_after > 0 && !backups_.empty() &&
        slot.consecutive_failures >= config_.escalate_after) {
      escalate(i);
      continue;
    }
    ++relaunches_;
    ++slot.consecutive_failures;
    slot.next_attempt_at = now + relaunch_backoff(slot.consecutive_failures);
    // Relaunch: reconnect to the assigned server and re-advertise the file
    // list previously ordered (plus anything the honeypot grew itself in
    // greedy mode, which it kept).
    hp.connect_to_server(slot.server);
    if (!slot.files.empty() && !covers(hp.advertised(), slot.files)) {
      repair_advertised(slot);
    }
  }
}

RecoveryStats Manager::recovery_stats() const {
  RecoveryStats out = recovery_;
  out.relaunches = relaunches_;
  out.chunks_accepted = spool_store_.chunks_accepted();
  out.chunks_duplicate = spool_store_.chunks_duplicate();
  out.records_spooled = spool_store_.records_stored();
  const Time now = net_.simulation().now();
  std::uint64_t kept = 0;
  for (const auto& slot : fleet_) {
    out.honeypot_retries += slot.honeypot->retries();
    out.records_lost_tail += slot.honeypot->records_lost_tail();
    kept += slot.honeypot->log().records.size();
    if (slot.down_since >= 0) {
      out.total_downtime += now - slot.down_since;
    }
  }
  const std::uint64_t generated = kept + out.records_lost_tail;
  if (generated > 0) {
    out.retained_fraction =
        static_cast<double>(kept) / static_cast<double>(generated);
  }
  return out;
}

net::DefenseStats Manager::defense_stats() const {
  net::DefenseStats out;
  for (const auto& slot : fleet_) {
    out += slot.honeypot->defense_stats();
  }
  return out;
}

Honeypot& Manager::honeypot(std::size_t index) {
  return *fleet_.at(index).honeypot;
}

const Honeypot& Manager::honeypot(std::size_t index) const {
  return *fleet_.at(index).honeypot;
}

std::vector<logbook::LogFile> Manager::collect_logs() const {
  std::vector<logbook::LogFile> logs;
  logs.reserve(fleet_.size());
  for (const auto& slot : fleet_) {
    logs.push_back(slot.honeypot->log());
  }
  return logs;
}

std::vector<std::string> Manager::persist_logs(const std::string& directory) const {
  std::vector<std::string> paths;
  paths.reserve(fleet_.size());
  for (const auto& slot : fleet_) {
    const auto path = directory + "/hp-" +
                      std::to_string(slot.honeypot->config().id) + ".edhplog";
    logbook::save(path, slot.honeypot->log());
    paths.push_back(path);
  }
  return paths;
}

logbook::LogFile Manager::merged_anonymized(std::uint64_t* distinct_peers_out) const {
  auto logs = collect_logs();
  auto merged = logbook::merge_logs(logs);
  const auto distinct = anonymize::renumber_peers(merged);
  if (distinct_peers_out != nullptr) {
    *distinct_peers_out = distinct;
  }
  return merged;
}

std::vector<std::string> Manager::export_observed_names(
    std::uint64_t threshold) const {
  std::vector<std::string> corpus;
  for (const auto& slot : fleet_) {
    const auto& names = slot.honeypot->observed_names();
    corpus.insert(corpus.end(), names.begin(), names.end());
  }
  anonymize::NameAnonymizer anonymizer(corpus, threshold);
  std::vector<std::string> out;
  out.reserve(corpus.size());
  for (const auto& name : corpus) {
    out.push_back(anonymizer.anonymize(name));
  }
  return out;
}

Manager::ObservedFiles Manager::observed_files() const {
  std::unordered_map<FileId, std::uint32_t> all;
  for (const auto& slot : fleet_) {
    for (const auto& [file, size] : slot.honeypot->observed_files()) {
      all.try_emplace(file, size);
    }
  }
  ObservedFiles out;
  out.distinct = all.size();
  for (const auto& [file, size] : all) {
    out.bytes += size;
  }
  return out;
}

}  // namespace edhp::honeypot
