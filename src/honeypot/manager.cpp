#include "honeypot/manager.hpp"

#include <algorithm>
#include <optional>
#include <unordered_map>

#include "anonymize/name_anonymizer.hpp"
#include "anonymize/renumber.hpp"
#include "logbook/log_io.hpp"
#include "proto/udp_messages.hpp"

namespace edhp::honeypot {

Manager::Manager(net::Network& network, ManagerConfig config)
    : net_(network), config_(std::move(config)) {}

Manager::~Manager() { stop(); }

std::size_t Manager::launch(HoneypotConfig config, net::NodeId host,
                            const ServerRef& server) {
  config.salt = config_.salt;
  if (config.id == 0) {
    config.id = static_cast<std::uint16_t>(fleet_.size());
  }
  Slot slot;
  slot.honeypot = std::make_unique<Honeypot>(net_, host, std::move(config));
  slot.server = server;
  slot.honeypot->connect_to_server(server);
  fleet_.push_back(std::move(slot));
  return fleet_.size() - 1;
}

void Manager::survey_servers(std::vector<ServerRef> candidates,
                             net::NodeId probe_node, Duration timeout,
                             SurveyCallback done) {
  struct Survey {
    std::vector<ServerRef> candidates;
    std::vector<std::optional<proto::ServStatResponse>> answers;
  };
  auto survey = std::make_shared<Survey>();
  survey->candidates = std::move(candidates);
  survey->answers.resize(survey->candidates.size());

  net_.listen_datagram(probe_node, [survey](net::NodeId, net::Bytes datagram) {
    proto::AnyUdpMessage msg;
    try {
      msg = proto::decode_udp(datagram);
    } catch (const DecodeError&) {
      return;
    }
    if (const auto* res = std::get_if<proto::ServStatResponse>(&msg)) {
      // The challenge encodes the candidate index.
      if (res->challenge < survey->answers.size()) {
        survey->answers[res->challenge] = *res;
      }
    }
  });

  for (std::size_t i = 0; i < survey->candidates.size(); ++i) {
    proto::ServStatRequest req;
    req.challenge = static_cast<std::uint32_t>(i);
    net_.send_datagram(probe_node, survey->candidates[i].node,
                       proto::encode_udp(req));
  }

  net_.simulation().schedule_in(
      timeout, [this, survey, probe_node, done = std::move(done)] {
        net_.stop_listening_datagram(probe_node);
        std::vector<ServerSurveyEntry> out;
        for (std::size_t i = 0; i < survey->candidates.size(); ++i) {
          if (!survey->answers[i]) continue;
          out.push_back(ServerSurveyEntry{survey->candidates[i],
                                          survey->answers[i]->users,
                                          survey->answers[i]->files});
        }
        std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
          return a.users > b.users;
        });
        done(std::move(out));
      });
}

void Manager::reassign(std::size_t index, const ServerRef& server) {
  auto& slot = fleet_.at(index);
  slot.server = server;
  slot.honeypot->disconnect();
  slot.honeypot->connect_to_server(server);
  if (!slot.honeypot->advertised().empty()) {
    // Re-push the current list once the new login completes: advertise()
    // re-sends OFFER-FILES when connected, and the keep-alive covers the
    // race where login is still in flight.
    slot.honeypot->advertise(
        std::vector<AdvertisedFile>(slot.honeypot->advertised()));
  } else if (!slot.files.empty()) {
    slot.honeypot->advertise(slot.files);
  }
}

void Manager::advertise(std::size_t index, std::vector<AdvertisedFile> files) {
  auto& slot = fleet_.at(index);
  slot.files = files;
  slot.honeypot->advertise(std::move(files));
}

void Manager::advertise_all(std::vector<AdvertisedFile> files) {
  for (std::size_t i = 0; i < fleet_.size(); ++i) {
    advertise(i, files);
  }
}

void Manager::start() {
  if (poll_timer_) return;
  poll_timer_ = std::make_unique<sim::PeriodicTimer>(
      net_.simulation(), config_.status_poll, [this] { poll(); });
  poll_timer_->start();
}

void Manager::stop() {
  poll_timer_.reset();
  for (auto& slot : fleet_) {
    slot.honeypot->disconnect();
  }
}

void Manager::poll() {
  if (!config_.auto_relaunch) return;
  for (auto& slot : fleet_) {
    if (slot.honeypot->status() == Status::dead) {
      ++relaunches_;
      // Relaunch: reconnect to the assigned server and re-advertise the
      // file list previously ordered (plus anything the honeypot grew
      // itself in greedy mode, which it kept).
      slot.honeypot->connect_to_server(slot.server);
      if (slot.honeypot->advertised().empty() && !slot.files.empty()) {
        slot.honeypot->advertise(slot.files);
      }
    }
  }
}

Honeypot& Manager::honeypot(std::size_t index) {
  return *fleet_.at(index).honeypot;
}

const Honeypot& Manager::honeypot(std::size_t index) const {
  return *fleet_.at(index).honeypot;
}

std::vector<logbook::LogFile> Manager::collect_logs() const {
  std::vector<logbook::LogFile> logs;
  logs.reserve(fleet_.size());
  for (const auto& slot : fleet_) {
    logs.push_back(slot.honeypot->log());
  }
  return logs;
}

std::vector<std::string> Manager::persist_logs(const std::string& directory) const {
  std::vector<std::string> paths;
  paths.reserve(fleet_.size());
  for (const auto& slot : fleet_) {
    const auto path = directory + "/hp-" +
                      std::to_string(slot.honeypot->config().id) + ".edhplog";
    logbook::save(path, slot.honeypot->log());
    paths.push_back(path);
  }
  return paths;
}

logbook::LogFile Manager::merged_anonymized(std::uint64_t* distinct_peers_out) const {
  auto logs = collect_logs();
  auto merged = logbook::merge_logs(logs);
  const auto distinct = anonymize::renumber_peers(merged);
  if (distinct_peers_out != nullptr) {
    *distinct_peers_out = distinct;
  }
  return merged;
}

std::vector<std::string> Manager::export_observed_names(
    std::uint64_t threshold) const {
  std::vector<std::string> corpus;
  for (const auto& slot : fleet_) {
    const auto& names = slot.honeypot->observed_names();
    corpus.insert(corpus.end(), names.begin(), names.end());
  }
  anonymize::NameAnonymizer anonymizer(corpus, threshold);
  std::vector<std::string> out;
  out.reserve(corpus.size());
  for (const auto& name : corpus) {
    out.push_back(anonymizer.anonymize(name));
  }
  return out;
}

Manager::ObservedFiles Manager::observed_files() const {
  std::unordered_map<FileId, std::uint32_t> all;
  for (const auto& slot : fleet_) {
    for (const auto& [file, size] : slot.honeypot->observed_files()) {
      all.try_emplace(file, size);
    }
  }
  ObservedFiles out;
  out.distinct = all.size();
  for (const auto& [file, size] : all) {
    out.bytes += size;
  }
  return out;
}

}  // namespace edhp::honeypot
