#include "honeypot/manager.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <optional>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "anonymize/name_anonymizer.hpp"
#include "anonymize/renumber.hpp"
#include "common/bytes.hpp"
#include "logbook/log_io.hpp"
#include "proto/udp_messages.hpp"

namespace edhp::honeypot {
namespace {

using logbook::JournalEntryType;

// --- Journal payload codecs ------------------------------------------------
// Little-endian, built on the same bounds-checked ByteWriter/ByteReader as
// the wire codecs. Payloads are versionless: the frame type IS the schema
// version (new layouts get new types).

void put_server(ByteWriter& w, const ServerRef& s) {
  w.u64(s.node);
  w.str16(s.name);
  w.u16(s.port);
}

ServerRef get_server(ByteReader& r) {
  ServerRef s;
  s.node = static_cast<net::NodeId>(r.u64());
  s.name = r.str16();
  s.port = r.u16();
  return s;
}

void put_files(ByteWriter& w, const std::vector<AdvertisedFile>& files) {
  w.u32(static_cast<std::uint32_t>(files.size()));
  for (const auto& f : files) {
    w.bytes(f.id.bytes());
    w.str16(f.name);
    w.u32(f.size);
  }
}

std::vector<AdvertisedFile> get_files(ByteReader& r) {
  std::vector<AdvertisedFile> files(r.u32());
  for (auto& f : files) {
    FileId::Bytes id{};
    const auto raw = r.bytes(id.size());
    std::copy(raw.begin(), raw.end(), id.begin());
    f.id = FileId(id);
    f.name = r.str16();
    f.size = r.u32();
  }
  return files;
}

/// Cap on displaced-slot references inside one quarantine journal frame
/// (bounds the frame; a fleet larger than this keeps its overflow slots on
/// the quarantined server, which still yields quarantined-record evidence).
constexpr std::size_t kQuarantineRefCap = 64;

}  // namespace

Manager::Manager(net::Network& network, ManagerConfig config)
    : net_(network),
      config_(std::move(config)),
      spool_store_(config_.spool_store ? config_.spool_store
                                       : std::make_shared<logbook::SpoolStore>()) {}

Manager::~Manager() { stop(); }

void Manager::journal_append(JournalEntryType type,
                             std::span<const std::uint8_t> payload) {
  if (config_.journal) {
    config_.journal->append(type, payload);
  }
}

void Manager::wire_spool_sink(Slot& slot) {
  if (!config_.spool.enabled) return;
  // Gathering channel: verify + ingest each chunk (deduping re-sends and
  // quarantining corrupted payloads) and acknowledge after the transfer
  // round-trip, so a crash inside the ack window exercises the
  // at-least-once path. Quarantined chunks are never acknowledged: the
  // honeypot keeps them spooled for a later re-send.
  Honeypot* hp = slot.honeypot.get();
  hp->set_spool_sink([this, hp](const logbook::LogChunk& chunk, bool fresh) {
    spool_store_->set_header(chunk.honeypot, hp->log().header);
    const auto outcome = spool_store_->ingest(chunk);
    if (outcome == logbook::SpoolStore::Ingest::quarantined) return;
    if (outcome == logbook::SpoolStore::Ingest::stored) {
      ByteWriter w;
      w.u16(chunk.honeypot);
      w.u32(chunk.epoch);
      w.u64(chunk.seq);
      w.u32(static_cast<std::uint32_t>(chunk.records.size()));
      journal_append(JournalEntryType::chunk_stored, w.view());
      auto& frontier = ack_frontier_[chunk.honeypot];
      frontier = std::max(frontier, chunk.seq + 1);
      if (fresh) {
        // A fresh cut is a bounded-delay exchange: the honeypot stamped the
        // cut with its local clock an instant ago, so (now, cut_at_local)
        // anchors that clock's reconstruction. Re-sent backlog chunks carry
        // stale cut stamps and are useless as sightings.
        record_clock_observation(chunk.honeypot, chunk.cut_at_local);
      }
    }
    const auto seq = chunk.seq;
    // The ack lambda deliberately captures the credit VALUE, never `this`:
    // it may fire after this manager incarnation crashed. Each ack tops the
    // honeypot's resend window up by one chunk, so a recovery's backlog
    // drains at the store's pace instead of in one burst.
    const std::uint32_t credit = config_.resend_credit;
    net_.simulation().schedule_in(config_.spool.ack_delay, [hp, seq, credit] {
      hp->ack_spooled(seq);
      if (credit > 0) hp->resend_spool(std::size_t{1});
    });
  });
}

void Manager::record_clock_observation(std::uint16_t hp_id, Time local_time) {
  if (!config_.track_clocks) return;
  logbook::ClockObservation obs;
  obs.honeypot = hp_id;
  obs.true_time = net_.simulation().now();
  obs.local_time = local_time;
  clock_obs_.push_back(obs);
  ByteWriter w;
  w.u16(obs.honeypot);
  w.u64(std::bit_cast<std::uint64_t>(obs.true_time));
  w.u64(std::bit_cast<std::uint64_t>(obs.local_time));
  journal_append(JournalEntryType::clock_observation, w.view());
}

void Manager::wire_degrade_sink(Slot& slot) {
  // Overload transitions are control-plane state like any other: journaled
  // when they happen, so a recovered manager (and edhp_inspect degrade) can
  // audit which honeypots were degraded and what they shed. Cleared by
  // crash() alongside the spool sink (the lambda captures `this`).
  Honeypot* hp = slot.honeypot.get();
  hp->set_degrade_sink([this, hp](bool entered, budget::DegradeReason reason) {
    const auto& stats = hp->degrade_stats();
    ByteWriter w;
    w.u16(hp->config().id);
    if (entered) {
      w.u8(static_cast<std::uint8_t>(reason));
      w.u64(hp->spool_resident_bytes());
      w.u64(hp->unspooled_tail());
      journal_append(JournalEntryType::degrade_enter, w.view());
    } else {
      w.u64(stats.records_shed);
      w.u64(stats.chunks_compacted);
      w.u64(stats.backpressure_cuts);
      journal_append(JournalEntryType::degrade_exit, w.view());
    }
  });
}

void Manager::wire_probe_sink(Slot& slot) {
  // Probe verdicts are control-plane input: journaled and scored here. The
  // honeypot severs this sink in crash() (a verdict racing a relaunch must
  // not reach wiring that captures a possibly-dead incarnation), and
  // adoption re-installs it.
  Honeypot* hp = slot.honeypot.get();
  hp->set_probe_sink([this, hp](bool confirmed) {
    on_probe_verdict(hp->config().id, confirmed);
  });
}

void Manager::on_probe_verdict(std::uint16_t hp_id, bool confirmed) {
  const Slot* slot = nullptr;
  for (const auto& s : fleet_) {
    if (s.id == hp_id) {
      slot = &s;
      break;
    }
  }
  if (slot == nullptr) return;
  const std::string name = slot->server.name;
  {
    ByteWriter w;
    w.u16(hp_id);
    w.u8(confirmed ? 1 : 0);
    w.str16(name);
    journal_append(JournalEntryType::probe_verdict, w.view());
  }
  auto& health = health_[name];
  if (confirmed) {
    ++health.confirms;
    health.score = std::max(0.0, health.score - config_.probe_confirm_decay);
    return;
  }
  ++health.misses;
  health.score += 1.0;
  if (config_.quarantine_threshold > 0 &&
      health.score >= config_.quarantine_threshold &&
      !server_quarantined(name)) {
    quarantine_server(name);
  }
}

void Manager::quarantine_server(const std::string& name) {
  // Only bench the liar if there is somewhere honest to go; without a
  // distinct backup the fleet keeps measuring (its defenses still taint
  // whatever the liar pollutes) and the score keeps accumulating.
  std::vector<const ServerRef*> targets;
  for (const auto& b : backups_) {
    if (b.name != name) targets.push_back(&b);
  }
  if (targets.empty()) return;
  Quarantine q;
  q.server_name = name;
  q.until = net_.simulation().now() + config_.quarantine_cooloff;
  for (std::size_t i = 0; i < fleet_.size(); ++i) {
    if (fleet_[i].server.name != name) continue;
    if (q.displaced.empty()) q.original = fleet_[i].server;
    if (q.displaced.size() < kQuarantineRefCap) {
      q.displaced.push_back(static_cast<std::uint32_t>(i));
    }
  }
  if (q.displaced.empty()) return;
  ++integrity_.servers_quarantined;
  health_[name].score = 0;  // fresh ledger when it comes back
  {
    ByteWriter w;
    w.str16(q.server_name);
    put_server(w, q.original);
    w.u64(std::bit_cast<std::uint64_t>(q.until));
    w.u32(static_cast<std::uint32_t>(q.displaced.size()));
    for (const auto index : q.displaced) {
      w.u32(index);
    }
    journal_append(JournalEntryType::server_quarantine, w.view());
  }
  const std::vector<std::uint32_t> displaced = q.displaced;
  quarantines_.push_back(std::move(q));
  for (const auto index : displaced) {
    reassign(index, *targets[next_backup_++ % targets.size()]);
  }
}

void Manager::service_quarantines(Time now) {
  for (std::size_t qi = 0; qi < quarantines_.size();) {
    if (quarantines_[qi].until > now) {
      ++qi;
      continue;
    }
    const Quarantine q = std::move(quarantines_[qi]);
    quarantines_.erase(quarantines_.begin() + static_cast<std::ptrdiff_t>(qi));
    ++integrity_.servers_reinstated;
    {
      ByteWriter w;
      w.str16(q.server_name);
      journal_append(JournalEntryType::server_reinstate, w.view());
    }
    // Cooloff served: move exactly the displaced slots back where the
    // measurement plan had them (the backup was a stopgap, not a new home).
    for (const auto index : q.displaced) {
      if (index < fleet_.size()) {
        reassign(index, q.original);
      }
    }
  }
}

std::size_t Manager::launch(HoneypotConfig config, net::NodeId host,
                            const ServerRef& server) {
  config.salt = config_.salt;
  config.retry = config_.retry;
  config.spool = config_.spool;
  config.defense = config_.defense;
  if (config.id == 0) {
    config.id = static_cast<std::uint16_t>(fleet_.size());
  }
  Slot slot;
  slot.id = config.id;
  slot.host = host;
  slot.honeypot = std::make_unique<Honeypot>(net_, host, std::move(config));
  slot.server = server;
  wire_spool_sink(slot);
  wire_degrade_sink(slot);
  wire_probe_sink(slot);
  {
    ByteWriter w;
    w.u16(slot.id);
    w.u64(host);
    put_server(w, server);
    journal_append(JournalEntryType::launch, w.view());
  }
  slot.honeypot->connect_to_server(server);
  fleet_.push_back(std::move(slot));
  return fleet_.size() - 1;
}

void Manager::set_backup_servers(std::vector<ServerRef> backups) {
  backups_ = std::move(backups);
  next_backup_ = 0;
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(backups_.size()));
  for (const auto& b : backups_) {
    put_server(w, b);
  }
  journal_append(JournalEntryType::backups, w.view());
}

void Manager::survey_servers(std::vector<ServerRef> candidates,
                             net::NodeId probe_node, Duration timeout,
                             SurveyCallback done) {
  struct Survey {
    std::vector<ServerRef> candidates;
    std::vector<std::optional<proto::ServStatResponse>> answers;
    bool closed = false;  ///< timeout fired; retransmit rounds stand down
  };
  auto survey = std::make_shared<Survey>();
  survey->candidates = std::move(candidates);
  survey->answers.resize(survey->candidates.size());

  // The probe callbacks deliberately capture the network (and the shared
  // counters), never `this`: a survey outstanding while the manager crashes
  // (and possibly a new incarnation replaces it) must still time out and
  // deliver cleanly.
  auto counters = survey_counters_;
  net_.listen_datagram(probe_node, [&net = net_, survey, counters, probe_node](
                                       net::NodeId, net::Bytes datagram) {
    proto::AnyUdpMessage msg;
    try {
      msg = proto::decode_udp(datagram);
    } catch (const DecodeError&) {
      net.note_malformed(probe_node);
      return;
    }
    if (const auto* res = std::get_if<proto::ServStatResponse>(&msg)) {
      // The challenge encodes the candidate index.
      if (res->challenge < survey->answers.size()) {
        if (survey->answers[res->challenge]) {
          // Late duplicate (a retransmitted request answered twice, or a
          // network-level duplicated datagram): the first copy won.
          ++counters->dups;
        } else {
          survey->answers[res->challenge] = *res;
        }
      }
    }
  });

  for (std::size_t i = 0; i < survey->candidates.size(); ++i) {
    proto::ServStatRequest req;
    req.challenge = static_cast<std::uint32_t>(i);
    net_.send_datagram(probe_node, survey->candidates[i].node,
                       proto::encode_udp(req));
  }

  // Capped retransmit rounds: each re-asks only the still-silent candidates,
  // so one lost UDP request costs a retry instead of a missing survey row.
  // Default-off (survey_retries = 0) keeps the historical single-shot
  // survey's network draw sequence bit-exact.
  for (std::size_t round = 1; round <= config_.survey_retries; ++round) {
    net_.simulation().schedule_in(
        config_.survey_retry_interval * static_cast<double>(round),
        [&net = net_, survey, counters, probe_node] {
          if (survey->closed) return;
          for (std::size_t i = 0; i < survey->candidates.size(); ++i) {
            if (survey->answers[i]) continue;
            proto::ServStatRequest req;
            req.challenge = static_cast<std::uint32_t>(i);
            ++counters->retries;
            net.send_datagram(probe_node, survey->candidates[i].node,
                              proto::encode_udp(req));
          }
        });
  }

  net_.simulation().schedule_in(
      timeout, [&net = net_, survey, probe_node, done = std::move(done)] {
        survey->closed = true;
        net.stop_listening_datagram(probe_node);
        std::vector<ServerSurveyEntry> out;
        for (std::size_t i = 0; i < survey->candidates.size(); ++i) {
          if (!survey->answers[i]) continue;
          out.push_back(ServerSurveyEntry{survey->candidates[i],
                                          survey->answers[i]->users,
                                          survey->answers[i]->files});
        }
        std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
          return a.users > b.users;
        });
        done(std::move(out));
      });
}

void Manager::reassign(std::size_t index, const ServerRef& server) {
  auto& slot = fleet_.at(index);
  slot.server = server;
  {
    ByteWriter w;
    w.u32(static_cast<std::uint32_t>(index));
    put_server(w, server);
    journal_append(JournalEntryType::reassign, w.view());
  }
  slot.honeypot->disconnect();
  slot.honeypot->connect_to_server(server);
  if (!slot.honeypot->advertised().empty()) {
    // Re-push the current list once the new login completes: advertise()
    // re-sends OFFER-FILES when connected, and the keep-alive covers the
    // race where login is still in flight.
    slot.honeypot->advertise(
        std::vector<AdvertisedFile>(slot.honeypot->advertised()));
  } else if (!slot.files.empty()) {
    slot.honeypot->advertise(slot.files);
  }
}

void Manager::advertise(std::size_t index, std::vector<AdvertisedFile> files) {
  auto& slot = fleet_.at(index);
  slot.files = files;
  {
    ByteWriter w;
    w.u32(static_cast<std::uint32_t>(index));
    put_files(w, files);
    journal_append(JournalEntryType::advertise, w.view());
  }
  slot.honeypot->advertise(std::move(files));
}

void Manager::advertise_all(std::vector<AdvertisedFile> files) {
  for (std::size_t i = 0; i < fleet_.size(); ++i) {
    advertise(i, files);
  }
}

void Manager::start() {
  if (poll_timer_) return;
  if (!started_) {
    started_ = true;
    journal_append(JournalEntryType::start, {});
  }
  poll_timer_ = std::make_unique<sim::PeriodicTimer>(
      net_.simulation(), config_.status_poll, [this] { poll(); });
  poll_timer_->start();
}

void Manager::stop() {
  poll_timer_.reset();
  if (started_) {
    started_ = false;
    journal_append(JournalEntryType::stop, {});
  }
  for (auto& slot : fleet_) {
    if (config_.spool.enabled) {
      // Final gathering: flush the unspooled tail so the store holds the
      // complete log of every honeypot that survived to the end.
      slot.honeypot->spool_now();
    }
    slot.honeypot->disconnect();
  }
}

// --- Crash / recovery ------------------------------------------------------

std::size_t Manager::crash() {
  // Process death: everything in manager memory is gone. The honeypots are
  // remote processes — they keep running, their spool timers keep cutting
  // chunks into their local on-disk spools, but the sink to the dead
  // manager is severed (deliveries and acks stop until re-adoption).
  poll_timer_.reset();
  for (auto& slot : fleet_) {
    slot.honeypot->set_spool_sink(nullptr);
    slot.honeypot->set_degrade_sink(nullptr);
    slot.honeypot->set_probe_sink(nullptr);
    orphans_.push_back(std::move(slot.honeypot));
  }
  fleet_.clear();
  backups_.clear();
  next_backup_ = 0;
  relaunches_ = 0;
  started_ = false;
  ack_frontier_.clear();
  recovery_ = RecoveryStats{};
  health_.clear();
  quarantines_.clear();
  integrity_ = IntegrityStats{};
  records_excluded_ = 0;
  clock_obs_.clear();
  time_integrity_ = logbook::TimeIntegrityStats{};
  // The counters shared with in-flight survey closures survive the crash on
  // purpose (a pending retransmit round still fires and still counts); only
  // this incarnation's handle to them is re-zeroed.
  survey_counters_ = std::make_shared<SurveyCounters>();
  return orphans_.size();
}

void Manager::replay_journal() {
  const auto scan = config_.journal->scan();
  recovery_.journal_tail_lost = scan.torn_bytes;

  // Replay starts at the last checkpoint (a full snapshot); everything
  // before it is compacted history.
  std::size_t begin = 0;
  for (std::size_t i = 0; i < scan.entries.size(); ++i) {
    if (scan.entries[i].type ==
        static_cast<std::uint8_t>(JournalEntryType::checkpoint)) {
      begin = i;
    }
  }

  std::uint64_t applied = 0;
  for (std::size_t i = begin; i < scan.entries.size(); ++i) {
    const auto& entry = scan.entries[i];
    ByteReader r(entry.payload);
    try {
      switch (static_cast<JournalEntryType>(entry.type)) {
        case JournalEntryType::checkpoint: {
          relaunches_ = r.u64();
          next_backup_ = r.u64();
          recovery_.escalations = r.u64();
          recovery_.heartbeat_escalations = r.u64();
          recovery_.re_advertise_repairs = r.u64();
          recovery_.manager_recoveries = r.u64();
          recovery_.manager_downtime = std::bit_cast<double>(r.u64());
          recovery_.orphans_readopted = r.u64();
          started_ = r.u8() != 0;
          backups_.clear();
          for (std::uint32_t n = r.u32(); n > 0; --n) {
            backups_.push_back(get_server(r));
          }
          fleet_.clear();
          for (std::uint32_t n = r.u32(); n > 0; --n) {
            Slot slot;
            slot.id = r.u16();
            slot.host = static_cast<net::NodeId>(r.u64());
            slot.server = get_server(r);
            slot.consecutive_failures = r.u32();
            slot.files = get_files(r);
            fleet_.push_back(std::move(slot));
          }
          ack_frontier_.clear();
          for (std::uint32_t n = r.u32(); n > 0; --n) {
            const auto hp = r.u16();
            ack_frontier_[hp] = r.u64();
          }
          // Byzantine-defense sections, appended by newer checkpoints;
          // absent (remaining() == 0) in pre-quarantine frames.
          integrity_ = IntegrityStats{};
          health_.clear();
          quarantines_.clear();
          clock_obs_.clear();
          if (r.remaining() > 0) {
            integrity_.servers_quarantined = r.u64();
            integrity_.servers_reinstated = r.u64();
            for (std::uint32_t n = r.u32(); n > 0; --n) {
              auto name = r.str16();
              ServerHealth health;
              health.score = std::bit_cast<double>(r.u64());
              health.misses = r.u64();
              health.confirms = r.u64();
              health_.emplace(std::move(name), health);
            }
            for (std::uint32_t n = r.u32(); n > 0; --n) {
              Quarantine q;
              q.server_name = r.str16();
              q.original = get_server(r);
              q.until = std::bit_cast<double>(r.u64());
              for (std::uint32_t m = r.u32(); m > 0; --m) {
                q.displaced.push_back(r.u32());
              }
              quarantines_.push_back(std::move(q));
            }
          }
          // Clock-observation section (appended after the byzantine
          // sections by newer checkpoints; absent in older frames).
          if (r.remaining() > 0) {
            for (std::uint32_t n = r.u32(); n > 0; --n) {
              logbook::ClockObservation obs;
              obs.honeypot = r.u16();
              obs.true_time = std::bit_cast<double>(r.u64());
              obs.local_time = std::bit_cast<double>(r.u64());
              clock_obs_.push_back(obs);
            }
          }
          break;
        }
        case JournalEntryType::launch: {
          Slot slot;
          slot.id = r.u16();
          slot.host = static_cast<net::NodeId>(r.u64());
          slot.server = get_server(r);
          fleet_.push_back(std::move(slot));
          break;
        }
        case JournalEntryType::reassign: {
          const auto index = r.u32();
          const auto server = get_server(r);
          if (index < fleet_.size()) fleet_[index].server = server;
          break;
        }
        case JournalEntryType::advertise: {
          const auto index = r.u32();
          auto files = get_files(r);
          if (index < fleet_.size()) fleet_[index].files = std::move(files);
          break;
        }
        case JournalEntryType::backups: {
          backups_.clear();
          for (std::uint32_t n = r.u32(); n > 0; --n) {
            backups_.push_back(get_server(r));
          }
          next_backup_ = 0;
          break;
        }
        case JournalEntryType::start:
          started_ = true;
          break;
        case JournalEntryType::stop:
          started_ = false;
          break;
        case JournalEntryType::relaunch: {
          const auto index = r.u32();
          ++relaunches_;
          if (index < fleet_.size()) ++fleet_[index].consecutive_failures;
          break;
        }
        case JournalEntryType::escalate: {
          const auto index = r.u32();
          const auto reason = static_cast<EscalateReason>(r.u8());
          const bool used_backup = r.u8() != 0;
          if (index < fleet_.size()) fleet_[index].consecutive_failures = 0;
          if (reason == EscalateReason::heartbeat) {
            ++recovery_.heartbeat_escalations;
          }
          if (used_backup) {
            if (reason == EscalateReason::failures) ++recovery_.escalations;
            ++next_backup_;
          }
          break;
        }
        case JournalEntryType::repair:
          ++recovery_.re_advertise_repairs;
          break;
        case JournalEntryType::chunk_stored: {
          const auto hp = r.u16();
          [[maybe_unused]] const auto epoch = r.u32();  // audit only
          const auto seq = r.u64();
          auto& frontier = ack_frontier_[hp];
          frontier = std::max(frontier, seq + 1);
          break;
        }
        case JournalEntryType::recovered: {
          recovery_.manager_downtime += std::bit_cast<double>(r.u64());
          recovery_.orphans_readopted += r.u32();
          ++recovery_.manager_recoveries;
          break;
        }
        case JournalEntryType::degrade_enter:
        case JournalEntryType::degrade_exit:
          // Audit-only: the honeypot processes own the live degrade state
          // and counters (they survive a manager crash); replaying these
          // would double-count. They exist for edhp_inspect degrade.
          break;
        case JournalEntryType::probe_verdict: {
          // Rebuild the health ledger with the live scoring math, but never
          // act on it here: a threshold crossing has its own quarantine
          // entry (replay reconstructs state, it does not re-decide).
          [[maybe_unused]] const auto hp = r.u16();
          const bool confirmed = r.u8() != 0;
          auto& health = health_[r.str16()];
          if (confirmed) {
            ++health.confirms;
            health.score =
                std::max(0.0, health.score - config_.probe_confirm_decay);
          } else {
            ++health.misses;
            health.score += 1.0;
          }
          break;
        }
        case JournalEntryType::server_quarantine: {
          Quarantine q;
          q.server_name = r.str16();
          q.original = get_server(r);
          q.until = std::bit_cast<double>(r.u64());
          for (std::uint32_t n = r.u32(); n > 0; --n) {
            q.displaced.push_back(r.u32());
          }
          ++integrity_.servers_quarantined;
          health_[q.server_name].score = 0;
          std::erase_if(quarantines_, [&](const Quarantine& other) {
            return other.server_name == q.server_name;
          });
          quarantines_.push_back(std::move(q));
          break;
        }
        case JournalEntryType::server_reinstate: {
          const auto name = r.str16();
          ++integrity_.servers_reinstated;
          std::erase_if(quarantines_, [&](const Quarantine& other) {
            return other.server_name == name;
          });
          break;
        }
        case JournalEntryType::clock_observation: {
          logbook::ClockObservation obs;
          obs.honeypot = r.u16();
          obs.true_time = std::bit_cast<double>(r.u64());
          obs.local_time = std::bit_cast<double>(r.u64());
          clock_obs_.push_back(obs);
          break;
        }
      }
      ++applied;
    } catch (const DecodeError&) {
      // A frame that passed its checksum but fails to decode is a schema
      // bug, not data corruption; skip it rather than abandon recovery.
    }
  }
  recovery_.journal_replayed = applied;
}

std::size_t Manager::adopt_orphans() {
  std::unordered_map<std::uint16_t, std::unique_ptr<Honeypot>> by_id;
  for (auto& hp : orphans_) {
    by_id[hp->config().id] = std::move(hp);
  }
  orphans_.clear();

  std::vector<Slot> adopted;
  adopted.reserve(fleet_.size());
  std::size_t count = 0;
  for (auto& slot : fleet_) {
    const auto it = by_id.find(slot.id);
    if (it == by_id.end()) {
      // The journal knows this honeypot but its process did not survive the
      // outage (host wiped, never relaunched): strike it from the fleet.
      // Its spooled records stay in the durable store.
      continue;
    }
    slot.honeypot = std::move(it->second);
    by_id.erase(it);
    wire_spool_sink(slot);
    wire_degrade_sink(slot);
    wire_probe_sink(slot);
    // Chunks the journal proves durable are acknowledged on the spot (no
    // round-trip needed: the recovery read its own store); the rest of the
    // local spool is re-sent and deduped by (honeypot, seq).
    const auto frontier_it = ack_frontier_.find(slot.id);
    if (frontier_it != ack_frontier_.end()) {
      std::vector<std::uint64_t> proven;
      for (const auto& chunk : slot.honeypot->pending_chunks()) {
        if (chunk.seq < frontier_it->second) proven.push_back(chunk.seq);
      }
      for (const auto seq : proven) {
        slot.honeypot->ack_spooled(seq);
      }
    }
    if (config_.resend_credit > 0) {
      // Credit-paced recovery: open the window; each ack tops it up by one
      // (see wire_spool_sink), so the backlog drains without re-creating
      // the overload spike that killed the previous incarnation.
      slot.honeypot->resend_spool(std::size_t{config_.resend_credit});
    } else {
      slot.honeypot->resend_spool();
    }
    adopted.push_back(std::move(slot));
    ++count;
  }
  // Orphans the journal never heard of (its tail was torn before their
  // launch entry survived) cannot be reattached to a slot: they are
  // retired; their spooled chunks are already in the store.
  fleet_ = std::move(adopted);
  return count;
}

void Manager::recover(Time crashed_at) {
  if (!config_.journal) {
    throw std::logic_error("Manager::recover requires ManagerConfig::journal");
  }
  replay_journal();
  const auto adopted = adopt_orphans();
  recovery_.orphans_readopted += adopted;
  ++recovery_.manager_recoveries;
  const Time now = net_.simulation().now();
  const double downtime = crashed_at >= 0 ? now - crashed_at : 0.0;
  recovery_.manager_downtime += downtime;
  {
    ByteWriter w;
    w.u64(std::bit_cast<std::uint64_t>(downtime));
    w.u32(static_cast<std::uint32_t>(adopted));
    journal_append(JournalEntryType::recovered, w.view());
  }
  // Compact: the next replay starts from the state we just rebuilt.
  checkpoint();
  if (started_) {
    poll_timer_ = std::make_unique<sim::PeriodicTimer>(
        net_.simulation(), config_.status_poll, [this] { poll(); });
    poll_timer_->start();
  }
}

std::unique_ptr<Manager> Manager::recover(
    net::Network& network, ManagerConfig config,
    std::vector<std::unique_ptr<Honeypot>> orphans, Time crashed_at) {
  auto manager = std::make_unique<Manager>(network, std::move(config));
  manager->orphans_ = std::move(orphans);
  manager->recover(crashed_at);
  return manager;
}

void Manager::checkpoint() {
  if (!config_.journal) return;
  ByteWriter w;
  w.u64(relaunches_);
  w.u64(next_backup_);
  w.u64(recovery_.escalations);
  w.u64(recovery_.heartbeat_escalations);
  w.u64(recovery_.re_advertise_repairs);
  w.u64(recovery_.manager_recoveries);
  w.u64(std::bit_cast<std::uint64_t>(recovery_.manager_downtime));
  w.u64(recovery_.orphans_readopted);
  w.u8(started_ ? 1 : 0);
  w.u32(static_cast<std::uint32_t>(backups_.size()));
  for (const auto& b : backups_) {
    put_server(w, b);
  }
  w.u32(static_cast<std::uint32_t>(fleet_.size()));
  for (const auto& slot : fleet_) {
    w.u16(slot.id);
    w.u64(slot.host);
    put_server(w, slot.server);
    w.u32(static_cast<std::uint32_t>(slot.consecutive_failures));
    put_files(w, slot.files);
  }
  w.u32(static_cast<std::uint32_t>(ack_frontier_.size()));
  for (const auto& [hp, next] : ack_frontier_) {
    w.u16(hp);
    w.u64(next);
  }
  // Byzantine-defense sections (appended last so older readers — and the
  // hand-crafted checkpoint frames in test fixtures — keep replaying).
  w.u64(integrity_.servers_quarantined);
  w.u64(integrity_.servers_reinstated);
  w.u32(static_cast<std::uint32_t>(health_.size()));
  for (const auto& [name, health] : health_) {
    w.str16(name);
    w.u64(std::bit_cast<std::uint64_t>(health.score));
    w.u64(health.misses);
    w.u64(health.confirms);
  }
  w.u32(static_cast<std::uint32_t>(quarantines_.size()));
  for (const auto& q : quarantines_) {
    w.str16(q.server_name);
    put_server(w, q.original);
    w.u64(std::bit_cast<std::uint64_t>(q.until));
    w.u32(static_cast<std::uint32_t>(q.displaced.size()));
    for (const auto index : q.displaced) {
      w.u32(index);
    }
  }
  // Clock-observation section (appended after the byzantine sections, same
  // backward-compatibility contract: older frames simply end earlier).
  w.u32(static_cast<std::uint32_t>(clock_obs_.size()));
  for (const auto& obs : clock_obs_) {
    w.u16(obs.honeypot);
    w.u64(std::bit_cast<std::uint64_t>(obs.true_time));
    w.u64(std::bit_cast<std::uint64_t>(obs.local_time));
  }
  config_.journal->append(JournalEntryType::checkpoint, w.view());
}

// --- Watchdog --------------------------------------------------------------

Duration Manager::relaunch_backoff(std::size_t failures) const {
  if (config_.relaunch_backoff_base <= 0 || failures == 0) return 0;
  const double raw = config_.relaunch_backoff_base *
                     std::pow(2.0, static_cast<double>(failures - 1));
  return std::min(raw, config_.relaunch_backoff_cap);
}

bool Manager::covers(const std::vector<AdvertisedFile>& advertised,
                     const std::vector<AdvertisedFile>& ordered) {
  std::unordered_set<FileId> have;
  have.reserve(advertised.size());
  for (const auto& f : advertised) {
    have.insert(f.id);
  }
  return std::all_of(ordered.begin(), ordered.end(),
                     [&have](const AdvertisedFile& f) {
                       return have.contains(f.id);
                     });
}

void Manager::repair_advertised(std::size_t index) {
  // Ordered files first, then everything the honeypot grew on its own
  // (greedy harvest) that the order does not already contain.
  auto& slot = fleet_.at(index);
  std::vector<AdvertisedFile> full = slot.files;
  std::unordered_set<FileId> ordered_ids;
  ordered_ids.reserve(full.size());
  for (const auto& f : full) {
    ordered_ids.insert(f.id);
  }
  for (const auto& f : slot.honeypot->advertised()) {
    if (!ordered_ids.contains(f.id)) {
      full.push_back(f);
    }
  }
  ++recovery_.re_advertise_repairs;
  {
    ByteWriter w;
    w.u32(static_cast<std::uint32_t>(index));
    journal_append(JournalEntryType::repair, w.view());
  }
  slot.honeypot->advertise(std::move(full));
}

void Manager::escalate(std::size_t index, EscalateReason reason) {
  auto& slot = fleet_.at(index);
  slot.consecutive_failures = 0;
  slot.next_attempt_at = 0;
  const bool used_backup = !backups_.empty();
  if (reason == EscalateReason::heartbeat) {
    ++recovery_.heartbeat_escalations;
  }
  if (used_backup && reason == EscalateReason::failures) {
    ++recovery_.escalations;
  }
  {
    ByteWriter w;
    w.u32(static_cast<std::uint32_t>(index));
    w.u8(static_cast<std::uint8_t>(reason));
    w.u8(used_backup ? 1 : 0);
    journal_append(JournalEntryType::escalate, w.view());
  }
  if (!used_backup) {
    reassign(index, slot.server);  // reconnect in place
    return;
  }
  reassign(index, backups_[next_backup_++ % backups_.size()]);
}

void Manager::poll() {
  service_quarantines(net_.simulation().now());
  if (!config_.auto_relaunch) return;
  const Time now = net_.simulation().now();
  for (std::size_t i = 0; i < fleet_.size(); ++i) {
    auto& slot = fleet_[i];
    auto& hp = *slot.honeypot;
    const Status status = hp.status();

    if (status == Status::connected) {
      // Every status poll of a live honeypot doubles as a clock sighting:
      // the exchange is bounded-delay, so "its local clock reads X while
      // true time reads now" anchors the skew reconstruction.
      record_clock_observation(slot.id, hp.local_now());
      if (slot.down_since >= 0) {
        recovery_.total_downtime += now - slot.down_since;
        slot.down_since = -1.0;
        slot.consecutive_failures = 0;
        slot.next_attempt_at = 0;
      }
      if (config_.heartbeat_timeout > 0 &&
          now - hp.last_heartbeat() > config_.heartbeat_timeout) {
        // Zombie session: status says connected but nothing has happened
        // for longer than any keep-alive period allows.
        escalate(i, EscalateReason::heartbeat);
        continue;
      }
      // A honeypot that died mid-OFFER (or whose advertise order was lost
      // while it was dead) is missing part of its ordered list: repair it.
      if (!slot.files.empty() && !covers(hp.advertised(), slot.files)) {
        repair_advertised(i);
      }
      continue;
    }

    if (status != Status::dead) {
      // connecting/idle: the honeypot is handling itself (login in flight
      // or self-retrying); only interfere when its heartbeat went stale.
      if (config_.heartbeat_timeout > 0 && status == Status::connecting &&
          now - hp.last_heartbeat() > config_.heartbeat_timeout) {
        escalate(i, EscalateReason::heartbeat);
      }
      continue;
    }

    // Dead. Gate relaunch attempts behind the backoff so a honeypot whose
    // server is down does not get reconnected (and recounted) every tick.
    if (slot.down_since < 0) {
      slot.down_since = now;
    }
    if (now < slot.next_attempt_at) {
      ++recovery_.deferred;
      continue;
    }
    if (config_.escalate_after > 0 && !backups_.empty() &&
        slot.consecutive_failures >= config_.escalate_after) {
      escalate(i, EscalateReason::failures);
      continue;
    }
    ++relaunches_;
    ++slot.consecutive_failures;
    slot.next_attempt_at = now + relaunch_backoff(slot.consecutive_failures);
    {
      ByteWriter w;
      w.u32(static_cast<std::uint32_t>(i));
      journal_append(JournalEntryType::relaunch, w.view());
    }
    // Relaunch: reconnect to the assigned server and re-advertise the file
    // list previously ordered (plus anything the honeypot grew itself in
    // greedy mode, which it kept).
    hp.connect_to_server(slot.server);
    if (!slot.files.empty() && !covers(hp.advertised(), slot.files)) {
      repair_advertised(i);
    }
  }
}

RecoveryStats Manager::recovery_stats() const {
  RecoveryStats out = recovery_;
  out.relaunches = relaunches_;
  out.chunks_accepted = spool_store_->chunks_accepted();
  out.chunks_duplicate = spool_store_->chunks_duplicate();
  out.chunks_quarantined = spool_store_->chunks_quarantined();
  out.records_spooled = spool_store_->records_stored();
  if (config_.journal) {
    out.journal_entries = config_.journal->entries_appended();
    out.journal_bytes = config_.journal->size_bytes();
  }
  const Time now = net_.simulation().now();
  std::uint64_t kept = 0;
  out.probe_retries = survey_counters_->retries;
  out.probe_dups_suppressed = survey_counters_->dups;
  const auto tally = [&](const Honeypot& hp) {
    out.honeypot_retries += hp.retries();
    out.records_lost_tail += hp.records_lost_tail();
    out.probe_retries += hp.probe_retransmits();
    out.probe_dups_suppressed += hp.probe_dup_replies();
    kept += hp.log().records.size();
  };
  for (const auto& slot : fleet_) {
    tally(*slot.honeypot);
    if (slot.down_since >= 0) {
      out.total_downtime += now - slot.down_since;
    }
  }
  // Orphans (manager down) still generate and lose records; the experiment
  // ledger counts them even though the dead control plane cannot.
  for (const auto& hp : orphans_) {
    tally(*hp);
  }
  const std::uint64_t generated = kept + out.records_lost_tail;
  if (generated > 0) {
    out.retained_fraction =
        static_cast<double>(kept) / static_cast<double>(generated);
  }
  return out;
}

IntegrityStats Manager::integrity_stats() const {
  IntegrityStats out = integrity_;
  out.records_excluded = records_excluded_;
  for (const auto& slot : fleet_) {
    out += slot.honeypot->integrity_stats();
  }
  for (const auto& hp : orphans_) {
    out += hp->integrity_stats();
  }
  return out;
}

double Manager::server_health(const std::string& name) const {
  const auto it = health_.find(name);
  return it == health_.end() ? 0.0 : it->second.score;
}

bool Manager::server_quarantined(const std::string& name) const {
  return std::any_of(
      quarantines_.begin(), quarantines_.end(),
      [&name](const Quarantine& q) { return q.server_name == name; });
}

net::DefenseStats Manager::defense_stats() const {
  net::DefenseStats out;
  for (const auto& slot : fleet_) {
    out += slot.honeypot->defense_stats();
  }
  for (const auto& hp : orphans_) {
    out += hp->defense_stats();
  }
  return out;
}

Honeypot& Manager::honeypot(std::size_t index) {
  return *fleet_.at(index).honeypot;
}

const Honeypot& Manager::honeypot(std::size_t index) const {
  return *fleet_.at(index).honeypot;
}

std::vector<logbook::LogFile> Manager::collect_logs() const {
  std::vector<logbook::LogFile> logs;
  logs.reserve(fleet_.size());
  for (const auto& slot : fleet_) {
    logs.push_back(slot.honeypot->log());
  }
  return logs;
}

std::vector<std::string> Manager::persist_logs(const std::string& directory) const {
  std::vector<std::string> paths;
  paths.reserve(fleet_.size());
  for (const auto& slot : fleet_) {
    const auto path = directory + "/hp-" +
                      std::to_string(slot.honeypot->config().id) + ".edhplog";
    logbook::save(path, slot.honeypot->log());
    paths.push_back(path);
  }
  return paths;
}

logbook::LogFile Manager::merged_anonymized(std::uint64_t* distinct_peers_out) const {
  auto logs = collect_logs();
  std::uint64_t excluded = 0;
  for (auto& log : logs) {
    const auto before = log.records.size();
    std::erase_if(log.records,
                  [](const logbook::LogRecord& r) { return r.tainted(); });
    excluded += before - log.records.size();
  }
  records_excluded_ = excluded;
  // Live merges read in-memory logs: nothing can sit in chunk quarantine.
  durable_quarantine_records_ = 0;
  auto merged = merge_with_clock_correction(logs);
  const auto distinct = anonymize::renumber_peers(merged);
  if (distinct_peers_out != nullptr) {
    *distinct_peers_out = distinct;
  }
  return merged;
}

logbook::LogFile Manager::merge_with_clock_correction(
    std::span<const logbook::LogFile> logs) const {
  // With clock tracking on, every merge is skew-corrected against the
  // accumulated sightings and audited into time_integrity_. Without it the
  // historical merge runs untouched (merge_logs_skew with zero observations
  // is equivalent, but keeping the old path makes the no-op visible).
  if (!config_.track_clocks || clock_obs_.empty()) {
    return logbook::merge_logs(logs);
  }
  return logbook::merge_logs_skew(logs, clock_obs_, &time_integrity_);
}

logbook::LogFile Manager::merged_anonymized_durable(
    std::uint64_t* distinct_peers_out) const {
  // Salvage pass: the durable store, plus every honeypot's local on-disk
  // spool (chunks cut but never delivered while the manager was down, or
  // delivered but unacked). Ingestion dedups, so overlap is harmless.
  logbook::SpoolStore salvage = *spool_store_;
  const auto salvage_from = [&salvage](const Honeypot& hp) {
    for (const auto& chunk : hp.pending_chunks()) {
      salvage.set_header(chunk.honeypot, hp.log().header);
      salvage.ingest(chunk);
    }
  };
  for (const auto& slot : fleet_) {
    salvage_from(*slot.honeypot);
  }
  for (const auto& hp : orphans_) {
    salvage_from(*hp);
  }
  auto logs = salvage.reassemble_all();
  // Records still resident in corrupt chunks after the salvage pass keep
  // the `quarantined` disposition in the conservation ledger (a winning
  // re-send would have reclassified them as stored during ingestion).
  durable_quarantine_records_ = salvage.records_quarantined_resident();
  std::uint64_t excluded = 0;
  for (auto& log : logs) {
    const auto before = log.records.size();
    std::erase_if(log.records,
                  [](const logbook::LogRecord& r) { return r.tainted(); });
    excluded += before - log.records.size();
  }
  records_excluded_ = excluded;
  auto merged = merge_with_clock_correction(logs);
  const auto distinct = anonymize::renumber_peers(merged);
  if (distinct_peers_out != nullptr) {
    *distinct_peers_out = distinct;
  }
  return merged;
}

std::vector<std::string> Manager::export_observed_names(
    std::uint64_t threshold) const {
  std::vector<std::string> corpus;
  for (const auto& slot : fleet_) {
    const auto& names = slot.honeypot->observed_names();
    corpus.insert(corpus.end(), names.begin(), names.end());
  }
  anonymize::NameAnonymizer anonymizer(corpus, threshold);
  std::vector<std::string> out;
  out.reserve(corpus.size());
  for (const auto& name : corpus) {
    out.push_back(anonymizer.anonymize(name));
  }
  return out;
}

Manager::ObservedFiles Manager::observed_files() const {
  std::unordered_map<FileId, std::uint32_t> all;
  for (const auto& slot : fleet_) {
    for (const auto& [file, size] : slot.honeypot->observed_files()) {
      all.try_emplace(file, size);
    }
  }
  ObservedFiles out;
  out.distinct = all.size();
  for (const auto& [file, size] : all) {
    out.bytes += size;
  }
  return out;
}

}  // namespace edhp::honeypot
