#pragma once
// Measurement-integrity accounting shared by the honeypot defense layer,
// the manager's health scoring, and the scenario results.
//
// The Byzantine fault layer (fault/byzantine.hpp) makes servers lie and
// peers forge; these counters account for everything the defenses caught
// and everything the published dataset excluded because of it. The headline
// invariant (tests/test_byzantine.cpp) is that every record missing from
// the merged log is accounted here: merged + records_excluded == collected.

#include <cstdint>

namespace edhp::honeypot {

struct IntegrityStats {
  // --- Self-probes (advertise-and-verify + canary GET-SOURCES) ----------
  std::uint64_t probes_sent = 0;
  std::uint64_t probes_confirmed = 0;
  std::uint64_t probes_missed = 0;

  // --- Detections --------------------------------------------------------
  /// Canary replies with sources, or upload queries for never-advertised
  /// files: the server invented data.
  std::uint64_t fabricated_sources_detected = 0;
  /// Shared-file lists claiming the honeypot's own advertised hashes.
  std::uint64_t forged_lists_rejected = 0;
  /// Same-connection HELLOs under rotated user hashes.
  std::uint64_t replayed_hellos_rejected = 0;

  // --- Dataset accounting -------------------------------------------------
  /// Records provenance-tainted at the honeypot (still collected, so the
  /// operator can audit them, but excluded from the merged dataset).
  std::uint64_t records_quarantined = 0;
  /// Tainted records the manager's merge pass actually excluded.
  std::uint64_t records_excluded = 0;

  // --- Manager verdicts ---------------------------------------------------
  std::uint64_t servers_quarantined = 0;
  std::uint64_t servers_reinstated = 0;

  IntegrityStats& operator+=(const IntegrityStats& o) {
    probes_sent += o.probes_sent;
    probes_confirmed += o.probes_confirmed;
    probes_missed += o.probes_missed;
    fabricated_sources_detected += o.fabricated_sources_detected;
    forged_lists_rejected += o.forged_lists_rejected;
    replayed_hellos_rejected += o.replayed_hellos_rejected;
    records_quarantined += o.records_quarantined;
    records_excluded += o.records_excluded;
    servers_quarantined += o.servers_quarantined;
    servers_reinstated += o.servers_reinstated;
    return *this;
  }

  bool operator==(const IntegrityStats&) const = default;
};

}  // namespace edhp::honeypot
