#pragma once
// eDonkey file hashing.
//
// A file is split into parts of kPartSize (9,728,000) bytes. Each part is
// hashed with MD4; a single-part file's FileId is that digest, while a
// multi-part file's FileId is the MD4 of the concatenated part digests.
// This is how a downloader detects that a honeypot sent random content: the
// completed part's MD4 does not match the expected part hash.

#include <cstdint>
#include <span>
#include <vector>

#include "common/ids.hpp"
#include "common/md4.hpp"
#include "proto/opcodes.hpp"

namespace edhp::proto {

/// Per-part MD4 digests of a content buffer (at least one part, even for an
/// empty file, matching eDonkey semantics).
[[nodiscard]] std::vector<Md4::Digest> part_hashes(
    std::span<const std::uint8_t> content);

/// FileId from precomputed part digests.
[[nodiscard]] FileId file_id_from_parts(std::span<const Md4::Digest> parts);

/// FileId straight from content.
[[nodiscard]] FileId hash_file(std::span<const std::uint8_t> content);

/// Number of parts a file of `size` bytes occupies (>= 1).
[[nodiscard]] constexpr std::uint32_t part_count(std::uint64_t size) {
  return size == 0 ? 1u : static_cast<std::uint32_t>((size + kPartSize - 1) / kPartSize);
}

/// Whether `data` is a valid copy of the part whose expected digest is
/// `expected` — the check a real client performs when a part completes.
[[nodiscard]] bool verify_part(std::span<const std::uint8_t> data,
                               const Md4::Digest& expected);

}  // namespace edhp::proto
