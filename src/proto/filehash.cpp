#include "proto/filehash.hpp"

namespace edhp::proto {

std::vector<Md4::Digest> part_hashes(std::span<const std::uint8_t> content) {
  std::vector<Md4::Digest> parts;
  const std::size_t n = content.size();
  std::size_t off = 0;
  do {
    const std::size_t len = std::min<std::size_t>(kPartSize, n - off);
    parts.push_back(Md4::hash(content.subspan(off, len)));
    off += len;
  } while (off < n);
  return parts;
}

FileId file_id_from_parts(std::span<const Md4::Digest> parts) {
  if (parts.empty()) {
    return FileId{};
  }
  if (parts.size() == 1) {
    return FileId(parts.front());
  }
  Md4 h;
  for (const auto& p : parts) {
    h.update(std::span<const std::uint8_t>(p.data(), p.size()));
  }
  return FileId(h.finish());
}

FileId hash_file(std::span<const std::uint8_t> content) {
  const auto parts = part_hashes(content);
  return file_id_from_parts(parts);
}

bool verify_part(std::span<const std::uint8_t> data, const Md4::Digest& expected) {
  return Md4::hash(data) == expected;
}

}  // namespace edhp::proto
