#pragma once
// eDonkey UDP (datagram) server messages.
//
// Clients probe servers over UDP for load and liveness: a status request
// returns the server's user and file counts. The paper's manager uses this
// information to assign honeypots ("the choice of servers may also be
// guided by their resources and number of users, so that the honeypots may
// reach the largest possible number of peers").
//
// Wire format: one datagram = protocol marker 0xE3, opcode, payload (no
// length field — datagrams are self-delimiting).

#include <cstdint>
#include <span>
#include <variant>
#include <vector>

#include "common/bytes.hpp"

namespace edhp::proto {

inline constexpr std::uint8_t kOpGlobServStatReq = 0x96;
inline constexpr std::uint8_t kOpGlobServStatRes = 0x97;
inline constexpr std::uint8_t kOpGlobServDescReq = 0xA2;
inline constexpr std::uint8_t kOpGlobServDescRes = 0xA3;

/// Ping a server for its status. The challenge is echoed in the reply so
/// the client can match responses to requests over the unreliable channel.
struct ServStatRequest {
  std::uint32_t challenge = 0;

  bool operator==(const ServStatRequest&) const = default;
};

/// Server status: current load.
struct ServStatResponse {
  std::uint32_t challenge = 0;
  std::uint32_t users = 0;
  std::uint32_t files = 0;

  bool operator==(const ServStatResponse&) const = default;
};

/// Ask for the server's name and description.
struct ServDescRequest {
  bool operator==(const ServDescRequest&) const = default;
};

struct ServDescResponse {
  std::string name;
  std::string description;

  bool operator==(const ServDescResponse&) const = default;
};

using AnyUdpMessage = std::variant<ServStatRequest, ServStatResponse,
                                   ServDescRequest, ServDescResponse>;

/// Serialize one datagram.
[[nodiscard]] std::vector<std::uint8_t> encode_udp(const AnyUdpMessage& msg);

/// Parse one datagram; throws DecodeError on malformed input.
[[nodiscard]] AnyUdpMessage decode_udp(std::span<const std::uint8_t> datagram);

}  // namespace edhp::proto
