#include "proto/udp_messages.hpp"

#include "proto/opcodes.hpp"

namespace edhp::proto {

std::vector<std::uint8_t> encode_udp(const AnyUdpMessage& msg) {
  ByteWriter w(16);
  w.u8(kProtoEDonkey);
  std::visit(
      [&w](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, ServStatRequest>) {
          w.u8(kOpGlobServStatReq);
          w.u32(m.challenge);
        } else if constexpr (std::is_same_v<T, ServStatResponse>) {
          w.u8(kOpGlobServStatRes);
          w.u32(m.challenge);
          w.u32(m.users);
          w.u32(m.files);
        } else if constexpr (std::is_same_v<T, ServDescRequest>) {
          w.u8(kOpGlobServDescReq);
        } else if constexpr (std::is_same_v<T, ServDescResponse>) {
          w.u8(kOpGlobServDescRes);
          w.str16(m.name);
          w.str16(m.description);
        }
      },
      msg);
  return std::move(w).take();
}

AnyUdpMessage decode_udp(std::span<const std::uint8_t> datagram) {
  ByteReader r(datagram);
  if (r.u8() != kProtoEDonkey) {
    throw DecodeError("udp datagram: bad protocol marker");
  }
  const std::uint8_t op = r.u8();
  auto finish = [&r](AnyUdpMessage m) {
    r.expect_done("udp datagram");
    return m;
  };
  switch (op) {
    case kOpGlobServStatReq:
      return finish(ServStatRequest{r.u32()});
    case kOpGlobServStatRes: {
      ServStatResponse m;
      m.challenge = r.u32();
      m.users = r.u32();
      m.files = r.u32();
      return finish(m);
    }
    case kOpGlobServDescReq:
      return finish(ServDescRequest{});
    case kOpGlobServDescRes: {
      ServDescResponse m;
      m.name = r.str16();
      m.description = r.str16();
      return finish(std::move(m));
    }
    default:
      throw DecodeError("udp datagram: unknown opcode " + std::to_string(op));
  }
}

}  // namespace edhp::proto
