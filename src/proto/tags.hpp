#pragma once
// eDonkey tag system: self-describing (type, name, value) attributes used in
// login, offer-files and search messages. We implement the two types the
// 2008 protocol actually relies on for these messages — strings and 32-bit
// integers — with the common 1-byte "special" tag names.
//
// Tags come in two flavours sharing one wire format: the owning Tag (value
// holds a std::string copy) and the non-owning TagView (value holds a
// std::string_view borrowing the receive buffer). View-decoded tags are
// appended to a caller-supplied arena vector and addressed by TagRange
// indices, so arena growth never invalidates a previously decoded message.

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "common/bytes.hpp"

namespace edhp::proto {

/// A single tag: 1-byte name plus a string or u32 value.
struct Tag {
  std::uint8_t name = 0;
  std::variant<std::string, std::uint32_t> value;

  [[nodiscard]] static Tag string_tag(std::uint8_t name, std::string v);
  [[nodiscard]] static Tag u32_tag(std::uint8_t name, std::uint32_t v);

  [[nodiscard]] bool is_string() const noexcept {
    return std::holds_alternative<std::string>(value);
  }
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] std::uint32_t as_u32() const;

  bool operator==(const Tag&) const = default;
};

/// Non-owning tag: the string value (if any) borrows the buffer the tag was
/// decoded from and is valid only as long as that buffer lives.
struct TagView {
  std::uint8_t name = 0;
  std::variant<std::string_view, std::uint32_t> value;

  [[nodiscard]] bool is_string() const noexcept {
    return std::holds_alternative<std::string_view>(value);
  }
  [[nodiscard]] std::string_view as_string() const;
  [[nodiscard]] std::uint32_t as_u32() const;

  bool operator==(const TagView&) const = default;
};

/// Index range into an arena vector of TagView. Ranges stay valid when the
/// arena grows (they are indices, not pointers).
struct TagRange {
  std::uint32_t first = 0;
  std::uint32_t count = 0;
};

/// Serialize one tag.
void encode_tag(ByteWriter& w, const Tag& tag);
/// Parse one tag; throws DecodeError on malformed input.
[[nodiscard]] Tag decode_tag(ByteReader& r);
/// Parse one tag without copying its string value.
[[nodiscard]] TagView decode_tag_view(ByteReader& r);

/// Serialize a tag list with its u32 count prefix.
void encode_tags(ByteWriter& w, const std::vector<Tag>& tags);
/// Parse a tag list; `max_tags` bounds memory for hostile input.
[[nodiscard]] std::vector<Tag> decode_tags(ByteReader& r, std::size_t max_tags = 256);
/// Parse a tag list into `arena` (appending) and return the range covering
/// the freshly decoded tags. Accept/reject behaviour matches decode_tags.
TagRange decode_tags_view(ByteReader& r, std::vector<TagView>& arena,
                          std::size_t max_tags = 256);

/// First tag with the given name, or nullptr. Accepts any contiguous tag
/// sequence (owned vectors and arena spans alike).
[[nodiscard]] const Tag* find_tag(std::span<const Tag> tags, std::uint8_t name);
[[nodiscard]] const TagView* find_tag(std::span<const TagView> tags,
                                      std::uint8_t name);

/// Typed lookups for interpreting tags after decode. A tag whose value type
/// does not match counts as absent: hostile peers can put a u32 where a name
/// string belongs, and that must not throw past the decode guard.
[[nodiscard]] const std::string* find_string_tag(std::span<const Tag> tags,
                                                 std::uint8_t name);
[[nodiscard]] const std::uint32_t* find_u32_tag(std::span<const Tag> tags,
                                                std::uint8_t name);
[[nodiscard]] const std::string_view* find_string_tag(
    std::span<const TagView> tags, std::uint8_t name);
[[nodiscard]] const std::uint32_t* find_u32_tag(std::span<const TagView> tags,
                                                std::uint8_t name);

}  // namespace edhp::proto
