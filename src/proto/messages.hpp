#pragma once
// eDonkey message structures and their wire codecs.
//
// Every message exchanged in the platform — between honeypots and servers,
// peers and servers, and peers and honeypots — is one of these structs. The
// simulator serializes each message to real eDonkey wire bytes (header,
// opcode, payload) and the receiver parses them back, so this layer is
// exactly what a live deployment would link against.
//
// The opcode space is contextual: 0x01 is LOGIN-REQUEST on a client-server
// connection but HELLO on a client-client connection, so decoding requires
// the Channel the packet arrived on.

#include <array>
#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "proto/opcodes.hpp"
#include "proto/tags.hpp"

namespace edhp::proto {

/// Which kind of connection a packet travelled on (selects the opcode map).
enum class Channel : std::uint8_t {
  client_server,  ///< peer or honeypot <-> directory server
  client_client,  ///< peer <-> peer (including honeypots)
};

/// A file as advertised to a server (OFFER-FILES) or listed to another peer
/// (ASK-SHARED-FILES answer): hash, the advertiser's address, and metadata.
struct PublishedFile {
  FileId file;
  std::uint32_t client_id = 0;
  std::uint16_t port = 0;
  std::string name;
  std::uint32_t size = 0;  ///< bytes; 2008-era wire format is 32-bit

  bool operator==(const PublishedFile&) const = default;
};

/// One provider returned by FOUND-SOURCES.
struct SourceEntry {
  std::uint32_t client_id = 0;
  std::uint16_t port = 0;

  bool operator==(const SourceEntry&) const = default;
};

// --- Client <-> server messages -------------------------------------------

/// First message on a server connection: identifies the client.
struct LoginRequest {
  UserId user;
  std::uint32_t client_id = 0;  ///< 0 until the server assigns one
  std::uint16_t port = 0;
  std::vector<Tag> tags;  ///< kTagName, kTagVersion, kTagPort

  bool operator==(const LoginRequest&) const = default;
};

/// Server's reply to login: the clientID for this session (HighID = the
/// peer's IP as u32, LowID < 2^24 when the peer is not reachable).
struct IdChange {
  std::uint32_t client_id = 0;
  std::uint32_t tcp_flags = 0;

  bool operator==(const IdChange&) const = default;
};

/// Advertise (replace) the sender's shared-file list; also the keep-alive.
struct OfferFiles {
  std::vector<PublishedFile> files;

  bool operator==(const OfferFiles&) const = default;
};

/// Ask the server for providers of a file.
struct GetSources {
  FileId file;

  bool operator==(const GetSources&) const = default;
};

/// Server's provider list for a file.
struct FoundSources {
  FileId file;
  std::vector<SourceEntry> sources;

  bool operator==(const FoundSources&) const = default;
};

/// Keyword search (single expression; the honeypot platform only needs
/// plain keyword queries).
struct SearchRequest {
  std::string query;

  bool operator==(const SearchRequest&) const = default;
};

/// Search results.
struct SearchResult {
  std::vector<PublishedFile> files;

  bool operator==(const SearchResult&) const = default;
};

/// Free-text administrative message from the server.
struct ServerMessage {
  std::string text;

  bool operator==(const ServerMessage&) const = default;
};

// --- Client <-> client messages -------------------------------------------

/// Handshake opening a peer connection. Carries the persistent user hash,
/// the session clientID, the listening port, metadata tags, and the address
/// of the server the peer is connected to.
struct Hello {
  UserId user;
  std::uint32_t client_id = 0;
  std::uint16_t port = 0;
  std::vector<Tag> tags;  ///< kTagName, kTagVersion
  std::uint32_t server_ip = 0;
  std::uint16_t server_port = 0;

  bool operator==(const Hello&) const = default;
};

/// Handshake reply; same payload as Hello.
struct HelloAnswer {
  UserId user;
  std::uint32_t client_id = 0;
  std::uint16_t port = 0;
  std::vector<Tag> tags;
  std::uint32_t server_ip = 0;
  std::uint16_t server_port = 0;

  bool operator==(const HelloAnswer&) const = default;
};

/// Request to be granted an upload slot for a file.
struct StartUpload {
  FileId file;

  bool operator==(const StartUpload&) const = default;
};

/// Grant of an upload slot.
struct AcceptUpload {
  bool operator==(const AcceptUpload&) const = default;
};

/// Position in the provider's upload queue.
struct QueueRank {
  std::uint32_t rank = 0;

  bool operator==(const QueueRank&) const = default;
};

/// Request up to three byte ranges [begin, end) of a file.
struct RequestParts {
  FileId file;
  std::array<std::uint32_t, kRequestPartRanges> begin{};
  std::array<std::uint32_t, kRequestPartRanges> end{};

  bool operator==(const RequestParts&) const = default;
};

/// One block of file content.
struct SendingPart {
  FileId file;
  std::uint32_t begin = 0;
  std::uint32_t end = 0;
  std::vector<std::uint8_t> data;

  bool operator==(const SendingPart&) const = default;
};

/// Abort an in-progress transfer.
struct CancelTransfer {
  bool operator==(const CancelTransfer&) const = default;
};

/// Ask a peer for the list of files it shares (the "view shared files"
/// feature; may be refused by configuration).
struct AskSharedFiles {
  bool operator==(const AskSharedFiles&) const = default;
};

/// The peer's shared-file list.
struct AskSharedFilesAnswer {
  std::vector<PublishedFile> files;

  bool operator==(const AskSharedFilesAnswer&) const = default;
};

/// Any protocol message.
using AnyMessage =
    std::variant<LoginRequest, IdChange, OfferFiles, GetSources, FoundSources,
                 SearchRequest, SearchResult, ServerMessage, Hello, HelloAnswer,
                 StartUpload, AcceptUpload, QueueRank, RequestParts, SendingPart,
                 CancelTransfer, AskSharedFiles, AskSharedFilesAnswer>;

// --- Zero-copy view layer --------------------------------------------------
//
// decode_view() parses a packet without copying payload bytes: strings become
// std::string_view into the receive buffer, variable-length sequences (tags,
// file lists, source lists) are appended to a caller-owned MessageArena and
// addressed by index ranges. The views are valid only while BOTH the packet
// buffer and the arena live; net::Endpoint guarantees the buffer outlives the
// message handler, so a handler may decode and act on views with zero
// allocation in steady state. Consumers that retain data (server index,
// honeypot observation log, spool) must copy out of the views explicitly.

/// Index range into MessageArena::files.
struct FileRange {
  std::uint32_t first = 0;
  std::uint32_t count = 0;
};

/// Index range into MessageArena::sources.
struct SourceRange {
  std::uint32_t first = 0;
  std::uint32_t count = 0;
};

/// Non-owning counterpart of PublishedFile. `name` and `size` are extracted
/// from the tag list with the same strictness as the owning decoder; the raw
/// tags stay addressable through `tags` for consumers that want the rest.
struct PublishedFileView {
  FileId file;
  std::uint32_t client_id = 0;
  std::uint16_t port = 0;
  std::string_view name;
  std::uint32_t size = 0;
  TagRange tags;
};

/// Per-delivery scratch storage backing one decoded view message. reset() is
/// cheap (capacity is retained), so a long-lived arena reaches a zero-
/// allocation steady state after a handful of messages.
struct MessageArena {
  std::vector<TagView> tags;
  std::vector<PublishedFileView> files;
  std::vector<SourceEntry> sources;

  void reset() noexcept {
    tags.clear();
    files.clear();
    sources.clear();
  }

  [[nodiscard]] std::span<const TagView> of(TagRange r) const {
    return std::span<const TagView>(tags).subspan(r.first, r.count);
  }
  [[nodiscard]] std::span<const PublishedFileView> of(FileRange r) const {
    return std::span<const PublishedFileView>(files).subspan(r.first, r.count);
  }
  [[nodiscard]] std::span<const SourceEntry> of(SourceRange r) const {
    return std::span<const SourceEntry>(sources).subspan(r.first, r.count);
  }
};

struct LoginRequestView {
  UserId user;
  std::uint32_t client_id = 0;
  std::uint16_t port = 0;
  TagRange tags;
};

struct OfferFilesView {
  FileRange files;
};

struct FoundSourcesView {
  FileId file;
  SourceRange sources;
};

struct SearchRequestView {
  std::string_view query;
};

struct SearchResultView {
  FileRange files;
};

struct ServerMessageView {
  std::string_view text;
};

struct HelloView {
  UserId user;
  std::uint32_t client_id = 0;
  std::uint16_t port = 0;
  TagRange tags;
  std::uint32_t server_ip = 0;
  std::uint16_t server_port = 0;
};

struct HelloAnswerView {
  UserId user;
  std::uint32_t client_id = 0;
  std::uint16_t port = 0;
  TagRange tags;
  std::uint32_t server_ip = 0;
  std::uint16_t server_port = 0;
};

struct SendingPartView {
  FileId file;
  std::uint32_t begin = 0;
  std::uint32_t end = 0;
  std::span<const std::uint8_t> data;  ///< borrows the packet buffer
};

struct AskSharedFilesAnswerView {
  FileRange files;
};

/// Any protocol message, view flavour. Fixed-size messages are shared with
/// AnyMessage; alternatives appear in the same order as AnyMessage.
using AnyMessageView =
    std::variant<LoginRequestView, IdChange, OfferFilesView, GetSources,
                 FoundSourcesView, SearchRequestView, SearchResultView,
                 ServerMessageView, HelloView, HelloAnswerView, StartUpload,
                 AcceptUpload, QueueRank, RequestParts, SendingPartView,
                 CancelTransfer, AskSharedFiles, AskSharedFilesAnswerView>;

/// Serialize a message into a complete packet (header + opcode + payload).
[[nodiscard]] std::vector<std::uint8_t> encode(const AnyMessage& msg);

/// Parse a complete packet received on `channel`; throws DecodeError on any
/// malformed input (bad marker, bad length, unknown opcode, short payload,
/// trailing bytes).
[[nodiscard]] AnyMessage decode(Channel channel,
                                std::span<const std::uint8_t> packet);

/// Zero-copy parse of a complete packet. Resets `arena`, then fills it with
/// the message's variable-length pieces. Accepts and rejects exactly the
/// same inputs as decode() — the owning decoder is implemented on top of
/// this one.
[[nodiscard]] AnyMessageView decode_view(Channel channel,
                                         std::span<const std::uint8_t> packet,
                                         MessageArena& arena);

/// Deep-copy a view message (plus its arena pieces) into an owning message.
[[nodiscard]] AnyMessage materialize(const AnyMessageView& msg,
                                     const MessageArena& arena);

/// Opcode a message serializes to (for logging and tests).
[[nodiscard]] std::uint8_t opcode_of(const AnyMessage& msg);

/// Human-readable message name (for logs and reports).
[[nodiscard]] std::string_view name_of(const AnyMessage& msg);
[[nodiscard]] std::string_view name_of(const AnyMessageView& msg);

}  // namespace edhp::proto
