#pragma once
// eDonkey message structures and their wire codecs.
//
// Every message exchanged in the platform — between honeypots and servers,
// peers and servers, and peers and honeypots — is one of these structs. The
// simulator serializes each message to real eDonkey wire bytes (header,
// opcode, payload) and the receiver parses them back, so this layer is
// exactly what a live deployment would link against.
//
// The opcode space is contextual: 0x01 is LOGIN-REQUEST on a client-server
// connection but HELLO on a client-client connection, so decoding requires
// the Channel the packet arrived on.

#include <array>
#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "proto/opcodes.hpp"
#include "proto/tags.hpp"

namespace edhp::proto {

/// Which kind of connection a packet travelled on (selects the opcode map).
enum class Channel : std::uint8_t {
  client_server,  ///< peer or honeypot <-> directory server
  client_client,  ///< peer <-> peer (including honeypots)
};

/// A file as advertised to a server (OFFER-FILES) or listed to another peer
/// (ASK-SHARED-FILES answer): hash, the advertiser's address, and metadata.
struct PublishedFile {
  FileId file;
  std::uint32_t client_id = 0;
  std::uint16_t port = 0;
  std::string name;
  std::uint32_t size = 0;  ///< bytes; 2008-era wire format is 32-bit

  bool operator==(const PublishedFile&) const = default;
};

/// One provider returned by FOUND-SOURCES.
struct SourceEntry {
  std::uint32_t client_id = 0;
  std::uint16_t port = 0;

  bool operator==(const SourceEntry&) const = default;
};

// --- Client <-> server messages -------------------------------------------

/// First message on a server connection: identifies the client.
struct LoginRequest {
  UserId user;
  std::uint32_t client_id = 0;  ///< 0 until the server assigns one
  std::uint16_t port = 0;
  std::vector<Tag> tags;  ///< kTagName, kTagVersion, kTagPort

  bool operator==(const LoginRequest&) const = default;
};

/// Server's reply to login: the clientID for this session (HighID = the
/// peer's IP as u32, LowID < 2^24 when the peer is not reachable).
struct IdChange {
  std::uint32_t client_id = 0;
  std::uint32_t tcp_flags = 0;

  bool operator==(const IdChange&) const = default;
};

/// Advertise (replace) the sender's shared-file list; also the keep-alive.
struct OfferFiles {
  std::vector<PublishedFile> files;

  bool operator==(const OfferFiles&) const = default;
};

/// Ask the server for providers of a file.
struct GetSources {
  FileId file;

  bool operator==(const GetSources&) const = default;
};

/// Server's provider list for a file.
struct FoundSources {
  FileId file;
  std::vector<SourceEntry> sources;

  bool operator==(const FoundSources&) const = default;
};

/// Keyword search (single expression; the honeypot platform only needs
/// plain keyword queries).
struct SearchRequest {
  std::string query;

  bool operator==(const SearchRequest&) const = default;
};

/// Search results.
struct SearchResult {
  std::vector<PublishedFile> files;

  bool operator==(const SearchResult&) const = default;
};

/// Free-text administrative message from the server.
struct ServerMessage {
  std::string text;

  bool operator==(const ServerMessage&) const = default;
};

// --- Client <-> client messages -------------------------------------------

/// Handshake opening a peer connection. Carries the persistent user hash,
/// the session clientID, the listening port, metadata tags, and the address
/// of the server the peer is connected to.
struct Hello {
  UserId user;
  std::uint32_t client_id = 0;
  std::uint16_t port = 0;
  std::vector<Tag> tags;  ///< kTagName, kTagVersion
  std::uint32_t server_ip = 0;
  std::uint16_t server_port = 0;

  bool operator==(const Hello&) const = default;
};

/// Handshake reply; same payload as Hello.
struct HelloAnswer {
  UserId user;
  std::uint32_t client_id = 0;
  std::uint16_t port = 0;
  std::vector<Tag> tags;
  std::uint32_t server_ip = 0;
  std::uint16_t server_port = 0;

  bool operator==(const HelloAnswer&) const = default;
};

/// Request to be granted an upload slot for a file.
struct StartUpload {
  FileId file;

  bool operator==(const StartUpload&) const = default;
};

/// Grant of an upload slot.
struct AcceptUpload {
  bool operator==(const AcceptUpload&) const = default;
};

/// Position in the provider's upload queue.
struct QueueRank {
  std::uint32_t rank = 0;

  bool operator==(const QueueRank&) const = default;
};

/// Request up to three byte ranges [begin, end) of a file.
struct RequestParts {
  FileId file;
  std::array<std::uint32_t, kRequestPartRanges> begin{};
  std::array<std::uint32_t, kRequestPartRanges> end{};

  bool operator==(const RequestParts&) const = default;
};

/// One block of file content.
struct SendingPart {
  FileId file;
  std::uint32_t begin = 0;
  std::uint32_t end = 0;
  std::vector<std::uint8_t> data;

  bool operator==(const SendingPart&) const = default;
};

/// Abort an in-progress transfer.
struct CancelTransfer {
  bool operator==(const CancelTransfer&) const = default;
};

/// Ask a peer for the list of files it shares (the "view shared files"
/// feature; may be refused by configuration).
struct AskSharedFiles {
  bool operator==(const AskSharedFiles&) const = default;
};

/// The peer's shared-file list.
struct AskSharedFilesAnswer {
  std::vector<PublishedFile> files;

  bool operator==(const AskSharedFilesAnswer&) const = default;
};

/// Any protocol message.
using AnyMessage =
    std::variant<LoginRequest, IdChange, OfferFiles, GetSources, FoundSources,
                 SearchRequest, SearchResult, ServerMessage, Hello, HelloAnswer,
                 StartUpload, AcceptUpload, QueueRank, RequestParts, SendingPart,
                 CancelTransfer, AskSharedFiles, AskSharedFilesAnswer>;

/// Serialize a message into a complete packet (header + opcode + payload).
[[nodiscard]] std::vector<std::uint8_t> encode(const AnyMessage& msg);

/// Parse a complete packet received on `channel`; throws DecodeError on any
/// malformed input (bad marker, bad length, unknown opcode, short payload,
/// trailing bytes).
[[nodiscard]] AnyMessage decode(Channel channel,
                                std::span<const std::uint8_t> packet);

/// Opcode a message serializes to (for logging and tests).
[[nodiscard]] std::uint8_t opcode_of(const AnyMessage& msg);

/// Human-readable message name (for logs and reports).
[[nodiscard]] std::string_view name_of(const AnyMessage& msg);

}  // namespace edhp::proto
