#include "proto/tags.hpp"

#include "proto/opcodes.hpp"

namespace edhp::proto {

Tag Tag::string_tag(std::uint8_t name, std::string v) {
  return Tag{name, std::move(v)};
}

Tag Tag::u32_tag(std::uint8_t name, std::uint32_t v) { return Tag{name, v}; }

const std::string& Tag::as_string() const {
  const auto* s = std::get_if<std::string>(&value);
  if (s == nullptr) {
    throw DecodeError("Tag: expected string value");
  }
  return *s;
}

std::uint32_t Tag::as_u32() const {
  const auto* v = std::get_if<std::uint32_t>(&value);
  if (v == nullptr) {
    throw DecodeError("Tag: expected u32 value");
  }
  return *v;
}

std::string_view TagView::as_string() const {
  const auto* s = std::get_if<std::string_view>(&value);
  if (s == nullptr) {
    throw DecodeError("Tag: expected string value");
  }
  return *s;
}

std::uint32_t TagView::as_u32() const {
  const auto* v = std::get_if<std::uint32_t>(&value);
  if (v == nullptr) {
    throw DecodeError("Tag: expected u32 value");
  }
  return *v;
}

void encode_tag(ByteWriter& w, const Tag& tag) {
  w.u8(tag.is_string() ? kTagTypeString : kTagTypeU32);
  w.u16(1);  // special 1-byte tag name
  w.u8(tag.name);
  if (tag.is_string()) {
    w.str16(tag.as_string());
  } else {
    w.u32(tag.as_u32());
  }
}

TagView decode_tag_view(ByteReader& r) {
  const std::uint8_t type = r.u8();
  const std::uint16_t name_len = r.u16();
  if (name_len == 0) {
    throw DecodeError("Tag: empty tag name");
  }
  // We emit 1-byte names; tolerate longer names by using the first byte as
  // the identifier, as real clients do for unknown metadata tags.
  const auto name_bytes = r.bytes(name_len);
  const std::uint8_t name = name_bytes[0];
  switch (type) {
    case kTagTypeString:
      return TagView{name, r.str16_view()};
    case kTagTypeU32:
      return TagView{name, r.u32()};
    default:
      throw DecodeError("Tag: unsupported tag type " + std::to_string(type));
  }
}

Tag decode_tag(ByteReader& r) {
  const TagView v = decode_tag_view(r);
  if (v.is_string()) {
    return Tag::string_tag(v.name, std::string(v.as_string()));
  }
  return Tag::u32_tag(v.name, v.as_u32());
}

void encode_tags(ByteWriter& w, const std::vector<Tag>& tags) {
  w.u32(static_cast<std::uint32_t>(tags.size()));
  for (const auto& t : tags) {
    encode_tag(w, t);
  }
}

std::vector<Tag> decode_tags(ByteReader& r, std::size_t max_tags) {
  const std::uint32_t n = r.u32();
  if (n > max_tags) {
    throw DecodeError("Tag list: count " + std::to_string(n) + " exceeds limit");
  }
  std::vector<Tag> tags;
  tags.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    tags.push_back(decode_tag(r));
  }
  return tags;
}

TagRange decode_tags_view(ByteReader& r, std::vector<TagView>& arena,
                          std::size_t max_tags) {
  const std::uint32_t n = r.u32();
  if (n > max_tags) {
    throw DecodeError("Tag list: count " + std::to_string(n) + " exceeds limit");
  }
  TagRange range{static_cast<std::uint32_t>(arena.size()), n};
  for (std::uint32_t i = 0; i < n; ++i) {
    arena.push_back(decode_tag_view(r));
  }
  return range;
}

const Tag* find_tag(std::span<const Tag> tags, std::uint8_t name) {
  for (const auto& t : tags) {
    if (t.name == name) return &t;
  }
  return nullptr;
}

const TagView* find_tag(std::span<const TagView> tags, std::uint8_t name) {
  for (const auto& t : tags) {
    if (t.name == name) return &t;
  }
  return nullptr;
}

const std::string* find_string_tag(std::span<const Tag> tags,
                                   std::uint8_t name) {
  const Tag* t = find_tag(tags, name);
  return t ? std::get_if<std::string>(&t->value) : nullptr;
}

const std::uint32_t* find_u32_tag(std::span<const Tag> tags,
                                  std::uint8_t name) {
  const Tag* t = find_tag(tags, name);
  return t ? std::get_if<std::uint32_t>(&t->value) : nullptr;
}

const std::string_view* find_string_tag(std::span<const TagView> tags,
                                        std::uint8_t name) {
  const TagView* t = find_tag(tags, name);
  return t ? std::get_if<std::string_view>(&t->value) : nullptr;
}

const std::uint32_t* find_u32_tag(std::span<const TagView> tags,
                                  std::uint8_t name) {
  const TagView* t = find_tag(tags, name);
  return t ? std::get_if<std::uint32_t>(&t->value) : nullptr;
}

}  // namespace edhp::proto
