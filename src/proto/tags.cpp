#include "proto/tags.hpp"

#include "proto/opcodes.hpp"

namespace edhp::proto {

Tag Tag::string_tag(std::uint8_t name, std::string v) {
  return Tag{name, std::move(v)};
}

Tag Tag::u32_tag(std::uint8_t name, std::uint32_t v) { return Tag{name, v}; }

const std::string& Tag::as_string() const {
  const auto* s = std::get_if<std::string>(&value);
  if (s == nullptr) {
    throw DecodeError("Tag: expected string value");
  }
  return *s;
}

std::uint32_t Tag::as_u32() const {
  const auto* v = std::get_if<std::uint32_t>(&value);
  if (v == nullptr) {
    throw DecodeError("Tag: expected u32 value");
  }
  return *v;
}

void encode_tag(ByteWriter& w, const Tag& tag) {
  w.u8(tag.is_string() ? kTagTypeString : kTagTypeU32);
  w.u16(1);  // special 1-byte tag name
  w.u8(tag.name);
  if (tag.is_string()) {
    w.str16(tag.as_string());
  } else {
    w.u32(tag.as_u32());
  }
}

Tag decode_tag(ByteReader& r) {
  const std::uint8_t type = r.u8();
  const std::uint16_t name_len = r.u16();
  if (name_len == 0) {
    throw DecodeError("Tag: empty tag name");
  }
  // We emit 1-byte names; tolerate longer names by using the first byte as
  // the identifier, as real clients do for unknown metadata tags.
  const auto name_bytes = r.bytes(name_len);
  const std::uint8_t name = name_bytes[0];
  switch (type) {
    case kTagTypeString:
      return Tag::string_tag(name, r.str16());
    case kTagTypeU32:
      return Tag::u32_tag(name, r.u32());
    default:
      throw DecodeError("Tag: unsupported tag type " + std::to_string(type));
  }
}

void encode_tags(ByteWriter& w, const std::vector<Tag>& tags) {
  w.u32(static_cast<std::uint32_t>(tags.size()));
  for (const auto& t : tags) {
    encode_tag(w, t);
  }
}

std::vector<Tag> decode_tags(ByteReader& r, std::size_t max_tags) {
  const std::uint32_t n = r.u32();
  if (n > max_tags) {
    throw DecodeError("Tag list: count " + std::to_string(n) + " exceeds limit");
  }
  std::vector<Tag> tags;
  tags.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    tags.push_back(decode_tag(r));
  }
  return tags;
}

const Tag* find_tag(const std::vector<Tag>& tags, std::uint8_t name) {
  for (const auto& t : tags) {
    if (t.name == name) return &t;
  }
  return nullptr;
}

const std::string* find_string_tag(const std::vector<Tag>& tags,
                                   std::uint8_t name) {
  const Tag* t = find_tag(tags, name);
  return t ? std::get_if<std::string>(&t->value) : nullptr;
}

const std::uint32_t* find_u32_tag(const std::vector<Tag>& tags,
                                  std::uint8_t name) {
  const Tag* t = find_tag(tags, name);
  return t ? std::get_if<std::uint32_t>(&t->value) : nullptr;
}

}  // namespace edhp::proto
