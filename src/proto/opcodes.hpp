#pragma once
// eDonkey protocol constants, following the eMule protocol specification
// (Kulbak & Bickson, 2005) for the subset of messages the honeypot platform
// exchanges. All messages travel in packets headed by the protocol marker,
// a little-endian 32-bit length and an opcode byte.

#include <cstddef>
#include <cstdint>

namespace edhp::proto {

/// Packet protocol marker for classic eDonkey messages.
inline constexpr std::uint8_t kProtoEDonkey = 0xE3;

/// Size of one eDonkey part: files are hashed and exchanged in 9,728,000
/// byte parts; the file hash of a multi-part file is the MD4 of the
/// concatenated part hashes.
inline constexpr std::uint64_t kPartSize = 9'728'000;

/// Largest byte range a single REQUEST-PART entry may cover (one "block").
inline constexpr std::uint32_t kBlockSize = 184'320;  // 180 KiB

// --- Client <-> server opcodes -------------------------------------------
inline constexpr std::uint8_t kOpLoginRequest = 0x01;
inline constexpr std::uint8_t kOpServerMessage = 0x38;
inline constexpr std::uint8_t kOpIdChange = 0x40;
inline constexpr std::uint8_t kOpOfferFiles = 0x15;
inline constexpr std::uint8_t kOpGetSources = 0x19;
inline constexpr std::uint8_t kOpFoundSources = 0x42;
inline constexpr std::uint8_t kOpSearchRequest = 0x16;
inline constexpr std::uint8_t kOpSearchResult = 0x33;

// --- Client <-> client opcodes -------------------------------------------
inline constexpr std::uint8_t kOpHello = 0x01;
inline constexpr std::uint8_t kOpHelloAnswer = 0x4C;
inline constexpr std::uint8_t kOpStartUpload = 0x54;
inline constexpr std::uint8_t kOpAcceptUpload = 0x55;
inline constexpr std::uint8_t kOpQueueRank = 0x5C;
inline constexpr std::uint8_t kOpRequestParts = 0x47;
inline constexpr std::uint8_t kOpSendingPart = 0x46;
inline constexpr std::uint8_t kOpCancelTransfer = 0x56;
inline constexpr std::uint8_t kOpAskSharedFiles = 0x4E;
inline constexpr std::uint8_t kOpAskSharedFilesAnswer = 0x4F;

// --- Tag names (1-byte special names) ------------------------------------
inline constexpr std::uint8_t kTagName = 0x01;      ///< client or file name
inline constexpr std::uint8_t kTagFileSize = 0x02;  ///< file size in bytes
inline constexpr std::uint8_t kTagPort = 0x0F;
inline constexpr std::uint8_t kTagVersion = 0x11;

// --- Tag types ------------------------------------------------------------
inline constexpr std::uint8_t kTagTypeString = 0x02;
inline constexpr std::uint8_t kTagTypeU32 = 0x03;

/// Number of (begin, end) ranges carried by one REQUEST-PART message.
inline constexpr std::size_t kRequestPartRanges = 3;

}  // namespace edhp::proto
