#include "proto/messages.hpp"

#include <limits>

namespace edhp::proto {
namespace {

constexpr std::size_t kMaxListedFiles = 1 << 20;  // hostile-input bound
/// Smallest possible wire footprint of one PublishedFile entry: 16-byte
/// hash + u32 clientID + u16 port + u32 tag count (with zero tags).
constexpr std::size_t kPublishedFileMinBytes = 16 + 4 + 2 + 4;

void put_hash(ByteWriter& w, std::span<const std::uint8_t> bytes16) {
  w.bytes(bytes16);
}

template <typename Tag128>
Hash128<Tag128> get_hash(ByteReader& r) {
  auto raw = r.bytes(16);
  typename Hash128<Tag128>::Bytes b{};
  std::copy(raw.begin(), raw.end(), b.begin());
  return Hash128<Tag128>(b);
}

void encode_published_file(ByteWriter& w, const PublishedFile& f) {
  put_hash(w, f.file.bytes());
  w.u32(f.client_id);
  w.u16(f.port);
  std::vector<Tag> tags;
  tags.push_back(Tag::string_tag(kTagName, f.name));
  tags.push_back(Tag::u32_tag(kTagFileSize, f.size));
  encode_tags(w, tags);
}

PublishedFile decode_published_file(ByteReader& r) {
  PublishedFile f;
  f.file = get_hash<FileTag>(r);
  f.client_id = r.u32();
  f.port = r.u16();
  const auto tags = decode_tags(r);
  if (const Tag* t = find_tag(tags, kTagName)) {
    f.name = t->as_string();
  }
  if (const Tag* t = find_tag(tags, kTagFileSize)) {
    f.size = t->as_u32();
  }
  return f;
}

void encode_file_list(ByteWriter& w, const std::vector<PublishedFile>& files) {
  w.u32(static_cast<std::uint32_t>(files.size()));
  for (const auto& f : files) {
    encode_published_file(w, f);
  }
}

std::vector<PublishedFile> decode_file_list(ByteReader& r) {
  const std::uint32_t n = r.u32();
  if (n > kMaxListedFiles) {
    throw DecodeError("file list: absurd count " + std::to_string(n));
  }
  // Cross-check the count against the bytes actually present before
  // reserve(): a 4-byte lie must not size a huge allocation.
  if (static_cast<std::size_t>(n) * kPublishedFileMinBytes > r.remaining()) {
    throw DecodeError("file list: count " + std::to_string(n) +
                      " exceeds payload");
  }
  std::vector<PublishedFile> files;
  files.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    files.push_back(decode_published_file(r));
  }
  return files;
}

void encode_hello_body(ByteWriter& w, const UserId& user, std::uint32_t client_id,
                       std::uint16_t port, const std::vector<Tag>& tags,
                       std::uint32_t server_ip, std::uint16_t server_port) {
  w.u8(16);  // hash size, always 16 for MD4
  put_hash(w, user.bytes());
  w.u32(client_id);
  w.u16(port);
  encode_tags(w, tags);
  w.u32(server_ip);
  w.u16(server_port);
}

template <typename T>
T decode_hello_body(ByteReader& r) {
  const std::uint8_t hash_size = r.u8();
  if (hash_size != 16) {
    throw DecodeError("HELLO: unexpected hash size " + std::to_string(hash_size));
  }
  T m;
  m.user = get_hash<UserTag>(r);
  m.client_id = r.u32();
  m.port = r.u16();
  m.tags = decode_tags(r);
  m.server_ip = r.u32();
  m.server_port = r.u16();
  return m;
}

struct Encoder {
  ByteWriter& w;

  void operator()(const LoginRequest& m) {
    put_hash(w, m.user.bytes());
    w.u32(m.client_id);
    w.u16(m.port);
    encode_tags(w, m.tags);
  }
  void operator()(const IdChange& m) {
    w.u32(m.client_id);
    w.u32(m.tcp_flags);
  }
  void operator()(const OfferFiles& m) { encode_file_list(w, m.files); }
  void operator()(const GetSources& m) { put_hash(w, m.file.bytes()); }
  void operator()(const FoundSources& m) {
    put_hash(w, m.file.bytes());
    if (m.sources.size() > 0xFF) {
      throw DecodeError("FoundSources: more than 255 sources in one packet");
    }
    w.u8(static_cast<std::uint8_t>(m.sources.size()));
    for (const auto& s : m.sources) {
      w.u32(s.client_id);
      w.u16(s.port);
    }
  }
  void operator()(const SearchRequest& m) {
    w.u8(0x01);  // search-type: plain string expression
    w.str16(m.query);
  }
  void operator()(const SearchResult& m) { encode_file_list(w, m.files); }
  void operator()(const ServerMessage& m) { w.str16(m.text); }
  void operator()(const Hello& m) {
    encode_hello_body(w, m.user, m.client_id, m.port, m.tags, m.server_ip,
                      m.server_port);
  }
  void operator()(const HelloAnswer& m) {
    encode_hello_body(w, m.user, m.client_id, m.port, m.tags, m.server_ip,
                      m.server_port);
  }
  void operator()(const StartUpload& m) { put_hash(w, m.file.bytes()); }
  void operator()(const AcceptUpload&) {}
  void operator()(const QueueRank& m) { w.u32(m.rank); }
  void operator()(const RequestParts& m) {
    put_hash(w, m.file.bytes());
    for (auto b : m.begin) w.u32(b);
    for (auto e : m.end) w.u32(e);
  }
  void operator()(const SendingPart& m) {
    put_hash(w, m.file.bytes());
    w.u32(m.begin);
    w.u32(m.end);
    w.bytes(m.data);
  }
  void operator()(const CancelTransfer&) {}
  void operator()(const AskSharedFiles&) {}
  void operator()(const AskSharedFilesAnswer& m) { encode_file_list(w, m.files); }
};

}  // namespace

std::uint8_t opcode_of(const AnyMessage& msg) {
  return std::visit(
      [](const auto& m) -> std::uint8_t {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, LoginRequest>) return kOpLoginRequest;
        else if constexpr (std::is_same_v<T, IdChange>) return kOpIdChange;
        else if constexpr (std::is_same_v<T, OfferFiles>) return kOpOfferFiles;
        else if constexpr (std::is_same_v<T, GetSources>) return kOpGetSources;
        else if constexpr (std::is_same_v<T, FoundSources>) return kOpFoundSources;
        else if constexpr (std::is_same_v<T, SearchRequest>) return kOpSearchRequest;
        else if constexpr (std::is_same_v<T, SearchResult>) return kOpSearchResult;
        else if constexpr (std::is_same_v<T, ServerMessage>) return kOpServerMessage;
        else if constexpr (std::is_same_v<T, Hello>) return kOpHello;
        else if constexpr (std::is_same_v<T, HelloAnswer>) return kOpHelloAnswer;
        else if constexpr (std::is_same_v<T, StartUpload>) return kOpStartUpload;
        else if constexpr (std::is_same_v<T, AcceptUpload>) return kOpAcceptUpload;
        else if constexpr (std::is_same_v<T, QueueRank>) return kOpQueueRank;
        else if constexpr (std::is_same_v<T, RequestParts>) return kOpRequestParts;
        else if constexpr (std::is_same_v<T, SendingPart>) return kOpSendingPart;
        else if constexpr (std::is_same_v<T, CancelTransfer>) return kOpCancelTransfer;
        else if constexpr (std::is_same_v<T, AskSharedFiles>) return kOpAskSharedFiles;
        else if constexpr (std::is_same_v<T, AskSharedFilesAnswer>)
          return kOpAskSharedFilesAnswer;
      },
      msg);
}

std::string_view name_of(const AnyMessage& msg) {
  return std::visit(
      [](const auto& m) -> std::string_view {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, LoginRequest>) return "LOGIN-REQUEST";
        else if constexpr (std::is_same_v<T, IdChange>) return "ID-CHANGE";
        else if constexpr (std::is_same_v<T, OfferFiles>) return "OFFER-FILES";
        else if constexpr (std::is_same_v<T, GetSources>) return "GET-SOURCES";
        else if constexpr (std::is_same_v<T, FoundSources>) return "FOUND-SOURCES";
        else if constexpr (std::is_same_v<T, SearchRequest>) return "SEARCH-REQUEST";
        else if constexpr (std::is_same_v<T, SearchResult>) return "SEARCH-RESULT";
        else if constexpr (std::is_same_v<T, ServerMessage>) return "SERVER-MESSAGE";
        else if constexpr (std::is_same_v<T, Hello>) return "HELLO";
        else if constexpr (std::is_same_v<T, HelloAnswer>) return "HELLO-ANSWER";
        else if constexpr (std::is_same_v<T, StartUpload>) return "START-UPLOAD";
        else if constexpr (std::is_same_v<T, AcceptUpload>) return "ACCEPT-UPLOAD";
        else if constexpr (std::is_same_v<T, QueueRank>) return "QUEUE-RANK";
        else if constexpr (std::is_same_v<T, RequestParts>) return "REQUEST-PART";
        else if constexpr (std::is_same_v<T, SendingPart>) return "SENDING-PART";
        else if constexpr (std::is_same_v<T, CancelTransfer>) return "CANCEL-TRANSFER";
        else if constexpr (std::is_same_v<T, AskSharedFiles>) return "ASK-SHARED-FILES";
        else if constexpr (std::is_same_v<T, AskSharedFilesAnswer>)
          return "ASK-SHARED-FILES-ANSWER";
      },
      msg);
}

std::vector<std::uint8_t> encode(const AnyMessage& msg) {
  ByteWriter w(64);
  w.u8(kProtoEDonkey);
  w.u32(0);  // length, patched below
  w.u8(opcode_of(msg));
  std::visit(Encoder{w}, msg);
  // Length counts the opcode byte plus payload.
  w.patch_u32(1, static_cast<std::uint32_t>(w.size() - 5));
  return std::move(w).take();
}

AnyMessage decode(Channel channel, std::span<const std::uint8_t> packet) {
  ByteReader r(packet);
  const std::uint8_t marker = r.u8();
  if (marker != kProtoEDonkey) {
    throw DecodeError("packet: bad protocol marker");
  }
  const std::uint32_t length = r.u32();
  if (length != r.remaining()) {
    throw DecodeError("packet: length field " + std::to_string(length) +
                      " does not match payload " + std::to_string(r.remaining()));
  }
  if (length == 0) {
    throw DecodeError("packet: missing opcode");
  }
  const std::uint8_t op = r.u8();

  auto finish = [&r](AnyMessage m) {
    r.expect_done(std::string(name_of(m)));
    return m;
  };

  if (channel == Channel::client_server) {
    switch (op) {
      case kOpLoginRequest: {
        LoginRequest m;
        m.user = get_hash<UserTag>(r);
        m.client_id = r.u32();
        m.port = r.u16();
        m.tags = decode_tags(r);
        return finish(std::move(m));
      }
      case kOpIdChange: {
        IdChange m;
        m.client_id = r.u32();
        m.tcp_flags = r.u32();
        return finish(m);
      }
      case kOpOfferFiles:
        return finish(OfferFiles{decode_file_list(r)});
      case kOpGetSources:
        return finish(GetSources{get_hash<FileTag>(r)});
      case kOpFoundSources: {
        FoundSources m;
        m.file = get_hash<FileTag>(r);
        const std::uint8_t n = r.u8();
        m.sources.reserve(n);
        for (std::uint8_t i = 0; i < n; ++i) {
          SourceEntry s;
          s.client_id = r.u32();
          s.port = r.u16();
          m.sources.push_back(s);
        }
        return finish(std::move(m));
      }
      case kOpSearchRequest: {
        const std::uint8_t search_type = r.u8();
        if (search_type != 0x01) {
          throw DecodeError("SEARCH-REQUEST: unsupported search type");
        }
        return finish(SearchRequest{r.str16()});
      }
      case kOpSearchResult:
        return finish(SearchResult{decode_file_list(r)});
      case kOpServerMessage:
        return finish(ServerMessage{r.str16()});
      default:
        throw DecodeError("client-server packet: unknown opcode " +
                          std::to_string(op));
    }
  }

  switch (op) {
    case kOpHello:
      return finish(decode_hello_body<Hello>(r));
    case kOpHelloAnswer:
      return finish(decode_hello_body<HelloAnswer>(r));
    case kOpStartUpload:
      return finish(StartUpload{get_hash<FileTag>(r)});
    case kOpAcceptUpload:
      return finish(AcceptUpload{});
    case kOpQueueRank:
      return finish(QueueRank{r.u32()});
    case kOpRequestParts: {
      RequestParts m;
      m.file = get_hash<FileTag>(r);
      for (auto& b : m.begin) b = r.u32();
      for (auto& e : m.end) e = r.u32();
      return finish(m);
    }
    case kOpSendingPart: {
      SendingPart m;
      m.file = get_hash<FileTag>(r);
      m.begin = r.u32();
      m.end = r.u32();
      if (m.end < m.begin) {
        throw DecodeError("SENDING-PART: end before begin");
      }
      auto raw = r.bytes(r.remaining());
      m.data.assign(raw.begin(), raw.end());
      return finish(std::move(m));
    }
    case kOpCancelTransfer:
      return finish(CancelTransfer{});
    case kOpAskSharedFiles:
      return finish(AskSharedFiles{});
    case kOpAskSharedFilesAnswer:
      return finish(AskSharedFilesAnswer{decode_file_list(r)});
    default:
      throw DecodeError("client-client packet: unknown opcode " +
                        std::to_string(op));
  }
}

}  // namespace edhp::proto
