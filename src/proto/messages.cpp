#include "proto/messages.hpp"

#include <limits>

namespace edhp::proto {
namespace {

constexpr std::size_t kMaxListedFiles = 1 << 20;  // hostile-input bound
/// Smallest possible wire footprint of one PublishedFile entry: 16-byte
/// hash + u32 clientID + u16 port + u32 tag count (with zero tags).
constexpr std::size_t kPublishedFileMinBytes = 16 + 4 + 2 + 4;

void put_hash(ByteWriter& w, std::span<const std::uint8_t> bytes16) {
  w.bytes(bytes16);
}

template <typename Tag128>
Hash128<Tag128> get_hash(ByteReader& r) {
  auto raw = r.bytes(16);
  typename Hash128<Tag128>::Bytes b{};
  std::copy(raw.begin(), raw.end(), b.begin());
  return Hash128<Tag128>(b);
}

void encode_published_file(ByteWriter& w, const PublishedFile& f) {
  put_hash(w, f.file.bytes());
  w.u32(f.client_id);
  w.u16(f.port);
  std::vector<Tag> tags;
  tags.push_back(Tag::string_tag(kTagName, f.name));
  tags.push_back(Tag::u32_tag(kTagFileSize, f.size));
  encode_tags(w, tags);
}

void decode_published_file_view(ByteReader& r, MessageArena& arena) {
  PublishedFileView f;
  f.file = get_hash<FileTag>(r);
  f.client_id = r.u32();
  f.port = r.u16();
  f.tags = decode_tags_view(r, arena.tags);
  if (const TagView* t = find_tag(arena.of(f.tags), kTagName)) {
    f.name = t->as_string();
  }
  if (const TagView* t = find_tag(arena.of(f.tags), kTagFileSize)) {
    f.size = t->as_u32();
  }
  arena.files.push_back(f);
}

void encode_file_list(ByteWriter& w, const std::vector<PublishedFile>& files) {
  w.u32(static_cast<std::uint32_t>(files.size()));
  for (const auto& f : files) {
    encode_published_file(w, f);
  }
}

FileRange decode_file_list_view(ByteReader& r, MessageArena& arena) {
  const std::uint32_t n = r.u32();
  if (n > kMaxListedFiles) {
    throw DecodeError("file list: absurd count " + std::to_string(n));
  }
  // Cross-check the count against the bytes actually present before
  // reserve(): a 4-byte lie must not size a huge allocation.
  if (static_cast<std::size_t>(n) * kPublishedFileMinBytes > r.remaining()) {
    throw DecodeError("file list: count " + std::to_string(n) +
                      " exceeds payload");
  }
  FileRange range{static_cast<std::uint32_t>(arena.files.size()), n};
  arena.files.reserve(arena.files.size() + n);
  for (std::uint32_t i = 0; i < n; ++i) {
    decode_published_file_view(r, arena);
  }
  return range;
}

void encode_hello_body(ByteWriter& w, const UserId& user, std::uint32_t client_id,
                       std::uint16_t port, const std::vector<Tag>& tags,
                       std::uint32_t server_ip, std::uint16_t server_port) {
  w.u8(16);  // hash size, always 16 for MD4
  put_hash(w, user.bytes());
  w.u32(client_id);
  w.u16(port);
  encode_tags(w, tags);
  w.u32(server_ip);
  w.u16(server_port);
}

template <typename T>
T decode_hello_body_view(ByteReader& r, MessageArena& arena) {
  const std::uint8_t hash_size = r.u8();
  if (hash_size != 16) {
    throw DecodeError("HELLO: unexpected hash size " + std::to_string(hash_size));
  }
  T m;
  m.user = get_hash<UserTag>(r);
  m.client_id = r.u32();
  m.port = r.u16();
  m.tags = decode_tags_view(r, arena.tags);
  m.server_ip = r.u32();
  m.server_port = r.u16();
  return m;
}

struct Encoder {
  ByteWriter& w;

  void operator()(const LoginRequest& m) {
    put_hash(w, m.user.bytes());
    w.u32(m.client_id);
    w.u16(m.port);
    encode_tags(w, m.tags);
  }
  void operator()(const IdChange& m) {
    w.u32(m.client_id);
    w.u32(m.tcp_flags);
  }
  void operator()(const OfferFiles& m) { encode_file_list(w, m.files); }
  void operator()(const GetSources& m) { put_hash(w, m.file.bytes()); }
  void operator()(const FoundSources& m) {
    put_hash(w, m.file.bytes());
    if (m.sources.size() > 0xFF) {
      throw DecodeError("FoundSources: more than 255 sources in one packet");
    }
    w.u8(static_cast<std::uint8_t>(m.sources.size()));
    for (const auto& s : m.sources) {
      w.u32(s.client_id);
      w.u16(s.port);
    }
  }
  void operator()(const SearchRequest& m) {
    w.u8(0x01);  // search-type: plain string expression
    w.str16(m.query);
  }
  void operator()(const SearchResult& m) { encode_file_list(w, m.files); }
  void operator()(const ServerMessage& m) { w.str16(m.text); }
  void operator()(const Hello& m) {
    encode_hello_body(w, m.user, m.client_id, m.port, m.tags, m.server_ip,
                      m.server_port);
  }
  void operator()(const HelloAnswer& m) {
    encode_hello_body(w, m.user, m.client_id, m.port, m.tags, m.server_ip,
                      m.server_port);
  }
  void operator()(const StartUpload& m) { put_hash(w, m.file.bytes()); }
  void operator()(const AcceptUpload&) {}
  void operator()(const QueueRank& m) { w.u32(m.rank); }
  void operator()(const RequestParts& m) {
    put_hash(w, m.file.bytes());
    for (auto b : m.begin) w.u32(b);
    for (auto e : m.end) w.u32(e);
  }
  void operator()(const SendingPart& m) {
    put_hash(w, m.file.bytes());
    w.u32(m.begin);
    w.u32(m.end);
    w.bytes(m.data);
  }
  void operator()(const CancelTransfer&) {}
  void operator()(const AskSharedFiles&) {}
  void operator()(const AskSharedFilesAnswer& m) { encode_file_list(w, m.files); }
};

}  // namespace

std::uint8_t opcode_of(const AnyMessage& msg) {
  return std::visit(
      [](const auto& m) -> std::uint8_t {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, LoginRequest>) return kOpLoginRequest;
        else if constexpr (std::is_same_v<T, IdChange>) return kOpIdChange;
        else if constexpr (std::is_same_v<T, OfferFiles>) return kOpOfferFiles;
        else if constexpr (std::is_same_v<T, GetSources>) return kOpGetSources;
        else if constexpr (std::is_same_v<T, FoundSources>) return kOpFoundSources;
        else if constexpr (std::is_same_v<T, SearchRequest>) return kOpSearchRequest;
        else if constexpr (std::is_same_v<T, SearchResult>) return kOpSearchResult;
        else if constexpr (std::is_same_v<T, ServerMessage>) return kOpServerMessage;
        else if constexpr (std::is_same_v<T, Hello>) return kOpHello;
        else if constexpr (std::is_same_v<T, HelloAnswer>) return kOpHelloAnswer;
        else if constexpr (std::is_same_v<T, StartUpload>) return kOpStartUpload;
        else if constexpr (std::is_same_v<T, AcceptUpload>) return kOpAcceptUpload;
        else if constexpr (std::is_same_v<T, QueueRank>) return kOpQueueRank;
        else if constexpr (std::is_same_v<T, RequestParts>) return kOpRequestParts;
        else if constexpr (std::is_same_v<T, SendingPart>) return kOpSendingPart;
        else if constexpr (std::is_same_v<T, CancelTransfer>) return kOpCancelTransfer;
        else if constexpr (std::is_same_v<T, AskSharedFiles>) return kOpAskSharedFiles;
        else if constexpr (std::is_same_v<T, AskSharedFilesAnswer>)
          return kOpAskSharedFilesAnswer;
      },
      msg);
}

std::string_view name_of(const AnyMessage& msg) {
  return std::visit(
      [](const auto& m) -> std::string_view {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, LoginRequest>) return "LOGIN-REQUEST";
        else if constexpr (std::is_same_v<T, IdChange>) return "ID-CHANGE";
        else if constexpr (std::is_same_v<T, OfferFiles>) return "OFFER-FILES";
        else if constexpr (std::is_same_v<T, GetSources>) return "GET-SOURCES";
        else if constexpr (std::is_same_v<T, FoundSources>) return "FOUND-SOURCES";
        else if constexpr (std::is_same_v<T, SearchRequest>) return "SEARCH-REQUEST";
        else if constexpr (std::is_same_v<T, SearchResult>) return "SEARCH-RESULT";
        else if constexpr (std::is_same_v<T, ServerMessage>) return "SERVER-MESSAGE";
        else if constexpr (std::is_same_v<T, Hello>) return "HELLO";
        else if constexpr (std::is_same_v<T, HelloAnswer>) return "HELLO-ANSWER";
        else if constexpr (std::is_same_v<T, StartUpload>) return "START-UPLOAD";
        else if constexpr (std::is_same_v<T, AcceptUpload>) return "ACCEPT-UPLOAD";
        else if constexpr (std::is_same_v<T, QueueRank>) return "QUEUE-RANK";
        else if constexpr (std::is_same_v<T, RequestParts>) return "REQUEST-PART";
        else if constexpr (std::is_same_v<T, SendingPart>) return "SENDING-PART";
        else if constexpr (std::is_same_v<T, CancelTransfer>) return "CANCEL-TRANSFER";
        else if constexpr (std::is_same_v<T, AskSharedFiles>) return "ASK-SHARED-FILES";
        else if constexpr (std::is_same_v<T, AskSharedFilesAnswer>)
          return "ASK-SHARED-FILES-ANSWER";
      },
      msg);
}

std::vector<std::uint8_t> encode(const AnyMessage& msg) {
  ByteWriter w(64);
  w.u8(kProtoEDonkey);
  w.u32(0);  // length, patched below
  w.u8(opcode_of(msg));
  std::visit(Encoder{w}, msg);
  // Length counts the opcode byte plus payload.
  w.patch_u32(1, static_cast<std::uint32_t>(w.size() - 5));
  return std::move(w).take();
}

std::string_view name_of(const AnyMessageView& msg) {
  return std::visit(
      [](const auto& m) -> std::string_view {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, LoginRequestView>) return "LOGIN-REQUEST";
        else if constexpr (std::is_same_v<T, IdChange>) return "ID-CHANGE";
        else if constexpr (std::is_same_v<T, OfferFilesView>) return "OFFER-FILES";
        else if constexpr (std::is_same_v<T, GetSources>) return "GET-SOURCES";
        else if constexpr (std::is_same_v<T, FoundSourcesView>) return "FOUND-SOURCES";
        else if constexpr (std::is_same_v<T, SearchRequestView>) return "SEARCH-REQUEST";
        else if constexpr (std::is_same_v<T, SearchResultView>) return "SEARCH-RESULT";
        else if constexpr (std::is_same_v<T, ServerMessageView>) return "SERVER-MESSAGE";
        else if constexpr (std::is_same_v<T, HelloView>) return "HELLO";
        else if constexpr (std::is_same_v<T, HelloAnswerView>) return "HELLO-ANSWER";
        else if constexpr (std::is_same_v<T, StartUpload>) return "START-UPLOAD";
        else if constexpr (std::is_same_v<T, AcceptUpload>) return "ACCEPT-UPLOAD";
        else if constexpr (std::is_same_v<T, QueueRank>) return "QUEUE-RANK";
        else if constexpr (std::is_same_v<T, RequestParts>) return "REQUEST-PART";
        else if constexpr (std::is_same_v<T, SendingPartView>) return "SENDING-PART";
        else if constexpr (std::is_same_v<T, CancelTransfer>) return "CANCEL-TRANSFER";
        else if constexpr (std::is_same_v<T, AskSharedFiles>) return "ASK-SHARED-FILES";
        else if constexpr (std::is_same_v<T, AskSharedFilesAnswerView>)
          return "ASK-SHARED-FILES-ANSWER";
      },
      msg);
}

AnyMessageView decode_view(Channel channel, std::span<const std::uint8_t> packet,
                           MessageArena& arena) {
  arena.reset();
  ByteReader r(packet);
  const std::uint8_t marker = r.u8();
  if (marker != kProtoEDonkey) {
    throw DecodeError("packet: bad protocol marker");
  }
  const std::uint32_t length = r.u32();
  if (length != r.remaining()) {
    throw DecodeError("packet: length field " + std::to_string(length) +
                      " does not match payload " + std::to_string(r.remaining()));
  }
  if (length == 0) {
    throw DecodeError("packet: missing opcode");
  }
  const std::uint8_t op = r.u8();

  auto finish = [&r](AnyMessageView m) {
    r.expect_done(std::string(name_of(m)));
    return m;
  };

  if (channel == Channel::client_server) {
    switch (op) {
      case kOpLoginRequest: {
        LoginRequestView m;
        m.user = get_hash<UserTag>(r);
        m.client_id = r.u32();
        m.port = r.u16();
        m.tags = decode_tags_view(r, arena.tags);
        return finish(m);
      }
      case kOpIdChange: {
        IdChange m;
        m.client_id = r.u32();
        m.tcp_flags = r.u32();
        return finish(m);
      }
      case kOpOfferFiles:
        return finish(OfferFilesView{decode_file_list_view(r, arena)});
      case kOpGetSources:
        return finish(GetSources{get_hash<FileTag>(r)});
      case kOpFoundSources: {
        FoundSourcesView m;
        m.file = get_hash<FileTag>(r);
        const std::uint8_t n = r.u8();
        m.sources = SourceRange{static_cast<std::uint32_t>(arena.sources.size()), n};
        arena.sources.reserve(arena.sources.size() + n);
        for (std::uint8_t i = 0; i < n; ++i) {
          SourceEntry s;
          s.client_id = r.u32();
          s.port = r.u16();
          arena.sources.push_back(s);
        }
        return finish(m);
      }
      case kOpSearchRequest: {
        const std::uint8_t search_type = r.u8();
        if (search_type != 0x01) {
          throw DecodeError("SEARCH-REQUEST: unsupported search type");
        }
        return finish(SearchRequestView{r.str16_view()});
      }
      case kOpSearchResult:
        return finish(SearchResultView{decode_file_list_view(r, arena)});
      case kOpServerMessage:
        return finish(ServerMessageView{r.str16_view()});
      default:
        throw DecodeError("client-server packet: unknown opcode " +
                          std::to_string(op));
    }
  }

  switch (op) {
    case kOpHello:
      return finish(decode_hello_body_view<HelloView>(r, arena));
    case kOpHelloAnswer:
      return finish(decode_hello_body_view<HelloAnswerView>(r, arena));
    case kOpStartUpload:
      return finish(StartUpload{get_hash<FileTag>(r)});
    case kOpAcceptUpload:
      return finish(AcceptUpload{});
    case kOpQueueRank:
      return finish(QueueRank{r.u32()});
    case kOpRequestParts: {
      RequestParts m;
      m.file = get_hash<FileTag>(r);
      for (auto& b : m.begin) b = r.u32();
      for (auto& e : m.end) e = r.u32();
      return finish(m);
    }
    case kOpSendingPart: {
      SendingPartView m;
      m.file = get_hash<FileTag>(r);
      m.begin = r.u32();
      m.end = r.u32();
      if (m.end < m.begin) {
        throw DecodeError("SENDING-PART: end before begin");
      }
      m.data = r.bytes(r.remaining());
      return finish(m);
    }
    case kOpCancelTransfer:
      return finish(CancelTransfer{});
    case kOpAskSharedFiles:
      return finish(AskSharedFiles{});
    case kOpAskSharedFilesAnswer:
      return finish(AskSharedFilesAnswerView{decode_file_list_view(r, arena)});
    default:
      throw DecodeError("client-client packet: unknown opcode " +
                        std::to_string(op));
  }
}

namespace {

std::vector<Tag> materialize_tags(TagRange range, const MessageArena& arena) {
  std::vector<Tag> out;
  out.reserve(range.count);
  for (const TagView& v : arena.of(range)) {
    if (v.is_string()) {
      out.push_back(Tag::string_tag(v.name, std::string(v.as_string())));
    } else {
      out.push_back(Tag::u32_tag(v.name, v.as_u32()));
    }
  }
  return out;
}

std::vector<PublishedFile> materialize_files(FileRange range,
                                             const MessageArena& arena) {
  std::vector<PublishedFile> out;
  out.reserve(range.count);
  for (const PublishedFileView& v : arena.of(range)) {
    PublishedFile f;
    f.file = v.file;
    f.client_id = v.client_id;
    f.port = v.port;
    f.name = std::string(v.name);
    f.size = v.size;
    out.push_back(std::move(f));
  }
  return out;
}

}  // namespace

AnyMessage materialize(const AnyMessageView& msg, const MessageArena& arena) {
  return std::visit(
      [&arena](const auto& m) -> AnyMessage {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, LoginRequestView>) {
          return LoginRequest{m.user, m.client_id, m.port,
                              materialize_tags(m.tags, arena)};
        } else if constexpr (std::is_same_v<T, OfferFilesView>) {
          return OfferFiles{materialize_files(m.files, arena)};
        } else if constexpr (std::is_same_v<T, FoundSourcesView>) {
          const auto span = arena.of(m.sources);
          return FoundSources{m.file, {span.begin(), span.end()}};
        } else if constexpr (std::is_same_v<T, SearchRequestView>) {
          return SearchRequest{std::string(m.query)};
        } else if constexpr (std::is_same_v<T, SearchResultView>) {
          return SearchResult{materialize_files(m.files, arena)};
        } else if constexpr (std::is_same_v<T, ServerMessageView>) {
          return ServerMessage{std::string(m.text)};
        } else if constexpr (std::is_same_v<T, HelloView>) {
          return Hello{m.user,      m.client_id,  m.port,
                       materialize_tags(m.tags, arena), m.server_ip,
                       m.server_port};
        } else if constexpr (std::is_same_v<T, HelloAnswerView>) {
          return HelloAnswer{m.user,      m.client_id,  m.port,
                             materialize_tags(m.tags, arena), m.server_ip,
                             m.server_port};
        } else if constexpr (std::is_same_v<T, SendingPartView>) {
          return SendingPart{m.file,
                             m.begin,
                             m.end,
                             {m.data.begin(), m.data.end()}};
        } else if constexpr (std::is_same_v<T, AskSharedFilesAnswerView>) {
          return AskSharedFilesAnswer{materialize_files(m.files, arena)};
        } else {
          return m;  // fixed-size messages are shared between the variants
        }
      },
      msg);
}

AnyMessage decode(Channel channel, std::span<const std::uint8_t> packet) {
  MessageArena arena;
  return materialize(decode_view(channel, packet, arena), arena);
}

}  // namespace edhp::proto
