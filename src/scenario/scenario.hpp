#pragma once
// Canonical measurement scenarios reproducing the paper's two campaigns.
//
// run_distributed(): 24 honeypots on PlanetLab-like hosts, one large
// server, 4 advertised files, 32 days, 12 no-content + 12 random-content
// honeypots, plus the hyperactive "top peer" of Figs 8/9.
//
// run_greedy(): a single honeypot that harvests the shared-file lists of
// contacting peers during its first day and advertises everything it
// learns; 15 days.
//
// Both return the published dataset (merged + stage-2 anonymised log) plus
// the scenario metadata analyses need. `scale` multiplies peer arrival
// rates and pools; durations are unchanged, so shapes are preserved while
// runtime drops.

#include <cstdint>
#include <iosfwd>
#include <vector>

#include <optional>

#include "audit/audit.hpp"
#include "common/budget.hpp"
#include "fault/abuse.hpp"
#include "fault/fault.hpp"
#include "honeypot/manager.hpp"
#include "net/admission.hpp"
#include "logbook/record.hpp"
#include "net/network.hpp"
#include "peer/behavior.hpp"
#include "peer/downloader.hpp"
#include "peer/population.hpp"
#include "sim/diurnal.hpp"
#include "sim/simulation.hpp"

namespace edhp::scenario {

struct DistributedConfig {
  double scale = 0.25;
  std::uint64_t seed = 20081001;
  std::size_t honeypots = 24;
  double days = 32;
  bool with_top_peer = true;
  /// Mean time between honeypot host failures (0 disables crash injection).
  /// This is the historical hourly-Bernoulli crash grid, kept bit-for-bit;
  /// ignored when `chaos.enabled` (the FaultPlan then owns all churn).
  Duration host_mtbf = days_(16);
  /// Full fault model: when enabled, a seeded FaultPlan drives host, link,
  /// server, latency and partition churn, and the manager runs with retry
  /// backoff, watchdog escalation and crash-safe log spooling.
  fault::ChaosConfig chaos;
  /// Adversarial traffic: when enabled, a seeded AbusePlan spawns hostile
  /// peers (byte corruptors, connection flooders, slowloris sessions,
  /// oversize-message abusers) against every honeypot and the server.
  fault::AbuseConfig abuse;
  /// Admission-control policy for the server and every honeypot. Disabled
  /// by default; when `abuse.enabled` and this is left disabled, the tuned
  /// abuse_defense_config() policy is applied automatically.
  net::DefenseConfig defense;
  /// Set false to run an abuse campaign with no admission control at all
  /// (the ablation baseline); ignored unless `abuse.enabled`.
  bool auto_defense = true;
  peer::BehaviorParams behavior;  ///< defaults to behavior_2008()
  /// Override of the regional activity mixture (default: european_2008).
  std::optional<sim::DiurnalProfile> diurnal;

  /// When nonzero, rescales the per-file finite pools pro-rata so the total
  /// interested-peer population equals this count. Arrival rates are left
  /// at the campaign baseline: unarrived peers are pure per-demand
  /// accounting, so memory stays bounded by peak concurrency (rate x peer
  /// lifetime) however large the pool — the million-peer bench knob. Pools
  /// below the baseline cap arrivals early; 0 keeps the paper's pools
  /// (times `scale`).
  std::uint64_t population_override = 0;
  /// Fold every honeypot record into a count + fingerprint instead of
  /// retaining it (ScenarioResult::records_streamed/stream_fingerprint).
  /// Bench-only: the merged dataset comes out empty. Keep off with chaos.
  bool stream_records = false;
  /// Live-peer storage strategy; both modes produce bit-identical campaign
  /// datasets and differ only in memory behaviour.
  peer::PopulationMode population_mode = peer::PopulationMode::lazy;
  /// Enforce the record-conservation ledger: the run fails (throws
  /// audit::ImbalanceError) unless born == merged + Σ accounted. The ledger
  /// itself is always filled (ScenarioResult::audit); this flag only arms
  /// the hard failure. Off-path cost is one counter increment per record,
  /// so goldens are bit-identical either way.
  bool audit = false;

  DistributedConfig();

 private:
  static constexpr Duration days_(double d) { return d * kDay; }
};

struct GreedyConfig {
  double scale = 0.25;
  std::uint64_t seed = 20081101;
  double days = 15;
  Duration harvest_window = kDay;
  /// Full fault model (disabled by default; see DistributedConfig::chaos).
  fault::ChaosConfig chaos;
  /// Adversarial traffic + admission control (see DistributedConfig).
  fault::AbuseConfig abuse;
  net::DefenseConfig defense;
  bool auto_defense = true;
  peer::BehaviorParams behavior;
  /// Live-peer storage strategy (see DistributedConfig::population_mode).
  peer::PopulationMode population_mode = peer::PopulationMode::lazy;
  /// Enforce the record-conservation ledger (see DistributedConfig::audit).
  bool audit = false;

  GreedyConfig();
};

/// Everything a bench needs to regenerate the paper's tables and figures.
struct ScenarioResult {
  logbook::LogFile merged;  ///< stage-2 anonymised, time-ordered
  std::uint64_t distinct_peers = 0;
  std::size_t honeypots = 0;
  double days = 0;
  std::size_t advertised_files = 0;  ///< final advertised-list size
  std::vector<FileId> advertised_ids;
  honeypot::Manager::ObservedFiles observed;
  /// strategy_of[h]: true when honeypot h used random-content.
  std::vector<bool> random_content;
  peer::PeerStats peer_totals;
  std::uint64_t relaunches = 0;
  std::uint64_t blacklist_reports = 0;
  /// Mean end-of-run community reputation per strategy group (distributed
  /// only; 1.0 = never reported).
  double reputation_no_content = 1.0;
  double reputation_random_content = 1.0;
  std::uint64_t sim_events = 0;
  std::uint64_t wire_messages = 0;
  std::uint64_t wire_bytes = 0;
  /// Event-engine run statistics (slab recycling, cancellations, peak heap).
  sim::EngineStats engine;
  /// Aggregate traffic counters over every node in the run.
  net::LinkCounters net_totals;
  /// Watchdog/retry/spooling accounting (all-zero when chaos is disabled
  /// and nothing ever died).
  honeypot::RecoveryStats recovery;
  /// Faults actually injected (all-zero unless chaos was enabled).
  fault::FaultStats faults;
  /// Admission-control decisions, summed over the server and the fleet
  /// (all-zero unless the defense policy was enabled; `malformed` counts
  /// even without it).
  net::DefenseStats defense;
  /// Hostile traffic actually generated (all-zero unless abuse was enabled).
  fault::AbuseStats abuse;
  /// Overload/degradation accounting summed over the fleet (all-zero unless
  /// resource budgets or resource faults were configured);
  /// `spool_peak_bytes` is the fleet per-honeypot maximum, the number quota
  /// sizing needs.
  budget::DegradeStats degrade;
  /// Measurement-integrity accounting: self-probe verdicts, fabrication/
  /// forgery/replay detections, quarantined + excluded records, and server
  /// quarantine verdicts (all-zero unless chaos.byzantine was enabled).
  honeypot::IntegrityStats integrity;
  /// Byzantine misbehavior actually injected (all-zero unless enabled).
  fault::ByzantineStats byzantine;
  /// Timestamp-integrity ledger from the skew-corrected merge (all-zero
  /// unless clock faults were enabled: observations, corrections, detected
  /// monotonicity violations, ambiguous mappings).
  logbook::TimeIntegrityStats time_integrity;
  /// Record-conservation ledger: born == merged + Σ accounted for any
  /// chaos configuration. Always filled; `audit.enabled` mirrors the
  /// config flag that makes imbalance a hard failure.
  audit::AuditStats audit;

  // --- Memory telemetry ----------------------------------------------------
  /// Peak process RSS at result-fill time (bytes; 0 when the platform can't
  /// tell). Process-wide, so compare runs within one process with care.
  std::uint64_t peak_rss_bytes = 0;
  /// Interested peers that ever arrived / were simultaneously live.
  std::uint64_t population_arrivals = 0;
  std::uint64_t population_peak_active = 0;
  /// Slots the population slab ever allocated (its structural footprint;
  /// 0 under PopulationMode::legacy_eager).
  std::uint64_t population_slab_slots = 0;
  /// Node-table high-water mark and retirements (constant-memory evidence:
  /// peak live nodes stays near peak active peers, not total arrivals).
  std::uint64_t net_peak_live_nodes = 0;
  std::uint64_t net_nodes_retired = 0;
  /// Stream-mode accounting (zero / FNV offset unless stream_records).
  std::uint64_t records_streamed = 0;
  std::uint64_t stream_fingerprint = 0;
};

/// Manager policy used by the chaos variants of the campaigns: relaunch
/// backoff, escalation after repeated failures, heartbeat watchdog, and the
/// retry/spool knobs copied from the chaos config. Returns the plain
/// default (legacy) ManagerConfig when `chaos.enabled` is false.
[[nodiscard]] honeypot::ManagerConfig chaos_manager_config(
    const fault::ChaosConfig& chaos);

/// Admission-control policy tuned for the default abuse mix: session caps
/// sized to the fleet, per-remote connect budgets that starve flooders but
/// never an honest client, and handshake/idle reaping on the slab engine's
/// O(1)-cancel timers.
[[nodiscard]] net::DefenseConfig abuse_defense_config();

[[nodiscard]] ScenarioResult run_distributed(const DistributedConfig& config,
                                             std::ostream* progress = nullptr);

[[nodiscard]] ScenarioResult run_greedy(const GreedyConfig& config,
                                        std::ostream* progress = nullptr);

/// Honeypot filter selecting one strategy group from a result.
[[nodiscard]] std::function<bool(std::uint16_t)> strategy_filter(
    const ScenarioResult& result, bool random_content);

}  // namespace edhp::scenario
