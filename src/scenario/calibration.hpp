#pragma once
// Calibrated constants for the paper-reproduction scenarios.
//
// These values were tuned so that full-scale ("--paper", scale = 1.0) runs
// reproduce the magnitudes of Table I and the shapes of Figs 2-12; see
// EXPERIMENTS.md for measured-vs-paper outcomes. Everything here is plain
// data so ablation benches and tests can perturb single knobs.

#include "peer/behavior.hpp"
#include "peer/catalog.hpp"

namespace edhp::scenario {

/// Peer behaviour used by both 2008 campaigns.
[[nodiscard]] inline peer::BehaviorParams behavior_2008() {
  peer::BehaviorParams p;
  p.extra_sources_mean = 0.8;        // typical peers try 1-2 sources
  p.aggressive_prob = 0.15;          // ...but a minority races many
  p.aggressive_extra_mean = 14.0;
  p.source_weight_sigma = 0.35;      // per-honeypot visibility spread
  p.sessions_mean = 8.0;
  p.session_gap_mean = hours(3.5);
  p.start_upload_prob = 0.68;        // uploader vs handshake-only peers
  p.request_timeout = 45.0;
  p.timeouts_per_session = 6;        // REQUEST-PARTs per no-content session
  p.detect_after_timeouts = 2;       // silence detected after ~2 sessions...
  p.detect_after_bad_parts = 1;      // ...but one corrupt 9.28 MB part
  p.max_rounds_per_session = 4;      // takes ~4.5 sessions to download
  p.gossip_prob_timeout = 0.30;
  p.gossip_prob_bad_part = 0.06;
  p.gossip_penalty = 2.2e-4;
  p.secondary_targets_mean = 0.3;    // the 4 advertised files are unrelated
  p.share_list_prob = 0.12;          // many users disable list browsing
  p.cache_size_mean = 45.0;
  p.high_id_fraction = 0.62;
  p.upload_bps_mean = 80.0 * 1024;
  return p;
}

/// Network-wide file catalog. Both campaigns observe ~0.27 distinct files
/// per observed peer (28k/110k distributed, 267k/871k greedy): the shared
/// popular corpus is small and saturates early, and nearly all growth comes
/// from the owner-unique tail (unique_tail_prob x cache size x share prob
/// = 0.052 x 45 x 0.12 = 0.28 files per peer).
[[nodiscard]] inline peer::CatalogParams catalog_2008() {
  peer::CatalogParams c;
  c.num_files = 8'000;
  c.zipf_alpha = 0.8;
  c.unique_tail_prob = 0.052;
  return c;
}

/// Demand of the four files the distributed measurement advertised
/// (a movie, a song, a linux distribution and a text): initial new-peer
/// rate per day at scale 1, popularity decay, and finite pool.
struct AdvertisedDemand {
  const char* name;
  std::uint32_t size;
  double rate_per_day;
  double decay_per_day;
  std::uint64_t population;
};

inline constexpr AdvertisedDemand kDistributedFiles[4] = {
    {"night.voyage.2008.dvdrip.xvid.avi", 734'003'200, 2600, 0.028, 62'000},
    {"crimson.echo.2008.mp3", 5'600'000, 1600, 0.030, 38'000},
    {"linux-distribution-2008.10.iso", 731'906'048, 900, 0.012, 26'000},
    {"forgotten.garden.essay.pdf", 1'300'000, 420, 0.020, 11'000},
};

/// Greedy measurement. The harvested list size is capped at the paper's
/// observed 3,175 files (scaled): without a cap the harvest loop is
/// self-amplifying (more files -> more peers -> more shared lists). Each
/// advertised file draws its interested population over the 15 days from a
/// lognormal calibrated to Fig 12's per-file extremes: mean ~265 peers,
/// most-popular ~13k, least ~2.
inline constexpr std::size_t kGreedyAdvertisedFiles = 3175;
inline constexpr std::size_t kGreedyAdvertisedFloor = 130;  // tiny scales
inline constexpr double kGreedyPeersPerFileMu = 5.33;  // primary-peer mean ~274
inline constexpr double kGreedyPeersPerFileSigma = 0.75;
inline constexpr double kGreedyPoolFactor = 1.4;  // pool = 15d-demand*factor

/// Seed files the greedy honeypot starts from (catalog ranks).
inline constexpr std::size_t kGreedySeeds[3] = {40, 310, 1200};

}  // namespace edhp::scenario
