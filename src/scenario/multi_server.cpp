#include "scenario/multi_server.hpp"

#include <cmath>
#include <ostream>

#include "analysis/log_stats.hpp"
#include "common/memstat.hpp"
#include "peer/population.hpp"
#include "scenario/calibration.hpp"
#include "server/server.hpp"
#include "sim/diurnal.hpp"

namespace edhp::scenario {
namespace {

/// An idle resident client: logs in and just sits on the server, giving it
/// a standing user count for the manager's survey.
struct Resident {
  net::EndpointPtr endpoint;
};

}  // namespace

MultiServerConfig::MultiServerConfig() : behavior(behavior_2008()) {}

MultiServerResult run_multi_server(const MultiServerConfig& config,
                                   std::ostream* progress) {
  sim::Simulation simulation(config.seed);
  net::Network network(simulation);
  auto diurnal = sim::DiurnalProfile::european_2008();
  peer::FileCatalog catalog(catalog_2008(), simulation.rng().split(0xCA7A));
  auto params = config.behavior;
  peer::SharedBlacklist blacklist(params.gossip_penalty /
                                  std::max(config.scale, 1e-6));
  peer::SourceCache source_cache;
  auto& rng = simulation.rng();

  net::DefenseConfig defense = config.defense;
  if (!defense.enabled && config.abuse.enabled && config.auto_defense) {
    defense = abuse_defense_config();
  }

  // --- Servers of different sizes -------------------------------------------
  const std::size_t n_servers = config.server_sizes.size();
  std::vector<std::unique_ptr<server::Server>> servers;
  std::vector<honeypot::ServerRef> refs;
  for (std::size_t i = 0; i < n_servers; ++i) {
    const auto node = network.add_node(true);
    server::ServerConfig sc;
    sc.name = "server-" + std::to_string(i);
    sc.defense = defense;
    servers.push_back(std::make_unique<server::Server>(network, node, sc));
    servers.back()->start();
    refs.push_back(honeypot::ServerRef{node, sc.name, 4661});
  }

  // Residents give each server its standing population.
  std::vector<Resident> residents;
  double total_size = 0;
  for (double s : config.server_sizes) total_size += s;
  std::vector<std::size_t> resident_counts;
  std::size_t resident_total = 0;
  for (std::size_t i = 0; i < n_servers; ++i) {
    resident_counts.push_back(static_cast<std::size_t>(std::llround(
        static_cast<double>(config.residents_at_scale_1) * config.scale *
        config.server_sizes[i] / total_size)));
    resident_total += resident_counts.back();
  }
  // Callbacks capture references into this vector: reserve up front so they
  // never dangle.
  residents.reserve(resident_total);
  Rng resident_rng = rng.split(0x4E5);
  for (std::size_t i = 0; i < n_servers; ++i) {
    const auto count = resident_counts[i];
    for (std::size_t c = 0; c < count; ++c) {
      const auto node = network.add_node(true);
      residents.emplace_back();
      auto& resident = residents.back();
      network.connect(node, refs[i].node, [&resident, node,
                                           &resident_rng](net::EndpointPtr ep) {
        if (!ep) return;
        resident.endpoint = std::move(ep);
        proto::LoginRequest login;
        login.user = UserId::from_words(resident_rng(), resident_rng());
        login.port = 4662;
        login.tags = {proto::Tag::string_tag(proto::kTagName, "resident")};
        resident.endpoint->send(proto::encode(proto::AnyMessage{login}));
      });
    }
  }
  simulation.run_until(30.0);

  // --- Manager surveys and assigns -------------------------------------------
  honeypot::ManagerConfig manager_cfg = chaos_manager_config(config.chaos);
  manager_cfg.defense = defense;
  honeypot::Manager manager(network, manager_cfg);
  if (config.chaos.enabled || config.chaos.byzantine.enabled) {
    manager.set_backup_servers(refs);  // sibling servers double as backups
  }
  MultiServerResult result;
  result.base.honeypots = config.honeypots;
  result.base.days = config.days;
  result.base.random_content.assign(config.honeypots, true);

  const auto probe = network.add_node(true);
  std::vector<honeypot::Manager::ServerSurveyEntry> survey;
  manager.survey_servers(refs, probe, 5.0,
                         [&survey](auto entries) { survey = std::move(entries); });
  simulation.run_until(40.0);

  for (const auto& entry : survey) {
    result.survey.emplace_back(entry.server.name, entry.users);
  }

  // Assign honeypots proportionally to surveyed user counts (largest-
  // remainder): busy servers get more honeypots.
  std::vector<std::size_t> assignment;
  if (!survey.empty()) {
    double users_total = 0;
    for (const auto& e : survey) users_total += e.users;
    std::size_t assigned = 0;
    for (const auto& e : survey) {
      const auto share = users_total > 0
                             ? static_cast<std::size_t>(std::floor(
                                   static_cast<double>(config.honeypots) *
                                   static_cast<double>(e.users) / users_total))
                             : 0;
      for (std::size_t k = 0; k < share && assigned < config.honeypots; ++k) {
        for (std::size_t i = 0; i < refs.size(); ++i) {
          if (refs[i].name == e.server.name) assignment.push_back(i);
        }
        ++assigned;
      }
    }
    std::size_t next = 0;
    while (assigned < config.honeypots) {  // leftovers round-robin by rank
      const auto& e = survey[next++ % survey.size()];
      for (std::size_t i = 0; i < refs.size(); ++i) {
        if (refs[i].name == e.server.name) assignment.push_back(i);
      }
      ++assigned;
    }
  } else {
    for (std::size_t h = 0; h < config.honeypots; ++h) {
      assignment.push_back(h % n_servers);
    }
  }

  // Stable host handles: valid across control-plane crashes, when the
  // manager's fleet table is empty (see run_distributed).
  std::vector<honeypot::Honeypot*> hosts;
  hosts.reserve(config.honeypots);
  for (std::size_t h = 0; h < config.honeypots; ++h) {
    honeypot::HoneypotConfig hp;
    hp.id = static_cast<std::uint16_t>(h);
    hp.name = "mhp-" + std::to_string(h);
    hp.strategy = honeypot::ContentStrategy::random_content;
    hp.budget.disk_quota_bytes = config.chaos.disk_quota_bytes;
    hp.budget.mem_budget_records = config.chaos.mem_budget_records;
    hp.budget.session_ceiling = config.chaos.session_ceiling;
    hp.budget.policy = config.chaos.degrade_policy;
    hp.budget.shed_user_word = fault::kAbuseUserWord;
    if (config.chaos.byzantine.enabled && config.chaos.byzantine.defend) {
      hp.self_probe_period = config.chaos.byzantine.probe_period;
      hp.self_probe_timeout = config.chaos.byzantine.probe_timeout;
      hp.integrity_defense = true;
    }
    const auto index =
        manager.launch(std::move(hp), network.add_node(true), refs[assignment[h]]);
    hosts.push_back(&manager.honeypot(index));
  }
  result.server_of_honeypot = assignment;
  manager.start();

  // Fault injection over honeypot hosts, every directory server, and the
  // control plane itself.
  std::unique_ptr<fault::Injector> injector;
  struct {
    Time down_at = -1.0;
    std::uint64_t crashes = 0;
  } outage;
  if (config.chaos.enabled) {
    auto plan = fault::FaultPlan::generate(config.chaos, config.honeypots,
                                           n_servers, config.days * kDay,
                                           rng.split(config.chaos.seed));
    fault::Injector::Bindings bind;
    bind.host_count = config.honeypots;
    bind.host_node = [&hosts](std::size_t h) { return hosts[h]->node(); };
    bind.crash_host = [&hosts](std::size_t h) { hosts[h]->crash(); };
    bind.disk_full = [&hosts](std::size_t h, bool active, double magnitude) {
      hosts[h]->set_resource_fault(budget::ResourceFault::disk_full, active,
                                   magnitude);
    };
    bind.disk_slow = [&hosts](std::size_t h, bool active, double magnitude) {
      hosts[h]->set_resource_fault(budget::ResourceFault::disk_slow, active,
                                   magnitude);
    };
    bind.mem_pressure = [&hosts](std::size_t h, bool active, double magnitude) {
      hosts[h]->set_resource_fault(budget::ResourceFault::mem_pressure, active,
                                   magnitude);
    };
    bind.stop_server = [&servers](std::size_t s) {
      if (s < servers.size()) servers[s]->stop();
    };
    bind.start_server = [&servers](std::size_t s) {
      if (s < servers.size()) servers[s]->start();
    };
    bind.crash_manager = [&manager, &simulation, &outage] {
      outage.down_at = simulation.now();
      ++outage.crashes;
      manager.crash();
    };
    if (config.chaos.manager_recovery) {
      bind.recover_manager = [&manager, &outage] {
        manager.recover(outage.down_at);
        outage.down_at = -1.0;
      };
    }
    injector = std::make_unique<fault::Injector>(network, std::move(plan),
                                                 std::move(bind));
    injector->arm();
  }

  // Adversarial traffic (see run_distributed): every honeypot and every
  // directory server is a target.
  std::unique_ptr<fault::AbuseInjector> abuse;
  if (config.abuse.enabled) {
    const Rng abuse_rng = rng.split(config.abuse.seed);
    auto plan = fault::AbusePlan::generate(config.abuse, config.honeypots,
                                           n_servers, config.days * kDay,
                                           abuse_rng);
    fault::AbuseInjector::Bindings bind;
    bind.honeypot_count = config.honeypots;
    bind.honeypot_node = [&hosts](std::size_t h) { return hosts[h]->node(); };
    bind.server_count = n_servers;
    bind.server_node = [&refs](std::size_t s) { return refs[s].node; };
    abuse = std::make_unique<fault::AbuseInjector>(
        network, std::move(plan), config.abuse, std::move(bind),
        abuse_rng.split(0xEE));
    abuse->arm();
  }

  // Byzantine misbehavior (see run_distributed): every directory server can
  // lie, every honeypot is a liar-peer target.
  std::unique_ptr<fault::ByzantineInjector> byz;
  if (config.chaos.byzantine.enabled) {
    const Rng byz_rng = rng.split(config.chaos.byzantine.seed);
    auto plan = fault::ByzantinePlan::generate(config.chaos.byzantine,
                                               config.honeypots, n_servers,
                                               config.days * kDay, byz_rng);
    fault::ByzantineInjector::Bindings bind;
    bind.honeypot_count = config.honeypots;
    bind.honeypot_node = [&hosts](std::size_t h) { return hosts[h]->node(); };
    bind.server_count = n_servers;
    bind.drop_offers = [&servers](std::size_t s, bool active) {
      servers[s]->set_drop_offers(active);
    };
    bind.truncate_offers = [&servers](std::size_t s, bool active,
                                      double keep) {
      servers[s]->set_truncate_offers(active, keep);
    };
    bind.stale_index = [&servers](std::size_t s, bool active) {
      servers[s]->set_stale_index(active);
    };
    bind.fabricate_sources = [&servers](std::size_t s, bool active,
                                        std::size_t count,
                                        std::uint64_t seed) {
      servers[s]->set_fabricate_sources(active, count, seed);
    };
    bind.corrupt_search = [&servers](std::size_t s, bool active,
                                     std::uint64_t seed) {
      servers[s]->set_corrupt_search(active, seed);
    };
    bind.advertised_files = [&hosts](std::size_t h) {
      std::vector<proto::PublishedFile> out;
      for (const auto& f : hosts[h]->advertised()) {
        proto::PublishedFile pf;
        pf.file = f.id;
        pf.port = 4662;
        pf.name = f.name;
        pf.size = f.size;
        out.push_back(std::move(pf));
      }
      return out;
    };
    byz = std::make_unique<fault::ByzantineInjector>(
        network, std::move(plan), config.chaos.byzantine, std::move(bind),
        byz_rng.split(fault::splits::kByzContent));
    byz->arm();
  }

  // --- Advertised files + demand ----------------------------------------------
  std::vector<honeypot::AdvertisedFile> files;
  Rng id_rng = rng.split(0xF11E);
  for (const auto& d : kDistributedFiles) {
    files.push_back(honeypot::AdvertisedFile{
        FileId::from_words(id_rng(), id_rng()), d.name, d.size});
  }
  simulation.run_until(60.0);
  manager.advertise_all(files);
  for (const auto& f : files) {
    result.base.advertised_ids.push_back(f.id);
  }
  result.base.advertised_files = files.size();

  peer::PeerContext ctx;
  ctx.net = &network;
  ctx.server_node = refs[0].node;
  ctx.blacklist = &blacklist;
  ctx.catalog = &catalog;
  ctx.params = &params;
  ctx.diurnal = &diurnal;
  ctx.source_cache = &source_cache;
  for (std::size_t i = 0; i < n_servers; ++i) {
    ctx.home_servers.push_back(refs[i].node);
    ctx.home_server_weights.push_back(config.server_sizes[i]);
  }

  peer::Population population(ctx, rng.split(0x90B), config.population_mode);
  for (std::size_t i = 0; i < files.size(); ++i) {
    const auto& d = kDistributedFiles[i];
    peer::FileDemand demand;
    demand.file = files[i].id;
    demand.base_rate_per_day = d.rate_per_day * config.scale;
    demand.decay_per_day = d.decay_per_day;
    demand.population = static_cast<std::uint64_t>(
        std::llround(static_cast<double>(d.population) * config.scale));
    demand.ramp_up = hours(6);
    population.add_demand(demand);
  }
  simulation.schedule_at(minutes(10), [&population] { population.start(); });

  for (std::uint32_t d = 0; d < static_cast<std::uint32_t>(config.days); ++d) {
    simulation.run_until((d + 1) * kDay);
    if (progress != nullptr) {
      *progress << "  day " << d + 1 << "/" << static_cast<int>(config.days)
                << "\n";
    }
  }
  population.stop();
  if (outage.down_at >= 0 && config.chaos.manager_recovery) {
    manager.recover(outage.down_at);
    outage.down_at = -1.0;
  }
  manager.stop();
  for (auto& r : residents) {
    if (r.endpoint) r.endpoint->close();
  }

  result.base.merged =
      outage.crashes > 0
          ? manager.merged_anonymized_durable(&result.base.distinct_peers)
          : manager.merged_anonymized(&result.base.distinct_peers);
  result.base.observed = manager.observed_files();
  result.base.peer_totals = population.totals();
  result.base.recovery = manager.recovery_stats();
  if (injector) {
    result.base.faults = injector->stats();
    result.base.recovery.manager_crashes = result.base.faults.manager_crashes;
  }
  if (outage.down_at >= 0) {
    result.base.recovery.manager_downtime += simulation.now() - outage.down_at;
  }
  result.base.defense = manager.defense_stats();
  for (const auto& s : servers) {
    result.base.defense += s->defense_stats();
  }
  if (abuse) {
    result.base.abuse = abuse->stats();
  }
  if (byz) {
    result.base.byzantine = byz->stats();
  }
  result.base.integrity = manager.integrity_stats();
  for (const auto* hp : hosts) {
    result.base.degrade += hp->degrade_stats();
  }
  result.base.engine = simulation.stats();
  result.base.net_totals = network.totals();
  result.base.sim_events = result.base.engine.events_executed;
  result.base.wire_messages = result.base.net_totals.messages_delivered;
  result.base.wire_bytes = result.base.net_totals.bytes_delivered;
  result.base.population_arrivals = population.arrivals();
  result.base.population_peak_active = population.peak_active();
  result.base.population_slab_slots = population.slab_capacity();
  result.base.net_peak_live_nodes = network.peak_live_node_count();
  result.base.net_nodes_retired = network.nodes_retired();
  result.base.peak_rss_bytes = peak_rss_bytes();

  const auto sets =
      analysis::peer_sets_by_honeypot(result.base.merged, config.honeypots);
  for (const auto& s : sets) {
    result.peers_per_honeypot.push_back(s.count());
  }
  return result;
}

}  // namespace edhp::scenario
