#pragma once
// Multi-server measurement: the strategy the paper sketches in Section
// III.A — "one may typically choose a different server for each honeypot,
// in order to obtain a more global view", with server choice "guided by
// their resources and number of users".
//
// The simulated network runs several directory servers of different sizes;
// each peer is homed on one server (weighted by size) and only discovers
// providers indexed there. The manager surveys the servers over UDP and
// spreads honeypots across them proportionally to their user counts, so
// the fleet observes subpopulations a single-server deployment would miss.

#include "scenario/scenario.hpp"

namespace edhp::scenario {

struct MultiServerConfig {
  double scale = 0.1;
  std::uint64_t seed = 20081201;
  double days = 10;
  std::size_t honeypots = 8;
  /// Relative size (resident user share) of each simulated server.
  std::vector<double> server_sizes = {0.45, 0.3, 0.15, 0.1};
  /// Resident (idle, logged-in) clients representing each server's standing
  /// population, at scale 1.
  std::size_t residents_at_scale_1 = 2000;
  /// Full fault model (disabled by default). In the chaos variant the other
  /// directory servers double as escalation backups, so a honeypot whose
  /// server keeps refusing it is redirected — the paper's "redirect them
  /// toward other servers".
  fault::ChaosConfig chaos;
  /// Adversarial traffic + admission control (see DistributedConfig).
  fault::AbuseConfig abuse;
  net::DefenseConfig defense;
  bool auto_defense = true;
  peer::BehaviorParams behavior;
  /// Live-peer storage strategy (see DistributedConfig::population_mode).
  peer::PopulationMode population_mode = peer::PopulationMode::lazy;

  MultiServerConfig();
};

struct MultiServerResult {
  ScenarioResult base;  ///< merged log, distinct peers, etc.
  /// Manager's survey outcome: users seen per server, busiest first.
  std::vector<std::pair<std::string, std::uint32_t>> survey;
  /// server index assigned to each honeypot.
  std::vector<std::size_t> server_of_honeypot;
  /// Distinct peers observed per honeypot.
  std::vector<std::uint64_t> peers_per_honeypot;
};

[[nodiscard]] MultiServerResult run_multi_server(const MultiServerConfig& config,
                                                 std::ostream* progress = nullptr);

}  // namespace edhp::scenario
